// qq_lint — repo-specific static lint, distilled from this repo's own bug
// history and conventions. Token/regex based on purpose: no libclang in the
// build image, and every rule here is shallow enough that a syntactic scan
// (on comment- and string-stripped text) has no false negatives we care
// about. It runs as a ctest entry on every CI leg, so a finding fails the
// build on GCC and Clang alike.
//
// Rules:
//   sentinel-best-seed   float/double best-tracker seeded from -1/-1.0.
//                        PR 6 fixed two real bugs of exactly this shape
//                        (argmax over values that can be <= -1 silently
//                        keeps the sentinel). Seed from -infinity or the
//                        first candidate instead. Integer index sentinels
//                        (`int best = -1`) are NOT flagged — those are
//                        guarded by convention and often correct.
//   raw-mutex            std::mutex / std::lock_guard / std::unique_lock /
//                        std::condition_variable (and their headers) used
//                        anywhere but src/util/mutex.hpp. The sanctioned
//                        types are util::Mutex / util::MutexLock /
//                        util::CondVar, which carry the Clang thread-safety
//                        capability annotations; a raw std type would be a
//                        hole in the -Werror=thread-safety net.
//   pragma-once          header without `#pragma once` near the top.
//   iostream-in-header   header including <iostream> (drags the static
//                        ios_base initializer into every TU; use <ostream>
//                        or keep I/O in a .cpp).
//   raw-intrinsics       x86 SIMD spelled outside src/qsim/simd.hpp:
//                        _mm*() intrinsic calls, __m128/__m256/__m512
//                        vector types, or an <immintrin.h>-family include.
//                        Kernels must call the dispatched simd:: primitives
//                        instead — a stray intrinsic bypasses the runtime
//                        ISA dispatch, the scalar bit-parity contract, and
//                        the QQ_SIMD=OFF build.
//
// Suppression: put `qq-lint: allow(<rule>)` in a comment on the offending
// line. src/util/mutex.hpp is exempt from raw-mutex by path — it IS the
// wrapper — and src/qsim/simd.hpp is exempt from raw-intrinsics for the
// same reason.
//
// Exit codes: 0 clean, 1 findings, 2 usage or I/O error.

#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <regex>
#include <sstream>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

struct Finding {
  std::string file;
  std::size_t line = 0;
  std::string rule;
  std::string message;
};

/// Replace comments and string/char literals with spaces, preserving
/// newlines (so findings report real line numbers) and length (so column
/// context in messages stays sane). Handles //, /* */, "...", '...', and
/// R"delim(...)delim".
std::string strip_comments_and_strings(const std::string& in) {
  std::string out(in.size(), ' ');
  enum class State {
    kCode,
    kLineComment,
    kBlockComment,
    kString,
    kChar,
    kRawString
  };
  State state = State::kCode;
  std::string raw_close;  // e.g. )delim" for the active raw string
  for (std::size_t i = 0; i < in.size(); ++i) {
    const char c = in[i];
    const char next = i + 1 < in.size() ? in[i + 1] : '\0';
    if (c == '\n') out[i] = '\n';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          ++i;
        } else if (c == 'R' && next == '"' &&
                   (i == 0 || (!std::isalnum(static_cast<unsigned char>(
                                   in[i - 1])) &&
                               in[i - 1] != '_'))) {
          std::size_t paren = in.find('(', i + 2);
          if (paren != std::string::npos) {
            raw_close = ")" + in.substr(i + 2, paren - i - 2) + "\"";
            state = State::kRawString;
            i = paren;
          }
        } else if (c == '"') {
          state = State::kString;
        } else if (c == '\'') {
          state = State::kChar;
        } else {
          out[i] = c;
        }
        break;
      case State::kLineComment:
        if (c == '\n') state = State::kCode;
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          ++i;
        }
        break;
      case State::kString:
        if (c == '\\') {
          ++i;
          if (i < in.size() && in[i] == '\n') out[i] = '\n';
        } else if (c == '"') {
          state = State::kCode;
        }
        break;
      case State::kChar:
        if (c == '\\') {
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
        }
        break;
      case State::kRawString:
        if (in.compare(i, raw_close.size(), raw_close) == 0) {
          i += raw_close.size() - 1;
          state = State::kCode;
        }
        break;
    }
  }
  return out;
}

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::string line;
  std::istringstream stream(text);
  while (std::getline(stream, line)) lines.push_back(line);
  return lines;
}

bool line_allows(const std::string& raw_line, const std::string& rule) {
  return raw_line.find("qq-lint: allow(" + rule + ")") != std::string::npos;
}

bool is_header(const fs::path& path) { return path.extension() == ".hpp"; }

/// The one file allowed to spell std::mutex: the capability wrapper.
bool raw_mutex_exempt(const std::string& rel) {
  return rel == "src/util/mutex.hpp";
}

/// The one file allowed to spell x86 intrinsics: the dispatch layer.
bool raw_intrinsics_exempt(const std::string& rel) {
  return rel == "src/qsim/simd.hpp";
}

// sentinel-best-seed: a floating-point declaration whose name says "this
// tracks the best/max so far" seeded with the magic -1. The type keyword is
// part of the pattern: `auto x = -1.0` deduces double, while `int best = -1`
// (index sentinel) deliberately does not fire.
const std::regex kSentinelSeed(
    R"(\b(?:float|double|auto)\s+([A-Za-z_]*(?:best|max|top|winner)[A-Za-z_0-9]*)\s*(?:=|\{)\s*-\s*1(?:\.0*)?[fF]?\s*[;,})])",
    std::regex::icase);

const std::regex kRawMutexType(
    R"(\bstd\s*::\s*(mutex|recursive_mutex|timed_mutex|recursive_timed_mutex|shared_mutex|shared_timed_mutex|lock_guard|unique_lock|scoped_lock|shared_lock|condition_variable|condition_variable_any)\b)");
const std::regex kRawMutexInclude(
    R"(#\s*include\s*<(mutex|shared_mutex|condition_variable)>)");
const std::regex kIostreamInclude(R"(#\s*include\s*<iostream>)");

// raw-intrinsics: _mm_/_mm256_/_mm512_ intrinsic names, __m128/__m256/__m512
// vector types (any suffix), or an intrinsics header include.
const std::regex kRawIntrinsicToken(
    R"(\b(_mm[0-9]*_[A-Za-z0-9_]+|__m(?:64|128|256|512)[a-z0-9]*)\b)");
const std::regex kRawIntrinsicInclude(
    R"(#\s*include\s*<([a-z0-9]*mmintrin\.h|x86intrin\.h|intrin\.h)>)");

void scan_file(const std::string& rel, const std::string& content,
               std::vector<Finding>& findings) {
  const bool header = is_header(fs::path(rel));
  const std::string stripped = strip_comments_and_strings(content);
  const std::vector<std::string> raw_lines = split_lines(content);
  const std::vector<std::string> lines = split_lines(stripped);

  if (header) {
    // pragma-once: must appear in the first 10 raw lines (license or doc
    // comments may precede it, nothing else should).
    bool found = false;
    for (std::size_t i = 0; i < raw_lines.size() && i < 10; ++i) {
      if (raw_lines[i].find("#pragma once") != std::string::npos) {
        found = true;
        break;
      }
    }
    if (!found && !(!raw_lines.empty() && line_allows(raw_lines[0], "pragma-once"))) {
      findings.push_back(
          {rel, 1, "pragma-once", "header is missing #pragma once"});
    }
  }

  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string& line = lines[i];
    const std::string& raw =
        i < raw_lines.size() ? raw_lines[i] : lines[i];

    std::smatch m;
    if (std::regex_search(line, m, kSentinelSeed) &&
        !line_allows(raw, "sentinel-best-seed")) {
      findings.push_back(
          {rel, i + 1, "sentinel-best-seed",
           "best-tracker '" + m[1].str() +
               "' seeded from -1; seed from -infinity or the first "
               "candidate (values <= -1 silently lose to the sentinel)"});
    }
    if (!raw_mutex_exempt(rel)) {
      if ((std::regex_search(line, m, kRawMutexType) ||
           std::regex_search(line, m, kRawMutexInclude)) &&
          !line_allows(raw, "raw-mutex")) {
        findings.push_back(
            {rel, i + 1, "raw-mutex",
             "raw '" + m[0].str() +
                 "'; use util::Mutex / util::MutexLock / util::CondVar "
                 "(src/util/mutex.hpp) so the thread-safety analysis sees "
                 "it"});
      }
    }
    if (header && std::regex_search(line, kIostreamInclude) &&
        !line_allows(raw, "iostream-in-header")) {
      findings.push_back({rel, i + 1, "iostream-in-header",
                          "<iostream> in a header; include <ostream> or "
                          "move the I/O into a .cpp"});
    }
    if (!raw_intrinsics_exempt(rel)) {
      if ((std::regex_search(line, m, kRawIntrinsicToken) ||
           std::regex_search(line, m, kRawIntrinsicInclude)) &&
          !line_allows(raw, "raw-intrinsics")) {
        findings.push_back(
            {rel, i + 1, "raw-intrinsics",
             "raw x86 intrinsic '" + m[0].str() +
                 "' outside src/qsim/simd.hpp; call the dispatched simd:: "
                 "primitives so scalar parity, runtime dispatch, and the "
                 "QQ_SIMD=OFF build keep working"});
      }
    }
  }
}

int run_self_test() {
  struct Case {
    const char* name;
    const char* file;
    const char* content;
    const char* expect_rule;  // nullptr = expect clean
  };
  const Case cases[] = {
      {"float sentinel fires", "src/a.cpp",
       "#include <limits>\nvoid f() { double best_value = -1.0; }\n",
       "sentinel-best-seed"},
      {"float sentinel brace-init fires", "src/a.cpp",
       "void f() { float top_score{-1.0f}; }\n", "sentinel-best-seed"},
      {"auto sentinel fires", "src/a.cpp",
       "void f() { auto best_abs = -1.0; }\n", "sentinel-best-seed"},
      {"int index sentinel is fine", "src/a.cpp",
       "void f() { int best_a = -1; int max_color = -1; }\n", nullptr},
      {"inf seed is fine", "src/a.cpp",
       "#include <limits>\nvoid f() { double best_value = "
       "-std::numeric_limits<double>::infinity(); }\n",
       nullptr},
      {"allow comment suppresses", "src/a.cpp",
       "void f() { double best_v = -1.0; }  // qq-lint: "
       "allow(sentinel-best-seed)\n",
       nullptr},
      {"raw std::mutex fires", "src/a.hpp",
       "#pragma once\n#include <cstddef>\nstruct S { std::mutex m; };\n",
       "raw-mutex"},
      {"mutex include fires", "src/a.cpp", "#include <mutex>\n", "raw-mutex"},
      {"condition_variable fires", "src/a.cpp",
       "void f() { std::condition_variable cv; }\n", "raw-mutex"},
      {"wrapper header is exempt", "src/util/mutex.hpp",
       "#pragma once\n#include <mutex>\nstruct M { std::mutex m; };\n",
       nullptr},
      {"mutex in comment is fine", "src/a.cpp",
       "// std::mutex is banned here\nint x;\n", nullptr},
      {"mutex in string is fine", "src/a.cpp",
       "const char* s = \"std::mutex\";\n", nullptr},
      {"missing pragma once fires", "src/a.hpp", "int x;\n", "pragma-once"},
      {"pragma once after doc comment is fine", "src/a.hpp",
       "// doc\n#pragma once\nint x;\n", nullptr},
      {"iostream in header fires", "src/a.hpp",
       "#pragma once\n#include <iostream>\n", "iostream-in-header"},
      {"iostream in cpp is fine", "src/a.cpp", "#include <iostream>\n",
       nullptr},
      {"intrinsic call fires", "src/qsim/statevector.cpp",
       "void f(double* p) { _mm256_loadu_pd(p); }\n", "raw-intrinsics"},
      {"vector type fires", "src/a.hpp",
       "#pragma once\nstruct S { __m512d v; };\n", "raw-intrinsics"},
      {"immintrin include fires", "src/a.cpp", "#include <immintrin.h>\n",
       "raw-intrinsics"},
      {"legacy emmintrin include fires", "src/a.cpp",
       "#include <emmintrin.h>\n", "raw-intrinsics"},
      {"simd dispatch header is exempt", "src/qsim/simd.hpp",
       "#pragma once\n#include <immintrin.h>\nstruct V { __m256d v; };\n",
       nullptr},
      {"intrinsic in comment is fine", "src/a.cpp",
       "// _mm256_add_pd is banned here\nint x;\n", nullptr},
      {"intrinsic allow comment suppresses", "src/a.cpp",
       "using V = __m256d;  // qq-lint: allow(raw-intrinsics)\n", nullptr},
      {"plain identifiers stay clean", "src/a.cpp",
       "int comm_size = 0; double mm_total = 0.0;\n", nullptr},
  };
  int failures = 0;
  for (const Case& c : cases) {
    std::vector<Finding> findings;
    scan_file(c.file, c.content, findings);
    const bool ok = c.expect_rule == nullptr
                        ? findings.empty()
                        : (findings.size() == 1 &&
                           findings[0].rule == c.expect_rule);
    if (!ok) {
      ++failures;
      std::fprintf(stderr, "self-test FAILED: %s (got %zu finding(s)",
                   c.name, findings.size());
      for (const Finding& f : findings) {
        std::fprintf(stderr, ", %s", f.rule.c_str());
      }
      std::fprintf(stderr, ")\n");
    }
  }
  if (failures == 0) {
    std::printf("qq_lint self-test: %zu cases passed\n",
                sizeof(cases) / sizeof(cases[0]));
    return 0;
  }
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  bool self_test = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--self-test") {
      self_test = true;
    } else if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else {
      std::fprintf(stderr, "usage: qq_lint [--root <repo>] [--self-test]\n");
      return 2;
    }
  }
  if (self_test) return run_self_test();

  const fs::path root_path(root);
  if (!fs::exists(root_path)) {
    std::fprintf(stderr, "qq_lint: no such directory: %s\n", root.c_str());
    return 2;
  }

  std::vector<Finding> findings;
  std::size_t scanned = 0;
  for (const char* dir : {"src", "tests", "bench", "examples", "tools"}) {
    const fs::path base = root_path / dir;
    if (!fs::exists(base)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (!entry.is_regular_file()) continue;
      const auto ext = entry.path().extension();
      if (ext != ".hpp" && ext != ".cpp") continue;
      std::ifstream in(entry.path(), std::ios::binary);
      if (!in) {
        std::fprintf(stderr, "qq_lint: cannot read %s\n",
                     entry.path().c_str());
        return 2;
      }
      std::ostringstream buffer;
      buffer << in.rdbuf();
      const std::string rel =
          fs::relative(entry.path(), root_path).generic_string();
      scan_file(rel, buffer.str(), findings);
      ++scanned;
    }
  }

  for (const Finding& f : findings) {
    std::fprintf(stderr, "%s:%zu: [%s] %s\n", f.file.c_str(), f.line,
                 f.rule.c_str(), f.message.c_str());
  }
  if (!findings.empty()) {
    std::fprintf(stderr, "qq_lint: %zu finding(s) in %zu files\n",
                 findings.size(), scanned);
    return 1;
  }
  std::printf("qq_lint: %zu files clean\n", scanned);
  return 0;
}
