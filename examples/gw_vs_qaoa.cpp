// Head-to-head on a single instance: sweep QAOA's (p, rhobeg) grid exactly
// like the paper's §4 knowledge-base construction and compare every grid
// point against GW (average of 30 slicings) and the exact optimum.
//
//   ./gw_vs_qaoa [--nodes 12] [--prob 0.2] [--weighted] [--seed 11]

#include <cstdio>
#include <vector>

#include "maxcut/exact.hpp"
#include "qaoa/qaoa.hpp"
#include "qgraph/generators.hpp"
#include "sdp/gw.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  const qq::util::Args args(argc, argv);
  const auto nodes = static_cast<qq::graph::NodeId>(args.get_int("nodes", 12));
  const double prob = args.get_double("prob", 0.2);
  const bool weighted = args.has("weighted");
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 11));

  qq::util::Rng rng(seed);
  const auto g = qq::graph::erdos_renyi(
      nodes, prob, rng,
      weighted ? qq::graph::WeightMode::kUniform01
               : qq::graph::WeightMode::kUnit);
  std::printf("graph: %d nodes, %zu edges (%s)\n", g.num_nodes(),
              g.num_edges(), weighted ? "weighted" : "unweighted");

  const double exact = qq::maxcut::solve_exact(g).value;
  qq::sdp::GwOptions gw_opts;
  gw_opts.seed = seed;
  const auto gw = qq::sdp::goemans_williamson(g, gw_opts);
  std::printf("exact optimum: %.4f | GW avg of 30 slicings: %.4f | GW best: "
              "%.4f | SDP bound: %.4f\n\n",
              exact, gw.average_value, gw.best.value, gw.sdp_bound);

  const std::vector<int> layer_grid = args.get_int_list("layers", {1, 2, 3, 4});
  const std::vector<double> rhobeg_grid =
      args.get_double_list("rhobeg", {0.1, 0.3, 0.5});

  const qq::qaoa::QaoaSolver solver(g);
  qq::util::Table table({"p", "rhobeg", "iters", "F_p", "cut", "vs GWavg"});
  for (const int p : layer_grid) {
    for (const double rhobeg : rhobeg_grid) {
      qq::qaoa::QaoaOptions opts;
      opts.layers = p;
      opts.rhobeg = rhobeg;
      opts.seed = seed;
      const auto r = solver.optimize(opts);
      table.add_row({std::to_string(p), qq::util::format_double(rhobeg, 1),
                     std::to_string(r.evaluations),
                     qq::util::format_double(r.expectation, 4),
                     qq::util::format_double(r.cut.value, 4),
                     r.cut.value > gw.average_value ? "QAOA wins" : "GW wins"});
    }
  }
  std::printf("%s\n", table.str().c_str());
  return 0;
}
