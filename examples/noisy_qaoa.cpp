// QAOA under NISQ noise: tune the angles on the ideal simulator, then
// execute the tuned circuit under depolarizing + readout noise and watch
// what survives — the decoherence story behind the paper's hybrid-workflow
// motivation (§1).
//
//   ./noisy_qaoa [--nodes 10] [--layers 3] [--p2q 0.02] [--readout 0.02]

#include <algorithm>
#include <cstdio>

#include "maxcut/exact.hpp"
#include "qaoa/cost_table.hpp"
#include "qaoa/qaoa.hpp"
#include "qcircuit/ansatz.hpp"
#include "qcircuit/noise.hpp"
#include "qcircuit/passes.hpp"
#include "qgraph/generators.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  const qq::util::Args args(argc, argv);
  const auto nodes = static_cast<qq::graph::NodeId>(args.get_int("nodes", 10));
  const int layers = args.get_int("layers", 3);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 21));

  qq::util::Rng rng(seed);
  const auto g = qq::graph::erdos_renyi(nodes, 0.4, rng);
  const double exact = qq::maxcut::solve_exact(g).value;

  // 1. Tune noiselessly.
  qq::qaoa::QaoaOptions qopts;
  qopts.layers = layers;
  qopts.max_iterations = 120;
  qopts.seed = seed;
  const qq::qaoa::QaoaSolver solver(g);
  const auto tuned = solver.optimize(qopts);
  std::printf("graph: %d nodes, %zu edges | exact optimum %.1f | ideal F_p "
              "%.3f\n",
              g.num_nodes(), g.num_edges(), exact, tuned.expectation);

  // 2. Lower through the synthesis pipeline (fewer gates = less noise).
  const auto naive = qq::circuit::qaoa_ansatz(
      g, qq::circuit::unpack_angles(tuned.parameters));
  const auto optimized = qq::circuit::synthesize(naive);
  std::printf("circuit: %zu gates naive -> %zu after synthesis (2q depth %d "
              "-> %d)\n\n",
              naive.size(), optimized.size(), naive.stats().depth_2q,
              optimized.stats().depth_2q);

  // 3. Execute under noise.
  qq::circuit::NoiseModel noise;
  noise.depolarizing_1q = args.get_double("p1q", 0.005);
  noise.depolarizing_2q = args.get_double("p2q", 0.02);
  noise.readout_flip = args.get_double("readout", 0.02);
  const auto table = qq::qaoa::build_cut_table(g);

  qq::util::Rng noise_rng(seed + 1);
  qq::circuit::NoisySamplingOptions sopts;
  sopts.shots = 4096;
  sopts.trajectories = 64;
  const auto shots =
      qq::circuit::sample_noisy(optimized, noise, sopts, noise_rng);
  double mean_cut = 0.0, best_cut = 0.0;
  for (const auto s : shots) {
    mean_cut += table[s];
    best_cut = std::max(best_cut, table[s]);
  }
  mean_cut /= static_cast<double>(shots.size());

  std::printf("noise: p1q=%.3f p2q=%.3f readout=%.3f, %d shots over %d "
              "trajectories\n",
              noise.depolarizing_1q, noise.depolarizing_2q,
              noise.readout_flip, sopts.shots, sopts.trajectories);
  std::printf("  mean sampled cut : %.3f  (ideal F_p %.3f, random guess "
              "%.3f)\n",
              mean_cut, tuned.expectation, g.total_weight() / 2.0);
  std::printf("  best sampled cut : %.1f  (exact optimum %.1f)\n", best_cut,
              exact);
  std::printf("\ntakeaway: expectation estimates degrade quickly with noise, "
              "but the best-of-4096-shots answer usually survives — MaxCut "
              "asks for one good string, not an accurate mean.\n");
  return 0;
}
