// Run-time method selection (the paper's §5 outlook, after Moussa et al.):
// build a knowledge base by racing a quantum solver against a classical
// one on many small graphs, train the logistic selector on graph features,
// then use the prediction to route fresh sub-graphs to the better solver.
//
// Both contenders are registry specs, so any backend pairing can be raced:
//
//   ./method_selection [--train 40] [--test 12] [--seed 3]
//                      [--quantum qaoa:p=2,iters=40] [--classical gw]
//                      [--list-solvers]
//
#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include "ml/features.hpp"
#include "ml/logreg.hpp"
#include "qgraph/generators.hpp"
#include "solver/registry.hpp"
#include "util/cli.hpp"

namespace {

struct Labelled {
  std::vector<double> features;
  int qaoa_wins = 0;
  double qaoa_value = 0.0;
  double gw_value = 0.0;
};

Labelled race(const qq::solver::Solver& quantum,
              const qq::solver::Solver& classical, const qq::graph::Graph& g,
              std::uint64_t seed) {
  const double qaoa_value = quantum.solve({&g, seed}).cut.value;
  // The classical score is GW's paper statistic — the average over the
  // hyperplane slicings — when the backend reports it; the best cut
  // otherwise.
  const auto c = classical.solve({&g, seed + 1});
  const double gw_value = c.metric("average_value", c.cut.value);
  const auto f = qq::ml::graph_features(g);
  return Labelled{{f.begin(), f.end()},
                  qaoa_value > gw_value ? 1 : 0,
                  qaoa_value,
                  gw_value};
}

qq::graph::Graph random_instance(qq::util::Rng& rng, int index) {
  const auto n = static_cast<qq::graph::NodeId>(7 + index % 5);
  const double p = 0.15 + 0.1 * (index % 4);
  const auto mode = (index % 2) ? qq::graph::WeightMode::kUniform01
                                : qq::graph::WeightMode::kUnit;
  return qq::graph::erdos_renyi(n, p, rng, mode);
}

}  // namespace

int main(int argc, char** argv) {
  const qq::util::Args args(argc, argv);
  if (args.has("list-solvers")) {
    std::printf("%s", qq::solver::SolverRegistry::global().help().c_str());
    return 0;
  }
  const int train_count = args.get_int("train", 40);
  const int test_count = args.get_int("test", 12);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 3));
  const std::string quantum_spec = args.get("quantum", "qaoa:p=2,iters=40");
  const std::string classical_spec = args.get("classical", "gw");
  qq::util::Rng rng(seed);

  qq::solver::SolverPtr quantum, classical;
  try {
    const auto& registry = qq::solver::SolverRegistry::global();
    quantum = registry.make(quantum_spec);
    classical = registry.make(classical_spec);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "%s\n(run with --list-solvers for the registry)\n",
                 e.what());
    return 1;
  }

  // 1. Knowledge base: label each instance with "did the quantum contender
  //    beat the classical one".
  std::printf("building knowledge base (%d instances): %s vs %s...\n",
              train_count, quantum_spec.c_str(), classical_spec.c_str());
  std::vector<std::vector<double>> X;
  std::vector<int> y;
  for (int i = 0; i < train_count; ++i) {
    const auto g = random_instance(rng, i);
    if (g.num_edges() == 0) continue;
    const Labelled row = race(*quantum, *classical, g,
                              seed + static_cast<std::uint64_t>(i));
    X.push_back(row.features);
    y.push_back(row.qaoa_wins);
  }
  int wins = 0;
  for (const int label : y) wins += label;
  std::printf("  %s won %d / %zu races\n", quantum_spec.c_str(), wins,
              y.size());

  // 2. Train the selector.
  qq::ml::LogisticRegression model;
  model.fit(X, y);
  std::printf("  training accuracy: %.2f\n", model.accuracy(X, y));

  // 3. Use it: for fresh instances, route to the predicted-better method
  //    and compare against always-quantum / always-classical / oracle.
  double routed = 0.0, always_qaoa = 0.0, always_gw = 0.0, oracle = 0.0;
  for (int i = 0; i < test_count; ++i) {
    const auto g = random_instance(rng, i + 1000);
    if (g.num_edges() == 0) continue;
    const Labelled row = race(*quantum, *classical, g,
                              seed + 9000 + static_cast<std::uint64_t>(i));
    const bool pick_qaoa = model.predict(row.features) == 1;
    routed += pick_qaoa ? row.qaoa_value : row.gw_value;
    always_qaoa += row.qaoa_value;
    always_gw += row.gw_value;
    oracle += std::max(row.qaoa_value, row.gw_value);
  }
  std::printf("\ntotal cut over %d fresh instances:\n", test_count);
  std::printf("  always %-12s: %.3f\n", quantum_spec.c_str(), always_qaoa);
  std::printf("  always %-12s: %.3f\n", classical_spec.c_str(), always_gw);
  std::printf("  ML-routed   : %.3f\n", routed);
  std::printf("  oracle      : %.3f\n", oracle);
  return 0;
}
