// QAOA-in-QAOA on a graph far larger than the simulated device: the
// paper's §3.3 pipeline end to end — modularity partition, parallel
// sub-graph solves on simulated QPUs, signed merge graph, recursion, flip
// reconstruction — with the hybrid best-of(QAOA, GW) selection.
//
//   ./qaoa2_large_graph [--nodes 150] [--prob 0.08] [--qubits 10]
//                       [--solver qaoa|gw|best] [--seed 7]

#include <cstdio>
#include <string>

#include "maxcut/baselines.hpp"
#include "qaoa2/qaoa2.hpp"
#include "qgraph/generators.hpp"
#include "sdp/gw.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  const qq::util::Args args(argc, argv);
  const int nodes = args.get_int("nodes", 150);
  const double prob = args.get_double("prob", 0.08);
  const int qubits = args.get_int("qubits", 10);
  const std::string solver = args.get("solver", "best");
  const auto sub_solver = qq::qaoa2::parse_sub_solver(solver);
  if (!sub_solver) {
    std::fprintf(stderr, "unknown --solver '%s' (expected one of qaoa, gw, "
                 "best, exact, anneal, local-search, rqaoa)\n",
                 solver.c_str());
    return 1;
  }
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 7));

  qq::util::Rng rng(seed);
  const auto g = qq::graph::erdos_renyi(static_cast<qq::graph::NodeId>(nodes),
                                        prob, rng);
  std::printf("graph: %d nodes, %zu edges | device budget: %d qubits\n",
              g.num_nodes(), g.num_edges(), qubits);

  qq::qaoa2::Qaoa2Options opts;
  opts.max_qubits = qubits;
  opts.qaoa.layers = 3;
  opts.seed = seed;
  opts.engine = qq::sched::EngineOptions{4, 4};  // 4 QPUs + 4 CPU workers
  opts.sub_solver = *sub_solver;

  const auto result = qq::qaoa2::solve_qaoa2(g, opts);

  std::printf("\nQAOA^2 (%s sub-solver)\n",
              qq::qaoa2::sub_solver_name(opts.sub_solver));
  std::printf("  cut value          : %.4f\n", result.cut.value);
  std::printf("  recursion levels   : %d\n", result.levels);
  std::printf("  sub-problems solved: %d (%d quantum, %d classical)\n",
              result.subgraphs_total, result.quantum_solves,
              result.classical_solves);
  std::printf("  components streamed: %d (%d engine tasks)\n",
              result.components, result.engine_tasks);
  for (const auto& level : result.level_stats) {
    std::printf("  level %d: %d parts (sizes %d..%d), cut after merge %.2f\n",
                level.level, level.num_parts, level.smallest_part,
                level.largest_part, level.level_cut);
  }
  std::printf("  solver wall time   : %.3f s (coordination %.3f s)\n",
              result.solve_seconds, result.coordination_seconds);

  // Reference points from the paper's Fig. 4: GW on the whole graph and a
  // random partition.
  qq::sdp::GwOptions gw_opts;
  gw_opts.seed = seed + 1;
  const auto gw = qq::sdp::goemans_williamson(g, gw_opts);
  qq::util::Rng rand_rng(seed + 2);
  const auto random = qq::maxcut::randomized_partitioning(g, rand_rng);
  std::printf("\nreference: GW on full graph = %.4f | random partition = %.4f\n",
              gw.best.value, random.value);
  std::printf("QAOA^2 / GW-full ratio: %.4f\n",
              gw.best.value > 0 ? result.cut.value / gw.best.value : 1.0);
  return 0;
}
