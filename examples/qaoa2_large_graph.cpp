// QAOA-in-QAOA on a graph far larger than the simulated device: the
// paper's §3.3 pipeline end to end — modularity partition, parallel
// sub-graph solves on simulated QPUs, signed merge graph, recursion, flip
// reconstruction — with the hybrid best-of(QAOA, GW) selection.
//
// The sub-solver is any registry spec (see --list-solvers):
//
//   ./qaoa2_large_graph [--nodes 150] [--prob 0.08] [--qubits 10]
//                       [--solver best:qaoa|gw] [--seed 7] [--list-solvers]
//
//   e.g. --solver qaoa:p=3,shots=512   --solver anneal:sweeps=400
//
#include <cstdio>
#include <stdexcept>
#include <string>

#include "qaoa2/qaoa2.hpp"
#include "qgraph/generators.hpp"
#include "solver/registry.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  const qq::util::Args args(argc, argv);
  if (args.has("list-solvers")) {
    std::printf("%s", qq::solver::SolverRegistry::global().help().c_str());
    return 0;
  }
  const int nodes = args.get_int("nodes", 150);
  const double prob = args.get_double("prob", 0.08);
  const int qubits = args.get_int("qubits", 10);
  const std::string solver = args.get("solver", "best");
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 7));
  try {
    (void)qq::solver::SolverRegistry::global().make(solver);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "%s\n(run with --list-solvers for the registry)\n",
                 e.what());
    return 1;
  }

  qq::util::Rng rng(seed);
  const auto g = qq::graph::erdos_renyi(static_cast<qq::graph::NodeId>(nodes),
                                        prob, rng);
  std::printf("graph: %d nodes, %zu edges | device budget: %d qubits\n",
              g.num_nodes(), g.num_edges(), qubits);

  qq::qaoa2::Qaoa2Options opts;
  opts.max_qubits = qubits;
  opts.qaoa.layers = 3;
  opts.seed = seed;
  opts.engine = qq::sched::EngineOptions{4, 4};  // 4 QPUs + 4 CPU workers
  opts.sub_solver_spec = solver;

  const auto result = qq::qaoa2::solve_qaoa2(g, opts);

  std::printf("\nQAOA^2 (%s sub-solver)\n", solver.c_str());
  std::printf("  cut value          : %.4f\n", result.cut.value);
  std::printf("  recursion levels   : %d\n", result.levels);
  std::printf("  sub-problems solved: %d (%d quantum, %d classical)\n",
              result.subgraphs_total, result.quantum_solves,
              result.classical_solves);
  std::printf("  components streamed: %d (%d engine tasks)\n",
              result.components, result.engine_tasks);
  for (const auto& level : result.level_stats) {
    std::printf("  level %d: %d parts (sizes %d..%d), cut after merge %.2f\n",
                level.level, level.num_parts, level.smallest_part,
                level.largest_part, level.level_cut);
  }
  std::printf("  solver wall time   : %.3f s (coordination %.3f s)\n",
              result.solve_seconds, result.coordination_seconds);

  // Reference points from the paper's Fig. 4, both through the registry:
  // GW on the whole graph and a random partition.
  const auto& registry = qq::solver::SolverRegistry::global();
  const auto gw = registry.make("gw")->solve({&g, seed + 1});
  const auto random = registry.make("random")->solve({&g, seed + 2});
  std::printf("\nreference: GW on full graph = %.4f | random partition = %.4f\n",
              gw.cut.value, random.cut.value);
  std::printf("QAOA^2 / GW-full ratio: %.4f\n",
              gw.cut.value > 0 ? result.cut.value / gw.cut.value : 1.0);
  return 0;
}
