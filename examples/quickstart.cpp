// Quickstart: solve a small MaxCut instance with QAOA and compare against
// the exact optimum.
//
//   ./quickstart [--nodes 10] [--prob 0.4] [--layers 3] [--seed 1]

#include <cstdio>

#include "maxcut/exact.hpp"
#include "qaoa/qaoa.hpp"
#include "qgraph/generators.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  const qq::util::Args args(argc, argv);
  const int nodes = args.get_int("nodes", 10);
  const double prob = args.get_double("prob", 0.4);
  const int layers = args.get_int("layers", 3);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));

  // 1. Generate a problem instance (Erdős–Rényi, unit weights).
  qq::util::Rng rng(seed);
  const auto g = qq::graph::erdos_renyi(static_cast<qq::graph::NodeId>(nodes),
                                        prob, rng);
  std::printf("graph: %d nodes, %zu edges\n", g.num_nodes(), g.num_edges());

  // 2. Run QAOA (Eq. 2-3 of the paper): COBYLA drives the angles, the
  //    solution is the highest-amplitude bit string.
  qq::qaoa::QaoaOptions opts;
  opts.layers = layers;
  opts.seed = seed;
  const qq::qaoa::QaoaResult result = qq::qaoa::solve_qaoa(g, opts);

  // 3. Compare with the exact optimum (exhaustive, fine below ~26 nodes).
  const auto exact = qq::maxcut::solve_exact(g);

  std::printf("QAOA  : cut = %.4f  (F_p = %.4f, %d objective evaluations)\n",
              result.cut.value, result.expectation, result.evaluations);
  std::printf("exact : cut = %.4f\n", exact.value);
  std::printf("ratio : %.4f\n",
              exact.value > 0 ? result.cut.value / exact.value : 1.0);
  std::printf("bitstring: ");
  for (const auto side : result.cut.assignment) std::printf("%d", side);
  std::printf("\n");
  return 0;
}
