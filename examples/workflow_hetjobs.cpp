// Allocation-policy study (paper Fig. 1): quantify how SLURM-style
// heterogeneous jobs reduce quantum-device idle time compared to MPMD
// co-allocation, using the deterministic discrete-event model.
//
//   ./workflow_hetjobs [--jobs 16] [--devices 1] [--cpus 8] [--seed 5]

#include <cstdio>
#include <vector>

#include "sched/des.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
  const qq::util::Args args(argc, argv);
  const int job_count = args.get_int("jobs", 16);
  const int devices = args.get_int("devices", 1);
  const int cpus = args.get_int("cpus", 8);
  qq::util::Rng rng(static_cast<std::uint64_t>(args.get_int("seed", 5)));

  // Hybrid jobs: classical prep (graph partitioning, circuit synthesis),
  // quantum execution, classical post-processing (merge bookkeeping).
  std::vector<qq::sched::JobPhases> jobs;
  for (int i = 0; i < job_count; ++i) {
    qq::sched::JobPhases phases;
    phases.classical_prep = qq::util::uniform(rng, 2.0, 6.0);
    phases.quantum = qq::util::uniform(rng, 1.0, 3.0);
    phases.classical_post = qq::util::uniform(rng, 0.5, 1.5);
    jobs.push_back(phases);
  }

  std::printf("%d hybrid jobs | %d quantum device(s), %d classical node(s)\n\n",
              job_count, devices, cpus);
  for (const auto policy : {qq::sched::AllocationPolicy::kMpmd,
                            qq::sched::AllocationPolicy::kHeterogeneous}) {
    qq::sched::DesOptions opts;
    opts.quantum_devices = devices;
    opts.classical_nodes = cpus;
    opts.policy = policy;
    const auto r = qq::sched::simulate_workload(jobs, opts);
    std::printf("%s:\n", policy == qq::sched::AllocationPolicy::kMpmd
                             ? "MPMD co-allocation"
                             : "heterogeneous jobs");
    std::printf("  makespan                 : %8.2f s\n", r.makespan);
    std::printf("  device compute (busy)    : %8.2f s\n", r.quantum_busy);
    std::printf("  device allocated         : %8.2f s\n", r.quantum_allocated);
    std::printf("  idle share of allocation : %8.1f %%\n",
                100.0 * r.quantum_alloc_idle_fraction);
    std::printf("  device utilization       : %8.1f %%\n\n",
                100.0 * r.quantum_utilization);
  }
  std::printf("Fig. 1's point: under heterogeneous jobs the device is only\n"
              "held for the quantum phase, so the next job's quantum work\n"
              "starts before the previous job finishes post-processing.\n");
  return 0;
}
