// Tests for the graph substrate: Graph invariants, generators, greedy
// modularity, the QAOA^2 partitioning step, and edge-list IO.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>

#include "qgraph/generators.hpp"
#include "qgraph/graph.hpp"
#include "qgraph/io.hpp"
#include "qgraph/modularity.hpp"
#include "qgraph/partition.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace qq::graph {
namespace {

// ---------------------------------------------------------------- Graph ----

TEST(Graph, BasicConstruction) {
  Graph g(4);
  EXPECT_EQ(g.num_nodes(), 4);
  EXPECT_EQ(g.num_edges(), 0u);
  g.add_edge(0, 1, 2.0);
  g.add_edge(2, 3);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(0, 2));
  EXPECT_DOUBLE_EQ(g.edge_weight(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(g.edge_weight(2, 3), 1.0);
  EXPECT_DOUBLE_EQ(g.edge_weight(0, 3), 0.0);
  EXPECT_DOUBLE_EQ(g.total_weight(), 3.0);
}

TEST(Graph, ParallelEdgesAccumulate) {
  Graph g(3);
  g.add_edge(0, 1, 1.5);
  g.add_edge(1, 0, 2.5);  // same undirected edge
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_DOUBLE_EQ(g.edge_weight(0, 1), 4.0);
  EXPECT_DOUBLE_EQ(g.total_weight(), 4.0);
  // adjacency must mirror the merged weight on both endpoints
  for (const auto& [v, w] : g.neighbors(0)) {
    EXPECT_EQ(v, 1);
    EXPECT_DOUBLE_EQ(w, 4.0);
  }
  for (const auto& [v, w] : g.neighbors(1)) {
    EXPECT_EQ(v, 0);
    EXPECT_DOUBLE_EQ(w, 4.0);
  }
}

TEST(Graph, RejectsSelfLoopsAndBadIds) {
  Graph g(2);
  EXPECT_THROW(g.add_edge(0, 0), std::invalid_argument);
  EXPECT_THROW(g.add_edge(0, 2), std::out_of_range);
  EXPECT_THROW(g.add_edge(-1, 0), std::out_of_range);
  EXPECT_THROW(Graph(-1), std::invalid_argument);
  EXPECT_THROW(g.neighbors(5), std::out_of_range);
}

TEST(Graph, RejectsNonFiniteWeights) {
  Graph g(2);
  EXPECT_THROW(g.add_edge(0, 1, std::numeric_limits<double>::infinity()),
               std::invalid_argument);
  EXPECT_THROW(g.add_edge(0, 1, std::nan("")), std::invalid_argument);
}

TEST(Graph, DegreeAndWeightedDegree) {
  Graph g = star_graph(5);
  EXPECT_EQ(g.degree(0), 4);
  EXPECT_EQ(g.degree(1), 1);
  EXPECT_DOUBLE_EQ(g.weighted_degree(0), 4.0);
}

TEST(Graph, WeightedDetection) {
  Graph g(3);
  g.add_edge(0, 1, 1.0);
  EXPECT_FALSE(g.is_weighted());
  g.add_edge(1, 2, 0.5);
  EXPECT_TRUE(g.is_weighted());
}

TEST(Graph, InducedSubgraphKeepsInternalEdges) {
  Graph g(5);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 2.0);
  g.add_edge(2, 3, 3.0);
  g.add_edge(3, 4, 4.0);
  const auto sub = g.induced({1, 2, 3});
  EXPECT_EQ(sub.graph.num_nodes(), 3);
  EXPECT_EQ(sub.graph.num_edges(), 2u);
  EXPECT_DOUBLE_EQ(sub.graph.edge_weight(0, 1), 2.0);  // (1,2)
  EXPECT_DOUBLE_EQ(sub.graph.edge_weight(1, 2), 3.0);  // (2,3)
  EXPECT_EQ(sub.to_global, (std::vector<NodeId>{1, 2, 3}));
}

TEST(Graph, InducedRejectsDuplicatesAndBadIds) {
  Graph g(3);
  g.add_edge(0, 1);
  EXPECT_THROW(g.induced({0, 0}), std::invalid_argument);
  EXPECT_THROW(g.induced({0, 7}), std::out_of_range);
}

TEST(Graph, ConnectedComponents) {
  Graph g(6);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(3, 4);
  const auto comps = connected_components(g);
  ASSERT_EQ(comps.size(), 3u);
  EXPECT_EQ(comps[0], (std::vector<NodeId>{0, 1, 2}));
  EXPECT_EQ(comps[1], (std::vector<NodeId>{3, 4}));
  EXPECT_EQ(comps[2], (std::vector<NodeId>{5}));
  EXPECT_FALSE(is_connected(g));
  EXPECT_TRUE(is_connected(cycle_graph(5)));
  EXPECT_TRUE(is_connected(Graph(1)));
  EXPECT_TRUE(is_connected(Graph(0)));
}

TEST(Graph, ComponentSubgraphsShardByComponent) {
  Graph g(6);
  g.add_edge(0, 1, 2.0);
  g.add_edge(1, 2, 3.0);
  g.add_edge(3, 4, 5.0);
  const auto shards = component_subgraphs(g);
  ASSERT_EQ(shards.size(), 3u);
  EXPECT_EQ(shards[0].to_global, (std::vector<NodeId>{0, 1, 2}));
  EXPECT_EQ(shards[0].graph.num_edges(), 2u);
  EXPECT_DOUBLE_EQ(shards[0].graph.edge_weight(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(shards[0].graph.edge_weight(1, 2), 3.0);
  EXPECT_EQ(shards[1].to_global, (std::vector<NodeId>{3, 4}));
  EXPECT_DOUBLE_EQ(shards[1].graph.edge_weight(0, 1), 5.0);
  EXPECT_EQ(shards[2].graph.num_nodes(), 1);
  EXPECT_EQ(shards[2].graph.num_edges(), 0u);
}

TEST(Graph, ComponentSubgraphOfConnectedGraphIsStructurallyIdentical) {
  // The QAOA^2 sharding relies on this: for a connected graph the single
  // shard must preserve node ids AND edge insertion order, so every
  // downstream deterministic consumer (partitioner, seeds) sees the same
  // graph it would have seen unsharded.
  util::Rng rng(51);
  const Graph g = erdos_renyi(24, 0.2, rng);
  ASSERT_TRUE(is_connected(g));
  const auto shards = component_subgraphs(g);
  ASSERT_EQ(shards.size(), 1u);
  const Graph& s = shards[0].graph;
  EXPECT_EQ(s.num_nodes(), g.num_nodes());
  ASSERT_EQ(s.num_edges(), g.num_edges());
  for (std::size_t e = 0; e < g.edges().size(); ++e) {
    EXPECT_EQ(s.edges()[e].u, g.edges()[e].u);
    EXPECT_EQ(s.edges()[e].v, g.edges()[e].v);
    EXPECT_EQ(s.edges()[e].w, g.edges()[e].w);
  }
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    EXPECT_EQ(shards[0].to_global[static_cast<std::size_t>(u)], u);
  }
}

TEST(Graph, InducedBatchMatchesSerialInducedAtAnyPoolWidth) {
  util::Rng rng(53);
  const Graph g = erdos_renyi(30, 0.2, rng);
  const std::vector<std::vector<NodeId>> parts = {
      {0, 1, 2, 3, 4, 5}, {6, 7, 8, 9}, {10, 11, 12, 13, 14, 15, 16},
      {17, 18, 19, 20, 21}, {22, 23, 24, 25, 26, 27, 28, 29}};
  for (const std::size_t threads : {1u, 4u}) {
    util::ThreadPool pool(threads);
    const auto batch = induced_batch(g, parts, &pool);
    ASSERT_EQ(batch.size(), parts.size());
    for (std::size_t i = 0; i < parts.size(); ++i) {
      const Subgraph serial = g.induced(parts[i]);
      EXPECT_EQ(batch[i].to_global, serial.to_global);
      ASSERT_EQ(batch[i].graph.num_edges(), serial.graph.num_edges());
      for (std::size_t e = 0; e < serial.graph.edges().size(); ++e) {
        EXPECT_EQ(batch[i].graph.edges()[e].u, serial.graph.edges()[e].u);
        EXPECT_EQ(batch[i].graph.edges()[e].v, serial.graph.edges()[e].v);
        EXPECT_EQ(batch[i].graph.edges()[e].w, serial.graph.edges()[e].w);
      }
    }
  }
}

// ----------------------------------------------------------- generators ----

TEST(Generators, ErdosRenyiEdgeCountNearExpectation) {
  util::Rng rng(1);
  const NodeId n = 200;
  const double p = 0.1;
  const Graph g = erdos_renyi(n, p, rng);
  const double expected = p * n * (n - 1) / 2.0;
  EXPECT_NEAR(static_cast<double>(g.num_edges()), expected, 4.0 * std::sqrt(expected));
}

TEST(Generators, ErdosRenyiExtremes) {
  util::Rng rng(2);
  EXPECT_EQ(erdos_renyi(20, 0.0, rng).num_edges(), 0u);
  EXPECT_EQ(erdos_renyi(20, 1.0, rng).num_edges(), 190u);
  EXPECT_EQ(erdos_renyi(1, 0.5, rng).num_edges(), 0u);
  EXPECT_THROW(erdos_renyi(5, 1.5, rng), std::invalid_argument);
  EXPECT_THROW(erdos_renyi(5, -0.1, rng), std::invalid_argument);
}

TEST(Generators, ErdosRenyiWeightedDrawsInUnitInterval) {
  util::Rng rng(3);
  const Graph g = erdos_renyi(50, 0.3, rng, WeightMode::kUniform01);
  ASSERT_GT(g.num_edges(), 0u);
  for (const Edge& e : g.edges()) {
    EXPECT_GE(e.w, 0.0);
    EXPECT_LT(e.w, 1.0);
  }
  EXPECT_TRUE(g.is_weighted());
}

TEST(Generators, ErdosRenyiDeterministicPerSeed) {
  util::Rng a(9), b(9);
  const Graph g1 = erdos_renyi(40, 0.2, a);
  const Graph g2 = erdos_renyi(40, 0.2, b);
  ASSERT_EQ(g1.num_edges(), g2.num_edges());
  for (std::size_t i = 0; i < g1.num_edges(); ++i) {
    EXPECT_EQ(g1.edges()[i].u, g2.edges()[i].u);
    EXPECT_EQ(g1.edges()[i].v, g2.edges()[i].v);
  }
}

TEST(Generators, StructuredFamilies) {
  EXPECT_EQ(complete_graph(6).num_edges(), 15u);
  EXPECT_EQ(cycle_graph(7).num_edges(), 7u);
  EXPECT_EQ(cycle_graph(2).num_edges(), 1u);
  EXPECT_EQ(path_graph(7).num_edges(), 6u);
  EXPECT_EQ(star_graph(7).num_edges(), 6u);
  EXPECT_EQ(grid_2d(3, 4).num_nodes(), 12);
  EXPECT_EQ(grid_2d(3, 4).num_edges(), 17u);  // 3*3 + 2*4
}

TEST(Generators, RandomRegularHasExactDegrees) {
  util::Rng rng(5);
  const Graph g = random_regular(20, 3, rng);
  for (NodeId u = 0; u < 20; ++u) EXPECT_EQ(g.degree(u), 3);
  EXPECT_THROW(random_regular(5, 3, rng), std::invalid_argument);  // n*d odd
  EXPECT_THROW(random_regular(4, 4, rng), std::invalid_argument);  // d >= n
}

TEST(Generators, BarbellStructure) {
  const Graph g = barbell_graph(4, 2);
  EXPECT_EQ(g.num_nodes(), 10);
  // two K4 (6 edges each) + path of 3 bridge edges
  EXPECT_EQ(g.num_edges(), 15u);
  EXPECT_TRUE(is_connected(g));
}

TEST(Generators, PlantedPartitionDenseInsideSparseOutside) {
  util::Rng rng(7);
  const Graph g = planted_partition(3, 10, 0.9, 0.02, rng);
  std::size_t inside = 0, outside = 0;
  for (const Edge& e : g.edges()) {
    (e.u / 10 == e.v / 10 ? inside : outside)++;
  }
  EXPECT_GT(inside, outside * 3);
}

// ----------------------------------------------------------- modularity ----

TEST(Modularity, SingleCommunityOfCompleteGraphIsZero) {
  const Graph g = complete_graph(5);
  const std::vector<int> one(5, 0);
  EXPECT_NEAR(modularity(g, one), 0.0, 1e-12);
}

TEST(Modularity, KnownValueOnTwoTriangles) {
  // Two triangles joined by one edge; communities = the triangles.
  Graph g(6);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(0, 2);
  g.add_edge(3, 4);
  g.add_edge(4, 5);
  g.add_edge(3, 5);
  g.add_edge(2, 3);
  const std::vector<int> comm = {0, 0, 0, 1, 1, 1};
  // m=7; Sum_in per community: 3; Sum_tot: 7 each.
  // Q = 2 * (3/7 - (7/14)^2) = 6/7 - 1/2.
  EXPECT_NEAR(modularity(g, comm), 6.0 / 7.0 - 0.5, 1e-12);
}

TEST(Modularity, AssignmentSizeMismatchThrows) {
  const Graph g = cycle_graph(4);
  EXPECT_THROW(modularity(g, {0, 1}), std::invalid_argument);
}

TEST(GreedyModularity, RecoversTwoTriangles) {
  Graph g(6);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(0, 2);
  g.add_edge(3, 4);
  g.add_edge(4, 5);
  g.add_edge(3, 5);
  g.add_edge(2, 3);
  const auto comms = greedy_modularity_communities(g);
  ASSERT_EQ(comms.size(), 2u);
  EXPECT_EQ(comms[0], (std::vector<NodeId>{0, 1, 2}));
  EXPECT_EQ(comms[1], (std::vector<NodeId>{3, 4, 5}));
}

TEST(GreedyModularity, RecoversPlantedBlocks) {
  util::Rng rng(11);
  const NodeId block = 8;
  const Graph g = planted_partition(4, block, 0.95, 0.01, rng);
  const auto comms = greedy_modularity_communities(g);
  ASSERT_EQ(comms.size(), 4u);
  for (const auto& c : comms) {
    ASSERT_EQ(c.size(), static_cast<std::size_t>(block));
    const NodeId b = c.front() / block;
    for (const NodeId u : c) EXPECT_EQ(u / block, b);
  }
}

TEST(GreedyModularity, EdgelessGraphYieldsSingletons) {
  const Graph g(4);
  const auto comms = greedy_modularity_communities(g);
  EXPECT_EQ(comms.size(), 4u);
}

TEST(GreedyModularity, CommunitiesPartitionTheNodeSet) {
  util::Rng rng(13);
  const Graph g = erdos_renyi(60, 0.08, rng);
  const auto comms = greedy_modularity_communities(g);
  std::set<NodeId> seen;
  for (const auto& c : comms) {
    for (const NodeId u : c) EXPECT_TRUE(seen.insert(u).second);
  }
  EXPECT_EQ(seen.size(), 60u);
}

// ------------------------------------------------------------ partition ----

struct PartitionCase {
  const char* name;
  Graph graph;
  NodeId max_nodes;
};

class PartitionInvariants : public ::testing::TestWithParam<int> {};

TEST_P(PartitionInvariants, CoverDisjointAndCapped) {
  const int seed = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(seed));
  // Rotate across graph families with the seed.
  Graph g(0);
  switch (seed % 4) {
    case 0: g = erdos_renyi(50, 0.1, rng); break;
    case 1: g = erdos_renyi(64, 0.3, rng, WeightMode::kUniform01); break;
    case 2: g = planted_partition(5, 9, 0.8, 0.05, rng); break;
    default: g = complete_graph(30); break;
  }
  PartitionOptions opts;
  opts.max_nodes = 8;
  opts.seed = static_cast<std::uint64_t>(seed);
  const auto parts = partition_max_size(g, opts);
  std::set<NodeId> seen;
  for (const auto& part : parts) {
    EXPECT_FALSE(part.empty());
    EXPECT_LE(part.size(), 8u);
    for (const NodeId u : part) {
      EXPECT_TRUE(seen.insert(u).second) << "node appears twice";
    }
  }
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(g.num_nodes()));
}

INSTANTIATE_TEST_SUITE_P(Families, PartitionInvariants,
                         ::testing::Range(0, 12));

TEST(Partition, SmallGraphStaysWhole) {
  const Graph g = cycle_graph(6);
  PartitionOptions opts;
  opts.max_nodes = 10;
  const auto parts = partition_max_size(g, opts);
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0].size(), 6u);
}

TEST(Partition, CliqueFallbackSplitsBalanced) {
  // Modularity cannot split a clique; the BFS fallback must.
  const Graph g = complete_graph(20);
  PartitionOptions opts;
  opts.max_nodes = 6;
  const auto parts = partition_max_size(g, opts);
  EXPECT_GE(parts.size(), 4u);
  for (const auto& part : parts) EXPECT_LE(part.size(), 6u);
}

TEST(Partition, RespectsTightCap) {
  util::Rng rng(17);
  const Graph g = erdos_renyi(40, 0.2, rng);
  PartitionOptions opts;
  opts.max_nodes = 2;
  const auto parts = partition_max_size(g, opts);
  for (const auto& part : parts) EXPECT_LE(part.size(), 2u);
}

TEST(Partition, InvalidCapThrows) {
  PartitionOptions opts;
  opts.max_nodes = 0;
  EXPECT_THROW(partition_max_size(cycle_graph(4), opts),
               std::invalid_argument);
}

TEST(Partition, KeepsPlantedBlocksTogetherWhenTheyFit) {
  util::Rng rng(19);
  const Graph g = planted_partition(4, 6, 0.9, 0.02, rng);
  PartitionOptions opts;
  opts.max_nodes = 6;
  const auto parts = partition_max_size(g, opts);
  // Blocks of 6 fit exactly; modularity should find them (4 parts).
  EXPECT_EQ(parts.size(), 4u);
}

// -------------------------------------------------------------------- io ----

TEST(Io, RoundTripPreservesGraph) {
  util::Rng rng(23);
  const Graph g = erdos_renyi(30, 0.2, rng, WeightMode::kUniform01);
  std::stringstream ss;
  write_edge_list(g, ss);
  const Graph h = read_edge_list(ss);
  ASSERT_EQ(h.num_nodes(), g.num_nodes());
  ASSERT_EQ(h.num_edges(), g.num_edges());
  for (const Edge& e : g.edges()) {
    EXPECT_DOUBLE_EQ(h.edge_weight(e.u, e.v), e.w);
  }
}

TEST(Io, SkipsComments) {
  std::stringstream ss("# a comment\n3 1\n# another\n0 2 1.5\n");
  const Graph g = read_edge_list(ss);
  EXPECT_EQ(g.num_nodes(), 3);
  EXPECT_DOUBLE_EQ(g.edge_weight(0, 2), 1.5);
}

TEST(Io, MalformedInputThrows) {
  std::stringstream empty;
  EXPECT_THROW(read_edge_list(empty), std::runtime_error);
  std::stringstream truncated("4 2\n0 1 1.0\n");
  EXPECT_THROW(read_edge_list(truncated), std::runtime_error);
  std::stringstream garbage("x y\n");
  EXPECT_THROW(read_edge_list(garbage), std::runtime_error);
}

}  // namespace
}  // namespace qq::graph
