#pragma once
// Shared fixture graphs for the test suites (formerly duplicated across
// qaoa2_test.cpp, solver_test.cpp, and robustness_test.cpp). The parity
// pins in solver_test.cpp depend on these being BIT-IDENTICAL to the
// historical in-test builders: same Rng seeds, same draw order, and the
// same edge-copy order (fuzz::add_disjoint_blob, which the fuzzer's
// many-components generator families use as well).

#include "fuzz/scenario.hpp"
#include "qgraph/generators.hpp"
#include "qgraph/graph.hpp"
#include "util/rng.hpp"

namespace qq::testing {

/// The solver suite's default workload: a connected-ish 10-node ER graph.
inline graph::Graph er_fixture(std::uint64_t seed = 41, graph::NodeId n = 10,
                               double p = 0.35) {
  util::Rng rng(seed);
  return graph::erdos_renyi(n, p, rng);
}

/// Two ER blobs of different size plus two isolated nodes (30 nodes, 4
/// connected components). The component-sharding fixture of qaoa2_test and
/// the QAOA^2 registry-dispatch parity pins of solver_test.
inline graph::Graph disconnected_fixture() {
  util::Rng rng(27);
  graph::Graph g(30);
  fuzz::add_disjoint_blob(g, graph::erdos_renyi(16, 0.3, rng), 0);
  fuzz::add_disjoint_blob(g, graph::erdos_renyi(12, 0.4, rng), 16);
  // nodes 28, 29 stay isolated
  return g;
}

/// Three disjoint 8-node ER blobs (24 nodes, 3 components) — the
/// degenerate-input sharding fixture of robustness_test.
inline graph::Graph disjoint_blobs_fixture() {
  util::Rng rng(3);
  graph::Graph g(24);
  for (int block = 0; block < 3; ++block) {
    fuzz::add_disjoint_blob(g, graph::erdos_renyi(8, 0.5, rng),
                            static_cast<graph::NodeId>(8 * block));
  }
  return g;
}

/// Sparse 20-node graph whose every edge has weight -1 (optimum cut 0).
inline graph::Graph negative_weight_fixture() {
  graph::Graph g(20);
  util::Rng rng(5);
  for (graph::NodeId u = 0; u < 20; ++u) {
    for (graph::NodeId v = u + 1; v < 20; ++v) {
      if (util::bernoulli(rng, 0.3)) g.add_edge(u, v, -1.0);
    }
  }
  return g;
}

}  // namespace qq::testing
