// Unit tests for the util foundation: RNG, statistics, thread pool,
// command-line parsing and table rendering.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <chrono>
#include <numeric>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "util/cli.hpp"
#include "util/mutex.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace qq::util {
namespace {

// ---------------------------------------------------------------- RNG ----

TEST(Rng, DeterministicForEqualSeeds) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, SplitStreamsAreIndependent) {
  Rng parent(7);
  Rng child = parent.split();
  // The child stream must not replay the parent stream.
  Rng parent_copy(7);
  (void)parent_copy.split();
  int matches = 0;
  for (int i = 0; i < 64; ++i) {
    if (child() == parent()) ++matches;
  }
  EXPECT_LT(matches, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = uniform(rng);
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(11);
  RunningStats s;
  for (int i = 0; i < 100000; ++i) s.add(uniform(rng));
  EXPECT_NEAR(s.mean(), 0.5, 0.01);
  EXPECT_NEAR(s.variance(), 1.0 / 12.0, 0.01);
}

TEST(Rng, UniformIntCoversInclusiveRange) {
  Rng rng(5);
  std::set<int> seen;
  for (int i = 0; i < 2000; ++i) {
    const int v = uniform_int(rng, -2, 3);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 6u);
}

TEST(Rng, NormalMomentsMatchStandard) {
  Rng rng(13);
  RunningStats s;
  for (int i = 0; i < 200000; ++i) s.add(normal(rng));
  EXPECT_NEAR(s.mean(), 0.0, 0.02);
  EXPECT_NEAR(s.stddev(), 1.0, 0.02);
}

TEST(Rng, BernoulliFrequencyTracksP) {
  Rng rng(17);
  int hits = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    if (bernoulli(rng, 0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

// -------------------------------------------------------------- stats ----

TEST(RunningStats, MatchesClosedForm) {
  RunningStats s;
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0, 5.0};
  for (double x : xs) s.add(x);
  EXPECT_EQ(s.count(), 5u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(RunningStats, MergeEqualsSinglePass) {
  Rng rng(23);
  RunningStats all, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double x = normal(rng);
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmptyIsIdentity) {
  RunningStats a, empty;
  a.add(1.0);
  a.add(2.0);
  const double mean_before = a.mean();
  a.merge(empty);
  EXPECT_DOUBLE_EQ(a.mean(), mean_before);
  RunningStats b;
  b.merge(a);
  EXPECT_DOUBLE_EQ(b.mean(), mean_before);
}

TEST(Stats, MedianOddAndEven) {
  EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median({4.0, 1.0, 3.0, 2.0}), 2.5);
  EXPECT_DOUBLE_EQ(median({}), 0.0);
}

TEST(Stats, PercentileInterpolates) {
  const std::vector<double> xs = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 10.0);
}

TEST(Stats, CorrelationSignsAndDegenerate) {
  const std::vector<double> xs = {1, 2, 3, 4};
  const std::vector<double> up = {2, 4, 6, 8};
  const std::vector<double> down = {8, 6, 4, 2};
  const std::vector<double> flat = {5, 5, 5, 5};
  EXPECT_NEAR(correlation(xs, up), 1.0, 1e-12);
  EXPECT_NEAR(correlation(xs, down), -1.0, 1e-12);
  EXPECT_DOUBLE_EQ(correlation(xs, flat), 0.0);
}

TEST(Histogram, BinsAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(-1.0);   // clamps into bin 0
  h.add(0.5);
  h.add(9.9);
  h.add(100.0);  // clamps into last bin
  EXPECT_EQ(h.total, 4u);
  EXPECT_EQ(h.counts[0], 2u);
  EXPECT_EQ(h.counts[4], 2u);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(0.0, 0.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

// -------------------------------------------------------- thread pool ----

TEST(ThreadPool, SubmitReturnsValues) {
  ThreadPool pool(4);
  auto f1 = pool.submit([] { return 21 * 2; });
  auto f2 = pool.submit([](int x) { return x + 1; }, 41);
  EXPECT_EQ(f1.get(), 42);
  EXPECT_EQ(f2.get(), 42);
}

TEST(ThreadPool, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(8);
  constexpr std::size_t n = 100000;
  std::vector<std::atomic<int>> hits(n);
  parallel_for(pool, 0, n, [&hits](std::size_t i) { hits[i]++; });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ThreadPool, ParallelForChunksSumMatchesSerial) {
  ThreadPool pool(6);
  constexpr std::size_t n = 1 << 18;
  std::atomic<long long> total{0};
  parallel_for_chunks(pool, 0, n, [&total](std::size_t lo, std::size_t hi) {
    long long partial = 0;
    for (std::size_t i = lo; i < hi; ++i) partial += static_cast<long long>(i);
    total += partial;
  });
  const long long expected =
      static_cast<long long>(n) * static_cast<long long>(n - 1) / 2;
  EXPECT_EQ(total.load(), expected);
}

TEST(ThreadPool, NestedParallelForCompletesWithoutDeadlock) {
  ThreadPool pool(4);
  std::atomic<int> outer{0};
  std::atomic<int> inner{0};
  parallel_for(pool, 0, 8, [&](std::size_t) {
    outer++;
    // Nested region must complete (cooperatively, callers helping drain
    // the chunk queue) instead of deadlocking.
    parallel_for(pool, 0, 16, [&](std::size_t) { inner++; });
  });
  EXPECT_EQ(outer.load(), 8);
  EXPECT_EQ(inner.load(), 8 * 16);
}

TEST(ThreadPool, NestedParallelForStillSplitsIntoChunks) {
  // The regression the cooperative rework fixes: a parallel region entered
  // from inside a worker used to collapse to ONE serial chunk. The chunk
  // plan is now independent of nesting, so the body must be invoked once
  // per planned chunk even inside a worker.
  ThreadPool pool(4);
  constexpr std::size_t n = 1 << 16;
  constexpr std::size_t grain = 1 << 10;
  const std::size_t expected = detail::plan_chunks(n, grain).count;
  ASSERT_GT(expected, 1u);

  std::atomic<std::size_t> chunk_calls{0};
  std::atomic<std::size_t> covered{0};
  auto fut = pool.submit([&] {
    parallel_for_chunks(
        pool, 0, n,
        [&](std::size_t lo, std::size_t hi) {
          chunk_calls++;
          covered += hi - lo;
        },
        grain);
  });
  fut.get();
  EXPECT_EQ(chunk_calls.load(), expected);
  EXPECT_EQ(covered.load(), n);
}

TEST(ThreadPool, ParallelForPropagatesBodyException) {
  ThreadPool pool(4);
  const auto run = [&pool] {
    parallel_for(
        pool, 0, 1 << 12,
        [](std::size_t i) {
          if (i == 2000) throw std::runtime_error("body failed");
        },
        /*grain=*/16);
  };
  EXPECT_THROW(run(), std::runtime_error);
  // Nested: the failure crosses the worker boundary too.
  auto fut = pool.submit([&run] {
    try {
      run();
    } catch (const std::runtime_error&) {
      return true;
    }
    return false;
  });
  EXPECT_TRUE(fut.get());
}

TEST(ThreadPool, TaskGroupRunsEverythingAndReportsFirstError) {
  ThreadPool pool(3);
  std::atomic<int> ran{0};
  ThreadPool::TaskGroup group(pool);
  for (int i = 0; i < 32; ++i) {
    group.run([&ran, i] {
      ran++;
      if (i == 7) throw std::logic_error("chunk 7");
    });
  }
  EXPECT_THROW(group.wait(), std::logic_error);
  EXPECT_EQ(ran.load(), 32);
}

TEST(ThreadPool, TryHelpOneExecutesQueuedWork) {
  ThreadPool pool(1);
  // Saturate the single worker so the submitted probe stays queued, then
  // help from this thread — the primitive the engine's coordinator uses.
  std::atomic<bool> started{false};
  std::atomic<bool> release{false};
  auto blocker = pool.submit([&started, &release] {
    started = true;
    while (!release.load()) std::this_thread::yield();
  });
  // Make sure the worker owns the blocker before queueing the probe, so
  // try_help_one below can only ever pick up the probe.
  while (!started.load()) std::this_thread::yield();
  std::atomic<bool> probe_ran{false};
  auto probe = pool.submit([&probe_ran] { probe_ran = true; });
  while (!pool.try_help_one()) std::this_thread::yield();
  EXPECT_TRUE(probe_ran.load());
  release = true;
  blocker.get();
  probe.get();
}

TEST(ThreadPool, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  int calls = 0;
  parallel_for(pool, 5, 5, [&calls](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPool, InsideWorkerDetection) {
  ThreadPool pool(2);
  EXPECT_FALSE(pool.inside_worker());
  auto fut = pool.submit([&pool] { return pool.inside_worker(); });
  EXPECT_TRUE(fut.get());
}

// ---------------------------------------------------- parallel_reduce ----

TEST(ParallelReduce, SumMatchesSerial) {
  ThreadPool pool(6);
  constexpr std::size_t n = 1 << 18;
  const long long total = parallel_reduce(
      pool, 0, n, 0LL,
      [](std::size_t lo, std::size_t hi) {
        long long partial = 0;
        for (std::size_t i = lo; i < hi; ++i)
          partial += static_cast<long long>(i);
        return partial;
      },
      [](long long a, long long b) { return a + b; },
      /*grain=*/1024);
  const long long expected =
      static_cast<long long>(n) * static_cast<long long>(n - 1) / 2;
  EXPECT_EQ(total, expected);
}

TEST(ParallelReduce, EmptyRangeReturnsIdentity) {
  ThreadPool pool(2);
  const int out = parallel_reduce(
      pool, 7, 7, 123,
      [](std::size_t, std::size_t) { return 999; },
      [](int a, int b) { return a + b; });
  EXPECT_EQ(out, 123);
}

TEST(ParallelReduce, CombinesChunksInAscendingOrder) {
  // Non-commutative combine (string concatenation) exposes the fold order:
  // chunk results must arrive left to right regardless of which worker
  // finishes first.
  ThreadPool pool(4);
  constexpr std::size_t n = 64;
  const std::string out = parallel_reduce(
      pool, 0, n, std::string{},
      [](std::size_t lo, std::size_t hi) {
        std::string s;
        for (std::size_t i = lo; i < hi; ++i) s += static_cast<char>('a' + i % 26);
        return s;
      },
      [](std::string acc, std::string chunk) { return acc + chunk; },
      /*grain=*/4);
  std::string expected;
  for (std::size_t i = 0; i < n; ++i)
    expected += static_cast<char>('a' + i % 26);
  EXPECT_EQ(out, expected);
}

TEST(ParallelReduce, NestedInsideWorkerStillReduces) {
  ThreadPool pool(4);
  auto fut = pool.submit([&pool] {
    return parallel_reduce(
        pool, 0, 1000, 0,
        [](std::size_t lo, std::size_t hi) { return static_cast<int>(hi - lo); },
        [](int a, int b) { return a + b; });
  });
  EXPECT_EQ(fut.get(), 1000);
}

TEST(ParallelReduce, BitForBitIdenticalAcrossPoolSizesAndNesting) {
  // The chunk plan ignores pool size and nesting, so the in-order fold
  // groups floating-point additions identically everywhere: a 1-thread
  // pool, an 8-thread pool, and a nested call inside a worker must agree
  // bit for bit (the QAOA^2 determinism pin relies on this).
  const auto run = [](ThreadPool& pool) {
    return parallel_reduce(
        pool, 0, 1 << 16, 0.0,
        [](std::size_t lo, std::size_t hi) {
          double partial = 0.0;
          for (std::size_t i = lo; i < hi; ++i) {
            partial += 1.0 / (1.0 + static_cast<double>(i));
          }
          return partial;
        },
        [](double a, double b) { return a + b; });
  };
  ThreadPool one(1), three(3), eight(8);
  const double expected = run(one);
  EXPECT_EQ(run(three), expected);
  EXPECT_EQ(run(eight), expected);
  auto nested = eight.submit([&run, &eight] { return run(eight); });
  EXPECT_EQ(nested.get(), expected);
}

TEST(ParallelReduce, DeterministicAcrossRunsAtFixedThreadCount) {
  ThreadPool pool(3);
  auto run = [&pool] {
    return parallel_reduce(
        pool, 0, 1 << 16, 0.0,
        [](std::size_t lo, std::size_t hi) {
          double partial = 0.0;
          for (std::size_t i = lo; i < hi; ++i) {
            partial += 1.0 / (1.0 + static_cast<double>(i));
          }
          return partial;
        },
        [](double a, double b) { return a + b; });
  };
  const double first = run();
  for (int rep = 0; rep < 3; ++rep) {
    const double again = run();
    EXPECT_EQ(first, again);  // bit-for-bit, not just approximately
  }
}

// ---------------------------------------------------------------- cli ----

TEST(Args, ParsesKeyValueAndFlags) {
  const char* argv[] = {"prog", "--nodes", "12", "--full", "--p=0.3"};
  Args args(5, argv);
  EXPECT_TRUE(args.has("full"));
  EXPECT_FALSE(args.has("missing"));
  EXPECT_EQ(args.get_int("nodes", 0), 12);
  EXPECT_DOUBLE_EQ(args.get_double("p", 0.0), 0.3);
  EXPECT_EQ(args.get_int("absent", 9), 9);
}

TEST(Args, ParsesIntListsCommaAndRange) {
  const char* argv[] = {"prog", "--a", "3,5,9", "--b", "2..6:2", "--c", "4..6"};
  Args args(7, argv);
  EXPECT_EQ(args.get_int_list("a", {}), (std::vector<int>{3, 5, 9}));
  EXPECT_EQ(args.get_int_list("b", {}), (std::vector<int>{2, 4, 6}));
  EXPECT_EQ(args.get_int_list("c", {}), (std::vector<int>{4, 5, 6}));
  EXPECT_EQ(args.get_int_list("zzz", {1, 2}), (std::vector<int>{1, 2}));
}

TEST(Args, ParsesDoubleLists) {
  const char* argv[] = {"prog", "--probs", "0.1,0.2,0.5"};
  Args args(3, argv);
  EXPECT_EQ(args.get_double_list("probs", {}),
            (std::vector<double>{0.1, 0.2, 0.5}));
}

// -------------------------------------------------------------- table ----

TEST(Table, RendersAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  const std::string s = t.str();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("---"), std::string::npos);
}

TEST(Grid, StoresAndFormatsValues) {
  Grid g("demo", {"r0", "r1"}, {"c0", "c1", "c2"}, 2);
  g.set(0, 0, 0.5);
  g.set(1, 2, 1.25);
  EXPECT_DOUBLE_EQ(g.at(0, 0), 0.5);
  EXPECT_DOUBLE_EQ(g.at(1, 2), 1.25);
  EXPECT_THROW(g.set(2, 0, 1.0), std::out_of_range);
  EXPECT_THROW(g.at(0, 3), std::out_of_range);
  const std::string s = g.str();
  EXPECT_NE(s.find("demo"), std::string::npos);
  EXPECT_NE(s.find("0.50"), std::string::npos);
  EXPECT_NE(s.find("1.25"), std::string::npos);
}

TEST(Timer, MeasuresElapsedTime) {
  Timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_GE(t.millis(), 15.0);
  t.reset();
  EXPECT_LT(t.millis(), 15.0);
}

// ------------------------------------------ Mutex/MutexLock/CondVar ----
// The annotated capability wrappers every subsystem locks through (the
// raw-mutex lint bans std::mutex elsewhere); these tests pin the wrapper
// semantics the engine's help loops depend on.

TEST(Mutex, MutualExclusionUnderContention) {
  Mutex mu;
  long counter = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 10000; ++i) {
        MutexLock lock(mu);
        ++counter;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter, 40000);
}

TEST(Mutex, TryLockReportsContention) {
  Mutex mu;
  mu.lock();
  EXPECT_FALSE(mu.try_lock());
  mu.unlock();
  EXPECT_TRUE(mu.try_lock());
  mu.unlock();
}

TEST(Mutex, MutexLockSupportsManualUnlockRelock) {
  // The help-loop pattern (ThreadPool::TaskGroup::drain, the engine's
  // help_until): drop the lock to run work, retake it to re-check state.
  Mutex mu;
  MutexLock lock(mu);
  lock.unlock();
  EXPECT_TRUE(mu.try_lock());  // genuinely released
  mu.unlock();
  lock.lock();  // retake; the destructor releases once more
}

TEST(CondVar, NotifyWakesPredicateLoop) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  std::thread producer([&] {
    MutexLock lock(mu);
    ready = true;
    cv.notify_one();
  });
  {
    MutexLock lock(mu);
    while (!ready) cv.wait(lock);
    EXPECT_TRUE(ready);
  }
  producer.join();
}

TEST(CondVar, WaitForReturnsOnNotifyOrTimeout) {
  // CondVar deliberately has no predicate waits (the thread-safety
  // analysis cannot see through a predicate closure), so callers loop:
  // timed waits bound each nap and the loop re-checks under the lock.
  Mutex mu;
  CondVar cv;
  bool ready = false;
  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    MutexLock lock(mu);
    ready = true;
    cv.notify_all();
  });
  {
    MutexLock lock(mu);
    while (!ready) cv.wait_for(lock, std::chrono::milliseconds(1));
    EXPECT_TRUE(ready);
  }
  producer.join();
}

}  // namespace
}  // namespace qq::util
