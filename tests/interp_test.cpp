// Tests for the INTERP layer-wise warm-start strategy and the explicit
// initial-parameter override.

#include <gtest/gtest.h>

#include "maxcut/exact.hpp"
#include "qaoa/interp.hpp"
#include "qaoa/qaoa.hpp"
#include "qgraph/generators.hpp"
#include "util/rng.hpp"

namespace qq::qaoa {
namespace {

TEST(InterpSchedule, SinglePointExtendsFlat) {
  const auto out = interp_schedule({0.7});
  ASSERT_EQ(out.size(), 2u);
  EXPECT_DOUBLE_EQ(out[0], 0.7);
  EXPECT_DOUBLE_EQ(out[1], 0.7);
}

TEST(InterpSchedule, TwoPointRuleMatchesHandComputation) {
  const auto out = interp_schedule({0.2, 0.8});
  ASSERT_EQ(out.size(), 3u);
  EXPECT_DOUBLE_EQ(out[0], 0.2);
  EXPECT_DOUBLE_EQ(out[1], 0.5);  // midpoint
  EXPECT_DOUBLE_EQ(out[2], 0.8);
}

TEST(InterpSchedule, PreservesMonotoneRamps) {
  const std::vector<double> ramp = {0.1, 0.3, 0.5, 0.7};
  const auto out = interp_schedule(ramp);
  ASSERT_EQ(out.size(), 5u);
  for (std::size_t i = 1; i < out.size(); ++i) {
    EXPECT_GE(out[i], out[i - 1] - 1e-12);
  }
  EXPECT_DOUBLE_EQ(out.front(), ramp.front());
  EXPECT_DOUBLE_EQ(out.back(), ramp.back());
}

TEST(InterpSchedule, EmptyThrows) {
  EXPECT_THROW(interp_schedule({}), std::invalid_argument);
}

TEST(Interp, RunsAllStagesAndStaysBounded) {
  util::Rng rng(1);
  const auto g = graph::erdos_renyi(10, 0.35, rng);
  const QaoaSolver solver(g);
  QaoaOptions opts;
  opts.layers = 4;
  opts.max_iterations = 60;
  opts.seed = 2;
  const InterpResult r = optimize_interp(solver, opts);
  EXPECT_EQ(r.stage_expectations.size(), 4u);
  EXPECT_EQ(r.final.layers, 4);
  EXPECT_LE(r.final.expectation, solver.exact_optimum() + 1e-9);
  EXPECT_GT(r.total_evaluations, r.final.evaluations);
}

TEST(Interp, FinalDepthNotWorseThanFirstStage) {
  util::Rng rng(3);
  const auto g = graph::erdos_renyi(10, 0.3, rng);
  const QaoaSolver solver(g);
  QaoaOptions opts;
  opts.layers = 3;
  opts.max_iterations = 80;
  opts.seed = 5;
  const InterpResult r = optimize_interp(solver, opts);
  EXPECT_GE(r.final.expectation,
            r.stage_expectations.front() - 0.05 * r.stage_expectations.front());
}

TEST(Interp, BeatsColdRandomInitOnAverage) {
  // The point of the warm start: same total budget, better (or equal)
  // expectation than a cold random start at the target depth, averaged
  // over instances.
  util::Rng rng(7);
  double interp_total = 0.0, cold_total = 0.0;
  for (int trial = 0; trial < 6; ++trial) {
    const auto g = graph::erdos_renyi(9, 0.4, rng);
    if (g.num_edges() == 0) continue;
    const QaoaSolver solver(g);
    QaoaOptions opts;
    opts.layers = 3;
    opts.max_iterations = 40;
    opts.init = InitKind::kRandom;
    opts.seed = static_cast<std::uint64_t>(trial);
    const InterpResult warm = optimize_interp(solver, opts);
    QaoaOptions cold = opts;
    cold.max_iterations = warm.total_evaluations;  // equal total budget
    const QaoaResult cold_result = solver.optimize(cold);
    interp_total += warm.final.expectation;
    cold_total += cold_result.expectation;
  }
  EXPECT_GE(interp_total, 0.97 * cold_total);
}

TEST(Interp, LayersValidation) {
  util::Rng rng(9);
  const auto g = graph::erdos_renyi(8, 0.4, rng);
  const QaoaSolver solver(g);
  QaoaOptions opts;
  opts.layers = 0;
  EXPECT_THROW(optimize_interp(solver, opts), std::invalid_argument);
}

TEST(InitialParameters, OverrideIsUsedExactly) {
  util::Rng rng(11);
  const auto g = graph::erdos_renyi(8, 0.4, rng);
  const QaoaSolver solver(g);
  QaoaOptions opts;
  opts.layers = 2;
  opts.max_iterations = 5;  // initial simplex only: stays near the override
  opts.initial_parameters = {0.3, 0.5, 0.4, 0.2};
  const QaoaResult r = solver.optimize(opts);
  // With a 5-evaluation budget, the incumbent is one of the simplex points
  // around the override.
  for (std::size_t i = 0; i < r.parameters.size(); ++i) {
    EXPECT_NEAR(r.parameters[i], opts.initial_parameters[i], 0.51);
  }
}

TEST(InitialParameters, WrongSizeThrows) {
  util::Rng rng(13);
  const auto g = graph::erdos_renyi(8, 0.4, rng);
  QaoaOptions opts;
  opts.layers = 3;
  opts.initial_parameters = {0.1, 0.2};  // needs 6
  EXPECT_THROW(solve_qaoa(g, opts), std::invalid_argument);
}

}  // namespace
}  // namespace qq::qaoa
