// Tests for the state-vector simulator, cross-validated against an
// independent dense-matrix reference implementation (full 2^n x 2^n
// operators built from first principles — slow but unarguable).

#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <numbers>
#include <vector>

#include "qsim/measure.hpp"
#include "qsim/statevector.hpp"
#include "util/rng.hpp"

namespace qq::sim {
namespace {

using Amp = std::complex<double>;
constexpr double kTol = 1e-10;

// ------------------------------------------------ dense reference model ----

namespace ref {

using Matrix = std::vector<std::vector<Amp>>;  // full 2^n x 2^n operator

Matrix identity(std::size_t dim) {
  Matrix m(dim, std::vector<Amp>(dim, Amp{0, 0}));
  for (std::size_t i = 0; i < dim; ++i) m[i][i] = Amp{1, 0};
  return m;
}

/// Embed a 2x2 gate acting on qubit q (bit q of the index).
Matrix one_qubit(int n, int q, const std::array<Amp, 4>& u) {
  const std::size_t dim = std::size_t{1} << n;
  Matrix m(dim, std::vector<Amp>(dim, Amp{0, 0}));
  for (std::size_t i = 0; i < dim; ++i) {
    for (std::size_t j = 0; j < dim; ++j) {
      if ((i & ~(std::size_t{1} << q)) != (j & ~(std::size_t{1} << q))) {
        continue;  // all other bits must match
      }
      const std::size_t bi = (i >> q) & 1;
      const std::size_t bj = (j >> q) & 1;
      m[i][j] = u[bi * 2 + bj];
    }
  }
  return m;
}

Matrix cx(int n, int control, int target) {
  const std::size_t dim = std::size_t{1} << n;
  Matrix m(dim, std::vector<Amp>(dim, Amp{0, 0}));
  for (std::size_t j = 0; j < dim; ++j) {
    std::size_t i = j;
    if ((j >> control) & 1) i = j ^ (std::size_t{1} << target);
    m[i][j] = Amp{1, 0};
  }
  return m;
}

Matrix diagonal_phase(int n, const std::vector<double>& phases) {
  const std::size_t dim = std::size_t{1} << n;
  Matrix m(dim, std::vector<Amp>(dim, Amp{0, 0}));
  for (std::size_t j = 0; j < dim; ++j) {
    m[j][j] = std::polar(1.0, phases[j]);
  }
  return m;
}

std::vector<Amp> apply(const Matrix& m, const std::vector<Amp>& v) {
  std::vector<Amp> out(v.size(), Amp{0, 0});
  for (std::size_t i = 0; i < v.size(); ++i) {
    for (std::size_t j = 0; j < v.size(); ++j) out[i] += m[i][j] * v[j];
  }
  return out;
}

std::array<Amp, 4> h_gate() {
  const double s = 1.0 / std::sqrt(2.0);
  return {Amp{s, 0}, Amp{s, 0}, Amp{s, 0}, Amp{-s, 0}};
}
std::array<Amp, 4> rx_gate(double t) {
  return {Amp{std::cos(t / 2), 0}, Amp{0, -std::sin(t / 2)},
          Amp{0, -std::sin(t / 2)}, Amp{std::cos(t / 2), 0}};
}
std::array<Amp, 4> ry_gate(double t) {
  return {Amp{std::cos(t / 2), 0}, Amp{-std::sin(t / 2), 0},
          Amp{std::sin(t / 2), 0}, Amp{std::cos(t / 2), 0}};
}
std::array<Amp, 4> rz_gate(double t) {
  return {std::polar(1.0, -t / 2), Amp{0, 0}, Amp{0, 0}, std::polar(1.0, t / 2)};
}
std::array<Amp, 4> x_gate() {
  return {Amp{0, 0}, Amp{1, 0}, Amp{1, 0}, Amp{0, 0}};
}
std::array<Amp, 4> y_gate() {
  return {Amp{0, 0}, Amp{0, -1}, Amp{0, 1}, Amp{0, 0}};
}
std::array<Amp, 4> z_gate() {
  return {Amp{1, 0}, Amp{0, 0}, Amp{0, 0}, Amp{-1, 0}};
}
std::array<Amp, 4> phase_gate(double t) {
  return {Amp{1, 0}, Amp{0, 0}, Amp{0, 0}, std::polar(1.0, t)};
}

}  // namespace ref

void expect_state_eq(const StateVector& sv, const std::vector<Amp>& expected,
                     double tol = kTol) {
  ASSERT_EQ(sv.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_NEAR(sv.data()[i].real(), expected[i].real(), tol) << "amp " << i;
    EXPECT_NEAR(sv.data()[i].imag(), expected[i].imag(), tol) << "amp " << i;
  }
}

// ----------------------------------------------------------- basic state ----

TEST(StateVector, InitializesToZeroState) {
  StateVector sv(3);
  EXPECT_EQ(sv.size(), 8u);
  EXPECT_NEAR(std::abs(sv.amplitude(0) - Amp{1, 0}), 0.0, kTol);
  for (std::size_t i = 1; i < 8; ++i) {
    EXPECT_NEAR(std::abs(sv.amplitude(i)), 0.0, kTol);
  }
  EXPECT_NEAR(sv.norm_squared(), 1.0, kTol);
}

TEST(StateVector, PlusStateIsUniform) {
  const StateVector sv = StateVector::plus_state(4);
  const double expected = 1.0 / 4.0;  // amplitude 1/sqrt(16)
  for (std::size_t i = 0; i < sv.size(); ++i) {
    EXPECT_NEAR(sv.amplitude(i).real(), expected, kTol);
    EXPECT_NEAR(sv.amplitude(i).imag(), 0.0, kTol);
  }
}

TEST(StateVector, ResetToPlusMatchesPlusStateBitForBit) {
  // The workspace-reuse primitive: an arbitrarily mangled state reset in
  // place must equal a freshly constructed |+>^n exactly.
  StateVector sv(5);
  sv.apply_h(0);
  sv.apply_rx(3, 0.7);
  sv.apply_rzz(1, 4, 1.1);
  sv.reset_to_plus();
  const StateVector fresh = StateVector::plus_state(5);
  ASSERT_EQ(sv.size(), fresh.size());
  for (std::size_t i = 0; i < sv.size(); ++i) {
    EXPECT_EQ(sv.amplitude(i), fresh.amplitude(i));
  }
}

TEST(StateVector, RejectsBadQubitCounts) {
  EXPECT_THROW(StateVector(-1), std::invalid_argument);
  EXPECT_THROW(StateVector(kMaxQubits + 1), std::invalid_argument);
}

TEST(StateVector, HOnZeroGivesPlus) {
  StateVector sv(1);
  sv.apply_h(0);
  const double s = 1.0 / std::sqrt(2.0);
  expect_state_eq(sv, {Amp{s, 0}, Amp{s, 0}});
  sv.apply_h(0);  // H^2 = I
  expect_state_eq(sv, {Amp{1, 0}, Amp{0, 0}});
}

TEST(StateVector, BellStateProbabilities) {
  StateVector sv(2);
  sv.apply_h(0);
  sv.apply_cx(0, 1);
  const auto probs = probabilities(sv);
  EXPECT_NEAR(probs[0b00], 0.5, kTol);
  EXPECT_NEAR(probs[0b11], 0.5, kTol);
  EXPECT_NEAR(probs[0b01], 0.0, kTol);
  EXPECT_NEAR(probs[0b10], 0.0, kTol);
  EXPECT_NEAR(expectation_zz(sv, 0, 1), 1.0, kTol);
}

TEST(StateVector, RzzAppliesCorrectPhases) {
  const double theta = 0.7;
  StateVector sv = StateVector::plus_state(2);
  sv.apply_rzz(0, 1, theta);
  // states 00 and 11: e^{-i theta/2}; 01 and 10: e^{+i theta/2}
  const Amp same = std::polar(0.5, -theta / 2);
  const Amp diff = std::polar(0.5, theta / 2);
  expect_state_eq(sv, {same, diff, diff, same});
}

TEST(StateVector, DiagonalPhaseMatchesExplicitMultiplication) {
  StateVector sv = StateVector::plus_state(3);
  const std::vector<double> values = {0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0};
  const double scale = 0.31;
  StateVector expected = sv;
  sv.apply_diagonal_phase(values, scale);
  for (std::size_t i = 0; i < sv.size(); ++i) {
    const Amp want = expected.amplitude(i) * std::polar(1.0, -scale * values[i]);
    EXPECT_NEAR(std::abs(sv.amplitude(i) - want), 0.0, kTol);
  }
  EXPECT_THROW(sv.apply_diagonal_phase({1.0, 2.0}, 1.0), std::invalid_argument);
}

TEST(StateVector, GateArgumentValidation) {
  StateVector sv(2);
  EXPECT_THROW(sv.apply_h(2), std::out_of_range);
  EXPECT_THROW(sv.apply_h(-1), std::out_of_range);
  EXPECT_THROW(sv.apply_cx(0, 0), std::invalid_argument);
  EXPECT_THROW(sv.apply_rzz(1, 1, 0.3), std::invalid_argument);
  EXPECT_THROW(sv.apply_cz(0, 3), std::out_of_range);
}

TEST(StateVector, SwapExchangesQubits) {
  StateVector sv(2);
  sv.apply_x(0);  // |01> in bit order (q0 = 1)
  sv.apply_swap(0, 1);
  const auto probs = probabilities(sv);
  EXPECT_NEAR(probs[0b10], 1.0, kTol);  // q1 = 1 now
}

TEST(StateVector, NormalizeRestoresUnitNorm) {
  StateVector sv(2);
  sv.set_amplitude(0, Amp{3.0, 0.0});
  sv.set_amplitude(3, Amp{0.0, 4.0});
  sv.normalize();
  EXPECT_NEAR(sv.norm_squared(), 1.0, kTol);
  EXPECT_NEAR(std::abs(sv.amplitude(0)), 0.6, kTol);
  EXPECT_NEAR(std::abs(sv.amplitude(3)), 0.8, kTol);
}

// --------------------------------------- randomized reference validation ----

/// Random circuits on n qubits, every gate checked against the dense model.
class ReferenceValidation : public ::testing::TestWithParam<int> {};

TEST_P(ReferenceValidation, RandomCircuitMatchesDenseModel) {
  const int n = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(n) * 7919 + 5);
  StateVector sv(n);
  std::vector<Amp> ref_state(std::size_t{1} << n, Amp{0, 0});
  ref_state[0] = Amp{1, 0};

  for (int step = 0; step < 40; ++step) {
    const int kind = util::uniform_int(rng, 0, 10);
    const int q = util::uniform_int(rng, 0, n - 1);
    int q2 = util::uniform_int(rng, 0, n - 1);
    while (n > 1 && q2 == q) q2 = util::uniform_int(rng, 0, n - 1);
    const double theta = util::uniform(rng, -3.0, 3.0);
    switch (kind) {
      case 0:
        sv.apply_h(q);
        ref_state = ref::apply(ref::one_qubit(n, q, ref::h_gate()), ref_state);
        break;
      case 1:
        sv.apply_x(q);
        ref_state = ref::apply(ref::one_qubit(n, q, ref::x_gate()), ref_state);
        break;
      case 2:
        sv.apply_y(q);
        ref_state = ref::apply(ref::one_qubit(n, q, ref::y_gate()), ref_state);
        break;
      case 3:
        sv.apply_z(q);
        ref_state = ref::apply(ref::one_qubit(n, q, ref::z_gate()), ref_state);
        break;
      case 4:
        sv.apply_rx(q, theta);
        ref_state =
            ref::apply(ref::one_qubit(n, q, ref::rx_gate(theta)), ref_state);
        break;
      case 5:
        sv.apply_ry(q, theta);
        ref_state =
            ref::apply(ref::one_qubit(n, q, ref::ry_gate(theta)), ref_state);
        break;
      case 6:
        sv.apply_rz(q, theta);
        ref_state =
            ref::apply(ref::one_qubit(n, q, ref::rz_gate(theta)), ref_state);
        break;
      case 7:
        sv.apply_phase(q, theta);
        ref_state =
            ref::apply(ref::one_qubit(n, q, ref::phase_gate(theta)), ref_state);
        break;
      case 8:
        if (n < 2) continue;
        sv.apply_cx(q, q2);
        ref_state = ref::apply(ref::cx(n, q, q2), ref_state);
        break;
      case 9: {
        if (n < 2) continue;
        sv.apply_rzz(q, q2, theta);
        std::vector<double> phases(std::size_t{1} << n, 0.0);
        for (std::size_t s = 0; s < phases.size(); ++s) {
          const bool za = (s >> q) & 1;
          const bool zb = (s >> q2) & 1;
          phases[s] = (za == zb) ? -theta / 2 : theta / 2;
        }
        ref_state = ref::apply(ref::diagonal_phase(n, phases), ref_state);
        break;
      }
      default: {
        if (n < 2) continue;
        sv.apply_cz(q, q2);
        std::vector<double> phases(std::size_t{1} << n, 0.0);
        for (std::size_t s = 0; s < phases.size(); ++s) {
          if (((s >> q) & 1) && ((s >> q2) & 1)) {
            phases[s] = std::numbers::pi;
          }
        }
        ref_state = ref::apply(ref::diagonal_phase(n, phases), ref_state);
        break;
      }
    }
  }
  for (std::size_t i = 0; i < ref_state.size(); ++i) {
    EXPECT_NEAR(std::abs(sv.data()[i] - ref_state[i]), 0.0, 1e-9)
        << "amplitude " << i;
  }
  EXPECT_NEAR(sv.norm_squared(), 1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(QubitCounts, ReferenceValidation,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(StateVector, NormPreservedOnLargerRandomCircuit) {
  const int n = 12;
  util::Rng rng(99);
  StateVector sv = StateVector::plus_state(n);
  for (int step = 0; step < 200; ++step) {
    const int q = util::uniform_int(rng, 0, n - 1);
    int q2 = util::uniform_int(rng, 0, n - 1);
    while (q2 == q) q2 = util::uniform_int(rng, 0, n - 1);
    switch (step % 5) {
      case 0: sv.apply_h(q); break;
      case 1: sv.apply_rx(q, util::uniform(rng, -2.0, 2.0)); break;
      case 2: sv.apply_cx(q, q2); break;
      case 3: sv.apply_rzz(q, q2, util::uniform(rng, -2.0, 2.0)); break;
      default: sv.apply_rz(q, util::uniform(rng, -2.0, 2.0)); break;
    }
  }
  EXPECT_NEAR(sv.norm_squared(), 1.0, 1e-9);
}

// ---------------------------------------------------------- measurement ----

TEST(Measure, ProbabilitiesSumToOne) {
  util::Rng rng(7);
  StateVector sv = StateVector::plus_state(6);
  for (int i = 0; i < 6; ++i) sv.apply_rx(i, util::uniform(rng, -2.0, 2.0));
  const auto probs = probabilities(sv);
  double sum = 0.0;
  for (double p : probs) sum += p;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(Measure, ArgmaxFindsDominantState) {
  StateVector sv(3);
  sv.apply_x(0);
  sv.apply_x(2);  // |101> = index 5
  EXPECT_EQ(argmax_probability(sv), 5u);
}

TEST(Measure, TopKSortedAndConsistent) {
  StateVector sv(2);
  sv.apply_ry(0, 0.4);
  sv.apply_ry(1, 1.2);
  const auto top = top_k_states(sv, 4);
  ASSERT_EQ(top.size(), 4u);
  for (std::size_t i = 1; i < top.size(); ++i) {
    EXPECT_GE(top[i - 1].second, top[i].second);
  }
  const auto probs = probabilities(sv);
  for (const auto& [state, p] : top) {
    EXPECT_NEAR(probs[state], p, kTol);
  }
  EXPECT_EQ(top_k_states(sv, 2).size(), 2u);
  EXPECT_EQ(top_k_states(sv, 100).size(), 4u);  // clamped to 2^n
  EXPECT_THROW(top_k_states(sv, 0), std::invalid_argument);
}

TEST(Measure, SamplingFrequenciesTrackProbabilities) {
  StateVector sv(2);
  sv.apply_ry(0, 2.0 * std::acos(std::sqrt(0.75)));  // P(q0=1) = 0.25
  util::Rng rng(11);
  const auto shots = sample_counts(sv, 40000, rng);
  int ones = 0;
  for (const BasisState s : shots) ones += static_cast<int>(s & 1);
  EXPECT_NEAR(static_cast<double>(ones) / 40000.0, 0.25, 0.01);
}

TEST(Measure, SamplingDeterministicPerSeed) {
  StateVector sv = StateVector::plus_state(4);
  util::Rng a(5), b(5);
  EXPECT_EQ(sample_counts(sv, 100, a), sample_counts(sv, 100, b));
}

TEST(Measure, HistogramAggregatesAndSorts) {
  const std::vector<BasisState> shots = {3, 1, 3, 3, 1, 0};
  const auto hist = histogram(shots);
  ASSERT_EQ(hist.size(), 3u);
  EXPECT_EQ(hist[0].first, 3u);
  EXPECT_EQ(hist[0].second, 3);
  EXPECT_EQ(hist[1].first, 1u);
  EXPECT_EQ(hist[1].second, 2);
  EXPECT_EQ(hist[2].first, 0u);
  EXPECT_EQ(hist[2].second, 1);
}

TEST(Measure, ExpectationZOnBasisAndSuperposition) {
  StateVector sv(1);
  EXPECT_NEAR(expectation_z(sv, 0), 1.0, kTol);  // |0>
  sv.apply_x(0);
  EXPECT_NEAR(expectation_z(sv, 0), -1.0, kTol);  // |1>
  sv.apply_h(0);
  EXPECT_NEAR(expectation_z(sv, 0), 0.0, kTol);  // |->
}

TEST(Measure, ExpectationZzOnProductAndEntangledStates) {
  StateVector sv(2);
  sv.apply_x(1);  // |10>
  EXPECT_NEAR(expectation_zz(sv, 0, 1), -1.0, kTol);
  StateVector bell(2);
  bell.apply_h(0);
  bell.apply_cx(0, 1);
  EXPECT_NEAR(expectation_zz(bell, 0, 1), 1.0, kTol);
  EXPECT_THROW(expectation_zz(bell, 0, 5), std::out_of_range);
}

TEST(Measure, ExpectationDiagonalMatchesManualSum) {
  util::Rng rng(13);
  StateVector sv = StateVector::plus_state(5);
  for (int i = 0; i < 5; ++i) sv.apply_ry(i, util::uniform(rng, -1.5, 1.5));
  std::vector<double> values(sv.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    values[i] = util::uniform(rng, -3.0, 3.0);
  }
  double manual = 0.0;
  const auto probs = probabilities(sv);
  for (std::size_t i = 0; i < values.size(); ++i) manual += probs[i] * values[i];
  EXPECT_NEAR(expectation_diagonal(sv, values), manual, 1e-9);
  EXPECT_THROW(expectation_diagonal(sv, {1.0}), std::invalid_argument);
}

}  // namespace
}  // namespace qq::sim
