// Tests for the cache-blocked / distribution-emulating state vector:
// bit-exact agreement with the flat simulator across block counts, and the
// communication accounting rules of the Doi-Horii scheme (diagonal gates
// are free; non-diagonal gates on global qubits move the whole state).

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "qsim/blocked.hpp"
#include "qsim/measure.hpp"
#include "qsim/simd.hpp"
#include "util/rng.hpp"

namespace qq::sim {
namespace {

void expect_matches_flat(const BlockedStateVector& blocked,
                         const StateVector& flat, double tol = 1e-12) {
  const StateVector gathered = blocked.to_statevector();
  ASSERT_EQ(gathered.size(), flat.size());
  for (std::size_t i = 0; i < flat.size(); ++i) {
    EXPECT_NEAR(std::abs(gathered.data()[i] - flat.data()[i]), 0.0, tol)
        << "amplitude " << i;
  }
}

TEST(Blocked, ConstructionAndValidation) {
  BlockedStateVector sv(6, 2);
  EXPECT_EQ(sv.num_blocks(), 4u);
  EXPECT_EQ(sv.num_qubits(), 6);
  EXPECT_THROW(BlockedStateVector(4, 5), std::invalid_argument);
  EXPECT_THROW(BlockedStateVector(4, -1), std::invalid_argument);
  EXPECT_THROW(BlockedStateVector(-1, 0), std::invalid_argument);
}

TEST(Blocked, InitialStateIsZeroKet) {
  const BlockedStateVector sv(5, 2);
  const StateVector flat(5);
  expect_matches_flat(sv, flat);
}

TEST(Blocked, PlusStateMatches) {
  BlockedStateVector sv(6, 3);
  sv.set_plus_state();
  expect_matches_flat(sv, StateVector::plus_state(6));
}

class BlockedEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(BlockedEquivalence, RandomCircuitMatchesFlatSimulator) {
  const int block_bits = GetParam();
  const int n = 8;
  util::Rng rng(static_cast<std::uint64_t>(block_bits) * 131 + 7);
  BlockedStateVector blocked(n, block_bits);
  blocked.set_plus_state();
  StateVector flat = StateVector::plus_state(n);

  for (int step = 0; step < 60; ++step) {
    const int q = util::uniform_int(rng, 0, n - 1);
    int q2 = util::uniform_int(rng, 0, n - 1);
    while (q2 == q) q2 = util::uniform_int(rng, 0, n - 1);
    const double t = util::uniform(rng, -2.0, 2.0);
    switch (util::uniform_int(rng, 0, 4)) {
      case 0:
        blocked.apply_h(q);
        flat.apply_h(q);
        break;
      case 1:
        blocked.apply_rx(q, t);
        flat.apply_rx(q, t);
        break;
      case 2:
        blocked.apply_rz(q, t);
        flat.apply_rz(q, t);
        break;
      case 3:
        blocked.apply_rzz(q, q2, t);
        flat.apply_rzz(q, q2, t);
        break;
      default:
        blocked.apply_cx(q, q2);
        flat.apply_cx(q, q2);
        break;
    }
  }
  expect_matches_flat(blocked, flat, 1e-10);
}

INSTANTIATE_TEST_SUITE_P(BlockCounts, BlockedEquivalence,
                         ::testing::Values(0, 1, 2, 4, 8));

// The blocked simulator's diagonal kernels stream through the same
// dispatched simd:: primitives as the flat one, and its non-diagonal
// kernels use the flat generic 2x2 expressions — so blocked-vs-flat parity
// is EXACT (bit-for-bit), and must stay exact under every SIMD backend.
TEST(Blocked, SimdBackendsMatchFlatBitForBit) {
  const simd::Isa entry = simd::active_isa();
  std::vector<simd::Isa> isas{simd::Isa::kScalar};
  for (const simd::Isa isa : {simd::Isa::kAvx2, simd::Isa::kAvx512}) {
    if (simd::set_isa(isa) == isa) isas.push_back(isa);
  }

  const int n = 8;
  for (const simd::Isa isa : isas) {
    ASSERT_EQ(simd::set_isa(isa), isa);
    for (const int block_bits : {0, 2, 8}) {
      util::Rng rng(static_cast<std::uint64_t>(block_bits) * 131 + 7);
      BlockedStateVector blocked(n, block_bits);
      blocked.set_plus_state();
      StateVector flat = StateVector::plus_state(n);
      for (int step = 0; step < 60; ++step) {
        const int q = util::uniform_int(rng, 0, n - 1);
        int q2 = util::uniform_int(rng, 0, n - 1);
        while (q2 == q) q2 = util::uniform_int(rng, 0, n - 1);
        const double t = util::uniform(rng, -2.0, 2.0);
        switch (util::uniform_int(rng, 0, 4)) {
          case 0:
            blocked.apply_h(q);
            flat.apply_h(q);
            break;
          case 1:
            blocked.apply_rx(q, t);
            flat.apply_rx(q, t);
            break;
          case 2:
            blocked.apply_rz(q, t);
            flat.apply_rz(q, t);
            break;
          case 3:
            blocked.apply_rzz(q, q2, t);
            flat.apply_rzz(q, q2, t);
            break;
          default:
            blocked.apply_cx(q, q2);
            flat.apply_cx(q, q2);
            break;
        }
      }
      const StateVector gathered = blocked.to_statevector();
      ASSERT_EQ(gathered.size(), flat.size());
      EXPECT_EQ(std::memcmp(gathered.data().data(), flat.data().data(),
                            flat.size() * sizeof(Amplitude)),
                0)
          << "block_bits=" << block_bits << " under " << simd::isa_name(isa);
    }
  }
  simd::set_isa(entry);
}

TEST(Blocked, DiagonalGatesAreCommunicationFree) {
  BlockedStateVector sv(8, 3);
  sv.set_plus_state();
  sv.apply_rz(7, 0.4);       // global qubit, but diagonal
  sv.apply_rzz(6, 7, 0.3);   // both global, diagonal
  sv.apply_rzz(0, 7, 0.2);   // mixed, diagonal
  EXPECT_EQ(sv.stats().amps_exchanged, 0u);
  EXPECT_EQ(sv.stats().global_gates, 0u);
  EXPECT_EQ(sv.stats().local_gates, 3u);
}

TEST(Blocked, LocalGatesAreCommunicationFree) {
  BlockedStateVector sv(8, 3);  // local qubits 0..4
  sv.set_plus_state();
  sv.apply_h(0);
  sv.apply_rx(4, 0.5);
  sv.apply_cx(1, 2);
  sv.apply_cx(7, 3);  // control global, target local: still free
  EXPECT_EQ(sv.stats().amps_exchanged, 0u);
  EXPECT_EQ(sv.stats().local_gates, 4u);
}

TEST(Blocked, GlobalNonDiagonalGateMovesWholeState) {
  BlockedStateVector sv(8, 3);
  sv.set_plus_state();
  sv.apply_h(7);  // global, non-diagonal
  EXPECT_EQ(sv.stats().global_gates, 1u);
  EXPECT_EQ(sv.stats().amps_exchanged, std::uint64_t{1} << 8);
}

TEST(Blocked, GlobalTargetCxMovesHalfState) {
  BlockedStateVector sv(8, 3);
  sv.set_plus_state();
  sv.apply_cx(0, 7);  // control local, target global
  EXPECT_EQ(sv.stats().amps_exchanged, std::uint64_t{1} << 7);
  sv.apply_cx(6, 7);  // both global
  EXPECT_EQ(sv.stats().amps_exchanged, 2u * (std::uint64_t{1} << 7));
}

TEST(Blocked, QaoaLayerCommunicationProfile) {
  // A full QAOA layer on the blocked simulator: the cost layer (all RZZ)
  // is communication-free; only the mixer's RX on the k global qubits
  // moves data. This is exactly why distributed QAOA simulation scales.
  const int n = 10, k = 2;
  BlockedStateVector sv(n, k);
  sv.set_plus_state();
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) sv.apply_rzz(u, v, 0.1);
  }
  EXPECT_EQ(sv.stats().amps_exchanged, 0u);
  for (int q = 0; q < n; ++q) sv.apply_rx(q, 0.5);
  EXPECT_EQ(sv.stats().global_gates, static_cast<std::uint64_t>(k));
  EXPECT_EQ(sv.stats().amps_exchanged,
            static_cast<std::uint64_t>(k) * (std::uint64_t{1} << n));
}

TEST(Blocked, ErrorsOnBadQubits) {
  BlockedStateVector sv(4, 1);
  EXPECT_THROW(sv.apply_h(4), std::out_of_range);
  EXPECT_THROW(sv.apply_rx(-1, 0.1), std::out_of_range);
  EXPECT_THROW(sv.apply_cx(2, 2), std::invalid_argument);
  EXPECT_THROW(sv.apply_rzz(0, 4, 0.1), std::invalid_argument);
}

}  // namespace
}  // namespace qq::sim
