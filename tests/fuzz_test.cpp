// Tests for the adversarial fuzz harness (src/fuzz): scenario-generator
// determinism and validity, spec-grammar edge cases against the registry's
// length/depth guards, oracle sensitivity, reducer shrinking, case-file
// round-trips, and a small end-to-end campaign that must come back clean.

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "fuzz/case_io.hpp"
#include "fuzz/fuzzer.hpp"
#include "fuzz/oracle.hpp"
#include "fuzz/reducer.hpp"
#include "fuzz/scenario.hpp"
#include "solver/registry.hpp"
#include "test_graphs.hpp"
#include "util/rng.hpp"

namespace qq::fuzz {
namespace {

bool same_graph(const graph::Graph& a, const graph::Graph& b) {
  if (a.num_nodes() != b.num_nodes() || a.num_edges() != b.num_edges()) {
    return false;
  }
  for (std::size_t i = 0; i < a.edges().size(); ++i) {
    const graph::Edge& ea = a.edges()[i];
    const graph::Edge& eb = b.edges()[i];
    if (ea.u != eb.u || ea.v != eb.v || ea.w != eb.w) return false;
  }
  return true;
}

// ----------------------------------------------------------- generators ----

TEST(Scenario, MakeScenarioIsDeterministic) {
  for (std::uint64_t seed : {0ULL, 1ULL, 77ULL, 0xdeadbeefULL}) {
    const Scenario a = make_scenario(seed);
    const Scenario b = make_scenario(seed);
    EXPECT_EQ(a.kind, b.kind);
    EXPECT_EQ(a.family, b.family);
    EXPECT_EQ(a.spec, b.spec);
    EXPECT_EQ(a.deeper_spec, b.deeper_spec);
    EXPECT_EQ(a.merge_spec, b.merge_spec);
    EXPECT_EQ(a.max_qubits, b.max_qubits);
    EXPECT_EQ(a.solve_seed, b.solve_seed);
    EXPECT_TRUE(same_graph(a.graph, b.graph));
  }
}

TEST(Scenario, GeneratedScenariosAreStructurallyValid) {
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    const Scenario s = make_scenario(seed);
    EXPECT_EQ(s.scenario_seed, seed);
    EXPECT_FALSE(s.family.empty());
    EXPECT_FALSE(s.spec.empty());
    if (s.kind == ProbeKind::kSolver) {
      EXPECT_LE(s.graph.num_nodes(), 16) << "seed " << seed;
    } else {
      EXPECT_GE(s.max_qubits, 2);
      EXPECT_FALSE(s.deeper_spec.empty());
      EXPECT_FALSE(s.merge_spec.empty());
      // The driver rejects combinator merge specs; the generator must not
      // produce one.
      EXPECT_NE(s.merge_spec.rfind("best:", 0), 0u) << s.merge_spec;
    }
  }
}

TEST(Scenario, EveryFamilyBuildsAValidGraph) {
  util::Rng rng(123);
  for (const std::string_view family : graph_families()) {
    const graph::Graph g = make_family_graph(family, rng, 20);
    for (const graph::Edge& e : g.edges()) {
      EXPECT_GE(e.u, 0);
      EXPECT_LT(e.v, g.num_nodes());
      EXPECT_NE(e.u, e.v);
    }
  }
  EXPECT_THROW(make_family_graph("no_such_family", rng, 10),
               std::invalid_argument);
}

TEST(Scenario, RandomSpecsAlwaysParse) {
  util::Rng rng(7);
  const solver::SolverRegistry& registry = solver::SolverRegistry::global();
  for (int i = 0; i < 100; ++i) {
    const std::string spec = random_spec(rng, /*qubit_cap=*/12);
    EXPECT_NO_THROW(registry.make(spec)) << spec;
  }
}

TEST(Scenario, EveryMalformedTemplateThrows) {
  for (const std::string& spec : malformed_spec_templates()) {
    EXPECT_TRUE(check_malformed_spec(spec).empty())
        << "template accepted or threw the wrong type: " << spec;
  }
  // Dynamic classes (overlong, deep nesting) too.
  util::Rng rng(99);
  for (int i = 0; i < 50; ++i) {
    const std::string spec = random_malformed_spec(rng);
    EXPECT_TRUE(check_malformed_spec(spec).empty())
        << spec.substr(0, 60) << "... (" << spec.size() << " chars)";
  }
}

// ------------------------------------------------ spec grammar hardening ----

TEST(SpecGuards, ShallowCombinatorNestingIsAccepted) {
  const solver::SolverRegistry& registry = solver::SolverRegistry::global();
  EXPECT_NO_THROW(registry.make("best:best:greedy|random|anneal"));
  EXPECT_NO_THROW(registry.make("best: greedy | random "));
  // A trailing colon with no params is equivalent to the bare name ("best:"
  // selects the default QAOA|GW pairing just like "best").
  EXPECT_NO_THROW(registry.make("best:"));
  EXPECT_NO_THROW(registry.make("anneal:"));
}

TEST(SpecGuards, DeepCombinatorNestingThrowsInsteadOfOverflowing) {
  const solver::SolverRegistry& registry = solver::SolverRegistry::global();
  std::string deep;
  for (int i = 0; i < 200; ++i) deep += "best:";
  deep += "greedy";
  EXPECT_THROW(registry.make(deep), std::invalid_argument);
  // Just past the depth limit also throws (the limit counts make() levels).
  std::string barely;
  for (int i = 0; i < solver::kMaxSpecDepth; ++i) barely += "best:";
  barely += "greedy";
  EXPECT_THROW(registry.make(barely), std::invalid_argument);
  // ... and the guard resets: a normal spec still works afterwards.
  EXPECT_NO_THROW(registry.make("best:greedy|random"));
}

TEST(SpecGuards, OverlongSpecThrows) {
  const solver::SolverRegistry& registry = solver::SolverRegistry::global();
  const std::string overlong(solver::kMaxSpecLength + 1, 'a');
  EXPECT_THROW(registry.make(overlong), std::invalid_argument);
}

TEST(SpecGuards, ClassicGrammarErrorsStillThrow) {
  const solver::SolverRegistry& registry = solver::SolverRegistry::global();
  for (const char* spec :
       {"", "   ", "qaoa:p=1,p=2", "best:|greedy", "best:greedy||gw",
        "greedy:p=1", "anneal:sweeps=", "anneal:sweeps=abc", "nope",
        "best:nope|greedy"}) {
    EXPECT_THROW(registry.make(spec), std::invalid_argument) << spec;
  }
}

// --------------------------------------------------------------- oracles ----

TEST(Oracle, CleanScenarioHasNoViolations) {
  Scenario s;
  s.kind = ProbeKind::kSolver;
  s.graph = testing::er_fixture();
  s.family = "er";
  s.spec = "greedy";
  s.solve_seed = 5;
  EXPECT_TRUE(check_scenario(s).empty());
}

TEST(Oracle, MalformedScenarioSpecIsReportedNotThrown) {
  Scenario s;
  s.kind = ProbeKind::kSolver;
  s.graph = testing::er_fixture();
  s.spec = "no_such_solver";
  const auto violations = check_scenario(s);
  ASSERT_FALSE(violations.empty());
  EXPECT_EQ(violations.front().oracle, "spec_construct");
}

TEST(Oracle, AcceptingAMalformedSpecIsAViolation) {
  // "greedy" is valid, so the must-throw probe has to flag it.
  const auto violations = check_malformed_spec("greedy");
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations.front().oracle, "spec_guard");
}

TEST(Oracle, FormatViolationsRendersEachFinding) {
  const std::string text = format_violations(
      {{"recount", "expected 3 got 4"}, {"determinism", "run mismatch"}});
  EXPECT_NE(text.find("[recount]"), std::string::npos);
  EXPECT_NE(text.find("[determinism]"), std::string::npos);
}

// --------------------------------------------------------------- reducer ----

TEST(Reducer, ShrinksAFailingScenario) {
  // A malformed spec fails regardless of the graph, so the reducer should
  // drive the graph toward (near-)empty while keeping the violation alive.
  Scenario s;
  s.kind = ProbeKind::kSolver;
  s.graph = testing::er_fixture(11, 12, 0.5);
  s.family = "er";
  s.spec = "no_such_solver";
  const ReducedCase reduced = reduce(s);
  ASSERT_FALSE(reduced.violations.empty());
  EXPECT_TRUE(reduced.shrunk);
  EXPECT_LT(reduced.scenario.graph.num_nodes(), s.graph.num_nodes());
  EXPECT_GT(reduced.checks, 0);
}

TEST(Reducer, CleanScenarioComesBackUnchanged) {
  Scenario s;
  s.kind = ProbeKind::kSolver;
  s.graph = testing::er_fixture();
  s.spec = "greedy";
  const ReducedCase reduced = reduce(s);
  EXPECT_TRUE(reduced.violations.empty());
  EXPECT_FALSE(reduced.shrunk);
  EXPECT_TRUE(same_graph(reduced.scenario.graph, s.graph));
}

// --------------------------------------------------------------- case io ----

TEST(CaseIo, RoundTripsBitForBit) {
  Scenario s = make_scenario(4242);
  s.kind = ProbeKind::kQaoa2;
  s.deeper_spec = "gw:rounds=3";
  s.merge_spec = "greedy";
  s.max_qubits = 5;
  const std::string text = to_case_file(s, {"round-trip test"});
  const Scenario back = from_case_string(text);
  EXPECT_EQ(back.kind, s.kind);
  EXPECT_EQ(back.family, s.family);
  EXPECT_EQ(back.scenario_seed, s.scenario_seed);
  EXPECT_EQ(back.solve_seed, s.solve_seed);
  EXPECT_EQ(back.spec, s.spec);
  EXPECT_EQ(back.deeper_spec, s.deeper_spec);
  EXPECT_EQ(back.merge_spec, s.merge_spec);
  EXPECT_EQ(back.max_qubits, s.max_qubits);
  EXPECT_TRUE(same_graph(back.graph, s.graph));
}

TEST(CaseIo, MalformedCaseFilesThrow) {
  EXPECT_THROW(from_case_string(""), std::invalid_argument);  // no end
  EXPECT_THROW(from_case_string("nodes 3\nend\n"), std::invalid_argument);
  EXPECT_THROW(from_case_string("spec greedy\nend\n"), std::invalid_argument);
  EXPECT_THROW(from_case_string("edge 0 1 1\nnodes 3\nspec greedy\nend\n"),
               std::invalid_argument);
  EXPECT_THROW(
      from_case_string("nodes 3\nspec greedy\nfrobnicate 1\nend\n"),
      std::invalid_argument);
  EXPECT_THROW(
      from_case_string("nodes 3\nspec greedy\nedge 0 0 1\nend\n"),
      std::invalid_argument);  // self-loop
  EXPECT_THROW(load_case_file("/no/such/file.case"), std::invalid_argument);
}

TEST(CaseIo, ReproducerSnippetContainsTheScenario) {
  const Scenario s = from_case_string(
      "kind solver\nsolve_seed 9\nspec greedy\nnodes 2\nedge 0 1 2.5\nend\n");
  const std::string snippet = reproducer_snippet(s, {{"recount", "demo"}});
  EXPECT_NE(snippet.find("add_edge(0, 1, 2.5)"), std::string::npos);
  EXPECT_NE(snippet.find("\"greedy\""), std::string::npos);
  EXPECT_NE(snippet.find("int main()"), std::string::npos);
}

// -------------------------------------------------------------- campaign ----

TEST(Campaign, SmallCampaignRunsClean) {
  FuzzOptions options;
  options.seeds = 30;
  options.time_budget_seconds = 60.0;
  options.malformed_per_seed = 1;
  const FuzzReport report = run_fuzz(options);
  EXPECT_TRUE(report.clean()) << summarize_report(report);
  EXPECT_EQ(report.scenarios_run, 30);
  EXPECT_EQ(report.malformed_probes, 30);
  EXPECT_FALSE(report.family_counts.empty());
  EXPECT_FALSE(report.spec_counts.empty());
}

}  // namespace
}  // namespace qq::fuzz
