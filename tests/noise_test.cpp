// Tests for the trajectory-based NISQ noise model.

#include <gtest/gtest.h>

#include <bit>
#include <cmath>

#include "qaoa/cost_table.hpp"
#include "qcircuit/ansatz.hpp"
#include "qcircuit/execute.hpp"
#include "qcircuit/noise.hpp"
#include "qgraph/generators.hpp"
#include "qsim/measure.hpp"
#include "util/rng.hpp"

namespace qq::circuit {
namespace {

Circuit bell_circuit() {
  Circuit qc(2);
  qc.h(0).cx(0, 1);
  return qc;
}

TEST(NoiseModel, Validation) {
  NoiseModel bad;
  bad.depolarizing_1q = 1.5;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = NoiseModel{};
  bad.readout_flip = -0.1;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  NoiseModel ok;
  EXPECT_NO_THROW(ok.validate());
  EXPECT_FALSE(ok.enabled());
  ok.depolarizing_2q = 0.01;
  EXPECT_TRUE(ok.enabled());
}

TEST(Noise, ZeroNoiseTrajectoryEqualsIdealRun) {
  const Circuit qc = bell_circuit();
  util::Rng rng(1);
  const sim::StateVector noisy = run_trajectory(qc, NoiseModel{}, rng);
  const sim::StateVector ideal = run(qc);
  for (std::size_t i = 0; i < ideal.size(); ++i) {
    EXPECT_NEAR(std::abs(noisy.data()[i] - ideal.data()[i]), 0.0, 1e-12);
  }
}

TEST(Noise, TrajectoriesPreserveNorm) {
  util::Rng rng(2);
  const Circuit qc = bell_circuit();
  NoiseModel noise;
  noise.depolarizing_1q = 0.2;
  noise.depolarizing_2q = 0.2;
  for (int t = 0; t < 20; ++t) {
    const sim::StateVector sv = run_trajectory(qc, noise, rng);
    EXPECT_NEAR(sv.norm_squared(), 1.0, 1e-9);
  }
}

TEST(Noise, DepolarizingDegradesBellCorrelation) {
  const Circuit qc = bell_circuit();
  NoiseModel noise;
  noise.depolarizing_2q = 0.15;
  util::Rng rng(3);
  double zz = 0.0;
  const int trajectories = 300;
  for (int t = 0; t < trajectories; ++t) {
    const sim::StateVector sv = run_trajectory(qc, noise, rng);
    zz += sim::expectation_zz(sv, 0, 1);
  }
  zz /= trajectories;
  // Ideal Bell state has <ZZ> = 1; the channel pulls it toward 0.
  EXPECT_LT(zz, 0.95);
  EXPECT_GT(zz, 0.3);
}

TEST(Noise, QaoaExpectationShrinksTowardRandomGuess) {
  // On a QAOA state, gate noise pulls <H_C> toward the maximally mixed
  // value W/2 — the decoherence story of the paper's NISQ framing.
  util::Rng g_rng(4);
  const auto g = graph::erdos_renyi(8, 0.5, g_rng);
  const auto table = qaoa::build_cut_table(g);
  QaoaAngles angles;
  angles.gammas = {0.4, 0.7};
  angles.betas = {0.6, 0.3};
  const Circuit qc = qaoa_ansatz(g, angles);

  util::Rng rng(5);
  const double ideal = sim::expectation_diagonal(run(qc), table);
  NoiseModel mild;
  mild.depolarizing_1q = 0.002;
  mild.depolarizing_2q = 0.01;
  NoiseModel heavy;
  heavy.depolarizing_1q = 0.05;
  heavy.depolarizing_2q = 0.15;
  const double with_mild =
      noisy_expectation_diagonal(qc, mild, table, 200, rng);
  const double with_heavy =
      noisy_expectation_diagonal(qc, heavy, table, 200, rng);
  const double random_guess = g.total_weight() / 2.0;

  EXPECT_GT(ideal, random_guess);
  EXPECT_LT(with_heavy, with_mild + 0.05 * (ideal - random_guess));
  // Heavy depolarizing brings the state near maximally mixed.
  EXPECT_NEAR(with_heavy, random_guess, 0.15 * (ideal - random_guess) + 0.3);
}

TEST(Noise, AmplitudeDampingDecaysExcitedState) {
  // Prepare |1> and push it through identity-like gates with damping; the
  // trajectory-averaged population of |1> must decay as (1 - gamma)^gates.
  const double gamma = 0.2;
  const int gate_count = 4;
  Circuit qc(1);
  qc.x(0);
  for (int i = 0; i < gate_count; ++i) qc.z(0);  // no-ops that trigger noise
  NoiseModel noise;
  noise.amplitude_damping = gamma;
  util::Rng rng(11);
  double p1 = 0.0;
  const int trajectories = 4000;
  for (int t = 0; t < trajectories; ++t) {
    const sim::StateVector sv = run_trajectory(qc, noise, rng);
    p1 += std::norm(sv.amplitude(1));
  }
  p1 /= trajectories;
  // X gate itself also triggers one damping event: gate_count + 1 chances.
  const double expected = std::pow(1.0 - gamma, gate_count + 1);
  EXPECT_NEAR(p1, expected, 0.03);
}

TEST(Noise, AmplitudeDampingLeavesGroundStateAlone) {
  Circuit qc(2);
  qc.z(0).z(1);  // stays in |00>
  NoiseModel noise;
  noise.amplitude_damping = 0.5;
  util::Rng rng(12);
  const sim::StateVector sv = run_trajectory(qc, noise, rng);
  EXPECT_NEAR(std::norm(sv.amplitude(0)), 1.0, 1e-12);
}

TEST(Noise, AmplitudeDampingPreservesNorm) {
  Circuit qc(3);
  qc.h(0).h(1).h(2).cx(0, 1).cx(1, 2);
  NoiseModel noise;
  noise.amplitude_damping = 0.3;
  util::Rng rng(13);
  for (int t = 0; t < 50; ++t) {
    EXPECT_NEAR(run_trajectory(qc, noise, rng).norm_squared(), 1.0, 1e-9);
  }
}

TEST(Noise, ReadoutFlipsChangeSampledStrings) {
  Circuit qc(4);  // identity circuit: ideal shots are all |0000>
  NoiseModel noise;
  noise.readout_flip = 0.25;
  NoisySamplingOptions opts;
  opts.shots = 8000;
  util::Rng rng(6);
  const auto shots = sample_noisy(qc, noise, opts, rng);
  ASSERT_EQ(shots.size(), 8000u);
  std::size_t flipped_bits = 0;
  for (const auto s : shots) flipped_bits += std::popcount(s);
  const double rate = static_cast<double>(flipped_bits) / (8000.0 * 4.0);
  EXPECT_NEAR(rate, 0.25, 0.02);
}

TEST(Noise, SampleNoisySplitsShotsAcrossTrajectories) {
  const Circuit qc = bell_circuit();
  NoiseModel noise;
  noise.depolarizing_1q = 0.05;
  NoisySamplingOptions opts;
  opts.shots = 103;  // awkward split on purpose
  opts.trajectories = 10;
  util::Rng rng(7);
  EXPECT_EQ(sample_noisy(qc, noise, opts, rng).size(), 103u);
}

TEST(Noise, NoiseFreeSamplingMatchesIdealDistribution) {
  const Circuit qc = bell_circuit();
  NoisySamplingOptions opts;
  opts.shots = 20000;
  util::Rng rng(8);
  const auto shots = sample_noisy(qc, NoiseModel{}, opts, rng);
  int zz = 0;
  for (const auto s : shots) {
    EXPECT_TRUE(s == 0b00 || s == 0b11);
    if (s == 0b11) ++zz;
  }
  EXPECT_NEAR(static_cast<double>(zz) / 20000.0, 0.5, 0.02);
}

TEST(Noise, SamplingValidation) {
  const Circuit qc = bell_circuit();
  util::Rng rng(9);
  NoisySamplingOptions bad;
  bad.shots = 0;
  EXPECT_THROW(sample_noisy(qc, NoiseModel{}, bad, rng),
               std::invalid_argument);
  EXPECT_THROW(noisy_expectation_diagonal(qc, NoiseModel{}, {1, 1, 1, 1}, 0,
                                          rng),
               std::invalid_argument);
}

TEST(Noise, DeterministicPerSeed) {
  const Circuit qc = bell_circuit();
  NoiseModel noise;
  noise.depolarizing_1q = 0.1;
  noise.readout_flip = 0.05;
  NoisySamplingOptions opts;
  opts.shots = 256;
  util::Rng a(10), b(10);
  EXPECT_EQ(sample_noisy(qc, noise, opts, a), sample_noisy(qc, noise, opts, b));
}

}  // namespace
}  // namespace qq::circuit
