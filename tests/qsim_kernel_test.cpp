// Randomized equivalence suite for the rewritten pair/subset-enumeration
// kernels (see DESIGN.md "Kernel index enumeration"). Every fast kernel is
// checked against an independent, trivially-correct reference on random
// states: single-qubit diagonals against the generic dense apply_unitary1,
// two-qubit kernels against naive full-sweep branchy loops, and the fused
// apply_rx_layer against the per-qubit apply_rx loop it replaces. Sampler
// edge cases (zero-probability plateaus, all mass on the last state) ride
// along because sample_counts shares the rewritten reduction machinery.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <complex>
#include <numbers>
#include <vector>

#include "qsim/measure.hpp"
#include "qsim/statevector.hpp"
#include "util/rng.hpp"

namespace qq::sim {
namespace {

using Amp = std::complex<double>;
constexpr double kTol = 1e-12;

std::vector<Amp> random_amplitudes(int n, util::Rng& rng) {
  std::vector<Amp> amps(std::size_t{1} << n);
  double norm2 = 0.0;
  for (auto& a : amps) {
    a = Amp{util::uniform(rng, -1.0, 1.0), util::uniform(rng, -1.0, 1.0)};
    norm2 += std::norm(a);
  }
  const double inv = 1.0 / std::sqrt(norm2);
  for (auto& a : amps) a *= inv;
  return amps;
}

StateVector make_state(int n, const std::vector<Amp>& amps) {
  StateVector sv(n);
  for (std::size_t i = 0; i < amps.size(); ++i) sv.set_amplitude(i, amps[i]);
  return sv;
}

void expect_state_near(const StateVector& sv, const std::vector<Amp>& want,
                       double tol = kTol) {
  ASSERT_EQ(sv.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    ASSERT_NEAR(std::abs(sv.data()[i] - want[i]), 0.0, tol) << "amp " << i;
  }
}

// ------------------------------------------- naive reference sweeps ----
// These are the pre-rewrite full-sweep implementations: one branch per
// amplitude, unarguably correct, kept here as the oracle.

void ref_z(std::vector<Amp>& a, int q) {
  const std::uint64_t bit = std::uint64_t{1} << q;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (i & bit) a[i] = -a[i];
  }
}

void ref_phase(std::vector<Amp>& a, int q, double phi) {
  const std::uint64_t bit = std::uint64_t{1} << q;
  const Amp e = std::polar(1.0, phi);
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (i & bit) a[i] *= e;
  }
}

void ref_rz(std::vector<Amp>& a, int q, double theta) {
  const std::uint64_t bit = std::uint64_t{1} << q;
  const Amp e0 = std::polar(1.0, -theta * 0.5);
  const Amp e1 = std::polar(1.0, theta * 0.5);
  for (std::size_t i = 0; i < a.size(); ++i) a[i] *= (i & bit) ? e1 : e0;
}

void ref_cx(std::vector<Amp>& a, int control, int target) {
  const std::uint64_t cbit = std::uint64_t{1} << control;
  const std::uint64_t tbit = std::uint64_t{1} << target;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if ((i & cbit) && !(i & tbit)) std::swap(a[i], a[i | tbit]);
  }
}

void ref_cz(std::vector<Amp>& a, int qa, int qb) {
  const std::uint64_t mask =
      (std::uint64_t{1} << qa) | (std::uint64_t{1} << qb);
  for (std::size_t i = 0; i < a.size(); ++i) {
    if ((i & mask) == mask) a[i] = -a[i];
  }
}

void ref_swap(std::vector<Amp>& a, int qa, int qb) {
  const std::uint64_t abit = std::uint64_t{1} << qa;
  const std::uint64_t bbit = std::uint64_t{1} << qb;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if ((i & abit) && !(i & bbit)) std::swap(a[i], a[(i & ~abit) | bbit]);
  }
}

void ref_rzz(std::vector<Amp>& a, int qa, int qb, double theta) {
  const std::uint64_t abit = std::uint64_t{1} << qa;
  const std::uint64_t bbit = std::uint64_t{1} << qb;
  const Amp same = std::polar(1.0, -theta * 0.5);
  const Amp diff = std::polar(1.0, theta * 0.5);
  for (std::size_t i = 0; i < a.size(); ++i) {
    const bool za = (i & abit) != 0;
    const bool zb = (i & bbit) != 0;
    a[i] *= (za == zb) ? same : diff;
  }
}

// ------------------------------------------------- kernel equivalence ----

class KernelEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(KernelEquivalence, SingleQubitDiagonalsMatchDenseUnitary1) {
  const int n = GetParam();
  util::Rng rng(1000 + static_cast<std::uint64_t>(n));
  for (int q = 0; q < n; ++q) {
    const double theta = util::uniform(rng, -3.0, 3.0);
    const double phi = util::uniform(rng, -3.0, 3.0);
    const auto amps = random_amplitudes(n, rng);

    // apply_z vs apply_unitary1(diag(1, -1))
    StateVector fast = make_state(n, amps);
    StateVector dense = make_state(n, amps);
    fast.apply_z(q);
    dense.apply_unitary1(q, {Amp{1, 0}, Amp{0, 0}, Amp{0, 0}, Amp{-1, 0}});
    expect_state_near(fast, {dense.data().begin(), dense.data().end()});

    // apply_phase vs apply_unitary1(diag(1, e^{i phi}))
    fast = make_state(n, amps);
    dense = make_state(n, amps);
    fast.apply_phase(q, phi);
    dense.apply_unitary1(q,
                         {Amp{1, 0}, Amp{0, 0}, Amp{0, 0}, std::polar(1.0, phi)});
    expect_state_near(fast, {dense.data().begin(), dense.data().end()});

    // apply_rz vs apply_unitary1(diag(e^{-i theta/2}, e^{i theta/2}))
    fast = make_state(n, amps);
    dense = make_state(n, amps);
    fast.apply_rz(q, theta);
    dense.apply_unitary1(q, {std::polar(1.0, -theta * 0.5), Amp{0, 0},
                             Amp{0, 0}, std::polar(1.0, theta * 0.5)});
    expect_state_near(fast, {dense.data().begin(), dense.data().end()});
  }
}

TEST_P(KernelEquivalence, SingleQubitDiagonalsMatchNaiveSweep) {
  const int n = GetParam();
  util::Rng rng(2000 + static_cast<std::uint64_t>(n));
  for (int q = 0; q < n; ++q) {
    const double theta = util::uniform(rng, -3.0, 3.0);
    const auto amps = random_amplitudes(n, rng);

    StateVector sv = make_state(n, amps);
    auto ref = amps;
    sv.apply_z(q);
    ref_z(ref, q);
    expect_state_near(sv, ref);

    sv = make_state(n, amps);
    ref = amps;
    sv.apply_phase(q, theta);
    ref_phase(ref, q, theta);
    expect_state_near(sv, ref);

    sv = make_state(n, amps);
    ref = amps;
    sv.apply_rz(q, theta);
    ref_rz(ref, q, theta);
    expect_state_near(sv, ref);
  }
}

TEST_P(KernelEquivalence, TwoQubitKernelsMatchNaiveSweep) {
  const int n = GetParam();
  if (n < 2) GTEST_SKIP() << "two-qubit gates need n >= 2";
  util::Rng rng(3000 + static_cast<std::uint64_t>(n));
  // Every ordered qubit pair, so low/high and adjacent/spread index-run
  // shapes (including the table-driven min(a,b) < 3 paths) all execute.
  for (int qa = 0; qa < n; ++qa) {
    for (int qb = 0; qb < n; ++qb) {
      if (qa == qb) continue;
      const double theta = util::uniform(rng, -3.0, 3.0);
      const auto amps = random_amplitudes(n, rng);

      StateVector sv = make_state(n, amps);
      auto ref = amps;
      sv.apply_cx(qa, qb);
      ref_cx(ref, qa, qb);
      expect_state_near(sv, ref);

      sv = make_state(n, amps);
      ref = amps;
      sv.apply_cz(qa, qb);
      ref_cz(ref, qa, qb);
      expect_state_near(sv, ref);

      sv = make_state(n, amps);
      ref = amps;
      sv.apply_swap(qa, qb);
      ref_swap(ref, qa, qb);
      expect_state_near(sv, ref);

      sv = make_state(n, amps);
      ref = amps;
      sv.apply_rzz(qa, qb, theta);
      ref_rzz(ref, qa, qb, theta);
      expect_state_near(sv, ref);
    }
  }
}

TEST_P(KernelEquivalence, RxLayerMatchesPerQubitLoop) {
  const int n = GetParam();
  util::Rng rng(4000 + static_cast<std::uint64_t>(n));
  for (const double theta : {0.0, 0.37, -1.9, std::numbers::pi}) {
    const auto amps = random_amplitudes(n, rng);
    StateVector fused = make_state(n, amps);
    StateVector unfused = make_state(n, amps);
    fused.apply_rx_layer(theta);
    for (int q = 0; q < n; ++q) unfused.apply_rx(q, theta);
    expect_state_near(fused, {unfused.data().begin(), unfused.data().end()},
                      1e-10);
  }
}

TEST_P(KernelEquivalence, ExpectationsMatchManualSums) {
  const int n = GetParam();
  util::Rng rng(5000 + static_cast<std::uint64_t>(n));
  const auto amps = random_amplitudes(n, rng);
  const StateVector sv = make_state(n, amps);
  for (int q = 0; q < n; ++q) {
    double manual = 0.0;
    for (std::size_t i = 0; i < amps.size(); ++i) {
      manual += ((i >> q) & 1) ? -std::norm(amps[i]) : std::norm(amps[i]);
    }
    EXPECT_NEAR(expectation_z(sv, q), manual, 1e-12) << "q=" << q;
  }
  for (int qa = 0; qa < n; ++qa) {
    for (int qb = 0; qb < n; ++qb) {
      double manual = 0.0;
      for (std::size_t i = 0; i < amps.size(); ++i) {
        const bool za = (i >> qa) & 1;
        const bool zb = (i >> qb) & 1;
        manual += (za == zb) ? std::norm(amps[i]) : -std::norm(amps[i]);
      }
      EXPECT_NEAR(expectation_zz(sv, qa, qb), manual, 1e-12)
          << "qa=" << qa << " qb=" << qb;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(QubitCounts, KernelEquivalence,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

// The fused mixer switches index strategy at its internal cache-block /
// group boundaries (12 low qubits per block, high qubits in groups of 8).
// 13 and 14 qubits exercise the gathered high-qubit pass; 21 qubits forces
// a second high-qubit group.
class RxLayerBlockBoundaries : public ::testing::TestWithParam<int> {};

TEST_P(RxLayerBlockBoundaries, MatchesPerQubitLoopAcrossPasses) {
  const int n = GetParam();
  util::Rng rng(6000 + static_cast<std::uint64_t>(n));
  const auto amps = random_amplitudes(n, rng);
  StateVector fused = make_state(n, amps);
  StateVector unfused = make_state(n, amps);
  fused.apply_rx_layer(0.81);
  for (int q = 0; q < n; ++q) unfused.apply_rx(q, 0.81);
  expect_state_near(fused, {unfused.data().begin(), unfused.data().end()},
                    1e-10);
}

INSTANTIATE_TEST_SUITE_P(AroundBlockSize, RxLayerBlockBoundaries,
                         ::testing::Values(11, 12, 13, 14, 21));

// -------------------------------------------------- sampler edge cases ----

TEST(SamplerEdgeCases, ZeroProbabilityStatesAreNeverSampled) {
  // Mass only on states 1, 4 and 6 of a 3-qubit register; state 0 is a
  // leading zero-probability plateau (the r == 0 draw must skip it) and
  // state 7 a trailing one (the clamp must not land there).
  StateVector sv(3);
  sv.set_amplitude(0, {0.0, 0.0});
  sv.set_amplitude(1, {0.6, 0.0});
  sv.set_amplitude(4, {0.0, 0.6});
  sv.set_amplitude(6, {std::sqrt(1.0 - 2 * 0.36), 0.0});
  util::Rng rng(17);
  const auto shots = sample_counts(sv, 20000, rng);
  ASSERT_EQ(shots.size(), 20000u);
  for (const BasisState s : shots) {
    EXPECT_TRUE(s == 1 || s == 4 || s == 6) << "sampled impossible state " << s;
  }
}

TEST(SamplerEdgeCases, AllMassOnLastStateAlwaysSampled) {
  StateVector sv(4);
  sv.set_amplitude(0, {0.0, 0.0});
  sv.set_amplitude(15, {0.0, 1.0});
  util::Rng rng(23);
  for (const BasisState s : sample_counts(sv, 5000, rng)) {
    EXPECT_EQ(s, 15u);
  }
}

TEST(SamplerEdgeCases, SingleNonzeroStateAmongMany) {
  // A mid-vector spike surrounded by zero plateaus on both sides.
  StateVector sv(6);
  sv.set_amplitude(0, {0.0, 0.0});
  sv.set_amplitude(37, {1.0, 0.0});
  util::Rng rng(29);
  for (const BasisState s : sample_counts(sv, 2000, rng)) {
    EXPECT_EQ(s, 37u);
  }
}

TEST(SamplerEdgeCases, ZeroShotsReturnsEmpty) {
  StateVector sv = StateVector::plus_state(3);
  util::Rng rng(31);
  EXPECT_TRUE(sample_counts(sv, 0, rng).empty());
}

TEST(SamplerEdgeCases, ZeroNormStateThrows) {
  StateVector sv(2);
  sv.set_amplitude(0, {0.0, 0.0});  // state is now all-zero
  util::Rng rng(37);
  EXPECT_THROW(sample_counts(sv, 10, rng), std::runtime_error);
}

TEST(SamplerEdgeCases, ArgmaxTieBreaksToSmallestIndex) {
  StateVector sv = StateVector::plus_state(5);  // every probability equal
  EXPECT_EQ(argmax_probability(sv), 0u);
}

}  // namespace
}  // namespace qq::sim
