// Tests for the ML layer: graph features, the logistic-regression method
// selector, and the kNN parameter warm start.

#include <gtest/gtest.h>

#include <cmath>

#include <sstream>

#include "ml/features.hpp"
#include "ml/knn.hpp"
#include "ml/knowledge_base.hpp"
#include "ml/logreg.hpp"
#include "qgraph/generators.hpp"
#include "util/rng.hpp"

namespace qq::ml {
namespace {

// --------------------------------------------------------------- features ----

TEST(Features, CompleteGraphValues) {
  const auto f = graph_features(graph::complete_graph(5));
  EXPECT_DOUBLE_EQ(f[0], 5.0);   // nodes
  EXPECT_DOUBLE_EQ(f[1], 10.0);  // edges
  EXPECT_DOUBLE_EQ(f[2], 1.0);   // density
  EXPECT_DOUBLE_EQ(f[3], 4.0);   // mean degree
  EXPECT_DOUBLE_EQ(f[4], 0.0);   // degree std
  EXPECT_DOUBLE_EQ(f[5], 4.0);   // max degree
  EXPECT_DOUBLE_EQ(f[8], 1.0);   // clustering of a clique
  EXPECT_DOUBLE_EQ(f[9], 0.0);   // unweighted
}

TEST(Features, StarGraphHasZeroClustering) {
  const auto f = graph_features(graph::star_graph(8));
  EXPECT_DOUBLE_EQ(f[8], 0.0);
  EXPECT_DOUBLE_EQ(f[5], 7.0);  // hub degree
}

TEST(Features, TriangleClusteringIsOne) {
  const auto f = graph_features(graph::cycle_graph(3));
  EXPECT_DOUBLE_EQ(f[8], 1.0);
}

TEST(Features, WeightStatistics) {
  graph::Graph g(3);
  g.add_edge(0, 1, 2.0);
  g.add_edge(1, 2, 4.0);
  const auto f = graph_features(g);
  EXPECT_DOUBLE_EQ(f[6], 3.0);              // mean weight
  EXPECT_NEAR(f[7], std::sqrt(2.0), 1e-12); // sample std
  EXPECT_DOUBLE_EQ(f[9], 1.0);              // weighted
}

TEST(Features, DensityTracksEdgeProbability) {
  util::Rng rng(3);
  const auto g = graph::erdos_renyi(100, 0.25, rng);
  const auto f = graph_features(g);
  EXPECT_NEAR(f[2], 0.25, 0.05);
}

TEST(Features, NamesAreStable) {
  EXPECT_STREQ(feature_name(0), "nodes");
  EXPECT_STREQ(feature_name(8), "clustering");
  EXPECT_STREQ(feature_name(9), "weighted");
}

// ----------------------------------------------------------------- logreg ----

TEST(LogReg, LearnsLinearlySeparableData) {
  util::Rng rng(5);
  std::vector<std::vector<double>> X;
  std::vector<int> y;
  for (int i = 0; i < 400; ++i) {
    const double a = util::normal(rng);
    const double b = util::normal(rng);
    X.push_back({a, b});
    y.push_back(a + b > 0.0 ? 1 : 0);
  }
  LogisticRegression model;
  model.fit(X, y);
  EXPECT_GE(model.accuracy(X, y), 0.97);
}

TEST(LogReg, RobustToNoisyLabels) {
  util::Rng rng(7);
  std::vector<std::vector<double>> X;
  std::vector<int> y;
  for (int i = 0; i < 600; ++i) {
    const double a = util::normal(rng);
    X.push_back({a, util::normal(rng)});
    const int label = a > 0.0 ? 1 : 0;
    y.push_back(util::bernoulli(rng, 0.1) ? 1 - label : label);
  }
  LogisticRegression model;
  model.fit(X, y);
  EXPECT_GE(model.accuracy(X, y), 0.80);
}

TEST(LogReg, ProbabilitiesAreCalibratedAtExtremes) {
  std::vector<std::vector<double>> X;
  std::vector<int> y;
  for (int i = 0; i < 100; ++i) {
    const double v = (i < 50) ? -1.0 - 0.01 * i : 1.0 + 0.01 * i;
    X.push_back({v});
    y.push_back(v > 0 ? 1 : 0);
  }
  LogisticRegression model;
  model.fit(X, y);
  EXPECT_GT(model.predict_proba({5.0}), 0.9);
  EXPECT_LT(model.predict_proba({-5.0}), 0.1);
}

TEST(LogReg, HandlesConstantFeatureWithoutNan) {
  std::vector<std::vector<double>> X;
  std::vector<int> y;
  for (int i = 0; i < 50; ++i) {
    X.push_back({1.0, static_cast<double>(i % 2)});
    y.push_back(i % 2);
  }
  LogisticRegression model;
  model.fit(X, y);
  const double p = model.predict_proba({1.0, 1.0});
  EXPECT_TRUE(std::isfinite(p));
  EXPECT_GE(model.accuracy(X, y), 0.95);
}

TEST(LogReg, Validation) {
  LogisticRegression model;
  EXPECT_THROW(model.predict_proba({1.0}), std::logic_error);
  EXPECT_THROW(model.fit({}, {}), std::invalid_argument);
  EXPECT_THROW(model.fit({{1.0}}, {1, 0}), std::invalid_argument);
  EXPECT_THROW(model.fit({{1.0}, {1.0, 2.0}}, {0, 1}), std::invalid_argument);
  model.fit({{0.0}, {1.0}}, {0, 1});
  EXPECT_THROW(model.predict_proba({1.0, 2.0}), std::invalid_argument);
}

// -------------------------------------------------------------------- kNN ----

TEST(Knn, RecallsStoredPointExactly) {
  ParameterKnn store;
  store.add({0.0, 0.0}, {1.0, 2.0});
  store.add({10.0, 10.0}, {3.0, 4.0});
  const auto p = store.predict({0.0, 0.0}, 1);
  EXPECT_NEAR(p[0], 1.0, 1e-6);
  EXPECT_NEAR(p[1], 2.0, 1e-6);
}

TEST(Knn, InterpolatesBetweenNeighbours) {
  ParameterKnn store;
  store.add({0.0}, {0.0});
  store.add({1.0}, {10.0});
  const auto p = store.predict({0.5}, 2);
  EXPECT_NEAR(p[0], 5.0, 0.5);
}

TEST(Knn, KLargerThanStoreIsClamped) {
  ParameterKnn store;
  store.add({0.0}, {1.0});
  store.add({1.0}, {2.0});
  EXPECT_NO_THROW(store.predict({0.5}, 50));
}

TEST(Knn, Validation) {
  ParameterKnn store;
  EXPECT_THROW(store.predict({1.0}, 1), std::logic_error);
  store.add({1.0, 2.0}, {0.5});
  EXPECT_THROW(store.add({1.0}, {0.5}), std::invalid_argument);
  EXPECT_THROW(store.add({1.0, 2.0}, {0.5, 0.6}), std::invalid_argument);
  EXPECT_THROW(store.predict({1.0}, 1), std::invalid_argument);
  EXPECT_THROW(store.predict({1.0, 2.0}, 0), std::invalid_argument);
}

TEST(Knn, NearestDominatesWeighting) {
  ParameterKnn store;
  store.add({0.0}, {100.0});
  store.add({5.0}, {0.0});
  const auto p = store.predict({0.1}, 2);
  EXPECT_GT(p[0], 90.0);
}

// --------------------------------------------------------- knowledge base ----

KbRecord make_record(double scale, int layers, bool qaoa_wins) {
  KbRecord r;
  for (std::size_t i = 0; i < kNumFeatures; ++i) {
    r.features[i] = scale * static_cast<double>(i + 1);
  }
  r.layers = layers;
  r.rhobeg = 0.3;
  r.qaoa_value = qaoa_wins ? 10.0 : 5.0;
  r.gw_value = 7.0;
  r.parameters.assign(static_cast<std::size_t>(2 * layers), scale);
  return r;
}

TEST(KnowledgeBase, AddValidatesParameterCount) {
  KnowledgeBase kb;
  KbRecord bad = make_record(1.0, 3, true);
  bad.parameters.pop_back();
  EXPECT_THROW(kb.add(bad), std::invalid_argument);
  kb.add(make_record(1.0, 3, true));
  EXPECT_EQ(kb.size(), 1u);
}

TEST(KnowledgeBase, CsvRoundTrip) {
  KnowledgeBase kb;
  kb.add(make_record(1.0, 2, true));
  kb.add(make_record(2.5, 3, false));
  std::stringstream ss;
  kb.save(ss);
  const KnowledgeBase back = KnowledgeBase::load(ss);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back.records()[0].layers, 2);
  EXPECT_EQ(back.records()[1].layers, 3);
  EXPECT_DOUBLE_EQ(back.records()[1].features[0], 2.5);
  EXPECT_DOUBLE_EQ(back.records()[0].qaoa_value, 10.0);
  EXPECT_EQ(back.records()[1].parameters.size(), 6u);
  EXPECT_TRUE(back.records()[0].qaoa_won());
  EXPECT_FALSE(back.records()[1].qaoa_won());
}

TEST(KnowledgeBase, LoadRejectsCorruptRecords) {
  std::stringstream short_row("1,2,3\n");
  EXPECT_THROW(KnowledgeBase::load(short_row), std::runtime_error);
  // 10 features + layers=2 + rhobeg + values, but only 3 parameters.
  std::stringstream bad_params(
      "1,2,3,4,5,6,7,8,9,10,2,0.3,9.0,7.0,0.1,0.2,0.3\n");
  EXPECT_THROW(KnowledgeBase::load(bad_params), std::runtime_error);
}

TEST(KnowledgeBase, DatasetAndKnnAdapters) {
  KnowledgeBase kb;
  kb.add(make_record(1.0, 2, true));
  kb.add(make_record(2.0, 2, false));
  kb.add(make_record(3.0, 4, true));
  std::vector<std::vector<double>> X;
  std::vector<int> y;
  kb.to_dataset(X, y);
  ASSERT_EQ(X.size(), 3u);
  EXPECT_EQ(y, (std::vector<int>{1, 0, 1}));

  const ParameterKnn knn2 = kb.to_parameter_knn(2);
  EXPECT_EQ(knn2.size(), 2u);
  const ParameterKnn knn4 = kb.to_parameter_knn(4);
  EXPECT_EQ(knn4.size(), 1u);
  // Nearest record to scale 1.0 features carries parameters all = 1.0.
  const KbRecord probe = make_record(1.0, 2, true);
  const auto params = knn2.predict(
      std::vector<double>(probe.features.begin(), probe.features.end()), 1);
  ASSERT_EQ(params.size(), 4u);
  EXPECT_NEAR(params[0], 1.0, 1e-6);
}

TEST(KnowledgeBase, SkipsCommentsAndBlankLines) {
  KnowledgeBase kb;
  kb.add(make_record(1.0, 1, true));
  std::stringstream ss;
  kb.save(ss);
  std::string with_noise = "# header comment\n\n" + ss.str() + "\n";
  std::stringstream in(with_noise);
  EXPECT_EQ(KnowledgeBase::load(in).size(), 1u);
}

TEST(KnowledgeBase, SolverSpecsDefaultAndRoundTrip) {
  KnowledgeBase kb;
  // Defaults preserve the historical qaoa-vs-gw meaning of the columns.
  EXPECT_EQ(kb.quantum_spec(), "qaoa");
  EXPECT_EQ(kb.classical_spec(), "gw");
  kb.set_solver_specs("qaoa:p=3,shots=512", "best:gw|anneal");
  kb.add(make_record(1.0, 2, true));
  std::stringstream ss;
  kb.save(ss);
  const KnowledgeBase back = KnowledgeBase::load(ss);
  EXPECT_EQ(back.quantum_spec(), "qaoa:p=3,shots=512");
  EXPECT_EQ(back.classical_spec(), "best:gw|anneal");
  ASSERT_EQ(back.size(), 1u);
  EXPECT_EQ(back.records()[0].layers, 2);
}

TEST(KnowledgeBase, SolverSpecsValidation) {
  KnowledgeBase kb;
  EXPECT_THROW(kb.set_solver_specs("", "gw"), std::invalid_argument);
  EXPECT_THROW(kb.set_solver_specs("qaoa", "g\nw"), std::invalid_argument);
  // " vs " is the persisted header's delimiter; a spec containing it would
  // silently corrupt the round trip.
  EXPECT_THROW(kb.set_solver_specs("a vs b", "gw"), std::invalid_argument);
  // A pre-specs file (no "# solvers:" header) loads with the defaults; a
  // malformed header is rejected.
  std::stringstream legacy("# qq knowledge base v1: old header\n");
  EXPECT_EQ(KnowledgeBase::load(legacy).quantum_spec(), "qaoa");
  std::stringstream malformed("# solvers: qaoa-only\n");
  EXPECT_THROW(KnowledgeBase::load(malformed), std::runtime_error);
  // A header the setter rejects (ambiguous delimiter) is file corruption
  // and surfaces as load's runtime_error, not as invalid_argument.
  std::stringstream ambiguous("# solvers: a vs b vs c\n");
  EXPECT_THROW(KnowledgeBase::load(ambiguous), std::runtime_error);
}

}  // namespace
}  // namespace qq::ml
