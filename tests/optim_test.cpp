// Tests for the derivative-free optimizers (COBYLA-style trust region and
// Nelder-Mead) on standard objectives.

#include <gtest/gtest.h>

#include <cmath>

#include "optim/cobyla.hpp"
#include "optim/nelder_mead.hpp"

namespace qq::optim {
namespace {

double sphere(const std::vector<double>& x) {
  double s = 0.0;
  for (double v : x) s += v * v;
  return s;
}

double shifted_quadratic(const std::vector<double>& x) {
  // Minimum 1.5 at (1, -2), with a cross term.
  const double a = x[0] - 1.0;
  const double b = x[1] + 2.0;
  return 2.0 * a * a + b * b + 0.5 * a * b + 1.5;
}

double rosenbrock2(const std::vector<double>& x) {
  const double a = 1.0 - x[0];
  const double b = x[1] - x[0] * x[0];
  return a * a + 100.0 * b * b;
}

// --------------------------------------------------------------- COBYLA ----

TEST(Cobyla, MinimizesSphereFromSeveralStarts) {
  for (const double start : {-2.0, -0.5, 0.7, 3.0}) {
    CobylaOptions opts;
    opts.rhobeg = 0.5;
    opts.rhoend = 1e-6;
    opts.maxfun = 400;
    const Result r = cobyla_minimize(sphere, {start, -start, start}, opts);
    EXPECT_LT(r.fx, 1e-4) << "start " << start;
  }
}

TEST(Cobyla, MinimizesShiftedQuadratic) {
  CobylaOptions opts;
  opts.rhobeg = 0.5;
  opts.rhoend = 1e-7;
  opts.maxfun = 600;
  const Result r = cobyla_minimize(shifted_quadratic, {0.0, 0.0}, opts);
  EXPECT_NEAR(r.fx, 1.5, 1e-3);
  EXPECT_NEAR(r.x[0], 1.0, 0.05);
  EXPECT_NEAR(r.x[1], -2.0, 0.05);
}

TEST(Cobyla, MakesProgressOnRosenbrock) {
  CobylaOptions opts;
  opts.rhobeg = 0.5;
  opts.rhoend = 1e-8;
  opts.maxfun = 2000;
  const Result r = cobyla_minimize(rosenbrock2, {-1.2, 1.0}, opts);
  EXPECT_LT(r.fx, rosenbrock2({-1.2, 1.0}) * 0.01);
}

TEST(Cobyla, RespectsEvaluationBudget) {
  int calls = 0;
  const Objective counted = [&calls](const std::vector<double>& x) {
    ++calls;
    return sphere(x);
  };
  CobylaOptions opts;
  opts.maxfun = 25;
  const Result r = cobyla_minimize(counted, {1.0, 1.0, 1.0, 1.0}, opts);
  EXPECT_LE(calls, 25);
  EXPECT_EQ(r.evaluations, calls);
}

TEST(Cobyla, ReportsBestEverPoint) {
  // The returned fx must equal the objective at the returned x, and be the
  // minimum of all evaluations.
  double min_seen = 1e300;
  const Objective tracking = [&min_seen](const std::vector<double>& x) {
    const double v = shifted_quadratic(x);
    min_seen = std::min(min_seen, v);
    return v;
  };
  const Result r = cobyla_minimize(tracking, {3.0, 3.0});
  EXPECT_DOUBLE_EQ(r.fx, min_seen);
  EXPECT_NEAR(shifted_quadratic(r.x), r.fx, 1e-12);
}

TEST(Cobyla, ConvergedFlagWhenRhoExhausted) {
  CobylaOptions opts;
  opts.rhobeg = 0.5;
  opts.rhoend = 1e-2;  // coarse: converges quickly
  opts.maxfun = 10000;
  const Result r = cobyla_minimize(sphere, {0.2, 0.2}, opts);
  EXPECT_TRUE(r.converged);
}

TEST(Cobyla, LargerRhobegEscapesFartherStarts) {
  // From a distant start with a small budget, a larger initial step makes
  // strictly more progress on the sphere — the behaviour the paper's
  // rhobeg sweep (Fig. 3c) probes.
  CobylaOptions small;
  small.rhobeg = 0.01;
  small.maxfun = 30;
  CobylaOptions large = small;
  large.rhobeg = 0.5;
  const std::vector<double> x0 = {5.0, -5.0};
  const Result rs = cobyla_minimize(sphere, x0, small);
  const Result rl = cobyla_minimize(sphere, x0, large);
  EXPECT_LT(rl.fx, rs.fx);
}

TEST(Cobyla, InputValidation) {
  EXPECT_THROW(cobyla_minimize(sphere, {}), std::invalid_argument);
  CobylaOptions bad;
  bad.rhobeg = -1.0;
  EXPECT_THROW(cobyla_minimize(sphere, {1.0}, bad), std::invalid_argument);
  bad = CobylaOptions{};
  bad.rhoend = 2.0 * bad.rhobeg;
  EXPECT_THROW(cobyla_minimize(sphere, {1.0}, bad), std::invalid_argument);
}

// ---------------------------------------------------------- Nelder-Mead ----

TEST(NelderMead, MinimizesSphere) {
  NelderMeadOptions opts;
  opts.maxfun = 500;
  const Result r = nelder_mead_minimize(sphere, {2.0, -1.0, 0.5}, opts);
  EXPECT_LT(r.fx, 1e-6);
}

TEST(NelderMead, MinimizesShiftedQuadratic) {
  NelderMeadOptions opts;
  opts.maxfun = 800;
  const Result r = nelder_mead_minimize(shifted_quadratic, {0.0, 0.0}, opts);
  EXPECT_NEAR(r.fx, 1.5, 1e-5);
}

TEST(NelderMead, SolvesRosenbrock) {
  NelderMeadOptions opts;
  opts.maxfun = 4000;
  opts.ftol = 1e-12;
  const Result r = nelder_mead_minimize(rosenbrock2, {-1.2, 1.0}, opts);
  EXPECT_LT(r.fx, 1e-4);
}

TEST(NelderMead, RespectsBudgetAndValidates) {
  int calls = 0;
  const Objective counted = [&calls](const std::vector<double>& x) {
    ++calls;
    return sphere(x);
  };
  NelderMeadOptions opts;
  opts.maxfun = 17;
  const Result r = nelder_mead_minimize(counted, {1.0, 1.0}, opts);
  EXPECT_LE(calls, 17 + 3);  // shrink step may finish its sweep
  EXPECT_GE(r.evaluations, 3);
  EXPECT_THROW(nelder_mead_minimize(sphere, {}), std::invalid_argument);
}

TEST(NelderMead, ConvergedFlagOnFlatSpread) {
  NelderMeadOptions opts;
  opts.maxfun = 100000;
  opts.ftol = 1e-10;
  const Result r = nelder_mead_minimize(sphere, {0.3, -0.2}, opts);
  EXPECT_TRUE(r.converged);
}

// Both optimizers on a family of scaled quadratics (parameterized sweep).
class OptimizerFamily : public ::testing::TestWithParam<double> {};

TEST_P(OptimizerFamily, BothFindScaledQuadraticMinimum) {
  const double scale = GetParam();
  const Objective f = [scale](const std::vector<double>& x) {
    double s = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      const double d = x[i] - scale * static_cast<double>(i + 1);
      s += (static_cast<double>(i) + 1.0) * d * d;
    }
    return s;
  };
  CobylaOptions copts;
  copts.rhobeg = std::max(0.1, scale);
  copts.rhoend = 1e-7;
  copts.maxfun = 1500;
  const Result rc = cobyla_minimize(f, {0.0, 0.0, 0.0}, copts);
  EXPECT_LT(rc.fx, 1e-3) << "cobyla, scale " << scale;

  NelderMeadOptions nopts;
  nopts.step = std::max(0.1, scale);
  nopts.maxfun = 1500;
  const Result rn = nelder_mead_minimize(f, {0.0, 0.0, 0.0}, nopts);
  EXPECT_LT(rn.fx, 1e-3) << "nelder-mead, scale " << scale;
}

INSTANTIATE_TEST_SUITE_P(Scales, OptimizerFamily,
                         ::testing::Values(0.1, 0.5, 1.0, 2.0));

}  // namespace
}  // namespace qq::optim
