// Tests for the workload-manager substrate: the discrete-event allocation
// model (paper Fig. 1) and the threaded coordinator/worker engine (Fig. 2).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <functional>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "sched/des.hpp"
#include "sched/engine.hpp"
#include "util/mutex.hpp"
#include "util/thread_pool.hpp"

namespace qq::sched {
namespace {

// -------------------------------------------------------------------- DES ----

TEST(Des, SingleJobTimeline) {
  const JobPhases job{2.0, 3.0, 1.0};
  DesOptions opts;
  opts.quantum_devices = 1;
  opts.classical_nodes = 1;
  for (const auto policy :
       {AllocationPolicy::kMpmd, AllocationPolicy::kHeterogeneous}) {
    opts.policy = policy;
    const DesResult r = simulate_workload({job}, opts);
    ASSERT_EQ(r.traces.size(), 1u);
    const JobTrace& t = r.traces[0];
    EXPECT_DOUBLE_EQ(t.start, 0.0);
    EXPECT_DOUBLE_EQ(t.quantum_start, 2.0);
    EXPECT_DOUBLE_EQ(t.quantum_end, 5.0);
    EXPECT_DOUBLE_EQ(t.finish, 6.0);
    EXPECT_DOUBLE_EQ(r.makespan, 6.0);
    EXPECT_DOUBLE_EQ(r.quantum_busy, 3.0);
  }
}

TEST(Des, MpmdAllocationIdleFractionMatchesPhases) {
  // MPMD holds the device for prep+quantum+post: idle share = 3/6.
  const JobPhases job{2.0, 3.0, 1.0};
  DesOptions opts;
  opts.policy = AllocationPolicy::kMpmd;
  const DesResult r = simulate_workload({job, job, job}, opts);
  EXPECT_NEAR(r.quantum_alloc_idle_fraction, 0.5, 1e-12);
}

TEST(Des, HeterogeneousAllocationHasZeroAllocIdle) {
  const JobPhases job{2.0, 3.0, 1.0};
  DesOptions opts;
  opts.policy = AllocationPolicy::kHeterogeneous;
  opts.classical_nodes = 4;
  const DesResult r = simulate_workload({job, job, job}, opts);
  EXPECT_NEAR(r.quantum_alloc_idle_fraction, 0.0, 1e-12);
}

TEST(Des, HeterogeneousBeatsMpmdOnMakespan) {
  // One device, plenty of classical nodes: het overlaps the classical
  // phases of different jobs with the device's work (the Fig. 1 scenario).
  std::vector<JobPhases> jobs(6, JobPhases{4.0, 2.0, 1.0});
  DesOptions mpmd;
  mpmd.quantum_devices = 1;
  mpmd.classical_nodes = 6;
  mpmd.policy = AllocationPolicy::kMpmd;
  DesOptions het = mpmd;
  het.policy = AllocationPolicy::kHeterogeneous;
  const DesResult a = simulate_workload(jobs, mpmd);
  const DesResult b = simulate_workload(jobs, het);
  EXPECT_LT(b.makespan, a.makespan);
  EXPECT_GT(b.quantum_utilization, a.quantum_utilization);
}

TEST(Des, MpmdSerializesOnTheDevice) {
  // MPMD with one device: jobs cannot overlap at all.
  std::vector<JobPhases> jobs(3, JobPhases{1.0, 1.0, 1.0});
  DesOptions opts;
  opts.quantum_devices = 1;
  opts.classical_nodes = 8;
  opts.policy = AllocationPolicy::kMpmd;
  const DesResult r = simulate_workload(jobs, opts);
  EXPECT_DOUBLE_EQ(r.makespan, 9.0);
}

TEST(Des, QuantumPhasesNeverOverlapBeyondDeviceCount) {
  std::vector<JobPhases> jobs(8, JobPhases{0.5, 2.0, 0.25});
  DesOptions opts;
  opts.quantum_devices = 2;
  opts.classical_nodes = 8;
  opts.policy = AllocationPolicy::kHeterogeneous;
  const DesResult r = simulate_workload(jobs, opts);
  // Check pairwise overlap count at every quantum interval start.
  for (const JobTrace& t : r.traces) {
    int concurrent = 0;
    for (const JobTrace& o : r.traces) {
      if (o.quantum_start <= t.quantum_start + 1e-12 &&
          t.quantum_start < o.quantum_end - 1e-12) {
        ++concurrent;
      }
    }
    EXPECT_LE(concurrent, 2);
  }
}

TEST(Des, TraceOrderingInvariants) {
  std::vector<JobPhases> jobs = {{1.0, 2.0, 0.5}, {0.0, 1.0, 0.0},
                                 {3.0, 0.5, 2.0}};
  for (const auto policy :
       {AllocationPolicy::kMpmd, AllocationPolicy::kHeterogeneous}) {
    DesOptions opts;
    opts.policy = policy;
    opts.quantum_devices = 1;
    opts.classical_nodes = 2;
    const DesResult r = simulate_workload(jobs, opts);
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      const JobTrace& t = r.traces[i];
      EXPECT_GE(t.quantum_start, t.start + jobs[i].classical_prep - 1e-12);
      EXPECT_DOUBLE_EQ(t.quantum_end, t.quantum_start + jobs[i].quantum);
      EXPECT_GE(t.finish, t.quantum_end + jobs[i].classical_post - 1e-12);
      EXPECT_GE(t.quantum_wait, 0.0);
      EXPECT_LE(t.finish, r.makespan + 1e-12);
    }
  }
}

TEST(Des, EmptyWorkloadAndValidation) {
  const DesResult r = simulate_workload({}, DesOptions{});
  EXPECT_DOUBLE_EQ(r.makespan, 0.0);
  EXPECT_DOUBLE_EQ(r.quantum_utilization, 0.0);
  EXPECT_THROW(simulate_workload({JobPhases{-1.0, 0.0, 0.0}}, DesOptions{}),
               std::invalid_argument);
  DesOptions bad;
  bad.quantum_devices = 0;
  EXPECT_THROW(simulate_workload({JobPhases{1, 1, 1}}, bad),
               std::invalid_argument);
}

TEST(Des, MoreDevicesNeverIncreaseMakespan) {
  std::vector<JobPhases> jobs(10, JobPhases{0.5, 2.0, 0.5});
  double prev = 1e300;
  for (int devices = 1; devices <= 4; ++devices) {
    DesOptions opts;
    opts.quantum_devices = devices;
    opts.classical_nodes = 10;
    opts.policy = AllocationPolicy::kHeterogeneous;
    const double makespan = simulate_workload(jobs, opts).makespan;
    EXPECT_LE(makespan, prev + 1e-9);
    prev = makespan;
  }
}

TEST(Des, QueuePoliciesPermuteTheSameJobs) {
  std::vector<JobPhases> jobs = {{1.0, 3.0, 0.5}, {0.5, 1.0, 0.5},
                                 {2.0, 2.0, 1.0}};
  for (const auto queue :
       {QueuePolicy::kFifo, QueuePolicy::kLongestQuantumFirst,
        QueuePolicy::kShortestQuantumFirst}) {
    DesOptions opts;
    opts.policy = AllocationPolicy::kHeterogeneous;
    opts.queue = queue;
    opts.classical_nodes = 3;
    const DesResult r = simulate_workload(jobs, opts);
    ASSERT_EQ(r.traces.size(), 3u);
    std::set<int> ids;
    for (const JobTrace& t : r.traces) ids.insert(t.job);
    EXPECT_EQ(ids, (std::set<int>{0, 1, 2}));
    EXPECT_DOUBLE_EQ(r.quantum_busy, 6.0);
  }
}

TEST(Des, ShortestQuantumFirstImprovesMeanCompletion) {
  // Classic SPT property on a single device: short jobs done first lowers
  // the average completion time.
  std::vector<JobPhases> jobs = {{0.0, 8.0, 0.0}, {0.0, 1.0, 0.0},
                                 {0.0, 1.0, 0.0}, {0.0, 1.0, 0.0}};
  DesOptions fifo;
  fifo.policy = AllocationPolicy::kHeterogeneous;
  fifo.classical_nodes = 4;
  DesOptions spt = fifo;
  spt.queue = QueuePolicy::kShortestQuantumFirst;
  const DesResult a = simulate_workload(jobs, fifo);
  const DesResult b = simulate_workload(jobs, spt);
  EXPECT_LT(b.mean_completion, a.mean_completion);
  // Makespan is unchanged on one device (same total work).
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
}

TEST(Des, LongestQuantumFirstHelpsMultiDevicePacking) {
  // LPT vs FIFO on two devices with an adversarial FIFO order: the long
  // job arriving last forces a tail under FIFO.
  std::vector<JobPhases> jobs = {{0.0, 1.0, 0.0}, {0.0, 1.0, 0.0},
                                 {0.0, 1.0, 0.0}, {0.0, 1.0, 0.0},
                                 {0.0, 4.0, 0.0}};
  DesOptions fifo;
  fifo.policy = AllocationPolicy::kHeterogeneous;
  fifo.quantum_devices = 2;
  fifo.classical_nodes = 5;
  DesOptions lpt = fifo;
  lpt.queue = QueuePolicy::kLongestQuantumFirst;
  EXPECT_LT(simulate_workload(jobs, lpt).makespan,
            simulate_workload(jobs, fifo).makespan);
}

// ----------------------------------------------------------------- engine ----

TEST(Engine, RunsEveryTaskExactlyOnce) {
  WorkflowEngine engine(EngineOptions{2, 3});
  std::atomic<int> runs{0};
  std::vector<Task> tasks;
  for (int i = 0; i < 40; ++i) {
    tasks.push_back({i % 2 == 0 ? ResourceKind::kQuantum
                                : ResourceKind::kClassical,
                     [&runs] { runs++; }});
  }
  const BatchReport report = engine.run_batch(std::move(tasks));
  EXPECT_EQ(runs.load(), 40);
  EXPECT_EQ(report.timings.size(), 40u);
}

TEST(Engine, RespectsQuantumSlotCap) {
  const int slots = 2;
  WorkflowEngine engine(EngineOptions{slots, 8});
  std::atomic<int> active{0};
  std::atomic<int> peak{0};
  std::vector<Task> tasks;
  for (int i = 0; i < 24; ++i) {
    tasks.push_back({ResourceKind::kQuantum, [&active, &peak] {
                       const int now = ++active;
                       int expected = peak.load();
                       while (now > expected &&
                              !peak.compare_exchange_weak(expected, now)) {
                       }
                       std::this_thread::sleep_for(
                           std::chrono::milliseconds(2));
                       --active;
                     }});
  }
  engine.run_batch(std::move(tasks));
  EXPECT_LE(peak.load(), slots);
  EXPECT_GE(peak.load(), 1);
}

TEST(Engine, ClassicalAndQuantumSlotsAreIndependent) {
  WorkflowEngine engine(EngineOptions{1, 1});
  std::atomic<int> q_active{0}, c_active{0}, both_peak{0};
  std::vector<Task> tasks;
  for (int i = 0; i < 10; ++i) {
    const bool quantum = i % 2 == 0;
    tasks.push_back({quantum ? ResourceKind::kQuantum
                             : ResourceKind::kClassical,
                     [&, quantum] {
                       auto& mine = quantum ? q_active : c_active;
                       ++mine;
                       const int combined = q_active + c_active;
                       int expected = both_peak.load();
                       while (combined > expected &&
                              !both_peak.compare_exchange_weak(expected,
                                                               combined)) {
                       }
                       std::this_thread::sleep_for(
                           std::chrono::milliseconds(2));
                       --mine;
                     }});
  }
  engine.run_batch(std::move(tasks));
  // One of each kind may run together, but never two of the same kind.
  EXPECT_LE(both_peak.load(), 2);
}

TEST(Engine, TimingsAreOrderedAndBusyAccumulates) {
  WorkflowEngine engine(EngineOptions{2, 2});
  std::vector<Task> tasks;
  for (int i = 0; i < 8; ++i) {
    tasks.push_back({ResourceKind::kClassical, [] {
                       std::this_thread::sleep_for(
                           std::chrono::milliseconds(5));
                     }});
  }
  const BatchReport report = engine.run_batch(std::move(tasks));
  EXPECT_GT(report.wall_seconds, 0.0);
  EXPECT_GE(report.busy_seconds, 8 * 0.004);
  for (const TaskTiming& t : report.timings) {
    EXPECT_LE(t.submit_s, t.start_s + 1e-9);
    EXPECT_LE(t.start_s, t.end_s + 1e-9);
  }
}

TEST(Engine, ThrowingTaskIsFullyAccounted) {
  // A failing task must still be timed: start_s/end_s recorded, its partial
  // runtime included in busy_seconds, and the first exception rethrown
  // after the batch drains.
  WorkflowEngine engine(EngineOptions{1, 2});
  std::vector<Task> tasks;
  tasks.push_back({ResourceKind::kClassical, [] {
                     std::this_thread::sleep_for(
                         std::chrono::milliseconds(10));
                   }});
  tasks.push_back({ResourceKind::kClassical, [] {
                     std::this_thread::sleep_for(
                         std::chrono::milliseconds(10));
                     throw std::runtime_error("task failed");
                   }});
  tasks.push_back({ResourceKind::kClassical, [] {
                     std::this_thread::sleep_for(
                         std::chrono::milliseconds(10));
                   }});
  std::exception_ptr error;
  const BatchReport report = engine.run_batch(std::move(tasks), &error);
  ASSERT_TRUE(error != nullptr);
  EXPECT_THROW(std::rethrow_exception(error), std::runtime_error);
  ASSERT_EQ(report.timings.size(), 3u);
  const TaskTiming& failed = report.timings[1];
  EXPECT_TRUE(failed.failed);
  EXPECT_FALSE(report.timings[0].failed);
  EXPECT_FALSE(report.timings[2].failed);
  // The old engine left the throwing task's start_s/end_s zeroed and its
  // runtime out of busy_seconds.
  EXPECT_GT(failed.start_s, 0.0);
  EXPECT_GE(failed.end_s - failed.start_s, 0.008);
  EXPECT_GE(report.busy_seconds, 3 * 0.008);
  for (const TaskTiming& t : report.timings) {
    EXPECT_GE(t.wait_s, 0.0);
    EXPECT_NEAR(t.wait_s, t.start_s - t.submit_s, 1e-12);
  }
}

TEST(Engine, RecordsQueueWaitBehindSlots) {
  // One classical slot, three sleeping tasks: each successor waits for its
  // predecessor's slot, so recorded queue waits must stack roughly one
  // service time apart.
  WorkflowEngine engine(EngineOptions{1, 1});
  std::vector<Task> tasks;
  for (int i = 0; i < 3; ++i) {
    tasks.push_back({ResourceKind::kClassical, [] {
                       std::this_thread::sleep_for(
                           std::chrono::milliseconds(20));
                     }});
  }
  const BatchReport report = engine.run_batch(std::move(tasks));
  std::vector<double> waits;
  for (const TaskTiming& t : report.timings) waits.push_back(t.wait_s);
  std::sort(waits.begin(), waits.end());
  // Relative stacking (load-robust): each successor waits at least one
  // predecessor service time (>= 20 ms sleep) longer than the task before
  // it, whatever the ambient dispatch latency is.
  EXPECT_GE(waits[1], waits[0] + 0.015);
  EXPECT_GE(waits[2], waits[1] + 0.015);
}

TEST(Engine, CoordinationIdealUsesOnlyResourceKindsPresent) {
  // All-quantum batch on 2 quantum slots, with a large classical allotment
  // the batch can never use. The old divisor min(q+c, pool) pretended the
  // classical slots could drain quantum work, skewing the ideal-time
  // estimate and misattributing real slot queueing to "coordination". The
  // per-kind ideal makes a clean sleep batch report near-zero overhead.
  util::ThreadPool pool(4);
  EngineOptions opts;
  opts.quantum_slots = 2;
  opts.classical_slots = 64;
  opts.pool = &pool;
  WorkflowEngine engine(opts);
  std::vector<Task> tasks;
  for (int i = 0; i < 8; ++i) {
    tasks.push_back({ResourceKind::kQuantum, [] {
                       std::this_thread::sleep_for(
                           std::chrono::milliseconds(10));
                     }});
  }
  const BatchReport report = engine.run_batch(std::move(tasks));
  EXPECT_GT(report.busy_quantum_seconds, 0.0);
  EXPECT_DOUBLE_EQ(report.busy_classical_seconds, 0.0);
  // busy ~= 80 ms over the 2 USABLE slots -> ideal = busy/2. The old
  // formula divided by min(66, 4) = 4, calling ~20 ms of real slot
  // queueing "coordination"; this exact-formula pin fails against it.
  const double ideal = report.busy_seconds / 2.0;
  EXPECT_NEAR(report.coordination_seconds,
              std::max(0.0, report.wall_seconds - ideal), 1e-9);
}

TEST(Engine, WorkersAreNotParkedBehindTheSlotQueue) {
  // 4 quantum sleeps on ONE quantum slot, submitted ahead of 4 classical
  // sleeps. The old engine parked both pool workers in the quantum
  // semaphore, serializing the phases (~280 ms on this shape); the
  // non-blocking engine overlaps them, so wall stays near the quantum
  // makespan.
  util::ThreadPool pool(2);
  EngineOptions opts;
  opts.quantum_slots = 1;
  opts.classical_slots = 4;
  opts.pool = &pool;
  WorkflowEngine engine(opts);
  std::vector<Task> tasks;
  for (int i = 0; i < 4; ++i) {
    tasks.push_back({ResourceKind::kQuantum, [] {
                       std::this_thread::sleep_for(
                           std::chrono::milliseconds(40));
                     }});
  }
  for (int i = 0; i < 4; ++i) {
    tasks.push_back({ResourceKind::kClassical, [] {
                       std::this_thread::sleep_for(
                           std::chrono::milliseconds(40));
                     }});
  }
  const BatchReport report = engine.run_batch(std::move(tasks));
  EXPECT_GE(report.wall_seconds, 0.16);  // quantum makespan floor
  // Load-robust discriminator: with non-blocking dispatch, classical work
  // begins while the quantum queue is still draining — the first classical
  // task starts before the SECOND quantum task does. The old engine's
  // parked workers pushed every classical start past the third quantum
  // task's completion (~120 ms in).
  double first_classical_start = 1e300;
  std::vector<double> quantum_starts;
  for (const TaskTiming& t : report.timings) {
    if (t.kind == ResourceKind::kClassical) {
      first_classical_start = std::min(first_classical_start, t.start_s);
    } else {
      quantum_starts.push_back(t.start_s);
    }
  }
  std::sort(quantum_starts.begin(), quantum_starts.end());
  ASSERT_EQ(quantum_starts.size(), 4u);
  EXPECT_LT(first_classical_start, quantum_starts[1]);
}

TEST(Engine, RunBatchFromInsidePoolWorkerCompletes) {
  // Pathological but must not deadlock: the coordinator itself runs on a
  // pool worker (even a pool of ONE) and help-runs its own batch.
  util::ThreadPool pool(1);
  EngineOptions opts;
  opts.pool = &pool;
  std::atomic<int> runs{0};
  auto fut = pool.submit([&] {
    WorkflowEngine engine(opts);
    std::vector<Task> tasks;
    for (int i = 0; i < 6; ++i) {
      tasks.push_back({i % 2 == 0 ? ResourceKind::kQuantum
                                  : ResourceKind::kClassical,
                       [&runs] { runs++; }});
    }
    return engine.run_batch(std::move(tasks)).timings.size();
  });
  EXPECT_EQ(fut.get(), 6u);
  EXPECT_EQ(runs.load(), 6);
}

TEST(Engine, OptionValidation) {
  EXPECT_THROW(WorkflowEngine(EngineOptions{0, 1}), std::invalid_argument);
  EXPECT_THROW(WorkflowEngine(EngineOptions{1, 0}), std::invalid_argument);
}

TEST(Engine, EmptyBatchIsFine) {
  WorkflowEngine engine(EngineOptions{1, 1});
  const BatchReport report = engine.run_batch({});
  EXPECT_EQ(report.timings.size(), 0u);
  EXPECT_DOUBLE_EQ(report.busy_seconds, 0.0);
}

// ------------------------------------------- persistent task graph ----

TEST(Engine, SubmitChainRunsInDependencyOrder) {
  WorkflowEngine engine(EngineOptions{2, 2});
  util::Mutex mutex;
  std::vector<int> order;
  auto record = [&](int id) {
    util::MutexLock lock(mutex);
    order.push_back(id);
  };
  const TaskHandle a =
      engine.submit({ResourceKind::kQuantum, [&] { record(0); }});
  const TaskHandle b =
      engine.submit({ResourceKind::kClassical, [&] { record(1); }}, {a});
  const TaskHandle c =
      engine.submit({ResourceKind::kQuantum, [&] { record(2); }}, {b});
  engine.wait(c);
  EXPECT_TRUE(engine.finished(a));
  EXPECT_TRUE(engine.finished(b));
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  engine.drain();
}

TEST(Engine, DiamondDependenciesJoinBeforeSuccessor) {
  WorkflowEngine engine(EngineOptions{2, 2});
  std::atomic<int> fanned{0};
  std::atomic<int> join_saw{-1};
  const TaskHandle root =
      engine.submit({ResourceKind::kClassical, [&] { fanned += 1; }});
  std::vector<TaskHandle> mid;
  for (int i = 0; i < 6; ++i) {
    mid.push_back(engine.submit({i % 2 == 0 ? ResourceKind::kQuantum
                                            : ResourceKind::kClassical,
                                 [&] {
                                   std::this_thread::sleep_for(
                                       std::chrono::milliseconds(2));
                                   fanned += 1;
                                 }},
                                {root}));
  }
  const TaskHandle join = engine.submit(
      {ResourceKind::kClassical, [&] { join_saw = fanned.load(); }}, mid);
  engine.wait(join);
  EXPECT_EQ(join_saw.load(), 7);  // root + all six mid tasks done first
}

TEST(Engine, DependencyOnCompletedTaskIsImmediatelyReady) {
  WorkflowEngine engine(EngineOptions{1, 1});
  std::atomic<int> runs{0};
  const TaskHandle a =
      engine.submit({ResourceKind::kClassical, [&] { runs++; }});
  engine.wait(a);
  const TaskHandle b =
      engine.submit({ResourceKind::kClassical, [&] { runs++; }}, {a});
  engine.wait(b);
  EXPECT_EQ(runs.load(), 2);
}

TEST(Engine, TasksSubmittedFromInsideTasksKeepFlowing) {
  // Dynamic task graphs: a running task submits its own successors (the
  // streaming QAOA^2 pipeline's shape). drain() must see them all.
  WorkflowEngine engine(EngineOptions{2, 2});
  std::atomic<int> runs{0};
  std::function<void(int)> spawn = [&](int depth) {
    runs++;
    if (depth == 0) return;
    engine.submit({ResourceKind::kClassical, [&spawn, depth] {
                     spawn(depth - 1);
                   }});
    engine.submit({ResourceKind::kQuantum, [&spawn, depth] {
                     spawn(depth - 1);
                   }});
  };
  engine.submit({ResourceKind::kClassical, [&spawn] { spawn(3); }});
  engine.drain();
  // 1 root + 2 + 4 + 8 spawned tasks, each counted once.
  EXPECT_EQ(runs.load(), 15);
}

TEST(Engine, FailedDependencyCancelsSuccessorsTransitively) {
  WorkflowEngine engine(EngineOptions{1, 1});
  std::atomic<int> runs{0};
  const TaskHandle ok =
      engine.submit({ResourceKind::kClassical, [&] { runs++; }});
  const TaskHandle bad = engine.submit({ResourceKind::kClassical, [] {
                                          throw std::runtime_error("boom");
                                        }});
  const TaskHandle child =
      engine.submit({ResourceKind::kClassical, [&] { runs++; }}, {bad, ok});
  const TaskHandle grandchild =
      engine.submit({ResourceKind::kClassical, [&] { runs++; }}, {child});
  std::exception_ptr error;
  engine.drain(&error);
  ASSERT_TRUE(error != nullptr);
  EXPECT_THROW(std::rethrow_exception(error), std::runtime_error);
  EXPECT_EQ(runs.load(), 1);  // only `ok` ran
  EXPECT_TRUE(engine.timing(child).cancelled);
  // Disjoint flags: a cancelled task never ran, so it is not "failed".
  EXPECT_FALSE(engine.timing(child).failed);
  EXPECT_TRUE(engine.timing(grandchild).cancelled);
  EXPECT_FALSE(engine.timing(ok).failed);
  // A fresh dependant of the failed task is cancelled at submit time.
  const TaskHandle late =
      engine.submit({ResourceKind::kClassical, [&] { runs++; }}, {bad});
  EXPECT_TRUE(engine.finished(late));
  EXPECT_THROW(engine.wait(late), std::runtime_error);
  EXPECT_EQ(runs.load(), 1);
}

TEST(Engine, WaitRethrowsTheTasksError) {
  WorkflowEngine engine(EngineOptions{1, 1});
  const TaskHandle bad = engine.submit({ResourceKind::kQuantum, [] {
                                          throw std::logic_error("task");
                                        }});
  EXPECT_THROW(engine.wait(bad), std::logic_error);
  std::exception_ptr drained;
  engine.drain(&drained);  // the error is still reported to drain once
  EXPECT_TRUE(drained != nullptr);
}

TEST(Engine, SubmitValidatesDependencyHandles) {
  WorkflowEngine engine(EngineOptions{1, 1});
  EXPECT_THROW(engine.submit({ResourceKind::kClassical, [] {}},
                             {TaskHandle{}}),
               std::invalid_argument);
  EXPECT_THROW(engine.submit({ResourceKind::kClassical, [] {}},
                             {TaskHandle{99}}),
               std::invalid_argument);
  EXPECT_THROW(engine.submit({ResourceKind::kClassical, nullptr}),
               std::invalid_argument);
  // run_batch validates the WHOLE batch before submitting anything: a
  // partial submission followed by a throw would hand control back while
  // submitted closures still run against the caller's frame.
  std::atomic<int> runs{0};
  std::vector<Task> tasks;
  tasks.push_back({ResourceKind::kClassical, [&runs] { runs++; }});
  tasks.push_back({ResourceKind::kClassical, nullptr});
  EXPECT_THROW(engine.run_batch(std::move(tasks)), std::invalid_argument);
  engine.drain();
  EXPECT_EQ(runs.load(), 0);
}

TEST(Engine, LongDependencyChainCancelsWithoutRecursion) {
  // A failing root must cancel an arbitrarily long successor chain; the
  // worklist-based cancellation keeps this O(1) stack.
  WorkflowEngine engine(EngineOptions{1, 1});
  std::atomic<int> runs{0};
  TaskHandle prev = engine.submit({ResourceKind::kClassical, [] {
                                     std::this_thread::sleep_for(
                                         std::chrono::milliseconds(5));
                                     throw std::runtime_error("root");
                                   }});
  constexpr int kChain = 50000;
  for (int i = 0; i < kChain; ++i) {
    prev = engine.submit({ResourceKind::kClassical, [&runs] { runs++; }},
                         {prev});
  }
  std::exception_ptr error;
  engine.drain(&error);
  EXPECT_TRUE(error != nullptr);
  EXPECT_EQ(runs.load(), 0);
  EXPECT_TRUE(engine.timing(prev).cancelled);
  EXPECT_EQ(engine.stats().cancelled, static_cast<std::size_t>(kChain));
}

TEST(Engine, StatsAccumulateAcrossBatchesAndSubmits) {
  WorkflowEngine engine(EngineOptions{2, 2});
  std::vector<Task> batch;
  for (int i = 0; i < 4; ++i) {
    batch.push_back({ResourceKind::kQuantum, [] {}});
  }
  engine.run_batch(std::move(batch));
  const TaskHandle h = engine.submit({ResourceKind::kClassical, [] {}});
  engine.wait(h);
  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.submitted, 5u);
  EXPECT_EQ(stats.completed, 5u);
  EXPECT_EQ(stats.cancelled, 0u);
  EXPECT_EQ(stats.quantum_tasks, 4u);
  EXPECT_EQ(stats.classical_tasks, 1u);
}

TEST(Engine, SlotCapsHoldAcrossIndependentChains) {
  // Many chains stream through one engine; the per-kind cap must hold
  // globally, not per chain.
  const int slots = 2;
  WorkflowEngine engine(EngineOptions{slots, 8});
  std::atomic<int> active{0};
  std::atomic<int> peak{0};
  auto body = [&] {
    const int now = ++active;
    int expected = peak.load();
    while (now > expected && !peak.compare_exchange_weak(expected, now)) {
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    --active;
  };
  for (int chain = 0; chain < 6; ++chain) {
    TaskHandle prev{};
    for (int step = 0; step < 3; ++step) {
      prev = engine.submit({ResourceKind::kQuantum, body},
                           prev.valid() ? std::vector<TaskHandle>{prev}
                                        : std::vector<TaskHandle>{});
    }
  }
  engine.drain();
  EXPECT_LE(peak.load(), slots);
  EXPECT_GE(peak.load(), 1);
}

TEST(Engine, StreamingChainsOverlapAcrossABarrierlessEngine) {
  // Two component-like chains: leaves -> merge -> coarse. With dependency
  // streaming, the FAST chain's coarse task must start while the slow
  // chain's leaves are still running — the cross-level overlap a per-level
  // run_batch barrier forbids.
  util::ThreadPool pool(4);
  EngineOptions opts;
  opts.quantum_slots = 2;
  opts.classical_slots = 2;
  opts.pool = &pool;
  WorkflowEngine engine(opts);

  auto sleep_ms = [](int ms) {
    return [ms] { std::this_thread::sleep_for(std::chrono::milliseconds(ms)); };
  };
  // Fast chain: one 5 ms leaf, then merge and coarse.
  const TaskHandle fast_leaf =
      engine.submit({ResourceKind::kQuantum, sleep_ms(5)});
  const TaskHandle fast_merge =
      engine.submit({ResourceKind::kClassical, sleep_ms(1)}, {fast_leaf});
  const TaskHandle fast_coarse =
      engine.submit({ResourceKind::kQuantum, sleep_ms(10)}, {fast_merge});
  // Slow chain: 6 leaves of 20 ms sharing the 2 quantum slots.
  std::vector<TaskHandle> slow_leaves;
  for (int i = 0; i < 6; ++i) {
    slow_leaves.push_back(
        engine.submit({ResourceKind::kQuantum, sleep_ms(20)}));
  }
  const TaskHandle slow_merge =
      engine.submit({ResourceKind::kClassical, sleep_ms(1)}, slow_leaves);
  const TaskHandle slow_coarse =
      engine.submit({ResourceKind::kQuantum, sleep_ms(10)}, {slow_merge});
  engine.drain();

  double slow_leaves_end = 0.0;
  for (const TaskHandle h : slow_leaves) {
    slow_leaves_end = std::max(slow_leaves_end, engine.timing(h).end_s);
  }
  EXPECT_LT(engine.timing(fast_coarse).start_s, slow_leaves_end)
      << "fast chain's coarse level did not overlap slow chain's leaves";
  EXPECT_GE(engine.timing(slow_coarse).start_s,
            engine.timing(slow_merge).end_s - 1e-9);
}

TEST(Engine, RunBatchStillWorksAfterStreamingUse) {
  WorkflowEngine engine(EngineOptions{2, 2});
  std::atomic<int> runs{0};
  const TaskHandle a =
      engine.submit({ResourceKind::kQuantum, [&] { runs++; }});
  engine.wait(a);
  std::vector<Task> tasks;
  for (int i = 0; i < 8; ++i) {
    tasks.push_back({ResourceKind::kClassical, [&runs] { runs++; }});
  }
  const BatchReport report = engine.run_batch(std::move(tasks));
  EXPECT_EQ(runs.load(), 9);
  ASSERT_EQ(report.timings.size(), 8u);
  // Batch timings are batch-relative even on a long-lived engine.
  for (const TaskTiming& t : report.timings) {
    EXPECT_GE(t.submit_s, 0.0);
    EXPECT_LE(t.submit_s, t.start_s + 1e-9);
    EXPECT_LT(t.end_s, report.wall_seconds + 1e-9);
  }
}

// ------------------------------------------- fair share, groups, settle ----

TEST(Engine, AddClassValidatesWeightAndSubmitValidatesIds) {
  WorkflowEngine engine(EngineOptions{1, 1});
  EXPECT_THROW(engine.add_class({"zero", 0.0}), std::invalid_argument);
  EXPECT_THROW(engine.add_class({"negative", -1.0}), std::invalid_argument);
  Task unknown_class;
  unknown_class.kind = ResourceKind::kClassical;
  unknown_class.work = [] {};
  unknown_class.fair_class = 7;
  EXPECT_THROW(engine.submit(std::move(unknown_class)),
               std::invalid_argument);
  Task unknown_group;
  unknown_group.kind = ResourceKind::kClassical;
  unknown_group.work = [] {};
  unknown_group.group = 12345;
  EXPECT_THROW(engine.submit(std::move(unknown_group)),
               std::invalid_argument);
  EXPECT_FALSE(engine.group_cancelled(12345));
  EXPECT_EQ(engine.cancel_group(12345), 0u);
}

TEST(Engine, FairShareWeightedDispatchUnderContention) {
  // One classical slot, two classes weighted 3:1, all tasks released at
  // once behind a shared root: SFQ must interleave ~3 heavy-class tasks
  // per light-class task while both are backlogged.
  WorkflowEngine engine(EngineOptions{1, 1});
  const ClassId heavy = engine.add_class({"heavy", 3.0});
  const ClassId light = engine.add_class({"light", 1.0});
  // Generous root sleep: every task below must be submitted (queued)
  // before the root releases them, even under sanitizers.
  const TaskHandle root =
      engine.submit({ResourceKind::kClassical, [] {
                       std::this_thread::sleep_for(
                           std::chrono::milliseconds(100));
                     }});
  util::Mutex order_mutex;
  std::vector<ClassId> order;
  auto task_of = [&](ClassId cls) {
    Task t;
    t.kind = ResourceKind::kClassical;
    t.fair_class = cls;
    t.work = [&order_mutex, &order, cls] {
      std::this_thread::sleep_for(std::chrono::microseconds(300));
      util::MutexLock lock(order_mutex);
      order.push_back(cls);
    };
    return t;
  };
  for (int i = 0; i < 12; ++i) engine.submit(task_of(heavy), {root});
  for (int i = 0; i < 12; ++i) engine.submit(task_of(light), {root});
  engine.drain();
  ASSERT_EQ(order.size(), 24u);
  // While both classes were backlogged (the first 16 completions), the
  // heavy class must get roughly its 3x share; exact counts depend on the
  // measured-cost EWMA, so assert the ratio loosely.
  int heavy_first = 0;
  for (std::size_t i = 0; i < 16; ++i) heavy_first += order[i] == heavy;
  EXPECT_GE(heavy_first, 10) << "weight-3 class undersupplied";
  EXPECT_LE(heavy_first, 14) << "weight-1 class starved";

  const std::vector<FairClassStats> stats = engine.class_stats();
  ASSERT_EQ(stats.size(), 3u);  // default + heavy + light
  EXPECT_EQ(stats[heavy].name, "heavy");
  EXPECT_EQ(stats[heavy].completed, 12u);
  EXPECT_EQ(stats[light].completed, 12u);
  EXPECT_GT(stats[heavy].busy_seconds, 0.0);
  EXPECT_GT(stats[light].queue_wait_seconds, 0.0);
  EXPECT_EQ(stats[0].completed, 1u);  // the root ran as the default class
}

TEST(Engine, DefaultClassAloneKeepsFifoOrder) {
  // Single-tenant behavior must be untouched: with only class 0, ready
  // tasks of one kind on one slot run in submission order.
  WorkflowEngine engine(EngineOptions{1, 1});
  const TaskHandle root =
      engine.submit({ResourceKind::kClassical, [] {
                       std::this_thread::sleep_for(
                           std::chrono::milliseconds(50));
                     }});
  util::Mutex order_mutex;
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) {
    engine.submit({ResourceKind::kClassical,
                   [&order_mutex, &order, i] {
                     util::MutexLock lock(order_mutex);
                     order.push_back(i);
                   }},
                  {root});
  }
  engine.drain();
  ASSERT_EQ(order.size(), 8u);
  // Successor release pushes to the FRONT in reverse submission order, so
  // dependents of one task run newest-first (depth-first); this pins the
  // exact pre-fair-share order.
  for (int i = 0; i < 8; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], 7 - i);
}

TEST(Engine, CancelGroupCancelsQueuedAndLateMembers) {
  WorkflowEngine engine(EngineOptions{1, 1});
  std::atomic<int> runs{0};
  std::atomic<int> settles{0};
  std::atomic<int> settle_errors{0};
  // Hold the single classical slot so the group's tasks stay queued.
  std::atomic<bool> release{false};
  engine.submit({ResourceKind::kClassical, [&release] {
                   while (!release.load()) {
                     std::this_thread::sleep_for(
                         std::chrono::microseconds(50));
                   }
                 }});
  const GroupId group = engine.open_group();
  EXPECT_FALSE(engine.group_cancelled(group));
  std::vector<TaskHandle> members;
  for (int i = 0; i < 5; ++i) {
    Task t;
    t.kind = ResourceKind::kClassical;
    t.group = group;
    t.work = [&runs] { runs++; };
    t.on_settled = [&settles, &settle_errors](std::exception_ptr err) {
      settles++;
      if (err) settle_errors++;
    };
    members.push_back(engine.submit(std::move(t)));
  }
  EXPECT_EQ(engine.stats().ready_classical, 5u);
  EXPECT_EQ(engine.cancel_group(group), 5u);
  EXPECT_TRUE(engine.group_cancelled(group));
  EXPECT_EQ(engine.stats().ready_classical, 0u);
  EXPECT_EQ(settles.load(), 5);
  EXPECT_EQ(settle_errors.load(), 5);
  for (const TaskHandle h : members) {
    EXPECT_TRUE(engine.finished(h));
    EXPECT_TRUE(engine.timing(h).cancelled);
    EXPECT_FALSE(engine.timing(h).failed);
  }
  // A submission into the cancelled group cancels on arrival.
  Task late;
  late.kind = ResourceKind::kClassical;
  late.group = group;
  late.work = [&runs] { runs++; };
  late.on_settled = [&settles](std::exception_ptr) { settles++; };
  const TaskHandle late_h = engine.submit(std::move(late));
  EXPECT_TRUE(engine.finished(late_h));
  EXPECT_EQ(settles.load(), 6);
  engine.close_group(group);
  EXPECT_FALSE(engine.group_cancelled(group));  // closed groups are unknown
  release = true;
  // Group cancellation must NOT poison the engine's first_error: a plain
  // drain() would rethrow it.
  engine.drain();
  EXPECT_EQ(runs.load(), 0);
  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.cancelled, 6u);
  EXPECT_EQ(stats.completed, 1u);  // the blocker
}

TEST(Engine, OnSettledFiresExactlyOncePerOutcome) {
  WorkflowEngine engine(EngineOptions{1, 1});
  std::atomic<int> ok_settles{0};
  std::atomic<int> fail_settles{0};
  std::atomic<int> cancel_settles{0};
  Task ok;
  ok.kind = ResourceKind::kClassical;
  ok.work = [] {};
  ok.on_settled = [&ok_settles](std::exception_ptr err) {
    if (!err) ok_settles++;
  };
  engine.submit(std::move(ok));
  Task bad;
  bad.kind = ResourceKind::kClassical;
  bad.work = [] { throw std::runtime_error("boom"); };
  bad.on_settled = [&fail_settles](std::exception_ptr err) {
    if (err) fail_settles++;
  };
  const TaskHandle bad_h = engine.submit(std::move(bad));
  Task child;
  child.kind = ResourceKind::kClassical;
  child.work = [] {};
  child.on_settled = [&cancel_settles](std::exception_ptr err) {
    if (err) cancel_settles++;
  };
  engine.submit(std::move(child), {bad_h});
  std::exception_ptr error;
  engine.drain(&error);
  EXPECT_TRUE(error != nullptr);
  EXPECT_EQ(ok_settles.load(), 1);
  EXPECT_EQ(fail_settles.load(), 1);
  EXPECT_EQ(cancel_settles.load(), 1);
}

TEST(Engine, StatsGaugesTrackReadyAndInflight) {
  WorkflowEngine engine(EngineOptions{1, 1});
  std::atomic<bool> release{false};
  engine.submit({ResourceKind::kClassical, [&release] {
                   while (!release.load()) {
                     std::this_thread::sleep_for(
                         std::chrono::microseconds(50));
                   }
                 }});
  for (int i = 0; i < 3; ++i) {
    engine.submit({ResourceKind::kClassical, [] {}});
  }
  // The blocker holds the only classical slot; the rest are ready.
  EngineStats stats = engine.stats();
  EXPECT_EQ(stats.inflight_classical, 1u);
  EXPECT_EQ(stats.ready_classical, 3u);
  EXPECT_EQ(stats.inflight_quantum, 0u);
  EXPECT_EQ(stats.ready_quantum, 0u);
  release = true;
  engine.drain();
  stats = engine.stats();
  EXPECT_EQ(stats.inflight_classical, 0u);
  EXPECT_EQ(stats.ready_classical, 0u);
}

TEST(Engine, TryRunOneClaimsADispatchedTask) {
  // Pin a pool of one and occupy its only thread, so dispatched tasks can
  // only run when the caller donates its thread via try_run_one.
  util::ThreadPool pool(1);
  EngineOptions opts;
  opts.quantum_slots = 1;
  opts.classical_slots = 1;
  opts.pool = &pool;
  WorkflowEngine engine(opts);
  std::atomic<bool> started{false};
  std::atomic<bool> release{false};
  engine.submit({ResourceKind::kQuantum, [&started, &release] {
                   started = true;
                   while (!release.load()) {
                     std::this_thread::sleep_for(
                         std::chrono::microseconds(50));
                   }
                 }});
  // Wait for the pool thread to CLAIM the blocker, so try_run_one below
  // cannot claim it instead (and spin on `release` forever).
  while (!started.load()) {
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
  std::atomic<int> runs{0};
  engine.submit({ResourceKind::kClassical, [&runs] { runs++; }});
  // The classical task is dispatched (its slot is free) but the pool's one
  // thread is stuck in the quantum blocker.
  EXPECT_TRUE(engine.try_run_one());
  EXPECT_EQ(runs.load(), 1);
  EXPECT_FALSE(engine.try_run_one());  // nothing else claimable
  release = true;
  engine.drain();
}

}  // namespace
}  // namespace qq::sched
