// Tests for OpenQASM 2.0 export/import: structure of the emitted program
// and semantic round-trip equivalence through the simulator.

#include <gtest/gtest.h>

#include <complex>

#include "qcircuit/ansatz.hpp"
#include "qcircuit/execute.hpp"
#include "qcircuit/qasm.hpp"
#include "qgraph/generators.hpp"
#include "util/rng.hpp"

namespace qq::circuit {
namespace {

double overlap(const sim::StateVector& a, const sim::StateVector& b) {
  std::complex<double> inner{0.0, 0.0};
  for (std::size_t i = 0; i < a.size(); ++i) {
    inner += std::conj(a.data()[i]) * b.data()[i];
  }
  return std::abs(inner);
}

TEST(Qasm, HeaderAndRegisters) {
  Circuit qc(3);
  qc.h(0);
  const std::string qasm = to_qasm(qc);
  EXPECT_NE(qasm.find("OPENQASM 2.0;"), std::string::npos);
  EXPECT_NE(qasm.find("include \"qelib1.inc\";"), std::string::npos);
  EXPECT_NE(qasm.find("qreg q[3];"), std::string::npos);
  EXPECT_NE(qasm.find("creg c[3];"), std::string::npos);
  EXPECT_NE(qasm.find("measure q -> c;"), std::string::npos);
}

TEST(Qasm, MeasurementCanBeOmitted) {
  Circuit qc(2);
  qc.h(0);
  QasmOptions opts;
  opts.include_measurement = false;
  const std::string qasm = to_qasm(qc, opts);
  EXPECT_EQ(qasm.find("creg"), std::string::npos);
  EXPECT_EQ(qasm.find("measure"), std::string::npos);
}

TEST(Qasm, RzzLowersToQelib1) {
  Circuit qc(2);
  qc.rzz(0, 1, 0.75);
  const std::string qasm = to_qasm(qc);
  EXPECT_EQ(qasm.find("rzz"), std::string::npos);
  EXPECT_NE(qasm.find("cx q[0],q[1];"), std::string::npos);
  EXPECT_NE(qasm.find("rz(0.75) q[1];"), std::string::npos);
}

TEST(Qasm, GateLinesAreEmitted) {
  Circuit qc(2);
  qc.h(0).x(1).rx(0, 0.5).cz(0, 1).swap(0, 1).barrier().phase(1, 0.25);
  const std::string qasm = to_qasm(qc);
  EXPECT_NE(qasm.find("h q[0];"), std::string::npos);
  EXPECT_NE(qasm.find("x q[1];"), std::string::npos);
  EXPECT_NE(qasm.find("rx(0.5) q[0];"), std::string::npos);
  EXPECT_NE(qasm.find("cz q[0],q[1];"), std::string::npos);
  EXPECT_NE(qasm.find("swap q[0],q[1];"), std::string::npos);
  EXPECT_NE(qasm.find("barrier q;"), std::string::npos);
  EXPECT_NE(qasm.find("p(0.25) q[1];"), std::string::npos);
}

class QasmRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(QasmRoundTrip, ParseBackIsSemanticallyIdentical) {
  const int seed = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(seed) + 40);
  Circuit qc(4);
  for (int i = 0; i < 30; ++i) {
    const int q = util::uniform_int(rng, 0, 3);
    int q2 = util::uniform_int(rng, 0, 3);
    while (q2 == q) q2 = util::uniform_int(rng, 0, 3);
    const double t = util::uniform(rng, -2.0, 2.0);
    switch (util::uniform_int(rng, 0, 6)) {
      case 0: qc.h(q); break;
      case 1: qc.rx(q, t); break;
      case 2: qc.rz(q, t); break;
      case 3: qc.cx(q, q2); break;
      case 4: qc.rzz(q, q2, t); break;
      case 5: qc.cz(q, q2); break;
      default: qc.phase(q, t); break;
    }
  }
  const Circuit back = from_qasm(to_qasm(qc));
  EXPECT_EQ(back.num_qubits(), qc.num_qubits());
  const sim::StateVector a = run(qc);
  const sim::StateVector b = run(back);
  EXPECT_NEAR(overlap(a, b), 1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, QasmRoundTrip, ::testing::Range(0, 6));

TEST(Qasm, QaoaAnsatzRoundTrips) {
  util::Rng rng(3);
  const auto g = graph::erdos_renyi(5, 0.5, rng);
  QaoaAngles angles;
  angles.gammas = {0.3, 0.6};
  angles.betas = {0.5, 0.2};
  const Circuit qc = qaoa_ansatz(g, angles);
  const Circuit back = from_qasm(to_qasm(qc));
  EXPECT_NEAR(overlap(run(qc), run(back)), 1.0, 1e-9);
}

TEST(Qasm, ParserSkipsCommentsAndWhitespace) {
  const std::string text = R"(
// leading comment
OPENQASM 2.0;
include "qelib1.inc";
qreg q[2];   // two qubits
h   q[0] ;
cx q[0], q[1];
)";
  const Circuit qc = from_qasm(text);
  EXPECT_EQ(qc.num_qubits(), 2);
  ASSERT_EQ(qc.size(), 2u);
  EXPECT_EQ(qc.gates()[0].kind, GateKind::kH);
  EXPECT_EQ(qc.gates()[1].kind, GateKind::kCx);
}

TEST(Qasm, ParserErrorHandling) {
  EXPECT_THROW(from_qasm("h q[0];"), std::runtime_error);  // no qreg
  EXPECT_THROW(from_qasm("qreg q[2]; frobnicate q[0];"), std::runtime_error);
  EXPECT_THROW(from_qasm("qreg q[2]; h q[0]"), std::runtime_error);  // no ';'
  EXPECT_THROW(from_qasm("qreg q[2]; rx(1.0 q[0];"), std::runtime_error);
  EXPECT_THROW(from_qasm("qreg q[2]; cx q[0];"), std::runtime_error);
}

}  // namespace
}  // namespace qq::circuit
