// Tests for the QAOA driver: cut-table correctness, fast-path vs
// circuit-path agreement, optimization behaviour, solution extraction, the
// paper's iteration schedule, and RQAOA.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numbers>

#include "maxcut/exact.hpp"
#include "qaoa/cost_table.hpp"
#include "qaoa/qaoa.hpp"
#include "qaoa/rqaoa.hpp"
#include "qcircuit/ansatz.hpp"
#include "qcircuit/execute.hpp"
#include "qsim/measure.hpp"
#include "qgraph/generators.hpp"
#include "util/rng.hpp"

namespace qq::qaoa {
namespace {

using graph::Graph;
using graph::NodeId;

// ------------------------------------------------------------ cut table ----

TEST(CostTable, MatchesCutValueForEveryState) {
  util::Rng rng(1);
  const Graph g =
      graph::erdos_renyi(10, 0.4, rng, graph::WeightMode::kUniform01);
  const auto table = build_cut_table(g);
  ASSERT_EQ(table.size(), std::size_t{1} << 10);
  for (std::uint64_t bits = 0; bits < table.size(); ++bits) {
    EXPECT_NEAR(table[bits],
                maxcut::cut_value(g, maxcut::assignment_from_bits(bits, 10)),
                1e-9);
  }
}

TEST(CostTable, MaxEntryIsExactOptimum) {
  util::Rng rng(2);
  const Graph g = graph::erdos_renyi(12, 0.3, rng);
  const QaoaSolver solver(g);
  EXPECT_NEAR(solver.exact_optimum(), maxcut::solve_exact(g).value, 1e-9);
}

// ------------------------------------------- fast path == circuit path ----

class FastPathEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(FastPathEquivalence, DiagonalSweepMatchesGateByGateAnsatz) {
  const int seed = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(seed) + 100);
  const Graph g =
      graph::erdos_renyi(7, 0.45, rng, graph::WeightMode::kUniform01);
  circuit::QaoaAngles angles;
  const int p = 1 + seed % 3;
  for (int l = 0; l < p; ++l) {
    angles.gammas.push_back(util::uniform(rng, -1.5, 1.5));
    angles.betas.push_back(util::uniform(rng, -1.5, 1.5));
  }
  const QaoaSolver solver(g);
  const sim::StateVector fast = solver.state(angles);
  const sim::StateVector slow = circuit::run(circuit::qaoa_ansatz(g, angles));
  // The gate decomposition drops a global phase; compare |<a|b>|.
  std::complex<double> inner{0, 0};
  for (std::size_t i = 0; i < fast.size(); ++i) {
    inner += std::conj(fast.data()[i]) * slow.data()[i];
  }
  EXPECT_NEAR(std::abs(inner), 1.0, 1e-9);
  // And the expectations agree exactly.
  const auto table = solver.cut_table();
  EXPECT_NEAR(sim::expectation_diagonal(fast, table),
              sim::expectation_diagonal(slow, table), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FastPathEquivalence, ::testing::Range(0, 8));

// ------------------------------------------------------------ expectation ----

TEST(Expectation, NeverExceedsExactOptimum) {
  util::Rng rng(5);
  const Graph g = graph::erdos_renyi(9, 0.4, rng);
  const QaoaSolver solver(g);
  for (int trial = 0; trial < 20; ++trial) {
    circuit::QaoaAngles angles;
    angles.gammas = {util::uniform(rng, -2.0, 2.0)};
    angles.betas = {util::uniform(rng, -2.0, 2.0)};
    EXPECT_LE(solver.expectation(angles), solver.exact_optimum() + 1e-9);
    EXPECT_GE(solver.expectation(angles), 0.0);
  }
}

TEST(Expectation, ZeroAnglesGiveHalfTotalWeight) {
  // gamma = beta = 0 leaves |+>^n: every edge is cut with probability 1/2.
  util::Rng rng(6);
  const Graph g =
      graph::erdos_renyi(8, 0.5, rng, graph::WeightMode::kUniform01);
  const QaoaSolver solver(g);
  circuit::QaoaAngles zero;
  zero.gammas = {0.0};
  zero.betas = {0.0};
  EXPECT_NEAR(solver.expectation(zero), g.total_weight() / 2.0, 1e-9);
}

TEST(Expectation, SampledEstimateConvergesToExact) {
  util::Rng rng(7);
  const Graph g = graph::erdos_renyi(8, 0.4, rng);
  const QaoaSolver solver(g);
  circuit::QaoaAngles angles;
  angles.gammas = {0.4};
  angles.betas = {0.3};
  const double exact = solver.expectation(angles);
  util::Rng shot_rng(8);
  const double sampled = solver.sampled_expectation(angles, 60000, shot_rng);
  EXPECT_NEAR(sampled, exact, 0.1);
  EXPECT_THROW(solver.sampled_expectation(angles, 0, shot_rng),
               std::invalid_argument);
}

// ----------------------------------------------------------- optimization ----

TEST(Optimize, ImprovesOverZeroAngleBaseline) {
  util::Rng rng(9);
  const Graph g = graph::erdos_renyi(10, 0.35, rng);
  const QaoaSolver solver(g);
  QaoaOptions opts;
  opts.layers = 3;
  opts.max_iterations = 120;
  opts.seed = 1;
  const QaoaResult r = solver.optimize(opts);
  EXPECT_GT(r.expectation, g.total_weight() / 2.0)
      << "optimized F_p should beat the random-guess baseline W/2";
  EXPECT_LE(r.expectation, solver.exact_optimum() + 1e-9);
}

TEST(Optimize, SingleEdgeReachesOptimumWithGenerousBudget) {
  Graph g(2);
  g.add_edge(0, 1, 1.0);
  QaoaOptions opts;
  opts.layers = 2;
  opts.max_iterations = 400;
  opts.rhobeg = 0.5;
  const QaoaResult r = solve_qaoa(g, opts);
  EXPECT_GT(r.expectation, 0.95);
  EXPECT_DOUBLE_EQ(r.cut.value, 1.0);
}

TEST(Optimize, BestSampledReportsTrueBestOnAllNegativeCutLandscape) {
  // Every edge weight negative => every nonempty cut has negative value, as
  // in the signed merge graphs qaoa2::build_merge_graph produces. The
  // sampling diagnostic must report the true best over the drawn samples
  // instead of the phantom 0.0 a zero-initialized accumulator yields.
  Graph g(4);
  g.add_edge(0, 1, -2.0);
  g.add_edge(1, 2, -1.5);
  g.add_edge(2, 3, -3.0);
  g.add_edge(0, 3, -1.0);
  const QaoaSolver solver(g);
  QaoaOptions opts;
  opts.layers = 1;
  // A single objective evaluation and very few shots: the optimizer cannot
  // concentrate amplitude on the zero-valued trivial cuts (0000/1111), and
  // with 4 draws from a near-uniform 16-state distribution the seed below
  // produces no trivial-cut sample — so the true best is strictly negative
  // and a reverted best_sampled = max(0.0, ...) accumulator is caught.
  opts.max_iterations = 1;
  opts.shots = 4;
  opts.seed = 11;
  const QaoaResult r = solver.optimize(opts);

  // Reproduce the extraction-time sample stream (optimize() only touches
  // its shot RNG at extraction when shot_based_objective is off).
  const sim::StateVector sv =
      solver.state(circuit::unpack_angles(r.parameters));
  util::Rng rng(opts.seed ^ 0x7357b1e55ed5eedULL);
  const auto samples = sim::sample_counts(sv, opts.shots, rng);
  double expected = solver.cut_table()[samples.front()];
  for (const sim::BasisState s : samples) {
    expected = std::max(expected, solver.cut_table()[s]);
  }
  ASSERT_LT(expected, 0.0)
      << "seed/shots drew a trivial cut; pick a seed whose samples are all "
         "nonempty cuts so this test keeps its regression-catching power";
  EXPECT_DOUBLE_EQ(r.best_sampled_value, expected);
}

TEST(Optimize, BestSampledCanBeNegativeWhenZeroCutUnreachable) {
  // Force a landscape where even the trivial cuts are negative by seeding
  // sampled_expectation directly: a 2-node graph with a negative edge has
  // cut table {0, -1, -1, 0}; with the state concentrated on the nonzero
  // cuts the best sample must come out negative, not 0.
  Graph g(2);
  g.add_edge(0, 1, -1.0);
  const QaoaSolver solver(g);
  // gamma = 0, beta = pi/4: mixer rotates |++> so all four states keep
  // support; sample enough shots that a cut of -1 appears.
  circuit::QaoaAngles angles;
  angles.gammas = {0.0};
  angles.betas = {std::numbers::pi / 4.0};
  util::Rng rng(5);
  const double est = solver.sampled_expectation(angles, 4096, rng);
  EXPECT_LT(est, 0.0) << "samples hitting cut -1 must drag the mean below 0";
}

TEST(Optimize, ChosenBitstringAchievesReportedCut) {
  util::Rng rng(11);
  const Graph g =
      graph::erdos_renyi(9, 0.35, rng, graph::WeightMode::kUniform01);
  QaoaOptions opts;
  opts.layers = 3;
  opts.seed = 4;
  const QaoaResult r = solve_qaoa(g, opts);
  EXPECT_NEAR(maxcut::cut_value(g, r.cut.assignment), r.cut.value, 1e-9);
}

TEST(Optimize, TopKNeverWorseThanTopOne) {
  util::Rng rng(13);
  const Graph g = graph::erdos_renyi(10, 0.3, rng);
  QaoaOptions base;
  base.layers = 3;
  base.seed = 7;
  base.top_k = 1;
  QaoaOptions topk = base;
  topk.top_k = 16;
  const QaoaSolver solver(g);
  const double v1 = solver.optimize(base).cut.value;
  const double vk = solver.optimize(topk).cut.value;
  EXPECT_GE(vk, v1 - 1e-12) << "top-k scan (paper section 5) cannot hurt";
}

TEST(Workspace, ReusedStateMatchesFreshConstruction) {
  // One EvalWorkspace across many evaluations (what optimize() does) must
  // reproduce the fresh-allocation path bit for bit, including after the
  // workspace held a state for DIFFERENT angles.
  util::Rng rng(31);
  const Graph g = graph::erdos_renyi(8, 0.4, rng);
  const QaoaSolver solver(g);
  QaoaSolver::EvalWorkspace workspace(g.num_nodes());

  circuit::QaoaAngles a, b;
  a.gammas = {0.3, 0.5};
  a.betas = {0.2, 0.1};
  b.gammas = {0.9, 0.05};
  b.betas = {0.4, 0.7};
  for (const auto* angles : {&a, &b, &a}) {
    const double reused = solver.expectation(*angles, workspace);
    EXPECT_EQ(reused, solver.expectation(*angles));
    const sim::StateVector fresh = solver.state(*angles);
    for (std::size_t i = 0; i < fresh.size(); ++i) {
      EXPECT_EQ(workspace.sv.amplitude(i), fresh.amplitude(i));
    }
  }
}

TEST(Workspace, SampledExpectationMatchesAllocatingPath) {
  util::Rng rng(32);
  const Graph g = graph::erdos_renyi(8, 0.4, rng);
  const QaoaSolver solver(g);
  circuit::QaoaAngles angles;
  angles.gammas = {0.45};
  angles.betas = {0.35};
  QaoaSolver::EvalWorkspace workspace(g.num_nodes());
  util::Rng shots_a(77), shots_b(77);
  const double reused =
      solver.sampled_expectation(angles, 256, shots_a, workspace);
  const double fresh = solver.sampled_expectation(angles, 256, shots_b);
  EXPECT_EQ(reused, fresh);
  // Second use of the same (now dirty) workspace, with both rng streams
  // advanced identically: stale CDF/shot-buffer contents must not leak
  // into the estimate.
  const double again =
      solver.sampled_expectation(angles, 256, shots_a, workspace);
  const double fresh_again = solver.sampled_expectation(angles, 256, shots_b);
  EXPECT_EQ(again, fresh_again);
}

TEST(Workspace, AdaptsToDifferentQubitCount) {
  util::Rng rng(33);
  const Graph g = graph::erdos_renyi(6, 0.5, rng);
  const QaoaSolver solver(g);
  circuit::QaoaAngles angles;
  angles.gammas = {0.3};
  angles.betas = {0.2};
  // Deliberately wrong-sized workspace: prepare_state must resize it.
  QaoaSolver::EvalWorkspace workspace(3);
  const double got = solver.expectation(angles, workspace);
  EXPECT_EQ(workspace.sv.num_qubits(), 6);
  EXPECT_EQ(got, solver.expectation(angles));
}

TEST(Optimize, DeterministicPerSeed) {
  util::Rng rng(15);
  const Graph g = graph::erdos_renyi(9, 0.35, rng);
  QaoaOptions opts;
  opts.layers = 2;
  opts.seed = 42;
  const QaoaResult a = solve_qaoa(g, opts);
  const QaoaResult b = solve_qaoa(g, opts);
  EXPECT_DOUBLE_EQ(a.expectation, b.expectation);
  EXPECT_EQ(a.cut.assignment, b.cut.assignment);
  EXPECT_EQ(a.parameters, b.parameters);
}

TEST(Optimize, ShotBasedObjectiveRunsAndStaysBounded) {
  util::Rng rng(17);
  const Graph g = graph::erdos_renyi(8, 0.4, rng);
  QaoaOptions opts;
  opts.layers = 2;
  opts.shot_based_objective = true;
  opts.shots = 512;
  opts.seed = 3;
  const QaoaSolver solver(g);
  const QaoaResult r = solver.optimize(opts);
  EXPECT_LE(r.expectation, solver.exact_optimum() + 1e-9);
  EXPECT_GT(r.best_sampled_value, 0.0);
}

TEST(Optimize, RespectsIterationBudget) {
  util::Rng rng(19);
  const Graph g = graph::erdos_renyi(8, 0.4, rng);
  QaoaOptions opts;
  opts.layers = 2;
  opts.max_iterations = 25;
  const QaoaResult r = solve_qaoa(g, opts);
  EXPECT_LE(r.evaluations, 25);
}

TEST(Optimize, NelderMeadBackendWorks) {
  util::Rng rng(21);
  const Graph g = graph::erdos_renyi(8, 0.4, rng);
  QaoaOptions opts;
  opts.layers = 2;
  opts.optimizer = OptimizerKind::kNelderMead;
  opts.max_iterations = 150;
  const QaoaResult r = solve_qaoa(g, opts);
  EXPECT_GT(r.expectation, g.total_weight() / 2.0);
}

TEST(Optimize, RandomInitBackendWorks) {
  util::Rng rng(23);
  const Graph g = graph::erdos_renyi(8, 0.4, rng);
  QaoaOptions opts;
  opts.layers = 2;
  opts.init = InitKind::kRandom;
  opts.seed = 5;
  const QaoaResult r = solve_qaoa(g, opts);
  EXPECT_GT(r.expectation, 0.0);
}

TEST(Optimize, InputValidation) {
  const Graph g = graph::cycle_graph(4);
  QaoaOptions opts;
  opts.layers = 0;
  EXPECT_THROW(solve_qaoa(g, opts), std::invalid_argument);
  opts = QaoaOptions{};
  opts.top_k = 0;
  EXPECT_THROW(solve_qaoa(g, opts), std::invalid_argument);
}

// ----------------------------------------------- batched restarts ----

TEST(Restarts, BatchedMatchesSequentialReplayExactly) {
  // The lockstep-batched path promises each restart's trajectory is
  // bit-for-bit the one a restarts=1 run from the same start produces, and
  // that the best expectation wins. Replay every restart sequentially and
  // demand EXACT equality (not near-equality) of the winner.
  util::Rng rng(31);
  const Graph g = graph::erdos_renyi(8, 0.4, rng);
  const QaoaSolver solver(g);
  QaoaOptions opts;
  opts.layers = 2;
  opts.seed = 9;
  opts.restarts = 4;
  opts.lockstep_min_qubits = 0;  // force lockstep below the size crossover
  const QaoaResult batched = solver.optimize(opts);

  QaoaResult best;
  int total_evaluations = 0;
  for (int r = 0; r < opts.restarts; ++r) {
    QaoaOptions single = opts;
    single.restarts = 1;
    single.initial_parameters = restart_initial_parameters(opts, r);
    const QaoaResult res = solver.optimize(single);
    total_evaluations += res.evaluations;
    if (r == 0 || res.expectation > best.expectation) best = res;
  }

  EXPECT_EQ(batched.parameters, best.parameters);
  EXPECT_EQ(batched.expectation, best.expectation);
  EXPECT_EQ(batched.cut.assignment, best.cut.assignment);
  EXPECT_EQ(batched.cut.value, best.cut.value);
  EXPECT_EQ(batched.best_sampled_value, best.best_sampled_value);
  EXPECT_EQ(batched.evaluations, total_evaluations);
}

TEST(Restarts, SizeThresholdFallbackIsBitIdentical) {
  // Below lockstep_min_qubits optimize() silently runs the sequential
  // replay; the caller must not be able to tell apart from forced lockstep.
  util::Rng rng(53);
  const Graph g = graph::erdos_renyi(8, 0.4, rng);
  const QaoaSolver solver(g);
  QaoaOptions opts;
  opts.layers = 2;
  opts.seed = 11;
  opts.restarts = 3;
  ASSERT_LT(static_cast<int>(g.num_nodes()), opts.lockstep_min_qubits);
  const QaoaResult seq = solver.optimize(opts);
  opts.lockstep_min_qubits = 0;
  const QaoaResult lock = solver.optimize(opts);
  EXPECT_EQ(seq.parameters, lock.parameters);
  EXPECT_EQ(seq.expectation, lock.expectation);
  EXPECT_EQ(seq.evaluations, lock.evaluations);
  EXPECT_EQ(seq.cut.assignment, lock.cut.assignment);
}

TEST(Restarts, NelderMeadBackendMatchesSequentialReplay) {
  util::Rng rng(37);
  const Graph g = graph::erdos_renyi(7, 0.45, rng);
  const QaoaSolver solver(g);
  QaoaOptions opts;
  opts.layers = 2;
  opts.seed = 4;
  opts.restarts = 3;
  opts.lockstep_min_qubits = 0;
  opts.optimizer = OptimizerKind::kNelderMead;
  opts.max_iterations = 80;
  const QaoaResult batched = solver.optimize(opts);

  QaoaResult best;
  for (int r = 0; r < opts.restarts; ++r) {
    QaoaOptions single = opts;
    single.restarts = 1;
    single.initial_parameters = restart_initial_parameters(opts, r);
    const QaoaResult res = solver.optimize(single);
    if (r == 0 || res.expectation > best.expectation) best = res;
  }
  EXPECT_EQ(batched.parameters, best.parameters);
  EXPECT_EQ(batched.expectation, best.expectation);
}

TEST(Restarts, NeverWorseThanSingleRun) {
  util::Rng rng(41);
  const Graph g = graph::erdos_renyi(9, 0.35, rng);
  const QaoaSolver solver(g);
  QaoaOptions opts;
  opts.layers = 2;
  opts.seed = 6;
  const QaoaResult single = solver.optimize(opts);
  opts.restarts = 5;
  const QaoaResult multi = solver.optimize(opts);
  // Restart 0 IS the single run, so the max over restarts can only improve.
  EXPECT_GE(multi.expectation, single.expectation);
}

TEST(Restarts, ShotBasedFallbackMatchesSequentialLoop) {
  util::Rng rng(43);
  const Graph g = graph::erdos_renyi(7, 0.4, rng);
  const QaoaSolver solver(g);
  QaoaOptions opts;
  opts.layers = 2;
  opts.seed = 8;
  opts.shots = 256;
  opts.shot_based_objective = true;
  opts.restarts = 3;
  const QaoaResult multi = solver.optimize(opts);

  QaoaResult best;
  for (int r = 0; r < opts.restarts; ++r) {
    QaoaOptions single = opts;
    single.restarts = 1;
    single.initial_parameters = restart_initial_parameters(opts, r);
    const QaoaResult res = solver.optimize(single);
    if (r == 0 || res.expectation > best.expectation) best = res;
  }
  EXPECT_EQ(multi.parameters, best.parameters);
  EXPECT_EQ(multi.expectation, best.expectation);
}

TEST(Restarts, InitialParametersAreDeterministicAndDiverse) {
  QaoaOptions opts;
  opts.layers = 3;
  opts.seed = 12;
  // Restart 0 reproduces the single-run start (the linear ramp here).
  const std::vector<double> r0 = restart_initial_parameters(opts, 0);
  ASSERT_EQ(r0.size(), std::size_t{6});
  for (int l = 0; l < 3; ++l) {
    const double t = (l + 0.5) / 3.0;
    EXPECT_DOUBLE_EQ(r0[l], 0.7 * t);
    EXPECT_DOUBLE_EQ(r0[3 + l], 0.7 * (1.0 - t));
  }
  // An explicit override wins for restart 0 only.
  QaoaOptions warm = opts;
  warm.initial_parameters = {0.1, 0.2, 0.3, 0.4, 0.5, 0.6};
  EXPECT_EQ(restart_initial_parameters(warm, 0), warm.initial_parameters);
  EXPECT_NE(restart_initial_parameters(warm, 1), warm.initial_parameters);
  // Fixed (seed, restart) is reproducible; distinct restarts differ.
  EXPECT_EQ(restart_initial_parameters(opts, 2),
            restart_initial_parameters(opts, 2));
  EXPECT_NE(restart_initial_parameters(opts, 1),
            restart_initial_parameters(opts, 2));
  EXPECT_THROW(restart_initial_parameters(opts, -1), std::invalid_argument);
}

TEST(Restarts, InputValidation) {
  const Graph g = graph::cycle_graph(4);
  QaoaOptions opts;
  opts.restarts = 0;
  EXPECT_THROW(solve_qaoa(g, opts), std::invalid_argument);
}

TEST(CostTable, BuiltOncePerBatchedSolve) {
  util::Rng rng(47);
  const Graph g = graph::erdos_renyi(7, 0.4, rng);
  QaoaOptions opts;
  opts.layers = 2;
  opts.seed = 2;
  opts.restarts = 8;
  opts.lockstep_min_qubits = 0;
  const std::uint64_t before = cut_table_builds();
  solve_qaoa(g, opts);
  // One QaoaSolver construction = one table build shared by all 8 lockstep
  // restarts; the per-iteration objective and the final extraction reuse it.
  EXPECT_EQ(cut_table_builds() - before, 1u);
}

TEST(Schedule, PaperIterationEndpoints) {
  EXPECT_EQ(paper_iteration_schedule(3), 30);
  EXPECT_EQ(paper_iteration_schedule(4), 44);
  EXPECT_EQ(paper_iteration_schedule(8), 100);
  EXPECT_EQ(paper_iteration_schedule(1), 30);   // clamped below
  EXPECT_EQ(paper_iteration_schedule(20), 100); // clamped above
}

TEST(Optimize, MoreLayersHelpOnAverageForRing) {
  // p -> infinity is exact (paper section 3.2); at least p=4 should beat
  // p=1 on an odd ring where p=1 is provably suboptimal.
  const Graph g = graph::cycle_graph(7);
  const QaoaSolver solver(g);
  QaoaOptions p1;
  p1.layers = 1;
  p1.max_iterations = 200;
  QaoaOptions p4 = p1;
  p4.layers = 4;
  p4.max_iterations = 400;
  EXPECT_GT(solver.optimize(p4).expectation,
            solver.optimize(p1).expectation - 1e-9);
}

// ------------------------------------------------------------------ RQAOA ----

TEST(Rqaoa, ExactOnSmallTrees) {
  // Trees are bipartite: the optimum cuts every edge; RQAOA's greedy
  // correlation elimination recovers it.
  const Graph g = graph::path_graph(10);
  RqaoaOptions opts;
  opts.qaoa.layers = 2;
  opts.qaoa.max_iterations = 80;
  opts.cutoff = 4;
  const RqaoaResult r = solve_rqaoa(g, opts);
  EXPECT_DOUBLE_EQ(r.cut.value, 9.0);
  EXPECT_GT(r.rounds, 0);
}

TEST(Rqaoa, CompetitiveOnRandomGraphs) {
  util::Rng rng(25);
  const Graph g = graph::erdos_renyi(12, 0.3, rng);
  const double exact = maxcut::solve_exact(g).value;
  RqaoaOptions opts;
  opts.qaoa.layers = 2;
  opts.qaoa.max_iterations = 60;
  opts.cutoff = 6;
  const RqaoaResult r = solve_rqaoa(g, opts);
  EXPECT_NEAR(maxcut::cut_value(g, r.cut.assignment), r.cut.value, 1e-9);
  EXPECT_GE(r.cut.value, 0.85 * exact);
  EXPECT_LE(r.cut.value, exact + 1e-9);
}

TEST(Rqaoa, SmallGraphSolvedDirectly) {
  const Graph g = graph::cycle_graph(4);
  RqaoaOptions opts;
  opts.cutoff = 8;  // larger than the graph: no elimination rounds
  const RqaoaResult r = solve_rqaoa(g, opts);
  EXPECT_EQ(r.rounds, 0);
  EXPECT_DOUBLE_EQ(r.cut.value, 4.0);
}

TEST(Rqaoa, AllNegativeWeightsSettleOnZeroCut) {
  // All-negative weights: every cut has value <= 0 and the optimum cuts
  // nothing. The per-round elimination tracks the best |correlation| with
  // a -infinity seed (the finite `-1.0` sentinel family), so the first
  // edge always wins on its own merits; the exact finish plus constraint
  // propagation must then land on the empty cut.
  Graph g(8);
  for (NodeId u = 0; u < 8; ++u) {
    g.add_edge(u, (u + 1) % 8, -1.5);
  }
  RqaoaOptions opts;
  opts.qaoa.layers = 1;
  opts.qaoa.max_iterations = 40;
  opts.cutoff = 4;
  const RqaoaResult r = solve_rqaoa(g, opts);
  EXPECT_GT(r.rounds, 0);
  EXPECT_NEAR(maxcut::cut_value(g, r.cut.assignment), r.cut.value, 1e-9);
  EXPECT_DOUBLE_EQ(r.cut.value, 0.0);
}

TEST(Rqaoa, CutoffValidation) {
  RqaoaOptions opts;
  opts.cutoff = 1;
  EXPECT_THROW(solve_rqaoa(graph::cycle_graph(4), opts),
               std::invalid_argument);
}

}  // namespace
}  // namespace qq::qaoa
