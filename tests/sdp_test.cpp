// Tests for the MaxCut SDP (mixing method) and Goemans-Williamson rounding.

#include <gtest/gtest.h>

#include <cmath>

#include "maxcut/cut.hpp"
#include "maxcut/exact.hpp"
#include "qgraph/generators.hpp"
#include "sdp/gw.hpp"
#include "sdp/mixing_method.hpp"
#include "util/rng.hpp"

namespace qq::sdp {
namespace {

using graph::Graph;

// --------------------------------------------------------- mixing method ----

TEST(MixingMethod, ProducesUnitVectors) {
  util::Rng rng(1);
  const Graph g = graph::erdos_renyi(20, 0.3, rng);
  const MixingResult r = solve_maxcut_sdp(g);
  ASSERT_EQ(r.vectors.size(),
            static_cast<std::size_t>(g.num_nodes()) *
                static_cast<std::size_t>(r.rank));
  for (graph::NodeId u = 0; u < g.num_nodes(); ++u) {
    double norm2 = 0.0;
    for (int c = 0; c < r.rank; ++c) {
      const double v = r.vectors[static_cast<std::size_t>(u) *
                                     static_cast<std::size_t>(r.rank) +
                                 static_cast<std::size_t>(c)];
      norm2 += v * v;
    }
    EXPECT_NEAR(norm2, 1.0, 1e-9) << "node " << u;
  }
}

TEST(MixingMethod, ObjectiveUpperBoundsExactCut) {
  // The SDP is a relaxation: its optimum dominates the best cut.
  for (const std::uint64_t seed : {2ULL, 3ULL, 4ULL}) {
    util::Rng rng(seed);
    const Graph g =
        graph::erdos_renyi(14, 0.35, rng, graph::WeightMode::kUniform01);
    const double exact = maxcut::solve_exact(g).value;
    const MixingResult r = solve_maxcut_sdp(g);
    EXPECT_GE(r.objective, exact - 1e-6) << "seed " << seed;
  }
}

TEST(MixingMethod, ConvergesOnModerateGraphs) {
  util::Rng rng(5);
  const Graph g = graph::erdos_renyi(40, 0.2, rng);
  const MixingResult r = solve_maxcut_sdp(g);
  EXPECT_TRUE(r.converged);
  EXPECT_GT(r.sweeps, 0);
}

TEST(MixingMethod, KnownOptimumOnSingleEdge) {
  // For one edge the SDP optimum equals the cut: antipodal vectors, value w.
  Graph g(2);
  g.add_edge(0, 1, 2.5);
  const MixingResult r = solve_maxcut_sdp(g);
  EXPECT_NEAR(r.objective, 2.5, 1e-6);
}

TEST(MixingMethod, BipartiteSdpValueEqualsTotalWeight) {
  // Bipartite graphs: optimal cut = W, and the SDP is tight.
  const Graph g = graph::grid_2d(3, 3);
  const MixingResult r = solve_maxcut_sdp(g);
  EXPECT_NEAR(r.objective, static_cast<double>(g.num_edges()), 1e-4);
}

TEST(MixingMethod, EmptyAndEdgelessGraphs) {
  EXPECT_NEAR(solve_maxcut_sdp(Graph(0)).objective, 0.0, 1e-12);
  EXPECT_NEAR(solve_maxcut_sdp(Graph(5)).objective, 0.0, 1e-12);
}

TEST(MixingMethod, DeterministicPerSeed) {
  util::Rng rng(7);
  const Graph g = graph::erdos_renyi(16, 0.3, rng);
  MixingOptions opts;
  opts.seed = 99;
  const MixingResult a = solve_maxcut_sdp(g, opts);
  const MixingResult b = solve_maxcut_sdp(g, opts);
  EXPECT_EQ(a.vectors, b.vectors);
  EXPECT_DOUBLE_EQ(a.objective, b.objective);
}

TEST(MixingMethod, ObjectiveHelperValidates) {
  const Graph g = graph::cycle_graph(3);
  EXPECT_THROW(sdp_objective(g, {1.0, 2.0}, 2), std::invalid_argument);
  EXPECT_THROW(sdp_objective(g, {}, 0), std::invalid_argument);
}

// ------------------------------------------------------------------- GW ----

TEST(Gw, ApproximationRatioOnRandomGraphs) {
  // Best slicing must reach at least the 0.878 guarantee (with margin for
  // the stochastic rounding, it practically lands much higher on n=14).
  for (const std::uint64_t seed : {11ULL, 12ULL, 13ULL, 14ULL}) {
    util::Rng rng(seed);
    const Graph g =
        graph::erdos_renyi(14, 0.4, rng, graph::WeightMode::kUniform01);
    if (g.num_edges() == 0) continue;
    const double exact = maxcut::solve_exact(g).value;
    GwOptions opts;
    opts.seed = seed;
    const GwResult r = goemans_williamson(g, opts);
    EXPECT_GE(r.best.value, 0.878 * exact - 1e-9) << "seed " << seed;
    EXPECT_LE(r.best.value, exact + 1e-9);
  }
}

TEST(Gw, BipartiteGraphsSolvedEssentiallyExactly) {
  const Graph g = graph::grid_2d(4, 4);
  const GwResult r = goemans_williamson(g);
  EXPECT_NEAR(r.best.value, static_cast<double>(g.num_edges()), 1e-9);
}

TEST(Gw, AverageNeverExceedsBest) {
  util::Rng rng(15);
  const Graph g = graph::erdos_renyi(20, 0.3, rng);
  const GwResult r = goemans_williamson(g);
  EXPECT_LE(r.average_value, r.best.value + 1e-12);
  EXPECT_GT(r.average_value, 0.0);
}

TEST(Gw, BestAssignmentAchievesReportedValue) {
  util::Rng rng(17);
  const Graph g =
      graph::erdos_renyi(18, 0.25, rng, graph::WeightMode::kUniform01);
  const GwResult r = goemans_williamson(g);
  EXPECT_NEAR(maxcut::cut_value(g, r.best.assignment), r.best.value, 1e-9);
}

TEST(Gw, SdpBoundDominatesRoundedCuts) {
  util::Rng rng(19);
  const Graph g = graph::erdos_renyi(22, 0.25, rng);
  const GwResult r = goemans_williamson(g);
  EXPECT_GE(r.sdp_bound, r.best.value - 1e-6);
}

TEST(Gw, DeterministicPerSeed) {
  util::Rng rng(21);
  const Graph g = graph::erdos_renyi(16, 0.3, rng);
  GwOptions opts;
  opts.seed = 5;
  const GwResult a = goemans_williamson(g, opts);
  const GwResult b = goemans_williamson(g, opts);
  EXPECT_DOUBLE_EQ(a.best.value, b.best.value);
  EXPECT_DOUBLE_EQ(a.average_value, b.average_value);
  EXPECT_EQ(a.best.assignment, b.best.assignment);
}

TEST(Gw, SlicingCountValidation) {
  GwOptions opts;
  opts.slicings = 0;
  EXPECT_THROW(goemans_williamson(graph::cycle_graph(4), opts),
               std::invalid_argument);
}

TEST(Gw, HandlesNegativeWeights) {
  // Merge graphs in QAOA^2 carry negative weights; GW must stay usable.
  Graph g(4);
  g.add_edge(0, 1, -1.0);
  g.add_edge(1, 2, 2.0);
  g.add_edge(2, 3, -0.5);
  g.add_edge(3, 0, 1.5);
  const GwResult r = goemans_williamson(g);
  const double exact = maxcut::solve_exact(g).value;
  EXPECT_LE(r.best.value, exact + 1e-9);
  // Mixing-method SDP remains an upper bound even with mixed signs.
  EXPECT_GE(r.sdp_bound, exact - 1e-6);
}

class GwSlicings : public ::testing::TestWithParam<int> {};

TEST_P(GwSlicings, MoreSlicingsNeverLowerTheBest) {
  util::Rng rng(23);
  const Graph g = graph::erdos_renyi(18, 0.3, rng);
  GwOptions few;
  few.slicings = GetParam();
  few.seed = 3;
  GwOptions many = few;
  many.slicings = GetParam() * 4;
  // Same seed: the first `few` hyperplanes coincide, so best is monotone.
  const GwResult a = goemans_williamson(g, few);
  const GwResult b = goemans_williamson(g, many);
  EXPECT_GE(b.best.value, a.best.value - 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Counts, GwSlicings, ::testing::Values(1, 5, 10));

}  // namespace
}  // namespace qq::sdp
