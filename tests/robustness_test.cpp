// Robustness and failure-injection suite: edge cases, error propagation,
// and degenerate inputs across modules — the situations a downstream user
// hits first.

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>

#include "maxcut/exact.hpp"
#include "qaoa/qaoa.hpp"
#include "qaoa2/qaoa2.hpp"
#include "qgraph/generators.hpp"
#include "qsim/measure.hpp"
#include "qsim/statevector.hpp"
#include "sched/engine.hpp"
#include "sdp/gw.hpp"
#include "test_graphs.hpp"
#include "util/rng.hpp"

namespace qq {
namespace {

// ------------------------------------------------- failing tasks (Fig 2) ----

TEST(EngineFailure, ThrowingTaskIsReportedAfterBatchDrains) {
  sched::WorkflowEngine engine(sched::EngineOptions{2, 2});
  std::atomic<int> completed{0};
  std::vector<sched::Task> tasks;
  for (int i = 0; i < 12; ++i) {
    if (i == 5) {
      tasks.push_back({sched::ResourceKind::kQuantum, [] {
                         throw std::runtime_error("device lost");
                       }});
    } else {
      tasks.push_back(
          {sched::ResourceKind::kClassical, [&completed] { completed++; }});
    }
  }
  EXPECT_THROW(engine.run_batch(std::move(tasks)), std::runtime_error);
  // Every sibling task still ran to completion before the rethrow.
  EXPECT_EQ(completed.load(), 11);
}

TEST(EngineFailure, FailedTaskReleasesItsSlot) {
  // With a single quantum slot, a throwing task must not wedge the gate.
  sched::WorkflowEngine engine(sched::EngineOptions{1, 1});
  std::atomic<int> quantum_ran{0};
  std::vector<sched::Task> tasks;
  tasks.push_back({sched::ResourceKind::kQuantum,
                   [] { throw std::logic_error("boom"); }});
  for (int i = 0; i < 4; ++i) {
    tasks.push_back(
        {sched::ResourceKind::kQuantum, [&quantum_ran] { quantum_ran++; }});
  }
  EXPECT_THROW(engine.run_batch(std::move(tasks)), std::logic_error);
  EXPECT_EQ(quantum_ran.load(), 4);
}

// ------------------------------------------------------ degenerate inputs ----

TEST(Degenerate, ZeroQubitStateVector) {
  sim::StateVector sv(0);
  EXPECT_EQ(sv.size(), 1u);
  EXPECT_NEAR(sv.norm_squared(), 1.0, 1e-15);
  EXPECT_EQ(sim::argmax_probability(sv), 0u);
}

TEST(Degenerate, GatesOnHighestQubitIndex) {
  // The top qubit exercises the widest-stride code paths.
  const int n = 16;
  sim::StateVector sv(n);
  sv.apply_h(n - 1);
  sv.apply_rz(n - 1, 0.7);
  sv.apply_cx(n - 1, 0);
  sv.apply_rzz(0, n - 1, 0.3);
  EXPECT_NEAR(sv.norm_squared(), 1.0, 1e-10);
  // H on the top qubit from |0...0> puts half the mass at index 2^(n-1).
  sim::StateVector fresh(n);
  fresh.apply_h(n - 1);
  EXPECT_NEAR(std::norm(fresh.amplitude(std::size_t{1} << (n - 1))), 0.5,
              1e-12);
}

TEST(Degenerate, QaoaOnEdgelessGraph) {
  const graph::Graph g(5);  // no edges: every cut is 0
  qaoa::QaoaOptions opts;
  opts.layers = 2;
  opts.max_iterations = 20;
  const auto r = qaoa::solve_qaoa(g, opts);
  EXPECT_DOUBLE_EQ(r.cut.value, 0.0);
  EXPECT_DOUBLE_EQ(r.expectation, 0.0);
}

TEST(Degenerate, QaoaOnSingleEdgeWeightedGraph) {
  graph::Graph g(2);
  g.add_edge(0, 1, 2.5);
  qaoa::QaoaOptions opts;
  opts.layers = 2;
  opts.max_iterations = 200;
  const auto r = qaoa::solve_qaoa(g, opts);
  EXPECT_DOUBLE_EQ(r.cut.value, 2.5);
}

TEST(Degenerate, Qaoa2OnDisconnectedGraph) {
  // Components solved independently; union must be consistent. Three
  // disjoint 8-node ER blobs (shared fixture, tests/test_graphs.hpp).
  const graph::Graph g = testing::disjoint_blobs_fixture();
  qaoa2::Qaoa2Options opts;
  opts.max_qubits = 6;
  opts.sub_solver = qaoa2::SubSolver::kExact;
  opts.merge_solver = qaoa2::SubSolver::kExact;
  const auto r = qaoa2::solve_qaoa2(g, opts);
  EXPECT_NEAR(maxcut::cut_value(g, r.cut.assignment), r.cut.value, 1e-9);
  EXPECT_GT(r.cut.value, 0.0);
}

TEST(Degenerate, Qaoa2OnNegativeWeightGraph) {
  // Fully negative weights: the optimum is the empty cut (value 0).
  const graph::Graph g = testing::negative_weight_fixture();
  qaoa2::Qaoa2Options opts;
  opts.max_qubits = 6;
  opts.sub_solver = qaoa2::SubSolver::kExact;
  opts.merge_solver = qaoa2::SubSolver::kExact;
  const auto r = qaoa2::solve_qaoa2(g, opts);
  EXPECT_NEAR(r.cut.value, 0.0, 1e-9);
}

TEST(Degenerate, Qaoa2WeightedPipeline) {
  util::Rng rng(7);
  const auto g = graph::erdos_renyi(30, 0.2, rng,
                                    graph::WeightMode::kUniform01);
  qaoa2::Qaoa2Options opts;
  opts.max_qubits = 8;
  opts.sub_solver = qaoa2::SubSolver::kBest;
  opts.qaoa.layers = 2;
  opts.qaoa.max_iterations = 30;
  opts.merge_solver = qaoa2::SubSolver::kExact;
  const auto r = qaoa2::solve_qaoa2(g, opts);
  EXPECT_NEAR(maxcut::cut_value(g, r.cut.assignment), r.cut.value, 1e-9);
  EXPECT_GE(r.cut.value, g.total_weight() / 2.0 * 0.8);
}

TEST(Degenerate, GwOnTinyGraphs) {
  graph::Graph two(2);
  two.add_edge(0, 1, 3.0);
  EXPECT_NEAR(sdp::goemans_williamson(two).best.value, 3.0, 1e-9);
  EXPECT_NEAR(sdp::goemans_williamson(graph::Graph(1)).best.value, 0.0, 1e-9);
  EXPECT_NEAR(sdp::goemans_williamson(graph::Graph(0)).best.value, 0.0, 1e-9);
}

TEST(Degenerate, GraphValueSemantics) {
  util::Rng rng(9);
  const auto g = graph::erdos_renyi(20, 0.3, rng);
  graph::Graph copy = g;  // deep copy
  copy.add_edge(0, 1, 100.0);
  EXPECT_NE(copy.total_weight(), g.total_weight());
  graph::Graph moved = std::move(copy);
  EXPECT_GT(moved.total_weight(), g.total_weight());
}

TEST(Degenerate, ExactSolverSingleEdgeAndTriangle) {
  graph::Graph edge(2);
  edge.add_edge(0, 1, 1.0);
  EXPECT_DOUBLE_EQ(maxcut::solve_exact(edge).value, 1.0);
  EXPECT_DOUBLE_EQ(maxcut::solve_exact(graph::cycle_graph(3)).value, 2.0);
}

TEST(Degenerate, SamplingFromConcentratedState) {
  sim::StateVector sv(5);  // |00000> exactly
  util::Rng rng(11);
  const auto shots = sim::sample_counts(sv, 1000, rng);
  for (const auto s : shots) EXPECT_EQ(s, 0u);
}

TEST(Degenerate, RngStreamSurvivesHeavyUse) {
  util::Rng rng(13);
  double sum = 0.0;
  for (int i = 0; i < 1000000; ++i) sum += util::uniform(rng);
  EXPECT_NEAR(sum / 1e6, 0.5, 0.005);
}

}  // namespace
}  // namespace qq
