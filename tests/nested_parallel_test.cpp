// Regression suite for the QAOA^2 serialization bug (ISSUE 3): a QAOA
// sub-solve dispatched through WorkflowEngine runs ON a pool worker, and
// the old chunk planner collapsed every nested parallel_for/parallel_reduce
// to one serial chunk whenever inside_worker() was true — so the PR-2
// pair-indexed and fused-mixer kernels ran single-threaded exactly when
// QAOA^2 used them.
//
// This binary supplies its own main() so it can pin QQ_THREADS=4 BEFORE the
// global pool (which the state-vector kernels run on) is first touched;
// ctest registers it like any other gtest binary.

#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "qaoa/qaoa.hpp"
#include "qaoa2/qaoa2.hpp"
#include "qgraph/generators.hpp"
#include "qsim/kernel_detail.hpp"
#include "qsim/measure.hpp"
#include "sched/engine.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace qq {
namespace {

// 2^16 amplitudes at kParallelGrain = 2^14 -> 4 planned chunks per kernel
// sweep: big enough that every kernel splits, small enough to stay fast.
constexpr int kQubits = 16;

graph::Graph test_graph() {
  util::Rng rng(99);
  return graph::erdos_renyi(kQubits, 0.25, rng);
}

circuit::QaoaAngles test_angles() {
  circuit::QaoaAngles angles;
  angles.gammas = {0.37, 0.22};
  angles.betas = {0.61, 0.18};
  return angles;
}

TEST(NestedParallel, GlobalPoolIsMultiThreaded) {
  // main() pins QQ_THREADS=4; if this fails the rest of the suite is
  // measuring nothing.
  ASSERT_EQ(util::ThreadPool::global().size(), 4u);
}

TEST(NestedParallel, EngineSubSolveSplitsNestedKernels) {
  const graph::Graph g = test_graph();
  const qaoa::QaoaSolver solver(g);
  const circuit::QaoaAngles angles = test_angles();

  // One engine task evaluating <H_C>: state preparation (diagonal sweep +
  // fused mixer) and the expectation reduction all nest inside a pool
  // worker. Count the chunk tasks the pool executes while it runs.
  sched::WorkflowEngine engine(sched::EngineOptions{1, 1});
  double through_engine = 0.0;
  const std::uint64_t chunks_before = util::ThreadPool::chunk_tasks_executed();
  std::vector<sched::Task> tasks;
  tasks.push_back({sched::ResourceKind::kQuantum, [&] {
                     through_engine = solver.expectation(angles);
                   }});
  engine.run_batch(std::move(tasks));
  const std::uint64_t chunks_after = util::ThreadPool::chunk_tasks_executed();

  // The state vector has 2^16 amplitudes and the sweeps plan >= 4 chunks
  // each; with the old inside_worker() cliff this delta was ZERO.
  const std::uint64_t delta = chunks_after - chunks_before;
  EXPECT_GE(delta, 4u) << "nested kernels did not split inside the engine";

  // Determinism pin: the chunk plan ignores pool size and nesting, so the
  // nested result must equal the top-level one bit for bit — which in turn
  // equals the single-thread (QQ_THREADS=1) result by the same invariance.
  const double direct = solver.expectation(angles);
  EXPECT_EQ(through_engine, direct);
}

TEST(NestedParallel, EngineQaoaOptimizeMatchesDirectBitForBit) {
  const graph::Graph g = test_graph();
  qaoa::QaoaOptions opts;
  opts.layers = 2;
  opts.max_iterations = 8;
  opts.shots = 128;
  opts.seed = 7;

  qaoa::QaoaResult through_engine;
  sched::WorkflowEngine engine(sched::EngineOptions{2, 2});
  std::vector<sched::Task> tasks;
  tasks.push_back({sched::ResourceKind::kQuantum, [&] {
                     through_engine = qaoa::solve_qaoa(g, opts);
                   }});
  engine.run_batch(std::move(tasks));

  const qaoa::QaoaResult direct = qaoa::solve_qaoa(g, opts);
  // The full hybrid loop — COBYLA trajectory, sampling, extraction — must
  // be unaffected by running nested on the pool.
  EXPECT_EQ(through_engine.expectation, direct.expectation);
  EXPECT_EQ(through_engine.cut.value, direct.cut.value);
  EXPECT_EQ(through_engine.best_sampled_value, direct.best_sampled_value);
  EXPECT_EQ(through_engine.evaluations, direct.evaluations);
  ASSERT_EQ(through_engine.parameters.size(), direct.parameters.size());
  for (std::size_t i = 0; i < direct.parameters.size(); ++i) {
    EXPECT_EQ(through_engine.parameters[i], direct.parameters[i]);
  }
  EXPECT_EQ(through_engine.cut.assignment, direct.cut.assignment);
}

TEST(NestedParallel, StreamingQaoa2MatchesRecursiveWithNestedKernels) {
  // Full QAOA^2 with QAOA sub-solves on the pinned 4-thread pool: the
  // streaming pipeline interleaves components and levels arbitrarily and
  // nests every state-vector kernel inside engine tasks, yet the cut must
  // equal the level-barrier recursive pipeline's bit for bit.
  util::Rng rng(101);
  graph::Graph g(40);
  // Two components of different depth-to-solve (24 + 16 nodes).
  const graph::Graph a = graph::erdos_renyi(24, 0.2, rng);
  for (const graph::Edge& e : a.edges()) g.add_edge(e.u, e.v, e.w);
  const graph::Graph b = graph::erdos_renyi(16, 0.3, rng);
  for (const graph::Edge& e : b.edges()) g.add_edge(e.u + 24, e.v + 24, e.w);

  qaoa2::Qaoa2Options opts;
  opts.max_qubits = 6;
  opts.sub_solver = qaoa2::SubSolver::kQaoa;
  opts.qaoa.layers = 2;
  opts.qaoa.max_iterations = 12;
  opts.qaoa.shots = 128;
  opts.merge_solver = qaoa2::SubSolver::kGw;
  opts.seed = 57;
  opts.engine = sched::EngineOptions{2, 2};

  opts.streaming = false;
  const qaoa2::Qaoa2Result recursive = qaoa2::solve_qaoa2(g, opts);
  opts.streaming = true;
  const qaoa2::Qaoa2Result streaming = qaoa2::solve_qaoa2(g, opts);

  EXPECT_EQ(streaming.cut.value, recursive.cut.value);
  EXPECT_EQ(streaming.cut.assignment, recursive.cut.assignment);
  EXPECT_EQ(streaming.components, 2);
  EXPECT_EQ(streaming.subgraphs_total, recursive.subgraphs_total);
  EXPECT_GT(streaming.engine_tasks, streaming.subgraphs_total)
      << "partition/merge stages should run as engine tasks";
}

TEST(NestedParallel, SampleStreamIdenticalUnderNesting) {
  // The sample_counts CDF is built over plan_chunks boundaries; since the
  // plan ignores nesting, the shot stream at a fixed seed is identical
  // whether drawn on the main thread or inside an engine task.
  const graph::Graph g = test_graph();
  const qaoa::QaoaSolver solver(g);
  const sim::StateVector sv = solver.state(test_angles());

  util::Rng rng_direct(1234);
  const auto direct = sim::sample_counts(sv, 64, rng_direct);

  std::vector<sim::BasisState> nested;
  sched::WorkflowEngine engine(sched::EngineOptions{1, 1});
  std::vector<sched::Task> tasks;
  tasks.push_back({sched::ResourceKind::kQuantum, [&] {
                     util::Rng rng_nested(1234);
                     nested = sim::sample_counts(sv, 64, rng_nested);
                   }});
  engine.run_batch(std::move(tasks));
  EXPECT_EQ(nested, direct);
}

}  // namespace
}  // namespace qq

int main(int argc, char** argv) {
  // Before ANY use of the global pool: the kernels must see a multi-thread
  // pool for the nested-splitting assertions to be meaningful.
  setenv("QQ_THREADS", "4", /*overwrite=*/1);
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
