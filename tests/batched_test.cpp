// BatchedStateVector parity: every lane of a batched evaluation must be
// BIT-FOR-BIT identical to an independent flat StateVector run with that
// lane's angles — the contract that lets QaoaSolver's lockstep restarts
// replay sequential trajectories exactly. Checked for B in {1, 3, 8} under
// every SIMD backend the machine supports, plus a multi-chunk size so the
// deterministic reduction plan is exercised across chunk seams.

#include <gtest/gtest.h>

#include <cstring>
#include <stdexcept>
#include <utility>
#include <vector>

#include "qsim/batched.hpp"
#include "qsim/measure.hpp"
#include "qsim/simd.hpp"
#include "qsim/statevector.hpp"
#include "util/rng.hpp"

namespace qq::sim {
namespace {

class IsaGuard {
 public:
  IsaGuard() : saved_(simd::active_isa()) {}
  ~IsaGuard() { simd::set_isa(saved_); }
  IsaGuard(const IsaGuard&) = delete;
  IsaGuard& operator=(const IsaGuard&) = delete;

 private:
  simd::Isa saved_;
};

std::vector<simd::Isa> available_isas() {
  IsaGuard guard;
  std::vector<simd::Isa> isas{simd::Isa::kScalar};
  for (const simd::Isa isa : {simd::Isa::kAvx2, simd::Isa::kAvx512}) {
    if (simd::set_isa(isa) == isa) isas.push_back(isa);
  }
  return isas;
}

struct Angles {
  std::vector<double> scales;  ///< per-lane gamma, one per layer entry
  std::vector<double> thetas;  ///< per-lane mixer angle
};

/// Deterministic per-lane angle sets, distinct across lanes and layers.
std::vector<Angles> make_layers(int batch, int layers, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<Angles> out(layers);
  for (Angles& layer : out) {
    layer.scales.resize(batch);
    layer.thetas.resize(batch);
    for (int b = 0; b < batch; ++b) {
      layer.scales[b] = util::uniform(rng, -1.5, 1.5);
      layer.thetas[b] = util::uniform(rng, -2.5, 2.5);
    }
  }
  return out;
}

std::vector<double> make_values(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<double> values(n);
  for (double& v : values) v = util::uniform(rng, -4.0, 4.0);
  return values;
}

class BatchedLaneParity
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(BatchedLaneParity, LanesMatchIndependentFlatRunsBitForBit) {
  const int n = GetParam().first;
  const int batch = GetParam().second;
  const int layers = 3;
  IsaGuard guard;

  const std::vector<double> values = make_values(std::size_t{1} << n, 11);
  const std::vector<Angles> circuit = make_layers(batch, layers, 77);

  for (const simd::Isa isa : available_isas()) {
    ASSERT_EQ(simd::set_isa(isa), isa);

    BatchedStateVector batched(n, batch);
    batched.reset_to_plus();
    for (const Angles& layer : circuit) {
      batched.apply_diagonal_phase(values, layer.scales);
      batched.apply_rx_layer(layer.thetas);
    }
    const std::vector<double> batched_exp =
        batched.expectation_diagonal(values);
    ASSERT_EQ(batched_exp.size(), static_cast<std::size_t>(batch));

    for (int b = 0; b < batch; ++b) {
      StateVector flat(n);
      flat.reset_to_plus();
      for (const Angles& layer : circuit) {
        flat.apply_diagonal_phase(values, layer.scales[b]);
        flat.apply_rx_layer(layer.thetas[b]);
      }
      const StateVector lane = batched.lane_state(b);
      ASSERT_EQ(lane.size(), flat.size());
      EXPECT_EQ(std::memcmp(lane.data().data(), flat.data().data(),
                            flat.size() * sizeof(Amplitude)),
                0)
          << "lane " << b << " diverged under " << simd::isa_name(isa);
      // Per-lane reduction must match the flat deterministic chunk fold.
      EXPECT_EQ(batched_exp[b], expectation_diagonal(flat, values))
          << "lane " << b << " expectation under " << simd::isa_name(isa);
      // Spot-check the direct amplitude accessor against the lane copy.
      const BasisState probe = (std::size_t{1} << n) - 1;
      EXPECT_EQ(batched.amplitude(b, probe), flat.data()[probe]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BatchedLaneParity,
    ::testing::Values(std::make_pair(1, 1), std::make_pair(1, 8),
                      std::make_pair(3, 3), std::make_pair(6, 1),
                      std::make_pair(6, 8), std::make_pair(10, 3),
                      std::make_pair(10, 8),
                      // 2^15 amplitudes = two reduction chunks: the per-lane
                      // partial fold must still match flat's chunk plan.
                      std::make_pair(15, 3)));

TEST(BatchedStateVector, ResetToPlusMatchesFlat) {
  IsaGuard guard;
  for (const simd::Isa isa : available_isas()) {
    ASSERT_EQ(simd::set_isa(isa), isa);
    BatchedStateVector batched(4, 3);
    batched.reset_to_plus();
    StateVector flat(4);
    flat.reset_to_plus();
    for (int b = 0; b < 3; ++b) {
      const StateVector lane = batched.lane_state(b);
      EXPECT_EQ(std::memcmp(lane.data().data(), flat.data().data(),
                            flat.size() * sizeof(Amplitude)),
                0)
          << simd::isa_name(isa);
    }
  }
}

TEST(BatchedStateVector, ConstructionStartsInZeroState) {
  BatchedStateVector batched(3, 2);
  for (int b = 0; b < 2; ++b) {
    EXPECT_EQ(batched.amplitude(b, 0), Amplitude(1.0, 0.0));
    for (BasisState s = 1; s < 8; ++s) {
      EXPECT_EQ(batched.amplitude(b, s), Amplitude(0.0, 0.0));
    }
  }
}

TEST(BatchedStateVector, ValidatesArguments) {
  EXPECT_THROW(BatchedStateVector(-1, 1), std::invalid_argument);
  EXPECT_THROW(BatchedStateVector(3, 0), std::invalid_argument);

  BatchedStateVector batched(3, 2);
  EXPECT_THROW(batched.apply_rx_layer({0.1}), std::invalid_argument);
  EXPECT_THROW(batched.apply_diagonal_phase(std::vector<double>(8, 0.0),
                                            {0.1, 0.2, 0.3}),
               std::invalid_argument);
  EXPECT_THROW(
      batched.apply_diagonal_phase(std::vector<double>(4, 0.0), {0.1, 0.2}),
      std::invalid_argument);
  EXPECT_THROW(batched.lane_state(2), std::out_of_range);
  EXPECT_THROW(batched.lane_state(-1), std::out_of_range);
  EXPECT_THROW(batched.amplitude(0, 8), std::out_of_range);
}

}  // namespace
}  // namespace qq::sim
