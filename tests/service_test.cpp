// Tests for the multi-tenant solve service (src/service): admission with
// typed rejection, per-request cancellation (explicit / deadline / budget)
// observed mid-solve, two-tenant weighted fair share on one engine, drain
// and shutdown under load, and async-vs-sync QAOA^2 result parity.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "maxcut/cut.hpp"
#include "qaoa2/qaoa2.hpp"
#include "qgraph/generators.hpp"
#include "qgraph/graph.hpp"
#include "service/service.hpp"
#include "solver/registry.hpp"
#include "util/cancellation.hpp"
#include "util/rng.hpp"

namespace qq::service {
namespace {

using graph::Graph;

// A deliberately slow, cooperative test backend: `polls` iterations of
// `ms` milliseconds each, checking the request context between iterations
// exactly like the real optimizer loops do. Cut: alternating assignment.
class SleepySolver final : public solver::Solver {
 public:
  SleepySolver(int polls, double ms) : polls_(polls), ms_(ms) {}

  std::string_view name() const noexcept override { return "sleepy"; }
  sched::ResourceKind resource_kind() const noexcept override {
    return sched::ResourceKind::kClassical;
  }

 protected:
  solver::SolveReport do_solve(
      const solver::SolveRequest& request) const override {
    int budget = polls_;
    if (request.eval_budget && *request.eval_budget < budget) {
      budget = *request.eval_budget;
    }
    int done = 0;
    for (; done < budget; ++done) {
      if (request.context != nullptr && request.context->stopped()) break;
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(ms_));
    }
    solver::SolveReport report;
    const auto n = static_cast<std::size_t>(request.graph->num_nodes());
    report.cut.assignment.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      report.cut.assignment[i] = static_cast<int>(i % 2);
    }
    report.cut.value = maxcut::cut_value(*request.graph, report.cut.assignment);
    report.evaluations = done;
    return report;
  }

 private:
  int polls_;
  double ms_;
};

void register_sleepy_once() {
  static const bool registered = [] {
    solver::SolverRegistry::global().register_solver(
        "sleepy", "slow cooperative test backend",
        {{"polls", "iterations"}, {"ms", "milliseconds per iteration"}},
        [](const solver::SolverRegistry&, std::string_view params,
           const solver::SolverDefaults&) -> solver::SolverPtr {
          const solver::Params p("sleepy", params, {"polls", "ms"});
          return std::make_unique<SleepySolver>(p.get_int("polls", 10),
                                                p.get_double("ms", 1.0));
        });
    return true;
  }();
  (void)registered;
}

Graph ring(graph::NodeId n) { return graph::cycle_graph(n); }

ServiceRequest sleepy_request(graph::NodeId n, int polls, double ms,
                              const std::string& cls = "") {
  ServiceRequest req;
  req.graph = ring(n);
  req.solver_spec =
      "sleepy:polls=" + std::to_string(polls) + ",ms=" + std::to_string(ms);
  req.workload_class = cls;
  // These tests load the scheduler with identical synthetic requests; with
  // the solve cache on they would dedupe into one fill and the queueing
  // behavior under test would vanish.
  req.cache_mode = cache::CacheMode::kOff;
  return req;
}

// ----------------------------------------------------------- lifecycle ----

TEST(Service, CompletesDirectAndDecomposedRequests) {
  register_sleepy_once();
  SolveService service(ServiceOptions{});

  ServiceRequest direct;
  direct.graph = ring(8);
  direct.solver_spec = "greedy";
  const RequestTicket a = service.submit(std::move(direct));
  ASSERT_TRUE(a.valid());
  service.wait(a);
  EXPECT_EQ(a.status(), RequestStatus::kCompleted);
  EXPECT_GT(a.outcome().cut.value, 0.0);
  EXPECT_EQ(a.outcome().engine_tasks, 1);
  EXPECT_GT(a.id(), 0u);

  ServiceRequest deco;
  deco.graph = ring(30);
  deco.solver_spec = "gw";
  deco.deeper_spec = "gw";
  deco.merge_spec = "gw";
  deco.max_qubits = 8;
  deco.seed = 7;
  const RequestTicket b = service.submit(std::move(deco));
  service.wait(b);
  ASSERT_EQ(b.status(), RequestStatus::kCompleted);
  const RequestOutcome out = b.outcome();
  EXPECT_GT(out.cut.value, 0.0);
  EXPECT_GT(out.engine_tasks, 1);  // decomposed into a task chain

  // Async parity: the service result equals the synchronous driver's.
  qaoa2::Qaoa2Options qopts;
  qopts.max_qubits = 8;
  qopts.sub_solver_spec = "gw";
  qopts.deeper_solver_spec = "gw";
  qopts.merge_solver_spec = "gw";
  qopts.seed = 7;
  const qaoa2::Qaoa2Result sync = qaoa2::solve_qaoa2(ring(30), qopts);
  EXPECT_EQ(out.cut.value, sync.cut.value);
  EXPECT_EQ(out.cut.assignment, sync.cut.assignment);

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.completed, 2u);
  EXPECT_EQ(stats.in_flight, 0u);
  EXPECT_FALSE(render_stats(stats).empty());
}

TEST(Service, TicketContractsWhilePendingAndWhenEmpty) {
  register_sleepy_once();
  SolveService service(ServiceOptions{});
  const RequestTicket empty;
  EXPECT_FALSE(empty.valid());
  EXPECT_THROW(empty.status(), std::logic_error);
  EXPECT_THROW(service.wait(empty), std::logic_error);

  const RequestTicket t = service.submit(sleepy_request(6, 50, 2.0));
  EXPECT_THROW((void)t.outcome(), std::logic_error);  // still pending
  service.wait(t);
  EXPECT_NO_THROW((void)t.outcome());
}

// ------------------------------------------------------------ admission ----

TEST(Service, TypedRejections) {
  register_sleepy_once();
  ServiceOptions options;
  options.max_in_flight_requests = 1;
  options.classes = {{"default", 1.0, 1}};
  options.engine.quantum_slots = 1;
  options.engine.classical_slots = 1;
  SolveService service(options);

  // Malformed spec and unknown class reject as invalid, untouched by load.
  ServiceRequest bad_spec;
  bad_spec.graph = ring(4);
  bad_spec.solver_spec = "no-such-solver";
  const RequestTicket r1 = service.submit(std::move(bad_spec));
  EXPECT_EQ(r1.status(), RequestStatus::kRejected);
  EXPECT_EQ(r1.outcome().reject_reason, RejectReason::kInvalidRequest);

  const RequestTicket r2 =
      service.submit(sleepy_request(4, 1, 0.1, "no-such-class"));
  EXPECT_EQ(r2.outcome().reject_reason, RejectReason::kInvalidRequest);

  // Non-positive deadlines are infeasible up front.
  ServiceRequest infeasible = sleepy_request(4, 1, 0.1);
  infeasible.deadline_seconds = -1.0;
  const RequestTicket r3 = service.submit(std::move(infeasible));
  EXPECT_EQ(r3.outcome().reject_reason, RejectReason::kDeadlineInfeasible);

  // Fill the single in-flight slot, then overload.
  const RequestTicket held = service.submit(sleepy_request(4, 200, 2.0));
  EXPECT_EQ(held.status(), RequestStatus::kPending);
  const RequestTicket r4 = service.submit(sleepy_request(4, 1, 0.1));
  EXPECT_EQ(r4.status(), RequestStatus::kRejected);
  EXPECT_EQ(r4.outcome().reject_reason, RejectReason::kOverloaded);

  EXPECT_TRUE(service.cancel(held));
  service.wait(held);

  service.shutdown();
  const RequestTicket r5 = service.submit(sleepy_request(4, 1, 0.1));
  EXPECT_EQ(r5.outcome().reject_reason, RejectReason::kShuttingDown);

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.rejected, 5u);
  EXPECT_EQ(stats.in_flight, 0u);
}

// --------------------------------------------------------- cancellation ----

TEST(Service, CancelStopsARunningSolveMidIteration) {
  register_sleepy_once();
  SolveService service(ServiceOptions{});
  // ~10 s of cooperative sleeping if never cancelled.
  const RequestTicket t = service.submit(sleepy_request(6, 5000, 2.0));
  // Let it start, then cancel mid-solve.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_TRUE(service.cancel(t));
  service.wait(t);
  const RequestOutcome out = t.outcome();
  EXPECT_EQ(out.status, RequestStatus::kCancelled);
  EXPECT_EQ(out.stop_reason, util::StopReason::kCancelled);
  // The cancel must take effect at the next poll, not after all 5000.
  EXPECT_LT(out.latency_seconds, 2.0);
  EXPECT_FALSE(service.cancel(t));  // already settled
}

TEST(Service, CancelQueuedRequestNeverRuns) {
  register_sleepy_once();
  ServiceOptions options;
  options.engine.quantum_slots = 1;
  options.engine.classical_slots = 1;
  SolveService service(options);
  // Occupy the single classical slot...
  const RequestTicket running = service.submit(sleepy_request(6, 100, 2.0));
  // ...so this one is admitted but stays queued, then cancel it.
  const RequestTicket queued = service.submit(sleepy_request(6, 100, 2.0));
  EXPECT_TRUE(service.cancel(queued));
  service.wait(queued);
  EXPECT_EQ(queued.status(), RequestStatus::kCancelled);
  EXPECT_TRUE(service.cancel(running));
  service.wait(running);
  EXPECT_EQ(running.status(), RequestStatus::kCancelled);
}

TEST(Service, DeadlineExpiryCancelsADecomposedSolveMidComponent) {
  register_sleepy_once();
  SolveService service(ServiceOptions{});
  // Several components x several parts, each part ~25 ms: the 60 ms
  // deadline trips after some sub-solves completed, mid-request.
  ServiceRequest req;
  Graph g(36);
  for (int c = 0; c < 3; ++c) {
    for (int i = 0; i < 11; ++i) {
      g.add_edge(c * 12 + i, c * 12 + i + 1);
    }
  }
  req.graph = std::move(g);
  req.solver_spec = "sleepy:polls=5,ms=5";
  req.deeper_spec = "sleepy:polls=5,ms=5";
  req.merge_spec = "sleepy:polls=5,ms=5";
  req.max_qubits = 6;
  req.deadline_seconds = 0.06;
  const RequestTicket t = service.submit(std::move(req));
  service.wait(t);
  const RequestOutcome out = t.outcome();
  EXPECT_EQ(out.status, RequestStatus::kCancelled);
  EXPECT_EQ(out.stop_reason, util::StopReason::kDeadline);
  EXPECT_LT(out.latency_seconds, 2.0);
}

TEST(Service, EvalBudgetExhaustionStopsTheRequest) {
  register_sleepy_once();
  SolveService service(ServiceOptions{});
  ServiceRequest req = sleepy_request(30, 50, 1.0);
  req.deeper_spec = "sleepy:polls=50,ms=1";
  req.merge_spec = "sleepy:polls=50,ms=1";
  req.max_qubits = 8;
  req.eval_budget = 3;  // a fraction of one part's 50 polls
  const RequestTicket t = service.submit(std::move(req));
  service.wait(t);
  const RequestOutcome out = t.outcome();
  EXPECT_EQ(out.status, RequestStatus::kCancelled);
  EXPECT_EQ(out.stop_reason, util::StopReason::kBudget);
}

// ----------------------------------------------------------- fair share ----

TEST(Service, TwoTenantWeightedFairShare) {
  register_sleepy_once();
  ServiceOptions options;
  options.engine.quantum_slots = 1;
  options.engine.classical_slots = 1;  // serialize: fairness is visible
  // The blocker rides a third class so its long run does not skew either
  // tenant's EWMA cost estimate (SFQ charges vtime by estimated cost).
  options.classes = {{"gold", 3.0, 64}, {"bronze", 1.0, 64}, {"ops", 1.0, 4}};
  SolveService service(options);

  // Saturate the slot with equal-cost work from both tenants, submitted
  // while a blocker request holds the slot so every task queues first.
  const RequestTicket blocker =
      service.submit(sleepy_request(6, 10, 2.0, "ops"));
  constexpr int kPerClass = 12;
  std::vector<RequestTicket> gold, bronze;
  for (int i = 0; i < kPerClass; ++i) {
    gold.push_back(service.submit(sleepy_request(6, 2, 2.0, "gold")));
    bronze.push_back(service.submit(sleepy_request(6, 2, 2.0, "bronze")));
  }
  service.drain();

  double gold_latency = 0.0;
  double bronze_latency = 0.0;
  for (const RequestTicket& t : gold) {
    EXPECT_EQ(t.status(), RequestStatus::kCompleted);
    gold_latency += t.outcome().latency_seconds;
  }
  for (const RequestTicket& t : bronze) {
    EXPECT_EQ(t.status(), RequestStatus::kCompleted);
    bronze_latency += t.outcome().latency_seconds;
  }
  EXPECT_EQ(blocker.status(), RequestStatus::kCompleted);
  // Weight 3:1 on one slot with equal-cost requests: the light tenant's
  // mean completion time must noticeably exceed the heavy tenant's (a
  // 3:1 interleave puts gold's mean finish position well before bronze's).
  EXPECT_GT(bronze_latency, 1.3 * gold_latency);

  // Engine-side accounting: both classes did real work and the per-class
  // stats flowed into the service stats.
  const ServiceStats stats = service.stats();
  ASSERT_EQ(stats.classes.size(), 3u);
  EXPECT_EQ(stats.classes[0].name, "gold");
  EXPECT_EQ(stats.classes[0].completed, static_cast<std::size_t>(kPerClass));
  EXPECT_EQ(stats.classes[1].completed, static_cast<std::size_t>(kPerClass));
  EXPECT_GT(stats.classes[0].busy_seconds, 0.0);
  EXPECT_GT(stats.classes[1].busy_seconds, 0.0);
  EXPECT_GT(stats.classes[1].queue_wait_seconds, 0.0);
  EXPECT_GT(stats.classes[0].p50_seconds, 0.0);
}

// ------------------------------------------------------ drain & shutdown ----

TEST(Service, DrainUnderLoadSettlesEveryRequestExactlyOnce) {
  register_sleepy_once();
  ServiceOptions options;
  options.engine.classical_slots = 2;
  SolveService service(options);
  std::vector<RequestTicket> tickets;
  for (int i = 0; i < 16; ++i) {
    tickets.push_back(service.submit(sleepy_request(6, 3, 1.0)));
  }
  // Cancel a few mid-flight while the rest keep flowing.
  for (std::size_t i = 0; i < tickets.size(); i += 4) {
    service.cancel(tickets[i]);
  }
  service.drain();
  std::size_t completed = 0;
  std::size_t cancelled = 0;
  for (const RequestTicket& t : tickets) {
    const RequestStatus s = t.status();
    ASSERT_NE(s, RequestStatus::kPending);
    completed += s == RequestStatus::kCompleted;
    cancelled += s == RequestStatus::kCancelled;
  }
  EXPECT_EQ(completed + cancelled, tickets.size());  // no lost, no failed
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.in_flight, 0u);
  EXPECT_EQ(stats.completed + stats.cancelled, tickets.size());
  // Engine bookkeeping balanced: everything submitted either ran or was
  // cancelled; no slot or ready-queue residue.
  EXPECT_EQ(stats.engine.completed + stats.engine.cancelled,
            stats.engine.submitted);
  EXPECT_EQ(stats.engine.ready_classical, 0u);
  EXPECT_EQ(stats.engine.inflight_classical, 0u);
}

TEST(Service, ShutdownNowCancelsInFlightWork) {
  register_sleepy_once();
  SolveService service(ServiceOptions{});
  std::vector<RequestTicket> tickets;
  for (int i = 0; i < 6; ++i) {
    tickets.push_back(service.submit(sleepy_request(6, 2000, 2.0)));
  }
  service.shutdown_now();
  for (const RequestTicket& t : tickets) {
    EXPECT_NE(t.status(), RequestStatus::kPending);
    EXPECT_NE(t.status(), RequestStatus::kFailed);
  }
  EXPECT_EQ(service.submit(sleepy_request(4, 1, 0.1)).outcome().reject_reason,
            RejectReason::kShuttingDown);
}

}  // namespace
}  // namespace qq::service
