// Tests for the unified solver interface and string-spec registry
// (src/solver): name round-trips, adapter-vs-free-function bit-for-bit
// parity, spec parsing errors, solve-count accounting, and the QAOA^2
// registry-dispatch parity pins (cuts captured from the pre-registry
// driver at commit 5598203 must be reproduced exactly).

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "maxcut/anneal.hpp"
#include "maxcut/baselines.hpp"
#include "maxcut/cut.hpp"
#include "maxcut/exact.hpp"
#include "qaoa/qaoa.hpp"
#include "qaoa/rqaoa.hpp"
#include "qaoa2/qaoa2.hpp"
#include "qgraph/generators.hpp"
#include "sdp/gw.hpp"
#include "solver/registry.hpp"
#include "test_graphs.hpp"
#include "util/rng.hpp"

namespace qq::solver {
namespace {

using graph::Graph;

Graph test_graph(std::uint64_t seed = 41, graph::NodeId n = 10,
                 double p = 0.35) {
  return testing::er_fixture(seed, n, p);
}

// ------------------------------------------------------------ registry ----

TEST(Registry, EveryNameRoundTripsThroughSpecParse) {
  const SolverRegistry& registry = SolverRegistry::global();
  const auto names = registry.names();
  ASSERT_FALSE(names.empty());
  for (const std::string& name : names) {
    const SolverPtr s = registry.make(name);
    ASSERT_NE(s, nullptr) << name;
    EXPECT_EQ(s->name(), name);
    EXPECT_TRUE(registry.contains(name));
  }
}

TEST(Registry, RegistersTheExpectedBackends) {
  const SolverRegistry& registry = SolverRegistry::global();
  for (const char* name : {"qaoa", "rqaoa", "gw", "exact", "anneal",
                           "local-search", "greedy", "random", "best"}) {
    EXPECT_TRUE(registry.contains(name)) << name;
  }
  EXPECT_FALSE(registry.contains("QAOA"));
  EXPECT_FALSE(registry.contains("goemans"));
}

TEST(Registry, ResourceKinds) {
  const SolverRegistry& registry = SolverRegistry::global();
  for (const char* name : {"qaoa", "rqaoa"}) {
    EXPECT_EQ(registry.make(name)->resource_kind(),
              sched::ResourceKind::kQuantum)
        << name;
  }
  for (const char* name :
       {"gw", "exact", "anneal", "local-search", "greedy", "random"}) {
    EXPECT_EQ(registry.make(name)->resource_kind(),
              sched::ResourceKind::kClassical)
        << name;
  }
  // A mixed best-of occupies a classical slot when run as one task; an
  // all-quantum one a quantum slot.
  EXPECT_EQ(registry.make("best")->resource_kind(),
            sched::ResourceKind::kClassical);
  EXPECT_EQ(registry.make("best:qaoa|rqaoa")->resource_kind(),
            sched::ResourceKind::kQuantum);
}

TEST(Registry, SpecWhitespaceAndParamsParse) {
  const SolverRegistry& registry = SolverRegistry::global();
  EXPECT_EQ(registry.make("  anneal  ")->name(), "anneal");
  EXPECT_EQ(registry.make(" qaoa : p = 2 , iters = 10 ")->name(), "qaoa");
  EXPECT_EQ(registry.make("best: qaoa | gw")->name(), "best");
}

TEST(Registry, MalformedSpecsThrowNotCrash) {
  const SolverRegistry& registry = SolverRegistry::global();
  for (const char* spec :
       {"", "   ", "nope", ":p=1", "qaoa:p", "qaoa:p=", "qaoa:=2",
        "qaoa:p=abc", "qaoa:bogus=1", "qaoa:p=2,p=3", "qaoa:,",
        "qaoa:shots=4294967296", "qaoa:shots=99999999999999999999",
        "gw:tol=zzz", "gw:rounds=1.5x", "exact:foo=1", "greedy:p=1",
        "best:|", "best:qaoa|", "best:|gw", "best:qaoa|nope",
        "best:qaoa|gw:bogus=1"}) {
    EXPECT_THROW((void)registry.make(spec), std::invalid_argument) << spec;
  }
}

TEST(Registry, HelpListsEveryBackendAndParameters) {
  const std::string help = SolverRegistry::global().help();
  for (const char* needle : {"qaoa", "rqaoa", "gw", "exact", "anneal",
                             "local-search", "greedy", "random", "best",
                             "rounds", "restarts", "shots"}) {
    EXPECT_NE(help.find(needle), std::string::npos) << needle;
  }
}

TEST(Registry, RegisterSolverValidation) {
  SolverRegistry registry;  // private registry; global() stays untouched
  EXPECT_THROW(registry.register_solver("", "", {}, nullptr),
               std::invalid_argument);
  EXPECT_THROW(registry.register_solver("has space", "", {},
                                        SolverRegistry::Factory{}),
               std::invalid_argument);
  EXPECT_THROW(registry.register_solver("a:b", "", {},
                                        SolverRegistry::Factory{}),
               std::invalid_argument);
  registry.register_solver(
      "mine", "test backend", {},
      [](const SolverRegistry&, std::string_view,
         const SolverDefaults& defaults) {
        return SolverRegistry::global().make("greedy", defaults);
      });
  EXPECT_THROW(
      registry.register_solver("mine", "", {}, SolverRegistry::Factory{}),
      std::invalid_argument);
  EXPECT_EQ(registry.make("mine")->name(), "greedy");
  EXPECT_THROW((void)registry.make("qaoa"), std::invalid_argument);
}

// ------------------------------------------- adapter <-> free function ----

TEST(Adapters, QaoaMatchesFreeFunctionBitForBit) {
  const Graph g = test_graph();
  for (const std::uint64_t seed : {5ULL, 77ULL}) {
    const auto rep =
        SolverRegistry::global().make("qaoa:p=2,iters=30")->solve({&g, seed});
    qaoa::QaoaOptions opts;
    opts.layers = 2;
    opts.max_iterations = 30;
    opts.seed = seed;
    const auto direct = qaoa::solve_qaoa(g, opts);
    EXPECT_EQ(rep.cut.value, direct.cut.value);
    EXPECT_EQ(rep.cut.assignment, direct.cut.assignment);
    EXPECT_EQ(rep.evaluations, direct.evaluations);
    EXPECT_EQ(rep.metric("expectation"), direct.expectation);
    EXPECT_EQ(rep.solver, "qaoa");
  }
}

TEST(Adapters, QaoaEvalBudgetOverridesIterations) {
  const Graph g = test_graph();
  SolveRequest request;
  request.graph = &g;
  request.seed = 5;
  request.eval_budget = 12;
  const auto rep =
      SolverRegistry::global().make("qaoa:p=2,iters=40")->solve(request);
  qaoa::QaoaOptions opts;
  opts.layers = 2;
  opts.max_iterations = 12;
  opts.seed = 5;
  const auto direct = qaoa::solve_qaoa(g, opts);
  EXPECT_EQ(rep.cut.value, direct.cut.value);
  EXPECT_EQ(rep.cut.assignment, direct.cut.assignment);
  EXPECT_EQ(rep.evaluations, direct.evaluations);
}

TEST(Adapters, RqaoaMatchesFreeFunctionBitForBit) {
  const Graph g = test_graph();
  const auto rep = SolverRegistry::global()
                       .make("rqaoa:p=2,iters=25,cutoff=6")
                       ->solve({&g, 5});
  qaoa::RqaoaOptions opts;
  opts.qaoa.layers = 2;
  opts.qaoa.max_iterations = 25;
  opts.qaoa.seed = 5;
  opts.cutoff = 6;
  const auto direct = qaoa::solve_rqaoa(g, opts);
  EXPECT_EQ(rep.cut.value, direct.cut.value);
  EXPECT_EQ(rep.cut.assignment, direct.cut.assignment);
  EXPECT_EQ(rep.evaluations, direct.total_evaluations);
  EXPECT_EQ(rep.metric("rounds"), direct.rounds);
}

TEST(Adapters, GwMatchesFreeFunctionWithHistoricalSalt) {
  const Graph g = test_graph();
  for (const std::uint64_t seed : {5ULL, 77ULL}) {
    const auto rep =
        SolverRegistry::global().make("gw:rounds=20")->solve({&g, seed});
    sdp::GwOptions opts;
    opts.slicings = 20;
    opts.seed = seed;
    opts.sdp.seed = seed ^ 0x5d9ULL;  // the old solve_subgraph salt
    const auto direct = sdp::goemans_williamson(g, opts);
    EXPECT_EQ(rep.cut.value, direct.best.value);
    EXPECT_EQ(rep.cut.assignment, direct.best.assignment);
    EXPECT_EQ(rep.metric("average_value"), direct.average_value);
  }
}

TEST(Adapters, ExactMatchesFreeFunction) {
  const Graph g = test_graph();
  const auto rep = SolverRegistry::global().make("exact")->solve({&g, 123});
  const auto direct = maxcut::solve_exact(g);
  EXPECT_EQ(rep.cut.value, direct.value);
  EXPECT_EQ(rep.cut.assignment, direct.assignment);
}

TEST(Adapters, AnnealMatchesFreeFunctionWithHistoricalSalt) {
  const Graph g = test_graph();
  const auto rep = SolverRegistry::global()
                       .make("anneal:sweeps=50,t0=1.5,t1=0.05")
                       ->solve({&g, 5});
  util::Rng rng(5ULL ^ 0xa22ea1ULL);  // the old solve_subgraph salt
  maxcut::AnnealOptions opts;
  opts.sweeps = 50;
  opts.t_initial = 1.5;
  opts.t_final = 0.05;
  const auto direct = maxcut::simulated_annealing(g, rng, opts);
  EXPECT_EQ(rep.cut.value, direct.value);
  EXPECT_EQ(rep.cut.assignment, direct.assignment);
}

TEST(Adapters, LocalSearchMatchesFreeFunctionWithHistoricalSalt) {
  const Graph g = test_graph();
  const auto rep =
      SolverRegistry::global().make("local-search:restarts=3")->solve({&g, 5});
  util::Rng rng(5ULL ^ 0x10ca15ULL);  // the old solve_subgraph salt
  const auto direct = maxcut::one_exchange_restarts(g, rng, 3);
  EXPECT_EQ(rep.cut.value, direct.value);
  EXPECT_EQ(rep.cut.assignment, direct.assignment);
}

TEST(Adapters, GreedyAndRandomMatchFreeFunctions) {
  const Graph g = test_graph();
  const auto greedy = SolverRegistry::global().make("greedy")->solve({&g, 9});
  EXPECT_EQ(greedy.cut.assignment, maxcut::greedy_cut(g).assignment);
  const auto random =
      SolverRegistry::global().make("random:p=0.3")->solve({&g, 9});
  util::Rng rng(9);
  EXPECT_EQ(random.cut.assignment,
            maxcut::randomized_partitioning(g, rng, 0.3).assignment);
}

TEST(Adapters, BestKeepsBetterCutAndTiesGoToFirstChild) {
  const Graph g = test_graph();
  const auto& registry = SolverRegistry::global();
  const auto q = registry.make("qaoa:p=2,iters=30")->solve({&g, 5});
  const auto c = registry.make("gw")->solve({&g, 5});
  const auto b = registry.make("best:qaoa:p=2,iters=30|gw")->solve({&g, 5});
  const auto& expected = q.cut.value >= c.cut.value ? q : c;
  EXPECT_EQ(b.cut.value, expected.cut.value);
  EXPECT_EQ(b.cut.assignment, expected.cut.assignment);
}

// ------------------------------------------------- report semantics ----

TEST(Reports, SolveCountsCoverBothKindsOfABestOf) {
  const Graph g = test_graph();
  const auto& registry = SolverRegistry::global();
  const auto leaf_q = registry.make("qaoa:p=1,iters=10")->solve({&g, 1});
  EXPECT_EQ(leaf_q.quantum_solves, 1);
  EXPECT_EQ(leaf_q.classical_solves, 0);
  const auto leaf_c = registry.make("greedy")->solve({&g, 1});
  EXPECT_EQ(leaf_c.quantum_solves, 0);
  EXPECT_EQ(leaf_c.classical_solves, 1);
  // The old enum switch tallied a best-of as ONE solve; the combinator
  // reports every child.
  const auto best =
      registry.make("best:qaoa:p=1,iters=10|gw:rounds=5|greedy")
          ->solve({&g, 1});
  EXPECT_EQ(best.quantum_solves, 1);
  EXPECT_EQ(best.classical_solves, 2);
}

TEST(Reports, TrivialGraphsShortCircuitButStillCount) {
  const Graph empty(5);  // 5 nodes, no edges
  const auto& registry = SolverRegistry::global();
  for (const char* spec : {"qaoa", "gw", "best"}) {
    const auto rep = registry.make(spec)->solve({&empty, 3});
    EXPECT_EQ(rep.cut.value, 0.0) << spec;
    EXPECT_EQ(rep.cut.assignment, maxcut::Assignment(5, 0)) << spec;
    EXPECT_EQ(rep.quantum_solves + rep.classical_solves,
              std::string(spec) == "best" ? 2 : 1)
        << spec;
    EXPECT_EQ(rep.solver, spec);
  }
}

TEST(Reports, NullGraphThrows) {
  const auto s = SolverRegistry::global().make("greedy");
  EXPECT_THROW((void)s->solve(SolveRequest{}), std::invalid_argument);
}

TEST(Reports, MetricFallback) {
  SolveReport report;
  report.metrics = {{"a", 2.5}};
  EXPECT_EQ(report.metric("a"), 2.5);
  EXPECT_EQ(report.metric("missing", -1.0), -1.0);
}

// ------------------------------------------ QAOA^2 registry dispatch ----

/// Two ER blobs of different size plus two isolated nodes (shared fixture,
/// tests/test_graphs.hpp — must stay bit-identical for the parity pins).
Graph disconnected_test_graph() { return testing::disconnected_fixture(); }

qaoa2::Qaoa2Options parity_options() {
  qaoa2::Qaoa2Options opts;
  opts.max_qubits = 6;
  opts.qaoa.layers = 2;
  opts.qaoa.max_iterations = 25;
  opts.merge_solver = qaoa2::SubSolver::kGw;
  opts.seed = 33;
  return opts;
}

struct ParityPin {
  const char* solver;
  double conn_value;
  std::uint64_t conn_bits;
  int conn_quantum, conn_classical;
  double disc_value;
  std::uint64_t disc_bits;
  int disc_quantum, disc_classical;
};

// Cut values/assignments captured from the PRE-registry Qaoa2Driver (commit
// 5598203, enum-switch dispatch) on erdos_renyi(26, 0.2, rng(29)) and the
// disconnected fixture, max_qubits 6, qaoa p=2/25 iters, gw merge, seed 33.
// The registry-dispatch driver must reproduce them bit-for-bit, streaming
// on and off. Solve counts are the POST-fix accounting: the old driver
// tallied a best-of fitting solve as one classical solve (the disconnected
// best row read quantum=7); the combinator now reports both children, which
// is the only intended accounting change (disc best quantum 7 -> 9 for the
// two isolated-node fitting solves).
const ParityPin kParityPins[] = {
    {"qaoa", 56.0, 0x0313c6e6ULL, 6, 1, 47.0, 0x0ec4079eULL, 9, 2},
    {"gw", 54.0, 0x00b5bd08ULL, 0, 7, 45.0, 0x091b079eULL, 0, 11},
    {"best", 56.0, 0x0313c6e6ULL, 6, 7, 47.0, 0x0ec4079eULL, 9, 11},
    {"exact", 56.0, 0x031ac2e6ULL, 0, 7, 47.0, 0x0ec4079eULL, 0, 11},
    {"anneal", 59.0, 0x00e43919ULL, 0, 7, 44.0, 0x0173079eULL, 0, 11},
    {"local-search", 56.0, 0x039b86e4ULL, 0, 7, 48.0, 0x013b0796ULL, 0, 11},
    {"rqaoa", 56.0, 0x031ac2e6ULL, 6, 1, 47.0, 0x0ec4079eULL, 9, 2},
};

TEST(Qaoa2Parity, RegistryDispatchPinsToPreRefactorCuts) {
  util::Rng rng(29);
  const Graph connected = graph::erdos_renyi(26, 0.2, rng);
  const Graph disconnected = disconnected_test_graph();
  for (const ParityPin& pin : kParityPins) {
    for (const bool streaming : {false, true}) {
      qaoa2::Qaoa2Options opts = parity_options();
      opts.streaming = streaming;
      const auto parsed = qaoa2::parse_sub_solver(pin.solver);
      ASSERT_TRUE(parsed.has_value()) << pin.solver;
      opts.sub_solver = *parsed;

      const qaoa2::Qaoa2Result conn = qaoa2::solve_qaoa2(connected, opts);
      EXPECT_DOUBLE_EQ(conn.cut.value, pin.conn_value)
          << pin.solver << " streaming=" << streaming;
      EXPECT_EQ(maxcut::bits_from_assignment(conn.cut.assignment),
                pin.conn_bits)
          << pin.solver << " streaming=" << streaming;
      EXPECT_EQ(conn.quantum_solves, pin.conn_quantum) << pin.solver;
      EXPECT_EQ(conn.classical_solves, pin.conn_classical) << pin.solver;

      const qaoa2::Qaoa2Result disc = qaoa2::solve_qaoa2(disconnected, opts);
      EXPECT_DOUBLE_EQ(disc.cut.value, pin.disc_value)
          << pin.solver << " streaming=" << streaming;
      EXPECT_EQ(maxcut::bits_from_assignment(disc.cut.assignment),
                pin.disc_bits)
          << pin.solver << " streaming=" << streaming;
      EXPECT_EQ(disc.quantum_solves, pin.disc_quantum) << pin.solver;
      EXPECT_EQ(disc.classical_solves, pin.disc_classical) << pin.solver;
    }
  }
}

TEST(Qaoa2Parity, EnumAndSpecDriversAreBitForBitIdentical) {
  const Graph g = disconnected_test_graph();
  for (const ParityPin& pin : kParityPins) {
    qaoa2::Qaoa2Options enum_opts = parity_options();
    enum_opts.sub_solver = *qaoa2::parse_sub_solver(pin.solver);
    qaoa2::Qaoa2Options spec_opts = parity_options();
    spec_opts.sub_solver_spec = pin.solver;
    const auto a = qaoa2::solve_qaoa2(g, enum_opts);
    const auto b = qaoa2::solve_qaoa2(g, spec_opts);
    EXPECT_EQ(a.cut.value, b.cut.value) << pin.solver;
    EXPECT_EQ(a.cut.assignment, b.cut.assignment) << pin.solver;
    EXPECT_EQ(a.quantum_solves, b.quantum_solves) << pin.solver;
    EXPECT_EQ(a.classical_solves, b.classical_solves) << pin.solver;
  }
}

TEST(Qaoa2Parity, SolveSubgraphShimMatchesRegistrySolvers) {
  const Graph g = test_graph();
  qaoa2::Qaoa2Options opts;
  opts.qaoa.layers = 2;
  opts.qaoa.max_iterations = 30;
  const qaoa2::Qaoa2Driver driver(opts);
  const auto& registry = SolverRegistry::global();
  for (const qaoa2::SubSolver s :
       {qaoa2::SubSolver::kQaoa, qaoa2::SubSolver::kGw,
        qaoa2::SubSolver::kBest, qaoa2::SubSolver::kExact,
        qaoa2::SubSolver::kAnneal, qaoa2::SubSolver::kLocalSearch,
        qaoa2::SubSolver::kRqaoa}) {
    const auto shim = driver.solve_subgraph(g, s, 5);
    const auto direct = registry.make(qaoa2::sub_solver_name(s),
                                      driver.solver_defaults())
                            ->solve({&g, 5});
    EXPECT_EQ(shim.value, direct.cut.value) << qaoa2::sub_solver_name(s);
    EXPECT_EQ(shim.assignment, direct.cut.assignment)
        << qaoa2::sub_solver_name(s);
  }
}

TEST(Qaoa2Parity, DriverRejectsMalformedAndCombinatorMergeSpecs) {
  qaoa2::Qaoa2Options opts;
  opts.sub_solver_spec = "nope";
  EXPECT_THROW(qaoa2::Qaoa2Driver{opts}, std::invalid_argument);
  opts = qaoa2::Qaoa2Options{};
  opts.sub_solver_spec = "qaoa:bogus=1";
  EXPECT_THROW(qaoa2::Qaoa2Driver{opts}, std::invalid_argument);
  opts = qaoa2::Qaoa2Options{};
  opts.merge_solver_spec = "best:qaoa|gw";
  EXPECT_THROW(qaoa2::Qaoa2Driver{opts}, std::invalid_argument);
}

TEST(Qaoa2Parity, SpecParametersReachTheSubSolves) {
  // A three-child best-of streams through the driver: counts must cover
  // every child of every part.
  const Graph g = test_graph(51, 18, 0.3);
  qaoa2::Qaoa2Options opts = parity_options();
  opts.sub_solver_spec = "best:greedy|local-search:restarts=2|anneal";
  opts.deeper_solver_spec = "greedy";
  opts.merge_solver_spec = "exact";
  const auto r = qaoa2::solve_qaoa2(g, opts);
  EXPECT_GT(r.cut.value, 0.0);
  EXPECT_EQ(r.quantum_solves, 0);
  EXPECT_NEAR(maxcut::cut_value(g, r.cut.assignment), r.cut.value, 1e-9);
  // Level 0 parts each ran three classical children.
  ASSERT_FALSE(r.level_stats.empty());
  const int level0_parts = r.level_stats.front().num_parts;
  EXPECT_GE(r.classical_solves, 3 * level0_parts);
}

}  // namespace
}  // namespace qq::solver
