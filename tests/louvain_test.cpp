// Tests for Louvain community detection, the pluggable partition methods,
// and the additional graph families (Watts-Strogatz, Barabási-Albert).

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <set>

#include "qgraph/generators.hpp"
#include "qgraph/louvain.hpp"
#include "qgraph/modularity.hpp"
#include "qgraph/partition.hpp"
#include "util/rng.hpp"

namespace qq::graph {
namespace {

// -------------------------------------------------------------- Louvain ----

TEST(Louvain, RecoversTwoTriangles) {
  Graph g(6);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(0, 2);
  g.add_edge(3, 4);
  g.add_edge(4, 5);
  g.add_edge(3, 5);
  g.add_edge(2, 3);
  const auto comms = louvain_communities(g);
  ASSERT_EQ(comms.size(), 2u);
  EXPECT_EQ(comms[0], (std::vector<NodeId>{0, 1, 2}));
  EXPECT_EQ(comms[1], (std::vector<NodeId>{3, 4, 5}));
}

TEST(Louvain, RecoversPlantedBlocks) {
  util::Rng rng(3);
  const NodeId block = 8;
  const Graph g = planted_partition(4, block, 0.9, 0.02, rng);
  const auto comms = louvain_communities(g);
  ASSERT_EQ(comms.size(), 4u);
  for (const auto& c : comms) {
    ASSERT_EQ(c.size(), static_cast<std::size_t>(block));
    for (const NodeId u : c) EXPECT_EQ(u / block, c.front() / block);
  }
}

TEST(Louvain, ModularityComparableToCnm) {
  util::Rng rng(5);
  const Graph g = erdos_renyi(80, 0.08, rng);
  auto to_assignment = [&g](const std::vector<std::vector<NodeId>>& comms) {
    std::vector<int> assign(static_cast<std::size_t>(g.num_nodes()), 0);
    for (std::size_t c = 0; c < comms.size(); ++c) {
      for (const NodeId u : comms[c]) {
        assign[static_cast<std::size_t>(u)] = static_cast<int>(c);
      }
    }
    return assign;
  };
  const double q_louvain = modularity(g, to_assignment(louvain_communities(g)));
  const double q_cnm =
      modularity(g, to_assignment(greedy_modularity_communities(g)));
  EXPECT_GT(q_louvain, 0.0);
  // Louvain is usually at least as good as CNM; allow a modest margin.
  EXPECT_GE(q_louvain, 0.85 * q_cnm);
}

TEST(Louvain, EdgelessAndTrivialGraphs) {
  EXPECT_EQ(louvain_communities(Graph(4)).size(), 4u);
  EXPECT_EQ(louvain_communities(Graph(0)).size(), 0u);
  EXPECT_EQ(louvain_communities(Graph(1)).size(), 1u);
}

TEST(Louvain, DeterministicPerSeed) {
  util::Rng rng(7);
  const Graph g = erdos_renyi(50, 0.1, rng);
  LouvainOptions opts;
  opts.seed = 11;
  EXPECT_EQ(louvain_communities(g, opts), louvain_communities(g, opts));
}

TEST(Louvain, CoversAllNodesExactlyOnce) {
  util::Rng rng(9);
  const Graph g = erdos_renyi(64, 0.12, rng);
  std::set<NodeId> seen;
  for (const auto& c : louvain_communities(g)) {
    for (const NodeId u : c) EXPECT_TRUE(seen.insert(u).second);
  }
  EXPECT_EQ(seen.size(), 64u);
}

// ---------------------------------------------------- partition methods ----

class PartitionMethodInvariants
    : public ::testing::TestWithParam<std::tuple<PartitionMethod, int>> {};

TEST_P(PartitionMethodInvariants, CoverDisjointAndCapped) {
  const auto [method, seed] = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(seed));
  Graph g(0);
  switch (seed % 3) {
    case 0: g = erdos_renyi(48, 0.12, rng); break;
    case 1: g = planted_partition(4, 10, 0.8, 0.05, rng); break;
    default: g = complete_graph(25); break;
  }
  PartitionOptions opts;
  opts.max_nodes = 7;
  opts.method = method;
  opts.seed = static_cast<std::uint64_t>(seed);
  const auto parts = partition_max_size(g, opts);
  std::set<NodeId> seen;
  for (const auto& part : parts) {
    EXPECT_FALSE(part.empty());
    EXPECT_LE(part.size(), 7u);
    for (const NodeId u : part) EXPECT_TRUE(seen.insert(u).second);
  }
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(g.num_nodes()));
  // Progress guarantee used by the QAOA^2 recursion.
  if (g.num_nodes() > opts.max_nodes) {
    EXPECT_LT(parts.size(), static_cast<std::size_t>(g.num_nodes()));
  }
}

INSTANTIATE_TEST_SUITE_P(
    MethodsAndSeeds, PartitionMethodInvariants,
    ::testing::Combine(::testing::Values(PartitionMethod::kGreedyModularity,
                                         PartitionMethod::kLouvain,
                                         PartitionMethod::kSpectral,
                                         PartitionMethod::kBalancedBfs,
                                         PartitionMethod::kRandomChunks),
                       ::testing::Range(0, 6)));

TEST(Spectral, SeparatesBarbellCliques) {
  // Two K8 joined by a path: the Fiedler vector splits at the bridge.
  const Graph g = barbell_graph(8, 0);  // 16 nodes, one bridge edge
  PartitionOptions opts;
  opts.max_nodes = 8;
  opts.method = PartitionMethod::kSpectral;
  const auto parts = partition_max_size(g, opts);
  ASSERT_EQ(parts.size(), 2u);
  // Each half must be one clique (nodes 0-7 vs 8-15).
  for (const auto& part : parts) {
    ASSERT_EQ(part.size(), 8u);
    for (const NodeId u : part) {
      EXPECT_EQ(u / 8, part.front() / 8);
    }
  }
}

TEST(Spectral, BisectionIsBalanced) {
  util::Rng rng(31);
  const Graph g = erdos_renyi(40, 0.15, rng);
  PartitionOptions opts;
  opts.max_nodes = 20;
  opts.method = PartitionMethod::kSpectral;
  const auto parts = partition_max_size(g, opts);
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[0].size(), 20u);
  EXPECT_EQ(parts[1].size(), 20u);
}

TEST(PartitionMethods, NamesAreStable) {
  EXPECT_STREQ(partition_method_name(PartitionMethod::kGreedyModularity),
               "greedy-modularity");
  EXPECT_STREQ(partition_method_name(PartitionMethod::kLouvain), "louvain");
  EXPECT_STREQ(partition_method_name(PartitionMethod::kSpectral), "spectral");
  EXPECT_STREQ(partition_method_name(PartitionMethod::kBalancedBfs),
               "balanced-bfs");
  EXPECT_STREQ(partition_method_name(PartitionMethod::kRandomChunks),
               "random-chunks");
}

TEST(PartitionMethods, CommunityMethodsMostlyRespectPlantedBlocks) {
  util::Rng rng(13);
  const Graph g = planted_partition(4, 6, 0.95, 0.005, rng);
  for (const auto method :
       {PartitionMethod::kGreedyModularity, PartitionMethod::kLouvain}) {
    PartitionOptions opts;
    opts.max_nodes = 6;
    opts.method = method;
    const auto parts = partition_max_size(g, opts);
    // Community detection may split a block, and a stray cross edge can
    // legitimately pull a single node across; bulk mixing would be a bug.
    EXPECT_GE(parts.size(), 4u) << partition_method_name(method);
    int misplaced = 0;
    for (const auto& part : parts) {
      // Majority block of this part.
      std::array<int, 4> counts{};
      for (const NodeId u : part) ++counts[static_cast<std::size_t>(u / 6)];
      const int majority =
          *std::max_element(counts.begin(), counts.end());
      misplaced += static_cast<int>(part.size()) - majority;
    }
    EXPECT_LE(misplaced, 1) << partition_method_name(method);
  }
}

// --------------------------------------------------- new graph families ----

TEST(WattsStrogatz, LatticeLimitAndEdgeCount) {
  util::Rng rng(15);
  // beta = 0: pure ring lattice with n*k/2 edges, all degrees k.
  const Graph lattice = watts_strogatz(20, 4, 0.0, rng);
  EXPECT_EQ(lattice.num_edges(), 40u);
  for (NodeId u = 0; u < 20; ++u) EXPECT_EQ(lattice.degree(u), 4);
}

TEST(WattsStrogatz, RewiringPreservesEdgeCount) {
  util::Rng rng(17);
  const Graph g = watts_strogatz(30, 4, 0.3, rng);
  EXPECT_EQ(g.num_edges(), 60u);
  for (const Edge& e : g.edges()) {
    EXPECT_NE(e.u, e.v);
  }
}

TEST(WattsStrogatz, Validation) {
  util::Rng rng(19);
  EXPECT_THROW(watts_strogatz(10, 3, 0.1, rng), std::invalid_argument);
  EXPECT_THROW(watts_strogatz(4, 4, 0.1, rng), std::invalid_argument);
  EXPECT_THROW(watts_strogatz(10, 4, 1.5, rng), std::invalid_argument);
}

TEST(BarabasiAlbert, SizeAndAttachmentCounts) {
  util::Rng rng(21);
  const NodeId n = 60;
  const NodeId m = 3;
  const Graph g = barabasi_albert(n, m, rng);
  EXPECT_EQ(g.num_nodes(), n);
  // Seed star has m edges; every later node adds exactly m.
  EXPECT_EQ(g.num_edges(), static_cast<std::size_t>(m + (n - m - 1) * m));
  EXPECT_TRUE(is_connected(g));
}

TEST(BarabasiAlbert, HubsEmerge) {
  util::Rng rng(23);
  const Graph g = barabasi_albert(200, 2, rng);
  NodeId max_degree = 0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    max_degree = std::max(max_degree, g.degree(u));
  }
  // Preferential attachment produces hubs well above the mean degree (~4).
  EXPECT_GE(max_degree, 12);
}

TEST(BarabasiAlbert, Validation) {
  util::Rng rng(25);
  EXPECT_THROW(barabasi_albert(5, 0, rng), std::invalid_argument);
  EXPECT_THROW(barabasi_albert(5, 5, rng), std::invalid_argument);
}

}  // namespace
}  // namespace qq::graph
