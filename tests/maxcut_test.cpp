// Tests for the MaxCut core: cut evaluation, the exact solver, classical
// baselines, simulated annealing, and the Ising/QUBO mappings.

#include <gtest/gtest.h>

#include <cmath>

#include "maxcut/anneal.hpp"
#include "maxcut/baselines.hpp"
#include "maxcut/cut.hpp"
#include "maxcut/exact.hpp"
#include "maxcut/qubo.hpp"
#include "qgraph/generators.hpp"
#include "util/rng.hpp"

namespace qq::maxcut {
namespace {

using graph::Graph;
using graph::NodeId;

Graph weighted_square() {
  // 4-cycle with distinct weights; optimum cuts all edges: value 10.
  Graph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 2.0);
  g.add_edge(2, 3, 3.0);
  g.add_edge(3, 0, 4.0);
  return g;
}

// ------------------------------------------------------------------ cut ----

TEST(Cut, ValueOnHandComputedExamples) {
  const Graph g = weighted_square();
  EXPECT_DOUBLE_EQ(cut_value(g, {0, 1, 0, 1}), 10.0);  // alternating: all cut
  EXPECT_DOUBLE_EQ(cut_value(g, {0, 0, 0, 0}), 0.0);
  EXPECT_DOUBLE_EQ(cut_value(g, {1, 0, 0, 0}), 5.0);   // edges (0,1) + (3,0)
}

TEST(Cut, ComplementHasSameValue) {
  util::Rng rng(3);
  const Graph g = graph::erdos_renyi(12, 0.4, rng, graph::WeightMode::kUniform01);
  const Assignment a = randomized_partitioning(g, rng).assignment;
  EXPECT_DOUBLE_EQ(cut_value(g, a), cut_value(g, complement(a)));
}

TEST(Cut, SizeMismatchThrows) {
  const Graph g = weighted_square();
  EXPECT_THROW(cut_value(g, {0, 1}), std::invalid_argument);
  EXPECT_THROW(flip_gain(g, {0, 1}, 0), std::invalid_argument);
}

TEST(Cut, BitsRoundTrip) {
  const Assignment a = {1, 0, 1, 1, 0};
  EXPECT_EQ(assignment_from_bits(bits_from_assignment(a), 5), a);
  EXPECT_EQ(bits_from_assignment(a), 0b01101ULL);
  EXPECT_THROW(assignment_from_bits(0, 65), std::invalid_argument);
}

class FlipGainProperty : public ::testing::TestWithParam<int> {};

TEST_P(FlipGainProperty, GainMatchesRecomputedDelta) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()));
  const Graph g =
      graph::erdos_renyi(14, 0.3, rng, graph::WeightMode::kUniform01);
  Assignment a = randomized_partitioning(g, rng).assignment;
  const double base = cut_value(g, a);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const double gain = flip_gain(g, a, u);
    Assignment flipped = a;
    flipped[static_cast<std::size_t>(u)] ^= 1U;
    EXPECT_NEAR(cut_value(g, flipped), base + gain, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlipGainProperty, ::testing::Range(0, 8));

// ---------------------------------------------------------------- exact ----

TEST(Exact, KnownOptima) {
  EXPECT_DOUBLE_EQ(solve_exact(graph::complete_graph(4)).value, 4.0);
  EXPECT_DOUBLE_EQ(solve_exact(graph::complete_graph(5)).value, 6.0);
  EXPECT_DOUBLE_EQ(solve_exact(graph::cycle_graph(6)).value, 6.0);
  EXPECT_DOUBLE_EQ(solve_exact(graph::cycle_graph(5)).value, 4.0);
  EXPECT_DOUBLE_EQ(solve_exact(graph::star_graph(7)).value, 6.0);
  EXPECT_DOUBLE_EQ(solve_exact(weighted_square()).value, 10.0);
}

TEST(Exact, BipartiteGraphsAreFullyCut) {
  const Graph g = graph::grid_2d(3, 4);  // bipartite
  EXPECT_DOUBLE_EQ(solve_exact(g).value, static_cast<double>(g.num_edges()));
}

TEST(Exact, AssignmentAchievesReportedValue) {
  util::Rng rng(5);
  const Graph g =
      graph::erdos_renyi(15, 0.3, rng, graph::WeightMode::kUniform01);
  const CutResult r = solve_exact(g);
  EXPECT_NEAR(cut_value(g, r.assignment), r.value, 1e-9);
}

TEST(Exact, MatchesNaiveEnumerationOnSmallGraphs) {
  util::Rng rng(7);
  for (int trial = 0; trial < 5; ++trial) {
    const Graph g =
        graph::erdos_renyi(10, 0.4, rng, graph::WeightMode::kUniform01);
    double best = 0.0;
    for (std::uint64_t bits = 0; bits < (1ULL << 10); ++bits) {
      best = std::max(best, cut_value(g, assignment_from_bits(bits, 10)));
    }
    EXPECT_NEAR(solve_exact(g).value, best, 1e-9);
  }
}

TEST(Exact, TrivialGraphs) {
  EXPECT_DOUBLE_EQ(solve_exact(Graph(0)).value, 0.0);
  EXPECT_DOUBLE_EQ(solve_exact(Graph(1)).value, 0.0);
  EXPECT_DOUBLE_EQ(solve_exact(Graph(5)).value, 0.0);  // edgeless
}

TEST(Exact, RejectsOversizedInstances) {
  EXPECT_THROW(solve_exact(Graph(31)), std::invalid_argument);
}

TEST(Exact, HandlesNegativeWeights) {
  // Negative-weight edges arise in QAOA^2 merge graphs and RQAOA
  // contractions; the optimum avoids cutting them.
  Graph g(3);
  g.add_edge(0, 1, -2.0);
  g.add_edge(1, 2, 3.0);
  const CutResult r = solve_exact(g);
  EXPECT_DOUBLE_EQ(r.value, 3.0);  // cut only (1,2)
}

TEST(Exact, AllNegativeWeightsAcrossChunksKeepZeroCutOptimal) {
  // 15 nodes -> 2^14 Gray codes -> several parallel chunks at the default
  // grain, so the cross-chunk merge actually runs. Every edge is negative:
  // every chunk's local best is <= 0 and the global optimum is the empty
  // cut (value 0). The merge is seeded from -infinity — a finite sentinel
  // seed would only be correct here by the accident that one chunk
  // enumerates the empty cut, which is exactly the dependence the fix
  // removes.
  Graph g(15);
  for (NodeId u = 0; u < 15; ++u) {
    for (NodeId v = u + 1; v < 15; ++v) {
      g.add_edge(u, v, -1.0 - 0.01 * static_cast<double>(u + v));
    }
  }
  const CutResult r = solve_exact(g);
  EXPECT_DOUBLE_EQ(r.value, 0.0);
  EXPECT_DOUBLE_EQ(cut_value(g, r.assignment), r.value);
}

// ------------------------------------------------------------ baselines ----

TEST(Baselines, RandomPartitioningIsValidAndBounded) {
  util::Rng rng(9);
  const Graph g = graph::erdos_renyi(20, 0.3, rng);
  const double exact = solve_exact(g).value;
  for (int i = 0; i < 10; ++i) {
    const CutResult r = randomized_partitioning(g, rng);
    EXPECT_NEAR(cut_value(g, r.assignment), r.value, 1e-9);
    EXPECT_LE(r.value, exact + 1e-9);
    EXPECT_GE(r.value, 0.0);
  }
}

TEST(Baselines, RandomPartitioningExpectedHalfWeight) {
  util::Rng rng(11);
  const Graph g = graph::complete_graph(12);
  double sum = 0.0;
  const int trials = 400;
  for (int i = 0; i < trials; ++i) sum += randomized_partitioning(g, rng).value;
  // E[cut] = W/2 = 33 for K12 (66 edges).
  EXPECT_NEAR(sum / trials, 33.0, 2.0);
}

TEST(Baselines, OneExchangeReachesLocalOptimum) {
  util::Rng rng(13);
  const Graph g =
      graph::erdos_renyi(18, 0.3, rng, graph::WeightMode::kUniform01);
  const CutResult r = one_exchange(g, rng);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    EXPECT_LE(flip_gain(g, r.assignment, u), 1e-9)
        << "node " << u << " still improvable";
  }
  EXPECT_NEAR(cut_value(g, r.assignment), r.value, 1e-9);
}

TEST(Baselines, OneExchangeBeatsAtLeastHalfTotalWeightUnweighted) {
  // Classic guarantee: a 1-exchange local optimum cuts >= W/2 edges... for
  // every node, at least half its incident weight is cut.
  util::Rng rng(15);
  const Graph g = graph::erdos_renyi(24, 0.25, rng);
  const CutResult r = one_exchange(g, rng);
  EXPECT_GE(r.value, g.total_weight() / 2.0 - 1e-9);
}

TEST(Baselines, GreedyCutIsValidAndDecent) {
  util::Rng rng(17);
  const Graph g = graph::erdos_renyi(20, 0.3, rng);
  const CutResult r = greedy_cut(g);
  EXPECT_NEAR(cut_value(g, r.assignment), r.value, 1e-9);
  EXPECT_GE(r.value, g.total_weight() / 2.0 - 1e-9);
}

TEST(Baselines, RestartsNeverHurt) {
  util::Rng rng1(19), rng2(19);
  const Graph g = graph::erdos_renyi(16, 0.3, rng1);
  util::Rng r1(100), r2(100);
  const double single = one_exchange(g, r1).value;
  const double multi = one_exchange_restarts(g, r2, 8).value;
  EXPECT_GE(multi, single - 1e-9);
}

// --------------------------------------------------------------- anneal ----

TEST(Anneal, ReachesExactOnSmallGraphs) {
  util::Rng g_rng(21);
  const Graph g = graph::erdos_renyi(12, 0.35, g_rng);
  const double exact = solve_exact(g).value;
  util::Rng rng(22);
  AnnealOptions opts;
  opts.sweeps = 400;
  const CutResult r = simulated_annealing(g, rng, opts);
  EXPECT_NEAR(cut_value(g, r.assignment), r.value, 1e-9);
  EXPECT_GE(r.value, 0.9 * exact);
}

TEST(Anneal, ValueNeverExceedsExact) {
  util::Rng g_rng(23);
  const Graph g =
      graph::erdos_renyi(12, 0.4, g_rng, graph::WeightMode::kUniform01);
  const double exact = solve_exact(g).value;
  util::Rng rng(24);
  EXPECT_LE(simulated_annealing(g, rng).value, exact + 1e-9);
}

TEST(Anneal, RejectsBadOptions) {
  const Graph g = graph::cycle_graph(4);
  util::Rng rng(1);
  AnnealOptions bad;
  bad.sweeps = 0;
  EXPECT_THROW(simulated_annealing(g, rng, bad), std::invalid_argument);
  bad = AnnealOptions{};
  bad.t_final = 3.0;  // > t_initial
  EXPECT_THROW(simulated_annealing(g, rng, bad), std::invalid_argument);
}

// ----------------------------------------------------------------- qubo ----

class MappingProperty : public ::testing::TestWithParam<int> {};

TEST_P(MappingProperty, IsingAndQuboAgreeWithCutEverywhere) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) + 31);
  const Graph g =
      graph::erdos_renyi(8, 0.5, rng, graph::WeightMode::kUniform01);
  const IsingModel ising = maxcut_to_ising(g);
  const auto qubo = maxcut_to_qubo(g);
  for (std::uint64_t bits = 0; bits < (1ULL << 8); ++bits) {
    const Assignment a = assignment_from_bits(bits, 8);
    const double cut = cut_value(g, a);
    EXPECT_NEAR(ising.cut_from_energy(ising.energy(a)), cut, 1e-9);
    EXPECT_NEAR(qubo_value(qubo, a), cut, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MappingProperty, ::testing::Range(0, 6));

TEST(Qubo, SizeValidation) {
  const Graph g = graph::cycle_graph(4);
  const IsingModel ising = maxcut_to_ising(g);
  EXPECT_THROW(ising.energy({0, 1}), std::invalid_argument);
  EXPECT_THROW(qubo_value({1.0, 2.0}, {0, 1, 0}), std::invalid_argument);
}

}  // namespace
}  // namespace qq::maxcut
