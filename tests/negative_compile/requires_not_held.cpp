// Negative-compile VIOLATION: calling a QQ_REQUIRES(mu) function without
// holding mu. Clang's -Werror=thread-safety must reject this translation
// unit — it is the contract every *_locked helper in sched/engine.cpp and
// service/service.cpp relies on. See CMakeLists.txt in this directory.

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace {

struct Counter {
  qq::util::Mutex mu;
  int value QQ_GUARDED_BY(mu) = 0;

  void bump_locked() QQ_REQUIRES(mu) { ++value; }
};

}  // namespace

int main() {
  Counter c;
  c.bump_locked();  // lock not held: must not compile under the analysis
  return 0;
}
