// Negative-compile VIOLATION: reading a QQ_GUARDED_BY field without holding
// its mutex. Clang's -Werror=thread-safety must reject this translation
// unit; if it ever compiles, the analysis gate has silently gone dark (shim
// macros broken, flags dropped, or the wrapper lost its capability
// annotations). See CMakeLists.txt in this directory.

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace {

struct Counter {
  qq::util::Mutex mu;
  int value QQ_GUARDED_BY(mu) = 0;
};

}  // namespace

int main() {
  Counter c;
  return c.value;  // unguarded read: must not compile under the analysis
}
