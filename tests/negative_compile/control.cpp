// Negative-compile CONTROL: correct locking discipline. Must compile under
// every compiler — on Clang it proves the harness's flags don't reject
// well-annotated code; elsewhere it proves the annotation macros expand to
// nothing. See CMakeLists.txt in this directory.

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace {

struct Counter {
  qq::util::Mutex mu;
  int value QQ_GUARDED_BY(mu) = 0;

  void bump_locked() QQ_REQUIRES(mu) { ++value; }

  void bump() QQ_EXCLUDES(mu) {
    qq::util::MutexLock lock(mu);
    bump_locked();
  }
};

}  // namespace

int main() {
  Counter c;
  c.bump();
  qq::util::MutexLock lock(c.mu);
  return c.value == 1 ? 0 : 1;
}
