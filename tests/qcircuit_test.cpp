// Tests for the circuit IR, the QAOA ansatz builder, and the synthesis
// pass pipeline. Pass correctness is asserted as distribution-level
// equivalence (passes may change global phase).

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "qcircuit/ansatz.hpp"
#include "qcircuit/circuit.hpp"
#include "qcircuit/execute.hpp"
#include "qcircuit/passes.hpp"
#include "qgraph/generators.hpp"
#include "qsim/measure.hpp"
#include "util/rng.hpp"

namespace qq::circuit {
namespace {

/// |<a|b>| == 1 iff equal up to global phase.
double overlap(const sim::StateVector& a, const sim::StateVector& b) {
  std::complex<double> inner{0.0, 0.0};
  for (std::size_t i = 0; i < a.size(); ++i) {
    inner += std::conj(a.data()[i]) * b.data()[i];
  }
  return std::abs(inner);
}

Circuit random_circuit(int n, int gates, std::uint64_t seed) {
  util::Rng rng(seed);
  Circuit qc(n);
  for (int i = 0; i < gates; ++i) {
    const int q = util::uniform_int(rng, 0, n - 1);
    int q2 = util::uniform_int(rng, 0, n - 1);
    while (q2 == q) q2 = util::uniform_int(rng, 0, n - 1);
    const double t = util::uniform(rng, -2.5, 2.5);
    switch (util::uniform_int(rng, 0, 7)) {
      case 0: qc.h(q); break;
      case 1: qc.x(q); break;
      case 2: qc.rx(q, t); break;
      case 3: qc.rz(q, t); break;
      case 4: qc.cx(q, q2); break;
      case 5: qc.rzz(q, q2, t); break;
      case 6: qc.cz(q, q2); break;
      default: qc.ry(q, t); break;
    }
  }
  return qc;
}

// ------------------------------------------------------------- IR basics ----

TEST(Circuit, EmittersAndValidation) {
  Circuit qc(3);
  qc.h(0).cx(0, 1).rzz(1, 2, 0.5).barrier().rx(2, 1.0);
  EXPECT_EQ(qc.size(), 5u);
  EXPECT_THROW(qc.h(3), std::out_of_range);
  EXPECT_THROW(qc.cx(1, 1), std::invalid_argument);
  EXPECT_THROW(Circuit(-1), std::invalid_argument);
}

TEST(Circuit, StatsCountsAndDepth) {
  Circuit qc(3);
  qc.h(0).h(1).h(2);        // one layer of 1q gates
  qc.cx(0, 1);              // layer 2
  qc.cx(1, 2);              // layer 3 (shares qubit 1)
  const CircuitStats s = qc.stats();
  EXPECT_EQ(s.total_gates, 5u);
  EXPECT_EQ(s.two_qubit_gates, 2u);
  EXPECT_EQ(s.depth, 3);
  EXPECT_EQ(s.depth_2q, 2);
}

TEST(Circuit, DisjointTwoQubitGatesShareALayer) {
  Circuit qc(4);
  qc.cx(0, 1).cx(2, 3);
  EXPECT_EQ(qc.stats().depth, 1);
}

TEST(Circuit, BarrierForcesSequencing) {
  Circuit a(2), b(2);
  a.h(0).h(1);                 // parallel -> depth 1
  b.h(0).barrier().h(1);       // fenced  -> depth 2
  EXPECT_EQ(a.stats().depth, 1);
  EXPECT_EQ(b.stats().depth, 2);
}

TEST(Circuit, AppendCircuit) {
  Circuit a(2);
  a.h(0);
  Circuit b(2);
  b.cx(0, 1);
  a.append(b);
  EXPECT_EQ(a.size(), 2u);
  Circuit wide(3);
  EXPECT_THROW(wide.append(Circuit(4)), std::invalid_argument);
}

TEST(Circuit, StrDumpMentionsGates) {
  Circuit qc(2);
  qc.h(0).rzz(0, 1, 0.25);
  const std::string s = qc.str();
  EXPECT_NE(s.find("h q0"), std::string::npos);
  EXPECT_NE(s.find("rzz q0, q1"), std::string::npos);
}

// ---------------------------------------------------------------- ansatz ----

TEST(Ansatz, GateCountsMatchFormula) {
  util::Rng rng(3);
  const auto g = graph::erdos_renyi(6, 0.5, rng);
  QaoaAngles angles;
  angles.gammas = {0.1, 0.2, 0.3};
  angles.betas = {0.4, 0.5, 0.6};
  const Circuit qc = qaoa_ansatz(g, angles);
  // n Hadamards + p*(|E| RZZ + n RX)
  const std::size_t expected = 6 + 3 * (g.num_edges() + 6);
  EXPECT_EQ(qc.size(), expected);
  EXPECT_EQ(qc.stats().two_qubit_gates, 3 * g.num_edges());
}

TEST(Ansatz, LayerMismatchThrows) {
  QaoaAngles bad;
  bad.gammas = {0.1};
  bad.betas = {0.1, 0.2};
  EXPECT_THROW(qaoa_ansatz(graph::cycle_graph(4), bad), std::invalid_argument);
}

TEST(Ansatz, PackUnpackRoundTrip) {
  QaoaAngles angles;
  angles.gammas = {0.1, 0.2};
  angles.betas = {0.3, 0.4};
  const auto packed = pack_angles(angles);
  EXPECT_EQ(packed, (std::vector<double>{0.1, 0.2, 0.3, 0.4}));
  const QaoaAngles back = unpack_angles(packed);
  EXPECT_EQ(back.gammas, angles.gammas);
  EXPECT_EQ(back.betas, angles.betas);
  EXPECT_THROW(unpack_angles({1.0, 2.0, 3.0}), std::invalid_argument);
}

// ---------------------------------------------------------------- passes ----

TEST(Passes, MergeRotationsFusesRuns) {
  Circuit qc(2);
  qc.rz(0, 0.1).rz(0, 0.2).rx(1, 0.3).rz(0, 0.4);
  const Circuit out = merge_rotations(qc);
  // rz(0) run of two fuses; the rx on q1 does not block q0's run, but the
  // final rz(0, 0.4) is adjacent to the fused rz as well.
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out.gates()[0].kind, GateKind::kRz);
  EXPECT_NEAR(out.gates()[0].param, 0.7, 1e-12);
}

TEST(Passes, MergeRotationsStopsAtInterposedGate) {
  Circuit qc(1);
  qc.rz(0, 0.1).h(0).rz(0, 0.2);
  EXPECT_EQ(merge_rotations(qc).size(), 3u);
}

TEST(Passes, MergeRzzUsesUnorderedPair) {
  Circuit qc(2);
  qc.rzz(0, 1, 0.3);
  qc.rzz(1, 0, 0.4);
  const Circuit out = merge_rotations(qc);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_NEAR(out.gates()[0].param, 0.7, 1e-12);
}

TEST(Passes, DropIdentitiesRemovesFullTurns) {
  Circuit qc(1);
  qc.rz(0, 2.0 * std::numbers::pi).rx(0, 0.5).ry(0, -4.0 * std::numbers::pi);
  const Circuit out = drop_identities(qc);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out.gates()[0].kind, GateKind::kRx);
}

TEST(Passes, CancelPairsRemovesAdjacentInverses) {
  Circuit qc(2);
  qc.h(0).h(0).cx(0, 1).cx(0, 1).x(1).x(1).h(1);
  const Circuit out = cancel_pairs(qc);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out.gates()[0].kind, GateKind::kH);
  EXPECT_EQ(out.gates()[0].q0, 1);
}

TEST(Passes, CancelPairsHandlesChains) {
  Circuit qc(1);
  qc.h(0).h(0).h(0).h(0);  // even chain collapses entirely
  EXPECT_EQ(cancel_pairs(qc).size(), 0u);
  Circuit odd(1);
  odd.h(0).h(0).h(0);
  EXPECT_EQ(cancel_pairs(odd).size(), 1u);
}

TEST(Passes, CancelPairsRespectsInterposedGates) {
  Circuit qc(2);
  qc.cx(0, 1).x(1).cx(0, 1);  // X on target blocks cancellation
  EXPECT_EQ(cancel_pairs(qc).size(), 3u);
}

TEST(Passes, ScheduleReducesCostLayerDepth) {
  // Ring cost layer in sequential edge order has depth ~n; colouring packs
  // disjoint pairs together.
  const auto ring = graph::cycle_graph(8);
  QaoaAngles angles;
  angles.gammas = {0.3};
  angles.betas = {0.2};
  const Circuit naive = qaoa_ansatz(ring, angles);
  const Circuit scheduled = schedule_commuting_rzz(naive);
  EXPECT_LT(scheduled.stats().depth_2q, naive.stats().depth_2q);
  // An even ring is 2-edge-colourable.
  EXPECT_EQ(scheduled.stats().depth_2q, 2);
}

TEST(Passes, TranspileLowersToCxBasis) {
  Circuit qc(2);
  qc.rzz(0, 1, 0.7).cz(0, 1).swap(0, 1);
  const Circuit out = transpile_to_cx_basis(qc);
  for (const Gate& g : out.gates()) {
    EXPECT_TRUE(!is_two_qubit(g.kind) || g.kind == GateKind::kCx)
        << gate_name(g.kind);
  }
  EXPECT_EQ(out.stats().two_qubit_gates, 2u + 1u + 3u);
}

class PassEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(PassEquivalence, AllPassesPreserveStateUpToGlobalPhase) {
  const int seed = GetParam();
  const Circuit qc = random_circuit(4, 60, static_cast<std::uint64_t>(seed));
  sim::StateVector base(4);
  base = run(qc);
  const auto check = [&base](const Circuit& variant, const char* label) {
    const sim::StateVector out = run(variant);
    EXPECT_NEAR(overlap(base, out), 1.0, 1e-9) << label;
  };
  check(merge_rotations(qc), "merge_rotations");
  check(drop_identities(qc), "drop_identities");
  check(cancel_pairs(qc), "cancel_pairs");
  check(schedule_commuting_rzz(qc), "schedule_commuting_rzz");
  check(transpile_to_cx_basis(qc), "transpile_to_cx_basis");
  check(synthesize(qc), "synthesize");
  check(transpile_to_cx_basis(synthesize(qc)), "synthesize+transpile");
}

INSTANTIATE_TEST_SUITE_P(Seeds, PassEquivalence, ::testing::Range(0, 10));

TEST(Passes, SynthesizeNeverIncreasesGateCountOnAnsatz) {
  util::Rng rng(17);
  const auto g = graph::erdos_renyi(7, 0.45, rng);
  QaoaAngles angles;
  angles.gammas = {0.3, 0.5};
  angles.betas = {0.2, 0.1};
  const Circuit naive = qaoa_ansatz(g, angles);
  const Circuit opt = synthesize(naive);
  EXPECT_LE(opt.size(), naive.size());
  EXPECT_LE(opt.stats().depth_2q, naive.stats().depth_2q);
}

// --------------------------------------------------------------- execute ----

TEST(Execute, AnsatzFromCircuitMatchesKnownTwoQubitState) {
  // Single edge, p=1: amplitudes can be written in closed form.
  graph::Graph g(2);
  g.add_edge(0, 1, 1.0);
  QaoaAngles angles;
  angles.gammas = {0.9};
  angles.betas = {0.4};
  const Circuit qc = qaoa_ansatz(g, angles);
  const sim::StateVector sv = run(qc);
  EXPECT_NEAR(sv.norm_squared(), 1.0, 1e-10);
  // Symmetry: P(01) == P(10) and P(00) == P(11) for a single edge.
  const auto probs = sim::probabilities(sv);
  EXPECT_NEAR(probs[1], probs[2], 1e-10);
  EXPECT_NEAR(probs[0], probs[3], 1e-10);
}

TEST(Execute, QubitCountMismatchThrows) {
  Circuit qc(3);
  sim::StateVector sv(2);
  EXPECT_THROW(apply(qc, sv), std::invalid_argument);
}

}  // namespace
}  // namespace qq::circuit
