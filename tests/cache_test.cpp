// Tests for the fleet-wide solve cache (src/cache): canonical
// fingerprinting (isomorphism invariance, near-miss separation, collision
// sweep, permutation round-trips), SolveCache semantics (hit/miss/
// readonly/off, in-flight coalescing, exactly-once fill under a 16-thread
// hammer, bounded capacity with LRU and cost-aware eviction, budget-
// truncated results never inserted), warm-start transfer, and the
// cache-on == cache-off bit-parity of the QAOA^2 and service layers.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <numeric>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "cache/fingerprint.hpp"
#include "cache/solve_cache.hpp"
#include "cache/warm_start.hpp"
#include "maxcut/cut.hpp"
#include "ml/features.hpp"
#include "qaoa2/qaoa2.hpp"
#include "qgraph/generators.hpp"
#include "qgraph/graph.hpp"
#include "service/service.hpp"
#include "solver/registry.hpp"
#include "solver/solver.hpp"
#include "util/rng.hpp"

namespace qq::cache {
namespace {

using graph::Graph;
using graph::NodeId;

// ------------------------------------------------------------ helpers ----

std::vector<NodeId> random_permutation(std::size_t n, std::uint64_t seed) {
  std::vector<NodeId> perm(n);
  std::iota(perm.begin(), perm.end(), NodeId{0});
  util::Rng rng(seed);
  for (std::size_t i = n; i > 1; --i) {
    std::swap(perm[i - 1], perm[util::uniform_u64(rng, i)]);
  }
  return perm;
}

Graph permuted(const Graph& g, const std::vector<NodeId>& perm) {
  Graph h(g.num_nodes());
  for (const graph::Edge& e : g.edges()) {
    h.add_edge(perm[static_cast<std::size_t>(e.u)],
               perm[static_cast<std::size_t>(e.v)], e.w);
  }
  return h;
}

/// Deterministic counting backend: remembers how many times do_solve ran
/// (the exactly-once probes) and derives its cut from the seed so distinct
/// seeds produce distinct, recount-consistent results.
class CountingSolver final : public solver::Solver {
 public:
  explicit CountingSolver(double fill_ms = 0.0) : fill_ms_(fill_ms) {}

  std::string_view name() const noexcept override { return "counting"; }
  sched::ResourceKind resource_kind() const noexcept override {
    return sched::ResourceKind::kClassical;
  }
  int solves() const noexcept {
    return solves_.load(std::memory_order_relaxed);
  }

 protected:
  solver::SolveReport do_solve(
      const solver::SolveRequest& request) const override {
    solves_.fetch_add(1, std::memory_order_relaxed);
    if (fill_ms_ > 0.0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(fill_ms_));
    }
    solver::SolveReport report;
    const auto n = static_cast<std::size_t>(request.graph->num_nodes());
    report.cut.assignment.resize(n);
    util::Rng rng(request.seed);
    for (std::size_t i = 0; i < n; ++i) {
      report.cut.assignment[i] =
          static_cast<std::uint8_t>(util::uniform_u64(rng, 2));
    }
    report.cut.value =
        maxcut::cut_value(*request.graph, report.cut.assignment);
    report.evaluations = 1;
    return report;
  }

 private:
  double fill_ms_;
  mutable std::atomic<int> solves_{0};
};

// -------------------------------------------------------- fingerprint ----

TEST(Fingerprint, PermutedCopiesShareKeyOnStructuredFamilies) {
  util::Rng rng(7);
  std::vector<Graph> graphs;
  graphs.push_back(graph::cycle_graph(9));
  graphs.push_back(graph::complete_graph(7));
  graphs.push_back(graph::star_graph(10));
  graphs.push_back(graph::grid_2d(3, 4));
  graphs.push_back(graph::barbell_graph(4, 2));
  graphs.push_back(
      graph::erdos_renyi(14, 0.35, rng, graph::WeightMode::kUniform01));
  for (std::size_t gi = 0; gi < graphs.size(); ++gi) {
    const Graph& g = graphs[gi];
    const Fingerprint fg = fingerprint_graph(g);
    ASSERT_TRUE(fg.canonical) << "graph " << gi;
    for (std::uint64_t s = 1; s <= 4; ++s) {
      const auto perm =
          random_permutation(static_cast<std::size_t>(g.num_nodes()),
                             0x5eed0000 + 16 * gi + s);
      const Fingerprint fh = fingerprint_graph(permuted(g, perm));
      ASSERT_TRUE(fh.canonical) << "graph " << gi << " perm " << s;
      EXPECT_EQ(fg.key, fh.key) << "graph " << gi << " perm " << s;
      EXPECT_EQ(fg.digest, fh.digest);
      EXPECT_TRUE(same_canonical_graph(fg, fh));
    }
  }
}

TEST(Fingerprint, NearMissPairsHashApart) {
  util::Rng rng(11);
  const Graph g = graph::erdos_renyi(12, 0.4, rng);
  const Fingerprint fg = fingerprint_graph(g);

  // One weight flipped.
  Graph weight_flip(g.num_nodes());
  bool flipped = false;
  for (const graph::Edge& e : g.edges()) {
    double w = e.w;
    if (!flipped) {
      w = -w;
      flipped = true;
    }
    weight_flip.add_edge(e.u, e.v, w);
  }
  ASSERT_TRUE(flipped);
  const Fingerprint ff = fingerprint_graph(weight_flip);
  EXPECT_FALSE(same_canonical_graph(fg, ff));
  EXPECT_NE(fg.key ^ fg.digest, ff.key ^ ff.digest);

  // One edge moved to a previously absent slot.
  Graph edge_move(g.num_nodes());
  std::vector<std::vector<bool>> present(
      static_cast<std::size_t>(g.num_nodes()),
      std::vector<bool>(static_cast<std::size_t>(g.num_nodes()), false));
  for (const graph::Edge& e : g.edges()) {
    present[static_cast<std::size_t>(e.u)][static_cast<std::size_t>(e.v)] =
        true;
    present[static_cast<std::size_t>(e.v)][static_cast<std::size_t>(e.u)] =
        true;
  }
  NodeId free_u = 0, free_v = 0;
  for (NodeId u = 0; u < g.num_nodes() && free_v == 0; ++u) {
    for (NodeId v = u + 1; v < g.num_nodes(); ++v) {
      if (!present[static_cast<std::size_t>(u)][static_cast<std::size_t>(v)]) {
        free_u = u;
        free_v = v;
        break;
      }
    }
  }
  ASSERT_NE(free_v, 0) << "graph unexpectedly complete";
  bool moved = false;
  for (const graph::Edge& e : g.edges()) {
    if (!moved) {
      edge_move.add_edge(free_u, free_v, e.w);
      moved = true;
      continue;
    }
    edge_move.add_edge(e.u, e.v, e.w);
  }
  const Fingerprint fm = fingerprint_graph(edge_move);
  EXPECT_FALSE(same_canonical_graph(fg, fm));
  EXPECT_NE(fg.key, fm.key);
}

TEST(Fingerprint, ZeroWeightSignsNormalize) {
  EXPECT_EQ(weight_bits(0.0), weight_bits(-0.0));
  EXPECT_NE(weight_bits(1.0), weight_bits(-1.0));
}

TEST(Fingerprint, CollisionSweepTenThousandGraphsIsClean) {
  // 10k seeded random graphs: distinct canonical forms must never share
  // (key, digest) — the pair the cache's bucket lookup rides on.
  util::Rng rng(0xc0111dedULL);
  std::unordered_map<std::uint64_t, Fingerprint> seen;
  int checked = 0;
  for (int i = 0; i < 10000; ++i) {
    const NodeId n = static_cast<NodeId>(4 + util::uniform_u64(rng, 15));
    const double p = 0.15 + 0.7 * util::uniform(rng);
    const auto mode = (i % 2 == 0) ? graph::WeightMode::kUnit
                                   : graph::WeightMode::kUniform01;
    const Graph g = graph::erdos_renyi(n, p, rng, mode);
    Fingerprint fp = fingerprint_graph(g);
    const std::uint64_t combined = fp.key ^ (fp.digest * 0x9e3779b97f4a7c15ULL);
    const auto it = seen.find(combined);
    if (it != seen.end()) {
      // Equal combined bits: the canonical forms must be identical (the
      // graphs are isomorphic), otherwise it's a real collision.
      EXPECT_TRUE(same_canonical_graph(it->second, fp))
          << "collision at sweep index " << i;
    } else {
      seen.emplace(combined, std::move(fp));
    }
    ++checked;
  }
  EXPECT_EQ(checked, 10000);
  // The sweep must have produced a healthy variety, not one degenerate key
  // (small unit-weight graphs repeat isomorphism classes, so < 10000).
  EXPECT_GT(seen.size(), 8000u);
}

TEST(Fingerprint, AssignmentPermutationRoundTrips) {
  util::Rng rng(23);
  const Graph g = graph::erdos_renyi(13, 0.45, rng,
                                     graph::WeightMode::kUniform01);
  const Fingerprint fp = fingerprint_graph(g);
  maxcut::Assignment original(static_cast<std::size_t>(g.num_nodes()));
  for (std::size_t i = 0; i < original.size(); ++i) {
    original[i] = static_cast<std::uint8_t>(util::uniform_u64(rng, 2));
  }
  const maxcut::Assignment canonical = to_canonical(fp, original);
  EXPECT_EQ(from_canonical(fp, canonical), original);

  // The same CANONICAL assignment pushed through an isomorphic copy's
  // fingerprint must recount to the same value on the copy.
  const auto perm =
      random_permutation(static_cast<std::size_t>(g.num_nodes()), 99);
  const Graph h = permuted(g, perm);
  const Fingerprint fh = fingerprint_graph(h);
  ASSERT_TRUE(fp.canonical && fh.canonical);
  ASSERT_TRUE(same_canonical_graph(fp, fh));
  const maxcut::Assignment on_h = from_canonical(fh, canonical);
  EXPECT_NEAR(maxcut::cut_value(h, on_h), maxcut::cut_value(g, original),
              1e-9);
}

// --------------------------------------------------------- SolveCache ----

solver::SolveRequest request_for(const Graph& g, std::uint64_t seed) {
  solver::SolveRequest r;
  r.graph = &g;
  r.seed = seed;
  return r;
}

TEST(SolveCache, MissThenHitIsBitIdentical) {
  util::Rng rng(31);
  const Graph g = graph::erdos_renyi(12, 0.4, rng);
  CountingSolver solver;
  SolveCache cache;

  const solver::SolveReport cold =
      cache.solve_through(solver, request_for(g, 5), "counting");
  EXPECT_EQ(solver.solves(), 1);
  const solver::SolveReport warm =
      cache.solve_through(solver, request_for(g, 5), "counting");
  EXPECT_EQ(solver.solves(), 1) << "hit must not re-solve";
  EXPECT_EQ(warm.cut.value, cold.cut.value);
  EXPECT_EQ(warm.cut.assignment, cold.cut.assignment);
  EXPECT_EQ(warm.evaluations, cold.evaluations);
  EXPECT_EQ(warm.metric("cache_hit", 0.0), 1.0);
  EXPECT_EQ(cold.metric("cache_hit", 0.0), 0.0);

  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.inserts, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.in_flight, 0u);
}

TEST(SolveCache, SeedSensitiveKeysSeparateSeeds) {
  util::Rng rng(37);
  const Graph g = graph::erdos_renyi(10, 0.5, rng);
  CountingSolver solver;
  SolveCache cache;
  const auto a = cache.solve_through(solver, request_for(g, 1), "counting");
  const auto b = cache.solve_through(solver, request_for(g, 2), "counting");
  EXPECT_EQ(solver.solves(), 2) << "distinct seeds are distinct entries";
  EXPECT_EQ(a.cut.value, maxcut::cut_value(g, a.cut.assignment));
  EXPECT_EQ(b.cut.value, maxcut::cut_value(g, b.cut.assignment));

  // Seed-insensitive cache shares one entry across seeds.
  CacheOptions shared_opts;
  shared_opts.seed_sensitive = false;
  SolveCache shared(shared_opts);
  CountingSolver solver2;
  shared.solve_through(solver2, request_for(g, 1), "counting");
  shared.solve_through(solver2, request_for(g, 2), "counting");
  EXPECT_EQ(solver2.solves(), 1);
  EXPECT_EQ(shared.stats().hits, 1u);
}

TEST(SolveCache, SolverKeySeparatesConfigurations) {
  util::Rng rng(41);
  const Graph g = graph::erdos_renyi(10, 0.5, rng);
  CountingSolver solver;
  SolveCache cache;
  cache.solve_through(solver, request_for(g, 3), "counting:a");
  cache.solve_through(solver, request_for(g, 3), "counting:b");
  EXPECT_EQ(solver.solves(), 2);
  cache.solve_through(solver, request_for(g, 3), "counting:a");
  EXPECT_EQ(solver.solves(), 2);
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(SolveCache, IsomorphicRequestsShareOneEntry) {
  util::Rng rng(43);
  const Graph g = graph::erdos_renyi(12, 0.4, rng,
                                     graph::WeightMode::kUniform01);
  const auto perm =
      random_permutation(static_cast<std::size_t>(g.num_nodes()), 7);
  const Graph h = permuted(g, perm);
  ASSERT_TRUE(fingerprint_graph(g).canonical);
  ASSERT_TRUE(fingerprint_graph(h).canonical);

  CountingSolver solver;
  SolveCache cache;
  const auto on_g = cache.solve_through(solver, request_for(g, 9), "counting");
  const auto on_h = cache.solve_through(solver, request_for(h, 9), "counting");
  EXPECT_EQ(solver.solves(), 1) << "isomorphic copy must hit";
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(on_h.cut.value, on_g.cut.value);
  // The mapped assignment is a real cut of h with the cached value.
  EXPECT_NEAR(maxcut::cut_value(h, on_h.cut.assignment), on_h.cut.value,
              1e-9);
}

TEST(SolveCache, OffAndReadOnlyModes) {
  util::Rng rng(47);
  const Graph g = graph::erdos_renyi(10, 0.5, rng);
  CountingSolver solver;
  SolveCache cache;

  CachePolicy off;
  off.mode = CacheMode::kOff;
  cache.solve_through(solver, request_for(g, 1), "counting", off);
  cache.solve_through(solver, request_for(g, 1), "counting", off);
  EXPECT_EQ(solver.solves(), 2);
  EXPECT_EQ(cache.stats().misses, 0u) << "kOff never touches the cache";
  EXPECT_EQ(cache.stats().entries, 0u);

  CachePolicy readonly;
  readonly.mode = CacheMode::kReadOnly;
  cache.solve_through(solver, request_for(g, 1), "counting", readonly);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().entries, 0u) << "readonly misses never insert";

  // Fill through kOn, then readonly must hit.
  cache.solve_through(solver, request_for(g, 1), "counting");
  const int before = solver.solves();
  cache.solve_through(solver, request_for(g, 1), "counting", readonly);
  EXPECT_EQ(solver.solves(), before);
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(SolveCache, TrivialGraphsBypass) {
  CountingSolver solver;
  SolveCache cache;
  Graph empty(3);  // no edges
  const auto r = cache.solve_through(solver, request_for(empty, 1), "counting");
  EXPECT_EQ(r.cut.value, 0.0);
  EXPECT_EQ(solver.solves(), 0) << "Solver base guard answers trivial graphs";
  EXPECT_EQ(cache.stats().misses, 0u);
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(SolveCache, BudgetTruncatedResultsAreNotInserted) {
  util::Rng rng(53);
  const Graph g = graph::erdos_renyi(10, 0.5, rng);
  CountingSolver solver;
  SolveCache cache;
  solver::SolveRequest budgeted = request_for(g, 1);
  budgeted.eval_budget = 1;
  cache.solve_through(solver, budgeted, "counting");
  EXPECT_EQ(cache.stats().uncacheable, 1u);
  EXPECT_EQ(cache.stats().entries, 0u);
  // The budget-less request must solve cold, not consume a poisoned entry.
  cache.solve_through(solver, request_for(g, 1), "counting");
  EXPECT_EQ(solver.solves(), 2);
  EXPECT_EQ(cache.stats().inserts, 1u);
}

TEST(SolveCache, CapacityIsBoundedWithLruEviction) {
  CacheOptions opts;
  opts.shards = 1;
  opts.capacity = 3;
  opts.cost_weight = 0.0;  // plain LRU
  SolveCache cache(opts);
  CountingSolver solver;

  util::Rng rng(59);
  std::vector<Graph> graphs;
  for (int i = 0; i < 4; ++i) {
    graphs.push_back(graph::erdos_renyi(8 + 2 * i, 0.6, rng));
  }
  for (int i = 0; i < 3; ++i) {
    cache.solve_through(solver, request_for(graphs[0 + i], 1), "counting");
  }
  EXPECT_EQ(cache.stats().entries, 3u);
  // Touch graph 0 so graph 1 is the LRU victim, then overflow.
  cache.solve_through(solver, request_for(graphs[0], 1), "counting");
  cache.solve_through(solver, request_for(graphs[3], 1), "counting");
  EXPECT_EQ(cache.stats().entries, 3u);
  EXPECT_EQ(cache.stats().evictions, 1u);

  const int before = solver.solves();
  cache.solve_through(solver, request_for(graphs[0], 1), "counting");
  EXPECT_EQ(solver.solves(), before) << "recently-touched entry survived";
  cache.solve_through(solver, request_for(graphs[1], 1), "counting");
  EXPECT_EQ(solver.solves(), before + 1) << "LRU entry was evicted";
}

TEST(SolveCache, CostAwareEvictionPrefersCheapVictims) {
  CacheOptions opts;
  opts.shards = 1;
  opts.capacity = 2;
  opts.cost_weight = 1000.0;  // fill cost dominates recency
  SolveCache cache(opts);

  util::Rng rng(61);
  const Graph expensive_g = graph::erdos_renyi(10, 0.6, rng);
  const Graph cheap_g = graph::erdos_renyi(12, 0.6, rng);
  const Graph newcomer = graph::erdos_renyi(14, 0.6, rng);

  CountingSolver expensive(/*fill_ms=*/30.0);
  CountingSolver cheap(/*fill_ms=*/0.0);
  cache.solve_through(expensive, request_for(expensive_g, 1), "counting");
  cache.solve_through(cheap, request_for(cheap_g, 1), "counting");
  // Overflow: the cheap fill should be the victim despite being fresher.
  cache.solve_through(cheap, request_for(newcomer, 1), "counting");
  EXPECT_EQ(cache.stats().evictions, 1u);

  const int before = expensive.solves();
  cache.solve_through(expensive, request_for(expensive_g, 1), "counting");
  EXPECT_EQ(expensive.solves(), before)
      << "expensive fill must survive cost-aware eviction";
}

TEST(SolveCache, ClearDropsEntriesButKeepsCounters) {
  util::Rng rng(67);
  const Graph g = graph::erdos_renyi(10, 0.5, rng);
  CountingSolver solver;
  SolveCache cache;
  cache.solve_through(solver, request_for(g, 1), "counting");
  cache.solve_through(solver, request_for(g, 1), "counting");
  EXPECT_EQ(cache.stats().hits, 1u);
  cache.clear();
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().hits, 1u);
  cache.solve_through(solver, request_for(g, 1), "counting");
  EXPECT_EQ(solver.solves(), 2) << "cleared entry refills";
}

TEST(SolveCache, PerClassCountersAttribute) {
  util::Rng rng(71);
  const Graph g = graph::erdos_renyi(10, 0.5, rng);
  CountingSolver solver;
  SolveCache cache;
  const int tenant_a = cache.register_class("tenant-a");
  const int tenant_b = cache.register_class("tenant-b");
  ASSERT_GE(tenant_a, 0);
  ASSERT_GE(tenant_b, 0);

  CachePolicy pa;
  pa.class_id = tenant_a;
  CachePolicy pb;
  pb.class_id = tenant_b;
  cache.solve_through(solver, request_for(g, 1), "counting", pa);  // miss
  cache.solve_through(solver, request_for(g, 1), "counting", pb);  // hit
  const auto classes = cache.class_stats();
  ASSERT_EQ(classes.size(), 2u);
  EXPECT_EQ(classes[static_cast<std::size_t>(tenant_a)].name, "tenant-a");
  EXPECT_EQ(classes[static_cast<std::size_t>(tenant_a)].misses, 1u);
  EXPECT_EQ(classes[static_cast<std::size_t>(tenant_a)].hits, 0u);
  EXPECT_EQ(classes[static_cast<std::size_t>(tenant_b)].hits, 1u);
  EXPECT_EQ(classes[static_cast<std::size_t>(tenant_b)].misses, 0u);
}

TEST(SolveCache, SixteenThreadHammerFillsExactlyOnce) {
  // 16 threads race the same (graph, seed, key) request through one cache:
  // the backend must run exactly once, every thread must observe the
  // identical report, and hits + coalesced + misses must balance.
  util::Rng rng(73);
  const Graph g = graph::erdos_renyi(14, 0.4, rng,
                                     graph::WeightMode::kUniform01);
  CountingSolver solver(/*fill_ms=*/20.0);
  SolveCache cache;

  constexpr int kThreads = 16;
  std::vector<solver::SolveReport> reports(kThreads);
  std::atomic<int> ready{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      ready.fetch_add(1);
      while (ready.load() < kThreads) std::this_thread::yield();
      reports[static_cast<std::size_t>(t)] =
          cache.solve_through(solver, request_for(g, 5), "counting");
    });
  }
  for (std::thread& th : threads) th.join();

  EXPECT_EQ(solver.solves(), 1) << "concurrent misses must coalesce";
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(reports[static_cast<std::size_t>(t)].cut.value,
              reports[0].cut.value);
    EXPECT_EQ(reports[static_cast<std::size_t>(t)].cut.assignment,
              reports[0].cut.assignment);
  }
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.inserts, 1u);
  // Every non-filling thread is served from the cache; `coalesced`
  // additionally counts the subset that had to wait on the in-flight fill.
  EXPECT_EQ(stats.hits, kThreads - 1u);
  EXPECT_LE(stats.coalesced, stats.hits);
  EXPECT_EQ(stats.in_flight, 0u);
}

TEST(SolveCache, HammerAcrossManyKeysStaysExactlyOncePerKey) {
  util::Rng rng(79);
  constexpr int kGraphs = 8;
  constexpr int kThreads = 16;
  std::vector<Graph> graphs;
  for (int i = 0; i < kGraphs; ++i) {
    graphs.push_back(graph::erdos_renyi(10 + i, 0.5, rng));
  }
  CountingSolver solver(/*fill_ms=*/2.0);
  SolveCache cache;

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < 3; ++round) {
        for (int i = 0; i < kGraphs; ++i) {
          const int idx = (i + t) % kGraphs;
          cache.solve_through(
              solver, request_for(graphs[static_cast<std::size_t>(idx)], 1),
              "counting");
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(solver.solves(), kGraphs) << "one fill per distinct key";
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.misses, static_cast<std::uint64_t>(kGraphs));
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<std::uint64_t>(kThreads) * 3u * kGraphs);
}

// ---------------------------------------------------------- warm start ----

TEST(WarmStart, TransferGrowsAndShrinksSchedules) {
  const std::vector<double> p2 = {0.1, 0.3, 0.8, 0.4};  // [g1,g2,b1,b2]
  const std::vector<double> grown = transfer_parameters(p2, 4);
  ASSERT_EQ(grown.size(), 8u);
  const std::vector<double> shrunk = transfer_parameters(grown, 2);
  ASSERT_EQ(shrunk.size(), 4u);
  // Endpoints survive both directions of the reshape.
  EXPECT_NEAR(shrunk[0], p2[0], 1e-9);
  EXPECT_NEAR(shrunk[1], p2[1], 1e-9);
  EXPECT_EQ(transfer_parameters(p2, 2), p2) << "same depth is identity";
  EXPECT_TRUE(transfer_parameters({0.1, 0.2, 0.3}, 2).empty())
      << "odd-sized input is rejected";
  EXPECT_TRUE(transfer_parameters(p2, 0).empty());
}

TEST(WarmStart, AdvisorPredictsFromRecordedObservations) {
  WarmStartAdvisor advisor;
  util::Rng rng(83);
  EXPECT_TRUE(advisor
                  .predict(ml::graph_features(graph::cycle_graph(8)), 2)
                  .empty())
      << "empty advisor must predict nothing";
  for (int i = 0; i < 8; ++i) {
    const Graph g = graph::erdos_renyi(10 + i, 0.5, rng);
    advisor.record(ml::graph_features(g), 2, {0.1, 0.2, 0.3, 0.4},
                   static_cast<double>(i));
  }
  EXPECT_EQ(advisor.size(), 8u);
  const Graph probe = graph::erdos_renyi(12, 0.5, rng);
  const std::vector<double> at_depth2 =
      advisor.predict(ml::graph_features(probe), 2);
  ASSERT_EQ(at_depth2.size(), 4u);
  const std::vector<double> at_depth3 =
      advisor.predict(ml::graph_features(probe), 3);
  ASSERT_EQ(at_depth3.size(), 6u) << "schedule transferred to target depth";
}

TEST(WarmStart, CacheMissConsultsAdvisorForQaoaBackend) {
  util::Rng rng(89);
  const Graph g = graph::erdos_renyi(10, 0.5, rng);
  SolveCache cache;
  const solver::SolverPtr qaoa =
      solver::SolverRegistry::global().make("qaoa:p=1,iters=6,shots=64");
  ASSERT_EQ(qaoa->warm_start_dimension(), 2);

  // Prime the advisor with one observation so predict() has material.
  cache.advisor().record(ml::graph_features(g), 1, {0.4, 0.7}, 1.0);
  CachePolicy warm;
  warm.warm_start = true;
  const solver::SolveReport report = cache.solve_through(
      *qaoa, request_for(g, 3), "qaoa:p=1,iters=6,shots=64", warm);
  EXPECT_EQ(cache.stats().warm_starts, 1u);
  EXPECT_EQ(report.cut.value, maxcut::cut_value(g, report.cut.assignment));
  // Fills that carry optimized parameters feed the advisor back.
  EXPECT_GE(cache.advisor().size(), 2u);
}

// ------------------------------------------------- pipeline bit parity ----

TEST(CacheParity, Qaoa2CacheOnEqualsCacheOff) {
  util::Rng rng(97);
  const Graph g = graph::erdos_renyi(26, 0.25, rng,
                                     graph::WeightMode::kUniform01);
  qaoa2::Qaoa2Options opts;
  opts.max_qubits = 8;
  opts.qaoa.layers = 1;
  opts.qaoa.max_iterations = 8;
  opts.qaoa.shots = 64;
  opts.gw.slicings = 4;
  opts.seed = 12345;

  const qaoa2::Qaoa2Result uncached = qaoa2::solve_qaoa2(g, opts);

  SolveCache cache;
  opts.solve_cache = &cache;
  const qaoa2::Qaoa2Result cold = qaoa2::solve_qaoa2(g, opts);
  EXPECT_EQ(cold.cut.value, uncached.cut.value);
  EXPECT_EQ(cold.cut.assignment, uncached.cut.assignment);
  EXPECT_GT(cache.stats().misses, 0u);

  const qaoa2::Qaoa2Result warm = qaoa2::solve_qaoa2(g, opts);
  EXPECT_EQ(warm.cut.value, uncached.cut.value);
  EXPECT_EQ(warm.cut.assignment, uncached.cut.assignment);
  EXPECT_GT(cache.stats().hits, 0u) << "identical rerun must hit";
}

TEST(CacheParity, ServiceCachedEqualsServiceUncached) {
  util::Rng rng(101);
  const Graph g = graph::erdos_renyi(20, 0.3, rng);

  const auto run = [&](bool cached) {
    service::ServiceOptions sopts;
    if (!cached) sopts.cache.reset();
    service::SolveService service(sopts);
    service::ServiceRequest req;
    req.graph = g;
    req.solver_spec = "gw:rounds=4";
    req.seed = 7;
    req.max_qubits = 8;
    const service::RequestTicket a = service.submit(req);
    const service::RequestTicket b = service.submit(req);
    service.wait(a);
    service.wait(b);
    EXPECT_EQ(a.outcome().status, service::RequestStatus::kCompleted);
    EXPECT_EQ(b.outcome().status, service::RequestStatus::kCompleted);
    EXPECT_EQ(a.outcome().cut.value, b.outcome().cut.value);
    const service::ServiceStats stats = service.stats();
    EXPECT_EQ(stats.cache_enabled, cached);
    if (cached) {
      EXPECT_GT(stats.cache.hits + stats.cache.coalesced, 0u)
          << "the repeated request must share the first one's fills";
      EXPECT_FALSE(service::render_stats(stats).find("cache:") ==
                   std::string::npos);
    }
    return a.outcome().cut;
  };

  const maxcut::CutResult cached = run(true);
  const maxcut::CutResult uncached = run(false);
  EXPECT_EQ(cached.value, uncached.value);
  EXPECT_EQ(cached.assignment, uncached.assignment);
}

TEST(CacheParity, ServiceRequestCacheModeOffBypasses) {
  util::Rng rng(103);
  service::ServiceOptions sopts;
  service::SolveService service(sopts);
  service::ServiceRequest req;
  req.graph = graph::erdos_renyi(14, 0.4, rng);
  req.solver_spec = "gw:rounds=4";
  req.seed = 3;
  req.max_qubits = 8;
  req.cache_mode = CacheMode::kOff;
  const service::RequestTicket t = service.submit(req);
  service.wait(t);
  EXPECT_EQ(t.outcome().status, service::RequestStatus::kCompleted);
  const service::ServiceStats stats = service.stats();
  EXPECT_EQ(stats.cache.hits + stats.cache.misses, 0u)
      << "kOff requests never touch the service cache";
}

}  // namespace
}  // namespace qq::cache
