// Cross-module integration tests: the full paper pipeline at test scale —
// grid-search knowledge base, hybrid QAOA^2 vs classical baselines, and
// the ML selection layer driven by real solver outcomes.

#include <gtest/gtest.h>

#include <algorithm>

#include "maxcut/baselines.hpp"
#include "maxcut/exact.hpp"
#include "ml/features.hpp"
#include "ml/knn.hpp"
#include "ml/logreg.hpp"
#include "qaoa/qaoa.hpp"
#include "qaoa2/qaoa2.hpp"
#include "qgraph/generators.hpp"
#include "sdp/gw.hpp"
#include "util/rng.hpp"

namespace qq {
namespace {

TEST(Integration, Fig4StyleOrderingOnMediumGraph) {
  // Random < {QAOA^2 variants} and everything <= exact is not checkable at
  // 60 nodes; instead check the orderings the paper reports: all methods
  // beat the random partition, and Best >= min(QAOA-only, GW-only).
  util::Rng rng(1);
  const auto g = graph::erdos_renyi(60, 0.1, rng);

  util::Rng rand_rng(2);
  const double random_value =
      maxcut::randomized_partitioning(g, rand_rng).value;

  qaoa2::Qaoa2Options opts;
  opts.max_qubits = 8;
  opts.qaoa.layers = 2;
  opts.qaoa.max_iterations = 40;
  opts.merge_solver = qaoa2::SubSolver::kGw;
  opts.seed = 3;

  opts.sub_solver = qaoa2::SubSolver::kQaoa;
  const double all_qaoa = qaoa2::solve_qaoa2(g, opts).cut.value;
  opts.sub_solver = qaoa2::SubSolver::kGw;
  const double all_gw = qaoa2::solve_qaoa2(g, opts).cut.value;
  opts.sub_solver = qaoa2::SubSolver::kBest;
  const double best = qaoa2::solve_qaoa2(g, opts).cut.value;

  sdp::GwOptions gw_opts;
  gw_opts.seed = 4;
  const double gw_full = sdp::goemans_williamson(g, gw_opts).best.value;

  EXPECT_GT(all_qaoa, random_value);
  EXPECT_GT(all_gw, random_value);
  EXPECT_GT(best, random_value);
  EXPECT_GT(gw_full, random_value);
  EXPECT_GE(best, std::min(all_qaoa, all_gw) - 1e-9);
  // Paper: GW on the whole graph dominates the partitioned schemes at
  // these sizes.
  EXPECT_GE(gw_full, std::max({all_qaoa, all_gw}) * 0.95);
}

TEST(Integration, GridSearchKnowledgeBaseProportionsAreSane) {
  // Miniature Fig. 3: sweep (p, rhobeg) on a few graphs, record the
  // QAOA-vs-GW statistics, check they are proportions.
  util::Rng rng(5);
  int qaoa_wins = 0, near_misses = 0, total = 0;
  for (int node_count : {8, 10}) {
    for (double edge_p : {0.3, 0.5}) {
      const auto g = graph::erdos_renyi(node_count, edge_p, rng);
      if (g.num_edges() == 0) continue;
      sdp::GwOptions gw_opts;
      gw_opts.seed = 17;
      const double gw = sdp::goemans_williamson(g, gw_opts).average_value;
      for (int p : {1, 2}) {
        for (double rhobeg : {0.2, 0.5}) {
          qaoa::QaoaOptions qopts;
          qopts.layers = p;
          qopts.rhobeg = rhobeg;
          qopts.max_iterations = 30;
          qopts.seed = 19;
          const double value = qaoa::solve_qaoa(g, qopts).cut.value;
          ++total;
          if (value > gw) {
            ++qaoa_wins;
          } else if (value >= 0.95 * gw) {
            ++near_misses;
          }
        }
      }
    }
  }
  ASSERT_GT(total, 0);
  EXPECT_LE(qaoa_wins + near_misses, total);
  // At these tiny sizes QAOA lands within 95% of GW most of the time.
  EXPECT_GT(qaoa_wins + near_misses, total / 4);
}

TEST(Integration, SelectorTrainsOnRealOutcomesAndPredicts) {
  // Build a labelled set (QAOA beat GW?) from real runs on small graphs,
  // train the logistic selector, and check it produces a usable accuracy
  // on its training distribution (smoke-level, not a benchmark).
  util::Rng rng(7);
  std::vector<std::vector<double>> X;
  std::vector<int> y;
  for (int i = 0; i < 24; ++i) {
    const int n = 6 + (i % 3) * 2;
    const double p = (i % 2) ? 0.25 : 0.6;
    const auto g = graph::erdos_renyi(n, p, rng,
                                      (i % 4 < 2) ? graph::WeightMode::kUnit
                                                  : graph::WeightMode::kUniform01);
    if (g.num_edges() == 0) continue;
    qaoa::QaoaOptions qopts;
    qopts.layers = 2;
    qopts.max_iterations = 30;
    qopts.seed = static_cast<std::uint64_t>(i);
    const double qaoa_value = qaoa::solve_qaoa(g, qopts).cut.value;
    sdp::GwOptions gw_opts;
    gw_opts.seed = static_cast<std::uint64_t>(i) + 100;
    const double gw_value = sdp::goemans_williamson(g, gw_opts).average_value;
    const auto f = ml::graph_features(g);
    X.emplace_back(f.begin(), f.end());
    y.push_back(qaoa_value > gw_value ? 1 : 0);
  }
  ASSERT_GE(X.size(), 10u);
  ml::LogisticRegression model;
  model.fit(X, y);
  // Not a performance claim — only that the end-to-end plumbing holds and
  // the model beats always-predict-the-minority-class on its training set.
  int majority = 0;
  for (int label : y) majority += label;
  const double majority_rate =
      std::max(majority, static_cast<int>(y.size()) - majority) /
      static_cast<double>(y.size());
  EXPECT_GE(model.accuracy(X, y) + 1e-9, majority_rate * 0.9);
}

TEST(Integration, WarmStartReducesOrMatchesIterationsToQuality) {
  // Store optimized parameters for a family of graphs, then check the kNN
  // prediction gives a good starting expectation on a fresh instance.
  util::Rng rng(9);
  ml::ParameterKnn store;
  const int p = 2;
  for (int i = 0; i < 6; ++i) {
    const auto g = graph::erdos_renyi(10, 0.3, rng);
    if (g.num_edges() == 0) continue;
    qaoa::QaoaOptions qopts;
    qopts.layers = p;
    qopts.max_iterations = 80;
    qopts.seed = static_cast<std::uint64_t>(i);
    const auto r = qaoa::solve_qaoa(g, qopts);
    const auto f = ml::graph_features(g);
    store.add({f.begin(), f.end()}, r.parameters);
  }
  ASSERT_GE(store.size(), 3u);

  const auto fresh = graph::erdos_renyi(10, 0.3, rng);
  const auto f = ml::graph_features(fresh);
  const auto warm = store.predict({f.begin(), f.end()}, 3);
  ASSERT_EQ(warm.size(), static_cast<std::size_t>(2 * p));

  const qaoa::QaoaSolver solver(fresh);
  const double warm_expectation =
      solver.expectation(circuit::unpack_angles(warm));
  // The warm start must beat the uninformed gamma=beta=0 point (= W/2).
  EXPECT_GT(warm_expectation, fresh.total_weight() / 2.0);
}

TEST(Integration, Qaoa2WithEngineMatchesSequentialSeededRun) {
  // The engine parallelizes sub-graph solves, but per-part seeds make the
  // result independent of execution order.
  util::Rng rng(11);
  const auto g = graph::erdos_renyi(36, 0.15, rng);
  qaoa2::Qaoa2Options opts;
  opts.max_qubits = 6;
  opts.sub_solver = qaoa2::SubSolver::kQaoa;
  opts.qaoa.layers = 2;
  opts.qaoa.max_iterations = 30;
  opts.merge_solver = qaoa2::SubSolver::kExact;
  opts.seed = 13;
  opts.engine = sched::EngineOptions{4, 4};
  const auto parallel = qaoa2::solve_qaoa2(g, opts);
  opts.engine = sched::EngineOptions{1, 1};
  const auto serial = qaoa2::solve_qaoa2(g, opts);
  EXPECT_DOUBLE_EQ(parallel.cut.value, serial.cut.value);
  EXPECT_EQ(parallel.cut.assignment, serial.cut.assignment);
}

TEST(Integration, ExactOptimumDominatesEveryHeuristicAtSmallScale) {
  util::Rng rng(13);
  const auto g = graph::erdos_renyi(16, 0.3, rng,
                                    graph::WeightMode::kUniform01);
  const double exact = maxcut::solve_exact(g).value;

  qaoa::QaoaOptions qopts;
  qopts.layers = 3;
  qopts.seed = 1;
  EXPECT_LE(qaoa::solve_qaoa(g, qopts).cut.value, exact + 1e-9);

  sdp::GwOptions gw_opts;
  EXPECT_LE(sdp::goemans_williamson(g, gw_opts).best.value, exact + 1e-9);

  qaoa2::Qaoa2Options o2;
  o2.max_qubits = 6;
  o2.sub_solver = qaoa2::SubSolver::kBest;
  o2.qaoa.layers = 2;
  o2.qaoa.max_iterations = 30;
  o2.merge_solver = qaoa2::SubSolver::kExact;
  EXPECT_LE(qaoa2::solve_qaoa2(g, o2).cut.value, exact + 1e-9);

  util::Rng rr(14);
  EXPECT_LE(maxcut::one_exchange_restarts(g, rr, 5).value, exact + 1e-9);
}

}  // namespace
}  // namespace qq
