// Tests for the QAOA^2 divide-and-conquer driver: merge-graph construction
// (paper step 4), flip reconstruction (step 5), recursion, and the hybrid
// sub-solver selection.

#include <gtest/gtest.h>

#include <cmath>

#include "maxcut/exact.hpp"
#include "qaoa2/merge.hpp"
#include "qaoa2/qaoa2.hpp"
#include "qgraph/generators.hpp"
#include "test_graphs.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace qq::qaoa2 {
namespace {

using graph::Graph;
using graph::NodeId;

// ------------------------------------------------------------ merge step ----

TEST(Merge, PartIndexValidation) {
  EXPECT_THROW(part_index(4, {{0, 1}, {1, 2, 3}}), std::invalid_argument);
  EXPECT_THROW(part_index(4, {{0, 1}}), std::invalid_argument);  // not covering
  EXPECT_THROW(part_index(4, {{0, 1}, {2, 9}}), std::out_of_range);
  const auto idx = part_index(4, {{0, 2}, {1, 3}});
  EXPECT_EQ(idx, (std::vector<int>{0, 1, 0, 1}));
}

TEST(Merge, HandExampleSignsAndAggregation) {
  // Two parts {0,1} and {2,3}; crossing edges (1,2) w=2 and (0,3) w=5.
  Graph g(4);
  g.add_edge(0, 1, 1.0);  // intra part 0
  g.add_edge(2, 3, 1.0);  // intra part 1
  g.add_edge(1, 2, 2.0);  // crossing
  g.add_edge(0, 3, 5.0);  // crossing
  const std::vector<std::vector<NodeId>> parts = {{0, 1}, {2, 3}};
  // Local solutions: part0 = [0,1] (node1 side 1), part1 = [0,0].
  // Edge (1,2): sides 1 vs 0 -> currently cut -> weight -2.
  // Edge (0,3): sides 0 vs 0 -> uncut -> weight +5. Sum = +3.
  const std::vector<maxcut::Assignment> locals = {{0, 1}, {0, 0}};
  const Graph coarse = build_merge_graph(g, parts, locals);
  EXPECT_EQ(coarse.num_nodes(), 2);
  ASSERT_EQ(coarse.num_edges(), 1u);
  EXPECT_DOUBLE_EQ(coarse.edge_weight(0, 1), 3.0);
}

TEST(Merge, AllCutCrossingGivesNegativeWeight) {
  Graph g(4);
  g.add_edge(0, 2, 1.0);
  g.add_edge(1, 3, 1.0);
  const std::vector<std::vector<NodeId>> parts = {{0, 1}, {2, 3}};
  const std::vector<maxcut::Assignment> locals = {{0, 1}, {1, 0}};
  // (0,2): 0 vs 1 cut -> -1 ; (1,3): 1 vs 0 cut -> -1. Sum -2.
  const Graph coarse = build_merge_graph(g, parts, locals);
  EXPECT_DOUBLE_EQ(coarse.edge_weight(0, 1), -2.0);
}

TEST(Merge, ApplyFlipsXorsWholeParts) {
  const std::vector<std::vector<NodeId>> parts = {{0, 2}, {1, 3}};
  const std::vector<maxcut::Assignment> locals = {{0, 1}, {1, 1}};
  const maxcut::Assignment coarse = {0, 1};  // flip part 1 only
  const auto global = apply_flips(4, parts, locals, coarse);
  // node0 (part0, local 0) = 0; node2 (part0, local 1) = 1;
  // node1 (part1, local 0) = 1^1 = 0; node3 = 1^1 = 0.
  EXPECT_EQ(global, (maxcut::Assignment{0, 0, 1, 0}));
  EXPECT_THROW(apply_flips(4, parts, locals, {0}), std::invalid_argument);
}

TEST(Merge, CoarseCutGainEqualsGlobalGain) {
  // Property: for any coarse assignment y, the lifted global cut equals
  // (lifted cut at y=0) + (coarse cut value at y) - (coarse cut at y=0).
  // Since coarse cut at all-zeros is 0, global(y) = global(0) + coarse(y).
  util::Rng rng(3);
  const Graph g =
      graph::erdos_renyi(12, 0.4, rng, graph::WeightMode::kUniform01);
  graph::PartitionOptions popts;
  popts.max_nodes = 4;
  const auto parts = graph::partition_max_size(g, popts);
  std::vector<maxcut::Assignment> locals;
  for (const auto& part : parts) {
    maxcut::Assignment a(part.size());
    for (auto& s : a) s = util::bernoulli(rng, 0.5) ? 1 : 0;
    locals.push_back(a);
  }
  const Graph coarse = build_merge_graph(g, parts, locals);
  const maxcut::Assignment zero(parts.size(), 0);
  const double base =
      maxcut::cut_value(g, apply_flips(g.num_nodes(), parts, locals, zero));
  for (int trial = 0; trial < 16; ++trial) {
    maxcut::Assignment y(parts.size());
    for (auto& s : y) s = util::bernoulli(rng, 0.5) ? 1 : 0;
    const double lifted =
        maxcut::cut_value(g, apply_flips(g.num_nodes(), parts, locals, y));
    EXPECT_NEAR(lifted, base + maxcut::cut_value(coarse, y), 1e-9);
  }
}

// ---------------------------------------------------------------- driver ----

TEST(Qaoa2, SmallGraphBypassesPartitioning) {
  util::Rng rng(5);
  const Graph g = graph::erdos_renyi(8, 0.4, rng);
  Qaoa2Options opts;
  opts.max_qubits = 12;
  opts.sub_solver = SubSolver::kExact;
  const Qaoa2Result r = solve_qaoa2(g, opts);
  EXPECT_EQ(r.subgraphs_total, 1);
  EXPECT_DOUBLE_EQ(r.cut.value, maxcut::solve_exact(g).value);
  // The base case records its level too (it used to be missing from
  // level_stats entirely).
  ASSERT_EQ(r.level_stats.size(), 1u);
  EXPECT_EQ(r.level_stats[0].level, 0);
  EXPECT_EQ(r.level_stats[0].num_parts, 1);
  EXPECT_EQ(r.level_stats[0].largest_part, g.num_nodes());
  EXPECT_NEAR(r.level_stats[0].level_cut, r.cut.value, 1e-12);
}

TEST(Qaoa2, ExactSubSolverWithExactMergeIsNearExactOnClustered) {
  // On strongly clustered graphs the partition matches the communities and
  // divide-and-conquer loses little.
  util::Rng rng(7);
  const Graph g = graph::planted_partition(3, 6, 0.85, 0.05, rng);
  Qaoa2Options opts;
  opts.max_qubits = 6;
  opts.sub_solver = SubSolver::kExact;
  opts.merge_solver = SubSolver::kExact;
  const Qaoa2Result r = solve_qaoa2(g, opts);
  const double exact = maxcut::solve_exact(g).value;
  EXPECT_GE(r.cut.value, 0.9 * exact);
  EXPECT_LE(r.cut.value, exact + 1e-9);
}

TEST(Qaoa2, ReportedValueMatchesAssignment) {
  util::Rng rng(9);
  const Graph g = graph::erdos_renyi(30, 0.15, rng);
  Qaoa2Options opts;
  opts.max_qubits = 8;
  opts.sub_solver = SubSolver::kLocalSearch;
  opts.merge_solver = SubSolver::kExact;
  const Qaoa2Result r = solve_qaoa2(g, opts);
  EXPECT_NEAR(maxcut::cut_value(g, r.cut.assignment), r.cut.value, 1e-9);
}

TEST(Qaoa2, MergeWithExactCoarseSolverNeverHurtsLocals) {
  // The coarse MaxCut includes the all-zero flip vector, so with an exact
  // coarse solver the merged cut dominates the unflipped lift.
  util::Rng rng(11);
  const Graph g = graph::erdos_renyi(26, 0.2, rng);
  Qaoa2Options opts;
  opts.max_qubits = 7;
  opts.sub_solver = SubSolver::kLocalSearch;
  opts.merge_solver = SubSolver::kExact;
  opts.seed = 13;
  const Qaoa2Result r = solve_qaoa2(g, opts);
  // Reconstruct the unflipped lift with the same seeds.
  // (Indirect check: level_cut of the last level equals the final value,
  //  and each level's cut is at least half the total weight heuristic.)
  ASSERT_FALSE(r.level_stats.empty());
  EXPECT_NEAR(r.level_stats.front().level_cut, r.cut.value, 1e-9);
  EXPECT_GE(r.cut.value, g.total_weight() / 2.0 * 0.8);
}

TEST(Qaoa2, QaoaSubSolverEndToEnd) {
  util::Rng rng(13);
  const Graph g = graph::erdos_renyi(20, 0.25, rng);
  Qaoa2Options opts;
  opts.max_qubits = 7;
  opts.sub_solver = SubSolver::kQaoa;
  opts.qaoa.layers = 2;
  opts.qaoa.max_iterations = 40;
  opts.seed = 17;
  const Qaoa2Result r = solve_qaoa2(g, opts);
  EXPECT_GT(r.cut.value, 0.0);
  EXPECT_GT(r.quantum_solves, 0);
  EXPECT_NEAR(maxcut::cut_value(g, r.cut.assignment), r.cut.value, 1e-9);
}

TEST(Qaoa2, BestModeRunsBothKindsOfSolves) {
  util::Rng rng(15);
  const Graph g = graph::erdos_renyi(20, 0.25, rng);
  Qaoa2Options opts;
  opts.max_qubits = 7;
  opts.sub_solver = SubSolver::kBest;
  opts.qaoa.layers = 2;
  opts.qaoa.max_iterations = 30;
  opts.merge_solver = SubSolver::kGw;
  const Qaoa2Result r = solve_qaoa2(g, opts);
  EXPECT_GT(r.quantum_solves, 0);
  EXPECT_GT(r.classical_solves, 0);
}

TEST(Qaoa2, BestModeDominatesSingleModesPerSubgraph) {
  // On each sub-graph, best-of(QAOA, GW) >= each individually; sanity-check
  // via the driver's public per-subgraph API.
  util::Rng rng(17);
  const Graph g = graph::erdos_renyi(10, 0.3, rng);
  Qaoa2Options opts;
  opts.qaoa.layers = 2;
  opts.qaoa.max_iterations = 40;
  const Qaoa2Driver driver(opts);
  const auto q = driver.solve_subgraph(g, SubSolver::kQaoa, 5);
  const auto c = driver.solve_subgraph(g, SubSolver::kGw, 5);
  const auto b = driver.solve_subgraph(g, SubSolver::kBest, 5);
  EXPECT_GE(b.value, std::max(q.value, c.value) - 1e-12);
}

TEST(Qaoa2, DeepRecursionTerminatesWithTinyDevices) {
  util::Rng rng(19);
  const Graph g = graph::erdos_renyi(60, 0.08, rng);
  Qaoa2Options opts;
  opts.max_qubits = 4;  // forces multiple levels
  opts.sub_solver = SubSolver::kExact;
  opts.merge_solver = SubSolver::kExact;
  opts.deeper_solver = SubSolver::kExact;
  const Qaoa2Result r = solve_qaoa2(g, opts);
  EXPECT_GE(r.levels, 2);
  EXPECT_NEAR(maxcut::cut_value(g, r.cut.assignment), r.cut.value, 1e-9);
}

TEST(Qaoa2, DeterministicPerSeed) {
  util::Rng rng(21);
  const Graph g = graph::erdos_renyi(24, 0.2, rng);
  Qaoa2Options opts;
  opts.max_qubits = 6;
  opts.sub_solver = SubSolver::kQaoa;
  opts.qaoa.layers = 2;
  opts.qaoa.max_iterations = 30;
  opts.seed = 23;
  const Qaoa2Result a = solve_qaoa2(g, opts);
  const Qaoa2Result b = solve_qaoa2(g, opts);
  EXPECT_DOUBLE_EQ(a.cut.value, b.cut.value);
  EXPECT_EQ(a.cut.assignment, b.cut.assignment);
}

TEST(Qaoa2, EverySubSolverBackendRuns) {
  util::Rng rng(23);
  const Graph g = graph::erdos_renyi(14, 0.3, rng);
  for (const SubSolver s :
       {SubSolver::kQaoa, SubSolver::kGw, SubSolver::kExact,
        SubSolver::kAnneal, SubSolver::kLocalSearch, SubSolver::kRqaoa}) {
    Qaoa2Options opts;
    opts.max_qubits = 6;
    opts.sub_solver = s;
    opts.qaoa.layers = 1;
    opts.qaoa.max_iterations = 20;
    opts.merge_solver = SubSolver::kLocalSearch;
    const Qaoa2Result r = solve_qaoa2(g, opts);
    EXPECT_GT(r.cut.value, 0.0) << sub_solver_name(s);
  }
}

TEST(Qaoa2, LevelStatsAreConsistent) {
  util::Rng rng(25);
  const Graph g = graph::erdos_renyi(40, 0.12, rng);
  Qaoa2Options opts;
  opts.max_qubits = 8;
  opts.sub_solver = SubSolver::kLocalSearch;
  opts.merge_solver = SubSolver::kExact;
  const Qaoa2Result r = solve_qaoa2(g, opts);
  ASSERT_FALSE(r.level_stats.empty());
  const LevelStats& top = r.level_stats.front();
  EXPECT_EQ(top.level, 0);
  EXPECT_GT(top.num_parts, 1);
  EXPECT_LE(top.largest_part, 8);
  EXPECT_GE(top.smallest_part, 1);
  // Every solve — including the final coarse solve, which is recorded as a
  // one-part level — appears in exactly one level's part count.
  int total_parts = 0;
  for (const auto& ls : r.level_stats) total_parts += ls.num_parts;
  EXPECT_EQ(r.subgraphs_total, total_parts);
  // Levels are reported ascending and the final level is the single coarse
  // solve at the bottom of the recursion chain.
  for (std::size_t i = 1; i < r.level_stats.size(); ++i) {
    EXPECT_GT(r.level_stats[i].level, r.level_stats[i - 1].level);
  }
  EXPECT_EQ(r.level_stats.back().num_parts, 1);
  EXPECT_EQ(static_cast<int>(r.level_stats.size()), r.levels);
}

TEST(Qaoa2, OptionValidation) {
  Qaoa2Options opts;
  opts.max_qubits = 1;
  EXPECT_THROW(Qaoa2Driver{opts}, std::invalid_argument);
  opts = Qaoa2Options{};
  opts.merge_solver = SubSolver::kBest;
  EXPECT_THROW(Qaoa2Driver{opts}, std::invalid_argument);
}

TEST(Qaoa2, SolverNamesAreStable) {
  EXPECT_STREQ(sub_solver_name(SubSolver::kQaoa), "qaoa");
  EXPECT_STREQ(sub_solver_name(SubSolver::kGw), "gw");
  EXPECT_STREQ(sub_solver_name(SubSolver::kBest), "best");
}

TEST(Qaoa2, ParseSubSolverRoundTrips) {
  for (const SubSolver s :
       {SubSolver::kQaoa, SubSolver::kGw, SubSolver::kBest, SubSolver::kExact,
        SubSolver::kAnneal, SubSolver::kLocalSearch, SubSolver::kRqaoa}) {
    const auto parsed = parse_sub_solver(sub_solver_name(s));
    ASSERT_TRUE(parsed.has_value()) << sub_solver_name(s);
    EXPECT_EQ(*parsed, s);
  }
  EXPECT_FALSE(parse_sub_solver("").has_value());
  EXPECT_FALSE(parse_sub_solver("QAOA").has_value());
  EXPECT_FALSE(parse_sub_solver("goemans").has_value());
}

// ------------------------------------------------- component sharding ----

namespace {

/// Two ER blobs of different size plus two isolated nodes (shared fixture,
/// tests/test_graphs.hpp).
Graph disconnected_test_graph() { return testing::disconnected_fixture(); }

}  // namespace

TEST(Qaoa2, ComponentSeedIsIdentityForConnectedGraphs) {
  EXPECT_EQ(component_seed(12345u, 0, 1), 12345u);
  EXPECT_NE(component_seed(12345u, 0, 2), component_seed(12345u, 1, 2));
  EXPECT_NE(component_seed(12345u, 0, 2), 12345u);
}

TEST(Qaoa2, DisconnectedGraphShardsToIndependentComponentSolves) {
  const Graph g = disconnected_test_graph();
  const auto comps = graph::connected_components(g);
  ASSERT_EQ(comps.size(), 4u);  // 2 blobs + 2 isolated nodes

  Qaoa2Options opts;
  opts.max_qubits = 6;
  opts.sub_solver = SubSolver::kLocalSearch;
  opts.merge_solver = SubSolver::kExact;
  opts.seed = 31;

  for (const bool streaming : {true, false}) {
    opts.streaming = streaming;
    const Qaoa2Result r = solve_qaoa2(g, opts);
    EXPECT_EQ(r.components, 4);
    EXPECT_NEAR(maxcut::cut_value(g, r.cut.assignment), r.cut.value, 1e-9);

    // Sharding must reproduce, per component, exactly what an independent
    // solve of that component (seeded with its component_seed) produces.
    double sum = 0.0;
    for (std::size_t ci = 0; ci < comps.size(); ++ci) {
      const graph::Subgraph sub = g.induced(comps[ci]);
      Qaoa2Options copts = opts;
      copts.seed = component_seed(opts.seed, ci, comps.size());
      const Qaoa2Result rc = solve_qaoa2(sub.graph, copts);
      sum += rc.cut.value;
      ASSERT_EQ(rc.cut.assignment.size(), comps[ci].size());
      for (std::size_t j = 0; j < comps[ci].size(); ++j) {
        EXPECT_EQ(r.cut.assignment[static_cast<std::size_t>(comps[ci][j])],
                  rc.cut.assignment[j])
            << "component " << ci << " node " << j
            << " streaming=" << streaming;
      }
    }
    EXPECT_NEAR(r.cut.value, sum, 1e-9);
  }
}

TEST(Qaoa2, IsolatedNodesOnlyGraphSolvesTrivially) {
  const Graph g(9);  // no edges at all, but > max_qubits nodes
  Qaoa2Options opts;
  opts.max_qubits = 4;
  opts.sub_solver = SubSolver::kExact;
  opts.merge_solver = SubSolver::kExact;
  for (const bool streaming : {true, false}) {
    opts.streaming = streaming;
    const Qaoa2Result r = solve_qaoa2(g, opts);
    EXPECT_EQ(r.components, 9);
    EXPECT_DOUBLE_EQ(r.cut.value, 0.0);
    EXPECT_EQ(r.cut.assignment,
              maxcut::Assignment(static_cast<std::size_t>(g.num_nodes()), 0));
  }
}

// -------------------------------------- streaming-vs-recursive parity ----

TEST(Qaoa2, StreamingMatchesRecursiveBitForBit) {
  util::Rng rng(29);
  const Graph connected = graph::erdos_renyi(26, 0.2, rng);
  const Graph disconnected = disconnected_test_graph();
  for (const Graph* g : {&connected, &disconnected}) {
    Qaoa2Options opts;
    opts.max_qubits = 6;
    opts.sub_solver = SubSolver::kQaoa;
    opts.qaoa.layers = 2;
    opts.qaoa.max_iterations = 25;
    opts.merge_solver = SubSolver::kGw;
    opts.seed = 33;
    opts.streaming = false;
    const Qaoa2Result recursive = solve_qaoa2(*g, opts);
    opts.streaming = true;
    const Qaoa2Result streaming = solve_qaoa2(*g, opts);
    EXPECT_EQ(streaming.cut.value, recursive.cut.value);
    EXPECT_EQ(streaming.cut.assignment, recursive.cut.assignment);
    EXPECT_EQ(streaming.levels, recursive.levels);
    EXPECT_EQ(streaming.subgraphs_total, recursive.subgraphs_total);
    EXPECT_EQ(streaming.quantum_solves, recursive.quantum_solves);
    EXPECT_EQ(streaming.classical_solves, recursive.classical_solves);
    ASSERT_EQ(streaming.level_stats.size(), recursive.level_stats.size());
    for (std::size_t i = 0; i < recursive.level_stats.size(); ++i) {
      EXPECT_EQ(streaming.level_stats[i].level,
                recursive.level_stats[i].level);
      EXPECT_EQ(streaming.level_stats[i].num_parts,
                recursive.level_stats[i].num_parts);
      EXPECT_EQ(streaming.level_stats[i].level_cut,
                recursive.level_stats[i].level_cut);
    }
  }
}

TEST(Qaoa2, StreamingBitForBitAcrossEnginePoolWidths) {
  // The task-graph schedule changes with the pool width; the cut must not.
  // Pools of width 1, 3, and 8 are injected through EngineOptions so the
  // solve is exercised at QQ_THREADS-like widths within one process.
  const Graph g = disconnected_test_graph();
  Qaoa2Options opts;
  opts.max_qubits = 6;
  opts.sub_solver = SubSolver::kQaoa;
  opts.qaoa.layers = 2;
  opts.qaoa.max_iterations = 20;
  opts.merge_solver = SubSolver::kGw;
  opts.seed = 35;
  const Qaoa2Result reference = solve_qaoa2(g, opts);  // default pool
  for (const std::size_t threads : {1u, 3u, 8u}) {
    util::ThreadPool pool(threads);
    opts.engine.pool = &pool;
    for (const bool streaming : {true, false}) {
      opts.streaming = streaming;
      const Qaoa2Result r = solve_qaoa2(g, opts);
      EXPECT_EQ(r.cut.value, reference.cut.value)
          << "threads=" << threads << " streaming=" << streaming;
      EXPECT_EQ(r.cut.assignment, reference.cut.assignment)
          << "threads=" << threads << " streaming=" << streaming;
    }
  }
}

}  // namespace
}  // namespace qq::qaoa2
