// SIMD backend parity: every dispatched primitive and every rewired kernel
// must produce BIT-FOR-BIT the scalar reference's output under every backend
// the machine supports (AVX2, AVX-512). The suite forces backends through
// simd::set_isa, so one binary proves the whole matrix; on a QQ_SIMD=OFF
// build (or non-x86) set_isa clamps to scalar and the comparisons degenerate
// to scalar-vs-scalar, keeping the suite meaningful in both CI legs.

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "qsim/measure.hpp"
#include "qsim/simd.hpp"
#include "qsim/statevector.hpp"
#include "util/rng.hpp"

namespace qq::sim {
namespace {

/// Restores the entry backend when a test exits (even on failure).
class IsaGuard {
 public:
  IsaGuard() : saved_(simd::active_isa()) {}
  ~IsaGuard() { simd::set_isa(saved_); }
  IsaGuard(const IsaGuard&) = delete;
  IsaGuard& operator=(const IsaGuard&) = delete;

 private:
  simd::Isa saved_;
};

/// Backends this build + machine can actually install, scalar first.
std::vector<simd::Isa> available_isas() {
  IsaGuard guard;
  std::vector<simd::Isa> isas{simd::Isa::kScalar};
  for (const simd::Isa isa : {simd::Isa::kAvx2, simd::Isa::kAvx512}) {
    if (simd::set_isa(isa) == isa) isas.push_back(isa);
  }
  return isas;
}

bool bits_equal(const StateVector& a, const StateVector& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data().data(), b.data().data(),
                     a.size() * sizeof(Amplitude)) == 0;
}

/// Deterministic circuit exercising every dispatched kernel: z / phase / rz
/// (low-qubit table AND high-qubit run paths) / rzz (all qubit-pair
/// geometries) / cz / the fused mixer, interleaved with h gates so the
/// amplitudes stay dense and irrational.
void run_kernel_circuit(StateVector& sv, std::uint64_t seed) {
  const int n = sv.num_qubits();
  util::Rng rng(seed);
  sv.reset_to_plus();
  for (int q = 0; q < n; ++q) {
    sv.apply_rz(q, util::uniform(rng, -2.0, 2.0));
    sv.apply_phase(q, util::uniform(rng, -1.0, 1.0));
  }
  sv.apply_rx_layer(util::uniform(rng, -2.0, 2.0));
  for (int a = 0; a < n; ++a) {
    const int b = (a + 1 + (a % 3)) % n;
    if (a == b) continue;
    sv.apply_rzz(a, b, util::uniform(rng, -2.0, 2.0));
    if (a % 2 == 0) sv.apply_cz(a, b);
  }
  if (n >= 1) sv.apply_z(0);
  if (n >= 2) sv.apply_z(n - 1);
  sv.apply_rx_layer(util::uniform(rng, -2.0, 2.0));
  for (int q = 0; q < n; ++q) {
    if (q % 3 == 0) sv.apply_h(q);
  }
  sv.apply_rz(n / 2, 0.7071067811865476);
}

class SimdStateParity : public ::testing::TestWithParam<int> {};

TEST_P(SimdStateParity, AllBackendsMatchScalarBitForBit) {
  const int n = GetParam();
  IsaGuard guard;

  simd::set_isa(simd::Isa::kScalar);
  StateVector reference(n);
  run_kernel_circuit(reference, 42 + static_cast<std::uint64_t>(n));
  const double ref_norm = reference.norm_squared();
  const double ref_z = n >= 1 ? expectation_z(reference, n - 1) : 0.0;
  const double ref_zz = n >= 2 ? expectation_zz(reference, 0, n - 1) : 0.0;
  std::vector<double> weights(reference.size());
  util::Rng wrng(7);
  for (double& w : weights) w = util::uniform(wrng, -1.0, 1.0);
  const double ref_exp = expectation_diagonal(reference, weights);

  for (const simd::Isa isa : available_isas()) {
    ASSERT_EQ(simd::set_isa(isa), isa);
    StateVector sv(n);
    run_kernel_circuit(sv, 42 + static_cast<std::uint64_t>(n));
    EXPECT_TRUE(bits_equal(sv, reference))
        << "state diverged under " << simd::isa_name(isa);
    // The reductions are exact-equality too: the vector bodies only cover
    // the per-element products, the fold order is the scalar one.
    EXPECT_EQ(sv.norm_squared(), ref_norm) << simd::isa_name(isa);
    EXPECT_EQ(expectation_diagonal(sv, weights), ref_exp)
        << simd::isa_name(isa);
    if (n >= 1) {
      EXPECT_EQ(expectation_z(sv, n - 1), ref_z) << simd::isa_name(isa);
    }
    if (n >= 2) {
      EXPECT_EQ(expectation_zz(sv, 0, n - 1), ref_zz) << simd::isa_name(isa);
    }
  }
}

// n = 1..14 covers every tail case of the 2- and 4-amplitude vector widths
// and both rz/rzz structural paths (table vs runs).
INSTANTIATE_TEST_SUITE_P(QubitCounts, SimdStateParity,
                         ::testing::Range(1, 15));

class SimdMixerBoundary : public ::testing::TestWithParam<int> {};

TEST_P(SimdMixerBoundary, FusedMixerMatchesScalarAtBlockBoundaries) {
  // 11/12/13: around the kFusedBlockQubits=12 pass-1 block size.
  // 14: pass 2 with a partial high group. 21 = 12 + 8 + 1: pass 2 runs one
  // full kFusedGroupQubits group plus a 1-qubit remainder group.
  const int n = GetParam();
  IsaGuard guard;

  simd::set_isa(simd::Isa::kScalar);
  StateVector reference(n);
  reference.reset_to_plus();
  reference.apply_rz(0, 0.37);
  reference.apply_rx_layer(1.234567);
  reference.apply_rx_layer(-0.654321);

  for (const simd::Isa isa : available_isas()) {
    ASSERT_EQ(simd::set_isa(isa), isa);
    StateVector sv(n);
    sv.reset_to_plus();
    sv.apply_rz(0, 0.37);
    sv.apply_rx_layer(1.234567);
    sv.apply_rx_layer(-0.654321);
    EXPECT_TRUE(bits_equal(sv, reference))
        << "mixer diverged under " << simd::isa_name(isa) << " at n=" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(Boundaries, SimdMixerBoundary,
                         ::testing::Values(11, 12, 13, 14, 21));

/// Direct primitive-level parity on deliberately awkward lengths (0, 1,
/// odd, just-below/above vector width) so the tail handling is pinned.
class SimdPrimitiveParity : public ::testing::TestWithParam<std::size_t> {};

std::vector<double> random_doubles(std::size_t n, std::uint64_t seed) {
  std::vector<double> v(n);
  util::Rng rng(seed);
  for (double& x : v) x = util::uniform(rng, -1.0, 1.0);
  return v;
}

TEST_P(SimdPrimitiveParity, ElementwisePrimitivesMatchScalar) {
  const std::size_t len = GetParam();
  IsaGuard guard;
  const std::vector<double> base = random_doubles(2 * len, 99 + len);
  const std::vector<double> base1 = random_doubles(2 * len, 7 + len);

  for (const simd::Isa isa : available_isas()) {
    ASSERT_EQ(simd::set_isa(isa), isa);

    std::vector<double> expect = base;
    simd::scalar::scale_run(expect.data(), len, 0.8, -0.6);
    std::vector<double> got = base;
    simd::scale_run(got.data(), len, 0.8, -0.6);
    EXPECT_EQ(got, expect) << "scale_run " << simd::isa_name(isa);

    expect = base;
    simd::scalar::negate_run(expect.data(), len);
    got = base;
    simd::negate_run(got.data(), len);
    EXPECT_EQ(got, expect) << "negate_run " << simd::isa_name(isa);

    std::vector<double> e0 = base;
    std::vector<double> e1 = base1;
    simd::scalar::rx_butterfly_runs(e0.data(), e1.data(), len, 0.8, -0.6);
    std::vector<double> g0 = base;
    std::vector<double> g1 = base1;
    simd::rx_butterfly_runs(g0.data(), g1.data(), len, 0.8, -0.6);
    EXPECT_EQ(g0, e0) << "rx_butterfly_runs p0 " << simd::isa_name(isa);
    EXPECT_EQ(g1, e1) << "rx_butterfly_runs p1 " << simd::isa_name(isa);

    if (len % 2 == 0) {
      expect = base;
      simd::scalar::rx_interleaved_pairs(expect.data(), len, 0.8, -0.6);
      got = base;
      simd::rx_interleaved_pairs(got.data(), len, 0.8, -0.6);
      EXPECT_EQ(got, expect) << "rx_interleaved_pairs " << simd::isa_name(isa);
    }

    const double acc0 = 0.123456789;
    EXPECT_EQ(simd::sum_norms(acc0, base.data(), len),
              simd::scalar::sum_norms(acc0, base.data(), len))
        << "sum_norms " << simd::isa_name(isa);
    const std::vector<double> w = random_doubles(len, 3 + len);
    EXPECT_EQ(simd::sum_norms_weighted(acc0, base.data(), w.data(), len),
              simd::scalar::sum_norms_weighted(acc0, base.data(), w.data(),
                                               len))
        << "sum_norms_weighted " << simd::isa_name(isa);
    EXPECT_EQ(
        simd::sum_norm_diffs(acc0, base.data(), base1.data(), len),
        simd::scalar::sum_norm_diffs(acc0, base.data(), base1.data(), len))
        << "sum_norm_diffs " << simd::isa_name(isa);
    if (len >= 4) {
      const std::size_t q = len / 4;
      const double* p = base.data();
      EXPECT_EQ(simd::sum_norm_quads(acc0, p, p + 2 * q, p + 4 * q, p + 6 * q,
                                     q),
                simd::scalar::sum_norm_quads(acc0, p, p + 2 * q, p + 4 * q,
                                             p + 6 * q, q))
          << "sum_norm_quads " << simd::isa_name(isa);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Lengths, SimdPrimitiveParity,
                         ::testing::Values(0, 1, 2, 3, 4, 5, 7, 8, 9, 16,
                                           33));

TEST(SimdDispatch, SetIsaClampsToSupport) {
  IsaGuard guard;
  const simd::Isa max = simd::max_supported_isa();
  EXPECT_EQ(simd::set_isa(simd::Isa::kAvx512),
            static_cast<int>(max) >= static_cast<int>(simd::Isa::kAvx512)
                ? simd::Isa::kAvx512
                : max);
  EXPECT_EQ(simd::set_isa(simd::Isa::kScalar), simd::Isa::kScalar);
  EXPECT_EQ(simd::active_isa(), simd::Isa::kScalar);
}

TEST(SimdDispatch, IsaNamesAreStable) {
  EXPECT_STREQ(simd::isa_name(simd::Isa::kScalar), "scalar");
  EXPECT_STREQ(simd::isa_name(simd::Isa::kAvx2), "avx2");
  EXPECT_STREQ(simd::isa_name(simd::Isa::kAvx512), "avx512");
}

TEST(SimdDispatch, Mul16TableMatchesScalar) {
  IsaGuard guard;
  const std::vector<double> tbl = random_doubles(16, 5);
  const std::vector<double> base = random_doubles(16 * 9, 6);
  std::vector<double> expect = base;
  simd::scalar::mul_table16_blocks(expect.data(), 9, tbl.data());
  for (const simd::Isa isa : available_isas()) {
    ASSERT_EQ(simd::set_isa(isa), isa);
    std::vector<double> got = base;
    simd::mul_table16_blocks(got.data(), 9, tbl.data());
    EXPECT_EQ(got, expect) << "mul_table16_blocks " << simd::isa_name(isa);
  }
}

// The radix-4 fused primitives claim bit-identity with the one-level-at-a-
// time sweeps they replace. Pin that against the unfused scalar loops
// directly, for every backend.
TEST(SimdDispatch, FusedRadix4MatchesUnfusedLevelSweeps) {
  IsaGuard guard;
  const double c = 0.80114361554693371;  // cos/sin of an arbitrary angle
  const double s = 0.59847214410395655;
  for (int levels = 1; levels <= 7; ++levels) {
    const std::size_t blk = std::size_t{1} << levels;
    const std::vector<double> base = random_doubles(2 * blk, 17 + levels);
    // Unfused reference: level 0 via interleaved pairs, then one
    // butterfly sweep per level — the exact pre-radix-4 pass-1 loop.
    std::vector<double> expect = base;
    simd::scalar::rx_interleaved_pairs(expect.data(), blk, c, s);
    for (int q = 1; q < levels; ++q) {
      const std::size_t stride = std::size_t{1} << q;
      for (std::size_t b0 = 0; b0 < blk; b0 += 2 * stride) {
        simd::scalar::rx_butterfly_runs(expect.data() + 2 * b0,
                                        expect.data() + 2 * (b0 + stride),
                                        stride, c, s);
      }
    }
    for (const simd::Isa isa : available_isas()) {
      ASSERT_EQ(simd::set_isa(isa), isa);
      std::vector<double> got = base;
      simd::rx_block_levels(got.data(), levels, c, s);
      EXPECT_EQ(got, expect) << "rx_block_levels levels=" << levels << " "
                             << simd::isa_name(isa);
      if (levels >= 2) {
        std::vector<double> quad = base;
        simd::rx_quad01(quad.data(), blk, c, s);
        std::vector<double> quad_ref = base;
        simd::scalar::rx_quad01(quad_ref.data(), blk, c, s);
        EXPECT_EQ(quad, quad_ref) << "rx_quad01 " << simd::isa_name(isa);
      }
    }
  }
  // rx_butterfly2_runs against two sequential butterfly sweeps, per run
  // length (the pass-2 tile widths are multiples of 4; cover a tail too).
  for (const std::size_t len : {std::size_t{4}, std::size_t{8},
                                std::size_t{13}, std::size_t{256}}) {
    const std::vector<double> base = random_doubles(8 * len, 31 + len);
    std::vector<double> expect = base;
    double* e = expect.data();
    simd::scalar::rx_butterfly_runs(e, e + 2 * len, len, c, s);
    simd::scalar::rx_butterfly_runs(e + 4 * len, e + 6 * len, len, c, s);
    simd::scalar::rx_butterfly_runs(e, e + 4 * len, len, c, s);
    simd::scalar::rx_butterfly_runs(e + 2 * len, e + 6 * len, len, c, s);
    for (const simd::Isa isa : available_isas()) {
      ASSERT_EQ(simd::set_isa(isa), isa);
      std::vector<double> got = base;
      double* g = got.data();
      simd::rx_butterfly2_runs(g, g + 2 * len, g + 4 * len, g + 6 * len, len,
                               c, s);
      EXPECT_EQ(got, expect) << "rx_butterfly2_runs len=" << len << " "
                             << simd::isa_name(isa);
    }
  }
}

}  // namespace
}  // namespace qq::sim
