#pragma once
// Multi-tenant solve service — the long-lived front door above the solver
// registry and the QAOA^2 pipeline (ROADMAP item 1). Many concurrent
// requests (graph + registry spec + workload class + optional deadline /
// evaluation budget) multiplex ONE persistent sched::WorkflowEngine:
//
//   submit -> validate spec -> ADMIT (bounded queues, typed rejection)
//          -> decompose (QAOA^2 streaming pipeline when the graph exceeds
//             the device, one direct solver task otherwise)
//          -> tasks tagged with the tenant's fair-share class and the
//             request's cancellation group
//          -> finalize exactly once (completed / cancelled / failed)
//
// Fairness is the engine's start-time fair queuing over per-class virtual
// time (modeled on ClickHouse's workload resource manager): a weight-3
// tenant drains ~3x the work of a weight-1 tenant under contention.
// Cancellation is cooperative at two grains: the request's group cancels
// every still-queued task at task-graph boundaries, and the
// util::RequestContext stops long COBYLA loops / anneal sweeps / GW
// slicings MID-solve. Deadlines and evaluation budgets ride the same
// context. Admission control rejects — with a typed reason — instead of
// queuing unboundedly, and shutdown drains gracefully (or cancels
// everything in flight first: shutdown_now).

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cache/solve_cache.hpp"
#include "maxcut/cut.hpp"
#include "qgraph/graph.hpp"
#include "qgraph/partition.hpp"
#include "sched/engine.hpp"
#include "util/cancellation.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace qq::service {

/// One tenant / workload class: a name requests select by, a fair-share
/// weight (the engine-level SFQ weight) and a per-class admission bound.
struct WorkloadClassConfig {
  std::string name = "default";
  double weight = 1.0;
  /// Maximum requests of this class in flight at once; excess is rejected
  /// with RejectReason::kOverloaded.
  std::size_t max_in_flight = 64;
};

struct ServiceOptions {
  /// The one engine the service owns (slot caps = the simulated cluster).
  sched::EngineOptions engine;
  /// Workload classes; empty means a single "default" class (weight 1).
  /// Requests name their class; an unknown name is rejected as invalid.
  std::vector<WorkloadClassConfig> classes;
  /// Global admission bound across every class.
  std::size_t max_in_flight_requests = 256;
  /// Deadlines shorter than this are rejected up front as infeasible
  /// (kDeadlineInfeasible) instead of being admitted only to expire.
  /// Non-positive deadlines are always infeasible.
  double min_feasible_deadline_seconds = 0.0;
  /// Partition method for decomposed (QAOA^2) requests.
  graph::PartitionMethod partition_method =
      graph::PartitionMethod::kGreedyModularity;
  /// Completed-request latencies retained per class for the percentile
  /// stats (a ring; older samples fall out).
  std::size_t latency_window = 512;
  /// Fleet-wide solve cache the service owns (ROADMAP item 4): every
  /// leaf/coarse/direct solve routes through it, so a hot subgraph is
  /// solved once per fleet, not once per request. Engaged by default —
  /// with its seed-sensitive keys, results are bit-for-bit identical to
  /// the uncached service. nullopt disables caching entirely (requests'
  /// cache_mode is then ignored).
  std::optional<cache::CacheOptions> cache = cache::CacheOptions{};
};

/// One solve request. The graph is OWNED by the request (the service keeps
/// it alive until the request settles — callers need not).
struct ServiceRequest {
  graph::Graph graph;
  /// Registry spec of the (sub-)solver: "qaoa:p=2", "best:qaoa|gw", ...
  std::string solver_spec = "qaoa";
  /// Deeper-level / merge specs of a decomposed solve; empty selects the
  /// QAOA^2 defaults ("gw" / "qaoa").
  std::string deeper_spec;
  std::string merge_spec;
  /// Workload class name; empty selects the first configured class.
  std::string workload_class;
  std::uint64_t seed = 0;
  /// Qubit budget: a graph larger than this decomposes through the QAOA^2
  /// streaming pipeline; one that fits (or max_qubits == 0) dispatches as
  /// a single solver task.
  int max_qubits = 0;
  /// Wall-clock deadline from admission; expiry cancels the request
  /// (StopReason::kDeadline) at the next cooperative checkpoint.
  std::optional<double> deadline_seconds;
  /// Objective-evaluation budget shared by every solve of the request;
  /// exhaustion stops it (StopReason::kBudget).
  std::optional<std::int64_t> eval_budget;
  /// Cache participation of this request's solves (ignored when the
  /// service has no cache): kOn reads and fills, kReadOnly reads without
  /// filling or waiting on in-flight fills, kOff bypasses.
  cache::CacheMode cache_mode = cache::CacheMode::kOn;
  /// Seed cache MISSES with transferred (gamma, beta) schedules from the
  /// cache's warm-start advisor. Off by default: warm starts change
  /// optimizer trajectories, trading reproducibility for fewer COBYLA
  /// evaluations.
  bool warm_start = false;
};

enum class RequestStatus : std::uint8_t {
  kPending,    ///< admitted, not yet settled
  kCompleted,  ///< solved; the outcome carries the cut
  kCancelled,  ///< stopped: explicit cancel, deadline, or budget
  kFailed,     ///< a task errored
  kRejected,   ///< never admitted; see RejectReason
};

enum class RejectReason : std::uint8_t {
  kNone = 0,
  kOverloaded,          ///< global or per-class in-flight bound hit
  kDeadlineInfeasible,  ///< deadline below the feasibility floor
  kInvalidRequest,      ///< malformed spec / unknown class / bad graph
  kShuttingDown,        ///< service no longer admits
};

const char* request_status_name(RequestStatus status) noexcept;
const char* reject_reason_name(RejectReason reason) noexcept;

/// Terminal state of a request (valid once status != kPending).
struct RequestOutcome {
  RequestStatus status = RequestStatus::kPending;
  RejectReason reject_reason = RejectReason::kNone;
  /// Why a kCancelled request stopped (cancel / deadline / budget).
  util::StopReason stop_reason = util::StopReason::kNone;
  maxcut::CutResult cut;       ///< valid when kCompleted
  std::string error;           ///< what() of the first task error (kFailed)
  int engine_tasks = 0;        ///< tasks this request put on the engine
  double latency_seconds = 0;  ///< admission -> settle wall time
};

namespace detail {
struct RequestRecord;
}  // namespace detail

/// Caller-side handle to one submitted request. Copyable; the underlying
/// record lives until every ticket is gone, even after the service drops
/// it.
class RequestTicket {
 public:
  RequestTicket() = default;

  bool valid() const noexcept { return rec_ != nullptr; }
  std::uint64_t id() const noexcept;
  RequestStatus status() const;
  /// True once the request has settled (any terminal status).
  bool done() const;
  /// Terminal outcome; throws std::logic_error while still pending.
  RequestOutcome outcome() const;

 private:
  friend class SolveService;
  explicit RequestTicket(std::shared_ptr<detail::RequestRecord> rec)
      : rec_(std::move(rec)) {}

  std::shared_ptr<detail::RequestRecord> rec_;
};

/// Per-class load/latency snapshot (ServiceStats).
struct ClassLoad {
  std::string name;
  double weight = 1.0;
  std::size_t submitted = 0;  ///< admission attempts naming this class
  std::size_t in_flight = 0;
  std::size_t completed = 0;
  std::size_t cancelled = 0;
  std::size_t failed = 0;
  std::size_t rejected = 0;
  double p50_seconds = 0.0;  ///< completed-request latency percentiles
  double p95_seconds = 0.0;
  double p99_seconds = 0.0;
  /// Engine-side: Σ service time of this class's tasks, Σ slot/queue wait.
  double busy_seconds = 0.0;
  double queue_wait_seconds = 0.0;
  /// Cache-side per-class sharing counters (zero when the service runs
  /// uncached): leaf solves answered from the cache, solved cold, and
  /// coalesced onto another request's in-flight fill.
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_coalesced = 0;
};

struct ServiceStats {
  std::vector<ClassLoad> classes;
  std::size_t in_flight = 0;
  std::size_t completed = 0;
  std::size_t cancelled = 0;
  std::size_t failed = 0;
  std::size_t rejected = 0;
  sched::EngineStats engine;  ///< gauges included (ready/in-flight per kind)
  bool cache_enabled = false;
  cache::CacheStats cache;  ///< totals + entry/in-flight gauges
};

/// Render `stats` as the live-observability table (one row per class plus
/// totals and engine gauges).
std::string render_stats(const ServiceStats& stats);

class SolveService {
 public:
  explicit SolveService(const ServiceOptions& options);
  /// shutdown_now(): cancels everything in flight, drains, then destroys
  /// the engine.
  ~SolveService();

  SolveService(const SolveService&) = delete;
  SolveService& operator=(const SolveService&) = delete;

  const ServiceOptions& options() const noexcept { return options_; }
  /// The engine requests multiplex (exposed for cooperative waiting and
  /// tests; submitting unrelated tasks is allowed — they run as class 0).
  sched::WorkflowEngine& engine() noexcept { return *engine_; }
  /// The service-owned solve cache; null when options().cache is nullopt.
  cache::SolveCache* solve_cache() noexcept { return cache_.get(); }

  /// Validate, admit, decompose, and start `request`. Never blocks on
  /// capacity: over-capacity (or invalid / post-shutdown) requests return
  /// an immediately-settled kRejected ticket with a typed reason.
  RequestTicket submit(ServiceRequest request);

  /// Request cooperative cancellation: still-queued tasks cancel at once,
  /// running solves stop at their next poll. Returns false when the
  /// request had already settled. Does not block on the request settling.
  bool cancel(const RequestTicket& ticket);

  /// Block until `ticket` settles, donating this thread to the engine
  /// meanwhile (safe to call from anywhere, including many waiters).
  void wait(const RequestTicket& ticket);

  /// Wait until the service is quiescent: every admitted request settled
  /// AND its bookkeeping finished (requests admitted while draining are
  /// waited on too).
  void drain();

  /// Stop admitting (subsequent submits reject with kShuttingDown), then
  /// drain gracefully.
  void shutdown();

  /// Stop admitting and cancel every request in flight, then drain.
  void shutdown_now();

  ServiceStats stats() const;

 private:
  struct ClassState;

  RequestTicket reject(std::shared_ptr<detail::RequestRecord> rec,
                       RejectReason reason);
  void finalize(const std::shared_ptr<detail::RequestRecord>& rec,
                std::exception_ptr err, maxcut::CutResult cut,
                int engine_tasks);
  std::vector<std::shared_ptr<detail::RequestRecord>> live_snapshot() const;

  ServiceOptions options_;
  std::unique_ptr<sched::WorkflowEngine> engine_;
  /// Owned solve cache (internally synchronized); created before the
  /// classes, outlives every in-flight solve. Null when caching is off.
  std::unique_ptr<cache::SolveCache> cache_;
  /// The vector and each ClassState's config/engine_class are immutable
  /// after construction; the mutable per-class counters inside are guarded
  /// by mutex_ (inexpressible per-field through the unique_ptr — enforced
  /// by review and the TSan leg, not the analysis).
  std::vector<std::unique_ptr<ClassState>> classes_;

  /// Lock order: mutex_ (or a record's mutex) before any engine lock,
  /// never the reverse — finalize/stats release mutex_ before touching the
  /// engine.
  mutable util::Mutex mutex_;
  /// Signalled when in_flight_ reaches zero — the quiescence point drain()
  /// (and so the destructor) waits for; see finalize().
  util::CondVar drained_cv_;
  bool accepting_ QQ_GUARDED_BY(mutex_) = true;
  std::uint64_t next_id_ QQ_GUARDED_BY(mutex_) = 1;
  std::size_t in_flight_ QQ_GUARDED_BY(mutex_) = 0;
  std::size_t completed_ QQ_GUARDED_BY(mutex_) = 0;
  std::size_t cancelled_ QQ_GUARDED_BY(mutex_) = 0;
  std::size_t failed_ QQ_GUARDED_BY(mutex_) = 0;
  std::size_t rejected_ QQ_GUARDED_BY(mutex_) = 0;
  std::vector<std::shared_ptr<detail::RequestRecord>> live_
      QQ_GUARDED_BY(mutex_);
};

}  // namespace qq::service
