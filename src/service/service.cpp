#include "service/service.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <utility>

#include "qaoa2/qaoa2.hpp"
#include "solver/registry.hpp"
#include "util/mutex.hpp"
#include "util/table.hpp"
#include "util/thread_annotations.hpp"

namespace qq::service {

namespace detail {

/// Shared state of one request; co-owned by the service (while live), every
/// RequestTicket copy, and the in-flight task callbacks.
struct RequestRecord {
  std::uint64_t id = 0;
  /// Index into SolveService's class table; npos for "no class resolved"
  /// (rejected before admission).
  static constexpr std::size_t kNoClass = static_cast<std::size_t>(-1);
  std::size_t class_index = kNoClass;
  sched::ClassId engine_class = 0;
  util::RequestContext context;
  ServiceRequest request;  ///< owns the graph for the request's lifetime
  std::unique_ptr<qaoa2::Qaoa2Driver> driver;  ///< decomposed dispatch
  solver::SolverPtr direct;                    ///< single-task dispatch
  maxcut::CutResult direct_cut;  ///< written by the one direct task
  double admit_s = 0.0;          ///< engine clock at admission

  mutable util::Mutex mutex;
  util::CondVar cv;
  sched::GroupId group QQ_GUARDED_BY(mutex) = sched::kNoGroup;
  /// Keepalive of a decomposed solve; dropped at finalize.
  std::shared_ptr<qaoa2::StreamPipeline> pipeline QQ_GUARDED_BY(mutex);
  RequestOutcome outcome QQ_GUARDED_BY(mutex);

  bool settled_locked() const QQ_REQUIRES(mutex) {
    return outcome.status != RequestStatus::kPending;
  }
};

}  // namespace detail

using detail::RequestRecord;

namespace {

double percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  const std::size_t k = static_cast<std::size_t>(
      p * static_cast<double>(values.size() - 1) + 0.5);
  std::nth_element(values.begin(),
                   values.begin() + static_cast<std::ptrdiff_t>(k),
                   values.end());
  return values[k];
}

}  // namespace

const char* request_status_name(RequestStatus status) noexcept {
  switch (status) {
    case RequestStatus::kPending: return "pending";
    case RequestStatus::kCompleted: return "completed";
    case RequestStatus::kCancelled: return "cancelled";
    case RequestStatus::kFailed: return "failed";
    case RequestStatus::kRejected: return "rejected";
  }
  return "?";
}

const char* reject_reason_name(RejectReason reason) noexcept {
  switch (reason) {
    case RejectReason::kNone: return "none";
    case RejectReason::kOverloaded: return "overloaded";
    case RejectReason::kDeadlineInfeasible: return "deadline-infeasible";
    case RejectReason::kInvalidRequest: return "invalid-request";
    case RejectReason::kShuttingDown: return "shutting-down";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// RequestTicket

std::uint64_t RequestTicket::id() const noexcept {
  return rec_ != nullptr ? rec_->id : 0;
}

RequestStatus RequestTicket::status() const {
  if (rec_ == nullptr) {
    throw std::logic_error("RequestTicket::status: empty ticket");
  }
  util::MutexLock lock(rec_->mutex);
  return rec_->outcome.status;
}

bool RequestTicket::done() const {
  return status() != RequestStatus::kPending;
}

RequestOutcome RequestTicket::outcome() const {
  if (rec_ == nullptr) {
    throw std::logic_error("RequestTicket::outcome: empty ticket");
  }
  util::MutexLock lock(rec_->mutex);
  if (!rec_->settled_locked()) {
    throw std::logic_error("RequestTicket::outcome: request still pending");
  }
  return rec_->outcome;
}

// ---------------------------------------------------------------------------
// SolveService

/// Per-class service-side state (admission counts + latency ring). The
/// engine-side counters (busy seconds, queue wait, fair-share accounting)
/// live in the engine's FairClassStats and are joined in stats().
struct SolveService::ClassState {
  WorkloadClassConfig config;
  sched::ClassId engine_class = 0;
  /// Cache-side class id for per-class hit/miss attribution; kNoClass when
  /// the service runs uncached or the cache's class table is full.
  int cache_class = cache::SolveCache::kNoClass;
  std::size_t submitted = 0;
  std::size_t in_flight = 0;
  std::size_t completed = 0;
  std::size_t cancelled = 0;
  std::size_t failed = 0;
  std::size_t rejected = 0;
  /// Completed-request latency ring (seconds), newest overwrites oldest.
  std::vector<double> latencies;
  std::size_t latency_pos = 0;
};

SolveService::SolveService(const ServiceOptions& options)
    : options_(options),
      engine_(std::make_unique<sched::WorkflowEngine>(options.engine)) {
  if (options_.cache) {
    cache_ = std::make_unique<cache::SolveCache>(*options_.cache);
  }
  std::vector<WorkloadClassConfig> configs = options.classes;
  if (configs.empty()) configs.push_back(WorkloadClassConfig{});
  classes_.reserve(configs.size());
  for (WorkloadClassConfig& config : configs) {
    for (const auto& existing : classes_) {
      if (existing->config.name == config.name) {
        throw std::invalid_argument("SolveService: duplicate class name '" +
                                    config.name + "'");
      }
    }
    auto state = std::make_unique<ClassState>();
    sched::FairClassConfig fair;
    fair.name = config.name;
    fair.weight = config.weight;  // add_class validates weight > 0
    state->engine_class = engine_->add_class(std::move(fair));
    if (cache_ != nullptr) {
      state->cache_class = cache_->register_class(config.name);
    }
    state->config = std::move(config);
    classes_.push_back(std::move(state));
  }
}

SolveService::~SolveService() {
  shutdown_now();
  // The engine destructor drains whatever shutdown_now's cancellations
  // left running; every request has settled by then, so no task callback
  // can touch the service after this returns.
  engine_.reset();
}

RequestTicket SolveService::reject(std::shared_ptr<RequestRecord> rec,
                                   RejectReason reason) {
  {
    util::MutexLock lock(rec->mutex);
    rec->outcome.status = RequestStatus::kRejected;
    rec->outcome.reject_reason = reason;
  }
  {
    util::MutexLock lock(mutex_);
    ++rejected_;
    if (rec->class_index != RequestRecord::kNoClass) {
      ++classes_[rec->class_index]->rejected;
    }
  }
  return RequestTicket(std::move(rec));
}

RequestTicket SolveService::submit(ServiceRequest request) {
  auto rec = std::make_shared<RequestRecord>();
  rec->request = std::move(request);
  const ServiceRequest& req = rec->request;

  // Resolve the workload class (empty name = the first configured class).
  if (req.workload_class.empty()) {
    rec->class_index = 0;
  } else {
    for (std::size_t i = 0; i < classes_.size(); ++i) {
      if (classes_[i]->config.name == req.workload_class) {
        rec->class_index = i;
        break;
      }
    }
    if (rec->class_index == RequestRecord::kNoClass) {
      return reject(std::move(rec), RejectReason::kInvalidRequest);
    }
  }
  ClassState& cls = *classes_[rec->class_index];
  rec->engine_class = cls.engine_class;

  // Validate the solver spec up front by building the solver/driver — a
  // malformed spec must reject, not fail mid-flight.
  const bool decomposed =
      req.max_qubits > 0 && req.graph.num_nodes() > req.max_qubits;
  cache::CachePolicy cache_policy;
  cache_policy.mode = req.cache_mode;
  cache_policy.warm_start = req.warm_start;
  cache_policy.class_id = cls.cache_class;
  try {
    if (decomposed) {
      qaoa2::Qaoa2Options qopts;
      qopts.max_qubits = req.max_qubits;
      qopts.partition_method = options_.partition_method;
      qopts.sub_solver_spec = req.solver_spec;
      if (!req.deeper_spec.empty()) qopts.deeper_solver_spec = req.deeper_spec;
      if (!req.merge_spec.empty()) qopts.merge_solver_spec = req.merge_spec;
      qopts.seed = req.seed;
      qopts.solve_cache = cache_.get();
      qopts.cache_policy = cache_policy;
      rec->driver = std::make_unique<qaoa2::Qaoa2Driver>(qopts);
    } else {
      rec->direct = solver::SolverRegistry::global().make(req.solver_spec);
    }
  } catch (const std::invalid_argument&) {
    return reject(std::move(rec), RejectReason::kInvalidRequest);
  }

  // Deadline feasibility: don't admit work that cannot finish in time.
  if (req.deadline_seconds &&
      (*req.deadline_seconds <= 0.0 ||
       *req.deadline_seconds < options_.min_feasible_deadline_seconds)) {
    return reject(std::move(rec), RejectReason::kDeadlineInfeasible);
  }

  // Admission: bounded queues, typed rejection, never blocking. The
  // decision leaves the critical section as a local — reject() retakes
  // mutex_, and rec->outcome is rec->mutex territory, not mutex_'s.
  RejectReason admission = RejectReason::kNone;
  {
    util::MutexLock lock(mutex_);
    ++cls.submitted;
    if (!accepting_) {
      admission = RejectReason::kShuttingDown;
    } else if (in_flight_ < options_.max_in_flight_requests &&
               cls.in_flight < cls.config.max_in_flight) {
      rec->id = next_id_++;
      ++in_flight_;
      ++cls.in_flight;
      live_.push_back(rec);
    } else {
      admission = RejectReason::kOverloaded;
    }
  }
  if (admission != RejectReason::kNone) {
    return reject(std::move(rec), admission);
  }

  // Admitted. Arm the stop state and start the task graph. Settle
  // callbacks may fire on other threads before submit() returns — every
  // field they read is set before the first engine submission.
  rec->admit_s = engine_->now();
  if (req.deadline_seconds) rec->context.set_deadline_after(*req.deadline_seconds);
  if (req.eval_budget) rec->context.arm_eval_budget(*req.eval_budget);
  // The group id lives on as a local: the engine call stays outside
  // rec->mutex (lock order: record mutex before engine mutex, and
  // solve_async may settle synchronously through finalize).
  const sched::GroupId group = engine_->open_group();
  {
    util::MutexLock lock(rec->mutex);
    rec->group = group;
  }

  if (decomposed) {
    qaoa2::SolveTags tags;
    tags.fair_class = rec->engine_class;
    tags.group = group;
    tags.context = &rec->context;
    auto pipeline = rec->driver->solve_async(
        *engine_, rec->request.graph, tags,
        [this, rec](qaoa2::Qaoa2Result result, std::exception_ptr err) {
          finalize(rec, err, std::move(result.cut), result.engine_tasks);
        });
    util::MutexLock lock(rec->mutex);
    // The keepalive matters only while pending; a request that already
    // settled (fast solve or instant cancel) must not re-create the
    // rec -> pipeline -> done -> rec cycle finalize just broke.
    if (!rec->settled_locked()) rec->pipeline = std::move(pipeline);
  } else {
    sched::Task task;
    task.kind = rec->direct->resource_kind();
    task.fair_class = rec->engine_class;
    task.group = group;
    // Direct solvers are built from the global registry defaults, so the
    // spec string alone identifies the configuration — it is the cache key.
    cache::SolveCache* solve_cache = cache_.get();
    task.work = [rec, solve_cache, cache_policy] {
      rec->context.throw_if_stopped();
      solver::SolveRequest sreq;
      sreq.graph = &rec->request.graph;
      sreq.seed = rec->request.seed;
      sreq.context = &rec->context;
      rec->direct_cut =
          solve_cache == nullptr
              ? rec->direct->solve(sreq).cut
              : solve_cache
                    ->solve_through(*rec->direct, sreq,
                                    rec->request.solver_spec, cache_policy)
                    .cut;
      // A backend stopped mid-solve returns its best-so-far; the boundary
      // re-check maps the request to kCancelled, not kCompleted.
      rec->context.throw_if_stopped();
    };
    task.on_settled = [this, rec](std::exception_ptr err) {
      finalize(rec, err, std::move(rec->direct_cut), 1);
    };
    engine_->submit(std::move(task));
  }
  return RequestTicket(std::move(rec));
}

void SolveService::finalize(const std::shared_ptr<RequestRecord>& rec,
                            std::exception_ptr err, maxcut::CutResult cut,
                            int engine_tasks) {
  RequestStatus status;
  // Locals carried out of the record's critical section: the class-table
  // update below runs under mutex_ (never both locks at once), and the
  // engine call between the two runs under neither.
  double latency = 0.0;
  sched::GroupId group = sched::kNoGroup;
  {
    util::MutexLock lock(rec->mutex);
    if (rec->settled_locked()) return;
    RequestOutcome& out = rec->outcome;
    if (err == nullptr) {
      status = RequestStatus::kCompleted;
      out.cut = std::move(cut);
    } else {
      try {
        std::rethrow_exception(err);
      } catch (const util::CancelledError& cancelled) {
        status = RequestStatus::kCancelled;
        out.stop_reason = cancelled.reason();
      } catch (const std::exception& e) {
        // A request stopped mid-solve can surface any wrapped error; the
        // context is the authority on whether this was a stop or a fault.
        if (rec->context.stopped()) {
          status = RequestStatus::kCancelled;
          out.stop_reason = rec->context.stop_reason();
        } else {
          status = RequestStatus::kFailed;
          out.error = e.what();
        }
      } catch (...) {
        status = RequestStatus::kFailed;
        out.error = "unknown error";
      }
    }
    out.status = status;
    out.engine_tasks = engine_tasks;
    out.latency_seconds = engine_->now() - rec->admit_s;
    latency = out.latency_seconds;
    group = rec->group;
    rec->pipeline.reset();
  }
  rec->cv.notify_all();

  // The ticket's status is now terminal, but the service must not be torn
  // down yet: drain() (and so the destructor) waits for in_flight_ to
  // reach zero, and this function keeps touching the engine and the class
  // tables until then. Everything service-owned is finished BEFORE the
  // in_flight_ decrement below; nothing after the locked block may touch
  // `this`.
  engine_->close_group(group);

  {
    util::MutexLock lock(mutex_);
    ClassState& cls = *classes_[rec->class_index];
    --in_flight_;
    --cls.in_flight;
    switch (status) {
      case RequestStatus::kCompleted:
        ++completed_;
        ++cls.completed;
        if (options_.latency_window > 0) {
          if (cls.latencies.size() < options_.latency_window) {
            cls.latencies.push_back(latency);
          } else {
            cls.latencies[cls.latency_pos] = latency;
            cls.latency_pos = (cls.latency_pos + 1) % options_.latency_window;
          }
        }
        break;
      case RequestStatus::kCancelled:
        ++cancelled_;
        ++cls.cancelled;
        break;
      default:
        ++failed_;
        ++cls.failed;
        break;
    }
    live_.erase(std::remove(live_.begin(), live_.end(), rec), live_.end());
    if (in_flight_ == 0) drained_cv_.notify_all();
  }
}

bool SolveService::cancel(const RequestTicket& ticket) {
  if (!ticket.valid()) return false;
  const std::shared_ptr<RequestRecord>& rec = ticket.rec_;
  sched::GroupId group;
  {
    util::MutexLock lock(rec->mutex);
    if (rec->settled_locked()) return false;
    group = rec->group;
  }
  rec->context.cancel();
  // Queued tasks cancel right here (their settles — possibly the request's
  // finalize — run on THIS thread); running ones observe the context at
  // their next poll and settle on their own threads.
  engine_->cancel_group(group);
  return true;
}

void SolveService::wait(const RequestTicket& ticket) {
  if (!ticket.valid()) {
    throw std::logic_error("SolveService::wait: empty ticket");
  }
  const std::shared_ptr<RequestRecord>& rec = ticket.rec_;
  for (;;) {
    {
      util::MutexLock lock(rec->mutex);
      if (rec->settled_locked()) return;
    }
    // Donate this thread to the engine; nap only when nothing is
    // claimable (everything dispatched is already running elsewhere).
    // Predicate-free wait: the top of the loop re-checks settled under
    // the lock, so a missed 1 ms nap costs latency, never correctness.
    if (!engine_->try_run_one()) {
      util::MutexLock lock(rec->mutex);
      if (!rec->settled_locked()) {
        rec->cv.wait_for(lock, std::chrono::milliseconds(1));
      }
    }
  }
}

std::vector<std::shared_ptr<RequestRecord>> SolveService::live_snapshot()
    const {
  util::MutexLock lock(mutex_);
  return live_;
}

void SolveService::drain() {
  // Quiescence, not just settled tickets: a request's status turns
  // terminal slightly before its finalize finishes the service-side
  // bookkeeping on whichever thread settled it. The destructor relies on
  // drain(), so it must wait for in_flight_ == 0 — past which no finalize
  // touches the engine or the class tables — not merely for every ticket
  // to read as done.
  for (;;) {
    for (const auto& rec : live_snapshot()) wait(RequestTicket(rec));
    util::MutexLock lock(mutex_);
    if (in_flight_ == 0) return;
    drained_cv_.wait_for(lock, std::chrono::milliseconds(1));
  }
}

void SolveService::shutdown() {
  {
    util::MutexLock lock(mutex_);
    accepting_ = false;
  }
  drain();
}

void SolveService::shutdown_now() {
  {
    util::MutexLock lock(mutex_);
    accepting_ = false;
  }
  for (const auto& rec : live_snapshot()) cancel(RequestTicket(rec));
  drain();
}

ServiceStats SolveService::stats() const {
  ServiceStats out;
  {
    util::MutexLock lock(mutex_);
    out.in_flight = in_flight_;
    out.completed = completed_;
    out.cancelled = cancelled_;
    out.failed = failed_;
    out.rejected = rejected_;
    out.classes.reserve(classes_.size());
    for (const auto& cls : classes_) {
      ClassLoad load;
      load.name = cls->config.name;
      load.weight = cls->config.weight;
      load.submitted = cls->submitted;
      load.in_flight = cls->in_flight;
      load.completed = cls->completed;
      load.cancelled = cls->cancelled;
      load.failed = cls->failed;
      load.rejected = cls->rejected;
      load.p50_seconds = percentile(cls->latencies, 0.50);
      load.p95_seconds = percentile(cls->latencies, 0.95);
      load.p99_seconds = percentile(cls->latencies, 0.99);
      out.classes.push_back(std::move(load));
    }
  }
  // Join the engine-side per-class counters (busy seconds and queue wait —
  // the fair-share evidence) outside mutex_: engine locks come second in
  // every code path here, never the other way around.
  const std::vector<sched::FairClassStats> fair = engine_->class_stats();
  for (std::size_t i = 0; i < classes_.size(); ++i) {
    const sched::ClassId id = classes_[i]->engine_class;
    if (id < fair.size()) {
      out.classes[i].busy_seconds = fair[id].busy_seconds;
      out.classes[i].queue_wait_seconds = fair[id].queue_wait_seconds;
    }
  }
  out.engine = engine_->stats();
  if (cache_ != nullptr) {
    out.cache_enabled = true;
    out.cache = cache_->stats();
    // Join the cache's per-class counters by cache class id (registered in
    // classes_ order, so ids match indices unless the table overflowed).
    const std::vector<cache::ClassCacheStats> ccs = cache_->class_stats();
    for (std::size_t i = 0; i < classes_.size(); ++i) {
      const int id = classes_[i]->cache_class;
      if (id >= 0 && static_cast<std::size_t>(id) < ccs.size()) {
        out.classes[i].cache_hits = ccs[static_cast<std::size_t>(id)].hits;
        out.classes[i].cache_misses =
            ccs[static_cast<std::size_t>(id)].misses;
        out.classes[i].cache_coalesced =
            ccs[static_cast<std::size_t>(id)].coalesced;
      }
    }
  }
  return out;
}

std::string render_stats(const ServiceStats& stats) {
  std::vector<std::string> header = {"class", "weight", "in-flight", "done",
                                     "cancelled", "failed", "rejected",
                                     "p50 s", "p95 s", "p99 s", "busy s",
                                     "wait s"};
  if (stats.cache_enabled) {
    header.insert(header.end(), {"hit", "miss", "coal"});
  }
  util::Table table(header);
  for (const ClassLoad& cls : stats.classes) {
    std::vector<std::string> row = {
        cls.name, util::format_double(cls.weight, 2),
        std::to_string(cls.in_flight), std::to_string(cls.completed),
        std::to_string(cls.cancelled), std::to_string(cls.failed),
        std::to_string(cls.rejected),
        util::format_double(cls.p50_seconds, 4),
        util::format_double(cls.p95_seconds, 4),
        util::format_double(cls.p99_seconds, 4),
        util::format_double(cls.busy_seconds, 3),
        util::format_double(cls.queue_wait_seconds, 3)};
    if (stats.cache_enabled) {
      row.push_back(std::to_string(cls.cache_hits));
      row.push_back(std::to_string(cls.cache_misses));
      row.push_back(std::to_string(cls.cache_coalesced));
    }
    table.add_row(row);
  }
  std::string out = table.str();
  out += "totals: in-flight " + std::to_string(stats.in_flight) +
         ", completed " + std::to_string(stats.completed) + ", cancelled " +
         std::to_string(stats.cancelled) + ", failed " +
         std::to_string(stats.failed) + ", rejected " +
         std::to_string(stats.rejected) + "\n";
  out += "engine: ready q/c " + std::to_string(stats.engine.ready_quantum) +
         "/" + std::to_string(stats.engine.ready_classical) +
         ", in-flight q/c " + std::to_string(stats.engine.inflight_quantum) +
         "/" + std::to_string(stats.engine.inflight_classical) + "\n";
  if (stats.cache_enabled) {
    out += "cache: hits " + std::to_string(stats.cache.hits) + ", misses " +
           std::to_string(stats.cache.misses) + ", coalesced " +
           std::to_string(stats.cache.coalesced) + ", evictions " +
           std::to_string(stats.cache.evictions) + ", entries " +
           std::to_string(stats.cache.entries) + ", in-flight " +
           std::to_string(stats.cache.in_flight) + "\n";
  }
  return out;
}

}  // namespace qq::service
