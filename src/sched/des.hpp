#pragma once
// Deterministic discrete-event model of the paper's SLURM allocation
// policies (Fig. 1): hybrid jobs consist of a classical preparation phase,
// a quantum phase, and a classical post-processing phase.
//
//   * MPMD co-allocation holds one classical node AND one quantum device
//     for the job's entire lifetime — the quantum device idles during the
//     classical phases.
//   * Heterogeneous (staged) allocation holds the classical node for the
//     lifetime but acquires the quantum device only for the quantum phase,
//     so "before the first heterogeneous job finishes, a second one can
//     already start using the quantum device".
//
// The simulation quantifies the schematic: makespan, device utilization,
// and the idle fraction of the quantum allocation.

#include <vector>

namespace qq::sched {

enum class AllocationPolicy {
  kMpmd,
  kHeterogeneous,
};

/// Dispatch order. The paper's Fig. 2 caption suggests "a coordinator
/// could inspect the sub-graphs and calculate the most appropriate
/// resource allocation in advance" — these policies are that lookahead:
/// the coordinator knows each job's phase durations and reorders the
/// queue before dispatch.
enum class QueuePolicy {
  kFifo,                  ///< submission order
  kLongestQuantumFirst,   ///< LPT on the device-bound phase
  kShortestQuantumFirst,  ///< SPT: minimizes mean completion time
};

/// Phase durations (seconds of simulated time).
struct JobPhases {
  double classical_prep = 0.0;
  double quantum = 0.0;
  double classical_post = 0.0;

  double total() const noexcept {
    return classical_prep + quantum + classical_post;
  }
};

struct DesOptions {
  int quantum_devices = 1;
  int classical_nodes = 4;
  AllocationPolicy policy = AllocationPolicy::kMpmd;
  QueuePolicy queue = QueuePolicy::kFifo;
};

struct JobTrace {
  int job = 0;
  double start = 0.0;           ///< classical node acquired
  double quantum_start = 0.0;   ///< quantum phase begins on a device
  double quantum_end = 0.0;
  double finish = 0.0;          ///< classical node released
  double quantum_wait = 0.0;    ///< time blocked waiting for a device
};

struct DesResult {
  double makespan = 0.0;
  /// Mean job completion time (coordinator-visible latency).
  double mean_completion = 0.0;
  /// Σ quantum phase durations (useful compute on devices).
  double quantum_busy = 0.0;
  /// Σ time devices were *allocated* to jobs (>= busy under MPMD).
  double quantum_allocated = 0.0;
  /// 1 - busy/allocated: the Fig. 1 idle share of the quantum allocation.
  double quantum_alloc_idle_fraction = 0.0;
  /// busy / (devices * makespan): overall device utilization.
  double quantum_utilization = 0.0;
  std::vector<JobTrace> traces;
};

/// Jobs are dispatched in the order implied by options.queue; traces keep
/// the original job indices.
DesResult simulate_workload(const std::vector<JobPhases>& jobs,
                            const DesOptions& options);

}  // namespace qq::sched
