#include "sched/engine.hpp"

#include <algorithm>
#include <array>
#include <chrono>
#include <deque>
#include <stdexcept>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/cancellation.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace qq::sched {

namespace {
constexpr int kind_index(ResourceKind kind) noexcept {
  return kind == ResourceKind::kQuantum ? 0 : 1;
}

/// EWMA smoothing of per-class task cost (the virtual-time charge). New
/// observations get 20%: stable against one outlier, adapts within ~5
/// tasks.
constexpr double kCostEwmaAlpha = 0.2;
/// Cost estimate a class starts from before its first completion.
constexpr double kInitialCostEstimate = 1e-3;
}  // namespace

double ideal_parallel_seconds(double busy_quantum, double busy_classical,
                              std::size_t quantum_tasks,
                              std::size_t classical_tasks,
                              const EngineOptions& options,
                              std::size_t pool_width) {
  const double width =
      static_cast<double>(std::max<std::size_t>(std::size_t{1}, pool_width));
  const std::array<double, 2> busy = {busy_quantum, busy_classical};
  const std::array<std::size_t, 2> count = {quantum_tasks, classical_tasks};
  const std::array<int, 2> caps = {options.quantum_slots,
                                   options.classical_slots};
  double ideal = 0.0;
  double busy_used = 0.0;
  int slots_used = 0;
  for (int k = 0; k < 2; ++k) {
    if (count[k] == 0) continue;
    ideal = std::max(ideal, busy[k] / std::min<double>(caps[k], width));
    busy_used += busy[k];
    slots_used += caps[k];
  }
  if (slots_used > 0) {
    ideal = std::max(ideal, busy_used / std::min<double>(slots_used, width));
  }
  return ideal;
}

// The whole scheduling state lives behind a shared_ptr: pool wrappers keep
// it alive, so a wrapper whose task was already claimed (by the coordinator
// or a faster worker) degrades to a harmless no-op even if it is popped
// after the engine was destroyed. Task *closures* are a different matter —
// they reference caller frames — which is why the destructor drains.
struct WorkflowEngine::Impl {
  enum class Status : std::uint8_t {
    kBlocked,     ///< waiting on dependencies
    kReady,       ///< in a ready queue, waiting for a slot
    kDispatched,  ///< holds a slot, handed to the pool, claimable
    kRunning,     ///< claimed by a pool worker or a waiting coordinator
    kDone,        ///< work returned (possibly via exception; see error)
    kCancelled,   ///< never ran: dependency failure or group cancel
  };

  struct Node {
    Task task;
    Status status = Status::kBlocked;
    int unmet = 0;
    std::vector<std::size_t> successors;
    TaskTiming timing;
    std::exception_ptr error;
  };

  /// One fair-share class: per-kind ready deque + SFQ virtual time. The
  /// deques may hold STALE entries (tasks group-cancelled while queued);
  /// `ready_live` counts only live ones, and dispatch skips stale entries
  /// on pop.
  struct ClassInfo {
    std::string name;
    double weight = 1.0;
    std::array<std::deque<std::size_t>, 2> ready;
    std::array<std::size_t, 2> ready_live{{0, 0}};
    std::array<std::size_t, 2> running{{0, 0}};  ///< dispatched or running
    std::array<double, 2> vtime{{0.0, 0.0}};
    double ewma_cost = kInitialCostEstimate;
    std::size_t dispatched = 0;
    std::size_t completed = 0;
    std::size_t cancelled = 0;
    double busy_seconds = 0.0;
    double queue_wait = 0.0;
  };

  struct GroupInfo {
    bool cancelled = false;
    /// Members submitted so far; pruned only by cancel_group/close_group
    /// (settled entries go stale, which cancel_group skips).
    std::vector<std::size_t> members;
  };

  using SettledFn = std::function<void(std::exception_ptr)>;

  explicit Impl(const EngineOptions& options)
      : pool(options.pool != nullptr ? options.pool
                                     : &util::ThreadPool::global()),
        caps{options.quantum_slots, options.classical_slots} {
    classes.push_back(ClassInfo{});
    classes.back().name = "default";
  }

  double now() const noexcept { return clock.seconds(); }

  // ---- *_locked helpers: QQ_REQUIRES(mutex) makes the old implicit
  // "called under the lock" convention a compiler-checked contract --------

  /// Move a node into its class's ready queue for kind k. Successors jump
  /// the queue (depth-first, see run_task); fresh submissions join the
  /// back.
  void enqueue_ready_locked(std::size_t i, bool front) QQ_REQUIRES(mutex) {
    Node& node = nodes[i];
    const int k = kind_index(node.task.kind);
    ClassInfo& cls = classes[node.task.fair_class];
    // SFQ activation: a class going from idle to backlogged re-enters at
    // the current virtual clock, so an idle tenant cannot bank credit and
    // later starve the others with a burst.
    if (cls.ready_live[k] == 0 && cls.running[k] == 0) {
      cls.vtime[k] = std::max(cls.vtime[k], vclock[k]);
    }
    node.status = Status::kReady;
    node.timing.submit_s = now();
    if (front) {
      cls.ready[k].push_front(i);
    } else {
      cls.ready[k].push_back(i);
    }
    ++cls.ready_live[k];
  }

  /// Hand ready tasks of kind k to the pool while that kind has free slots,
  /// picking the backlogged class with the smallest virtual time (weighted
  /// fair share); with only the default class this degenerates to the
  /// classic FIFO pop. A task is only ever submitted once it holds its
  /// slot, so no pool thread can park in an acquire.
  void dispatch_locked(const std::shared_ptr<Impl>& self, int k)
      QQ_REQUIRES(mutex) {
    while (inflight[k] < caps[k]) {
      ClassInfo* best = nullptr;
      for (ClassInfo& cls : classes) {
        if (cls.ready_live[k] == 0) continue;
        if (best == nullptr || cls.vtime[k] < best->vtime[k]) best = &cls;
      }
      if (best == nullptr) break;
      std::size_t i = 0;
      for (;;) {  // skip entries cancelled while queued
        i = best->ready[k].front();
        best->ready[k].pop_front();
        if (nodes[i].status == Status::kReady) break;
      }
      --best->ready_live[k];
      ++best->running[k];
      ++best->dispatched;
      // Start-time fair queuing: the kind's clock advances to the start
      // tag of the dispatched task; the class pre-pays its estimated cost
      // scaled by weight (actual cost corrects the EWMA at completion).
      vclock[k] = best->vtime[k];
      best->vtime[k] +=
          std::max(best->ewma_cost, 1e-9) / std::max(best->weight, 1e-9);
      ++inflight[k];
      nodes[i].status = Status::kDispatched;
      dispatched.push_back(i);
      pool->submit([self, i] {
        if (Node* node = self->try_claim(i)) self->run_task(self, *node);
      });
    }
  }

  /// Claim a dispatched task for execution. Returns the node pointer so the
  /// caller never touches the deque without the lock: element references
  /// are stable under push_back, but operator[] itself reads the deque's
  /// internal map, which a concurrent submit may be growing.
  Node* try_claim(std::size_t i) QQ_EXCLUDES(mutex) {
    util::MutexLock lock(mutex);
    if (nodes[i].status != Status::kDispatched) return nullptr;
    nodes[i].status = Status::kRunning;
    return &nodes[i];
  }

  /// Cancel a blocked or ready node (and, transitively, its successors)
  /// because a dependency failed or its group was cancelled. Iterative
  /// worklist: a dependency chain can be arbitrarily long, so recursion
  /// would risk the stack. The nodes' on_settled callbacks are collected
  /// into `settled` for the caller to invoke after unlocking.
  void cancel_locked(std::size_t root, const std::exception_ptr& err,
                     std::vector<SettledFn>& settled) QQ_REQUIRES(mutex) {
    std::vector<std::size_t> worklist{root};
    while (!worklist.empty()) {
      const std::size_t i = worklist.back();
      worklist.pop_back();
      Node& node = nodes[i];
      if (node.status != Status::kBlocked && node.status != Status::kReady) {
        continue;
      }
      ClassInfo& cls = classes[node.task.fair_class];
      if (node.status == Status::kReady) {
        // The queue entry stays behind as a stale id; dispatch skips it.
        --cls.ready_live[kind_index(node.task.kind)];
      }
      node.status = Status::kCancelled;
      node.error = err;
      const double t = now();
      node.timing.submit_s = node.timing.start_s = node.timing.end_s = t;
      node.timing.cancelled = true;
      node.task.work = nullptr;
      if (node.task.on_settled) {
        settled.push_back(std::move(node.task.on_settled));
        node.task.on_settled = nullptr;
      }
      ++cancelled;
      ++cls.cancelled;
      --unfinished;
      worklist.insert(worklist.end(), node.successors.begin(),
                      node.successors.end());
      node.successors.clear();
    }
  }

  /// Execute a claimed task (caller holds no lock; `node` was resolved
  /// under it) and do its completion bookkeeping: timings, slot handoff,
  /// successor release, settle callbacks.
  void run_task(const std::shared_ptr<Impl>& self, Node& node)
      QQ_EXCLUDES(mutex) {
    const double start = now();
    std::exception_ptr err;
    // A failing task must not abandon the graph while siblings still
    // reference caller frames; the error is delivered by wait()/drain()
    // once everything owed has settled. Its timing and partial runtime are
    // recorded like any other task's so the report stays accountable.
    try {
      node.task.work();
    } catch (...) {
      err = std::current_exception();
    }
    const double end = now();
    // Release the closure's captures outside the completion lock.
    std::function<void()> release = std::move(node.task.work);
    node.task.work = nullptr;

    SettledFn own_settled;
    std::vector<SettledFn> cancelled_settled;
    {
      util::MutexLock lock(mutex);
      const int k = kind_index(node.task.kind);
      ClassInfo& cls = classes[node.task.fair_class];
      node.timing.start_s = start;
      node.timing.end_s = end;
      node.timing.wait_s = start - node.timing.submit_s;
      node.timing.failed = err != nullptr;
      node.error = err;
      node.status = Status::kDone;
      const double cost = end - start;
      busy[k] += cost;
      cls.busy_seconds += cost;
      cls.ewma_cost =
          (1.0 - kCostEwmaAlpha) * cls.ewma_cost + kCostEwmaAlpha * cost;
      queue_wait += node.timing.wait_s;
      cls.queue_wait += node.timing.wait_s;
      ++completed;
      ++cls.completed;
      --cls.running[k];
      if (err && !first_error) first_error = err;
      --inflight[k];
      --unfinished;
      if (node.task.on_settled) {
        own_settled = std::move(node.task.on_settled);
        node.task.on_settled = nullptr;
      }
      // Release successors: completion of the last dependency moves a
      // blocked task straight into its kind's ready queue.
      for (const std::size_t s : node.successors) {
        Node& succ = nodes[s];
        if (succ.status != Status::kBlocked) continue;
        if (err) {
          cancel_locked(s, err, cancelled_settled);
          continue;
        }
        if (--succ.unmet == 0) {
          // Depth-first: a successor that just became ready jumps the
          // queue. Draining in-flight chains before starting queued
          // breadth is what lets a fast component's coarse level overlap a
          // slow component's still-running leaves instead of parking
          // behind them, and it bounds work-in-progress per chain.
          enqueue_ready_locked(s, /*front=*/true);
        }
      }
      node.successors.clear();
      // Slot handoff: release this slot and dispatch whatever is ready —
      // both kinds, since the released successors may be of either.
      dispatch_locked(self, 0);
      dispatch_locked(self, 1);
    }
    cv.notify_all();
    // Settle callbacks run outside the lock: they may submit follow-up
    // tasks (dynamic graphs) or take service-level locks.
    if (own_settled) own_settled(err);
    for (SettledFn& fn : cancelled_settled) fn(err);
  }

  /// Cooperative wait: claim and inline-run THIS engine's dispatched tasks
  /// (which also guarantees progress when waiting from inside a pool worker
  /// or on a pool of one), help bounded kernel chunks from the pool's chunk
  /// queue, and otherwise nap briefly. Foreign coarse tasks are never
  /// adopted. `done` is evaluated with `mutex` held.
  void help_until(const std::shared_ptr<Impl>& self,
                  const std::function<bool()>& done) QQ_EXCLUDES(mutex) {
    util::MutexLock lock(mutex);
    while (!done()) {
      Node* mine = nullptr;
      while (!dispatched.empty()) {
        const std::size_t i = dispatched.front();
        dispatched.pop_front();
        if (nodes[i].status == Status::kDispatched) {
          nodes[i].status = Status::kRunning;
          mine = &nodes[i];
          break;
        }
      }
      if (mine != nullptr) {
        lock.unlock();
        run_task(self, *mine);
        lock.lock();
        continue;
      }
      lock.unlock();
      const bool helped = pool->try_help_chunk();
      lock.lock();
      // Predicate-free nap (CondVar has no predicate waits — the analysis
      // cannot see through the predicate closure); the outer loop re-checks
      // `done` under the lock after every wake.
      if (!helped && !done()) {
        cv.wait_for(lock, std::chrono::milliseconds(1));
      }
    }
  }

  mutable util::Mutex mutex;
  util::CondVar cv;
  util::Timer clock;  ///< engine-lifetime clock; all timings are relative
  util::ThreadPool* pool;
  std::array<int, 2> caps;
  /// Deque: stable element references while growing. A claimed task's
  /// Node& is deliberately mutated outside the lock (status kRunning fences
  /// it off); the analysis checks direct `nodes` accesses only.
  std::deque<Node> nodes QQ_GUARDED_BY(mutex);
  std::vector<ClassInfo> classes QQ_GUARDED_BY(mutex);  ///< [0] = default
  /// Per-kind SFQ virtual clock.
  std::array<double, 2> vclock QQ_GUARDED_BY(mutex) = {{0.0, 0.0}};
  std::unordered_map<GroupId, GroupInfo> groups QQ_GUARDED_BY(mutex);
  GroupId next_group QQ_GUARDED_BY(mutex) = 1;
  /// Dispatched-but-not-yet-claimed tasks, coordinator-claimable; a task is
  /// executed by whichever side (pool worker or waiting coordinator) claims
  /// it first. Stale entries (already claimed) are skipped on pop.
  std::deque<std::size_t> dispatched QQ_GUARDED_BY(mutex);
  std::array<int, 2> inflight QQ_GUARDED_BY(mutex) = {{0, 0}};
  std::size_t unfinished QQ_GUARDED_BY(mutex) = 0;
  std::exception_ptr first_error QQ_GUARDED_BY(mutex);
  // Cumulative counters (EngineStats).
  std::array<double, 2> busy QQ_GUARDED_BY(mutex) = {{0.0, 0.0}};
  double queue_wait QQ_GUARDED_BY(mutex) = 0.0;
  std::array<std::size_t, 2> task_count QQ_GUARDED_BY(mutex) = {{0, 0}};
  std::size_t completed QQ_GUARDED_BY(mutex) = 0;
  std::size_t cancelled QQ_GUARDED_BY(mutex) = 0;
};

WorkflowEngine::WorkflowEngine(const EngineOptions& options)
    : options_(options) {
  if (options.quantum_slots < 1 || options.classical_slots < 1) {
    throw std::invalid_argument("WorkflowEngine: slots must be >= 1");
  }
  impl_ = std::make_shared<Impl>(options);
}

WorkflowEngine::~WorkflowEngine() {
  std::exception_ptr ignored;
  drain(&ignored);
}

util::ThreadPool& WorkflowEngine::pool() const noexcept {
  return *impl_->pool;
}

double WorkflowEngine::now() const noexcept { return impl_->now(); }

ClassId WorkflowEngine::add_class(FairClassConfig config) {
  if (!(config.weight > 0.0)) {
    throw std::invalid_argument("WorkflowEngine::add_class: weight must be > 0");
  }
  util::MutexLock lock(impl_->mutex);
  const ClassId id = static_cast<ClassId>(impl_->classes.size());
  impl_->classes.emplace_back();
  Impl::ClassInfo& cls = impl_->classes.back();
  cls.name = std::move(config.name);
  cls.weight = config.weight;
  // A class born mid-flight starts at the current virtual clock.
  cls.vtime = impl_->vclock;
  return id;
}

std::vector<FairClassStats> WorkflowEngine::class_stats() const {
  util::MutexLock lock(impl_->mutex);
  std::vector<FairClassStats> out;
  out.reserve(impl_->classes.size());
  for (std::size_t i = 0; i < impl_->classes.size(); ++i) {
    const Impl::ClassInfo& cls = impl_->classes[i];
    FairClassStats s;
    s.id = static_cast<ClassId>(i);
    s.name = cls.name;
    s.weight = cls.weight;
    s.dispatched = cls.dispatched;
    s.completed = cls.completed;
    s.cancelled = cls.cancelled;
    s.ready = cls.ready_live[0] + cls.ready_live[1];
    s.busy_seconds = cls.busy_seconds;
    s.queue_wait_seconds = cls.queue_wait;
    out.push_back(std::move(s));
  }
  return out;
}

GroupId WorkflowEngine::open_group() {
  util::MutexLock lock(impl_->mutex);
  const GroupId id = impl_->next_group++;
  impl_->groups.emplace(id, Impl::GroupInfo{});
  return id;
}

std::size_t WorkflowEngine::cancel_group(GroupId group) {
  std::vector<Impl::SettledFn> settled;
  std::size_t newly_cancelled = 0;
  const std::exception_ptr err = std::make_exception_ptr(
      util::CancelledError(util::StopReason::kCancelled));
  {
    util::MutexLock lock(impl_->mutex);
    auto it = impl_->groups.find(group);
    if (it == impl_->groups.end()) return 0;
    it->second.cancelled = true;
    const std::size_t before = impl_->cancelled;
    for (const std::size_t id : it->second.members) {
      impl_->cancel_locked(id, err, settled);
    }
    it->second.members.clear();
    newly_cancelled = impl_->cancelled - before;
  }
  impl_->cv.notify_all();
  for (Impl::SettledFn& fn : settled) fn(err);
  return newly_cancelled;
}

bool WorkflowEngine::group_cancelled(GroupId group) const {
  util::MutexLock lock(impl_->mutex);
  const auto it = impl_->groups.find(group);
  return it != impl_->groups.end() && it->second.cancelled;
}

void WorkflowEngine::close_group(GroupId group) {
  util::MutexLock lock(impl_->mutex);
  impl_->groups.erase(group);
}

bool WorkflowEngine::try_run_one() {
  Impl& st = *impl_;
  Impl::Node* mine = nullptr;
  {
    util::MutexLock lock(st.mutex);
    while (!st.dispatched.empty()) {
      const std::size_t i = st.dispatched.front();
      st.dispatched.pop_front();
      if (st.nodes[i].status == Impl::Status::kDispatched) {
        st.nodes[i].status = Impl::Status::kRunning;
        mine = &st.nodes[i];
        break;
      }
    }
  }
  if (mine == nullptr) return false;
  st.run_task(impl_, *mine);
  return true;
}

TaskHandle WorkflowEngine::submit(Task task,
                                  const std::vector<TaskHandle>& deps) {
  if (!task.work) {
    throw std::invalid_argument("WorkflowEngine::submit: empty task");
  }
  std::vector<Impl::SettledFn> settled;
  std::exception_ptr settle_err;
  std::size_t id = 0;
  {
    util::MutexLock lock(impl_->mutex);
    id = impl_->nodes.size();
    for (const TaskHandle dep : deps) {
      if (dep.id >= id) {
        // Also catches self-dependency and invalid handles; cycles are
        // impossible because a task can only depend on earlier submissions.
        throw std::invalid_argument("WorkflowEngine::submit: bad dependency");
      }
    }
    if (task.fair_class >= impl_->classes.size()) {
      throw std::invalid_argument("WorkflowEngine::submit: unknown class");
    }
    Impl::GroupInfo* group_info = nullptr;
    if (task.group != kNoGroup) {
      const auto it = impl_->groups.find(task.group);
      if (it == impl_->groups.end()) {
        throw std::invalid_argument("WorkflowEngine::submit: unknown group");
      }
      group_info = &it->second;
    }
    impl_->nodes.emplace_back();
    Impl::Node& node = impl_->nodes.back();
    node.task = std::move(task);
    node.timing.task = id;
    node.timing.kind = node.task.kind;
    const int k = kind_index(node.task.kind);
    ++impl_->task_count[k];
    ++impl_->unfinished;

    // A submission into an already-cancelled group cancels on arrival —
    // dynamic pipelines racing a cancel cannot leak tasks past it.
    if (group_info != nullptr && group_info->cancelled) {
      settle_err = std::make_exception_ptr(
          util::CancelledError(util::StopReason::kCancelled));
      impl_->cancel_locked(id, settle_err, settled);
    } else {
      if (group_info != nullptr) group_info->members.push_back(id);
      std::exception_ptr dep_error;
      for (const TaskHandle dep : deps) {
        Impl::Node& parent = impl_->nodes[dep.id];
        switch (parent.status) {
          case Impl::Status::kDone:
            if (parent.error && !dep_error) dep_error = parent.error;
            break;
          case Impl::Status::kCancelled:
            if (!dep_error) dep_error = parent.error;
            break;
          default:
            parent.successors.push_back(id);
            ++node.unmet;
            break;
        }
      }
      if (dep_error) {
        settle_err = dep_error;
        impl_->cancel_locked(id, dep_error, settled);
      } else if (node.unmet == 0) {
        impl_->enqueue_ready_locked(id, /*front=*/false);
        impl_->dispatch_locked(impl_, k);
      }
    }
  }
  for (Impl::SettledFn& fn : settled) fn(settle_err);
  return TaskHandle{id};
}

bool WorkflowEngine::finished(TaskHandle handle) const {
  util::MutexLock lock(impl_->mutex);
  if (handle.id >= impl_->nodes.size()) {
    throw std::out_of_range("WorkflowEngine::finished: unknown handle");
  }
  const auto status = impl_->nodes[handle.id].status;
  return status == Impl::Status::kDone || status == Impl::Status::kCancelled;
}

void WorkflowEngine::wait(TaskHandle handle) {
  {
    util::MutexLock lock(impl_->mutex);
    if (handle.id >= impl_->nodes.size()) {
      throw std::out_of_range("WorkflowEngine::wait: unknown handle");
    }
  }
  Impl& st = *impl_;
  // help_until evaluates `done` with st.mutex held; the annotation lets the
  // analysis check the guarded reads inside the closure body.
  st.help_until(impl_, [&st, handle]() QQ_REQUIRES(st.mutex) {
    const auto status = st.nodes[handle.id].status;
    return status == Impl::Status::kDone ||
           status == Impl::Status::kCancelled;
  });
  std::exception_ptr err;
  {
    util::MutexLock lock(st.mutex);
    err = st.nodes[handle.id].error;
  }
  if (err) std::rethrow_exception(err);
}

void WorkflowEngine::drain(std::exception_ptr* error_out) {
  Impl& st = *impl_;
  st.help_until(impl_,
                [&st]() QQ_REQUIRES(st.mutex) { return st.unfinished == 0; });
  std::exception_ptr err;
  {
    util::MutexLock lock(st.mutex);
    err = std::exchange(st.first_error, nullptr);
  }
  if (error_out != nullptr) {
    *error_out = err;
  } else if (err) {
    std::rethrow_exception(err);
  }
}

TaskTiming WorkflowEngine::timing(TaskHandle handle) const {
  util::MutexLock lock(impl_->mutex);
  if (handle.id >= impl_->nodes.size()) {
    throw std::out_of_range("WorkflowEngine::timing: unknown handle");
  }
  return impl_->nodes[handle.id].timing;
}

EngineStats WorkflowEngine::stats() const {
  util::MutexLock lock(impl_->mutex);
  EngineStats out;
  out.busy_quantum_seconds = impl_->busy[0];
  out.busy_classical_seconds = impl_->busy[1];
  out.queue_wait_seconds = impl_->queue_wait;
  out.submitted = impl_->nodes.size();
  out.completed = impl_->completed;
  out.cancelled = impl_->cancelled;
  out.quantum_tasks = impl_->task_count[0];
  out.classical_tasks = impl_->task_count[1];
  for (const Impl::ClassInfo& cls : impl_->classes) {
    out.ready_quantum += cls.ready_live[0];
    out.ready_classical += cls.ready_live[1];
  }
  out.inflight_quantum = static_cast<std::size_t>(impl_->inflight[0]);
  out.inflight_classical = static_cast<std::size_t>(impl_->inflight[1]);
  return out;
}

BatchReport WorkflowEngine::run_batch(std::vector<Task> tasks,
                                      std::exception_ptr* error_out) {
  Impl& st = *impl_;
  BatchReport report;
  // Validate the whole batch BEFORE submitting anything: a throw after a
  // partial submission would return control to the caller while the
  // submitted closures still run against its frame ("the batch still
  // drains fully" would be broken exactly when it matters).
  for (const Task& task : tasks) {
    if (!task.work) {
      throw std::invalid_argument("WorkflowEngine::run_batch: empty task");
    }
  }
  const double t0 = st.now();
  std::vector<std::size_t> ids;
  ids.reserve(tasks.size());
  for (Task& task : tasks) {
    ids.push_back(submit(std::move(task)).id);
  }

  // Wait for exactly this batch; the cursor makes the repeated predicate
  // evaluation amortized O(n) over the whole wait.
  std::size_t cursor = 0;
  st.help_until(impl_, [&st, &ids, &cursor]() QQ_REQUIRES(st.mutex) {
    while (cursor < ids.size()) {
      const auto status = st.nodes[ids[cursor]].status;
      if (status != Impl::Status::kDone &&
          status != Impl::Status::kCancelled) {
        return false;
      }
      ++cursor;
    }
    return true;
  });

  std::exception_ptr batch_error;
  double first_fail_end = 0.0;
  std::array<double, 2> busy{0.0, 0.0};
  std::array<std::size_t, 2> count{0, 0};
  {
    util::MutexLock lock(st.mutex);
    report.timings.reserve(ids.size());
    for (std::size_t b = 0; b < ids.size(); ++b) {
      const Impl::Node& node = st.nodes[ids[b]];
      TaskTiming t = node.timing;
      t.task = b;
      t.submit_s -= t0;
      t.start_s -= t0;
      t.end_s -= t0;
      const int k = kind_index(t.kind);
      busy[k] += t.end_s - t.start_s;
      ++count[k];
      report.busy_seconds += t.end_s - t.start_s;
      // Chronologically first failure, matching the order completions were
      // observed by the old per-batch engine.
      if (node.error &&
          (!batch_error || node.timing.end_s < first_fail_end)) {
        batch_error = node.error;
        first_fail_end = node.timing.end_s;
      }
      report.timings.push_back(t);
    }
    // This batch's errors are delivered here (or to error_out); don't leave
    // them poisoning a later drain().
    if (batch_error && st.first_error) {
      for (const std::size_t id : ids) {
        if (st.nodes[id].error == st.first_error) {
          st.first_error = nullptr;
          break;
        }
      }
    }
  }

  report.wall_seconds = st.now() - t0;
  report.busy_quantum_seconds = busy[0];
  report.busy_classical_seconds = busy[1];
  const std::size_t width =
      std::max<std::size_t>(std::size_t{1}, st.pool->size());
  const double ideal = ideal_parallel_seconds(busy[0], busy[1], count[0],
                                              count[1], options_, width);
  report.coordination_seconds = std::max(0.0, report.wall_seconds - ideal);

  if (error_out != nullptr) {
    *error_out = batch_error;
  } else if (batch_error) {
    std::rethrow_exception(batch_error);
  }
  return report;
}

}  // namespace qq::sched
