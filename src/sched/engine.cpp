#include "sched/engine.hpp"

#include <algorithm>
#include <condition_variable>
#include <mutex>
#include <stdexcept>

#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace qq::sched {

namespace {
/// Counting semaphore with a plain mutex/condvar (portable, no C++20
/// std::counting_semaphore template-arg ceiling games).
class Slots {
 public:
  explicit Slots(int count) : available_(count) {
    if (count < 1) throw std::invalid_argument("Slots: count must be >= 1");
  }
  void acquire() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return available_ > 0; });
    --available_;
  }
  void release() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++available_;
    }
    cv_.notify_one();
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  int available_;
};
}  // namespace

WorkflowEngine::WorkflowEngine(const EngineOptions& options)
    : options_(options) {
  if (options.quantum_slots < 1 || options.classical_slots < 1) {
    throw std::invalid_argument("WorkflowEngine: slots must be >= 1");
  }
}

BatchReport WorkflowEngine::run_batch(std::vector<Task> tasks) {
  BatchReport report;
  report.timings.resize(tasks.size());

  Slots quantum(options_.quantum_slots);
  Slots classical(options_.classical_slots);
  std::mutex mutex;
  std::exception_ptr first_error;
  util::Timer clock;

  auto& pool = util::ThreadPool::global();
  std::vector<std::future<void>> futures;
  futures.reserve(tasks.size());

  for (std::size_t i = 0; i < tasks.size(); ++i) {
    const double submit = clock.seconds();
    report.timings[i].task = i;
    report.timings[i].kind = tasks[i].kind;
    report.timings[i].submit_s = submit;
    futures.push_back(pool.submit([&, i] {
      Slots& gate = tasks[i].kind == ResourceKind::kQuantum ? quantum
                                                            : classical;
      gate.acquire();
      const double start = clock.seconds();
      // A failing task must not leak its slot or abandon the batch while
      // siblings still reference this frame; the first error is rethrown
      // once everything has drained.
      try {
        tasks[i].work();
      } catch (...) {
        gate.release();
        std::lock_guard<std::mutex> lock(mutex);
        if (!first_error) first_error = std::current_exception();
        return;
      }
      const double end = clock.seconds();
      gate.release();
      std::lock_guard<std::mutex> lock(mutex);
      report.timings[i].start_s = start;
      report.timings[i].end_s = end;
      report.busy_seconds += end - start;
    }));
  }
  for (auto& f : futures) f.get();
  if (first_error) std::rethrow_exception(first_error);

  report.wall_seconds = clock.seconds();
  const int slots = options_.quantum_slots + options_.classical_slots;
  const double ideal =
      report.busy_seconds / std::min<double>(slots, pool.size());
  report.coordination_seconds = std::max(0.0, report.wall_seconds - ideal);
  return report;
}

}  // namespace qq::sched
