#include "sched/engine.hpp"

#include <algorithm>
#include <array>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace qq::sched {

namespace {
constexpr int kind_index(ResourceKind kind) noexcept {
  return kind == ResourceKind::kQuantum ? 0 : 1;
}
}  // namespace

WorkflowEngine::WorkflowEngine(const EngineOptions& options)
    : options_(options) {
  if (options.quantum_slots < 1 || options.classical_slots < 1) {
    throw std::invalid_argument("WorkflowEngine: slots must be >= 1");
  }
}

BatchReport WorkflowEngine::run_batch(std::vector<Task> tasks,
                                      std::exception_ptr* error_out) {
  BatchReport report;
  const std::size_t n = tasks.size();
  report.timings.resize(n);

  // Coordinator state. Everything below lives on this frame; run_batch does
  // not return until remaining == 0, so the closures handed to the pool
  // never outlive it.
  struct Shared {
    std::mutex mutex;
    std::condition_variable done_cv;
    std::array<std::deque<std::size_t>, 2> ready;
    std::array<int, 2> inflight{0, 0};
    std::array<std::size_t, 2> task_count{0, 0};
    std::array<double, 2> busy{0.0, 0.0};
    /// Dispatched-but-not-yet-claimed tasks, coordinator-claimable; a task
    /// is executed by whichever side (pool worker or waiting coordinator)
    /// claims it first.
    std::deque<std::size_t> dispatched;
    std::size_t remaining = 0;
    std::exception_ptr first_error;
  } st;
  st.remaining = n;

  // Claim flags live on the heap, shared into every pool wrapper: a task
  // the coordinator already ran inline leaves its wrapper behind as a
  // no-op, and that wrapper may be popped AFTER run_batch returned — it
  // must not touch this frame. A wrapper that WINS the claim implies its
  // task has not completed yet, so the frame is still alive for run_task.
  struct ClaimState {
    std::mutex mutex;
    std::vector<bool> claimed;
  };
  auto claim_state = std::make_shared<ClaimState>();
  claim_state->claimed.assign(n, false);

  util::Timer clock;
  for (std::size_t i = 0; i < n; ++i) {
    const int k = kind_index(tasks[i].kind);
    report.timings[i].task = i;
    report.timings[i].kind = tasks[i].kind;
    report.timings[i].submit_s = clock.seconds();
    st.ready[k].push_back(i);
    ++st.task_count[k];
  }

  util::ThreadPool& pool =
      options_.pool != nullptr ? *options_.pool : util::ThreadPool::global();
  const std::array<int, 2> caps = {options_.quantum_slots,
                                   options_.classical_slots};

  std::function<void(std::size_t)> run_task;

  // Hand ready tasks of kind k to the pool while that kind has free slots.
  // Called with st.mutex held. This replaces the old blocking semaphore:
  // a task is only ever *submitted* once it holds its slot, so no pool
  // thread can park in an acquire.
  auto dispatch_locked = [&](int k) {
    while (st.inflight[k] < caps[k] && !st.ready[k].empty()) {
      const std::size_t i = st.ready[k].front();
      st.ready[k].pop_front();
      ++st.inflight[k];
      st.dispatched.push_back(i);
      // The wrapper touches ONLY claim_state until it wins the claim; a
      // won claim implies the batch is still draining, so the frame (and
      // run_task) is alive.
      pool.submit([claim_state, &run_task, i] {
        {
          std::lock_guard<std::mutex> lock(claim_state->mutex);
          if (claim_state->claimed[i]) return;
          claim_state->claimed[i] = true;
        }
        run_task(i);
      });
    }
  };

  run_task = [&](std::size_t i) {
    const int k = kind_index(tasks[i].kind);
    const double start = clock.seconds();
    std::exception_ptr err;
    // A failing task must not abandon the batch while siblings still
    // reference this frame; the first error is rethrown once everything
    // has drained. Its timing and partial runtime are recorded like any
    // other task's so the report stays accountable.
    try {
      tasks[i].work();
    } catch (...) {
      err = std::current_exception();
    }
    const double end = clock.seconds();

    std::lock_guard<std::mutex> lock(st.mutex);
    TaskTiming& t = report.timings[i];
    t.start_s = start;
    t.end_s = end;
    t.wait_s = start - t.submit_s;
    t.failed = err != nullptr;
    report.busy_seconds += end - start;
    st.busy[k] += end - start;
    if (err && !st.first_error) st.first_error = err;
    --st.inflight[k];
    --st.remaining;
    // Slot handoff: release the slot and dispatch the next ready task of
    // this kind in one step.
    dispatch_locked(k);
    if (st.remaining == 0) st.done_cv.notify_all();
  };

  {
    std::unique_lock<std::mutex> lock(st.mutex);
    dispatch_locked(0);
    dispatch_locked(1);
    while (st.remaining != 0) {
      // Cooperative wait, restricted to work that belongs here: (1) THIS
      // batch's dispatched-but-unclaimed tasks, run inline — which also
      // guarantees progress when run_batch is issued from inside a pool
      // worker or on a pool of one; (2) bounded kernel chunks from the
      // pool's chunk queue. Foreign coarse tasks are never adopted, so the
      // batch returns (and stops the wall clock) as soon as its own work
      // drains.
      std::size_t mine = n;  // n = none
      while (!st.dispatched.empty()) {
        const std::size_t i = st.dispatched.front();
        st.dispatched.pop_front();
        std::lock_guard<std::mutex> claim_lock(claim_state->mutex);
        if (!claim_state->claimed[i]) {
          claim_state->claimed[i] = true;
          mine = i;
          break;
        }
      }
      if (mine != n) {
        lock.unlock();
        run_task(mine);
        lock.lock();
        continue;
      }
      lock.unlock();
      const bool helped = pool.try_help_chunk();
      lock.lock();
      if (!helped && st.remaining != 0) {
        st.done_cv.wait_for(lock, std::chrono::milliseconds(1), [&st] {
          return st.remaining == 0;
        });
      }
    }
  }
  if (error_out != nullptr) {
    *error_out = st.first_error;
  } else if (st.first_error) {
    std::rethrow_exception(st.first_error);
  }

  report.wall_seconds = clock.seconds();
  report.busy_quantum_seconds = st.busy[0];
  report.busy_classical_seconds = st.busy[1];

  // Ideal parallel time, per resource kind actually used: a kind's busy
  // time cannot drain faster than its own slots (or the pool) allow, and
  // the total cannot drain faster than the in-use slots / pool permit.
  // Kinds with no tasks contribute nothing — their slots are unusable by
  // the batch and must not dilute the estimate (the old formula divided an
  // all-quantum batch by quantum_slots + classical_slots).
  const double pool_width = static_cast<double>(std::max<std::size_t>(
      std::size_t{1}, pool.size()));
  double ideal = 0.0;
  double busy_used = 0.0;
  int slots_used = 0;
  for (int k = 0; k < 2; ++k) {
    if (st.task_count[k] == 0) continue;
    ideal = std::max(ideal,
                     st.busy[k] / std::min<double>(caps[k], pool_width));
    busy_used += st.busy[k];
    slots_used += caps[k];
  }
  if (slots_used > 0) {
    ideal = std::max(ideal,
                     busy_used / std::min<double>(slots_used, pool_width));
  }
  report.coordination_seconds = std::max(0.0, report.wall_seconds - ideal);
  return report;
}

}  // namespace qq::sched
