#pragma once
// Threaded coordinator/worker engine — the in-process analogue of the
// paper's Fig. 2 distribution scheme: "a coordinator executed on a
// dedicated MPI rank handles the partitioning and collection of results",
// while worker ranks consume either quantum (simulated device) or classical
// resources.
//
// Slot semantics mirror a SLURM allocation: at most `quantum_slots` tasks
// tagged kQuantum run concurrently (the simulated QPUs) and at most
// `classical_slots` tasks tagged kClassical (the CPU partition).
//
// The engine is PERSISTENT and DEPENDENCY-AWARE: `submit(task, deps)`
// returns a TaskHandle immediately; a task enters its resource kind's ready
// queue once every dependency has completed, and completion of a task hands
// its slot to the next ready task of that kind AND enqueues any successors
// that just became ready — the coordinator thread never mediates a
// dependency edge. One engine (and one thread pool) can therefore stay
// alive across an entire QAOA^2 solve, streaming tasks of many components
// and recursion levels through the same slot budget.
//
// The engine is NON-BLOCKING: at most `slots` tasks of a kind are handed to
// the thread pool at a time; no pool thread ever parks waiting for a slot,
// and a waiting caller (`wait`/`drain`/`run_batch`) help-runs this engine's
// dispatched tasks plus bounded pool chunk work, so waits issued from
// inside a pool worker — or on a pool of one — still complete.
//
// `run_batch` remains as a thin compatibility wrapper: submit every task
// with no dependencies, wait for that batch, report batch-relative timings.
//
// MULTI-TENANCY (the service layer's substrate): tasks carry a fair-share
// CLASS and a cancellation GROUP. Classes (add_class) are weighted queues
// feeding each kind's slot queue — dispatch is start-time fair queuing over
// per-(class, kind) virtual time, so a weight-3 tenant drains ~3x the work
// of a weight-1 tenant under contention, while the default class 0 alone
// reproduces the classic FIFO/depth-first order exactly (modeled on
// ClickHouse's workload resource manager). Groups (open_group /
// cancel_group) scope one request's tasks: cancel_group cancels every
// queued member through the same transitive-cancel machinery a failed
// dependency uses, marks the group so late submissions cancel on arrival,
// and lets running members finish their current task (cooperative
// preemption at task-graph boundaries). `Task::on_settled` fires exactly
// once per task, outside the engine lock, for async completion tracking.

#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace qq::util {
class ThreadPool;
}  // namespace qq::util

namespace qq::sched {

enum class ResourceKind { kQuantum, kClassical };

/// Fair-share workload class id; 0 is the always-present default class
/// (weight 1).
using ClassId = std::uint32_t;

/// Cancellation-group id; kNoGroup means "not in any group".
using GroupId = std::uint64_t;
inline constexpr GroupId kNoGroup = 0;

struct FairClassConfig {
  std::string name = "default";
  /// Relative share of each kind's slots under contention; must be > 0.
  double weight = 1.0;
};

/// Per-class counters (class_stats() snapshot).
struct FairClassStats {
  ClassId id = 0;
  std::string name;
  double weight = 1.0;
  std::size_t dispatched = 0;  ///< tasks handed a slot
  std::size_t completed = 0;   ///< tasks that ran (including failed)
  std::size_t cancelled = 0;   ///< tasks cancelled before running
  std::size_t ready = 0;       ///< tasks ready now, waiting for a slot
  double busy_seconds = 0.0;   ///< Σ service time inside `work`
  /// Σ per-task (start - ready) — the class's slot/queue wait.
  double queue_wait_seconds = 0.0;
};

struct EngineOptions {
  int quantum_slots = 2;
  int classical_slots = 4;
  /// Pool the tasks execute on; nullptr selects ThreadPool::global().
  /// Injectable so tests can pin a deterministic width regardless of
  /// QQ_THREADS.
  util::ThreadPool* pool = nullptr;
};

struct Task {
  ResourceKind kind = ResourceKind::kClassical;
  /// The payload; its return value is opaque to the engine.
  std::function<void()> work;
  /// Fair-share class (add_class); 0 = the default class, weight 1.
  ClassId fair_class = 0;
  /// Cancellation group (open_group); kNoGroup = none.
  GroupId group = kNoGroup;
  /// Invoked exactly once after the task settles — ran to completion,
  /// failed, or was cancelled before running — with its error (null on
  /// success). Runs OUTSIDE the engine lock on whichever thread settled the
  /// task; it may submit further tasks but must not block.
  std::function<void(std::exception_ptr)> on_settled;
};

/// Opaque reference to a submitted task; valid for the engine's lifetime.
struct TaskHandle {
  static constexpr std::size_t kInvalid = static_cast<std::size_t>(-1);
  std::size_t id = kInvalid;
  bool valid() const noexcept { return id != kInvalid; }
};

struct TaskTiming {
  std::size_t task = 0;
  ResourceKind kind = ResourceKind::kClassical;
  double submit_s = 0.0;  ///< entry into the engine's ready queue (for a
                          ///< dependent task: the moment its last dependency
                          ///< completed), relative to the clock origin —
                          ///< engine construction for timing(), batch start
                          ///< inside a BatchReport
  double start_s = 0.0;   ///< `work` began executing
  double end_s = 0.0;     ///< `work` returned (or threw)
  double wait_s = 0.0;    ///< start_s - submit_s: slot wait + pool queueing
  /// `work` ran and exited via an exception. Disjoint from `cancelled`: a
  /// task is either run (and possibly failed) or cancelled, never both.
  bool failed = false;
  /// Never ran: a (transitive) dependency failed or its group was
  /// cancelled.
  bool cancelled = false;
};

struct BatchReport {
  double wall_seconds = 0.0;
  /// Σ task service times (inside `work`), including failed tasks' partial
  /// runtimes.
  double busy_seconds = 0.0;
  double busy_quantum_seconds = 0.0;
  double busy_classical_seconds = 0.0;
  /// Wall time minus the ideal-parallel-time estimate of the useful work —
  /// the "coordination overhead is minimal" check. See
  /// ideal_parallel_seconds.
  double coordination_seconds = 0.0;
  std::vector<TaskTiming> timings;
};

/// Cumulative engine counters since construction; snapshot via
/// WorkflowEngine::stats().
struct EngineStats {
  double busy_quantum_seconds = 0.0;
  double busy_classical_seconds = 0.0;
  /// Σ per-task (start - ready) across every executed task.
  double queue_wait_seconds = 0.0;
  std::size_t submitted = 0;
  std::size_t completed = 0;  ///< ran to completion, including failed tasks
  std::size_t cancelled = 0;  ///< skipped: dependency failure or group cancel
  std::size_t quantum_tasks = 0;
  std::size_t classical_tasks = 0;
  // Instantaneous gauges (the service's admission/backlog signal).
  std::size_t ready_quantum = 0;      ///< ready now, waiting for a slot
  std::size_t ready_classical = 0;
  std::size_t inflight_quantum = 0;   ///< holding a slot (dispatched/running)
  std::size_t inflight_classical = 0;
};

/// Ideal parallel drain time for the given per-kind busy totals, computed
/// per resource kind actually present: a kind's busy time cannot drain
/// faster than its own slots (or the pool) allow, and the total cannot
/// drain faster than the in-use slots / pool permit. Kinds with no tasks
/// contribute nothing — their slots are unusable and must not dilute the
/// estimate.
double ideal_parallel_seconds(double busy_quantum, double busy_classical,
                              std::size_t quantum_tasks,
                              std::size_t classical_tasks,
                              const EngineOptions& options,
                              std::size_t pool_width);

class WorkflowEngine {
 public:
  explicit WorkflowEngine(const EngineOptions& options);
  /// Drains every submitted task (cooperatively, without rethrowing) so no
  /// task closure outlives the frames it captures.
  ~WorkflowEngine();

  WorkflowEngine(const WorkflowEngine&) = delete;
  WorkflowEngine& operator=(const WorkflowEngine&) = delete;

  const EngineOptions& options() const noexcept { return options_; }
  /// The pool tasks execute on (options().pool or the global pool).
  util::ThreadPool& pool() const noexcept;

  /// The engine clock (seconds since construction) — the time base of every
  /// TaskTiming. Thread-safe.
  double now() const noexcept;

  /// Register a fair-share class. Throws std::invalid_argument for a
  /// non-positive weight. Thread-safe; classes are never removed.
  ClassId add_class(FairClassConfig config);
  std::vector<FairClassStats> class_stats() const;

  /// Open a cancellation group for one request's tasks.
  GroupId open_group();

  /// Cancel every not-yet-running member of `group` (transitively, through
  /// the same machinery as dependency-failure cancellation) and mark the
  /// group so tasks submitted into it afterwards cancel on arrival. Members
  /// already running finish their current task; their successors cancel.
  /// Returns the number of tasks newly cancelled. Unknown or closed groups
  /// return 0.
  std::size_t cancel_group(GroupId group);

  bool group_cancelled(GroupId group) const;

  /// Drop a group's bookkeeping once the owning request has settled (its
  /// member list grows with every submission until closed).
  void close_group(GroupId group);

  /// Claim and inline-run one dispatched task, if any — lets an external
  /// waiter donate its thread without entering wait()/drain(). Returns
  /// false when nothing was claimable.
  bool try_run_one();

  /// Enqueue `task` to run once every task in `deps` has completed
  /// successfully. A task with no (remaining) dependencies enters its
  /// kind's ready queue immediately. If any dependency failed or was
  /// cancelled, the task is cancelled instead of run, transitively.
  /// Thread-safe; callable from inside a running task (dynamic task
  /// graphs).
  TaskHandle submit(Task task, const std::vector<TaskHandle>& deps = {});

  /// True once the task has run (or been cancelled).
  bool finished(TaskHandle handle) const;

  /// Cooperatively help-run engine tasks until `handle` completes, then
  /// rethrow its error if it failed (a cancelled task rethrows the
  /// dependency's error).
  void wait(TaskHandle handle);

  /// Cooperatively help-run until every submitted task has completed. The
  /// first error observed since the last drain/run_batch is rethrown —
  /// unless `error_out` is non-null, in which case it is stored there.
  void drain(std::exception_ptr* error_out = nullptr);

  /// Timing of a completed (or cancelled) task, relative to engine
  /// construction.
  TaskTiming timing(TaskHandle handle) const;

  EngineStats stats() const;

  /// Compatibility wrapper: run every task respecting the slot limits;
  /// blocks until all complete (cooperatively). If tasks throw, the batch
  /// still drains fully; the first exception is rethrown — unless
  /// `error_out` is non-null, in which case it is stored there and the
  /// report (including the failed tasks' timings and partial runtimes) is
  /// returned normally. Timings are relative to batch start.
  BatchReport run_batch(std::vector<Task> tasks,
                        std::exception_ptr* error_out = nullptr);

 private:
  struct Impl;

  EngineOptions options_;
  std::shared_ptr<Impl> impl_;
};

}  // namespace qq::sched
