#pragma once
// Threaded coordinator/worker engine — the in-process analogue of the
// paper's Fig. 2 distribution scheme: "a coordinator executed on a
// dedicated MPI rank handles the partitioning and collection of results",
// while worker ranks consume either quantum (simulated device) or classical
// resources.
//
// Slot semantics mirror a SLURM allocation: at most `quantum_slots` tasks
// tagged kQuantum run concurrently (the simulated QPUs) and at most
// `classical_slots` tasks tagged kClassical (the CPU partition).
//
// The engine is PERSISTENT and DEPENDENCY-AWARE: `submit(task, deps)`
// returns a TaskHandle immediately; a task enters its resource kind's ready
// queue once every dependency has completed, and completion of a task hands
// its slot to the next ready task of that kind AND enqueues any successors
// that just became ready — the coordinator thread never mediates a
// dependency edge. One engine (and one thread pool) can therefore stay
// alive across an entire QAOA^2 solve, streaming tasks of many components
// and recursion levels through the same slot budget.
//
// The engine is NON-BLOCKING: at most `slots` tasks of a kind are handed to
// the thread pool at a time; no pool thread ever parks waiting for a slot,
// and a waiting caller (`wait`/`drain`/`run_batch`) help-runs this engine's
// dispatched tasks plus bounded pool chunk work, so waits issued from
// inside a pool worker — or on a pool of one — still complete.
//
// `run_batch` remains as a thin compatibility wrapper: submit every task
// with no dependencies, wait for that batch, report batch-relative timings.

#include <cstddef>
#include <exception>
#include <functional>
#include <memory>
#include <vector>

namespace qq::util {
class ThreadPool;
}  // namespace qq::util

namespace qq::sched {

enum class ResourceKind { kQuantum, kClassical };

struct EngineOptions {
  int quantum_slots = 2;
  int classical_slots = 4;
  /// Pool the tasks execute on; nullptr selects ThreadPool::global().
  /// Injectable so tests can pin a deterministic width regardless of
  /// QQ_THREADS.
  util::ThreadPool* pool = nullptr;
};

struct Task {
  ResourceKind kind = ResourceKind::kClassical;
  /// The payload; its return value is opaque to the engine.
  std::function<void()> work;
};

/// Opaque reference to a submitted task; valid for the engine's lifetime.
struct TaskHandle {
  static constexpr std::size_t kInvalid = static_cast<std::size_t>(-1);
  std::size_t id = kInvalid;
  bool valid() const noexcept { return id != kInvalid; }
};

struct TaskTiming {
  std::size_t task = 0;
  ResourceKind kind = ResourceKind::kClassical;
  double submit_s = 0.0;  ///< entry into the engine's ready queue (for a
                          ///< dependent task: the moment its last dependency
                          ///< completed), relative to the clock origin —
                          ///< engine construction for timing(), batch start
                          ///< inside a BatchReport
  double start_s = 0.0;   ///< `work` began executing
  double end_s = 0.0;     ///< `work` returned (or threw)
  double wait_s = 0.0;    ///< start_s - submit_s: slot wait + pool queueing
  bool failed = false;    ///< `work` exited via an exception, or cancelled
  bool cancelled = false; ///< never ran: a (transitive) dependency failed
};

struct BatchReport {
  double wall_seconds = 0.0;
  /// Σ task service times (inside `work`), including failed tasks' partial
  /// runtimes.
  double busy_seconds = 0.0;
  double busy_quantum_seconds = 0.0;
  double busy_classical_seconds = 0.0;
  /// Wall time minus the ideal-parallel-time estimate of the useful work —
  /// the "coordination overhead is minimal" check. See
  /// ideal_parallel_seconds.
  double coordination_seconds = 0.0;
  std::vector<TaskTiming> timings;
};

/// Cumulative engine counters since construction; snapshot via
/// WorkflowEngine::stats().
struct EngineStats {
  double busy_quantum_seconds = 0.0;
  double busy_classical_seconds = 0.0;
  /// Σ per-task (start - ready) across every executed task.
  double queue_wait_seconds = 0.0;
  std::size_t submitted = 0;
  std::size_t completed = 0;  ///< ran to completion, including failed tasks
  std::size_t cancelled = 0;  ///< skipped because a dependency failed
  std::size_t quantum_tasks = 0;
  std::size_t classical_tasks = 0;
};

/// Ideal parallel drain time for the given per-kind busy totals, computed
/// per resource kind actually present: a kind's busy time cannot drain
/// faster than its own slots (or the pool) allow, and the total cannot
/// drain faster than the in-use slots / pool permit. Kinds with no tasks
/// contribute nothing — their slots are unusable and must not dilute the
/// estimate.
double ideal_parallel_seconds(double busy_quantum, double busy_classical,
                              std::size_t quantum_tasks,
                              std::size_t classical_tasks,
                              const EngineOptions& options,
                              std::size_t pool_width);

class WorkflowEngine {
 public:
  explicit WorkflowEngine(const EngineOptions& options);
  /// Drains every submitted task (cooperatively, without rethrowing) so no
  /// task closure outlives the frames it captures.
  ~WorkflowEngine();

  WorkflowEngine(const WorkflowEngine&) = delete;
  WorkflowEngine& operator=(const WorkflowEngine&) = delete;

  const EngineOptions& options() const noexcept { return options_; }
  /// The pool tasks execute on (options().pool or the global pool).
  util::ThreadPool& pool() const noexcept;

  /// Enqueue `task` to run once every task in `deps` has completed
  /// successfully. A task with no (remaining) dependencies enters its
  /// kind's ready queue immediately. If any dependency failed or was
  /// cancelled, the task is cancelled instead of run, transitively.
  /// Thread-safe; callable from inside a running task (dynamic task
  /// graphs).
  TaskHandle submit(Task task, const std::vector<TaskHandle>& deps = {});

  /// True once the task has run (or been cancelled).
  bool finished(TaskHandle handle) const;

  /// Cooperatively help-run engine tasks until `handle` completes, then
  /// rethrow its error if it failed (a cancelled task rethrows the
  /// dependency's error).
  void wait(TaskHandle handle);

  /// Cooperatively help-run until every submitted task has completed. The
  /// first error observed since the last drain/run_batch is rethrown —
  /// unless `error_out` is non-null, in which case it is stored there.
  void drain(std::exception_ptr* error_out = nullptr);

  /// Timing of a completed (or cancelled) task, relative to engine
  /// construction.
  TaskTiming timing(TaskHandle handle) const;

  EngineStats stats() const;

  /// Compatibility wrapper: run every task respecting the slot limits;
  /// blocks until all complete (cooperatively). If tasks throw, the batch
  /// still drains fully; the first exception is rethrown — unless
  /// `error_out` is non-null, in which case it is stored there and the
  /// report (including the failed tasks' timings and partial runtimes) is
  /// returned normally. Timings are relative to batch start.
  BatchReport run_batch(std::vector<Task> tasks,
                        std::exception_ptr* error_out = nullptr);

 private:
  struct Impl;

  EngineOptions options_;
  std::shared_ptr<Impl> impl_;
};

}  // namespace qq::sched
