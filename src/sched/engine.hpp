#pragma once
// Threaded coordinator/worker engine — the in-process analogue of the
// paper's Fig. 2 distribution scheme: "a coordinator executed on a
// dedicated MPI rank handles the partitioning and collection of results",
// while worker ranks consume either quantum (simulated device) or classical
// resources.
//
// Slot semantics mirror a SLURM allocation: at most `quantum_slots` tasks
// tagged kQuantum run concurrently (the simulated QPUs) and at most
// `classical_slots` tasks tagged kClassical (the CPU partition). Execution
// itself rides on the process-wide thread pool.

#include <cstddef>
#include <functional>
#include <vector>

namespace qq::sched {

enum class ResourceKind { kQuantum, kClassical };

struct EngineOptions {
  int quantum_slots = 2;
  int classical_slots = 4;
};

struct Task {
  ResourceKind kind = ResourceKind::kClassical;
  /// The payload; its return value is opaque to the engine.
  std::function<void()> work;
};

struct TaskTiming {
  std::size_t task = 0;
  ResourceKind kind = ResourceKind::kClassical;
  double submit_s = 0.0;  ///< relative to batch start
  double start_s = 0.0;
  double end_s = 0.0;
};

struct BatchReport {
  double wall_seconds = 0.0;
  /// Σ task service times (inside `work`).
  double busy_seconds = 0.0;
  /// wall time minus the critical-path-equivalent estimate of useful work:
  /// wall - busy/slots_used; the "coordination overhead is minimal" check.
  double coordination_seconds = 0.0;
  std::vector<TaskTiming> timings;
};

class WorkflowEngine {
 public:
  explicit WorkflowEngine(const EngineOptions& options);

  const EngineOptions& options() const noexcept { return options_; }

  /// Run every task respecting the slot limits; blocks until all complete.
  BatchReport run_batch(std::vector<Task> tasks);

 private:
  EngineOptions options_;
};

}  // namespace qq::sched
