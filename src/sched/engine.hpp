#pragma once
// Threaded coordinator/worker engine — the in-process analogue of the
// paper's Fig. 2 distribution scheme: "a coordinator executed on a
// dedicated MPI rank handles the partitioning and collection of results",
// while worker ranks consume either quantum (simulated device) or classical
// resources.
//
// Slot semantics mirror a SLURM allocation: at most `quantum_slots` tasks
// tagged kQuantum run concurrently (the simulated QPUs) and at most
// `classical_slots` tasks tagged kClassical (the CPU partition).
//
// The engine is NON-BLOCKING: the coordinator keeps per-resource ready
// queues and hands at most `slots` tasks of a kind to the thread pool at a
// time; when a task finishes, its worker dispatches the next ready task of
// that kind before returning to the pool. No pool thread ever parks waiting
// for a slot (the old semaphore-per-kind design serialized whole batches by
// parking workers behind a long quantum queue), and the coordinator itself
// help-runs queued work while it waits, so a batch issued from inside a
// pool worker — or on a pool of one — still completes.

#include <cstddef>
#include <exception>
#include <functional>
#include <vector>

namespace qq::util {
class ThreadPool;
}  // namespace qq::util

namespace qq::sched {

enum class ResourceKind { kQuantum, kClassical };

struct EngineOptions {
  int quantum_slots = 2;
  int classical_slots = 4;
  /// Pool the tasks execute on; nullptr selects ThreadPool::global().
  /// Injectable so tests can pin a deterministic width regardless of
  /// QQ_THREADS.
  util::ThreadPool* pool = nullptr;
};

struct Task {
  ResourceKind kind = ResourceKind::kClassical;
  /// The payload; its return value is opaque to the engine.
  std::function<void()> work;
};

struct TaskTiming {
  std::size_t task = 0;
  ResourceKind kind = ResourceKind::kClassical;
  double submit_s = 0.0;  ///< entry into the coordinator's ready queue,
                          ///< relative to batch start
  double start_s = 0.0;   ///< `work` began executing
  double end_s = 0.0;     ///< `work` returned (or threw)
  double wait_s = 0.0;    ///< start_s - submit_s: slot wait + pool queueing
  bool failed = false;    ///< `work` exited via an exception
};

struct BatchReport {
  double wall_seconds = 0.0;
  /// Σ task service times (inside `work`), including failed tasks' partial
  /// runtimes.
  double busy_seconds = 0.0;
  double busy_quantum_seconds = 0.0;
  double busy_classical_seconds = 0.0;
  /// Wall time minus the ideal-parallel-time estimate of the useful work —
  /// the "coordination overhead is minimal" check. The ideal is computed
  /// per resource kind actually present in the batch (an all-quantum batch
  /// is bounded by its quantum slots alone; classical slots it cannot use
  /// must not inflate the divisor) and lower-bounded by total CPU demand
  /// over the slots in use.
  double coordination_seconds = 0.0;
  std::vector<TaskTiming> timings;
};

class WorkflowEngine {
 public:
  explicit WorkflowEngine(const EngineOptions& options);

  const EngineOptions& options() const noexcept { return options_; }

  /// Run every task respecting the slot limits; blocks until all complete
  /// (cooperatively: the calling thread help-runs queued work while it
  /// waits). If tasks throw, the batch still drains fully; the first
  /// exception is rethrown — unless `error_out` is non-null, in which case
  /// it is stored there and the report (including the failed tasks'
  /// timings and partial runtimes) is returned normally. See
  /// TaskTiming::failed for per-task outcomes.
  BatchReport run_batch(std::vector<Task> tasks,
                        std::exception_ptr* error_out = nullptr);

 private:
  EngineOptions options_;
};

}  // namespace qq::sched
