#include "sched/des.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>
#include <vector>

namespace qq::sched {

namespace {
/// Min-heap of resource free-times for a homogeneous pool.
class Pool {
 public:
  explicit Pool(int size) {
    if (size < 1) throw std::invalid_argument("Pool: size must be >= 1");
    for (int i = 0; i < size; ++i) free_at_.push(0.0);
  }
  double earliest() const { return free_at_.top(); }
  /// Acquire the earliest-free resource no earlier than `ready`; returns
  /// the grant time and books it until grant + duration.
  double acquire(double ready, double duration) {
    const double grant = std::max(ready, free_at_.top());
    free_at_.pop();
    free_at_.push(grant + duration);
    return grant;
  }

 private:
  std::priority_queue<double, std::vector<double>, std::greater<>> free_at_;
};
}  // namespace

DesResult simulate_workload(const std::vector<JobPhases>& jobs,
                            const DesOptions& options) {
  for (const JobPhases& j : jobs) {
    if (j.classical_prep < 0 || j.quantum < 0 || j.classical_post < 0) {
      throw std::invalid_argument("simulate_workload: negative phase time");
    }
  }
  Pool classical(options.classical_nodes);
  Pool quantum(options.quantum_devices);
  DesResult result;
  result.traces.reserve(jobs.size());

  // Coordinator lookahead: reorder the dispatch queue by the known phase
  // durations (paper Fig. 2 caption).
  std::vector<std::size_t> order(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) order[i] = i;
  switch (options.queue) {
    case QueuePolicy::kFifo:
      break;
    case QueuePolicy::kLongestQuantumFirst:
      std::stable_sort(order.begin(), order.end(),
                       [&jobs](std::size_t a, std::size_t b) {
                         return jobs[a].quantum > jobs[b].quantum;
                       });
      break;
    case QueuePolicy::kShortestQuantumFirst:
      std::stable_sort(order.begin(), order.end(),
                       [&jobs](std::size_t a, std::size_t b) {
                         return jobs[a].quantum < jobs[b].quantum;
                       });
      break;
  }

  double completion_sum = 0.0;
  for (const std::size_t i : order) {
    const JobPhases& job = jobs[i];
    JobTrace trace;
    trace.job = static_cast<int>(i);

    if (options.policy == AllocationPolicy::kMpmd) {
      // Both resources must be free simultaneously for the whole job.
      const double ready = std::max(classical.earliest(), quantum.earliest());
      const double start_c = classical.acquire(ready, job.total());
      const double start_q = quantum.acquire(start_c, job.total());
      trace.start = std::max(start_c, start_q);
      trace.quantum_start = trace.start + job.classical_prep;
      trace.quantum_end = trace.quantum_start + job.quantum;
      trace.finish = trace.start + job.total();
      trace.quantum_wait = 0.0;
      result.quantum_allocated += job.total();
    } else {
      // Heterogeneous: classical held throughout, quantum grabbed late.
      const double start = classical.earliest();
      const double quantum_ready = start + job.classical_prep;
      const double quantum_start = quantum.acquire(quantum_ready, job.quantum);
      trace.start = start;
      trace.quantum_start = quantum_start;
      trace.quantum_end = quantum_start + job.quantum;
      trace.finish = trace.quantum_end + job.classical_post;
      trace.quantum_wait = quantum_start - quantum_ready;
      result.quantum_allocated += job.quantum;
      // Classical booking covers the realized span including device wait.
      classical.acquire(start, trace.finish - start);
    }
    result.quantum_busy += job.quantum;
    result.makespan = std::max(result.makespan, trace.finish);
    completion_sum += trace.finish;
    result.traces.push_back(trace);
  }
  result.mean_completion =
      jobs.empty() ? 0.0 : completion_sum / static_cast<double>(jobs.size());

  result.quantum_alloc_idle_fraction =
      result.quantum_allocated > 0.0
          ? 1.0 - result.quantum_busy / result.quantum_allocated
          : 0.0;
  result.quantum_utilization =
      result.makespan > 0.0
          ? result.quantum_busy /
                (static_cast<double>(options.quantum_devices) * result.makespan)
          : 0.0;
  return result;
}

}  // namespace qq::sched
