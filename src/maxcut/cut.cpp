#include "maxcut/cut.hpp"

#include <stdexcept>

namespace qq::maxcut {

double cut_value(const graph::Graph& g, const Assignment& assignment) {
  if (assignment.size() != static_cast<std::size_t>(g.num_nodes())) {
    throw std::invalid_argument("cut_value: assignment size mismatch");
  }
  double sum = 0.0;
  for (const graph::Edge& e : g.edges()) {
    if (assignment[static_cast<std::size_t>(e.u)] !=
        assignment[static_cast<std::size_t>(e.v)]) {
      sum += e.w;
    }
  }
  return sum;
}

double flip_gain(const graph::Graph& g, const Assignment& assignment,
                 graph::NodeId u) {
  if (assignment.size() != static_cast<std::size_t>(g.num_nodes())) {
    throw std::invalid_argument("flip_gain: assignment size mismatch");
  }
  double gain = 0.0;
  const std::uint8_t side = assignment[static_cast<std::size_t>(u)];
  for (const auto& [v, w] : g.neighbors(u)) {
    // Same-side edges become cut (+w); cut edges become internal (-w).
    gain += (assignment[static_cast<std::size_t>(v)] == side) ? w : -w;
  }
  return gain;
}

Assignment assignment_from_bits(std::uint64_t bits, graph::NodeId n) {
  if (n < 0 || n > 64) {
    throw std::invalid_argument("assignment_from_bits: n must be in [0, 64]");
  }
  Assignment out(static_cast<std::size_t>(n));
  for (graph::NodeId i = 0; i < n; ++i) {
    out[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>((bits >> i) & 1U);
  }
  return out;
}

std::uint64_t bits_from_assignment(const Assignment& assignment) {
  if (assignment.size() > 64) {
    throw std::invalid_argument("bits_from_assignment: more than 64 nodes");
  }
  std::uint64_t bits = 0;
  for (std::size_t i = 0; i < assignment.size(); ++i) {
    if (assignment[i]) bits |= (1ULL << i);
  }
  return bits;
}

Assignment complement(const Assignment& assignment) {
  Assignment out(assignment.size());
  for (std::size_t i = 0; i < assignment.size(); ++i) {
    out[i] = assignment[i] ? 0 : 1;
  }
  return out;
}

}  // namespace qq::maxcut
