#include "maxcut/qubo.hpp"

#include <stdexcept>

namespace qq::maxcut {

double IsingModel::energy(const Assignment& assignment) const {
  if (assignment.size() != static_cast<std::size_t>(num_spins)) {
    throw std::invalid_argument("IsingModel::energy: size mismatch");
  }
  double e = 0.0;
  for (const IsingTerm& t : terms) {
    const double si = assignment[static_cast<std::size_t>(t.i)] ? -1.0 : 1.0;
    const double sj = assignment[static_cast<std::size_t>(t.j)] ? -1.0 : 1.0;
    e += t.coupling * si * sj;
  }
  return e;
}

IsingModel maxcut_to_ising(const graph::Graph& g) {
  IsingModel model;
  model.num_spins = g.num_nodes();
  model.total_weight = g.total_weight();
  model.terms.reserve(g.num_edges());
  for (const graph::Edge& e : g.edges()) {
    model.terms.push_back(IsingTerm{e.u, e.v, e.w});
  }
  return model;
}

std::vector<double> maxcut_to_qubo(const graph::Graph& g) {
  const auto n = static_cast<std::size_t>(g.num_nodes());
  std::vector<double> q(n * n, 0.0);
  for (const graph::Edge& e : g.edges()) {
    const auto u = static_cast<std::size_t>(e.u);
    const auto v = static_cast<std::size_t>(e.v);
    q[u * n + u] += e.w;
    q[v * n + v] += e.w;
    q[u * n + v] -= e.w;
    q[v * n + u] -= e.w;
  }
  return q;
}

double qubo_value(const std::vector<double>& q, const Assignment& x) {
  const std::size_t n = x.size();
  if (q.size() != n * n) {
    throw std::invalid_argument("qubo_value: matrix/assignment size mismatch");
  }
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    if (!x[i]) continue;
    for (std::size_t j = 0; j < n; ++j) {
      if (x[j]) sum += q[i * n + j];
    }
  }
  return sum;
}

}  // namespace qq::maxcut
