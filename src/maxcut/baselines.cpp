#include "maxcut/baselines.hpp"

#include <algorithm>
#include <numeric>

namespace qq::maxcut {

CutResult randomized_partitioning(const graph::Graph& g, util::Rng& rng,
                                  double p) {
  Assignment assignment(static_cast<std::size_t>(g.num_nodes()));
  for (auto& side : assignment) {
    side = util::bernoulli(rng, p) ? 1 : 0;
  }
  return CutResult{assignment, cut_value(g, assignment)};
}

CutResult one_exchange(const graph::Graph& g, util::Rng& rng) {
  CutResult cur = randomized_partitioning(g, rng, 0.5);
  const graph::NodeId n = g.num_nodes();
  bool improved = true;
  while (improved) {
    improved = false;
    for (graph::NodeId u = 0; u < n; ++u) {
      const double gain = flip_gain(g, cur.assignment, u);
      if (gain > 1e-12) {
        cur.assignment[static_cast<std::size_t>(u)] ^= 1U;
        cur.value += gain;
        improved = true;
      }
    }
  }
  return cur;
}

CutResult greedy_cut(const graph::Graph& g) {
  const graph::NodeId n = g.num_nodes();
  std::vector<graph::NodeId> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&g](graph::NodeId a, graph::NodeId b) {
                     return g.weighted_degree(a) > g.weighted_degree(b);
                   });
  Assignment assignment(static_cast<std::size_t>(n), 0);
  std::vector<char> placed(static_cast<std::size_t>(n), 0);
  for (const graph::NodeId u : order) {
    double to_side0 = 0.0;  // cut contribution if u goes to side 0
    double to_side1 = 0.0;
    for (const auto& [v, w] : g.neighbors(u)) {
      if (!placed[static_cast<std::size_t>(v)]) continue;
      if (assignment[static_cast<std::size_t>(v)] == 0) {
        to_side1 += w;
      } else {
        to_side0 += w;
      }
    }
    assignment[static_cast<std::size_t>(u)] = to_side1 > to_side0 ? 1 : 0;
    placed[static_cast<std::size_t>(u)] = 1;
  }
  return CutResult{assignment, cut_value(g, assignment)};
}

CutResult one_exchange_restarts(const graph::Graph& g, util::Rng& rng,
                                int restarts,
                                const util::RequestContext* context) {
  // Seed with the first run rather than a sentinel value: on all-negative
  // graphs every local optimum can sit below any fixed sentinel, which
  // used to return an empty assignment (found by the fuzz oracle).
  CutResult best = one_exchange(g, rng);
  for (int r = 1; r < std::max(restarts, 1); ++r) {
    if (context != nullptr && context->stopped()) break;
    CutResult candidate = one_exchange(g, rng);
    if (candidate.value > best.value) best = std::move(candidate);
  }
  return best;
}

}  // namespace qq::maxcut
