#pragma once
// Exact MaxCut by exhaustive enumeration — the ground truth for every
// approximation-quality test and for the small-graph comparisons in the
// reproduction harnesses.

#include "maxcut/cut.hpp"

namespace qq::maxcut {

/// Enumerates all 2^(n-1) distinct cuts (node 0 pinned to side 0 by the
/// global flip symmetry) with Gray-code incremental updates, parallelized
/// across the global thread pool. Throws for n > 30.
CutResult solve_exact(const graph::Graph& g);

}  // namespace qq::maxcut
