#include "maxcut/exact.hpp"

#include <bit>
#include <limits>
#include <stdexcept>

#include "util/mutex.hpp"
#include "util/thread_pool.hpp"

namespace qq::maxcut {

namespace {

/// Enumerate Gray codes for rank range [lo, hi) over `bits` free bits.
/// Returns the best (value, gray) pair in the range.
std::pair<double, std::uint64_t> scan_range(const graph::Graph& g,
                                            int free_bits, std::uint64_t lo,
                                            std::uint64_t hi) {
  auto gray = [](std::uint64_t r) { return r ^ (r >> 1); };
  std::uint64_t code = gray(lo);
  Assignment assignment =
      assignment_from_bits(code, g.num_nodes());
  double value = cut_value(g, assignment);
  double best_value = value;
  std::uint64_t best_code = code;
  for (std::uint64_t r = lo + 1; r < hi; ++r) {
    // Consecutive Gray codes differ in exactly the bit countr_trailing of r.
    const int bit = std::countr_zero(r);
    if (bit >= free_bits) break;  // defensive; cannot happen for r < 2^bits
    const auto u = static_cast<graph::NodeId>(bit);
    value += flip_gain(g, assignment, u);
    assignment[static_cast<std::size_t>(u)] ^= 1U;
    code ^= (1ULL << bit);
    if (value > best_value) {
      best_value = value;
      best_code = code;
    }
  }
  return {best_value, best_code};
}

}  // namespace

CutResult solve_exact(const graph::Graph& g) {
  const graph::NodeId n = g.num_nodes();
  if (n > 30) {
    throw std::invalid_argument("solve_exact: limited to 30 nodes");
  }
  if (n <= 1) {
    return CutResult{Assignment(static_cast<std::size_t>(n), 0), 0.0};
  }
  // Node n-1 is pinned to side 0: enumerate the remaining n-1 bits.
  const int free_bits = n - 1;
  const std::uint64_t total = 1ULL << free_bits;

  util::Mutex mutex;
  // Seed the cross-chunk merge from -inf, not a magic sentinel: every
  // chunk's best is a REAL cut value, and a finite seed silently wins
  // whenever all of them dip below it (the `-1.0`-sentinel argmax family
  // qq_lint flags; here code 0 — the empty cut, value 0 — happens to be
  // enumerated, but the merge must not rely on that).
  double best_value = -std::numeric_limits<double>::infinity();
  std::uint64_t best_code = 0;

  util::parallel_for_chunks(
      0, total,
      [&](std::size_t lo, std::size_t hi) {
        const auto [value, code] = scan_range(g, free_bits, lo, hi);
        util::MutexLock lock(mutex);
        if (value > best_value ||
            (value == best_value && code < best_code)) {
          best_value = value;
          best_code = code;
        }
      },
      /*grain=*/1 << 12);

  CutResult out;
  out.assignment = assignment_from_bits(best_code, n);
  out.value = best_value;
  return out;
}

}  // namespace qq::maxcut
