#pragma once
// Classical baselines used throughout the paper's evaluation:
//   * random partitioning (the "Random" series in Fig. 4, the NetworkX
//     approximation.maxcut equivalent),
//   * one-exchange local search (NetworkX one_exchange),
//   * a deterministic greedy constructive heuristic.

#include "maxcut/cut.hpp"
#include "util/cancellation.hpp"
#include "util/rng.hpp"

namespace qq::maxcut {

/// Assign each node to a side independently with probability p.
CutResult randomized_partitioning(const graph::Graph& g, util::Rng& rng,
                                  double p = 0.5);

/// Start from a random assignment and flip any node with positive gain
/// until a local optimum (1-exchange neighbourhood) is reached.
CutResult one_exchange(const graph::Graph& g, util::Rng& rng);

/// Visit nodes in descending weighted-degree order and place each on the
/// side that maximizes its cut contribution against already-placed nodes.
CutResult greedy_cut(const graph::Graph& g);

/// Best of `restarts` independent one_exchange runs. `context` (nullable)
/// is polled between restarts; when it trips the best run so far wins.
CutResult one_exchange_restarts(const graph::Graph& g, util::Rng& rng,
                                int restarts,
                                const util::RequestContext* context = nullptr);

}  // namespace qq::maxcut
