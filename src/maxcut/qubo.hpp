#pragma once
// MaxCut <-> Ising / QUBO mappings (paper §1 notes the QUBO formulation
// used by annealers; Eq. 1 gives the Ising problem Hamiltonian).
//
// Conventions:
//   * spins s_i in {+1, -1} with s_i = 1 - 2 x_i for binary x_i in {0, 1};
//   * Ising energy E(s) = Σ_{(i,j) in E} w_ij s_i s_j;
//   * cut(x) = (W - E(s)) / 2 with W the total edge weight, matching the
//     problem Hamiltonian H_C = 1/2 Σ w_ij (1 - Z_i Z_j).

#include <vector>

#include "maxcut/cut.hpp"

namespace qq::maxcut {

struct IsingTerm {
  graph::NodeId i;
  graph::NodeId j;
  double coupling;  ///< J_ij
};

/// Zero-field Ising model equivalent to a MaxCut instance.
struct IsingModel {
  graph::NodeId num_spins = 0;
  std::vector<IsingTerm> terms;
  double total_weight = 0.0;

  /// E(s) for the spin configuration implied by a 0/1 assignment.
  double energy(const Assignment& assignment) const;
  /// cut(x) = (W - E)/2 — must equal maxcut::cut_value on the source graph.
  double cut_from_energy(double e) const { return 0.5 * (total_weight - e); }
};

IsingModel maxcut_to_ising(const graph::Graph& g);

/// Dense symmetric QUBO matrix Q with cut(x) = x^T Q x for binary x
/// (row-major, n*n). Q_ii = Σ_j w_ij, Q_ij = -w_ij for i != j.
std::vector<double> maxcut_to_qubo(const graph::Graph& g);

/// Evaluate x^T Q x for binary x.
double qubo_value(const std::vector<double>& q, const Assignment& x);

}  // namespace qq::maxcut
