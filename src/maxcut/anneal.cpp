#include "maxcut/anneal.hpp"

#include <cmath>
#include <stdexcept>

#include "maxcut/baselines.hpp"

namespace qq::maxcut {

CutResult simulated_annealing(const graph::Graph& g, util::Rng& rng,
                              const AnnealOptions& options) {
  if (options.sweeps < 1 || options.t_initial <= 0.0 ||
      options.t_final <= 0.0 || options.t_final > options.t_initial) {
    throw std::invalid_argument("simulated_annealing: bad options");
  }
  const graph::NodeId n = g.num_nodes();
  CutResult cur = randomized_partitioning(g, rng);
  CutResult best = cur;
  if (n == 0) return best;

  const double cooling =
      std::pow(options.t_final / options.t_initial,
               1.0 / static_cast<double>(options.sweeps));
  double temperature = options.t_initial;

  for (int sweep = 0; sweep < options.sweeps; ++sweep) {
    if (options.context != nullptr && options.context->stopped()) break;
    for (graph::NodeId i = 0; i < n; ++i) {
      const auto u = static_cast<graph::NodeId>(
          util::uniform_u64(rng, static_cast<std::uint64_t>(n)));
      const double gain = flip_gain(g, cur.assignment, u);
      if (gain >= 0.0 ||
          util::uniform(rng) < std::exp(gain / temperature)) {
        cur.assignment[static_cast<std::size_t>(u)] ^= 1U;
        cur.value += gain;
        if (cur.value > best.value) best = cur;
      }
    }
    temperature *= cooling;
  }
  return best;
}

}  // namespace qq::maxcut
