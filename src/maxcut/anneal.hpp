#pragma once
// Simulated annealing for MaxCut (paper §2 mentions it among the classical
// probabilistic alternatives). Single-flip Metropolis dynamics with a
// geometric cooling schedule.

#include "maxcut/cut.hpp"
#include "util/cancellation.hpp"
#include "util/rng.hpp"

namespace qq::maxcut {

struct AnnealOptions {
  int sweeps = 200;        ///< full passes over the nodes
  double t_initial = 2.0;  ///< initial temperature (units of edge weight)
  double t_final = 0.01;   ///< final temperature
  /// Cooperative stop state, polled once per sweep; when it trips the best
  /// cut so far is returned. Viewed, not owned; may be null.
  const util::RequestContext* context = nullptr;
};

CutResult simulated_annealing(const graph::Graph& g, util::Rng& rng,
                              const AnnealOptions& options = {});

}  // namespace qq::maxcut
