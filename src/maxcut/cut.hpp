#pragma once
// Cut representation and evaluation for the MaxCut problem (paper §3.1):
// split the nodes into two groups maximizing the weight of edges that cross
// between groups.

#include <cstdint>
#include <vector>

#include "qgraph/graph.hpp"

namespace qq::maxcut {

/// Side assignment: assignment[u] in {0, 1}.
using Assignment = std::vector<std::uint8_t>;

struct CutResult {
  Assignment assignment;
  double value = 0.0;
};

/// Σ_{(u,v) in E, assignment[u] != assignment[v]} w_uv. O(|E|).
double cut_value(const graph::Graph& g, const Assignment& assignment);

/// Change in cut value if node u flips sides. O(deg(u)).
double flip_gain(const graph::Graph& g, const Assignment& assignment,
                 graph::NodeId u);

/// Decode the n low bits of `bits` into an assignment (bit i -> node i).
Assignment assignment_from_bits(std::uint64_t bits, graph::NodeId n);

/// Inverse of assignment_from_bits; requires n <= 64.
std::uint64_t bits_from_assignment(const Assignment& assignment);

/// Complemented assignment (same cut value — global Z2 symmetry).
Assignment complement(const Assignment& assignment);

}  // namespace qq::maxcut
