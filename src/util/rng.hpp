#pragma once
// Deterministic, splittable pseudo-random number generation.
//
// All stochastic components of the library (graph generators, shot sampling,
// GW hyperplane slicing, simulated annealing, the scheduler's synthetic
// workloads) draw from these generators so that every experiment is exactly
// reproducible from a single 64-bit seed, independent of the standard
// library implementation.

#include <cstdint>
#include <cmath>
#include <limits>

namespace qq::util {

/// SplitMix64: tiny generator used to seed larger state from one word.
/// Reference: Steele, Lea, Flood — "Fast splittable pseudorandom number
/// generators" (OOPSLA 2014).
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: the library's workhorse generator.
/// Satisfies UniformRandomBitGenerator so it can also feed <random> if ever
/// needed, but the distribution helpers below are preferred (deterministic
/// across standard libraries).
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Derive an independent child stream; used to give every parallel task
  /// (sub-graph solve, shot batch, SDP restart) its own generator.
  Rng split() noexcept {
    Rng child(0);
    SplitMix64 sm((*this)() ^ 0xd1342543de82ef95ULL);
    for (auto& s : child.s_) s = sm.next();
    return child;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4]{};
};

/// Uniform double in [0, 1) with 53 bits of randomness.
inline double uniform(Rng& rng) noexcept {
  return static_cast<double>(rng() >> 11) * 0x1.0p-53;
}

/// Uniform double in [lo, hi).
inline double uniform(Rng& rng, double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform(rng);
}

/// Uniform integer in [lo, hi] (inclusive). Uses Lemire-style rejection to
/// avoid modulo bias.
inline std::uint64_t uniform_u64(Rng& rng, std::uint64_t bound) noexcept {
  // Returns value in [0, bound). bound must be >= 1.
  __uint128_t m = static_cast<__uint128_t>(rng()) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      m = static_cast<__uint128_t>(rng()) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

inline int uniform_int(Rng& rng, int lo, int hi) noexcept {
  return lo + static_cast<int>(uniform_u64(
                  rng, static_cast<std::uint64_t>(hi - lo + 1)));
}

/// Standard normal via the Marsaglia polar method (deterministic, no state
/// carried between calls beyond the generator itself).
inline double normal(Rng& rng) noexcept {
  for (;;) {
    const double u = 2.0 * uniform(rng) - 1.0;
    const double v = 2.0 * uniform(rng) - 1.0;
    const double s = u * u + v * v;
    if (s > 0.0 && s < 1.0) {
      return u * std::sqrt(-2.0 * std::log(s) / s);
    }
  }
}

/// Bernoulli trial with success probability p.
inline bool bernoulli(Rng& rng, double p) noexcept { return uniform(rng) < p; }

}  // namespace qq::util
