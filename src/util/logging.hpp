#pragma once
// Leveled, thread-safe stderr logging. Level is read once from QQ_LOG
// (error|warn|info|debug); default is warn so library users see problems
// but benches stay quiet.

#include <sstream>
#include <string>

namespace qq::util {

enum class LogLevel : int { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3 };

LogLevel log_level();
void set_log_level(LogLevel level);
bool log_enabled(LogLevel level);
void log_message(LogLevel level, const std::string& msg);

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, os_.str()); }
  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace qq::util

#define QQ_LOG(level)                                        \
  if (!::qq::util::log_enabled(level)) {                     \
  } else                                                     \
    ::qq::util::detail::LogLine(level)

#define QQ_LOG_ERROR QQ_LOG(::qq::util::LogLevel::kError)
#define QQ_LOG_WARN QQ_LOG(::qq::util::LogLevel::kWarn)
#define QQ_LOG_INFO QQ_LOG(::qq::util::LogLevel::kInfo)
#define QQ_LOG_DEBUG QQ_LOG(::qq::util::LogLevel::kDebug)
