#pragma once
// Minimal command-line parsing for the bench harnesses and examples.
//
// Supports `--flag`, `--key value`, and `--key=value`. Integer lists accept
// both comma syntax ("8,10,12") and range syntax ("8..12" or "8..12:2").

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace qq::util {

class Args {
 public:
  Args(int argc, const char* const* argv);

  bool has(const std::string& key) const;
  std::string get(const std::string& key, const std::string& fallback) const;
  int get_int(const std::string& key, int fallback) const;
  double get_double(const std::string& key, double fallback) const;
  /// Parse "a,b,c" or "lo..hi" or "lo..hi:step" into a list of ints.
  std::vector<int> get_int_list(const std::string& key,
                                const std::vector<int>& fallback) const;
  std::vector<double> get_double_list(const std::string& key,
                                      const std::vector<double>& fallback) const;

  const std::string& program() const { return program_; }

 private:
  std::optional<std::string> lookup(const std::string& key) const;
  std::string program_;
  std::unordered_map<std::string, std::string> kv_;
};

}  // namespace qq::util
