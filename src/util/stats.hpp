#pragma once
// Small statistics helpers shared by the benchmark harnesses and tests.

#include <cstddef>
#include <vector>

namespace qq::util {

/// Welford's online mean/variance accumulator: numerically stable single
/// pass, mergeable so parallel workers can each keep a local accumulator.
class RunningStats {
 public:
  void add(double x) noexcept;
  void merge(const RunningStats& other) noexcept;

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

double mean(const std::vector<double>& xs);
double variance(const std::vector<double>& xs);
double stddev(const std::vector<double>& xs);
/// Median via nth_element on a copy; average of middle pair for even sizes.
double median(std::vector<double> xs);
/// Linear-interpolated percentile, q in [0, 100].
double percentile(std::vector<double> xs, double q);

/// Pearson correlation of two equal-length series (0 if degenerate).
double correlation(const std::vector<double>& xs,
                   const std::vector<double>& ys);

/// Fixed-width histogram over [lo, hi); values outside clamp to end bins.
struct Histogram {
  Histogram(double lo, double hi, std::size_t bins);
  void add(double x) noexcept;
  double lo, hi;
  std::vector<std::size_t> counts;
  std::size_t total = 0;
};

}  // namespace qq::util
