#pragma once
// Annotated capability wrappers over the standard synchronization
// primitives — the repo's ONLY sanctioned mutex types (tools/qq_lint
// rejects raw std::mutex / std::lock_guard members anywhere else).
//
//   util::Mutex      std::mutex as a Clang thread-safety CAPABILITY
//   util::MutexLock  RAII scoped acquire with manual unlock()/lock() for
//                    help-loops that release around borrowed work
//   util::CondVar    std::condition_variable bound to MutexLock
//
// Under Clang, -Wthread-safety checks every QQ_GUARDED_BY field access and
// QQ_REQUIRES call against the locks actually held (CI escalates to
// -Werror=thread-safety); under other compilers the annotations vanish and
// these wrappers compile to the exact std:: operations they wrap.
//
// CondVar deliberately offers only predicate-FREE waits: a predicate lambda
// is a separate function to the analysis, so guarded reads inside it would
// need their own annotations at every call site. Write the standard loop
//   while (!condition) cv.wait(lock);
// instead — the condition then sits inside the annotated caller where the
// analysis can see the lock is held. (qq-lint: allow(raw-mutex) — this
// header IS the wrapper.)

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.hpp"

namespace qq::util {

class CondVar;
class MutexLock;

/// std::mutex as an annotated capability. Prefer MutexLock over manual
/// lock()/unlock(); the manual API exists for the rare non-scoped pattern
/// and for the negative-compile tests.
class QQ_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() QQ_ACQUIRE() { mu_.lock(); }
  void unlock() QQ_RELEASE() { mu_.unlock(); }
  bool try_lock() QQ_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class MutexLock;
  std::mutex mu_;
};

/// RAII scoped acquisition of a Mutex. Equivalent to std::unique_lock: the
/// destructor releases if (and only if) the lock is currently held, and
/// unlock()/lock() allow a help-loop to release the mutex around work it
/// borrowed from a queue (see WorkflowEngine::Impl::help_until).
class QQ_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) QQ_ACQUIRE(mu) : lock_(mu.mu_) {}
  ~MutexLock() QQ_RELEASE() = default;

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Re-acquire after unlock(). Undefined (as for std::unique_lock) when
  /// already held — the analysis rejects that statically under Clang.
  void lock() QQ_ACQUIRE() { lock_.lock(); }
  void unlock() QQ_RELEASE() { lock_.unlock(); }

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

/// Condition variable bound to util::Mutex via MutexLock. Only
/// predicate-free waits are offered (see the header comment): callers write
/// explicit `while (!cond) cv.wait(lock);` loops, keeping every guarded
/// read inside the annotated function.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `lock`, blocks, re-acquires before returning. The
  /// lock is held on entry and on exit, which is exactly what the analysis
  /// assumes — hence no annotation is needed.
  void wait(MutexLock& lock) { cv_.wait(lock.lock_); }

  /// Timed wait; returns false on timeout. Callers re-check their
  /// condition either way (spurious wakeups).
  template <typename Rep, typename Period>
  bool wait_for(MutexLock& lock,
                const std::chrono::duration<Rep, Period>& dur) {
    return cv_.wait_for(lock.lock_, dur) == std::cv_status::no_timeout;
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace qq::util
