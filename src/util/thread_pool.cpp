#include "util/thread_pool.hpp"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace qq::util {

namespace {
thread_local const ThreadPool* tls_owner = nullptr;

std::size_t resolve_thread_count(std::size_t requested) {
  if (requested != 0) return requested;
  if (const char* env = std::getenv("QQ_THREADS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 4 : hw;
}
}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t n = resolve_thread_count(threads);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

bool ThreadPool::inside_worker() const noexcept { return tls_owner == this; }

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

void ThreadPool::worker_loop(std::size_t /*index*/) {
  tls_owner = this;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  std::size_t grain) {
  parallel_for_chunks(
      pool, begin, end,
      [&body](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) body(i);
      },
      std::max<std::size_t>(grain, 1));
}

void parallel_for_chunks(ThreadPool& pool, std::size_t begin, std::size_t end,
                         const std::function<void(std::size_t, std::size_t)>& body,
                         std::size_t grain) {
  if (begin >= end) return;
  const std::size_t total = end - begin;

  // plan_chunks returns 1 for nested parallel regions (e.g. a gate kernel
  // invoked from a sub-graph task already running on the pool): the outer
  // level owns the cores, so the inner one executes serially.
  const std::size_t nchunks = detail::plan_chunks(pool, total, grain);
  if (nchunks <= 1) {
    body(begin, end);
    return;
  }
  const std::size_t chunk = (total + nchunks - 1) / nchunks;

  std::vector<std::future<void>> futures;
  futures.reserve(nchunks);
  for (std::size_t c = 0; c < nchunks; ++c) {
    const std::size_t lo = begin + c * chunk;
    const std::size_t hi = std::min(end, lo + chunk);
    if (lo >= hi) break;
    futures.push_back(pool.submit([&body, lo, hi] { body(lo, hi); }));
  }
  for (auto& f : futures) f.get();
}

}  // namespace qq::util
