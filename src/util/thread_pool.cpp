#include "util/thread_pool.hpp"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace qq::util {

namespace {
thread_local const ThreadPool* tls_owner = nullptr;

std::atomic<std::uint64_t> g_chunk_tasks_executed{0};

std::size_t resolve_thread_count(std::size_t requested) {
  if (requested != 0) return requested;
  if (const char* env = std::getenv("QQ_THREADS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 4 : hw;
}
}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t n = resolve_thread_count(threads);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

bool ThreadPool::inside_worker() const noexcept { return tls_owner == this; }

std::uint64_t ThreadPool::chunk_tasks_executed() noexcept {
  return g_chunk_tasks_executed.load(std::memory_order_relaxed);
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

void ThreadPool::worker_loop(std::size_t /*index*/) {
  tls_owner = this;
  for (;;) {
    ChunkTask chunk{nullptr, nullptr};
    std::function<void()> task;
    {
      MutexLock lock(mutex_);
      while (!stop_ && chunk_queue_.empty() && queue_.empty()) {
        cv_.wait(lock);
      }
      // Chunk tasks first: they are sub-tasks of already-running work, so
      // draining them bounds the latency of in-flight parallel regions.
      if (!chunk_queue_.empty()) {
        chunk = std::move(chunk_queue_.front());
        chunk_queue_.pop_front();
      } else if (!queue_.empty()) {
        task = std::move(queue_.front());
        queue_.pop_front();
      } else {
        return;  // stop_ set and both queues empty
      }
    }
    if (chunk.group != nullptr) {
      run_chunk_task(std::move(chunk));
    } else {
      task();
    }
  }
}

bool ThreadPool::settle_chunk_locked(TaskGroup& group, std::exception_ptr err) {
  if (err && !group.error_) group.error_ = err;
  return --group.pending_ == 0;
}

void ThreadPool::run_chunk_task(ChunkTask task) {
  g_chunk_tasks_executed.fetch_add(1, std::memory_order_relaxed);
  std::exception_ptr err;
  try {
    task.fn();
  } catch (...) {
    err = std::current_exception();
  }
  bool group_done = false;
  {
    MutexLock lock(mutex_);
    group_done = settle_chunk_locked(*task.group, err);
  }
  // Wake the group's waiter (it sleeps on the shared pool cv when the chunk
  // queue is empty and its tasks are running on other threads).
  if (group_done) cv_.notify_all();
}

bool ThreadPool::try_help_chunk() {
  ChunkTask chunk{nullptr, nullptr};
  {
    MutexLock lock(mutex_);
    if (chunk_queue_.empty()) return false;
    chunk = std::move(chunk_queue_.front());
    chunk_queue_.pop_front();
  }
  run_chunk_task(std::move(chunk));
  return true;
}

bool ThreadPool::try_help_one() {
  ChunkTask chunk{nullptr, nullptr};
  std::function<void()> task;
  {
    MutexLock lock(mutex_);
    if (!chunk_queue_.empty()) {
      chunk = std::move(chunk_queue_.front());
      chunk_queue_.pop_front();
    } else if (!queue_.empty()) {
      task = std::move(queue_.front());
      queue_.pop_front();
    } else {
      return false;
    }
  }
  if (chunk.group != nullptr) {
    run_chunk_task(std::move(chunk));
  } else {
    task();
  }
  return true;
}

ThreadPool::TaskGroup::~TaskGroup() { drain(/*rethrow=*/false); }

void ThreadPool::TaskGroup::run(std::function<void()> fn) {
  {
    MutexLock lock(pool_->mutex_);
    pool_->chunk_queue_.push_back(ChunkTask{std::move(fn), this});
    ++pending_;
  }
  pool_->cv_.notify_one();
}

void ThreadPool::TaskGroup::wait() { drain(/*rethrow=*/true); }

void ThreadPool::TaskGroup::drain(bool rethrow) {
  std::exception_ptr err;
  {
    MutexLock lock(pool_->mutex_);
    while (pending_ != 0) {
      if (!pool_->chunk_queue_.empty()) {
        ChunkTask task = std::move(pool_->chunk_queue_.front());
        pool_->chunk_queue_.pop_front();
        lock.unlock();
        // Help with whatever chunk is next — ours or another group's. Chunk
        // bodies are bounded (no blocking), so this always makes progress
        // and cannot deadlock; helping another group's chunk just means
        // finishing a sibling parallel region first.
        pool_->run_chunk_task(std::move(task));
        lock.lock();
        continue;
      }
      pool_->cv_.wait(lock);
    }
    err = error_;
    error_ = nullptr;
  }
  if (rethrow && err) std::rethrow_exception(err);
}

void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  std::size_t grain) {
  parallel_for_chunks(
      pool, begin, end,
      [&body](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) body(i);
      },
      std::max<std::size_t>(grain, 1));
}

void parallel_for_chunks(ThreadPool& pool, std::size_t begin, std::size_t end,
                         const std::function<void(std::size_t, std::size_t)>& body,
                         std::size_t grain) {
  if (begin >= end) return;
  const detail::ChunkPlan plan = detail::plan_chunks(end - begin, grain);
  if (plan.count <= 1) {
    body(begin, end);
    return;
  }
  auto eval = [&](std::size_t c) {
    const std::size_t lo = begin + c * plan.len;
    const std::size_t hi = std::min(end, lo + plan.len);
    body(lo, hi);
  };
  if (pool.size() <= 1) {
    for (std::size_t c = 0; c < plan.count; ++c) eval(c);
    return;
  }
  ThreadPool::TaskGroup group(pool);
  for (std::size_t c = 1; c < plan.count; ++c) {
    group.run([&eval, c] { eval(c); });
  }
  eval(0);       // first chunk on the calling thread...
  group.wait();  // ...then help drain the rest (cooperative nesting)
}

}  // namespace qq::util
