#pragma once
// ASCII table / heatmap rendering used by the reproduction harnesses to
// print the paper's figures as text grids.

#include <string>
#include <vector>

namespace qq::util {

/// Column-aligned table. Cells are free-form strings; the first row added
/// with `header` renders with a separator line beneath it.
class Table {
 public:
  explicit Table(std::vector<std::string> header);
  void add_row(std::vector<std::string> cells);
  std::string str() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Numeric grid with row/column labels — the textual form of the paper's
/// Fig. 3 heatmaps. Values render with fixed precision.
class Grid {
 public:
  Grid(std::string title, std::vector<std::string> row_labels,
       std::vector<std::string> col_labels, int precision = 3);
  void set(std::size_t row, std::size_t col, double value);
  double at(std::size_t row, std::size_t col) const;
  std::size_t rows() const { return row_labels_.size(); }
  std::size_t cols() const { return col_labels_.size(); }
  std::string str() const;

 private:
  std::string title_;
  std::vector<std::string> row_labels_;
  std::vector<std::string> col_labels_;
  std::vector<double> values_;
  int precision_;
};

std::string format_double(double v, int precision);

}  // namespace qq::util
