#pragma once
// Cooperative request-scoped stop state — the cancellation token, deadline
// clock, and objective-evaluation budget one service request shares with
// every solve it fans out (ROADMAP item 1: per-request cancellation that
// long COBYLA loops and component shards observe MID-solve, not only at
// task boundaries).
//
// The contract is cooperative: nothing is interrupted. Long-running loops
// poll `stopped()` (optimizer evaluations, anneal sweeps, GW slicings,
// local-search restarts) and return their best-so-far; task boundaries call
// `throw_if_stopped()` so a stopped request's remaining task graph unwinds
// through the engine's transitive-cancel machinery as a CancelledError.
// All members are lock-free atomics: one context is read from many engine
// tasks concurrently while the owning service cancels it from outside.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>

namespace qq::util {

/// Why a request stopped. Ordered by precedence: an explicit cancel wins
/// over a deadline, a deadline over budget exhaustion.
enum class StopReason : std::uint8_t {
  kNone = 0,
  kCancelled,  ///< RequestContext::cancel() was called
  kDeadline,   ///< the deadline passed
  kBudget,     ///< the armed evaluation budget is spent
};

constexpr const char* stop_reason_name(StopReason reason) noexcept {
  switch (reason) {
    case StopReason::kNone: return "none";
    case StopReason::kCancelled: return "cancelled";
    case StopReason::kDeadline: return "deadline";
    case StopReason::kBudget: return "budget";
  }
  return "?";
}

/// Thrown by throw_if_stopped(); carries the reason so the service can map
/// a request's terminal state (cancelled vs deadline vs budget) without
/// string-matching.
class CancelledError : public std::runtime_error {
 public:
  explicit CancelledError(StopReason reason)
      : std::runtime_error(std::string("request stopped: ") +
                           stop_reason_name(reason)),
        reason_(reason) {}

  StopReason reason() const noexcept { return reason_; }

 private:
  StopReason reason_;
};

class RequestContext {
 public:
  RequestContext() = default;
  RequestContext(const RequestContext&) = delete;
  RequestContext& operator=(const RequestContext&) = delete;

  /// Request an explicit cancel. Idempotent, callable from any thread.
  void cancel() noexcept { cancelled_.store(true, std::memory_order_relaxed); }

  bool cancel_requested() const noexcept {
    return cancelled_.load(std::memory_order_relaxed);
  }

  /// Arm (or move) the deadline `seconds` from now on the steady clock.
  void set_deadline_after(double seconds) noexcept {
    deadline_ns_.store(
        now_ns() + static_cast<std::int64_t>(seconds * 1e9),
        std::memory_order_relaxed);
  }

  bool has_deadline() const noexcept {
    return deadline_ns_.load(std::memory_order_relaxed) != kNoDeadline;
  }

  /// Seconds until the deadline (negative once passed); +inf when unarmed.
  double seconds_until_deadline() const noexcept {
    const std::int64_t d = deadline_ns_.load(std::memory_order_relaxed);
    if (d == kNoDeadline) return std::numeric_limits<double>::infinity();
    return static_cast<double>(d - now_ns()) * 1e-9;
  }

  /// Arm a cumulative objective-evaluation budget shared by every solve of
  /// the request; charge_evals() draws it down.
  void arm_eval_budget(std::int64_t evals) noexcept {
    evals_remaining_.store(evals, std::memory_order_relaxed);
    budget_armed_.store(true, std::memory_order_relaxed);
  }

  bool eval_budget_armed() const noexcept {
    return budget_armed_.load(std::memory_order_relaxed);
  }

  /// Remaining budget, clamped at 0. Meaningless unless armed.
  std::int64_t evals_remaining() const noexcept {
    const std::int64_t r = evals_remaining_.load(std::memory_order_relaxed);
    return r > 0 ? r : 0;
  }

  /// `const` deliberately: solvers hold the context as `const
  /// RequestContext*` (they must not cancel or re-arm it) yet still draw
  /// down the budget — accounting, not configuration.
  void charge_evals(std::int64_t n) const noexcept {
    if (budget_armed_.load(std::memory_order_relaxed)) {
      evals_remaining_.fetch_sub(n, std::memory_order_relaxed);
    }
  }

  StopReason stop_reason() const noexcept {
    if (cancel_requested()) return StopReason::kCancelled;
    if (has_deadline() && seconds_until_deadline() <= 0.0) {
      return StopReason::kDeadline;
    }
    if (eval_budget_armed() &&
        evals_remaining_.load(std::memory_order_relaxed) <= 0) {
      return StopReason::kBudget;
    }
    return StopReason::kNone;
  }

  bool stopped() const noexcept { return stop_reason() != StopReason::kNone; }

  /// Task-boundary check: throws CancelledError carrying the reason.
  void throw_if_stopped() const {
    const StopReason reason = stop_reason();
    if (reason != StopReason::kNone) throw CancelledError(reason);
  }

 private:
  static constexpr std::int64_t kNoDeadline =
      std::numeric_limits<std::int64_t>::max();

  static std::int64_t now_ns() noexcept {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  std::atomic<bool> cancelled_{false};
  std::atomic<std::int64_t> deadline_ns_{kNoDeadline};
  std::atomic<bool> budget_armed_{false};
  mutable std::atomic<std::int64_t> evals_remaining_{0};
};

}  // namespace qq::util
