#include "util/logging.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "util/mutex.hpp"

namespace qq::util {

namespace {
std::atomic<int> g_level{-1};
/// Serializes stderr writes so concurrent log lines never interleave. The
/// guarded resource is the stream itself, which no annotation can name.
Mutex g_mutex;

int level_from_env() {
  const char* env = std::getenv("QQ_LOG");
  if (env == nullptr) return static_cast<int>(LogLevel::kWarn);
  if (std::strcmp(env, "error") == 0) return 0;
  if (std::strcmp(env, "warn") == 0) return 1;
  if (std::strcmp(env, "info") == 0) return 2;
  if (std::strcmp(env, "debug") == 0) return 3;
  return static_cast<int>(LogLevel::kWarn);
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kError: return "ERROR";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kDebug: return "DEBUG";
  }
  return "?";
}
}  // namespace

LogLevel log_level() {
  int lv = g_level.load(std::memory_order_relaxed);
  if (lv < 0) {
    lv = level_from_env();
    g_level.store(lv, std::memory_order_relaxed);
  }
  return static_cast<LogLevel>(lv);
}

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

bool log_enabled(LogLevel level) {
  return static_cast<int>(level) <= static_cast<int>(log_level());
}

void log_message(LogLevel level, const std::string& msg) {
  MutexLock lock(g_mutex);
  std::fprintf(stderr, "[qq:%s] %s\n", level_name(level), msg.c_str());
}

}  // namespace qq::util
