#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace qq::util {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double nt = na + nb;
  mean_ += delta * nb / nt;
  m2_ += other.m2_ + delta * delta * na * nb / nt;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double RunningStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double mean(const std::vector<double>& xs) {
  RunningStats s;
  for (double x : xs) s.add(x);
  return s.mean();
}

double variance(const std::vector<double>& xs) {
  RunningStats s;
  for (double x : xs) s.add(x);
  return s.variance();
}

double stddev(const std::vector<double>& xs) { return std::sqrt(variance(xs)); }

double median(std::vector<double> xs) {
  if (xs.empty()) return 0.0;
  const std::size_t mid = xs.size() / 2;
  std::nth_element(xs.begin(), xs.begin() + static_cast<std::ptrdiff_t>(mid),
                   xs.end());
  double hi = xs[mid];
  if (xs.size() % 2 == 1) return hi;
  std::nth_element(xs.begin(),
                   xs.begin() + static_cast<std::ptrdiff_t>(mid - 1),
                   xs.begin() + static_cast<std::ptrdiff_t>(mid));
  return 0.5 * (xs[mid - 1] + hi);
}

double percentile(std::vector<double> xs, double q) {
  if (xs.empty()) return 0.0;
  q = std::clamp(q, 0.0, 100.0);
  std::sort(xs.begin(), xs.end());
  const double rank = q / 100.0 * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(rank));
  const auto hi = static_cast<std::size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  return xs[lo] + frac * (xs[hi] - xs[lo]);
}

double correlation(const std::vector<double>& xs,
                   const std::vector<double>& ys) {
  if (xs.size() != ys.size() || xs.size() < 2) return 0.0;
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  const double denom = std::sqrt(sxx * syy);
  return denom > 0.0 ? sxy / denom : 0.0;
}

Histogram::Histogram(double lo_, double hi_, std::size_t bins)
    : lo(lo_), hi(hi_), counts(bins, 0) {
  if (bins == 0 || !(hi > lo)) {
    throw std::invalid_argument("Histogram: need bins > 0 and hi > lo");
  }
}

void Histogram::add(double x) noexcept {
  const double t = (x - lo) / (hi - lo);
  auto idx = static_cast<std::ptrdiff_t>(t * static_cast<double>(counts.size()));
  idx = std::clamp<std::ptrdiff_t>(idx, 0,
                                   static_cast<std::ptrdiff_t>(counts.size()) - 1);
  ++counts[static_cast<std::size_t>(idx)];
  ++total;
}

}  // namespace qq::util
