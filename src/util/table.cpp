#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace qq::util {

std::string format_double(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::str() const {
  std::vector<std::size_t> widths(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c]) + 2) << cells[c];
    }
    os << '\n';
  };
  emit(header_);
  std::size_t line = 0;
  for (auto w : widths) line += w + 2;
  os << std::string(line, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return os.str();
}

Grid::Grid(std::string title, std::vector<std::string> row_labels,
           std::vector<std::string> col_labels, int precision)
    : title_(std::move(title)),
      row_labels_(std::move(row_labels)),
      col_labels_(std::move(col_labels)),
      values_(row_labels_.size() * col_labels_.size(), 0.0),
      precision_(precision) {}

void Grid::set(std::size_t row, std::size_t col, double value) {
  if (row >= rows() || col >= cols()) {
    throw std::out_of_range("Grid::set index");
  }
  values_[row * cols() + col] = value;
}

double Grid::at(std::size_t row, std::size_t col) const {
  if (row >= rows() || col >= cols()) {
    throw std::out_of_range("Grid::at index");
  }
  return values_[row * cols() + col];
}

std::string Grid::str() const {
  std::ostringstream os;
  os << title_ << '\n';
  std::size_t label_w = 0;
  for (const auto& r : row_labels_) label_w = std::max(label_w, r.size());
  std::size_t cell_w = static_cast<std::size_t>(precision_) + 4;
  for (const auto& c : col_labels_) cell_w = std::max(cell_w, c.size() + 1);

  os << std::string(label_w + 2, ' ');
  for (const auto& c : col_labels_) {
    os << std::right << std::setw(static_cast<int>(cell_w)) << c;
  }
  os << '\n';
  for (std::size_t r = 0; r < rows(); ++r) {
    os << std::left << std::setw(static_cast<int>(label_w) + 2)
       << row_labels_[r];
    for (std::size_t c = 0; c < cols(); ++c) {
      os << std::right << std::setw(static_cast<int>(cell_w))
         << format_double(at(r, c), precision_);
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace qq::util
