#include "util/cli.hpp"

#include <cstdlib>
#include <sstream>
#include <stdexcept>

namespace qq::util {

namespace {
bool looks_like_flag(const std::string& s) {
  return s.size() >= 3 && s[0] == '-' && s[1] == '-';
}
}  // namespace

Args::Args(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string tok = argv[i];
    if (!looks_like_flag(tok)) continue;
    tok = tok.substr(2);
    const auto eq = tok.find('=');
    if (eq != std::string::npos) {
      kv_[tok.substr(0, eq)] = tok.substr(eq + 1);
      continue;
    }
    // `--key value` when the next token is not itself a flag.
    if (i + 1 < argc && !looks_like_flag(argv[i + 1])) {
      kv_[tok] = argv[i + 1];
      ++i;
    } else {
      kv_[tok] = "";  // boolean flag
    }
  }
}

std::optional<std::string> Args::lookup(const std::string& key) const {
  const auto it = kv_.find(key);
  if (it == kv_.end()) return std::nullopt;
  return it->second;
}

bool Args::has(const std::string& key) const { return kv_.count(key) > 0; }

std::string Args::get(const std::string& key,
                      const std::string& fallback) const {
  const auto v = lookup(key);
  return v && !v->empty() ? *v : fallback;
}

int Args::get_int(const std::string& key, int fallback) const {
  const auto v = lookup(key);
  return v && !v->empty() ? std::stoi(*v) : fallback;
}

double Args::get_double(const std::string& key, double fallback) const {
  const auto v = lookup(key);
  return v && !v->empty() ? std::stod(*v) : fallback;
}

namespace {
std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, sep)) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

std::vector<int> parse_int_list(const std::string& spec) {
  std::vector<int> out;
  const auto range_pos = spec.find("..");
  if (range_pos != std::string::npos) {
    const int lo = std::stoi(spec.substr(0, range_pos));
    std::string rest = spec.substr(range_pos + 2);
    int step = 1;
    const auto colon = rest.find(':');
    if (colon != std::string::npos) {
      step = std::stoi(rest.substr(colon + 1));
      rest = rest.substr(0, colon);
    }
    const int hi = std::stoi(rest);
    if (step <= 0) throw std::invalid_argument("range step must be positive");
    for (int v = lo; v <= hi; v += step) out.push_back(v);
    return out;
  }
  for (const auto& tok : split(spec, ',')) out.push_back(std::stoi(tok));
  return out;
}
}  // namespace

std::vector<int> Args::get_int_list(const std::string& key,
                                    const std::vector<int>& fallback) const {
  const auto v = lookup(key);
  if (!v || v->empty()) return fallback;
  return parse_int_list(*v);
}

std::vector<double> Args::get_double_list(
    const std::string& key, const std::vector<double>& fallback) const {
  const auto v = lookup(key);
  if (!v || v->empty()) return fallback;
  std::vector<double> out;
  for (const auto& tok : split(*v, ',')) out.push_back(std::stod(tok));
  return out;
}

}  // namespace qq::util
