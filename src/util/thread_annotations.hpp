#pragma once
// Clang Thread Safety Analysis attribute shims (no-ops on other compilers).
//
// The repo's worst bugs have been concurrency bugs found only dynamically
// (the service-teardown use-after-free caught by the storm fuzzer + ASan,
// schedule-dependent races TSan may or may not reach). These macros let the
// locking discipline be checked at COMPILE time: every field a mutex guards
// carries QQ_GUARDED_BY, every "must be called with the lock held" helper
// carries QQ_REQUIRES, and a Clang build with -Wthread-safety (escalated to
// -Werror=thread-safety in CI) rejects any access that violates the
// contract. See https://clang.llvm.org/docs/ThreadSafetyAnalysis.html and
// DESIGN.md "Static analysis & locking discipline".
//
// Use util::Mutex / util::MutexLock / util::CondVar (util/mutex.hpp) as the
// annotated capability types; raw std::mutex members are rejected by
// tools/qq_lint.

#if defined(__clang__)
#define QQ_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#else
#define QQ_THREAD_ANNOTATION_ATTRIBUTE(x)  // no-op: GCC/MSVC have no analysis
#endif

/// Declares a type to be a capability (lockable). Applied to util::Mutex.
#define QQ_CAPABILITY(x) QQ_THREAD_ANNOTATION_ATTRIBUTE(capability(x))

/// Declares an RAII type that acquires a capability on construction and
/// releases it on destruction. Applied to util::MutexLock.
#define QQ_SCOPED_CAPABILITY QQ_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)

/// Field annotation: reads/writes require holding `x`.
#define QQ_GUARDED_BY(x) QQ_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))

/// Pointer-field annotation: the pointed-to data requires holding `x` (the
/// pointer itself is unguarded).
#define QQ_PT_GUARDED_BY(x) QQ_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))

/// Function annotation: the caller must hold the listed capabilities. This
/// is how implicit "called under the lock" helpers become explicit,
/// compiler-checked contracts (the engine's *_locked helpers, the service
/// record's settled_locked()).
#define QQ_REQUIRES(...) \
  QQ_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))

/// Function annotation: acquires the listed capabilities (held on return).
#define QQ_ACQUIRE(...) \
  QQ_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))

/// Function annotation: releases the listed capabilities.
#define QQ_RELEASE(...) \
  QQ_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))

/// Function annotation: acquires the capability iff the return value equals
/// the first argument.
#define QQ_TRY_ACQUIRE(...) \
  QQ_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))

/// Function annotation: the caller must NOT hold the listed capabilities
/// (the function acquires them itself; guards against self-deadlock).
#define QQ_EXCLUDES(...) \
  QQ_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))

/// Lock-ordering declarations (checked under -Wthread-safety-beta only;
/// kept for documentation value regardless).
#define QQ_ACQUIRED_BEFORE(...) \
  QQ_THREAD_ANNOTATION_ATTRIBUTE(acquired_before(__VA_ARGS__))
#define QQ_ACQUIRED_AFTER(...) \
  QQ_THREAD_ANNOTATION_ATTRIBUTE(acquired_after(__VA_ARGS__))

/// Function annotation: returns a reference to the capability guarding it.
#define QQ_RETURN_CAPABILITY(x) \
  QQ_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))

/// Escape hatch: disables analysis of the function BODY (callers are still
/// checked against its QQ_REQUIRES). Use only where the analysis cannot
/// express a true invariant — e.g. an aliasing fact like "group.pool_ ==
/// this" — and say why at the use site.
#define QQ_NO_THREAD_SAFETY_ANALYSIS \
  QQ_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)
