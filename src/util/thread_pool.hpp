#pragma once
// Fixed-size thread pool with cooperative (work-helping) nested parallelism.
//
// This is the shared-memory analogue of the paper's MPI worker ranks: the
// state-vector gate kernels, the grid-search sweeps, and the QAOA^2
// sub-graph fan-out all execute through one process-wide pool so that the
// machine is never over-subscribed, mirroring how a SLURM allocation pins a
// fixed set of cores.
//
// Two kinds of work flow through the pool:
//
//  * submit() tasks — coarse, future-returning jobs (e.g. the workflow
//    engine's sub-graph solves). Only pool workers (or an explicit
//    try_help_one() caller that accepts running arbitrary foreign work
//    inline) run these; the engine coordinator deliberately does NOT — it
//    claims its own batch's tasks and otherwise helps only via
//    try_help_chunk().
//  * TaskGroup tasks — fine-grained chunks produced by parallel_for_chunks /
//    parallel_reduce. Anybody may run these: pool workers drain them with
//    priority, and a thread waiting on its own group *helps* by executing
//    queued chunks (its own group's or another's) instead of blocking. A
//    nested parallel region called from inside a worker therefore still
//    fans out across the pool — there is no "inside a worker => serial"
//    cliff, and no thread ever parks while chunk work is runnable.

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <optional>
#include <thread>
#include <type_traits>
#include <vector>

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace qq::util {

class ThreadPool {
 public:
  /// threads == 0 selects the value of the QQ_THREADS environment variable,
  /// falling back to std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const noexcept { return workers_.size(); }

  /// Schedule a callable; returns a future for its result.
  template <typename F, typename... Args>
  auto submit(F&& f, Args&&... args)
      -> std::future<std::invoke_result_t<F, Args...>> {
    using R = std::invoke_result_t<F, Args...>;
    auto task = std::make_shared<std::packaged_task<R()>>(
        [fn = std::forward<F>(f),
         ... as = std::forward<Args>(args)]() mutable -> R {
          return std::invoke(std::move(fn), std::move(as)...);
        });
    std::future<R> fut = task->get_future();
    {
      MutexLock lock(mutex_);
      queue_.emplace_back([task]() { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// A set of fine-grained tasks whose completion the owner waits for
  /// cooperatively: wait() executes queued chunk tasks (any group's) while
  /// the group drains instead of blocking the calling thread. This is what
  /// makes nested parallel regions safe AND parallel — a worker that opens
  /// a group inside a task helps run the very chunks it enqueued.
  class TaskGroup {
   public:
    explicit TaskGroup(ThreadPool& pool) noexcept : pool_(&pool) {}
    /// Drains remaining tasks (without rethrowing) if wait() was skipped,
    /// so chunk closures never outlive the frame that owns their captures.
    ~TaskGroup();
    TaskGroup(const TaskGroup&) = delete;
    TaskGroup& operator=(const TaskGroup&) = delete;

    /// Enqueue one chunk task.
    void run(std::function<void()> fn);

    /// Help-run queued chunk tasks until every task of THIS group has
    /// finished, then rethrow the group's first exception (if any).
    void wait();

   private:
    friend class ThreadPool;
    void drain(bool rethrow);

    ThreadPool* pool_;
    std::size_t pending_ QQ_GUARDED_BY(pool_->mutex_) = 0;
    /// First failure observed among this group's tasks.
    std::exception_ptr error_ QQ_GUARDED_BY(pool_->mutex_);
  };

  /// Run one queued task if any is available — chunk tasks first, then
  /// submitted tasks. Returns whether something was executed. Note that the
  /// submitted task picked up may be ANY queued work, so only call this
  /// when executing arbitrary foreign tasks inline is acceptable.
  bool try_help_one();

  /// Run one queued CHUNK task if any is available (never a coarse
  /// submitted task). Chunk bodies are bounded, so this is safe in waits
  /// that must not adopt foreign long-running work — the engine
  /// coordinator's wait loop uses it.
  bool try_help_chunk();

  /// True when called from one of this pool's worker threads. Nested
  /// parallel regions no longer serialize on this — it remains for
  /// diagnostics and tests.
  bool inside_worker() const noexcept;

  /// Process-wide count of TaskGroup (chunk) tasks executed, across all
  /// pools. Monotonic; a cheap observability hook used by tests and
  /// bench_micro_engine to verify that nested kernels actually split.
  static std::uint64_t chunk_tasks_executed() noexcept;

  /// Process-wide pool (lazily constructed, sized by QQ_THREADS).
  static ThreadPool& global();

 private:
  struct ChunkTask {
    std::function<void()> fn;
    TaskGroup* group;
  };

  void worker_loop(std::size_t index);
  /// Execute a chunk task and do its completion bookkeeping (error capture,
  /// pending decrement, waiter wake-up).
  void run_chunk_task(ChunkTask task);
  /// Record a finished chunk against its group: capture the first error,
  /// decrement the pending count. Returns true when the group just drained
  /// (the caller notifies outside the lock). The group's fields are guarded
  /// by group.pool_->mutex_, which IS mutex_ (every group is enqueued on
  /// its own pool) — an aliasing fact the analysis cannot express, hence
  /// the targeted body suppression; callers are still checked.
  bool settle_chunk_locked(TaskGroup& group, std::exception_ptr err)
      QQ_REQUIRES(mutex_) QQ_NO_THREAD_SAFETY_ANALYSIS;

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_ QQ_GUARDED_BY(mutex_);
  std::deque<ChunkTask> chunk_queue_ QQ_GUARDED_BY(mutex_);
  Mutex mutex_;
  CondVar cv_;
  bool stop_ QQ_GUARDED_BY(mutex_) = false;
};

namespace detail {
/// Fixed chunk geometry shared by parallel_for_chunks / parallel_reduce and
/// any caller that needs identical boundaries across multiple passes (the
/// sample_counts prefix sum). `count` chunks of `len` indices each (the
/// last chunk may be shorter) cover a range of `total`.
struct ChunkPlan {
  std::size_t count = 0;
  std::size_t len = 0;
};

/// The chunk plan is a pure function of (total, grain) — deliberately
/// independent of pool size and of whether the caller is nested inside a
/// worker. Fixed boundaries mean parallel_reduce's in-order fold groups
/// floating-point operations identically everywhere, so results are
/// bit-for-bit reproducible across thread counts, nesting depth, and
/// scheduling (the old plan depended on pool.size() and collapsed to one
/// chunk inside workers, so nested results differed from top-level ones).
/// kMaxChunks = 64 bounds dispatch overhead while giving an 8-thread pool
/// 8x oversubscription for load balancing.
inline ChunkPlan plan_chunks(std::size_t total, std::size_t grain) noexcept {
  grain = std::max<std::size_t>(grain, 1);
  if (total == 0) return {0, 0};
  if (total <= grain) return {1, total};
  constexpr std::size_t kMaxChunks = 64;
  std::size_t count = std::min(kMaxChunks, (total + grain - 1) / grain);
  const std::size_t len = (total + count - 1) / count;
  count = (total + len - 1) / len;
  return {count, len};
}
}  // namespace detail

/// Evenly split [begin, end) across the pool and run body(i) for each index.
/// Blocks until every index has been processed. Safe to call from inside a
/// worker: the chunks are enqueued on the pool and the caller helps drain
/// them (cooperative nesting), so the region still runs in parallel.
/// `grain` caps the number of chunks: chunks are at least `grain` indices
/// long. Exceptions from `body` propagate to the caller (first one wins).
void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  std::size_t grain = 1);

/// Chunked variant: body receives [chunk_begin, chunk_end) and may vectorize
/// over it. This is what the state-vector kernels use. The body is invoked
/// exactly plan_chunks(end - begin, grain).count times with the planned
/// boundaries regardless of pool size or nesting.
void parallel_for_chunks(ThreadPool& pool, std::size_t begin, std::size_t end,
                         const std::function<void(std::size_t, std::size_t)>& body,
                         std::size_t grain = 1024);

/// Chunked parallel reduction. `chunk` maps a half-open range [lo, hi) to a
/// partial value of type T; partials are folded left-to-right in chunk order
/// with `combine(acc, partial)`, starting from `identity`. Chunk boundaries
/// come from detail::plan_chunks, which ignores pool size and nesting, so
/// the fold is bit-for-bit deterministic across thread counts and across
/// top-level vs nested invocation — the test suite relies on this. Safe to
/// call from inside a worker (the caller helps drain its own chunks).
template <typename T, typename ChunkFn, typename CombineFn>
T parallel_reduce(ThreadPool& pool, std::size_t begin, std::size_t end,
                  T identity, ChunkFn&& chunk, CombineFn&& combine,
                  std::size_t grain = 1024) {
  if (begin >= end) return identity;
  const detail::ChunkPlan plan = detail::plan_chunks(end - begin, grain);
  if (plan.count <= 1) {
    return combine(std::move(identity), chunk(begin, end));
  }
  std::vector<std::optional<T>> partials(plan.count);
  auto eval = [&](std::size_t c) {
    const std::size_t lo = begin + c * plan.len;
    const std::size_t hi = std::min(end, lo + plan.len);
    partials[c].emplace(chunk(lo, hi));
  };
  if (pool.size() <= 1) {
    // A one-thread pool gains nothing from dispatch; same boundaries, same
    // fold, executed inline.
    for (std::size_t c = 0; c < plan.count; ++c) eval(c);
  } else {
    ThreadPool::TaskGroup group(pool);
    for (std::size_t c = 1; c < plan.count; ++c) {
      group.run([&eval, c] { eval(c); });
    }
    eval(0);       // the caller computes the first chunk itself...
    group.wait();  // ...then helps drain the rest instead of blocking
  }
  T acc = std::move(identity);
  for (std::size_t c = 0; c < plan.count; ++c) {
    acc = combine(std::move(acc), std::move(*partials[c]));
  }
  return acc;
}

/// Convenience wrappers over the global pool.
inline void parallel_for(std::size_t begin, std::size_t end,
                         const std::function<void(std::size_t)>& body,
                         std::size_t grain = 1) {
  parallel_for(ThreadPool::global(), begin, end, body, grain);
}
inline void parallel_for_chunks(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& body,
    std::size_t grain = 1024) {
  parallel_for_chunks(ThreadPool::global(), begin, end, body, grain);
}
template <typename T, typename ChunkFn, typename CombineFn>
T parallel_reduce(std::size_t begin, std::size_t end, T identity,
                  ChunkFn&& chunk, CombineFn&& combine,
                  std::size_t grain = 1024) {
  return parallel_reduce(ThreadPool::global(), begin, end,
                         std::move(identity), std::forward<ChunkFn>(chunk),
                         std::forward<CombineFn>(combine), grain);
}

}  // namespace qq::util
