#pragma once
// Fixed-size thread pool with a shared task queue plus a blocking
// parallel-for built on top of it.
//
// This is the shared-memory analogue of the paper's MPI worker ranks: the
// state-vector gate kernels, the grid-search sweeps, and the QAOA^2
// sub-graph fan-out all execute through one process-wide pool so that the
// machine is never over-subscribed, mirroring how a SLURM allocation pins a
// fixed set of cores.

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace qq::util {

class ThreadPool {
 public:
  /// threads == 0 selects the value of the QQ_THREADS environment variable,
  /// falling back to std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const noexcept { return workers_.size(); }

  /// Schedule a callable; returns a future for its result.
  template <typename F, typename... Args>
  auto submit(F&& f, Args&&... args)
      -> std::future<std::invoke_result_t<F, Args...>> {
    using R = std::invoke_result_t<F, Args...>;
    auto task = std::make_shared<std::packaged_task<R()>>(
        [fn = std::forward<F>(f),
         ... as = std::forward<Args>(args)]() mutable -> R {
          return std::invoke(std::move(fn), std::move(as)...);
        });
    std::future<R> fut = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      queue_.emplace_back([task]() { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// True when called from one of this pool's worker threads. Used to make
  /// nested parallel regions degrade gracefully to serial execution instead
  /// of deadlocking.
  bool inside_worker() const noexcept;

  /// Process-wide pool (lazily constructed, sized by QQ_THREADS).
  static ThreadPool& global();

 private:
  void worker_loop(std::size_t index);

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

namespace detail {
/// Shared chunking policy for parallel_for_chunks / parallel_reduce and any
/// caller that needs the same fixed chunk boundaries across multiple passes
/// (e.g. the sample_counts prefix sum): the number of chunks a range of
/// `total` indices is split into on `pool` — 1 whenever the serial fallback
/// applies (inside a worker, single-threaded pool, or range not worth
/// splitting), otherwise at most 4 chunks per worker, each at least `grain`
/// indices long.
inline std::size_t plan_chunks(const ThreadPool& pool, std::size_t total,
                               std::size_t grain) noexcept {
  grain = std::max<std::size_t>(grain, 1);
  if (pool.inside_worker() || pool.size() <= 1 || total <= grain) return 1;
  const std::size_t max_chunks = pool.size() * 4;
  return std::min(max_chunks, (total + grain - 1) / grain);
}
}  // namespace detail

/// Evenly split [begin, end) across the pool and run body(i) for each index.
/// Blocks until every index has been processed. Safe to call from inside a
/// worker (runs serially in that case). `grain` caps the number of chunks:
/// chunks are at least `grain` indices long.
void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  std::size_t grain = 1);

/// Chunked variant: body receives [chunk_begin, chunk_end) and may vectorize
/// over it. This is what the state-vector kernels use.
void parallel_for_chunks(ThreadPool& pool, std::size_t begin, std::size_t end,
                         const std::function<void(std::size_t, std::size_t)>& body,
                         std::size_t grain = 1024);

/// Chunked parallel reduction. `chunk` maps a half-open range [lo, hi) to a
/// partial value of type T; partials are folded left-to-right in chunk order
/// with `combine(acc, partial)`, starting from `identity`. In-order folding
/// keeps results bit-for-bit deterministic at a fixed thread count, which the
/// test suite relies on. Safe to call from inside a worker (degrades to one
/// serial chunk, like parallel_for_chunks).
template <typename T, typename ChunkFn, typename CombineFn>
T parallel_reduce(ThreadPool& pool, std::size_t begin, std::size_t end,
                  T identity, ChunkFn&& chunk, CombineFn&& combine,
                  std::size_t grain = 1024) {
  if (begin >= end) return identity;
  const std::size_t total = end - begin;
  const std::size_t nchunks = detail::plan_chunks(pool, total, grain);
  if (nchunks <= 1) {
    return combine(std::move(identity), chunk(begin, end));
  }
  const std::size_t len = (total + nchunks - 1) / nchunks;
  std::vector<std::future<T>> futures;
  futures.reserve(nchunks);
  for (std::size_t c = 0; c < nchunks; ++c) {
    const std::size_t lo = begin + c * len;
    const std::size_t hi = std::min(end, lo + len);
    if (lo >= hi) break;
    futures.push_back(pool.submit([&chunk, lo, hi] { return chunk(lo, hi); }));
  }
  T acc = std::move(identity);
  for (auto& f : futures) acc = combine(std::move(acc), f.get());
  return acc;
}

/// Convenience wrappers over the global pool.
inline void parallel_for(std::size_t begin, std::size_t end,
                         const std::function<void(std::size_t)>& body,
                         std::size_t grain = 1) {
  parallel_for(ThreadPool::global(), begin, end, body, grain);
}
inline void parallel_for_chunks(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& body,
    std::size_t grain = 1024) {
  parallel_for_chunks(ThreadPool::global(), begin, end, body, grain);
}
template <typename T, typename ChunkFn, typename CombineFn>
T parallel_reduce(std::size_t begin, std::size_t end, T identity,
                  ChunkFn&& chunk, CombineFn&& combine,
                  std::size_t grain = 1024) {
  return parallel_reduce(ThreadPool::global(), begin, end,
                         std::move(identity), std::forward<ChunkFn>(chunk),
                         std::forward<CombineFn>(combine), grain);
}

}  // namespace qq::util
