#pragma once
// Nelder–Mead downhill simplex — the alternative classical optimizer kept
// alongside COBYLA so the QAOA driver can swap optimizers (and tests can
// cross-check convergence behaviour).

#include <functional>

#include "optim/optimizer.hpp"

namespace qq::optim {

struct NelderMeadOptions {
  double step = 0.5;    ///< initial simplex edge length
  double ftol = 1e-9;   ///< spread-of-values convergence threshold
  int maxfun = 400;     ///< budget of objective evaluations
  /// Cooperative stop hook, polled once per iteration; on true the best
  /// point so far is returned with converged=false. Empty = never stop.
  std::function<bool()> should_stop;
};

Result nelder_mead_minimize(const Objective& objective, std::vector<double> x0,
                            const NelderMeadOptions& options = {});

}  // namespace qq::optim
