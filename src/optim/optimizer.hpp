#pragma once
// Common types for the derivative-free optimizers driving the QAOA
// classical loop (paper §3.2: "⃗γ and ⃗β values are changed in each
// iteration by a classical optimizer").

#include <functional>
#include <vector>

namespace qq::optim {

/// Objective to MINIMIZE. QAOA maximizes F_p and therefore feeds -F_p.
using Objective = std::function<double(const std::vector<double>&)>;

struct Result {
  std::vector<double> x;
  double fx = 0.0;
  int evaluations = 0;
  /// True when the radius/size tolerance was reached before the evaluation
  /// budget ran out.
  bool converged = false;
};

}  // namespace qq::optim
