#pragma once
// COBYLA-style derivative-free trust-region optimizer.
//
// The paper drives QAOA with SciPy's COBYLA and sweeps its `rhobeg`
// parameter (initial change to the variables) over {0.1 ... 0.5} — rhobeg is
// therefore a first-class citizen here. This implementation keeps the core
// of Powell's method for the unconstrained case (QAOA angles are
// unconstrained): a non-degenerate simplex of n+1 points carries a linear
// interpolation model; steps are steepest-descent moves of length rho on
// that model; rho only ever shrinks, from rhobeg down to rhoend, with a
// simplex rebuild around the incumbent at every shrink. The constraint
// machinery of the original (which MaxCut-QAOA never engages) is omitted —
// see DESIGN.md "Substitutions".

#include <functional>

#include "optim/optimizer.hpp"

namespace qq::optim {

struct CobylaOptions {
  double rhobeg = 0.5;   ///< initial trust-region radius / simplex edge
  double rhoend = 1e-4;  ///< final radius; convergence once reached
  int maxfun = 100;      ///< budget of objective evaluations
  /// Cooperative stop hook, polled once per iteration (at most a few
  /// objective evaluations apart). When it returns true the optimizer
  /// returns its best-so-far with converged=false. Empty = never stop
  /// early; results are bit-for-bit unchanged when it never fires.
  std::function<bool()> should_stop;
};

Result cobyla_minimize(const Objective& objective, std::vector<double> x0,
                       const CobylaOptions& options = {});

}  // namespace qq::optim
