#include "optim/nelder_mead.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace qq::optim {

Result nelder_mead_minimize(const Objective& objective, std::vector<double> x0,
                            const NelderMeadOptions& options) {
  const std::size_t n = x0.size();
  if (n == 0) {
    throw std::invalid_argument("nelder_mead_minimize: empty start point");
  }
  // Standard coefficients (reflection, expansion, contraction, shrink).
  const double alpha = 1.0, gamma = 2.0, rho_c = 0.5, sigma = 0.5;

  Result result;
  result.fx = std::numeric_limits<double>::infinity();
  auto evaluate = [&](const std::vector<double>& x) {
    const double fx = objective(x);
    ++result.evaluations;
    if (fx < result.fx) {
      result.fx = fx;
      result.x = x;
    }
    return fx;
  };

  auto stop_requested = [&options] {
    return options.should_stop && options.should_stop();
  };

  std::vector<std::vector<double>> pts(n + 1, x0);
  std::vector<double> vals(n + 1);
  vals[0] = evaluate(pts[0]);
  for (std::size_t i = 0; i < n; ++i) {
    pts[i + 1][i] += options.step;
    vals[i + 1] = evaluate(pts[i + 1]);
    if (result.evaluations >= options.maxfun || stop_requested()) {
      return result;
    }
  }

  std::vector<std::size_t> order(n + 1);
  std::vector<double> centroid(n), xr(n), xe(n), xc(n);

  while (result.evaluations < options.maxfun && !stop_requested()) {
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(),
              [&vals](std::size_t i, std::size_t j) { return vals[i] < vals[j]; });
    const std::size_t lo = order.front();
    const std::size_t hi = order.back();
    const std::size_t second_hi = order[n - 1];

    if (std::abs(vals[hi] - vals[lo]) <
        options.ftol * (std::abs(vals[hi]) + std::abs(vals[lo]) + 1e-30)) {
      result.converged = true;
      break;
    }

    std::fill(centroid.begin(), centroid.end(), 0.0);
    for (std::size_t i = 0; i <= n; ++i) {
      if (i == hi) continue;
      for (std::size_t c = 0; c < n; ++c) centroid[c] += pts[i][c];
    }
    for (double& c : centroid) c /= static_cast<double>(n);

    for (std::size_t c = 0; c < n; ++c) {
      xr[c] = centroid[c] + alpha * (centroid[c] - pts[hi][c]);
    }
    const double fr = evaluate(xr);

    if (fr < vals[lo]) {
      for (std::size_t c = 0; c < n; ++c) {
        xe[c] = centroid[c] + gamma * (xr[c] - centroid[c]);
      }
      const double fe = evaluate(xe);
      if (fe < fr) {
        pts[hi] = xe;
        vals[hi] = fe;
      } else {
        pts[hi] = xr;
        vals[hi] = fr;
      }
    } else if (fr < vals[second_hi]) {
      pts[hi] = xr;
      vals[hi] = fr;
    } else {
      const bool outside = fr < vals[hi];
      const auto& base = outside ? xr : pts[hi];
      for (std::size_t c = 0; c < n; ++c) {
        xc[c] = centroid[c] + rho_c * (base[c] - centroid[c]);
      }
      const double fc = evaluate(xc);
      if (fc < std::min(fr, vals[hi])) {
        pts[hi] = xc;
        vals[hi] = fc;
      } else {
        // Shrink toward the best vertex.
        for (std::size_t i = 0; i <= n; ++i) {
          if (i == lo) continue;
          for (std::size_t c = 0; c < n; ++c) {
            pts[i][c] = pts[lo][c] + sigma * (pts[i][c] - pts[lo][c]);
          }
          vals[i] = evaluate(pts[i]);
          if (result.evaluations >= options.maxfun || stop_requested()) {
            return result;
          }
        }
      }
    }
  }
  return result;
}

}  // namespace qq::optim
