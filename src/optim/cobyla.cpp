#include "optim/cobyla.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace qq::optim {

namespace {

/// Solve the n x n system A x = b with partial pivoting. Returns false when
/// A is numerically singular (degenerate simplex).
bool solve_linear(std::vector<double> a, std::vector<double> b,
                  std::size_t n, std::vector<double>& x) {
  std::vector<std::size_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    double pmax = std::abs(a[perm[col] * n + col]);
    for (std::size_t r = col + 1; r < n; ++r) {
      const double v = std::abs(a[perm[r] * n + col]);
      if (v > pmax) {
        pmax = v;
        pivot = r;
      }
    }
    if (pmax < 1e-14) return false;
    std::swap(perm[col], perm[pivot]);
    const double diag = a[perm[col] * n + col];
    for (std::size_t r = col + 1; r < n; ++r) {
      const double factor = a[perm[r] * n + col] / diag;
      if (factor == 0.0) continue;
      for (std::size_t c = col; c < n; ++c) {
        a[perm[r] * n + c] -= factor * a[perm[col] * n + c];
      }
      b[perm[r]] -= factor * b[perm[col]];
    }
  }
  x.assign(n, 0.0);
  for (std::size_t i = n; i-- > 0;) {
    double sum = b[perm[i]];
    for (std::size_t c = i + 1; c < n; ++c) {
      sum -= a[perm[i] * n + c] * x[c];
    }
    x[i] = sum / (a[perm[i] * n + i]);
  }
  return true;
}

struct Simplex {
  std::vector<std::vector<double>> points;  // n+1 vertices
  std::vector<double> values;

  std::size_t dim() const { return points.empty() ? 0 : points[0].size(); }

  std::size_t best_index() const {
    return static_cast<std::size_t>(
        std::min_element(values.begin(), values.end()) - values.begin());
  }
  std::size_t worst_index() const {
    return static_cast<std::size_t>(
        std::max_element(values.begin(), values.end()) - values.begin());
  }
};

}  // namespace

Result cobyla_minimize(const Objective& objective, std::vector<double> x0,
                       const CobylaOptions& options) {
  const std::size_t n = x0.size();
  if (n == 0) {
    throw std::invalid_argument("cobyla_minimize: empty start point");
  }
  if (!(options.rhobeg > 0.0) || !(options.rhoend > 0.0) ||
      options.rhoend > options.rhobeg) {
    throw std::invalid_argument(
        "cobyla_minimize: need 0 < rhoend <= rhobeg");
  }

  Result result;
  result.x = x0;
  result.fx = std::numeric_limits<double>::infinity();

  auto evaluate = [&](const std::vector<double>& x) {
    const double fx = objective(x);
    ++result.evaluations;
    if (fx < result.fx) {
      result.fx = fx;
      result.x = x;
    }
    return fx;
  };
  auto stop_requested = [&options] {
    return options.should_stop && options.should_stop();
  };

  double rho = options.rhobeg;
  Simplex simplex;

  // Build an axis-aligned simplex of edge `radius` around `center`.
  // Consumes n+1 evaluations (the center value may be passed in).
  auto rebuild = [&](const std::vector<double>& center, double radius,
                     double center_value, bool have_center_value) {
    simplex.points.assign(1, center);
    simplex.values.assign(
        1, have_center_value ? center_value : evaluate(center));
    for (std::size_t i = 0; i < n && result.evaluations < options.maxfun &&
                            !stop_requested();
         ++i) {
      std::vector<double> p = center;
      p[i] += radius;
      simplex.points.push_back(p);
      simplex.values.push_back(evaluate(p));
    }
  };

  rebuild(x0, rho, 0.0, false);

  // Rebuilds are expensive (n evaluations); trigger one only when rho has
  // shrunk well below the scale the current simplex was built at, or when
  // the geometry degenerates.
  double simplex_scale = rho;

  std::vector<double> a(n * n), b(n), gradient(n);
  while (result.evaluations < options.maxfun && !stop_requested()) {
    if (simplex.points.size() < n + 1) break;  // budget died mid-rebuild
    const std::size_t best = simplex.best_index();
    const auto& xb = simplex.points[best];
    const double fb = simplex.values[best];

    // Linear interpolation model through the simplex: rows of A are the
    // offsets of the other vertices from the best one.
    std::size_t row = 0;
    for (std::size_t i = 0; i < simplex.points.size(); ++i) {
      if (i == best) continue;
      for (std::size_t c = 0; c < n; ++c) {
        a[row * n + c] = simplex.points[i][c] - xb[c];
      }
      b[row] = simplex.values[i] - fb;
      ++row;
    }
    const bool solvable = solve_linear(a, b, n, gradient);
    const double gnorm =
        solvable ? std::sqrt(std::inner_product(gradient.begin(),
                                                gradient.end(),
                                                gradient.begin(), 0.0))
                 : 0.0;

    if (!solvable || gnorm < 1e-12) {
      // Degenerate geometry or flat model at this resolution: refine rho
      // and refresh the simplex at the new scale.
      if (rho <= options.rhoend) {
        result.converged = true;
        break;
      }
      rho = std::max(0.5 * rho, options.rhoend);
      simplex_scale = rho;
      rebuild(result.x, rho, result.fx, true);
      continue;
    }

    // Trust-region step: steepest descent of length rho on the model.
    std::vector<double> trial = xb;
    for (std::size_t c = 0; c < n; ++c) {
      trial[c] -= rho * gradient[c] / gnorm;
    }
    const double f_trial = evaluate(trial);
    const double predicted = rho * gnorm;  // model reduction
    const double actual = fb - f_trial;

    const std::size_t worst = simplex.worst_index();
    if (actual > 0.1 * predicted) {
      // Successful step: the trial displaces the worst vertex, and a very
      // accurate model earns its radius back (never above rhobeg).
      simplex.points[worst] = std::move(trial);
      simplex.values[worst] = f_trial;
      if (actual > 0.7 * predicted) {
        rho = std::min(1.6 * rho, options.rhobeg);
      }
    } else {
      // Unsuccessful at this resolution. Keep the information if it beats
      // the worst vertex, then lower the resolution. The simplex is kept
      // (a rebuild costs n evaluations) until rho falls far below the
      // scale it was built at.
      if (f_trial < simplex.values[worst]) {
        simplex.points[worst] = std::move(trial);
        simplex.values[worst] = f_trial;
      }
      if (rho <= options.rhoend) {
        result.converged = true;
        break;
      }
      rho = std::max(0.5 * rho, options.rhoend);
      if (rho < 0.25 * simplex_scale) {
        simplex_scale = rho;
        rebuild(result.x, rho, result.fx, true);
      }
    }
  }
  return result;
}

}  // namespace qq::optim
