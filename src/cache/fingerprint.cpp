#include "cache/fingerprint.hpp"

#include <algorithm>
#include <cstring>
#include <numeric>
#include <stdexcept>
#include <utility>

#include "util/rng.hpp"

namespace qq::cache {

namespace {

using graph::Graph;
using graph::NodeId;

std::uint64_t mix(std::uint64_t h, std::uint64_t v) noexcept {
  util::SplitMix64 sm(h ^ (v * 0x9e3779b97f4a7c15ULL));
  return sm.next();
}

/// The refinement/search state shared down the recursion: the graph viewed
/// through adjacency with precomputed weight bits, the global work budget,
/// and the best (lexicographically smallest) canonical leaf found so far.
struct Canonicalizer {
  const Graph& g;
  NodeId n;
  /// CSR adjacency: node u's (neighbor, weight bits) row is
  /// flat[off[u] .. off[u+1]), in no particular order (the refinement hash
  /// is commutative). Flat layout (plus the reused refine() scratch below)
  /// keeps the hot path — fingerprinting on every cache lookup —
  /// allocation-free after construction.
  std::vector<std::size_t> off;
  std::vector<std::pair<NodeId, std::uint64_t>> flat;
  std::size_t budget;
  bool exhausted = false;

  // refine() scratch, reused across the search's refinement calls.
  std::vector<std::uint64_t> sig;
  std::vector<NodeId> order;
  std::vector<int> next;

  bool have_best = false;
  std::vector<CanonicalEdge> best_edges;
  std::vector<NodeId> best_canon_to_orig;

  explicit Canonicalizer(const Graph& graph, std::size_t work_budget)
      : g(graph), n(graph.num_nodes()), budget(work_budget) {
    const std::vector<graph::Edge>& es = g.edges();
    off.assign(static_cast<std::size_t>(n) + 1, 0);
    for (const graph::Edge& e : es) {
      ++off[static_cast<std::size_t>(e.u) + 1];
      ++off[static_cast<std::size_t>(e.v) + 1];
    }
    for (std::size_t i = 1; i <= static_cast<std::size_t>(n); ++i) {
      off[i] += off[i - 1];
    }
    flat.resize(off[static_cast<std::size_t>(n)]);
    // Scatter using off[u] itself as the write cursor; afterwards each
    // off[u] has advanced to its row's end, i.e. the next row's start, so
    // one backward shift restores the offsets without a cursor copy.
    for (const graph::Edge& e : es) {
      const std::uint64_t wb = weight_bits(e.w);
      flat[off[static_cast<std::size_t>(e.u)]++] = {e.v, wb};
      flat[off[static_cast<std::size_t>(e.v)]++] = {e.u, wb};
    }
    for (std::size_t i = static_cast<std::size_t>(n); i > 0; --i) {
      off[i] = off[i - 1];
    }
    off[0] = 0;
    sig.resize(static_cast<std::size_t>(n));
    order.resize(static_cast<std::size_t>(n));
    next.resize(static_cast<std::size_t>(n));
  }

  std::size_t degree(NodeId u) const noexcept {
    return off[static_cast<std::size_t>(u) + 1] -
           off[static_cast<std::size_t>(u)];
  }

  void charge(std::size_t units) {
    if (budget >= units) {
      budget -= units;
    } else {
      budget = 0;
      exhausted = true;
    }
  }

  /// WL color refinement to an equitable partition. Signatures contain only
  /// colors and weight bits — never original ids — so the refinement (and
  /// the cell order it induces) is isomorphism-invariant. Each node's
  /// neighborhood multiset is summarized by a commutative 64-bit hash
  /// (degree-salted sum of mixed (color, weight) pairs): order-independent
  /// without sorting, and a collision can only merge cells — a coarser
  /// partition the individualization search and the exact canonical
  /// edge-list verify remain sound under. Returns the color count of the
  /// stable partition.
  int refine(std::vector<int>& colors) {
    int num_colors = 1 + *std::max_element(colors.begin(), colors.end());
    for (;;) {
      charge(static_cast<std::size_t>(n));
      if (exhausted) return num_colors;
      for (NodeId u = 0; u < n; ++u) {
        const auto su = static_cast<std::size_t>(u);
        std::uint64_t h = static_cast<std::uint64_t>(degree(u));
        for (std::size_t k = off[su]; k < off[su + 1]; ++k) {
          // Inline xorshift-multiply avalanche (cheaper than mix()'s
          // SplitMix64 round; still enough diffusion that the commutative
          // sum keeps distinct multisets apart).
          std::uint64_t z =
              (static_cast<std::uint64_t>(
                   colors[static_cast<std::size_t>(flat[k].first)]) +
               1) * 0x9e3779b97f4a7c15ULL ^
              flat[k].second * 0xff51afd7ed558ccdULL;
          z ^= z >> 33;
          z *= 0xc4ceb9fe1a85ec53ULL;
          z ^= z >> 29;
          h += z;
        }
        sig[su] = h;
      }
      // New color = rank of (old color, signature): old cell boundaries are
      // preserved (a refinement, never a coarsening) and the rank depends
      // only on invariant data.
      std::iota(order.begin(), order.end(), NodeId{0});
      std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
        const auto sa = static_cast<std::size_t>(a);
        const auto sb = static_cast<std::size_t>(b);
        if (colors[sa] != colors[sb]) return colors[sa] < colors[sb];
        return sig[sa] < sig[sb];
      });
      int count = 0;
      for (std::size_t i = 0; i < order.size(); ++i) {
        if (i > 0) {
          const auto prev = static_cast<std::size_t>(order[i - 1]);
          const auto cur = static_cast<std::size_t>(order[i]);
          if (colors[prev] != colors[cur] || sig[prev] != sig[cur]) {
            ++count;
          }
        }
        next[static_cast<std::size_t>(order[i])] = count;
      }
      ++count;
      // Stable when no cell split; a discrete partition is trivially stable
      // too, so skip the confirming pass (the common case for distinct
      // weights, which discretize in one iteration).
      const bool stable = count == num_colors || count == static_cast<int>(n);
      std::swap(colors, next);
      num_colors = count;
      if (stable) return num_colors;
    }
  }

  /// Cheap automorphism check: swapping u and v (same cell) is an
  /// automorphism iff their weight rows agree everywhere outside the pair.
  /// Catches the interchangeable-vertex cells (cliques, stars, independent
  /// sets, equal-weight twins) that would otherwise explode the search.
  bool transposition_automorphism(NodeId u, NodeId v) const {
    if (degree(u) != degree(v)) return false;
    // Compare rows with u<->v substituted; both are sorted by neighbor id,
    // so substitute + resort the small copies (cold path: only runs inside
    // the branch-pruning loop of the search, never on plain lookups).
    auto row = [&](NodeId self, NodeId other) {
      std::vector<std::pair<NodeId, std::uint64_t>> out;
      out.reserve(degree(self));
      const auto ss = static_cast<std::size_t>(self);
      for (std::size_t k = off[ss]; k < off[ss + 1]; ++k) {
        out.emplace_back(flat[k].first == other ? self : flat[k].first,
                         flat[k].second);
      }
      std::sort(out.begin(), out.end());
      return out;
    };
    return row(u, v) == row(v, u);
  }

  /// First (lowest-color) non-singleton cell, or -1 when discrete. The
  /// choice is by color value, which is isomorphism-invariant.
  int target_cell(const std::vector<int>& colors, int num_colors,
                  std::vector<NodeId>& members) const {
    if (num_colors == static_cast<int>(n)) return -1;
    std::vector<int> count(static_cast<std::size_t>(num_colors), 0);
    for (NodeId u = 0; u < n; ++u) {
      ++count[static_cast<std::size_t>(colors[static_cast<std::size_t>(u)])];
    }
    int cell = -1;
    for (int c = 0; c < num_colors; ++c) {
      if (count[static_cast<std::size_t>(c)] > 1) {
        cell = c;
        break;
      }
    }
    members.clear();
    for (NodeId u = 0; u < n; ++u) {
      if (colors[static_cast<std::size_t>(u)] == cell) members.push_back(u);
    }
    return cell;
  }

  /// Individualize `v`: v keeps its cell's color, every other vertex at or
  /// above that color shifts up — v becomes a singleton placed first in its
  /// former cell, preserving the partition order.
  static void individualize(std::vector<int>& colors, NodeId v) {
    const int cv = colors[static_cast<std::size_t>(v)];
    for (std::size_t w = 0; w < colors.size(); ++w) {
      if (static_cast<NodeId>(w) != v && colors[w] >= cv) ++colors[w];
    }
  }

  /// Record the discrete partition as a candidate leaf; keep the
  /// lexicographically smallest canonical edge list.
  void record_leaf(const std::vector<int>& colors) {
    std::vector<NodeId> canon_to_orig(static_cast<std::size_t>(n));
    for (NodeId u = 0; u < n; ++u) {
      canon_to_orig[static_cast<std::size_t>(
          colors[static_cast<std::size_t>(u)])] = u;
    }
    // Counting sort by canonical source: bucket offsets from the lower
    // endpoint's color, then a tiny sort per bucket by the other endpoint —
    // O(m + n) instead of a comparison sort over all m edges.
    const std::size_t m = g.num_edges();
    std::vector<std::size_t> bucket(static_cast<std::size_t>(n) + 1, 0);
    for (const graph::Edge& e : g.edges()) {
      const int cu = colors[static_cast<std::size_t>(e.u)];
      const int cv = colors[static_cast<std::size_t>(e.v)];
      ++bucket[static_cast<std::size_t>(std::min(cu, cv)) + 1];
    }
    for (std::size_t c = 1; c <= static_cast<std::size_t>(n); ++c) {
      bucket[c] += bucket[c - 1];
    }
    std::vector<CanonicalEdge> edges(m);
    // Scatter with bucket[c] as the write cursor: afterwards bucket[c] is
    // bucket c's end, and its start is bucket[c - 1] (0 for the first), so
    // the per-bucket sorts need no separate cursor array.
    for (const graph::Edge& e : g.edges()) {
      NodeId cu = static_cast<NodeId>(colors[static_cast<std::size_t>(e.u)]);
      NodeId cv = static_cast<NodeId>(colors[static_cast<std::size_t>(e.v)]);
      if (cu > cv) std::swap(cu, cv);
      edges[bucket[static_cast<std::size_t>(cu)]++] =
          CanonicalEdge{cu, cv, weight_bits(e.w)};
    }
    for (std::size_t c = 0; c < static_cast<std::size_t>(n); ++c) {
      const std::size_t begin = c == 0 ? 0 : bucket[c - 1];
      std::sort(edges.begin() + static_cast<std::ptrdiff_t>(begin),
                edges.begin() + static_cast<std::ptrdiff_t>(bucket[c]),
                [](const CanonicalEdge& a, const CanonicalEdge& b) {
                  return a.v < b.v;
                });
    }
    const auto less = [](const std::vector<CanonicalEdge>& a,
                         const std::vector<CanonicalEdge>& b) {
      for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i].u != b[i].u) return a[i].u < b[i].u;
        if (a[i].v != b[i].v) return a[i].v < b[i].v;
        if (a[i].w_bits != b[i].w_bits) return a[i].w_bits < b[i].w_bits;
      }
      return false;
    };
    if (!have_best || less(edges, best_edges)) {
      have_best = true;
      best_edges = std::move(edges);
      best_canon_to_orig = std::move(canon_to_orig);
    }
  }

  /// Individualization-refinement search. `colors` is already equitable
  /// with `num_colors` cells. On budget exhaustion only the first branch of
  /// each cell is taken (and once a leaf exists, none), completing
  /// deterministically instead of canonically.
  void search(std::vector<int> colors, int num_colors) {
    std::vector<NodeId> cell;
    const int target = target_cell(colors, num_colors, cell);
    if (target < 0) {
      record_leaf(colors);
      return;
    }
    if (exhausted) {
      // Deterministic completion: order the stuck cells by original id.
      std::vector<NodeId> order(static_cast<std::size_t>(n));
      std::iota(order.begin(), order.end(), NodeId{0});
      std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
        const auto sa = static_cast<std::size_t>(a);
        const auto sb = static_cast<std::size_t>(b);
        return colors[sa] != colors[sb] ? colors[sa] < colors[sb] : a < b;
      });
      std::vector<int> complete(static_cast<std::size_t>(n));
      for (std::size_t i = 0; i < order.size(); ++i) {
        complete[static_cast<std::size_t>(order[i])] = static_cast<int>(i);
      }
      record_leaf(complete);
      return;
    }
    std::vector<NodeId> tried;
    for (const NodeId v : cell) {
      if (exhausted && have_best) return;
      bool pruned = false;
      for (const NodeId u : tried) {
        charge(degree(u) + degree(v));
        if (transposition_automorphism(u, v)) {
          // The u- and v-branches are isomorphic images of each other:
          // they yield the same leaf set, so v's can be skipped without
          // losing the lexicographic minimum.
          pruned = true;
          break;
        }
      }
      if (pruned) continue;
      tried.push_back(v);
      std::vector<int> child = colors;
      individualize(child, v);
      const int child_colors = refine(child);
      search(std::move(child), child_colors);
      if (exhausted && have_best) return;
    }
  }
};

}  // namespace

std::uint64_t weight_bits(double w) noexcept {
  if (w == 0.0) w = 0.0;  // normalize -0.0
  std::uint64_t bits = 0;
  std::memcpy(&bits, &w, sizeof(bits));
  return bits;
}

Fingerprint fingerprint_graph(const graph::Graph& g,
                              const FingerprintOptions& options) {
  Fingerprint fp;
  fp.num_nodes = g.num_nodes();
  const NodeId n = g.num_nodes();
  if (n > 0) {
    Canonicalizer canon(g, options.work_budget);
    // Initial colors: (degree, incident-weight multiset) via one refinement
    // pass from the uniform coloring — the WL signal the search refines.
    std::vector<int> colors(static_cast<std::size_t>(n), 0);
    const int num_colors = canon.refine(colors);
    canon.search(std::move(colors), num_colors);
    fp.canonical = !canon.exhausted;
    fp.canon_to_orig = std::move(canon.best_canon_to_orig);
    fp.edges = std::move(canon.best_edges);
  }

  std::uint64_t key = mix(0x9ae16a3b2f90404fULL,
                          static_cast<std::uint64_t>(fp.num_nodes));
  std::uint64_t digest = mix(0xc3a5c85c97cb3127ULL,
                             static_cast<std::uint64_t>(fp.edges.size()));
  for (const CanonicalEdge& e : fp.edges) {
    const std::uint64_t uv = (static_cast<std::uint64_t>(e.u) << 32) |
                             static_cast<std::uint64_t>(
                                 static_cast<std::uint32_t>(e.v));
    // One mix per edge per hash; endpoint and weight bits are folded first
    // (multiplication spreads w_bits so uv ^ spread(w) stays injective
    // enough for the 64-bit mixes, and the digest uses a different fold so
    // the two hashes stay independent).
    key = mix(key, uv ^ (e.w_bits * 0x9e3779b97f4a7c15ULL));
    digest = mix(digest, uv + e.w_bits);
  }
  fp.key = key;
  fp.digest = digest;
  return fp;
}

bool same_canonical_graph(const Fingerprint& a,
                          const Fingerprint& b) noexcept {
  return a.num_nodes == b.num_nodes && a.digest == b.digest &&
         a.edges == b.edges;
}

maxcut::Assignment to_canonical(const Fingerprint& fp,
                                const maxcut::Assignment& original) {
  if (original.size() != fp.canon_to_orig.size()) {
    throw std::invalid_argument(
        "cache::to_canonical: assignment size does not match fingerprint");
  }
  maxcut::Assignment out(original.size());
  for (std::size_t c = 0; c < fp.canon_to_orig.size(); ++c) {
    out[c] = original[static_cast<std::size_t>(fp.canon_to_orig[c])];
  }
  return out;
}

maxcut::Assignment from_canonical(const Fingerprint& fp,
                                  const maxcut::Assignment& canonical) {
  if (canonical.size() != fp.canon_to_orig.size()) {
    throw std::invalid_argument(
        "cache::from_canonical: assignment size does not match fingerprint");
  }
  maxcut::Assignment out(canonical.size());
  for (std::size_t c = 0; c < fp.canon_to_orig.size(); ++c) {
    out[static_cast<std::size_t>(fp.canon_to_orig[c])] = canonical[c];
  }
  return out;
}

}  // namespace qq::cache
