#pragma once
// Fleet-wide memoization of leaf solves (ROADMAP item 4): a concurrent,
// sharded, bounded cache keyed on the CANONICAL fingerprint of the
// sub-graph (fingerprint.hpp) combined with the solver spec and — by
// default — the request seed, so a hot subgraph is solved once per fleet,
// not once per request, and cache-on results stay bit-for-bit identical to
// cache-off (the fuzz equality oracle's contract).
//
//   lookup     hash(fingerprint.key, digest, solver_key[, seed]) -> shard
//              bucket -> exact identity check (node count, full canonical
//              edge list, solver key, seed): equal 64-bit hashes are never
//              trusted, so a hash collision costs a `collisions` counter
//              tick and a miss, never a wrong answer.
//   hit        the stored canonical assignment is permuted onto the
//              requester's labeling via the requester's own fingerprint,
//              wall_seconds is overwritten with the hit latency, and a
//              `cache_hit=1` metric is appended; evaluations/solve counts
//              and the cut value are the fill's, untouched.
//   miss       exactly-once fill: the first arrival publishes an in-flight
//              entry and solves; late arrivals wait on the shard's CondVar
//              (coalesced counter) instead of re-solving. A failed fill
//              erases the in-flight entry and wakes the waiters, the first
//              of which becomes the next filler.
//   eviction   GreedyDual cost-aware: entry priority = shard clock +
//              cost_weight * fill_cost_seconds, refreshed on hit; the
//              minimum-priority READY entry is evicted and the clock jumps
//              to its priority (cost_weight = 0 degenerates to LRU).
//              In-flight entries are pinned.
//   safety     results produced under a truncating budget (request
//              eval/time budget, armed context eval budget, or a context
//              that stopped mid-fill) are returned but never inserted — a
//              truncated report must not poison budget-less requests.
//
// Warm starts on miss (CachePolicy::warm_start, default OFF because they
// change optimizer trajectories) consult the WarmStartAdvisor for a
// transferred (gamma, beta) schedule and hand it to the backend via
// SolveRequest::initial_parameters.

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "cache/fingerprint.hpp"
#include "cache/warm_start.hpp"
#include "solver/solver.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace qq::cache {

enum class CacheMode : std::uint8_t {
  kOff = 0,   ///< bypass entirely: no lookup, no insert
  kOn,        ///< lookup; miss fills and inserts
  kReadOnly,  ///< lookup only; every miss solves without inserting or
              ///< waiting on in-flight fills
};

constexpr const char* cache_mode_name(CacheMode mode) noexcept {
  switch (mode) {
    case CacheMode::kOff: return "off";
    case CacheMode::kOn: return "on";
    case CacheMode::kReadOnly: return "readonly";
  }
  return "?";
}

struct CacheOptions {
  /// Shard count, rounded up to a power of two. More shards, less
  /// contention; capacity is split evenly across them.
  std::size_t shards = 8;
  /// Total entry capacity across all shards (>= shard count enforced).
  std::size_t capacity = 4096;
  /// GreedyDual cost weight: how strongly expensive fills resist eviction.
  /// 0 = plain LRU.
  double cost_weight = 1.0;
  /// When true (default) the request seed is part of the key, making
  /// cache-on bit-for-bit identical to cache-off. False shares one entry
  /// across seeds — more sharing, reproducibility traded away.
  bool seed_sensitive = true;
  WarmStartOptions warm_start;
  FingerprintOptions fingerprint;
};

/// Per-call cache behavior, carried by the caller (service request options,
/// Qaoa2Options) rather than the cache so one cache serves many policies.
struct CachePolicy {
  CacheMode mode = CacheMode::kOn;
  /// Seed COBYLA on a miss with a transferred schedule from the advisor.
  bool warm_start = false;
  /// Workload class for per-class hit/miss attribution (register_class);
  /// kNoClass records only the totals.
  int class_id = -1;
};

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t inserts = 0;
  std::uint64_t evictions = 0;
  /// Concurrent misses on one key that waited for the in-flight fill
  /// instead of re-solving.
  std::uint64_t coalesced = 0;
  /// 64-bit key collisions caught by the exact identity check.
  std::uint64_t collisions = 0;
  /// Misses that ran with a transferred warm-start schedule.
  std::uint64_t warm_starts = 0;
  /// Fills whose report was served but not inserted (truncating budgets).
  std::uint64_t uncacheable = 0;
  /// Gauges.
  std::uint64_t entries = 0;
  std::uint64_t in_flight = 0;
};

struct ClassCacheStats {
  std::string name;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t coalesced = 0;
};

class SolveCache {
 public:
  static constexpr int kNoClass = -1;
  static constexpr int kMaxClasses = 16;

  explicit SolveCache(CacheOptions options = {});
  ~SolveCache();

  SolveCache(const SolveCache&) = delete;
  SolveCache& operator=(const SolveCache&) = delete;

  /// Solve `request` through the cache. `solver_key` identifies the solver
  /// configuration (registry spec string); two solvers sharing a key MUST
  /// be interchangeable. Trivial graphs (< 2 nodes or no edges) and
  /// kOff bypass the cache entirely. Cancellation: waiting on an in-flight
  /// fill polls request.context and rethrows its CancelledError.
  solver::SolveReport solve_through(const solver::Solver& s,
                                    const solver::SolveRequest& request,
                                    std::string_view solver_key,
                                    const CachePolicy& policy = {});

  /// Register a workload class for per-class attribution. At most
  /// kMaxClasses; further registrations return kNoClass (totals only).
  int register_class(std::string name);

  CacheStats stats() const;
  std::vector<ClassCacheStats> class_stats() const;

  WarmStartAdvisor& advisor() noexcept { return advisor_; }
  const WarmStartAdvisor& advisor() const noexcept { return advisor_; }
  const CacheOptions& options() const noexcept { return options_; }

  /// Drop every READY entry (in-flight fills complete and then insert into
  /// the emptied shards). Counters are preserved.
  void clear();

 private:
  struct Entry;
  struct Shard;

  struct ClassCounters {
    std::atomic<std::uint64_t> hits{0};
    std::atomic<std::uint64_t> misses{0};
    std::atomic<std::uint64_t> coalesced{0};
  };

  Shard& shard_for(std::uint64_t hash) const noexcept;
  void bump_class(int class_id,
                  std::atomic<std::uint64_t> ClassCounters::*counter);

  CacheOptions options_;
  std::size_t shard_mask_ = 0;
  std::size_t per_shard_capacity_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
  WarmStartAdvisor advisor_;

  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> inserts_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::uint64_t> coalesced_{0};
  std::atomic<std::uint64_t> collisions_{0};
  std::atomic<std::uint64_t> warm_starts_{0};
  std::atomic<std::uint64_t> uncacheable_{0};

  mutable util::Mutex class_mutex_;
  std::array<std::string, kMaxClasses> class_names_ QQ_GUARDED_BY(class_mutex_);
  std::array<ClassCounters, kMaxClasses> class_counters_;
  std::atomic<int> num_classes_{0};
};

}  // namespace qq::cache
