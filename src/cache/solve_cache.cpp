#include "cache/solve_cache.hpp"

#include <algorithm>
#include <chrono>
#include <unordered_map>
#include <utility>

#include "ml/features.hpp"
#include "util/rng.hpp"

namespace qq::cache {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

std::uint64_t fnv1a(std::string_view s) noexcept {
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

std::uint64_t mix(std::uint64_t h, std::uint64_t v) noexcept {
  util::SplitMix64 sm(h ^ (v * 0x9e3779b97f4a7c15ULL));
  return sm.next();
}

std::size_t round_up_pow2(std::size_t v) noexcept {
  std::size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

/// One cached (or in-flight) solve. `ready`, `report`, `fill_cost_seconds`
/// and `priority` are guarded by the OWNING shard's mutex — a per-instance
/// relationship the annotations cannot express (same situation as the
/// service's ClassState), enforced by keeping every access inside a
/// MutexLock(shard.mutex) scope in this file.
struct SolveCache::Entry {
  // Immutable identity, set before publication.
  std::string solver_key;
  std::uint64_t seed = 0;  ///< compared only when seed_sensitive
  std::uint64_t digest = 0;
  graph::NodeId num_nodes = 0;
  std::vector<CanonicalEdge> edges;

  // Shard-guarded state.
  bool ready = false;
  solver::SolveReport report;  ///< assignment in CANONICAL labels
  double fill_cost_seconds = 0.0;
  double priority = 0.0;
  /// Shard use-sequence at the last insert/hit: breaks equal-priority
  /// eviction ties by recency, so cost_weight = 0 is EXACT LRU instead of
  /// scan-order arbitrary (priorities all equal the clock until the first
  /// eviction advances it).
  std::uint64_t last_use = 0;
};

struct SolveCache::Shard {
  util::Mutex mutex;
  util::CondVar cv;
  std::unordered_map<std::uint64_t, std::vector<std::shared_ptr<Entry>>>
      buckets QQ_GUARDED_BY(mutex);
  std::size_t ready_count QQ_GUARDED_BY(mutex) = 0;
  std::size_t filling_count QQ_GUARDED_BY(mutex) = 0;
  /// GreedyDual clock: jumps to the priority of each evicted entry.
  double clock QQ_GUARDED_BY(mutex) = 0.0;
  /// Monotone per-touch counter feeding Entry::last_use.
  std::uint64_t use_seq QQ_GUARDED_BY(mutex) = 0;
};

SolveCache::SolveCache(CacheOptions options)
    : options_(options), advisor_(options.warm_start) {
  const std::size_t shards = round_up_pow2(std::max<std::size_t>(
      1, options_.shards));
  shard_mask_ = shards - 1;
  per_shard_capacity_ =
      std::max<std::size_t>(1, options_.capacity / shards);
  shards_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

SolveCache::~SolveCache() = default;

SolveCache::Shard& SolveCache::shard_for(std::uint64_t hash) const noexcept {
  // The low bits feed the bucket map; shard selection uses the high ones.
  return *shards_[static_cast<std::size_t>(hash >> 32) & shard_mask_];
}

void SolveCache::bump_class(
    int class_id, std::atomic<std::uint64_t> ClassCounters::*counter) {
  if (class_id < 0 ||
      class_id >= num_classes_.load(std::memory_order_acquire)) {
    return;
  }
  (class_counters_[static_cast<std::size_t>(class_id)].*counter)
      .fetch_add(1, std::memory_order_relaxed);
}

int SolveCache::register_class(std::string name) {
  util::MutexLock lock(class_mutex_);
  const int id = num_classes_.load(std::memory_order_relaxed);
  if (id >= kMaxClasses) return kNoClass;
  class_names_[static_cast<std::size_t>(id)] = std::move(name);
  num_classes_.store(id + 1, std::memory_order_release);
  return id;
}

solver::SolveReport SolveCache::solve_through(const solver::Solver& s,
                                              const solver::SolveRequest&
                                                  request,
                                              std::string_view solver_key,
                                              const CachePolicy& policy) {
  // kOff, null graphs, and trivial graphs (the Solver base guard answers
  // those without touching a backend) bypass the cache: fingerprinting
  // them would cost more than the solve.
  if (policy.mode == CacheMode::kOff || request.graph == nullptr ||
      request.graph->num_nodes() < 2 || request.graph->num_edges() == 0) {
    return s.solve(request);
  }
  const graph::Graph& g = *request.graph;
  if (request.context != nullptr) request.context->throw_if_stopped();

  const Clock::time_point lookup_start = Clock::now();
  const Fingerprint fp = fingerprint_graph(g, options_.fingerprint);
  std::uint64_t hash = mix(fp.key, fp.digest);
  hash = mix(hash, fnv1a(solver_key));
  if (options_.seed_sensitive) hash = mix(hash, request.seed);
  Shard& shard = shard_for(hash);

  const auto matches = [&](const Entry& e) {
    return e.num_nodes == fp.num_nodes && e.digest == fp.digest &&
           e.solver_key == solver_key &&
           (!options_.seed_sensitive || e.seed == request.seed) &&
           e.edges == fp.edges;
  };

  std::shared_ptr<Entry> mine;  ///< in-flight entry this call must fill
  bool counted_coalesce = false;
  bool first_look = true;
  {
    util::MutexLock lock(shard.mutex);
    for (;;) {
      std::shared_ptr<Entry> found;
      const auto bucket = shard.buckets.find(hash);
      if (bucket != shard.buckets.end()) {
        bool mismatch = false;
        for (const std::shared_ptr<Entry>& e : bucket->second) {
          if (matches(*e)) {
            found = e;
            break;
          }
          mismatch = true;
        }
        // Counted on the first pass only — coalesced waiters re-search.
        if (found == nullptr && mismatch && first_look) {
          collisions_.fetch_add(1, std::memory_order_relaxed);
        }
      }
      first_look = false;
      if (found != nullptr && found->ready) {
        // HIT: refresh the GreedyDual priority and hand back the stored
        // report with the assignment permuted onto the requester's labels.
        found->priority =
            shard.clock + options_.cost_weight * found->fill_cost_seconds;
        found->last_use = ++shard.use_seq;
        solver::SolveReport report = found->report;
        lock.unlock();
        report.cut.assignment = from_canonical(fp, report.cut.assignment);
        report.wall_seconds = seconds_since(lookup_start);
        report.metrics.push_back({"cache_hit", 1.0});
        hits_.fetch_add(1, std::memory_order_relaxed);
        bump_class(policy.class_id, &ClassCounters::hits);
        if (counted_coalesce) {
          bump_class(policy.class_id, &ClassCounters::coalesced);
        }
        return report;
      }
      if (found != nullptr) {
        // In-flight fill by someone else.
        if (policy.mode == CacheMode::kReadOnly) break;  // miss, don't wait
        if (!counted_coalesce) {
          counted_coalesce = true;
          coalesced_.fetch_add(1, std::memory_order_relaxed);
        }
        shard.cv.wait_for(lock, std::chrono::milliseconds(1));
        if (request.context != nullptr) request.context->throw_if_stopped();
        continue;  // re-search: ready, still filling, or erased (failed)
      }
      // True miss.
      if (policy.mode == CacheMode::kReadOnly) break;
      mine = std::make_shared<Entry>();
      mine->solver_key = std::string(solver_key);
      mine->seed = request.seed;
      mine->digest = fp.digest;
      mine->num_nodes = fp.num_nodes;
      mine->edges = fp.edges;
      shard.buckets[hash].push_back(mine);
      ++shard.filling_count;
      break;
    }
  }

  misses_.fetch_add(1, std::memory_order_relaxed);
  bump_class(policy.class_id, &ClassCounters::misses);

  // Warm start: transferred (gamma, beta) schedule from the advisor when
  // the backend declares a parameter dimension and the policy opts in.
  solver::SolveRequest fill_request = request;
  std::vector<double> warm;
  if (policy.warm_start) {
    const int dim = s.warm_start_dimension();
    if (dim > 0 && dim % 2 == 0) {
      warm = advisor_.predict(ml::graph_features(g), dim / 2);
      if (static_cast<int>(warm.size()) == dim) {
        fill_request.initial_parameters = &warm;
        warm_starts_.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }

  const Clock::time_point fill_start = Clock::now();
  solver::SolveReport report;
  try {
    report = s.solve(fill_request);
  } catch (...) {
    if (mine != nullptr) {
      util::MutexLock lock(shard.mutex);
      auto bucket = shard.buckets.find(hash);
      if (bucket != shard.buckets.end()) {
        auto& vec = bucket->second;
        vec.erase(std::remove(vec.begin(), vec.end(), mine), vec.end());
        if (vec.empty()) shard.buckets.erase(bucket);
      }
      --shard.filling_count;
      shard.cv.notify_all();
    }
    throw;
  }
  const double fill_cost = seconds_since(fill_start);

  // A result produced under a truncating budget must not poison
  // budget-less requests: serve it, never insert it. Deadline contexts
  // that never tripped are fine — the result is untruncated.
  const bool cacheable =
      !request.eval_budget.has_value() &&
      !request.time_budget_seconds.has_value() &&
      (request.context == nullptr ||
       (!request.context->eval_budget_armed() &&
        !request.context->stopped()));

  if (mine == nullptr) return report;  // readonly miss: nothing published

  if (!cacheable) {
    uncacheable_.fetch_add(1, std::memory_order_relaxed);
    util::MutexLock lock(shard.mutex);
    auto bucket = shard.buckets.find(hash);
    if (bucket != shard.buckets.end()) {
      auto& vec = bucket->second;
      vec.erase(std::remove(vec.begin(), vec.end(), mine), vec.end());
      if (vec.empty()) shard.buckets.erase(bucket);
    }
    --shard.filling_count;
    shard.cv.notify_all();
    return report;
  }

  // Teach the advisor from every clean fill that carried a schedule.
  if (!report.parameters.empty() && report.parameters.size() % 2 == 0) {
    advisor_.record(ml::graph_features(g),
                    static_cast<int>(report.parameters.size() / 2),
                    report.parameters, report.cut.value);
  }

  {
    util::MutexLock lock(shard.mutex);
    mine->report = report;
    mine->report.cut.assignment = to_canonical(fp, report.cut.assignment);
    mine->fill_cost_seconds = fill_cost;
    mine->priority = shard.clock + options_.cost_weight * fill_cost;
    mine->last_use = ++shard.use_seq;
    mine->ready = true;
    --shard.filling_count;
    ++shard.ready_count;
    inserts_.fetch_add(1, std::memory_order_relaxed);
    while (shard.ready_count > per_shard_capacity_) {
      // GreedyDual eviction: drop the minimum-priority ready entry and
      // advance the clock to it. Linear scan — shards hold a few hundred
      // entries at the default capacity.
      std::uint64_t victim_hash = 0;
      std::shared_ptr<Entry> victim;
      for (const auto& [bhash, vec] : shard.buckets) {
        for (const std::shared_ptr<Entry>& e : vec) {
          if (!e->ready) continue;
          if (victim == nullptr || e->priority < victim->priority ||
              (e->priority == victim->priority &&
               e->last_use < victim->last_use)) {
            victim = e;
            victim_hash = bhash;
          }
        }
      }
      if (victim == nullptr) break;
      shard.clock = victim->priority;
      auto bucket = shard.buckets.find(victim_hash);
      auto& vec = bucket->second;
      vec.erase(std::remove(vec.begin(), vec.end(), victim), vec.end());
      if (vec.empty()) shard.buckets.erase(bucket);
      --shard.ready_count;
      evictions_.fetch_add(1, std::memory_order_relaxed);
    }
    shard.cv.notify_all();
  }
  return report;
}

CacheStats SolveCache::stats() const {
  CacheStats out;
  out.hits = hits_.load(std::memory_order_relaxed);
  out.misses = misses_.load(std::memory_order_relaxed);
  out.inserts = inserts_.load(std::memory_order_relaxed);
  out.evictions = evictions_.load(std::memory_order_relaxed);
  out.coalesced = coalesced_.load(std::memory_order_relaxed);
  out.collisions = collisions_.load(std::memory_order_relaxed);
  out.warm_starts = warm_starts_.load(std::memory_order_relaxed);
  out.uncacheable = uncacheable_.load(std::memory_order_relaxed);
  for (const std::unique_ptr<Shard>& shard : shards_) {
    util::MutexLock lock(shard->mutex);
    out.entries += shard->ready_count;
    out.in_flight += shard->filling_count;
  }
  return out;
}

std::vector<ClassCacheStats> SolveCache::class_stats() const {
  const int n = num_classes_.load(std::memory_order_acquire);
  std::vector<ClassCacheStats> out;
  out.reserve(static_cast<std::size_t>(n));
  util::MutexLock lock(class_mutex_);
  for (int i = 0; i < n; ++i) {
    const auto& counters = class_counters_[static_cast<std::size_t>(i)];
    ClassCacheStats row;
    row.name = class_names_[static_cast<std::size_t>(i)];
    row.hits = counters.hits.load(std::memory_order_relaxed);
    row.misses = counters.misses.load(std::memory_order_relaxed);
    row.coalesced = counters.coalesced.load(std::memory_order_relaxed);
    out.push_back(std::move(row));
  }
  return out;
}

void SolveCache::clear() {
  for (const std::unique_ptr<Shard>& shard : shards_) {
    util::MutexLock lock(shard->mutex);
    for (auto it = shard->buckets.begin(); it != shard->buckets.end();) {
      auto& vec = it->second;
      vec.erase(std::remove_if(vec.begin(), vec.end(),
                               [](const std::shared_ptr<Entry>& e) {
                                 return e->ready;
                               }),
                vec.end());
      it = vec.empty() ? shard->buckets.erase(it) : std::next(it);
    }
    shard->ready_count = 0;
  }
}

}  // namespace qq::cache
