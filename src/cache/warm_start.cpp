#include "cache/warm_start.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>

#include "ml/knn.hpp"
#include "ml/knowledge_base.hpp"
#include "qaoa/interp.hpp"

namespace qq::cache {

namespace {

/// Linear resampling of one half-schedule (gammas or betas) onto `target`
/// points, preserving the endpoints of the ramp.
std::vector<double> resample(const std::vector<double>& xs,
                             std::size_t target) {
  std::vector<double> out(target, 0.0);
  if (xs.empty() || target == 0) return out;
  if (xs.size() == 1) {
    std::fill(out.begin(), out.end(), xs[0]);
    return out;
  }
  for (std::size_t i = 0; i < target; ++i) {
    const double t = target == 1
                         ? 0.0
                         : static_cast<double>(i) *
                               static_cast<double>(xs.size() - 1) /
                               static_cast<double>(target - 1);
    const auto lo = static_cast<std::size_t>(t);
    const std::size_t hi = std::min(lo + 1, xs.size() - 1);
    const double frac = t - static_cast<double>(lo);
    out[i] = (1.0 - frac) * xs[lo] + frac * xs[hi];
  }
  return out;
}

}  // namespace

std::vector<double> transfer_parameters(const std::vector<double>& parameters,
                                        int target_layers) {
  if (target_layers <= 0 || parameters.empty() ||
      parameters.size() % 2 != 0) {
    return {};
  }
  const auto p = parameters.size() / 2;
  std::vector<double> gammas(parameters.begin(),
                             parameters.begin() + static_cast<long>(p));
  std::vector<double> betas(parameters.begin() + static_cast<long>(p),
                            parameters.end());
  const auto target = static_cast<std::size_t>(target_layers);
  if (p < target) {
    while (gammas.size() < target) gammas = qaoa::interp_schedule(gammas);
    while (betas.size() < target) betas = qaoa::interp_schedule(betas);
  } else if (p > target) {
    gammas = resample(gammas, target);
    betas = resample(betas, target);
  }
  std::vector<double> out;
  out.reserve(2 * target);
  out.insert(out.end(), gammas.begin(), gammas.end());
  out.insert(out.end(), betas.begin(), betas.end());
  return out;
}

WarmStartAdvisor::WarmStartAdvisor(WarmStartOptions options)
    : options_(options) {
  if (options_.capacity == 0) options_.capacity = 1;
  if (options_.k < 1) options_.k = 1;
}

void WarmStartAdvisor::record(
    const std::array<double, ml::kNumFeatures>& features, int layers,
    const std::vector<double>& parameters, double value) {
  if (layers <= 0 ||
      parameters.size() != static_cast<std::size_t>(2 * layers)) {
    return;
  }
  Observation obs;
  obs.features = features;
  obs.layers = layers;
  obs.parameters = parameters;
  obs.value = value;
  util::MutexLock lock(mutex_);
  if (ring_.size() < options_.capacity) {
    ring_.push_back(std::move(obs));
  } else {
    ring_[next_ % options_.capacity] = std::move(obs);
  }
  ++next_;
}

std::vector<double> WarmStartAdvisor::predict(
    const std::array<double, ml::kNumFeatures>& features,
    int target_layers) const {
  if (target_layers <= 0) return {};
  util::MutexLock lock(mutex_);
  if (ring_.empty()) return {};
  // Prefer the stored layer count closest to the target (exact match
  // first): kNN averages require one shared parameter dimension.
  int best_layers = 0;
  int best_gap = std::numeric_limits<int>::max();
  for (const Observation& obs : ring_) {
    const int gap = std::abs(obs.layers - target_layers);
    if (gap < best_gap ||
        (gap == best_gap && obs.layers > best_layers)) {
      best_gap = gap;
      best_layers = obs.layers;
    }
  }
  ml::ParameterKnn knn;
  for (const Observation& obs : ring_) {
    if (obs.layers != best_layers) continue;
    knn.add(std::vector<double>(obs.features.begin(), obs.features.end()),
            obs.parameters);
  }
  if (knn.size() == 0) return {};
  const std::vector<double> predicted = knn.predict(
      std::vector<double>(features.begin(), features.end()), options_.k);
  return transfer_parameters(predicted, target_layers);
}

std::size_t WarmStartAdvisor::size() const {
  util::MutexLock lock(mutex_);
  return ring_.size();
}

void WarmStartAdvisor::import_knowledge(const ml::KnowledgeBase& kb) {
  for (const ml::KbRecord& rec : kb.records()) {
    record(rec.features, rec.layers, rec.parameters, rec.qaoa_value);
  }
}

void WarmStartAdvisor::export_knowledge(ml::KnowledgeBase& kb) const {
  util::MutexLock lock(mutex_);
  for (const Observation& obs : ring_) {
    ml::KbRecord rec;
    rec.features = obs.features;
    rec.layers = obs.layers;
    rec.parameters = obs.parameters;
    rec.qaoa_value = obs.value;
    kb.add(std::move(rec));
  }
}

}  // namespace qq::cache
