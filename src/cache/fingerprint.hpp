#pragma once
// Canonical graph fingerprinting for the fleet-wide solve cache (ROADMAP
// item 4): an isomorphism-invariant key so two requests whose sub-graphs
// differ only by vertex labeling share one cache entry.
//
// The key is derived from a CANONICAL RELABELING: iterated WL-style color
// refinement over (degree, incident-weight multiset) signals, completed by
// an individualization-refinement search when refinement alone leaves
// symmetric vertices indistinguishable (cycles, cliques, stars). The search
// prunes sibling branches whose swap is a provable automorphism (equal
// weight rows) and is bounded by a work budget; on exhaustion the labeling
// is completed deterministically from the original ids and the fingerprint
// is marked non-`canonical` — still SOUND (lookups verify the full
// canonical edge list, so a false hit is impossible), it merely stops
// guaranteeing that every isomorphic relabeling maps to the same key.
//
// Alongside the structural key a weight `digest` (hashed over the weight
// bit patterns in canonical order, -0.0 normalized) makes near-miss pairs —
// one weight flipped, one edge moved — hash apart, and the stored
// canon_to_orig permutation maps a cached assignment back onto the
// requester's labeling.

#include <cstdint>
#include <vector>

#include "maxcut/cut.hpp"
#include "qgraph/graph.hpp"

namespace qq::cache {

struct FingerprintOptions {
  /// Refinement work budget (roughly node visits) of the
  /// individualization-refinement search. Exhaustion degrades to a
  /// deterministic-but-label-dependent completion (`canonical = false`),
  /// never to an error. The default comfortably canonicalizes every
  /// device-sized leaf (<= ~32 nodes) exactly.
  std::size_t work_budget = 200000;
};

/// One edge of the canonical form: endpoints in canonical labels (u < v),
/// weight as a normalized bit pattern (exact comparison, no tolerance).
struct CanonicalEdge {
  graph::NodeId u = 0;
  graph::NodeId v = 0;
  std::uint64_t w_bits = 0;

  friend bool operator==(const CanonicalEdge& a,
                         const CanonicalEdge& b) noexcept {
    return a.u == b.u && a.v == b.v && a.w_bits == b.w_bits;
  }
};

struct Fingerprint {
  /// Hash of (node count, canonical edge list with weights).
  std::uint64_t key = 0;
  /// Independent hash over the weight bit patterns in canonical order — the
  /// collision check rides 128 combined bits, not 64.
  std::uint64_t digest = 0;
  graph::NodeId num_nodes = 0;
  /// True when the individualization-refinement search completed within
  /// budget: every isomorphic relabeling of the graph produces this exact
  /// canonical form. False = label-dependent completion (sound, see above).
  bool canonical = false;
  /// canon_to_orig[c] = the original vertex at canonical position c.
  std::vector<graph::NodeId> canon_to_orig;
  /// Canonical edge list, sorted by (u, v). The cache compares this exactly
  /// on every lookup, so equal (key, digest) can never alias two different
  /// canonical graphs.
  std::vector<CanonicalEdge> edges;
};

/// Normalized weight bit pattern (-0.0 -> 0.0) — the exact-equality domain
/// every fingerprint comparison lives in.
std::uint64_t weight_bits(double w) noexcept;

/// Compute the canonical fingerprint of `g`.
Fingerprint fingerprint_graph(const graph::Graph& g,
                              const FingerprintOptions& options = {});

/// True when two fingerprints denote the SAME canonical graph (exact node
/// count + edge-list + digest equality; hash equality is necessary but not
/// trusted).
bool same_canonical_graph(const Fingerprint& a, const Fingerprint& b) noexcept;

/// Map an assignment given in the fingerprinted graph's original labeling
/// into canonical labeling (what the cache stores)...
maxcut::Assignment to_canonical(const Fingerprint& fp,
                                const maxcut::Assignment& original);

/// ... and back: a canonical assignment onto this fingerprint's original
/// labeling (what a hit hands the requester).
maxcut::Assignment from_canonical(const Fingerprint& fp,
                                  const maxcut::Assignment& canonical);

}  // namespace qq::cache
