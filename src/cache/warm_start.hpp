#pragma once
// Warm-start transfer for cache MISSES (ROADMAP item 4): the cache can't
// hand back a solved report, but it has seen structurally similar graphs —
// so it hands the backend a transferred (gamma, beta) schedule instead of a
// cold COBYLA start.
//
// The advisor is a bounded ring of (ml::graph_features, layers, optimized
// parameters, value) observations recorded on every cache fill whose report
// carried a parameter vector. On a miss it picks the stored layer count
// closest to the requested one, runs an inverse-distance-weighted kNN over
// the standardized features (ml::ParameterKnn), and reshapes the predicted
// schedule to the target depth with qaoa::interp_schedule (grow) or linear
// resampling (shrink) — the INTERP rule the paper's §5 outlook points at.
//
// Warm starts change optimizer trajectories, so they are OFF by default and
// excluded from the bit-equality oracles; bench_cache and bench_warmstart
// measure the evaluations-to-target win they buy.

#include <array>
#include <cstddef>
#include <vector>

#include "ml/features.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace qq::ml {
class KnowledgeBase;
}

namespace qq::cache {

struct WarmStartOptions {
  /// Ring capacity: oldest observations are overwritten.
  std::size_t capacity = 1024;
  /// Neighbours consulted per prediction.
  int k = 3;
};

class WarmStartAdvisor {
 public:
  explicit WarmStartAdvisor(WarmStartOptions options = {});

  /// Record an optimized schedule: `parameters` is [gamma..., beta...] of
  /// size 2 * layers. Ignored when layers <= 0 or the size disagrees.
  void record(const std::array<double, ml::kNumFeatures>& features,
              int layers, const std::vector<double>& parameters,
              double value);

  /// Predict a [gamma..., beta...] schedule of size 2 * target_layers for a
  /// graph with the given features. Returns empty when nothing applicable
  /// has been recorded (never throws for an empty store).
  std::vector<double> predict(
      const std::array<double, ml::kNumFeatures>& features,
      int target_layers) const;

  std::size_t size() const;

  /// Seed the ring from a persisted ml::KnowledgeBase (qaoa_value becomes
  /// the stored value) and export the ring into one — the bridge between
  /// the in-memory fleet cache and the on-disk dataset.
  void import_knowledge(const ml::KnowledgeBase& kb);
  void export_knowledge(ml::KnowledgeBase& kb) const;

 private:
  struct Observation {
    std::array<double, ml::kNumFeatures> features{};
    int layers = 0;
    std::vector<double> parameters;
    double value = 0.0;
  };

  WarmStartOptions options_;
  mutable util::Mutex mutex_;
  std::vector<Observation> ring_ QQ_GUARDED_BY(mutex_);
  std::size_t next_ QQ_GUARDED_BY(mutex_) = 0;
};

/// Reshape a [gamma..., beta...] schedule of size 2*p onto 2*target layers:
/// repeated qaoa::interp_schedule when growing, linear resampling when
/// shrinking, identity when equal. Exposed for tests and benches.
std::vector<double> transfer_parameters(const std::vector<double>& parameters,
                                        int target_layers);

}  // namespace qq::cache
