#pragma once
// QAOA driver for MaxCut (paper §3.2).
//
// The hybrid loop: prepare |psi_p(beta, gamma)> on the simulator, evaluate
// F_p = <psi|H_C|psi>, and let a classical optimizer (COBYLA, with the
// paper's rhobeg knob) update the angles. Solution extraction follows the
// paper: "the bit string corresponding to the highest amplitude ... is
// chosen" (top_k = 1), with the §5 refinement — scanning the k most
// probable bit strings for the best cut — available via top_k > 1.

#include <cstdint>
#include <vector>

#include "maxcut/cut.hpp"
#include "qcircuit/ansatz.hpp"
#include "qgraph/graph.hpp"
#include "qsim/statevector.hpp"
#include "util/cancellation.hpp"

namespace qq::qaoa {

enum class OptimizerKind { kCobyla, kNelderMead };
enum class InitKind {
  kLinearRamp,  ///< adiabatic-inspired ramp (gamma up, beta down)
  kRandom,      ///< small random angles
};

struct QaoaOptions {
  int layers = 3;  ///< p in Eq. 2
  /// COBYLA initial step ("initial change to the variables", the paper's
  /// grid dimension alongside p).
  double rhobeg = 0.5;
  /// Objective-evaluation budget. 0 selects the paper's schedule, linear in
  /// p and clamped to [30, 100]: 30 + 14 * (p - 3).
  int max_iterations = 0;
  /// Shots per circuit execution (paper: 4096). Used when
  /// shot_based_objective is set and for the sampling diagnostics.
  int shots = 4096;
  /// Estimate F_p from `shots` samples instead of the exact expectation —
  /// the noisy objective a real device (or shot-limited Aer run) gives the
  /// optimizer.
  bool shot_based_objective = false;
  /// Number of highest-probability bit strings scanned for the final
  /// answer; 1 reproduces the paper's default behaviour.
  int top_k = 1;
  /// Independent optimizer restarts from diversified starting angles
  /// (restart r starts from restart_initial_parameters(options, r)). With
  /// the exact objective the restarts run in LOCKSTEP: every optimizer
  /// iteration's states are evaluated together by one BatchedStateVector
  /// sweep over the shared cut table, so R restarts cost far less than R
  /// sequential solves. Each restart's trajectory is bit-for-bit the one a
  /// sequential restarts=1 run with the same start would produce; the best
  /// final expectation wins (ties -> lowest restart index). The default 1
  /// is the unbatched single-run path. Shot-based objectives fall back to a
  /// sequential loop (each restart owns a live RNG stream that cannot be
  /// batched in lockstep); setting the QQ_QAOA_SEQUENTIAL_RESTARTS
  /// environment variable forces that same fallback for exact objectives
  /// too (benchmark A/B baseline, lockstep bisection).
  int restarts = 1;
  /// Lockstep batching only pays once each objective evaluation is heavy
  /// enough to amortize the per-iteration barrier handoff (one wakeup per
  /// restart thread per optimizer step). Below this qubit count multi-
  /// restart solves use the sequential replay instead — results are
  /// bit-identical either way (enforced by tests), only wall clock moves.
  /// 0 forces lockstep at any size (tests, microbenches). The default is
  /// the measured single-core crossover on the reference container.
  int lockstep_min_qubits = 12;
  OptimizerKind optimizer = OptimizerKind::kCobyla;
  InitKind init = InitKind::kLinearRamp;
  /// Explicit initial [gamma_1..gamma_p, beta_1..beta_p]; overrides `init`
  /// when its size equals 2 * layers (used by INTERP and the kNN warm
  /// start).
  std::vector<double> initial_parameters;
  /// Cooperative stop state of the owning request (service layer). Viewed,
  /// not owned; may be null. The optimizer polls it per iteration and
  /// returns its best-so-far when it trips, so a multi-second COBYLA loop
  /// observes cancellation/deadlines mid-solve.
  const util::RequestContext* context = nullptr;
  std::uint64_t seed = 0;
};

struct QaoaResult {
  /// Chosen bit string and its cut value.
  maxcut::CutResult cut;
  /// F_p at the optimized angles (exact expectation).
  double expectation = 0.0;
  /// Optimized [gamma_1..gamma_p, beta_1..beta_p].
  std::vector<double> parameters;
  int evaluations = 0;
  int layers = 0;
  /// Best cut among `shots` sampled bit strings at the optimum — the
  /// hardware-realistic diagnostic. Only meaningful when options.shots > 0;
  /// it is seeded from the first sample, so all-negative cut landscapes
  /// report their true (negative) best.
  double best_sampled_value = 0.0;
};

/// Paper iteration schedule (§4: "linearly dependent on p and ranges from
/// 30 to 100 steps" over p in {3..8}).
int paper_iteration_schedule(int layers);

/// Starting angles for restart `restart` (0-based). Restart 0 is exactly
/// the single-run start (explicit initial_parameters override, ramp, or
/// seeded random per options.init); restarts >= 1 draw small random angles
/// from a restart-salted stream, so a fixed (seed, restart) pair is fully
/// deterministic. Exposed so tests and sequential fallbacks can replay the
/// exact batched trajectories.
std::vector<double> restart_initial_parameters(const QaoaOptions& options,
                                               int restart);

/// Precomputes the cut table for one graph so that repeated optimizations
/// (grid searches, restarts) share it.
class QaoaSolver {
 public:
  /// Reusable per-optimize evaluation scratch: the state vector plus the
  /// sampling buffers. One workspace serves every objective evaluation of
  /// an optimize() run, so the hot loop is allocation-free in steady state
  /// (the old path constructed a fresh 2^n x 16 B vector, CDF, and shot
  /// buffer per COBYLA iteration).
  struct EvalWorkspace {
    explicit EvalWorkspace(int num_qubits) : sv(num_qubits) {}
    sim::StateVector sv;
    std::vector<double> cdf;
    std::vector<sim::BasisState> samples;
  };

  explicit QaoaSolver(const graph::Graph& g);

  const graph::Graph& graph() const noexcept { return *graph_; }
  const std::vector<double>& cut_table() const noexcept { return cut_table_; }
  /// Exact optimum (max over the cut table) — free by-product used by tests
  /// and approximation-ratio reporting.
  double exact_optimum() const noexcept { return exact_optimum_; }

  /// Prepare |psi_p(beta, gamma)> via the diagonal fast path.
  sim::StateVector state(const circuit::QaoaAngles& angles) const;

  /// Workspace variant: reset `sv` to |+>^n in place and apply the layers.
  /// `sv` is reconstructed only if its qubit count does not match the
  /// graph's.
  void prepare_state(const circuit::QaoaAngles& angles,
                     sim::StateVector& sv) const;

  /// Exact <H_C> at the given angles.
  double expectation(const circuit::QaoaAngles& angles) const;
  double expectation(const circuit::QaoaAngles& angles,
                     EvalWorkspace& workspace) const;

  /// Shot-based estimate of <H_C>.
  double sampled_expectation(const circuit::QaoaAngles& angles, int shots,
                             util::Rng& rng) const;
  double sampled_expectation(const circuit::QaoaAngles& angles, int shots,
                             util::Rng& rng, EvalWorkspace& workspace) const;

  /// Full hybrid optimization loop.
  QaoaResult optimize(const QaoaOptions& options) const;

 private:
  QaoaResult optimize_single(const QaoaOptions& options) const;
  QaoaResult optimize_batched(const QaoaOptions& options) const;
  /// Final-state extraction shared by every optimize path: exact
  /// expectation, top-k scan, and the sampled diagnostic.
  void extract_result(const QaoaOptions& options, EvalWorkspace& workspace,
                      util::Rng& shot_rng, QaoaResult& result) const;

  const graph::Graph* graph_;
  std::vector<double> cut_table_;
  double exact_optimum_ = 0.0;
};

/// One-shot convenience wrapper.
QaoaResult solve_qaoa(const graph::Graph& g, const QaoaOptions& options = {});

}  // namespace qq::qaoa
