#pragma once
// Layer-wise INTERP parameter strategy (Zhou, Wang, Choi, Pichler, Lukin —
// PRX 10, 021067, cited by the paper as ref. 42): optimize the p-layer
// ansatz, linearly interpolate the optimized (gamma, beta) schedule onto
// p+1 layers as the next initialization, and repeat up to the target
// depth. This is the classical-side improvement the paper's §5 outlook
// points at ("predict initial parameters for subsequent QAOA simulations
// ... improve the number of iterations while preserving the accuracy").

#include "qaoa/qaoa.hpp"

namespace qq::qaoa {

struct InterpResult {
  QaoaResult final;  ///< result at the target depth
  /// Expectation after each stage (index 0 = p = 1).
  std::vector<double> stage_expectations;
  int total_evaluations = 0;
};

/// Grow the ansatz one layer at a time from p = 1 to options.layers.
/// Each stage consumes the per-stage budget implied by `options`
/// (max_iterations, or the paper schedule for the stage's depth).
InterpResult optimize_interp(const QaoaSolver& solver,
                             const QaoaOptions& options);

/// INTERP's interpolation rule: produce the (p+1)-point schedule from a
/// p-point one:  x'_i = ((i-1)/p) x_{i-1} + ((p-i+1)/p) x_i, 1-indexed,
/// with x_0 = x_{p+1} = 0. Exposed for tests.
std::vector<double> interp_schedule(const std::vector<double>& schedule);

}  // namespace qq::qaoa
