#pragma once
// Per-basis-state cut-value table: entry s holds cut(s) for the bit-string
// partition s. This is the diagonal of H_C (Eq. 1), enabling
//   * cost layers as one elementwise phase sweep,
//   * <H_C> as one weighted reduction,
// which is what makes the grid searches of the paper's Fig. 3 tractable on
// a single box.

#include <vector>

#include "qgraph/graph.hpp"

namespace qq::qaoa {

/// Dense table of size 2^n (n = g.num_nodes()); throws beyond the
/// simulator's qubit cap. Parallelized over the global thread pool.
std::vector<double> build_cut_table(const graph::Graph& g);

}  // namespace qq::qaoa
