#pragma once
// Per-basis-state cut-value table: entry s holds cut(s) for the bit-string
// partition s. This is the diagonal of H_C (Eq. 1), enabling
//   * cost layers as one elementwise phase sweep,
//   * <H_C> as one weighted reduction,
// which is what makes the grid searches of the paper's Fig. 3 tractable on
// a single box.

#include <cstdint>
#include <vector>

#include "qgraph/graph.hpp"

namespace qq::qaoa {

/// Dense table of size 2^n (n = g.num_nodes()); throws beyond the
/// simulator's qubit cap. Parallelized over the global thread pool.
std::vector<double> build_cut_table(const graph::Graph& g);

/// Process-wide count of build_cut_table invocations. The table costs
/// |E| * 2^n work, so rebuilding it per restart or per evaluation is the
/// classic hidden quadratic; tests assert the delta across a solve is
/// exactly one build per graph.
std::uint64_t cut_table_builds() noexcept;

}  // namespace qq::qaoa
