#include "qaoa/cost_table.hpp"

#include <atomic>
#include <stdexcept>

#include "qsim/statevector.hpp"
#include "util/thread_pool.hpp"

namespace qq::qaoa {

namespace {
std::atomic<std::uint64_t> g_cut_table_builds{0};
}  // namespace

std::uint64_t cut_table_builds() noexcept {
  return g_cut_table_builds.load(std::memory_order_relaxed);
}

std::vector<double> build_cut_table(const graph::Graph& g) {
  g_cut_table_builds.fetch_add(1, std::memory_order_relaxed);
  const int n = g.num_nodes();
  if (n > sim::kMaxQubits) {
    throw std::invalid_argument("build_cut_table: graph exceeds qubit cap");
  }
  const std::size_t size = std::size_t{1} << n;
  std::vector<double> table(size, 0.0);
  const auto& edges = g.edges();
  util::parallel_for_chunks(
      0, size,
      [&table, &edges](std::size_t lo, std::size_t hi) {
        // Edge-outer order keeps the per-edge bit positions in registers;
        // the table is swept |E| times but stays sequential (prefetchable).
        for (const graph::Edge& e : edges) {
          const int bu = e.u;
          const int bv = e.v;
          const double w = e.w;
          for (std::size_t s = lo; s < hi; ++s) {
            table[s] += w * (((s >> bu) ^ (s >> bv)) & 1ULL);
          }
        }
      },
      1 << 14);
  return table;
}

}  // namespace qq::qaoa
