#include "qaoa/interp.hpp"

#include <stdexcept>

namespace qq::qaoa {

std::vector<double> interp_schedule(const std::vector<double>& schedule) {
  const std::size_t p = schedule.size();
  if (p == 0) {
    throw std::invalid_argument("interp_schedule: empty schedule");
  }
  std::vector<double> out(p + 1);
  for (std::size_t i = 1; i <= p + 1; ++i) {
    const double left = i >= 2 ? schedule[i - 2] : 0.0;
    const double right = i <= p ? schedule[i - 1] : 0.0;
    out[i - 1] = (static_cast<double>(i - 1) / static_cast<double>(p)) * left +
                 (static_cast<double>(p - i + 1) / static_cast<double>(p)) *
                     right;
  }
  return out;
}

InterpResult optimize_interp(const QaoaSolver& solver,
                             const QaoaOptions& options) {
  if (options.layers < 1) {
    throw std::invalid_argument("optimize_interp: layers must be >= 1");
  }
  InterpResult result;
  std::vector<double> warm;  // empty at p = 1: use the configured init
  QaoaResult stage_result;
  for (int p = 1; p <= options.layers; ++p) {
    QaoaOptions stage = options;
    stage.layers = p;
    stage.initial_parameters = warm;
    stage.seed = options.seed + static_cast<std::uint64_t>(p) * 0x9e37ULL;
    stage_result = solver.optimize(stage);
    result.total_evaluations += stage_result.evaluations;
    result.stage_expectations.push_back(stage_result.expectation);
    if (p < options.layers) {
      const circuit::QaoaAngles angles =
          circuit::unpack_angles(stage_result.parameters);
      circuit::QaoaAngles next;
      next.gammas = interp_schedule(angles.gammas);
      next.betas = interp_schedule(angles.betas);
      warm = circuit::pack_angles(next);
    }
  }
  result.final = std::move(stage_result);
  return result;
}

}  // namespace qq::qaoa
