#include "qaoa/rqaoa.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "maxcut/exact.hpp"
#include "qsim/measure.hpp"

namespace qq::qaoa {

namespace {

struct Constraint {
  graph::NodeId eliminated;  ///< original node id forced by the constraint
  graph::NodeId kept;        ///< original node id it follows
  int sign;                  ///< +1: same side, -1: opposite sides
};

}  // namespace

RqaoaResult solve_rqaoa(const graph::Graph& g, const RqaoaOptions& options) {
  if (options.cutoff < 2) {
    throw std::invalid_argument("solve_rqaoa: cutoff must be >= 2");
  }
  RqaoaResult result;

  graph::Graph cur = g;
  std::vector<graph::NodeId> to_orig(static_cast<std::size_t>(g.num_nodes()));
  for (graph::NodeId u = 0; u < g.num_nodes(); ++u) {
    to_orig[static_cast<std::size_t>(u)] = u;
  }
  std::vector<Constraint> constraints;

  while (cur.num_nodes() > options.cutoff && cur.num_edges() > 0) {
    QaoaSolver solver(cur);
    QaoaOptions qopts = options.qaoa;
    qopts.seed = options.qaoa.seed + static_cast<std::uint64_t>(result.rounds);
    const QaoaResult round = solver.optimize(qopts);
    result.total_evaluations += round.evaluations;

    const sim::StateVector sv =
        solver.state(circuit::unpack_angles(round.parameters));

    // Strongest edge correlation decides the elimination. Seeded from -inf
    // so the first edge always wins on its own merits — |m| >= 0 made the
    // old `-1.0` sentinel unreachable, but the pattern is exactly the
    // argmax family qq_lint bans (PR 6 hit it twice where values COULD go
    // below the sentinel).
    double best_abs = -std::numeric_limits<double>::infinity();
    graph::Edge best_edge{0, 0, 0.0};
    double best_m = 0.0;
    for (const graph::Edge& e : cur.edges()) {
      const double m = sim::expectation_zz(sv, e.u, e.v);
      if (std::abs(m) > best_abs) {
        best_abs = std::abs(m);
        best_edge = e;
        best_m = m;
      }
    }
    const int sign = best_m >= 0.0 ? 1 : -1;
    const graph::NodeId keep = best_edge.u;
    const graph::NodeId drop = best_edge.v;
    constraints.push_back(
        Constraint{to_orig[static_cast<std::size_t>(drop)],
                   to_orig[static_cast<std::size_t>(keep)], sign});

    // Contract `drop` into `keep` with signed weight folding:
    //   w_{jk}(1 - Z_j Z_k)/2 with Z_j = s Z_i  ->  s*w_{jk} edge (i, k)
    //   plus a constant that the final re-evaluation on the original graph
    //   absorbs.
    const graph::NodeId n_next = cur.num_nodes() - 1;
    std::vector<graph::NodeId> old_to_new(
        static_cast<std::size_t>(cur.num_nodes()));
    std::vector<graph::NodeId> next_to_orig(static_cast<std::size_t>(n_next));
    graph::NodeId next_id = 0;
    for (graph::NodeId u = 0; u < cur.num_nodes(); ++u) {
      if (u == drop) continue;
      old_to_new[static_cast<std::size_t>(u)] = next_id;
      next_to_orig[static_cast<std::size_t>(next_id)] =
          to_orig[static_cast<std::size_t>(u)];
      ++next_id;
    }
    graph::Graph contracted(n_next);
    for (const graph::Edge& e : cur.edges()) {
      if (e.u == drop || e.v == drop) {
        const graph::NodeId other = e.u == drop ? e.v : e.u;
        if (other == keep) continue;  // constraint edge: constant term
        const graph::NodeId a = old_to_new[static_cast<std::size_t>(keep)];
        const graph::NodeId b = old_to_new[static_cast<std::size_t>(other)];
        if (a != b) contracted.add_edge(a, b, sign * e.w);
      } else {
        contracted.add_edge(old_to_new[static_cast<std::size_t>(e.u)],
                            old_to_new[static_cast<std::size_t>(e.v)], e.w);
      }
    }
    cur = std::move(contracted);
    to_orig = std::move(next_to_orig);
    ++result.rounds;
  }

  // Exact finish on the residual instance.
  maxcut::Assignment residual;
  if (cur.num_edges() == 0) {
    residual.assign(static_cast<std::size_t>(cur.num_nodes()), 0);
  } else {
    residual = maxcut::solve_exact(cur).assignment;
  }

  // Propagate: residual nodes first, then constraints in reverse order.
  maxcut::Assignment assignment(static_cast<std::size_t>(g.num_nodes()), 0);
  for (graph::NodeId u = 0; u < cur.num_nodes(); ++u) {
    assignment[static_cast<std::size_t>(
        to_orig[static_cast<std::size_t>(u)])] =
        residual[static_cast<std::size_t>(u)];
  }
  for (auto it = constraints.rbegin(); it != constraints.rend(); ++it) {
    const std::uint8_t kept_side =
        assignment[static_cast<std::size_t>(it->kept)];
    assignment[static_cast<std::size_t>(it->eliminated)] =
        it->sign > 0 ? kept_side : static_cast<std::uint8_t>(kept_side ^ 1U);
  }

  result.cut.assignment = std::move(assignment);
  result.cut.value = maxcut::cut_value(g, result.cut.assignment);
  return result;
}

}  // namespace qq::qaoa
