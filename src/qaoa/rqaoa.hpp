#pragma once
// Recursive QAOA (RQAOA, Bravyi et al., PRL 125, 260505) — the non-local
// QAOA variant the paper singles out (§3.2) as numerically outperforming
// standard QAOA and combinable with QAOA^2. Provided as the library's
// extension solver.
//
// Each round runs QAOA, measures the edge correlations M_uv = <Z_u Z_v> at
// the optimum, imposes the strongest one as the constraint
// Z_v = sign(M_uv) Z_u, and eliminates variable v by graph contraction
// (signed weights). Once the graph is small enough it is solved exactly and
// the constraints are unwound.

#include "maxcut/cut.hpp"
#include "qaoa/qaoa.hpp"

namespace qq::qaoa {

struct RqaoaOptions {
  QaoaOptions qaoa;   ///< per-round QAOA configuration
  int cutoff = 8;     ///< stop recursion at this node count; solve exactly
};

struct RqaoaResult {
  maxcut::CutResult cut;  ///< assignment on the ORIGINAL nodes + its value
  int rounds = 0;         ///< eliminations performed
  int total_evaluations = 0;
};

RqaoaResult solve_rqaoa(const graph::Graph& g, const RqaoaOptions& options = {});

}  // namespace qq::qaoa
