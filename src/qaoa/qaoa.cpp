#include "qaoa/qaoa.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "optim/cobyla.hpp"
#include "optim/nelder_mead.hpp"
#include "qaoa/cost_table.hpp"
#include "qsim/measure.hpp"

namespace qq::qaoa {

int paper_iteration_schedule(int layers) {
  return std::clamp(30 + 14 * (layers - 3), 30, 100);
}

QaoaSolver::QaoaSolver(const graph::Graph& g)
    : graph_(&g), cut_table_(build_cut_table(g)) {
  exact_optimum_ =
      cut_table_.empty()
          ? 0.0
          : *std::max_element(cut_table_.begin(), cut_table_.end());
}

sim::StateVector QaoaSolver::state(const circuit::QaoaAngles& angles) const {
  sim::StateVector sv(graph_->num_nodes());
  prepare_state(angles, sv);
  return sv;
}

void QaoaSolver::prepare_state(const circuit::QaoaAngles& angles,
                               sim::StateVector& sv) const {
  if (angles.gammas.size() != angles.betas.size()) {
    throw std::invalid_argument("QaoaSolver::state: layer mismatch");
  }
  const int n = graph_->num_nodes();
  if (sv.num_qubits() != n) sv = sim::StateVector(n);
  sv.reset_to_plus();
  for (std::size_t layer = 0; layer < angles.layers(); ++layer) {
    // Cost layer e^{-i gamma H_C}: one diagonal sweep over the cut table.
    sv.apply_diagonal_phase(cut_table_, angles.gammas[layer]);
    // Mixer e^{-i beta H_M} = Prod_q RX_q(2 beta), fused into one
    // cache-blocked pass instead of n separate sweeps.
    sv.apply_rx_layer(2.0 * angles.betas[layer]);
  }
}

double QaoaSolver::expectation(const circuit::QaoaAngles& angles) const {
  EvalWorkspace workspace(graph_->num_nodes());
  return expectation(angles, workspace);
}

double QaoaSolver::expectation(const circuit::QaoaAngles& angles,
                               EvalWorkspace& workspace) const {
  prepare_state(angles, workspace.sv);
  return sim::expectation_diagonal(workspace.sv, cut_table_);
}

double QaoaSolver::sampled_expectation(const circuit::QaoaAngles& angles,
                                       int shots, util::Rng& rng) const {
  EvalWorkspace workspace(graph_->num_nodes());
  return sampled_expectation(angles, shots, rng, workspace);
}

double QaoaSolver::sampled_expectation(const circuit::QaoaAngles& angles,
                                       int shots, util::Rng& rng,
                                       EvalWorkspace& workspace) const {
  if (shots < 1) {
    throw std::invalid_argument("sampled_expectation: shots must be >= 1");
  }
  prepare_state(angles, workspace.sv);
  sim::sample_counts_into(workspace.sv, shots, rng, workspace.cdf,
                          workspace.samples);
  double sum = 0.0;
  for (const sim::BasisState s : workspace.samples) sum += cut_table_[s];
  return sum / static_cast<double>(shots);
}

std::vector<double> QaoaSolver::initial_parameters(
    const QaoaOptions& options) const {
  const int p = options.layers;
  if (!options.initial_parameters.empty()) {
    if (options.initial_parameters.size() !=
        static_cast<std::size_t>(2 * p)) {
      throw std::invalid_argument(
          "QaoaOptions::initial_parameters must have size 2 * layers");
    }
    return options.initial_parameters;
  }
  circuit::QaoaAngles angles;
  angles.gammas.resize(static_cast<std::size_t>(p));
  angles.betas.resize(static_cast<std::size_t>(p));
  if (options.init == InitKind::kLinearRamp) {
    // Adiabatic-style ramp: the cost angle grows with the layer index while
    // the mixer angle decays — the standard structure-aware start.
    for (int l = 0; l < p; ++l) {
      const double t = (static_cast<double>(l) + 0.5) / static_cast<double>(p);
      angles.gammas[static_cast<std::size_t>(l)] = 0.7 * t;
      angles.betas[static_cast<std::size_t>(l)] = 0.7 * (1.0 - t);
    }
  } else {
    util::Rng rng(options.seed ^ 0xa5a5a5a5ULL);
    for (int l = 0; l < p; ++l) {
      angles.gammas[static_cast<std::size_t>(l)] = util::uniform(rng, 0.0, 0.6);
      angles.betas[static_cast<std::size_t>(l)] = util::uniform(rng, 0.0, 0.6);
    }
  }
  return circuit::pack_angles(angles);
}

QaoaResult QaoaSolver::optimize(const QaoaOptions& options) const {
  if (options.layers < 1) {
    throw std::invalid_argument("QaoaSolver::optimize: layers must be >= 1");
  }
  if (options.top_k < 1) {
    throw std::invalid_argument("QaoaSolver::optimize: top_k must be >= 1");
  }
  const int budget = options.max_iterations > 0
                         ? options.max_iterations
                         : paper_iteration_schedule(options.layers);

  util::Rng shot_rng(options.seed ^ 0x7357b1e55ed5eedULL);
  // One workspace serves every objective evaluation AND the final
  // extraction below: the 2^n state vector (and sampling scratch) is
  // allocated once per optimize() instead of once per COBYLA iteration.
  EvalWorkspace workspace(graph_->num_nodes());
  // Objective to MINIMIZE: -F_p (exact or shot-estimated).
  const auto objective = [this, &options, &shot_rng,
                          &workspace](const std::vector<double>& params) {
    const circuit::QaoaAngles angles = circuit::unpack_angles(params);
    return options.shot_based_objective
               ? -sampled_expectation(angles, options.shots, shot_rng,
                                      workspace)
               : -expectation(angles, workspace);
  };

  const std::vector<double> x0 = initial_parameters(options);
  // optim is dependency-free, so the request context enters as a plain
  // stop predicate; null context keeps the hook empty (bit-for-bit
  // identical optimization to the pre-context code).
  std::function<bool()> should_stop;
  if (options.context != nullptr) {
    const util::RequestContext* ctx = options.context;
    should_stop = [ctx] { return ctx->stopped(); };
  }
  optim::Result opt;
  if (options.optimizer == OptimizerKind::kCobyla) {
    optim::CobylaOptions copts;
    copts.rhobeg = options.rhobeg;
    copts.rhoend = 1e-4;
    copts.maxfun = budget;
    copts.should_stop = std::move(should_stop);
    opt = optim::cobyla_minimize(objective, x0, copts);
  } else {
    optim::NelderMeadOptions nopts;
    nopts.step = options.rhobeg;
    nopts.maxfun = budget;
    nopts.should_stop = std::move(should_stop);
    opt = optim::nelder_mead_minimize(objective, x0, nopts);
  }

  QaoaResult result;
  result.parameters = opt.x;
  result.evaluations = opt.evaluations;
  result.layers = options.layers;

  const circuit::QaoaAngles best_angles = circuit::unpack_angles(opt.x);
  prepare_state(best_angles, workspace.sv);
  const sim::StateVector& sv = workspace.sv;
  result.expectation = sim::expectation_diagonal(sv, cut_table_);

  // Solution extraction. top_k == 1 is the paper's highest-amplitude rule;
  // larger k scans the k most probable strings for the best cut (§5).
  const auto top = sim::top_k_states(sv, options.top_k);
  sim::BasisState chosen = top.front().first;
  double chosen_value = cut_table_[chosen];
  for (const auto& [state_idx, prob] : top) {
    (void)prob;
    if (cut_table_[state_idx] > chosen_value) {
      chosen = state_idx;
      chosen_value = cut_table_[state_idx];
    }
  }
  result.cut.assignment =
      maxcut::assignment_from_bits(chosen, graph_->num_nodes());
  result.cut.value = chosen_value;

  if (options.shots > 0) {
    sim::sample_counts_into(sv, options.shots, shot_rng, workspace.cdf,
                            workspace.samples);
    const auto& samples = workspace.samples;
    // Seed from the first sample, NOT 0.0: graphs whose every cut value is
    // negative (signed merge graphs, negative-weight edges) must report the
    // true best sample rather than a phantom 0.
    double best_sampled = cut_table_[samples.front()];
    for (const sim::BasisState s : samples) {
      best_sampled = std::max(best_sampled, cut_table_[s]);
    }
    result.best_sampled_value = best_sampled;
  }
  return result;
}

QaoaResult solve_qaoa(const graph::Graph& g, const QaoaOptions& options) {
  return QaoaSolver(g).optimize(options);
}

}  // namespace qq::qaoa
