#include "qaoa/qaoa.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <exception>
#include <memory>
#include <stdexcept>
#include <thread>

#include "optim/cobyla.hpp"
#include "optim/nelder_mead.hpp"
#include "qaoa/cost_table.hpp"
#include "qsim/batched.hpp"
#include "qsim/measure.hpp"
#include "util/mutex.hpp"

namespace qq::qaoa {

int paper_iteration_schedule(int layers) {
  return std::clamp(30 + 14 * (layers - 3), 30, 100);
}

std::vector<double> restart_initial_parameters(const QaoaOptions& options,
                                               int restart) {
  if (restart < 0) {
    throw std::invalid_argument(
        "restart_initial_parameters: restart must be >= 0");
  }
  const int p = options.layers;
  if (restart == 0) {
    // Restart 0 is the single-run start, so restarts=1 reproduces the
    // pre-restart optimizer trajectory bit for bit.
    if (!options.initial_parameters.empty()) {
      if (options.initial_parameters.size() !=
          static_cast<std::size_t>(2 * p)) {
        throw std::invalid_argument(
            "QaoaOptions::initial_parameters must have size 2 * layers");
      }
      return options.initial_parameters;
    }
    if (options.init == InitKind::kLinearRamp) {
      circuit::QaoaAngles angles;
      angles.gammas.resize(static_cast<std::size_t>(p));
      angles.betas.resize(static_cast<std::size_t>(p));
      // Adiabatic-style ramp: the cost angle grows with the layer index
      // while the mixer angle decays — the standard structure-aware start.
      for (int l = 0; l < p; ++l) {
        const double t =
            (static_cast<double>(l) + 0.5) / static_cast<double>(p);
        angles.gammas[static_cast<std::size_t>(l)] = 0.7 * t;
        angles.betas[static_cast<std::size_t>(l)] = 0.7 * (1.0 - t);
      }
      return circuit::pack_angles(angles);
    }
  }
  // Restart r >= 1 (and restart 0 of kRandom, whose salt term vanishes):
  // small random angles from a (seed, restart)-keyed stream, so every
  // restart is individually replayable.
  util::Rng rng((options.seed +
                 0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(restart)) ^
                0xa5a5a5a5ULL);
  circuit::QaoaAngles angles;
  angles.gammas.resize(static_cast<std::size_t>(p));
  angles.betas.resize(static_cast<std::size_t>(p));
  for (int l = 0; l < p; ++l) {
    angles.gammas[static_cast<std::size_t>(l)] = util::uniform(rng, 0.0, 0.6);
    angles.betas[static_cast<std::size_t>(l)] = util::uniform(rng, 0.0, 0.6);
  }
  return circuit::pack_angles(angles);
}

QaoaSolver::QaoaSolver(const graph::Graph& g)
    : graph_(&g), cut_table_(build_cut_table(g)) {
  exact_optimum_ =
      cut_table_.empty()
          ? 0.0
          : *std::max_element(cut_table_.begin(), cut_table_.end());
}

sim::StateVector QaoaSolver::state(const circuit::QaoaAngles& angles) const {
  sim::StateVector sv(graph_->num_nodes());
  prepare_state(angles, sv);
  return sv;
}

void QaoaSolver::prepare_state(const circuit::QaoaAngles& angles,
                               sim::StateVector& sv) const {
  if (angles.gammas.size() != angles.betas.size()) {
    throw std::invalid_argument("QaoaSolver::state: layer mismatch");
  }
  const int n = graph_->num_nodes();
  if (sv.num_qubits() != n) sv = sim::StateVector(n);
  sv.reset_to_plus();
  for (std::size_t layer = 0; layer < angles.layers(); ++layer) {
    // Cost layer e^{-i gamma H_C}: one diagonal sweep over the cut table.
    sv.apply_diagonal_phase(cut_table_, angles.gammas[layer]);
    // Mixer e^{-i beta H_M} = Prod_q RX_q(2 beta), fused into one
    // cache-blocked pass instead of n separate sweeps.
    sv.apply_rx_layer(2.0 * angles.betas[layer]);
  }
}

double QaoaSolver::expectation(const circuit::QaoaAngles& angles) const {
  EvalWorkspace workspace(graph_->num_nodes());
  return expectation(angles, workspace);
}

double QaoaSolver::expectation(const circuit::QaoaAngles& angles,
                               EvalWorkspace& workspace) const {
  prepare_state(angles, workspace.sv);
  return sim::expectation_diagonal(workspace.sv, cut_table_);
}

double QaoaSolver::sampled_expectation(const circuit::QaoaAngles& angles,
                                       int shots, util::Rng& rng) const {
  EvalWorkspace workspace(graph_->num_nodes());
  return sampled_expectation(angles, shots, rng, workspace);
}

double QaoaSolver::sampled_expectation(const circuit::QaoaAngles& angles,
                                       int shots, util::Rng& rng,
                                       EvalWorkspace& workspace) const {
  if (shots < 1) {
    throw std::invalid_argument("sampled_expectation: shots must be >= 1");
  }
  prepare_state(angles, workspace.sv);
  sim::sample_counts_into(workspace.sv, shots, rng, workspace.cdf,
                          workspace.samples);
  double sum = 0.0;
  for (const sim::BasisState s : workspace.samples) sum += cut_table_[s];
  return sum / static_cast<double>(shots);
}

QaoaResult QaoaSolver::optimize(const QaoaOptions& options) const {
  if (options.layers < 1) {
    throw std::invalid_argument("QaoaSolver::optimize: layers must be >= 1");
  }
  if (options.top_k < 1) {
    throw std::invalid_argument("QaoaSolver::optimize: top_k must be >= 1");
  }
  if (options.restarts < 1) {
    throw std::invalid_argument("QaoaSolver::optimize: restarts must be >= 1");
  }
  if (options.restarts == 1) return optimize_single(options);
  if (options.shot_based_objective ||
      graph_->num_nodes() < options.lockstep_min_qubits ||
      std::getenv("QQ_QAOA_SEQUENTIAL_RESTARTS") != nullptr) {
    // Sequential replay of the exact per-restart starts. Three routes lead
    // here: shot-based objectives (each restart owns a live RNG stream
    // whose draws depend on the evaluation count, which lockstep batching
    // would interleave); states below options.lockstep_min_qubits (the
    // barrier handoff costs more than batching saves); and the
    // QQ_QAOA_SEQUENTIAL_RESTARTS env var, which forces this fallback for
    // any exact objective so benchmarks can A/B the batched lockstep path
    // against the bit-identical sequential replay and lockstep issues can
    // be bisected in the field without a rebuild.
    QaoaResult best;
    int total_evaluations = 0;
    for (int r = 0; r < options.restarts; ++r) {
      QaoaOptions opts = options;
      opts.restarts = 1;
      opts.initial_parameters = restart_initial_parameters(options, r);
      QaoaResult res = optimize_single(opts);
      total_evaluations += res.evaluations;
      if (r == 0 || res.expectation > best.expectation) best = std::move(res);
    }
    best.evaluations = total_evaluations;
    return best;
  }
  return optimize_batched(options);
}

QaoaResult QaoaSolver::optimize_single(const QaoaOptions& options) const {
  const int budget = options.max_iterations > 0
                         ? options.max_iterations
                         : paper_iteration_schedule(options.layers);

  util::Rng shot_rng(options.seed ^ 0x7357b1e55ed5eedULL);
  // One workspace serves every objective evaluation AND the final
  // extraction below: the 2^n state vector (and sampling scratch) is
  // allocated once per optimize() instead of once per COBYLA iteration.
  EvalWorkspace workspace(graph_->num_nodes());
  // Objective to MINIMIZE: -F_p (exact or shot-estimated).
  const auto objective = [this, &options, &shot_rng,
                          &workspace](const std::vector<double>& params) {
    const circuit::QaoaAngles angles = circuit::unpack_angles(params);
    return options.shot_based_objective
               ? -sampled_expectation(angles, options.shots, shot_rng,
                                      workspace)
               : -expectation(angles, workspace);
  };

  const std::vector<double> x0 = restart_initial_parameters(options, 0);
  // optim is dependency-free, so the request context enters as a plain
  // stop predicate; null context keeps the hook empty (bit-for-bit
  // identical optimization to the pre-context code).
  std::function<bool()> should_stop;
  if (options.context != nullptr) {
    const util::RequestContext* ctx = options.context;
    should_stop = [ctx] { return ctx->stopped(); };
  }
  optim::Result opt;
  if (options.optimizer == OptimizerKind::kCobyla) {
    optim::CobylaOptions copts;
    copts.rhobeg = options.rhobeg;
    copts.rhoend = 1e-4;
    copts.maxfun = budget;
    copts.should_stop = std::move(should_stop);
    opt = optim::cobyla_minimize(objective, x0, copts);
  } else {
    optim::NelderMeadOptions nopts;
    nopts.step = options.rhobeg;
    nopts.maxfun = budget;
    nopts.should_stop = std::move(should_stop);
    opt = optim::nelder_mead_minimize(objective, x0, nopts);
  }

  QaoaResult result;
  result.parameters = opt.x;
  result.evaluations = opt.evaluations;
  result.layers = options.layers;
  extract_result(options, workspace, shot_rng, result);
  return result;
}

void QaoaSolver::extract_result(const QaoaOptions& options,
                                EvalWorkspace& workspace, util::Rng& shot_rng,
                                QaoaResult& result) const {
  const circuit::QaoaAngles best_angles =
      circuit::unpack_angles(result.parameters);
  prepare_state(best_angles, workspace.sv);
  const sim::StateVector& sv = workspace.sv;
  result.expectation = sim::expectation_diagonal(sv, cut_table_);

  // Solution extraction. top_k == 1 is the paper's highest-amplitude rule;
  // larger k scans the k most probable strings for the best cut (§5).
  const auto top = sim::top_k_states(sv, options.top_k);
  sim::BasisState chosen = top.front().first;
  double chosen_value = cut_table_[chosen];
  for (const auto& [state_idx, prob] : top) {
    (void)prob;
    if (cut_table_[state_idx] > chosen_value) {
      chosen = state_idx;
      chosen_value = cut_table_[state_idx];
    }
  }
  result.cut.assignment =
      maxcut::assignment_from_bits(chosen, graph_->num_nodes());
  result.cut.value = chosen_value;

  if (options.shots > 0) {
    sim::sample_counts_into(sv, options.shots, shot_rng, workspace.cdf,
                            workspace.samples);
    const auto& samples = workspace.samples;
    // Seed from the first sample, NOT 0.0: graphs whose every cut value is
    // negative (signed merge graphs, negative-weight edges) must report the
    // true best sample rather than a phantom 0.
    double best_sampled = cut_table_[samples.front()];
    for (const sim::BasisState s : samples) {
      best_sampled = std::max(best_sampled, cut_table_[s]);
    }
    result.best_sampled_value = best_sampled;
  }
}

namespace {

/// Lockstep barrier that batches one objective evaluation per live restart
/// into a single BatchedStateVector sweep. Each restart thread submits its
/// parameters and blocks; the last arriver evaluates every pending lane at
/// once (cut table loaded once per amplitude for all of them) and wakes the
/// rest. Because every lane of the batched simulator is bit-for-bit an
/// independent StateVector evaluation, a restart's optimizer trajectory is
/// identical no matter how many other restarts are still alive — which is
/// what makes the batched path exactly replayable as sequential runs.
class LockstepEvaluator {
 public:
  LockstepEvaluator(const std::vector<double>& cut_table, int num_qubits,
                    int layers, int restarts)
      : cut_table_(cut_table),
        num_qubits_(num_qubits),
        layers_(layers),
        active_(restarts),
        slots_(static_cast<std::size_t>(restarts)) {}

  /// Objective for restart `lane`: returns -F_p(params), evaluated together
  /// with every other live restart's pending point.
  double evaluate(int lane, const std::vector<double>& params) {
    util::MutexLock lock(mu_);
    Slot& slot = slots_[static_cast<std::size_t>(lane)];
    slot.params = &params;
    slot.pending = true;
    ++waiting_;
    if (waiting_ == active_) {
      run_batch();
    } else {
      const std::uint64_t gen = generation_;
      while (generation_ == gen) cv_.wait(lock);
    }
    if (failed_) {
      throw std::runtime_error(
          "QaoaSolver: batched restart evaluation failed");
    }
    return slot.result;
  }

  /// Restart `lane` finished its optimization: shrink the barrier. If every
  /// remaining restart is already waiting, the finisher runs their batch on
  /// the way out.
  void deregister(int lane) {
    (void)lane;
    util::MutexLock lock(mu_);
    --active_;
    if (active_ > 0 && waiting_ == active_) run_batch();
  }

 private:
  struct Slot {
    const std::vector<double>* params = nullptr;
    double result = 0.0;
    bool pending = false;
  };

  void run_batch() QQ_REQUIRES(mu_) {
    try {
      // Pending lanes evaluate in ascending restart order, so a fixed
      // (seed, restart) pair always lands in a deterministic lane.
      batch_lanes_.clear();
      for (std::size_t r = 0; r < slots_.size(); ++r) {
        if (slots_[r].pending) batch_lanes_.push_back(r);
      }
      const int b_count = static_cast<int>(batch_lanes_.size());
      if (b_count > 0) {
        if (!batch_ || batch_->batch() != b_count) {
          batch_ = std::make_unique<sim::BatchedStateVector>(num_qubits_,
                                                             b_count);
        }
        scales_.resize(static_cast<std::size_t>(b_count));
        thetas_.resize(static_cast<std::size_t>(b_count));
        batch_->reset_to_plus();
        for (int l = 0; l < layers_; ++l) {
          for (int b = 0; b < b_count; ++b) {
            // Packed layout [gamma_1..gamma_p, beta_1..beta_p]; the angle
            // expressions match QaoaSolver::prepare_state exactly.
            const std::vector<double>& params =
                *slots_[batch_lanes_[static_cast<std::size_t>(b)]].params;
            scales_[static_cast<std::size_t>(b)] =
                params[static_cast<std::size_t>(l)];
            thetas_[static_cast<std::size_t>(b)] =
                2.0 * params[static_cast<std::size_t>(layers_ + l)];
          }
          batch_->apply_diagonal_phase(cut_table_, scales_);
          batch_->apply_rx_layer(thetas_);
        }
        const std::vector<double> values =
            batch_->expectation_diagonal(cut_table_);
        for (int b = 0; b < b_count; ++b) {
          Slot& slot = slots_[batch_lanes_[static_cast<std::size_t>(b)]];
          slot.result = -values[static_cast<std::size_t>(b)];
          slot.pending = false;
          slot.params = nullptr;
        }
      }
    } catch (...) {
      failed_ = true;
      waiting_ = 0;
      ++generation_;
      cv_.notify_all();
      throw;
    }
    waiting_ = 0;
    ++generation_;
    cv_.notify_all();
  }

  const std::vector<double>& cut_table_;
  const int num_qubits_;
  const int layers_;

  util::Mutex mu_;
  util::CondVar cv_;
  int active_ QQ_GUARDED_BY(mu_);
  int waiting_ QQ_GUARDED_BY(mu_) = 0;
  std::uint64_t generation_ QQ_GUARDED_BY(mu_) = 0;
  bool failed_ QQ_GUARDED_BY(mu_) = false;
  std::vector<Slot> slots_ QQ_GUARDED_BY(mu_);
  std::vector<std::size_t> batch_lanes_ QQ_GUARDED_BY(mu_);
  std::vector<double> scales_ QQ_GUARDED_BY(mu_);
  std::vector<double> thetas_ QQ_GUARDED_BY(mu_);
  std::unique_ptr<sim::BatchedStateVector> batch_ QQ_GUARDED_BY(mu_);
};

}  // namespace

QaoaResult QaoaSolver::optimize_batched(const QaoaOptions& options) const {
  const int restarts = options.restarts;
  const int budget = options.max_iterations > 0
                         ? options.max_iterations
                         : paper_iteration_schedule(options.layers);
  std::function<bool()> should_stop;
  if (options.context != nullptr) {
    const util::RequestContext* ctx = options.context;
    should_stop = [ctx] { return ctx->stopped(); };
  }

  // Starts are computed before any thread exists so a malformed
  // initial_parameters override throws on the caller's thread.
  std::vector<std::vector<double>> starts(
      static_cast<std::size_t>(restarts));
  for (int r = 0; r < restarts; ++r) {
    starts[static_cast<std::size_t>(r)] =
        restart_initial_parameters(options, r);
  }

  LockstepEvaluator evaluator(cut_table_, graph_->num_nodes(), options.layers,
                              restarts);
  std::vector<optim::Result> results(static_cast<std::size_t>(restarts));
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(restarts));
  // Dedicated threads, NOT pool tasks: the instances block on the lockstep
  // barrier, and parking a blocked task on the (possibly single-threaded)
  // global pool would deadlock it. The pool still parallelizes each batched
  // sweep underneath.
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(restarts));
  for (int r = 0; r < restarts; ++r) {
    threads.emplace_back([&, r] {
      const std::size_t rr = static_cast<std::size_t>(r);
      try {
        const auto objective = [&evaluator,
                                r](const std::vector<double>& params) {
          return evaluator.evaluate(r, params);
        };
        if (options.optimizer == OptimizerKind::kCobyla) {
          optim::CobylaOptions copts;
          copts.rhobeg = options.rhobeg;
          copts.rhoend = 1e-4;
          copts.maxfun = budget;
          copts.should_stop = should_stop;
          results[rr] = optim::cobyla_minimize(objective, starts[rr], copts);
        } else {
          optim::NelderMeadOptions nopts;
          nopts.step = options.rhobeg;
          nopts.maxfun = budget;
          nopts.should_stop = should_stop;
          results[rr] =
              optim::nelder_mead_minimize(objective, starts[rr], nopts);
        }
      } catch (...) {
        errors[rr] = std::current_exception();
      }
      // Always shrinks the barrier, even on failure, so the surviving
      // restarts never wait on a dead lane.
      try {
        evaluator.deregister(r);
      } catch (...) {
        if (!errors[rr]) errors[rr] = std::current_exception();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (const std::exception_ptr& e : errors) {
    if (e) std::rethrow_exception(e);
  }

  // Best restart by final expectation (fx is the minimized -F_p); strict <
  // keeps the lowest restart index on ties, matching the sequential rule.
  std::size_t best = 0;
  for (std::size_t r = 1; r < results.size(); ++r) {
    if (results[r].fx < results[best].fx) best = r;
  }

  QaoaResult result;
  result.parameters = results[best].x;
  result.layers = options.layers;
  for (const optim::Result& res : results) {
    result.evaluations += res.evaluations;
  }
  util::Rng shot_rng(options.seed ^ 0x7357b1e55ed5eedULL);
  EvalWorkspace workspace(graph_->num_nodes());
  extract_result(options, workspace, shot_rng, result);
  return result;
}

QaoaResult solve_qaoa(const graph::Graph& g, const QaoaOptions& options) {
  return QaoaSolver(g).optimize(options);
}

}  // namespace qq::qaoa
