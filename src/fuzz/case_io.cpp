#include "fuzz/case_io.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace qq::fuzz {

namespace {

std::string fmt_weight(double w) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", w);
  return buf;
}

[[noreturn]] void bad_case(const std::string& what) {
  throw std::invalid_argument("fuzz case file: " + what);
}

}  // namespace

std::string to_case_file(const Scenario& scenario,
                         const std::vector<std::string>& comments) {
  std::ostringstream os;
  os << "# qq fuzz reproducer (replay: fuzz_solve --replay <this file>)\n";
  for (const std::string& c : comments) os << "# " << c << '\n';
  os << "kind " << probe_kind_name(scenario.kind) << '\n';
  if (!scenario.family.empty()) os << "family " << scenario.family << '\n';
  os << "scenario_seed " << scenario.scenario_seed << '\n';
  os << "solve_seed " << scenario.solve_seed << '\n';
  os << "spec " << scenario.spec << '\n';
  if (scenario.kind == ProbeKind::kQaoa2) {
    os << "deeper_spec " << scenario.deeper_spec << '\n';
    os << "merge_spec " << scenario.merge_spec << '\n';
    os << "max_qubits " << scenario.max_qubits << '\n';
  }
  os << "nodes " << scenario.graph.num_nodes() << '\n';
  for (const graph::Edge& e : scenario.graph.edges()) {
    os << "edge " << e.u << ' ' << e.v << ' ' << fmt_weight(e.w) << '\n';
  }
  os << "end\n";
  return os.str();
}

Scenario from_case_file(std::istream& in) {
  Scenario s;
  s.spec.clear();
  bool have_nodes = false, have_spec = false, ended = false;
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    std::istringstream ls(line);
    std::string directive;
    if (!(ls >> directive)) continue;  // blank/comment line
    const std::string at = " (line " + std::to_string(line_no) + ")";
    if (directive == "end") {
      ended = true;
      break;
    } else if (directive == "kind") {
      std::string kind;
      if (!(ls >> kind)) bad_case("missing kind value" + at);
      if (kind == "solver") {
        s.kind = ProbeKind::kSolver;
      } else if (kind == "qaoa2") {
        s.kind = ProbeKind::kQaoa2;
      } else {
        bad_case("unknown kind '" + kind + "'" + at);
      }
    } else if (directive == "family") {
      ls >> s.family;
    } else if (directive == "scenario_seed") {
      if (!(ls >> s.scenario_seed)) bad_case("bad scenario_seed" + at);
    } else if (directive == "solve_seed") {
      if (!(ls >> s.solve_seed)) bad_case("bad solve_seed" + at);
    } else if (directive == "spec" || directive == "deeper_spec" ||
               directive == "merge_spec") {
      // Specs may contain any non-newline characters (that is the point of
      // the grammar fuzzer), so take the rest of the line verbatim.
      std::string rest;
      std::getline(ls, rest);
      const std::size_t start = rest.find_first_not_of(" \t");
      rest = start == std::string::npos ? std::string() : rest.substr(start);
      const std::size_t last = rest.find_last_not_of(" \t\r");
      rest = last == std::string::npos ? std::string() : rest.substr(0, last + 1);
      if (rest.empty()) bad_case("empty " + directive + at);
      if (directive == "spec") {
        s.spec = rest;
        have_spec = true;
      } else if (directive == "deeper_spec") {
        s.deeper_spec = rest;
      } else {
        s.merge_spec = rest;
      }
    } else if (directive == "max_qubits") {
      if (!(ls >> s.max_qubits)) bad_case("bad max_qubits" + at);
    } else if (directive == "nodes") {
      long long n = -1;
      if (!(ls >> n) || n < 0 || n > 1'000'000) bad_case("bad nodes" + at);
      s.graph = graph::Graph(static_cast<graph::NodeId>(n));
      have_nodes = true;
    } else if (directive == "edge") {
      if (!have_nodes) bad_case("edge before nodes" + at);
      long long u = -1, v = -1;
      double w = 0.0;
      if (!(ls >> u >> v >> w)) bad_case("bad edge" + at);
      try {
        s.graph.add_edge(static_cast<graph::NodeId>(u),
                         static_cast<graph::NodeId>(v), w);
      } catch (const std::exception& e) {
        bad_case(std::string("invalid edge: ") + e.what() + at);
      }
    } else {
      bad_case("unknown directive '" + directive + "'" + at);
    }
  }
  if (!ended) bad_case("missing 'end' line");
  if (!have_nodes) bad_case("missing 'nodes' line");
  if (!have_spec) bad_case("missing 'spec' line");
  if (s.kind == ProbeKind::kQaoa2) {
    if (s.deeper_spec.empty()) s.deeper_spec = s.spec;
    if (s.merge_spec.empty()) s.merge_spec = "greedy";
  }
  return s;
}

Scenario from_case_string(const std::string& text) {
  std::istringstream in(text);
  return from_case_file(in);
}

Scenario load_case_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::invalid_argument("fuzz case file: cannot open '" + path + "'");
  }
  return from_case_file(in);
}

std::string reproducer_snippet(const Scenario& scenario,
                               const std::vector<Violation>& violations) {
  std::ostringstream os;
  os << "// Reproducer for a fuzz finding (scenario_seed "
     << scenario.scenario_seed << ", family '" << scenario.family << "').\n";
  for (const Violation& v : violations) {
    os << "// violated: [" << v.oracle << "] " << v.details << '\n';
  }
  os << "#include <cstdio>\n"
     << "#include \"maxcut/cut.hpp\"\n"
     << "#include \"qaoa2/qaoa2.hpp\"\n"
     << "#include \"qgraph/graph.hpp\"\n"
     << "#include \"solver/registry.hpp\"\n\n"
     << "int main() {\n"
     << "  qq::graph::Graph g(" << scenario.graph.num_nodes() << ");\n";
  for (const graph::Edge& e : scenario.graph.edges()) {
    os << "  g.add_edge(" << e.u << ", " << e.v << ", " << fmt_weight(e.w)
       << ");\n";
  }
  if (scenario.kind == ProbeKind::kSolver) {
    os << "  const auto solver =\n"
       << "      qq::solver::SolverRegistry::global().make(\"" << scenario.spec
       << "\");\n"
       << "  const auto report = solver->solve({&g, " << scenario.solve_seed
       << "ULL});\n"
       << "  std::printf(\"value=%.17g recount=%.17g\\n\", report.cut.value,\n"
       << "              qq::maxcut::cut_value(g, report.cut.assignment));\n";
  } else {
    os << "  qq::qaoa2::Qaoa2Options opts;\n"
       << "  opts.max_qubits = " << scenario.max_qubits << ";\n"
       << "  opts.sub_solver_spec = \"" << scenario.spec << "\";\n"
       << "  opts.deeper_solver_spec = \"" << scenario.deeper_spec << "\";\n"
       << "  opts.merge_solver_spec = \"" << scenario.merge_spec << "\";\n"
       << "  opts.qaoa.layers = 1;\n"
       << "  opts.qaoa.max_iterations = 8;\n"
       << "  opts.qaoa.shots = 64;\n"
       << "  opts.gw.slicings = 6;\n"
       << "  opts.seed = " << scenario.solve_seed << "ULL;\n"
       << "  const auto streaming = qq::qaoa2::solve_qaoa2(g, opts);\n"
       << "  opts.streaming = false;\n"
       << "  const auto recursive = qq::qaoa2::solve_qaoa2(g, opts);\n"
       << "  std::printf(\"streaming=%.17g recursive=%.17g recount=%.17g\\n\",\n"
       << "              streaming.cut.value, recursive.cut.value,\n"
       << "              qq::maxcut::cut_value(g, streaming.cut.assignment));\n";
  }
  os << "  return 0;\n}\n";
  return os.str();
}

}  // namespace qq::fuzz
