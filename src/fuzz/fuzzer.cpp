#include "fuzz/fuzzer.hpp"

#include <filesystem>
#include <fstream>
#include <ostream>
#include <sstream>

#include "fuzz/case_io.hpp"
#include "util/timer.hpp"

namespace qq::fuzz {

namespace {

/// Coverage key for a spec: the leaf solver name, or "best" for a
/// combinator ("anneal:sweeps=10" -> "anneal").
std::string spec_head(const std::string& spec) {
  const std::size_t colon = spec.find(':');
  return colon == std::string::npos ? spec : spec.substr(0, colon);
}

std::string clip(const std::string& s, std::size_t max = 80) {
  if (s.size() <= max) return s;
  return s.substr(0, max) + "...(" + std::to_string(s.size()) + " chars)";
}

void write_artifacts(const FuzzOptions& options, const Finding& finding,
                     std::ostream* log) {
  if (options.artifact_dir.empty()) return;
  std::error_code ec;
  std::filesystem::create_directories(options.artifact_dir, ec);
  std::vector<std::string> comments;
  comments.push_back("campaign seed " + std::to_string(finding.campaign_seed));
  for (const Violation& v : finding.violations) {
    comments.push_back("violated: [" + v.oracle + "] " + clip(v.details, 200));
  }
  const std::string stem =
      options.artifact_dir + "/case-" + std::to_string(finding.campaign_seed);
  {
    std::ofstream out(stem + ".case");
    out << to_case_file(finding.scenario, comments);
  }
  {
    std::ofstream out(stem + ".cpp");
    out << reproducer_snippet(finding.scenario, finding.violations);
  }
  if (log) *log << "  wrote " << stem << ".case / .cpp\n";
}

}  // namespace

FuzzReport run_fuzz(const FuzzOptions& options, std::ostream* log) {
  FuzzReport report;
  util::Timer timer;
  util::Rng malformed_rng(options.seed_begin ^ 0xbadc0ffee0ddf00dULL);
  for (int i = 0; i < options.seeds; ++i) {
    if (options.time_budget_seconds > 0.0 &&
        timer.seconds() > options.time_budget_seconds) {
      report.time_exhausted = true;
      if (log) {
        *log << "time budget exhausted after " << report.scenarios_run
             << " scenarios\n";
      }
      break;
    }
    const std::uint64_t seed = options.seed_begin + static_cast<std::uint64_t>(i);
    Scenario scenario = make_scenario(seed);
    ++report.scenarios_run;
    ++report.family_counts[scenario.family];
    ++report.spec_counts[spec_head(scenario.spec)];
    if (options.verbose && log) {
      *log << "seed " << seed << ": " << probe_kind_name(scenario.kind) << ' '
           << scenario.family << " n=" << scenario.graph.num_nodes()
           << " m=" << scenario.graph.num_edges() << " spec="
           << clip(scenario.spec) << '\n';
    }
    std::vector<Violation> violations = check_scenario(scenario, options.oracle);
    if (!violations.empty()) {
      Finding finding;
      finding.campaign_seed = seed;
      if (options.reduce_failures) {
        ReduceOptions ropts;
        ropts.oracle = options.oracle;
        ropts.max_checks = options.reduce_max_checks;
        ReducedCase reduced = reduce(scenario, ropts);
        finding.scenario = reduced.scenario;
        finding.violations = reduced.violations;
        finding.shrunk = reduced.shrunk;
      } else {
        finding.scenario = std::move(scenario);
        finding.violations = std::move(violations);
      }
      if (log) {
        *log << "FINDING at seed " << seed << " (family "
             << finding.scenario.family << ", n="
             << finding.scenario.graph.num_nodes() << ", m="
             << finding.scenario.graph.num_edges()
             << (finding.shrunk ? ", shrunk" : "") << "):\n"
             << format_violations(finding.violations);
      }
      write_artifacts(options, finding, log);
      report.findings.push_back(std::move(finding));
    }
    // Interleave "must throw, never crash" grammar probes.
    for (int p = 0; p < options.malformed_per_seed; ++p) {
      const std::string bad = random_malformed_spec(malformed_rng);
      ++report.malformed_probes;
      std::vector<Violation> guard = check_malformed_spec(bad);
      if (!guard.empty()) {
        Finding finding;
        finding.campaign_seed = seed;
        finding.scenario.family = "malformed_spec";
        finding.scenario.spec = bad;
        finding.violations = std::move(guard);
        if (log) {
          *log << "FINDING at seed " << seed << " (malformed spec "
               << clip(bad) << "):\n"
               << format_violations(finding.violations);
        }
        report.findings.push_back(std::move(finding));
      }
    }
  }
  report.wall_seconds = timer.seconds();
  return report;
}

std::vector<Violation> replay_case(const std::string& path,
                                   const OracleOptions& options,
                                   std::ostream* log) {
  const Scenario scenario = load_case_file(path);
  if (log) {
    *log << "replay " << path << ": " << probe_kind_name(scenario.kind)
         << " n=" << scenario.graph.num_nodes() << " m="
         << scenario.graph.num_edges() << " spec=" << clip(scenario.spec)
         << '\n';
  }
  std::vector<Violation> violations = check_scenario(scenario, options);
  if (log) {
    if (violations.empty()) {
      *log << "  clean\n";
    } else {
      *log << format_violations(violations);
    }
  }
  return violations;
}

std::string summarize_report(const FuzzReport& report) {
  std::ostringstream os;
  os << "fuzz: " << report.scenarios_run << " scenarios, "
     << report.malformed_probes << " malformed-spec probes, "
     << report.findings.size() << " finding(s) in " << report.wall_seconds
     << "s" << (report.time_exhausted ? " (time budget hit)" : "") << '\n';
  os << "  families:";
  for (const auto& [family, count] : report.family_counts) {
    os << ' ' << family << '=' << count;
  }
  os << '\n' << "  specs:";
  for (const auto& [head, count] : report.spec_counts) {
    os << ' ' << head << '=' << count;
  }
  os << '\n';
  return os.str();
}

}  // namespace qq::fuzz
