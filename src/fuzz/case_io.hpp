#pragma once
// Reproducer-case serialization: every violating scenario is written as a
// small self-contained text file that replays through `fuzz_solve
// --replay <file>` (and, committed under tests/corpus/, as a permanent
// ctest regression entry), plus a C++ snippet for debugging by hand.
//
// Format (line-oriented, '#' comments, must end with `end`):
//
//   kind solver            # or qaoa2
//   family negative        # informational
//   scenario_seed 1234     # informational (0 for hand-written cases)
//   solve_seed 77
//   spec best:qaoa|gw
//   deeper_spec gw         # qaoa2 only
//   merge_spec greedy      # qaoa2 only
//   max_qubits 6           # qaoa2 only
//   nodes 30
//   edge 0 1 1
//   edge 4 7 -0.5
//   end
//
// Weights round-trip bit-exactly (%.17g).

#include <iosfwd>
#include <string>
#include <vector>

#include "fuzz/oracle.hpp"
#include "fuzz/scenario.hpp"

namespace qq::fuzz {

/// Serialize a scenario. `comment` lines (one per entry, without '#') are
/// emitted at the top — the fuzzer records the violated oracles there.
std::string to_case_file(const Scenario& scenario,
                         const std::vector<std::string>& comments = {});

/// Parse a case file. Throws std::invalid_argument on any malformed line,
/// unknown directive, missing `end`, or invalid edge.
Scenario from_case_file(std::istream& in);
Scenario from_case_string(const std::string& text);

/// Load a case from disk. Throws std::invalid_argument (file missing or
/// malformed).
Scenario load_case_file(const std::string& path);

/// Self-contained C++ `main` that rebuilds the graph and re-runs the
/// failing solve — the copy-paste debugging entry point.
std::string reproducer_snippet(const Scenario& scenario,
                               const std::vector<Violation>& violations);

}  // namespace qq::fuzz
