#pragma once
// Failure shrinking: given a scenario that violates an oracle, search for
// the smallest variant that still violates one, so reproducers committed
// to the corpus are readable and fast to replay.
//
// The search is a bounded ddmin-style loop over four moves:
//   1. drop node ranges (halves, then quarters, ...) via induced subgraphs
//   2. drop edge ranges the same way (node count preserved)
//   3. simplify the spec: a `best:` combinator is replaced by each child in
//      turn, then any surviving spec by plain "greedy"
//   4. for QAOA^2 probes, shrink max_qubits toward 2 and simplify the
//      deeper/merge roles
// Every accepted move must keep at least one violation alive (not
// necessarily the original one — a shrink exposing a *different* bug is
// still a bug). The loop re-runs oracles at most `max_checks` times.

#include <cstdint>

#include "fuzz/oracle.hpp"
#include "fuzz/scenario.hpp"

namespace qq::fuzz {

struct ReduceOptions {
  OracleOptions oracle;
  /// Upper bound on oracle re-evaluations (each is a few solves).
  int max_checks = 160;
};

struct ReducedCase {
  Scenario scenario;                  ///< smallest still-failing variant
  std::vector<Violation> violations;  ///< its violations
  int checks = 0;                     ///< oracle evaluations spent
  bool shrunk = false;                ///< anything got smaller
};

/// Shrink `failing` (which must currently violate at least one oracle —
/// otherwise it is returned unchanged with empty violations).
ReducedCase reduce(const Scenario& failing, const ReduceOptions& options = {});

}  // namespace qq::fuzz
