#pragma once
// Fuzz campaign driver: iterate seeds, generate scenarios, run the oracle
// battery, probe malformed specs, shrink anything that fails, and emit
// reproducer artifacts. Time-bounded so CI can run it as a fixed-budget
// smoke pass (`fuzz_solve --seeds 500 --time-budget 120`).

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "fuzz/oracle.hpp"
#include "fuzz/reducer.hpp"
#include "fuzz/scenario.hpp"

namespace qq::fuzz {

struct FuzzOptions {
  /// First campaign seed; scenarios are make_scenario(seed_begin + i).
  std::uint64_t seed_begin = 0;
  /// Number of scenario seeds to try.
  int seeds = 500;
  /// Wall-clock cap in seconds; <= 0 means unbounded. The campaign stops
  /// early (time_exhausted) once exceeded, never mid-scenario.
  double time_budget_seconds = 120.0;
  OracleOptions oracle;
  /// Number of malformed-spec probes interleaved per scenario seed.
  int malformed_per_seed = 2;
  /// Shrink failing scenarios before reporting them.
  bool reduce_failures = true;
  int reduce_max_checks = 160;
  /// When non-empty, write `case-<seed>.case` and `repro-<seed>.cpp` for
  /// every finding into this directory (created if missing).
  std::string artifact_dir;
  /// Log every scenario, not just findings.
  bool verbose = false;
};

struct Finding {
  Scenario scenario;                  ///< reduced (or original) failing case
  std::vector<Violation> violations;  ///< violations on `scenario`
  std::uint64_t campaign_seed = 0;    ///< seed that first exposed it
  bool shrunk = false;
};

struct FuzzReport {
  int scenarios_run = 0;
  int malformed_probes = 0;
  std::vector<Finding> findings;
  /// Scenario coverage: family name -> times drawn, spec head (leaf solver
  /// name or "best") -> times drawn.
  std::map<std::string, int> family_counts;
  std::map<std::string, int> spec_counts;
  double wall_seconds = 0.0;
  bool time_exhausted = false;

  bool clean() const { return findings.empty(); }
};

/// Run a campaign. Progress and findings go to `log` when non-null.
FuzzReport run_fuzz(const FuzzOptions& options, std::ostream* log = nullptr);

/// Replay one serialized case through the oracle battery (used by
/// `fuzz_solve --replay` and the committed-corpus ctest entries). Returns
/// the violations (empty == clean).
std::vector<Violation> replay_case(const std::string& path,
                                   const OracleOptions& options,
                                   std::ostream* log = nullptr);

/// One-line coverage/summary block for a finished campaign.
std::string summarize_report(const FuzzReport& report);

}  // namespace qq::fuzz
