#pragma once
// Ground-truth-free invariant oracles for fuzzed scenarios.
//
// None of these need a known optimum; the domain supplies the checks:
//   recount        reported cut value == recount of the assignment (and the
//                  assignment is well-formed: n entries, each 0/1)
//   counts         per-kind solve counts match Solver::solve_counts(); for
//                  QAOA^2, sum(level num_parts) == subgraphs_total, levels
//                  ascend, components match connected_components, timings
//                  are finite and non-negative
//   determinism    solving twice at the same seed is bit-for-bit identical
//   relabel        solving a vertex-relabeled copy stays self-consistent:
//                  its recount holds on the relabeled graph AND the
//                  assignment mapped back through the permutation recounts
//                  to the same value on the original graph; the exact
//                  optimum value is additionally invariant
//   exact_bound    exact >= any heuristic (n <= exact_max_nodes)
//   stream_parity  QAOA^2 streaming == recursive bit-for-bit
//   cache_coherence  routing the solve through a seed-sensitive SolveCache
//                  (warm starts off) is bit-for-bit identical to the
//                  uncached solve; a repeat of the same request HITS and
//                  stays bit-identical; a hit on an isomorphic relabeled
//                  copy maps its cached assignment through the stored
//                  permutation to a valid cut of the same value
//   spec_guard     malformed specs throw std::invalid_argument, never
//                  anything else and never succeed (check_malformed_spec)
//
// Every violation found here is a real bug somewhere in qgraph / solver /
// qaoa2 / sched — there are no flaky oracles; tolerances scale with the
// graph's total absolute weight to absorb float association differences
// only.

#include <string>
#include <vector>

#include "fuzz/scenario.hpp"

namespace qq::fuzz {

struct Violation {
  /// Oracle label ("recount", "determinism", ...).
  std::string oracle;
  /// Human-readable diagnosis (expected vs got).
  std::string details;
};

struct OracleOptions {
  /// Run the exact-bound oracle only at or below this node count (the
  /// exact solver is O(2^n)).
  int exact_max_nodes = 16;
  bool check_determinism = true;
  bool check_relabel = true;
  /// QAOA^2 probes: compare the streaming pipeline against the recursive
  /// reference bit-for-bit.
  bool check_stream_parity = true;
  /// Cache probes: cache-routed solves must equal uncached ones bit-for-bit
  /// and isomorphic hits must map back to valid assignments.
  bool check_cache_coherence = true;
};

/// Absolute tolerance used when comparing independently computed cut
/// values on `g`: 1e-9 scaled by the total absolute edge weight.
double cut_tolerance(const graph::Graph& g);

/// Run every applicable oracle on one scenario. Empty result == clean.
/// Never throws: solver/pipeline exceptions are themselves reported as
/// "solve_throws" violations.
std::vector<Violation> check_scenario(const Scenario& scenario,
                                      const OracleOptions& options = {});

/// The "must throw, never crash" probe: constructing `spec` must throw
/// std::invalid_argument. Returns a violation when it succeeds or throws
/// any other type.
std::vector<Violation> check_malformed_spec(const std::string& spec);

/// Render violations as an indented report block.
std::string format_violations(const std::vector<Violation>& violations);

}  // namespace qq::fuzz
