#pragma once
// Service-layer fuzzing: seeded concurrent-request storms against a live
// SolveService — random tenant topologies, random request mixes (direct
// and decomposed, valid and invalid, with and without deadlines/budgets),
// random mid-flight cancellations from a concurrent thread, and a random
// teardown (drain vs shutdown_now). The cross-layer invariant oracles:
//
//   terminal_once   every submitted request settles in exactly one
//                   terminal state, and that state is stable once read
//   no_failure      specs are valid by construction, so kFailed leaks an
//                   internal error (the what() is reported)
//   typed_reject    requests built invalid/infeasible reject with exactly
//                   that reason; valid ones only ever reject as overloaded
//   recount         a completed request's cut recounts on its own graph
//   stats_balance   service counters equal the per-ticket tallies, and the
//                   engine's submitted == completed + cancelled with empty
//                   ready/in-flight gauges after the storm drains
//
// Timing decides WHICH branch each request takes (cancel lands while
// queued, running, or already settled) but never whether the oracles hold,
// so storms are safe to run under TSan and on loaded CI machines.

#include <cstdint>
#include <iosfwd>

#include "fuzz/oracle.hpp"

namespace qq::fuzz {

struct ServiceFuzzOptions {
  std::uint64_t seed_begin = 0;
  /// Storm rounds; each builds a fresh service from its own seed.
  int storms = 20;
  /// Wall-clock cap in seconds; <= 0 means unbounded. Stops early between
  /// storms, never mid-storm.
  double time_budget_seconds = 60.0;
  bool verbose = false;
};

struct ServiceFuzzReport {
  int storms_run = 0;
  int requests_submitted = 0;
  int cancels_issued = 0;
  std::vector<Violation> violations;
  double wall_seconds = 0.0;
  bool time_exhausted = false;

  bool clean() const { return violations.empty(); }
};

/// Run `options.storms` storm rounds. Progress and violations go to `log`
/// when non-null. Violation details name the storm seed, so any finding
/// reproduces via --service --seed-begin <seed> --storms 1.
ServiceFuzzReport run_service_fuzz(const ServiceFuzzOptions& options,
                                   std::ostream* log = nullptr);

/// One-line summary block for a finished campaign.
std::string summarize_service_report(const ServiceFuzzReport& report);

}  // namespace qq::fuzz
