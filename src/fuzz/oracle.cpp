#include "fuzz/oracle.hpp"

#include <cmath>
#include <cstdio>
#include <numeric>
#include <sstream>
#include <stdexcept>

#include "cache/fingerprint.hpp"
#include "cache/solve_cache.hpp"
#include "maxcut/cut.hpp"
#include "maxcut/exact.hpp"
#include "qaoa2/qaoa2.hpp"
#include "solver/registry.hpp"

namespace qq::fuzz {

namespace {

using graph::Graph;
using graph::NodeId;

std::string fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

void add(std::vector<Violation>& out, std::string oracle, std::string details) {
  out.push_back(Violation{std::move(oracle), std::move(details)});
}

/// Assignment is structurally valid and its recount matches the reported
/// value. Shared by every probe and every oracle that re-solves.
void check_cut(const Graph& g, const maxcut::CutResult& cut,
               const std::string& context, std::vector<Violation>& out) {
  if (cut.assignment.size() != static_cast<std::size_t>(g.num_nodes())) {
    add(out, "recount",
        context + ": assignment has " + std::to_string(cut.assignment.size()) +
            " entries for a " + std::to_string(g.num_nodes()) + "-node graph");
    return;
  }
  for (std::size_t i = 0; i < cut.assignment.size(); ++i) {
    if (cut.assignment[i] > 1) {
      add(out, "recount",
          context + ": assignment[" + std::to_string(i) + "] = " +
              std::to_string(static_cast<int>(cut.assignment[i])) +
              " is not a side in {0,1}");
      return;
    }
  }
  if (!std::isfinite(cut.value)) {
    add(out, "recount", context + ": cut value " + fmt(cut.value) +
                            " is not finite");
    return;
  }
  const double recount = maxcut::cut_value(g, cut.assignment);
  if (std::abs(recount - cut.value) > cut_tolerance(g)) {
    add(out, "recount", context + ": reported " + fmt(cut.value) +
                            " but the assignment recounts to " + fmt(recount));
  }
}

/// Random permutation of [0, n) derived from the scenario's solve seed.
std::vector<NodeId> relabeling(const Scenario& s) {
  std::vector<NodeId> perm(static_cast<std::size_t>(s.graph.num_nodes()));
  std::iota(perm.begin(), perm.end(), NodeId{0});
  util::Rng rng(s.solve_seed ^ 0x9e1abe1ULL);
  for (std::size_t i = perm.size(); i > 1; --i) {
    std::swap(perm[i - 1], perm[util::uniform_u64(rng, i)]);
  }
  return perm;
}

Graph permuted_graph(const Graph& g, const std::vector<NodeId>& perm) {
  Graph h(g.num_nodes());
  for (const graph::Edge& e : g.edges()) {
    h.add_edge(perm[static_cast<std::size_t>(e.u)],
               perm[static_cast<std::size_t>(e.v)], e.w);
  }
  return h;
}

maxcut::Assignment map_back(const maxcut::Assignment& permuted,
                            const std::vector<NodeId>& perm) {
  maxcut::Assignment original(permuted.size());
  for (std::size_t u = 0; u < perm.size(); ++u) {
    original[u] = permuted[static_cast<std::size_t>(perm[u])];
  }
  return original;
}

bool exact_oracle_applies(const Scenario& s, const OracleOptions& opts) {
  return s.graph.num_nodes() >= 2 &&
         s.graph.num_nodes() <= opts.exact_max_nodes &&
         s.graph.num_edges() > 0;
}

/// Shared post-solve oracles: exact bound and relabel self-consistency.
/// `resolve` re-runs the scenario's solve on an arbitrary graph and returns
/// the cut, so the same logic serves both probe kinds.
template <typename Resolve>
void check_exact_and_relabel(const Scenario& s, const OracleOptions& opts,
                             const maxcut::CutResult& cut, Resolve resolve,
                             std::vector<Violation>& out) {
  const Graph& g = s.graph;
  if (exact_oracle_applies(s, opts)) {
    const maxcut::CutResult exact = maxcut::solve_exact(g);
    check_cut(g, exact, "exact reference", out);
    if (cut.value > exact.value + cut_tolerance(g)) {
      add(out, "exact_bound",
          "heuristic value " + fmt(cut.value) + " exceeds the exact optimum " +
              fmt(exact.value));
    }
    if (opts.check_relabel) {
      const auto perm = relabeling(s);
      const maxcut::CutResult exact_perm =
          maxcut::solve_exact(permuted_graph(g, perm));
      if (std::abs(exact_perm.value - exact.value) > cut_tolerance(g)) {
        add(out, "relabel", "exact optimum changed under relabeling: " +
                                fmt(exact.value) + " vs " +
                                fmt(exact_perm.value));
      }
    }
  }
  if (opts.check_relabel && g.num_nodes() > 0) {
    const auto perm = relabeling(s);
    const Graph h = permuted_graph(g, perm);
    try {
      const maxcut::CutResult permuted = resolve(h);
      check_cut(h, permuted, "relabeled solve", out);
      if (permuted.assignment.size() ==
          static_cast<std::size_t>(g.num_nodes())) {
        const double mapped_back =
            maxcut::cut_value(g, map_back(permuted.assignment, perm));
        if (std::abs(mapped_back - permuted.value) > cut_tolerance(g)) {
          add(out, "relabel",
              "assignment mapped back through the permutation recounts to " +
                  fmt(mapped_back) + " on the original graph, but the "
                  "relabeled solve reported " + fmt(permuted.value));
        }
      }
    } catch (const std::exception& e) {
      add(out, "relabel",
          std::string("solve on the relabeled graph threw: ") + e.what());
    }
  }
}

// --------------------------------------------------- solver probes ----

void check_solver_scenario(const Scenario& s, const OracleOptions& opts,
                           std::vector<Violation>& out) {
  const Graph& g = s.graph;
  solver::SolverPtr solver;
  try {
    solver = solver::SolverRegistry::global().make(s.spec);
  } catch (const std::exception& e) {
    add(out, "spec_construct",
        "valid-by-construction spec '" + s.spec + "' failed to build: " +
            e.what());
    return;
  }

  solver::SolveRequest request;
  request.graph = &g;
  request.seed = s.solve_seed;
  solver::SolveReport report;
  try {
    report = solver->solve(request);
  } catch (const std::exception& e) {
    add(out, "solve_throws", "spec '" + s.spec + "' threw: " + e.what());
    return;
  } catch (...) {
    add(out, "solve_throws", "spec '" + s.spec + "' threw a non-std exception");
    return;
  }

  check_cut(g, report.cut, "spec '" + s.spec + "'", out);

  // Report bookkeeping invariants.
  const auto [q, c] = solver->solve_counts();
  if (report.quantum_solves != q || report.classical_solves != c) {
    add(out, "counts",
        "per-kind solve counts (" + std::to_string(report.quantum_solves) +
            "q, " + std::to_string(report.classical_solves) + "c) != " +
            "Solver::solve_counts (" + std::to_string(q) + "q, " +
            std::to_string(c) + "c)");
  }
  if (report.solver != solver->name()) {
    add(out, "counts", "report.solver '" + report.solver +
                           "' != solver name '" + std::string(solver->name()) +
                           "'");
  }
  if (!std::isfinite(report.wall_seconds) || report.wall_seconds < 0.0 ||
      report.evaluations < 0) {
    add(out, "counts", "non-finite or negative wall/evaluations");
  }

  if (opts.check_determinism) {
    const solver::SolveReport again = solver->solve(request);
    if (again.cut.value != report.cut.value ||
        again.cut.assignment != report.cut.assignment ||
        again.evaluations != report.evaluations) {
      add(out, "determinism",
          "spec '" + s.spec + "' at seed " + std::to_string(s.solve_seed) +
              " is not reproducible: " + fmt(report.cut.value) + " then " +
              fmt(again.cut.value));
    }
    // A separately constructed instance of the same spec must agree too.
    const solver::SolveReport fresh =
        solver::SolverRegistry::global().make(s.spec)->solve(request);
    if (fresh.cut.value != report.cut.value ||
        fresh.cut.assignment != report.cut.assignment) {
      add(out, "determinism",
          "freshly constructed '" + s.spec + "' disagrees with the original "
          "instance at the same seed");
    }
  }

  if (opts.check_cache_coherence && g.num_nodes() >= 2 && g.num_edges() > 0) {
    // Fresh seed-sensitive cache, warm starts off (the defaults): every
    // cache-routed result must be bit-identical to the uncached one.
    cache::SolveCache cache;
    try {
      const solver::SolveReport miss =
          cache.solve_through(*solver, request, s.spec);
      if (miss.cut.value != report.cut.value ||
          miss.cut.assignment != report.cut.assignment ||
          miss.evaluations != report.evaluations) {
        add(out, "cache_coherence",
            "cache-routed solve of '" + s.spec + "' (" + fmt(miss.cut.value) +
                ") differs from the uncached solve (" + fmt(report.cut.value) +
                ")");
      }
      const solver::SolveReport hit =
          cache.solve_through(*solver, request, s.spec);
      if (cache.stats().hits < 1) {
        add(out, "cache_coherence",
            "repeating the identical request did not hit the cache");
      }
      if (hit.cut.value != report.cut.value ||
          hit.cut.assignment != report.cut.assignment ||
          hit.evaluations != report.evaluations) {
        add(out, "cache_coherence",
            "cache hit (" + fmt(hit.cut.value) +
                ") is not bit-identical to the original solve (" +
                fmt(report.cut.value) + ")");
      }
      // Isomorphic-hit probe: when the canonicalizer fully labels both the
      // graph and a relabeled copy, a read-only lookup on the copy must hit
      // the entry filled above, and the cached assignment mapped through
      // the stored permutation must be a valid equal-value cut of the copy.
      const auto perm = relabeling(s);
      const Graph h = permuted_graph(g, perm);
      const cache::Fingerprint fp_g = cache::fingerprint_graph(g);
      const cache::Fingerprint fp_h = cache::fingerprint_graph(h);
      if (fp_g.canonical && fp_h.canonical) {
        cache::CachePolicy readonly;
        readonly.mode = cache::CacheMode::kReadOnly;
        solver::SolveRequest r2;
        r2.graph = &h;
        r2.seed = s.solve_seed;
        const std::uint64_t hits_before = cache.stats().hits;
        const solver::SolveReport iso =
            cache.solve_through(*solver, r2, s.spec, readonly);
        if (cache.stats().hits != hits_before + 1) {
          add(out, "cache_coherence",
              "read-only lookup of an isomorphic relabeled copy missed the "
              "cached entry");
        } else {
          check_cut(h, iso.cut, "isomorphic cache hit", out);
          if (std::abs(iso.cut.value - report.cut.value) > cut_tolerance(g)) {
            add(out, "cache_coherence",
                "isomorphic cache hit recounts to " + fmt(iso.cut.value) +
                    " but the original solve found " + fmt(report.cut.value));
          }
        }
      }
    } catch (const std::exception& e) {
      add(out, "cache_coherence",
          std::string("cache-routed solve threw: ") + e.what());
    }
  }

  check_exact_and_relabel(
      s, opts, report.cut,
      [&](const Graph& h) {
        solver::SolveRequest r2;
        r2.graph = &h;
        r2.seed = s.solve_seed;
        return solver->solve(r2).cut;
      },
      out);
}

// ---------------------------------------------------- qaoa2 probes ----

qaoa2::Qaoa2Options qaoa2_options(const Scenario& s, bool streaming) {
  qaoa2::Qaoa2Options opts;
  opts.max_qubits = s.max_qubits;
  opts.sub_solver_spec = s.spec;
  opts.deeper_solver_spec = s.deeper_spec;
  opts.merge_solver_spec = s.merge_spec;
  // Keep the base defaults that specs refine cheap: the fuzzer's job is
  // coverage, not solution quality.
  opts.qaoa.layers = 1;
  opts.qaoa.max_iterations = 8;
  opts.qaoa.shots = 64;
  opts.gw.slicings = 6;
  opts.seed = s.solve_seed;
  opts.streaming = streaming;
  return opts;
}

void check_qaoa2_counts(const Graph& g, const qaoa2::Qaoa2Result& r,
                        std::vector<Violation>& out) {
  int parts = 0;
  for (const qaoa2::LevelStats& ls : r.level_stats) parts += ls.num_parts;
  if (parts != r.subgraphs_total) {
    add(out, "counts",
        "sum of per-level num_parts " + std::to_string(parts) +
            " != subgraphs_total " + std::to_string(r.subgraphs_total));
  }
  if (static_cast<int>(r.level_stats.size()) != r.levels) {
    add(out, "counts",
        "levels " + std::to_string(r.levels) + " != level_stats size " +
            std::to_string(r.level_stats.size()));
  }
  for (std::size_t i = 1; i < r.level_stats.size(); ++i) {
    if (r.level_stats[i].level <= r.level_stats[i - 1].level) {
      add(out, "counts", "level_stats not strictly ascending");
      break;
    }
  }
  if (!r.level_stats.empty()) {
    if (r.level_stats.front().level != 0) {
      add(out, "counts", "first level_stats entry is not level 0");
    } else if (std::abs(r.level_stats.front().level_cut - r.cut.value) >
               cut_tolerance(g)) {
      // Level 0's graph is the input graph (aggregated over components), so
      // its post-merge cut is the final cut.
      add(out, "counts",
          "level-0 cut " + fmt(r.level_stats.front().level_cut) +
              " != final cut " + fmt(r.cut.value));
    }
  }
  const auto components = graph::connected_components(g);
  if (g.num_nodes() > 0 &&
      r.components != static_cast<int>(components.size())) {
    add(out, "counts",
        "reported components " + std::to_string(r.components) + " != " +
            std::to_string(components.size()));
  }
  if (r.quantum_solves < 0 || r.classical_solves < 0 || r.engine_tasks < 0 ||
      r.subgraphs_total < 0) {
    add(out, "counts", "negative counter in Qaoa2Result");
  }
  if (g.num_nodes() >= 1 &&
      r.quantum_solves + r.classical_solves < r.subgraphs_total) {
    add(out, "counts",
        "fewer solves (" +
            std::to_string(r.quantum_solves + r.classical_solves) +
            ") than subgraphs (" + std::to_string(r.subgraphs_total) + ")");
  }
  if (!std::isfinite(r.solve_seconds) || r.solve_seconds < 0.0 ||
      !std::isfinite(r.queue_wait_seconds) || r.queue_wait_seconds < 0.0) {
    add(out, "counts", "non-finite or negative timing in Qaoa2Result");
  }
}

bool same_result(const qaoa2::Qaoa2Result& a, const qaoa2::Qaoa2Result& b) {
  if (a.cut.value != b.cut.value || a.cut.assignment != b.cut.assignment ||
      a.levels != b.levels || a.subgraphs_total != b.subgraphs_total ||
      a.quantum_solves != b.quantum_solves ||
      a.classical_solves != b.classical_solves ||
      a.components != b.components ||
      a.level_stats.size() != b.level_stats.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.level_stats.size(); ++i) {
    if (a.level_stats[i].level != b.level_stats[i].level ||
        a.level_stats[i].num_parts != b.level_stats[i].num_parts ||
        a.level_stats[i].level_cut != b.level_stats[i].level_cut) {
      return false;
    }
  }
  return true;
}

void check_qaoa2_scenario(const Scenario& s, const OracleOptions& opts,
                          std::vector<Violation>& out) {
  const Graph& g = s.graph;
  qaoa2::Qaoa2Result streaming;
  try {
    streaming = qaoa2::solve_qaoa2(g, qaoa2_options(s, /*streaming=*/true));
  } catch (const std::exception& e) {
    add(out, "solve_throws",
        std::string("streaming qaoa2 threw: ") + e.what());
    return;
  } catch (...) {
    add(out, "solve_throws", "streaming qaoa2 threw a non-std exception");
    return;
  }

  check_cut(g, streaming.cut, "streaming qaoa2", out);
  check_qaoa2_counts(g, streaming, out);

  if (opts.check_stream_parity) {
    try {
      const qaoa2::Qaoa2Result recursive =
          qaoa2::solve_qaoa2(g, qaoa2_options(s, /*streaming=*/false));
      if (!same_result(streaming, recursive)) {
        add(out, "stream_parity",
            "streaming (" + fmt(streaming.cut.value) + ") and recursive (" +
                fmt(recursive.cut.value) +
                ") pipelines disagree (value, assignment, or stats)");
      }
    } catch (const std::exception& e) {
      add(out, "stream_parity",
          std::string("recursive pipeline threw where streaming succeeded: ") +
              e.what());
    }
  }

  if (opts.check_determinism) {
    const qaoa2::Qaoa2Result again =
        qaoa2::solve_qaoa2(g, qaoa2_options(s, /*streaming=*/true));
    if (!same_result(streaming, again)) {
      add(out, "determinism",
          "same-seed streaming qaoa2 runs disagree: " +
              fmt(streaming.cut.value) + " then " + fmt(again.cut.value));
    }
  }

  if (opts.check_cache_coherence) {
    // Routing every leaf/coarse solve through a seed-sensitive cache must
    // not perturb the pipeline: the cold (filling) run and the warm
    // (hit-serving) rerun both match the uncached result bit-for-bit.
    cache::SolveCache cache;
    qaoa2::Qaoa2Options copts = qaoa2_options(s, /*streaming=*/true);
    copts.solve_cache = &cache;
    try {
      const qaoa2::Qaoa2Result cold = qaoa2::solve_qaoa2(g, copts);
      if (!same_result(streaming, cold)) {
        add(out, "cache_coherence",
            "cache-enabled qaoa2 (" + fmt(cold.cut.value) +
                ") differs from the uncached run (" +
                fmt(streaming.cut.value) + ")");
      }
      const qaoa2::Qaoa2Result warm = qaoa2::solve_qaoa2(g, copts);
      if (!same_result(streaming, warm)) {
        add(out, "cache_coherence",
            "hit-serving cache-enabled qaoa2 (" + fmt(warm.cut.value) +
                ") differs from the uncached run (" +
                fmt(streaming.cut.value) + ")");
      }
    } catch (const std::exception& e) {
      add(out, "cache_coherence",
          std::string("cache-enabled qaoa2 threw: ") + e.what());
    }
  }

  check_exact_and_relabel(
      s, opts, streaming.cut,
      [&](const Graph& h) {
        return qaoa2::solve_qaoa2(h, qaoa2_options(s, /*streaming=*/true)).cut;
      },
      out);
}

}  // namespace

double cut_tolerance(const graph::Graph& g) {
  double scale = 1.0;
  for (const graph::Edge& e : g.edges()) scale += std::abs(e.w);
  return 1e-9 * scale;
}

std::vector<Violation> check_scenario(const Scenario& scenario,
                                      const OracleOptions& options) {
  std::vector<Violation> out;
  if (scenario.kind == ProbeKind::kSolver) {
    check_solver_scenario(scenario, options, out);
  } else {
    check_qaoa2_scenario(scenario, options, out);
  }
  return out;
}

std::vector<Violation> check_malformed_spec(const std::string& spec) {
  std::vector<Violation> out;
  // Overlong/deep-nest probes can be thousands of characters; keep the
  // diagnostics readable.
  const std::string shown =
      spec.size() <= 80
          ? spec
          : spec.substr(0, 80) + "...(" + std::to_string(spec.size()) +
                " chars)";
  try {
    const solver::SolverPtr solver =
        solver::SolverRegistry::global().make(spec);
    add(out, "spec_guard",
        "malformed spec '" + shown + "' built solver '" +
            std::string(solver ? solver->name() : "<null>") +
            "' instead of throwing");
  } catch (const std::invalid_argument&) {
    // expected
  } catch (const std::exception& e) {
    add(out, "spec_guard",
        "malformed spec '" + shown + "' threw " + e.what() +
            " instead of std::invalid_argument");
  } catch (...) {
    add(out, "spec_guard",
        "malformed spec '" + shown + "' threw a non-std exception");
  }
  return out;
}

std::string format_violations(const std::vector<Violation>& violations) {
  std::ostringstream os;
  for (const Violation& v : violations) {
    os << "  [" << v.oracle << "] " << v.details << '\n';
  }
  return os.str();
}

}  // namespace qq::fuzz
