#pragma once
// Adversarial scenario generation for the fuzz harness (ROADMAP item 5).
//
// A scenario is one randomized stress case: a graph drawn from a family
// that deliberately includes the pathological corners (empty graphs,
// isolated nodes, zero/negative/duplicate weights, stars, expanders,
// component swarms), plus a random-but-valid solver spec drawn from the
// registry grammar — either solved directly through `solver::Solver` or
// pushed through the whole QAOA^2 pipeline. Everything is a pure function
// of a 64-bit seed, so any failing scenario is reproducible from
// (scenario_seed) alone and shrinkable by the reducer (reducer.hpp).
//
// The oracles that judge a scenario live in oracle.hpp; the campaign
// driver in fuzzer.hpp; serialization of failing cases in case_io.hpp.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "qgraph/graph.hpp"
#include "util/rng.hpp"

namespace qq::fuzz {

/// How a scenario exercises the stack: a direct `Solver::solve` call, or a
/// full QAOA^2 divide-solve-merge run (streaming and recursive).
enum class ProbeKind { kSolver, kQaoa2 };

const char* probe_kind_name(ProbeKind kind) noexcept;

struct Scenario {
  ProbeKind kind = ProbeKind::kSolver;
  graph::Graph graph;
  /// Generator family that produced `graph` ("er", "star", "zero_weights",
  /// ...). Informational: coverage accounting and reproducer comments.
  std::string family;
  /// Registry spec solved against the graph (the sub-solver spec for
  /// kQaoa2 probes). Always valid by construction.
  std::string spec;
  /// kQaoa2 only: the deeper-level and merge-role specs (merge is never a
  /// combinator, matching the driver's contract).
  std::string deeper_spec;
  std::string merge_spec;
  /// kQaoa2 only: simulated device qubit budget.
  int max_qubits = 6;
  /// Seed handed to the solve itself (SolveRequest::seed / Qaoa2Options::seed).
  std::uint64_t solve_seed = 0;
  /// The generator seed this scenario was derived from (0 when hand-built).
  std::uint64_t scenario_seed = 0;
};

/// Graph family labels `random_graph` draws from, in drawing order.
std::vector<std::string_view> graph_families();

/// Copy every edge of `blob` into `g` shifted by `offset` node ids — the
/// disjoint-union step shared by the many-components families here and the
/// disconnected test fixtures (tests/test_graphs.hpp).
void add_disjoint_blob(graph::Graph& g, const graph::Graph& blob,
                       graph::NodeId offset);

/// Build one graph of the named family. `max_nodes` caps the node count
/// (families with structural minimums, e.g. grids, may use fewer but never
/// more, except the deliberately large "component_swarm" family, which
/// ignores the cap and is only drawn for cheap classical pipeline probes).
/// Throws std::invalid_argument for an unknown family name.
graph::Graph make_family_graph(std::string_view family, util::Rng& rng,
                               graph::NodeId max_nodes);

/// Draw a family, then a graph from it. Sets `family_out`.
graph::Graph random_graph(util::Rng& rng, graph::NodeId max_nodes,
                          std::string& family_out);

/// Random valid leaf spec ("anneal:sweeps=23", "qaoa:p=1,iters=7", ...).
/// `qubit_cap` is the largest graph the spec will be asked to solve —
/// simulator-backed and exponential backends are only drawn when it is
/// small enough for them to stay cheap.
std::string random_leaf_spec(util::Rng& rng, graph::NodeId qubit_cap);

/// Random valid spec: a leaf, or (when allowed) a `best:` combinator of
/// 2-3 children, occasionally nested one level deep.
std::string random_spec(util::Rng& rng, graph::NodeId qubit_cap,
                        bool allow_combinator = true);

/// A spec that is malformed by construction: `SolverRegistry::make` must
/// throw std::invalid_argument for it (the fuzzer's "must throw, never
/// crash" probe). Drawn from a curated template set plus dynamically built
/// overlong and deeply nested specs.
std::string random_malformed_spec(util::Rng& rng);

/// The full curated malformed-template list (exposed so the test suite can
/// pin that every template really throws).
std::vector<std::string> malformed_spec_templates();

/// Derive the complete scenario for one campaign seed: probe kind, graph
/// family, graph, spec(s), and solve seed. Pure function of `seed`.
Scenario make_scenario(std::uint64_t seed);

}  // namespace qq::fuzz
