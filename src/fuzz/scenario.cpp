#include "fuzz/scenario.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "qgraph/generators.hpp"

namespace qq::fuzz {

namespace {

using graph::Graph;
using graph::NodeId;
using util::Rng;

NodeId pick_n(Rng& rng, NodeId lo, NodeId hi) {
  if (hi < lo) hi = lo;
  return static_cast<NodeId>(util::uniform_int(rng, lo, hi));
}

/// Erdős–Rényi shape with every weight produced by `weight(rng)`; used by
/// the signed/zero/extreme weight families (the library generator only
/// draws unit or U[0,1) weights).
template <typename WeightFn>
Graph er_shape(Rng& rng, NodeId n, double p, WeightFn weight) {
  Graph g(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      if (util::bernoulli(rng, p)) g.add_edge(u, v, weight(rng));
    }
  }
  return g;
}

Graph make_many_components(Rng& rng, NodeId max_nodes) {
  const NodeId budget = std::max<NodeId>(max_nodes, 4);
  Graph g(budget);
  NodeId next = 0;
  while (next < budget) {
    const NodeId blob_n = std::min<NodeId>(pick_n(rng, 1, 5), budget - next);
    if (blob_n >= 2) {
      add_disjoint_blob(g, graph::erdos_renyi(blob_n, 0.8, rng), next);
    }
    // blob_n == 1 leaves an isolated node — deliberate.
    next = static_cast<NodeId>(next + blob_n);
  }
  return g;
}

/// Hundreds of tiny components — the "thousands-of-components" stressor
/// scaled to a per-scenario time budget. Only drawn for cheap classical
/// QAOA^2 probes (see make_scenario).
Graph make_component_swarm(Rng& rng) {
  const NodeId components = pick_n(rng, 120, 320);
  Graph g(static_cast<NodeId>(components * 3));
  for (NodeId c = 0; c < components; ++c) {
    const NodeId base = static_cast<NodeId>(3 * c);
    switch (util::uniform_int(rng, 0, 2)) {
      case 0:  // triangle
        g.add_edge(base, base + 1, 1.0);
        g.add_edge(base + 1, base + 2, 1.0);
        g.add_edge(base, base + 2, 1.0);
        break;
      case 1:  // path of 3
        g.add_edge(base, base + 1, util::uniform(rng, -1.0, 1.0));
        g.add_edge(base + 1, base + 2, util::uniform(rng, -1.0, 1.0));
        break;
      default:  // one edge + one isolated node
        g.add_edge(base, base + 1, 1.0);
        break;
    }
  }
  return g;
}

Graph make_isolated_flanked(Rng& rng, NodeId max_nodes) {
  // An ER blob surrounded by isolated nodes on both id ends, so solvers
  // see leading AND trailing zero-degree vertices.
  const NodeId blob = pick_n(rng, 2, std::max<NodeId>(2, max_nodes - 2));
  const NodeId lead = pick_n(rng, 0, 2);
  const NodeId tail = pick_n(rng, 0, 2);
  Graph g(static_cast<NodeId>(blob + lead + tail));
  add_disjoint_blob(g, graph::erdos_renyi(blob, 0.6, rng), lead);
  return g;
}

Graph make_duplicate_edges(Rng& rng, NodeId max_nodes) {
  // Re-adds existing edges (Graph accumulates weights); some re-additions
  // cancel the original weight to exactly 0.
  const NodeId n = pick_n(rng, 3, max_nodes);
  Graph g = graph::erdos_renyi(n, 0.4, rng);
  const std::vector<graph::Edge> snapshot = g.edges();
  for (const graph::Edge& e : snapshot) {
    const int roll = util::uniform_int(rng, 0, 3);
    if (roll == 0) {
      g.add_edge(e.u, e.v, e.w);  // doubled weight
    } else if (roll == 1) {
      g.add_edge(e.u, e.v, -e.w);  // cancels to a zero-weight edge
    }
  }
  return g;
}

struct Family {
  std::string_view name;
  Graph (*make)(Rng&, NodeId);
};

constexpr double kExtremeWeights[] = {1e-12, -1e-12, 1e9, -1e9, 0.0, 1.0};

const Family kFamilies[] = {
    {"empty", [](Rng&, NodeId) { return Graph(0); }},
    {"single", [](Rng&, NodeId) { return Graph(1); }},
    {"isolated",
     [](Rng& rng, NodeId max_nodes) {
       return Graph(pick_n(rng, 2, max_nodes));
     }},
    {"single_edge",
     [](Rng& rng, NodeId) {
       Graph g(pick_n(rng, 2, 4));
       constexpr double kWeights[] = {1.0, 2.5, -1.0, 0.0, 1e9, 1e-9};
       g.add_edge(0, 1, kWeights[util::uniform_int(rng, 0, 5)]);
       return g;
     }},
    {"er",
     [](Rng& rng, NodeId max_nodes) {
       return graph::erdos_renyi(pick_n(rng, 2, max_nodes),
                                 util::uniform(rng, 0.05, 0.7), rng);
     }},
    {"er_weighted",
     [](Rng& rng, NodeId max_nodes) {
       return graph::erdos_renyi(pick_n(rng, 2, max_nodes),
                                 util::uniform(rng, 0.1, 0.6), rng,
                                 graph::WeightMode::kUniform01);
     }},
    {"er_dense",
     [](Rng& rng, NodeId max_nodes) {
       return graph::erdos_renyi(pick_n(rng, 3, std::min<NodeId>(10, max_nodes)),
                                 0.95, rng);
     }},
    {"power_law",
     [](Rng& rng, NodeId max_nodes) {
       const NodeId n = pick_n(rng, 3, max_nodes);
       const NodeId m = pick_n(rng, 1, std::min<NodeId>(3, n - 1));
       return graph::barabasi_albert(n, m, rng);
     }},
    {"star",
     [](Rng& rng, NodeId max_nodes) {
       return graph::star_graph(pick_n(rng, 2, max_nodes));
     }},
    {"expander",
     [](Rng& rng, NodeId max_nodes) {
       // 3-regular random graph; the pairing model needs n*d even.
       NodeId n = pick_n(rng, 4, std::max<NodeId>(4, max_nodes));
       if (n % 2 != 0) --n;
       return graph::random_regular(n, 3, rng);
     }},
    {"grid",
     [](Rng& rng, NodeId max_nodes) {
       const NodeId rows = pick_n(rng, 2, 4);
       const NodeId cols =
           pick_n(rng, 2, std::max<NodeId>(2, max_nodes / rows));
       return graph::grid_2d(rows, cols);
     }},
    {"ring",
     [](Rng& rng, NodeId max_nodes) {
       return graph::cycle_graph(pick_n(rng, 3, max_nodes));
     }},
    {"path",
     [](Rng& rng, NodeId max_nodes) {
       return graph::path_graph(pick_n(rng, 2, max_nodes));
     }},
    {"complete",
     [](Rng& rng, NodeId max_nodes) {
       return graph::complete_graph(
           pick_n(rng, 3, std::min<NodeId>(10, max_nodes)));
     }},
    {"planted",
     [](Rng& rng, NodeId max_nodes) {
       const NodeId blocks = pick_n(rng, 2, 3);
       const NodeId block_size =
           pick_n(rng, 2, std::max<NodeId>(2, max_nodes / blocks));
       return graph::planted_partition(blocks, block_size, 0.85, 0.08, rng);
     }},
    {"many_components",
     [](Rng& rng, NodeId max_nodes) {
       return make_many_components(rng, max_nodes);
     }},
    {"zero_weights",
     [](Rng& rng, NodeId max_nodes) {
       return er_shape(rng, pick_n(rng, 2, max_nodes), 0.4,
                       [](Rng&) { return 0.0; });
     }},
    {"negative",
     [](Rng& rng, NodeId max_nodes) {
       return er_shape(rng, pick_n(rng, 2, max_nodes), 0.4,
                       [](Rng& r) { return -util::uniform(r, 0.1, 1.0); });
     }},
    {"mixed_sign",
     [](Rng& rng, NodeId max_nodes) {
       return er_shape(rng, pick_n(rng, 2, max_nodes), 0.4,
                       [](Rng& r) { return util::uniform(r, -1.0, 1.0); });
     }},
    {"duplicate_edges",
     [](Rng& rng, NodeId max_nodes) {
       return make_duplicate_edges(rng, max_nodes);
     }},
    {"extreme_weights",
     [](Rng& rng, NodeId max_nodes) {
       return er_shape(rng, pick_n(rng, 2, max_nodes), 0.4, [](Rng& r) {
         return kExtremeWeights[util::uniform_int(r, 0, 5)];
       });
     }},
    {"isolated_flanked",
     [](Rng& rng, NodeId max_nodes) {
       return make_isolated_flanked(rng, max_nodes);
     }},
};

constexpr std::size_t kNumFamilies = std::size(kFamilies);

}  // namespace

const char* probe_kind_name(ProbeKind kind) noexcept {
  return kind == ProbeKind::kSolver ? "solver" : "qaoa2";
}

std::vector<std::string_view> graph_families() {
  std::vector<std::string_view> out;
  out.reserve(kNumFamilies + 1);
  for (const Family& f : kFamilies) out.push_back(f.name);
  out.push_back("component_swarm");
  return out;
}

void add_disjoint_blob(graph::Graph& g, const graph::Graph& blob,
                       graph::NodeId offset) {
  for (const graph::Edge& e : blob.edges()) {
    g.add_edge(static_cast<NodeId>(e.u + offset),
               static_cast<NodeId>(e.v + offset), e.w);
  }
}

graph::Graph make_family_graph(std::string_view family, util::Rng& rng,
                               graph::NodeId max_nodes) {
  if (family == "component_swarm") return make_component_swarm(rng);
  for (const Family& f : kFamilies) {
    if (f.name == family) return f.make(rng, std::max<NodeId>(max_nodes, 2));
  }
  throw std::invalid_argument("make_family_graph: unknown family '" +
                              std::string(family) + "'");
}

graph::Graph random_graph(util::Rng& rng, graph::NodeId max_nodes,
                          std::string& family_out) {
  const Family& f =
      kFamilies[util::uniform_u64(rng, kNumFamilies)];
  family_out = std::string(f.name);
  return f.make(rng, std::max<NodeId>(max_nodes, 2));
}

std::string random_leaf_spec(util::Rng& rng, graph::NodeId qubit_cap) {
  // Cheap classical backends are always available; simulator-backed and
  // exponential ones only below their cost cliffs.
  std::vector<int> choices = {0, 1, 2, 3, 4};  // greedy..gw
  if (qubit_cap <= 16) choices.push_back(5);   // exact
  if (qubit_cap <= 14) choices.push_back(6);   // qaoa
  if (qubit_cap <= 10) choices.push_back(7);   // rqaoa
  switch (choices[util::uniform_u64(rng, choices.size())]) {
    case 0:
      return "greedy";
    case 1:
      return util::bernoulli(rng, 0.5)
                 ? std::string("random")
                 : "random:p=0." + std::to_string(util::uniform_int(rng, 1, 9));
    case 2:
      return "local-search:restarts=" +
             std::to_string(util::uniform_int(rng, 1, 4));
    case 3: {
      std::string spec =
          "anneal:sweeps=" + std::to_string(util::uniform_int(rng, 5, 50));
      if (util::bernoulli(rng, 0.3)) {
        spec += ",t0=" + std::to_string(util::uniform_int(rng, 1, 4)) +
                ".0,t1=0.05";
      }
      return spec;
    }
    case 4: {
      std::string spec =
          "gw:rounds=" + std::to_string(util::uniform_int(rng, 2, 12));
      if (util::bernoulli(rng, 0.3)) {
        spec += ",sweeps=" + std::to_string(util::uniform_int(rng, 20, 60));
      }
      return spec;
    }
    case 5:
      return "exact";
    case 6: {
      std::string spec = "qaoa:p=" + std::to_string(util::uniform_int(rng, 1, 2)) +
                         ",iters=" + std::to_string(util::uniform_int(rng, 4, 12));
      if (util::bernoulli(rng, 0.4)) {
        spec += ",shots=" + std::to_string(util::uniform_int(rng, 32, 128));
      }
      if (util::bernoulli(rng, 0.2)) {
        spec += ",topk=" + std::to_string(util::uniform_int(rng, 1, 4));
      }
      return spec;
    }
    default:
      return "rqaoa:p=1,iters=" + std::to_string(util::uniform_int(rng, 4, 8)) +
             ",cutoff=" + std::to_string(util::uniform_int(rng, 3, 6));
  }
}

std::string random_spec(util::Rng& rng, graph::NodeId qubit_cap,
                        bool allow_combinator) {
  if (!allow_combinator || !util::bernoulli(rng, 0.25)) {
    return random_leaf_spec(rng, qubit_cap);
  }
  const int children = util::uniform_int(rng, 2, 3);
  std::string spec = "best:";
  for (int c = 0; c < children; ++c) {
    if (c > 0) spec += '|';
    // Nest one combinator level deep occasionally; the registry's depth
    // guard is probed separately with malformed specs.
    if (c == 0 && util::bernoulli(rng, 0.15)) {
      spec += "best:" + random_leaf_spec(rng, qubit_cap) + '|' +
              random_leaf_spec(rng, qubit_cap);
    } else {
      spec += random_leaf_spec(rng, qubit_cap);
    }
  }
  return spec;
}

std::vector<std::string> malformed_spec_templates() {
  return {
      "",
      "   ",
      "\t",
      ":",
      ":p=1",
      "|",
      "=",
      ",",
      "nope",
      "QAOA",
      "Best:qaoa|gw",
      "qaoa gw",
      "qaoa:p",
      "qaoa:p=",
      "qaoa:=1",
      "qaoa:p=x",
      "qaoa:p=1.5",
      "qaoa:zzz=1",
      "qaoa:p=1,p=2",
      "qaoa:,",
      "qaoa:p=1,,iters=2",
      "qaoa:p=1;iters=2",
      "qaoa:p==1",
      "qaoa:p=99999999999999999999",
      "qaoa:shots=4294967296",
      "greedy:x=1",
      "greedy:p=1",
      "exact:p=1",
      "random:p=zzz",
      "gw:rounds=1e",
      "gw:rounds=1.5x",
      "gw:tol=",
      "anneal:sweeps=--3",
      "local-search:restarts=ten",
      "best:|",
      "best:qaoa|",
      "best:|gw",
      "best:qaoa||gw",
      "best:nope",
      "best:qaoa|nope",
      "best:qaoa|gw|",
      "best:qaoa|gw:bogus=1",
      "best:greedy:p=1|gw",
  };
}

std::string random_malformed_spec(util::Rng& rng) {
  const std::vector<std::string> templates = malformed_spec_templates();
  // Two dynamic classes beyond the templates: overlong specs (length
  // guard) and deeply nested combinators (depth guard).
  const std::uint64_t roll = util::uniform_u64(rng, templates.size() + 2);
  if (roll == templates.size()) {
    return std::string(
        static_cast<std::size_t>(util::uniform_int(rng, 5000, 9000)), 'a');
  }
  if (roll == templates.size() + 1) {
    std::string spec;
    const int depth = util::uniform_int(rng, 24, 200);
    for (int i = 0; i < depth; ++i) spec += "best:";
    spec += "greedy";
    return spec;
  }
  return templates[static_cast<std::size_t>(roll)];
}

Scenario make_scenario(std::uint64_t seed) {
  // Decorrelate sequential campaign seeds before drawing.
  util::SplitMix64 mix(seed ^ 0xf022a11a5ce4a71fULL);
  util::Rng rng(mix.next());

  Scenario s;
  s.scenario_seed = seed;
  s.solve_seed = util::uniform_u64(rng, 1 << 20);
  s.kind = util::bernoulli(rng, 0.6) ? ProbeKind::kSolver : ProbeKind::kQaoa2;

  if (s.kind == ProbeKind::kSolver) {
    // Direct solver probes stay at n <= 16 so the exact oracle bounds every
    // heuristic and simulator backends stay cheap.
    s.graph = random_graph(rng, 16, s.family);
    s.spec = random_spec(rng, s.graph.num_nodes());
    return s;
  }

  s.max_qubits = util::uniform_int(rng, 2, 8);
  if (util::bernoulli(rng, 0.08)) {
    // Component swarm: hundreds of tiny components through the streaming
    // pipeline, restricted to cheap classical specs.
    s.family = "component_swarm";
    s.graph = make_component_swarm(rng);
    s.spec = "greedy";
    s.deeper_spec = "local-search:restarts=1";
    s.merge_spec = "greedy";
    return s;
  }
  s.graph = random_graph(rng, 28, s.family);
  // Roles solve graphs of at most max_qubits nodes (sub parts and coarse
  // graphs all fit the device), so the role spec cost is capped by it.
  s.spec = random_spec(rng, static_cast<graph::NodeId>(s.max_qubits));
  s.deeper_spec =
      random_spec(rng, static_cast<graph::NodeId>(s.max_qubits));
  s.merge_spec = random_leaf_spec(
      rng, static_cast<graph::NodeId>(s.max_qubits));  // never a combinator
  return s;
}

}  // namespace qq::fuzz
