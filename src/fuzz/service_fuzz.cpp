#include "fuzz/service_fuzz.hpp"

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <optional>
#include <ostream>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "fuzz/scenario.hpp"
#include "maxcut/cut.hpp"
#include "qgraph/graph.hpp"
#include "service/service.hpp"
#include "util/rng.hpp"

namespace qq::fuzz {
namespace {

using service::RejectReason;
using service::RequestStatus;

/// What a request MUST do, decided at generation time. Requests flagged
/// invalid/infeasible are rejected before admission, so their outcome is
/// deterministic; everything else ("valid") may complete, cancel, or be
/// rejected as overloaded — but never fail and never reject as invalid.
enum class Expect { kValid, kInvalid, kInfeasible };

struct StormRequest {
  Expect expect = Expect::kValid;
  graph::Graph graph;  ///< copy kept for the recount oracle
  service::RequestTicket ticket;
};

class StormViolations {
 public:
  StormViolations(std::uint64_t seed, std::vector<Violation>& out)
      : seed_(seed), out_(out) {}

  void add(const char* oracle, const std::string& details) {
    out_.push_back(
        {oracle, "storm seed " + std::to_string(seed_) + ": " + details});
  }

 private:
  std::uint64_t seed_;
  std::vector<Violation>& out_;
};

service::ServiceOptions random_service_options(util::Rng& rng) {
  service::ServiceOptions options;
  options.engine.quantum_slots = util::uniform_int(rng, 1, 2);
  options.engine.classical_slots = util::uniform_int(rng, 1, 3);
  const int num_classes = util::uniform_int(rng, 1, 3);
  for (int i = 0; i < num_classes; ++i) {
    service::WorkloadClassConfig cls;
    cls.name = "tenant" + std::to_string(i);
    cls.weight = util::uniform(rng, 0.5, 4.0);
    cls.max_in_flight = static_cast<std::size_t>(util::uniform_int(rng, 2, 8));
    options.classes.push_back(std::move(cls));
  }
  options.max_in_flight_requests =
      static_cast<std::size_t>(util::uniform_int(rng, 4, 24));
  return options;
}

StormRequest random_request(util::Rng& rng,
                            const service::ServiceOptions& options,
                            service::ServiceRequest& out) {
  StormRequest meta;
  std::string family;
  if (util::bernoulli(rng, 0.4)) {
    // Decomposed: the graph exceeds the qubit budget, so the request
    // streams through the QAOA^2 pipeline as a task chain.
    out.max_qubits = util::uniform_int(rng, 4, 8);
    out.graph = random_graph(rng, 20, family);
    const auto cap = static_cast<graph::NodeId>(out.max_qubits);
    out.solver_spec = random_spec(rng, cap);
    out.deeper_spec = random_leaf_spec(rng, cap);
    out.merge_spec = random_leaf_spec(rng, cap);
  } else {
    out.graph = random_graph(rng, 12, family);
    out.solver_spec = random_spec(rng, out.graph.num_nodes());
  }
  out.workload_class =
      options.classes[static_cast<std::size_t>(util::uniform_int(
                          rng, 0, static_cast<int>(options.classes.size()) - 1))]
          .name;
  out.seed = rng();

  // Deterministically-rejected corners. Class resolution runs before spec
  // validation, which runs before the deadline check — mirror that
  // precedence when several corners are drawn at once.
  if (util::bernoulli(rng, 0.10)) {
    out.solver_spec = random_malformed_spec(rng);
    meta.expect = Expect::kInvalid;
  }
  if (util::bernoulli(rng, 0.08)) {
    out.workload_class = "no-such-tenant";
    meta.expect = Expect::kInvalid;
  }
  if (meta.expect == Expect::kValid && util::bernoulli(rng, 0.05)) {
    out.deadline_seconds = -util::uniform(rng, 0.0, 1.0);
    meta.expect = Expect::kInfeasible;
  } else if (util::bernoulli(rng, 0.15)) {
    // A live (possibly very tight) deadline: trips mid-flight or not at
    // all; either way the request settles as cancelled or completed.
    out.deadline_seconds = util::uniform(rng, 0.002, 0.05);
  }
  if (util::bernoulli(rng, 0.15)) {
    out.eval_budget = util::uniform_int(rng, 1, 60);
  }
  meta.graph = out.graph;
  return meta;
}

void check_completed_cut(const StormRequest& req, StormViolations& v) {
  const service::RequestOutcome out = req.ticket.outcome();
  const auto n = static_cast<std::size_t>(req.graph.num_nodes());
  if (out.cut.assignment.size() != n) {
    v.add("recount", "assignment size " +
                         std::to_string(out.cut.assignment.size()) +
                         " != " + std::to_string(n) + " nodes");
    return;
  }
  for (int side : out.cut.assignment) {
    if (side != 0 && side != 1) {
      v.add("recount", "assignment entry " + std::to_string(side) +
                           " is not 0/1");
      return;
    }
  }
  const double recount = maxcut::cut_value(req.graph, out.cut.assignment);
  if (std::abs(recount - out.cut.value) > cut_tolerance(req.graph)) {
    std::ostringstream oss;
    oss << "reported cut " << out.cut.value << " != recount " << recount;
    v.add("recount", oss.str());
  }
}

void run_storm(std::uint64_t seed, ServiceFuzzReport& report) {
  util::Rng rng(seed);
  StormViolations v(seed, report.violations);

  const service::ServiceOptions options = random_service_options(rng);
  service::SolveService svc(options);

  const int n_requests = util::uniform_int(rng, 8, 24);
  std::vector<StormRequest> requests;
  requests.reserve(static_cast<std::size_t>(n_requests));
  for (int i = 0; i < n_requests; ++i) {
    service::ServiceRequest sreq;
    StormRequest meta = random_request(rng, options, sreq);
    meta.ticket = svc.submit(std::move(sreq));
    requests.push_back(std::move(meta));
  }
  report.requests_submitted += n_requests;

  // Concurrent cancellation storm: a second thread cancels a random subset
  // at random times — while queued, mid-solve, or after settling — and
  // polls stats() to exercise the service/engine lock ordering live.
  std::atomic<int> cancels{0};
  const std::uint64_t cancel_seed = seed ^ 0x5e1ec7ed5eedULL;
  std::thread canceller([&svc, &requests, &cancels, cancel_seed] {
    util::Rng crng(cancel_seed);
    for (const StormRequest& req : requests) {
      if (!util::bernoulli(crng, 0.35)) continue;
      std::this_thread::sleep_for(
          std::chrono::microseconds(util::uniform_int(crng, 0, 1500)));
      if (svc.cancel(req.ticket)) cancels.fetch_add(1);
      if (util::bernoulli(crng, 0.25)) (void)svc.stats();
    }
  });
  // Meanwhile the submitting thread donates itself to the engine for a
  // random sample of the requests, like an interactive caller would.
  for (const StormRequest& req : requests) {
    if (util::bernoulli(rng, 0.3)) svc.wait(req.ticket);
  }
  canceller.join();
  report.cancels_issued += cancels.load();

  // Random teardown: graceful drain or cancel-everything shutdown.
  const bool hard_stop = util::bernoulli(rng, 0.25);
  if (hard_stop) {
    svc.shutdown_now();
  } else {
    svc.drain();
  }

  // ---- oracles -----------------------------------------------------------
  std::size_t completed = 0;
  std::size_t cancelled = 0;
  std::size_t rejected = 0;
  for (const StormRequest& req : requests) {
    const RequestStatus first = req.ticket.status();
    if (first != req.ticket.status()) {
      v.add("terminal_once", "status changed after settling");
      continue;
    }
    switch (first) {
      case RequestStatus::kPending:
        v.add("terminal_once", "request still pending after drain");
        continue;
      case RequestStatus::kCompleted: ++completed; break;
      case RequestStatus::kCancelled: ++cancelled; break;
      case RequestStatus::kRejected: ++rejected; break;
      case RequestStatus::kFailed:
        v.add("no_failure",
              "request failed: " + req.ticket.outcome().error);
        continue;
    }
    const service::RequestOutcome out = req.ticket.outcome();
    switch (req.expect) {
      case Expect::kInvalid:
        if (first != RequestStatus::kRejected ||
            out.reject_reason != RejectReason::kInvalidRequest) {
          v.add("typed_reject", "invalid request settled as " +
                                    std::string(request_status_name(first)));
        }
        break;
      case Expect::kInfeasible:
        if (first != RequestStatus::kRejected ||
            out.reject_reason != RejectReason::kDeadlineInfeasible) {
          v.add("typed_reject", "infeasible deadline settled as " +
                                    std::string(request_status_name(first)));
        }
        break;
      case Expect::kValid:
        if (first == RequestStatus::kRejected &&
            out.reject_reason != RejectReason::kOverloaded) {
          v.add("typed_reject",
                std::string("valid request rejected as ") +
                    reject_reason_name(out.reject_reason));
        }
        if (first == RequestStatus::kCompleted) check_completed_cut(req, v);
        break;
    }
  }

  const service::ServiceStats stats = svc.stats();
  if (stats.in_flight != 0) {
    v.add("stats_balance",
          std::to_string(stats.in_flight) + " requests still in flight");
  }
  if (stats.completed != completed || stats.cancelled != cancelled ||
      stats.rejected != rejected || stats.failed != 0) {
    std::ostringstream oss;
    oss << "service counters (" << stats.completed << "/" << stats.cancelled
        << "/" << stats.rejected << "/" << stats.failed
        << " completed/cancelled/rejected/failed) != ticket tallies ("
        << completed << "/" << cancelled << "/" << rejected << "/0)";
    v.add("stats_balance", oss.str());
  }
  std::size_t class_completed = 0;
  std::size_t class_cancelled = 0;
  for (const service::ClassLoad& cls : stats.classes) {
    class_completed += cls.completed;
    class_cancelled += cls.cancelled;
  }
  if (class_completed != completed || class_cancelled != cancelled) {
    v.add("stats_balance", "per-class counters do not sum to the totals");
  }
  // Engine-side balance: every task either ran or was cancelled, and the
  // drained engine holds no ready or in-flight residue.
  const sched::EngineStats& eng = stats.engine;
  if (eng.completed + eng.cancelled != eng.submitted) {
    std::ostringstream oss;
    oss << "engine submitted " << eng.submitted << " != completed "
        << eng.completed << " + cancelled " << eng.cancelled;
    v.add("stats_balance", oss.str());
  }
  if (eng.ready_quantum != 0 || eng.ready_classical != 0 ||
      eng.inflight_quantum != 0 || eng.inflight_classical != 0) {
    v.add("stats_balance", "engine gauges non-zero after drain");
  }
}

}  // namespace

ServiceFuzzReport run_service_fuzz(const ServiceFuzzOptions& options,
                                   std::ostream* log) {
  ServiceFuzzReport report;
  const auto start = std::chrono::steady_clock::now();
  const auto elapsed = [&start] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  };
  for (int i = 0; i < options.storms; ++i) {
    if (options.time_budget_seconds > 0.0 &&
        elapsed() > options.time_budget_seconds) {
      report.time_exhausted = true;
      break;
    }
    const std::uint64_t seed = options.seed_begin + static_cast<std::uint64_t>(i);
    const std::size_t before = report.violations.size();
    run_storm(seed, report);
    ++report.storms_run;
    if (log != nullptr &&
        (options.verbose || report.violations.size() != before)) {
      *log << "storm " << seed << ": "
           << (report.violations.size() == before ? "clean" : "VIOLATIONS")
           << '\n';
      for (std::size_t j = before; j < report.violations.size(); ++j) {
        *log << "  [" << report.violations[j].oracle << "] "
             << report.violations[j].details << '\n';
      }
    }
  }
  report.wall_seconds = elapsed();
  return report;
}

std::string summarize_service_report(const ServiceFuzzReport& report) {
  std::ostringstream oss;
  oss << "service fuzz: " << report.storms_run << " storm(s), "
      << report.requests_submitted << " request(s), " << report.cancels_issued
      << " cancel(s) landed, " << report.violations.size()
      << " violation(s) in " << report.wall_seconds << " s";
  if (report.time_exhausted) oss << " (time budget exhausted)";
  oss << '\n';
  return oss.str();
}

}  // namespace qq::fuzz
