#include "fuzz/reducer.hpp"

#include <algorithm>
#include <numeric>
#include <string>
#include <vector>

namespace qq::fuzz {

namespace {

using graph::Graph;
using graph::NodeId;

/// Induced subgraph over the kept node ids (renumbered densely).
Graph keep_nodes(const Graph& g, const std::vector<NodeId>& kept) {
  return g.induced(kept).graph;
}

/// Same node count, only the edges whose index is outside [lo, hi).
Graph drop_edge_range(const Graph& g, std::size_t lo, std::size_t hi) {
  Graph out(g.num_nodes());
  const auto& edges = g.edges();
  for (std::size_t i = 0; i < edges.size(); ++i) {
    if (i >= lo && i < hi) continue;
    out.add_edge(edges[i].u, edges[i].v, edges[i].w);
  }
  return out;
}

/// Children of a `best:` spec, or empty when the spec is a leaf. Mirrors
/// the registry's flat top-level '|' split.
std::vector<std::string> combinator_children(const std::string& spec) {
  const std::string head = "best:";
  if (spec.rfind(head, 0) != 0) return {};
  std::vector<std::string> children;
  std::string rest = spec.substr(head.size());
  while (true) {
    const std::size_t bar = rest.find('|');
    children.push_back(rest.substr(0, bar));
    if (bar == std::string::npos) break;
    rest = rest.substr(bar + 1);
  }
  return children;
}

class Reducer {
 public:
  Reducer(const Scenario& failing, const ReduceOptions& options)
      : options_(options), best_(failing) {}

  ReducedCase run() {
    ReducedCase out;
    best_violations_ = check(best_);
    if (best_violations_.empty()) {
      out.scenario = best_;
      out.checks = checks_;
      return out;  // not actually failing; nothing to do
    }
    // Alternate the moves until a full pass changes nothing or the check
    // budget runs out.
    bool changed = true;
    while (changed && checks_ < options_.max_checks) {
      changed = false;
      changed |= shrink_nodes();
      changed |= shrink_edges();
      changed |= shrink_spec();
      changed |= shrink_qaoa2_knobs();
      if (changed) out.shrunk = true;
    }
    out.scenario = best_;
    out.violations = best_violations_;
    out.checks = checks_;
    return out;
  }

 private:
  std::vector<Violation> check(const Scenario& s) {
    ++checks_;
    return check_scenario(s, options_.oracle);
  }

  /// Adopt `candidate` if it still violates any oracle.
  bool try_adopt(Scenario candidate) {
    if (checks_ >= options_.max_checks) return false;
    std::vector<Violation> violations = check(candidate);
    if (violations.empty()) return false;
    best_ = std::move(candidate);
    best_violations_ = std::move(violations);
    return true;
  }

  bool shrink_nodes() {
    bool changed = false;
    // Try dropping [lo, lo+chunk) node ranges, halving the chunk size.
    for (NodeId chunk = best_.graph.num_nodes() / 2; chunk >= 1; chunk /= 2) {
      bool dropped_any = true;
      while (dropped_any && checks_ < options_.max_checks) {
        dropped_any = false;
        const NodeId n = best_.graph.num_nodes();
        if (n <= 1 || chunk > n) break;
        for (NodeId lo = 0; lo + chunk <= n; lo = static_cast<NodeId>(lo + chunk)) {
          std::vector<NodeId> kept;
          for (NodeId u = 0; u < n; ++u) {
            if (u < lo || u >= lo + chunk) kept.push_back(u);
          }
          Scenario candidate = best_;
          candidate.graph = keep_nodes(best_.graph, kept);
          if (try_adopt(std::move(candidate))) {
            changed = dropped_any = true;
            break;  // node ids shifted; restart the scan
          }
          if (checks_ >= options_.max_checks) break;
        }
      }
    }
    return changed;
  }

  bool shrink_edges() {
    bool changed = false;
    for (std::size_t chunk = std::max<std::size_t>(best_.graph.num_edges() / 2, 1);
         chunk >= 1; chunk /= 2) {
      bool dropped_any = true;
      while (dropped_any && checks_ < options_.max_checks) {
        dropped_any = false;
        const std::size_t m = best_.graph.num_edges();
        if (m == 0 || chunk > m) break;
        for (std::size_t lo = 0; lo + chunk <= m; lo += chunk) {
          Scenario candidate = best_;
          candidate.graph = drop_edge_range(best_.graph, lo, lo + chunk);
          if (try_adopt(std::move(candidate))) {
            changed = dropped_any = true;
            break;
          }
          if (checks_ >= options_.max_checks) break;
        }
      }
      if (chunk == 1) break;
    }
    return changed;
  }

  bool shrink_spec() {
    bool changed = false;
    for (const std::string& child : combinator_children(best_.spec)) {
      Scenario candidate = best_;
      candidate.spec = child;
      if (try_adopt(std::move(candidate))) {
        changed = true;
        break;
      }
    }
    if (best_.spec != "greedy") {
      Scenario candidate = best_;
      candidate.spec = "greedy";
      changed |= try_adopt(std::move(candidate));
    }
    return changed;
  }

  bool shrink_qaoa2_knobs() {
    if (best_.kind != ProbeKind::kQaoa2) return false;
    bool changed = false;
    for (const std::string& child : combinator_children(best_.deeper_spec)) {
      Scenario candidate = best_;
      candidate.deeper_spec = child;
      if (try_adopt(std::move(candidate))) {
        changed = true;
        break;
      }
    }
    for (const char* simple : {"greedy"}) {
      if (best_.deeper_spec != simple) {
        Scenario candidate = best_;
        candidate.deeper_spec = simple;
        changed |= try_adopt(std::move(candidate));
      }
      if (best_.merge_spec != simple) {
        Scenario candidate = best_;
        candidate.merge_spec = simple;
        changed |= try_adopt(std::move(candidate));
      }
    }
    while (best_.max_qubits > 2 && checks_ < options_.max_checks) {
      Scenario candidate = best_;
      candidate.max_qubits = best_.max_qubits - 1;
      if (!try_adopt(std::move(candidate))) break;
      changed = true;
    }
    return changed;
  }

  const ReduceOptions& options_;
  Scenario best_;
  std::vector<Violation> best_violations_;
  int checks_ = 0;
};

}  // namespace

ReducedCase reduce(const Scenario& failing, const ReduceOptions& options) {
  return Reducer(failing, options).run();
}

}  // namespace qq::fuzz
