#include "qcircuit/noise.hpp"

#include <stdexcept>

#include "qcircuit/execute.hpp"

namespace qq::circuit {

void NoiseModel::validate() const {
  for (const double p : {depolarizing_1q, depolarizing_2q, amplitude_damping,
                         readout_flip}) {
    if (p < 0.0 || p > 1.0) {
      throw std::invalid_argument(
          "NoiseModel: probabilities must lie in [0, 1]");
    }
  }
}

namespace {

void maybe_pauli(sim::StateVector& sv, int qubit, double probability,
                 util::Rng& rng) {
  if (probability <= 0.0 || !util::bernoulli(rng, probability)) return;
  switch (util::uniform_int(rng, 0, 2)) {
    case 0: sv.apply_x(qubit); break;
    case 1: sv.apply_y(qubit); break;
    default: sv.apply_z(qubit); break;
  }
}

/// Amplitude damping via quantum-trajectory (Monte-Carlo wavefunction)
/// unraveling. Kraus operators for rate gamma:
///   K0 = diag(1, sqrt(1 - gamma)),   K1 = sqrt(gamma) |0><1|.
/// The jump branch K1 fires with its Born probability gamma * P(q = 1);
/// either branch is applied and the state renormalized.
void maybe_damp(sim::StateVector& sv, int qubit, double gamma,
                util::Rng& rng) {
  if (gamma <= 0.0) return;
  const auto& amps = sv.data();
  const sim::BasisState bit = sim::BasisState{1} << qubit;
  double p1 = 0.0;  // population of |1> on this qubit
  for (std::size_t i = 0; i < amps.size(); ++i) {
    if (i & bit) p1 += std::norm(amps[i]);
  }
  const double p_jump = gamma * p1;
  if (p_jump > 0.0 && util::bernoulli(rng, p_jump)) {
    // Jump: |...1...> components collapse onto |...0...>.
    for (std::size_t i = 0; i < amps.size(); ++i) {
      if (i & bit) {
        sv.set_amplitude(i & ~bit, sv.amplitude(i));
        sv.set_amplitude(i, {0.0, 0.0});
      }
    }
  } else if (p1 > 0.0) {
    // No-jump evolution: |1> components shrink by sqrt(1 - gamma).
    const double scale = std::sqrt(1.0 - gamma);
    for (std::size_t i = 0; i < amps.size(); ++i) {
      if (i & bit) sv.set_amplitude(i, sv.amplitude(i) * scale);
    }
  } else {
    return;  // qubit already in |0>: channel acts trivially
  }
  sv.normalize();
}

void apply_gate(sim::StateVector& sv, const Gate& g) {
  switch (g.kind) {
    case GateKind::kH: sv.apply_h(g.q0); break;
    case GateKind::kX: sv.apply_x(g.q0); break;
    case GateKind::kY: sv.apply_y(g.q0); break;
    case GateKind::kZ: sv.apply_z(g.q0); break;
    case GateKind::kRx: sv.apply_rx(g.q0, g.param); break;
    case GateKind::kRy: sv.apply_ry(g.q0, g.param); break;
    case GateKind::kRz: sv.apply_rz(g.q0, g.param); break;
    case GateKind::kPhase: sv.apply_phase(g.q0, g.param); break;
    case GateKind::kCx: sv.apply_cx(g.q0, g.q1); break;
    case GateKind::kCz: sv.apply_cz(g.q0, g.q1); break;
    case GateKind::kSwap: sv.apply_swap(g.q0, g.q1); break;
    case GateKind::kRzz: sv.apply_rzz(g.q0, g.q1, g.param); break;
    case GateKind::kBarrier: break;
  }
}

}  // namespace

sim::StateVector run_trajectory(const Circuit& qc, const NoiseModel& noise,
                                util::Rng& rng) {
  noise.validate();
  sim::StateVector sv(qc.num_qubits());
  for (const Gate& g : qc.gates()) {
    apply_gate(sv, g);
    if (g.kind == GateKind::kBarrier) continue;
    if (is_two_qubit(g.kind)) {
      maybe_pauli(sv, g.q0, noise.depolarizing_2q, rng);
      maybe_pauli(sv, g.q1, noise.depolarizing_2q, rng);
      maybe_damp(sv, g.q0, noise.amplitude_damping, rng);
      maybe_damp(sv, g.q1, noise.amplitude_damping, rng);
    } else {
      maybe_pauli(sv, g.q0, noise.depolarizing_1q, rng);
      maybe_damp(sv, g.q0, noise.amplitude_damping, rng);
    }
  }
  return sv;
}

std::vector<sim::BasisState> sample_noisy(const Circuit& qc,
                                          const NoiseModel& noise,
                                          const NoisySamplingOptions& options,
                                          util::Rng& rng) {
  noise.validate();
  if (options.shots < 1 || options.trajectories < 1) {
    throw std::invalid_argument("sample_noisy: shots/trajectories must be >= 1");
  }
  const bool gate_noise = noise.gate_noise();
  const int trajectories = gate_noise ? options.trajectories : 1;
  const int base = options.shots / trajectories;
  const int remainder = options.shots % trajectories;

  std::vector<sim::BasisState> shots;
  shots.reserve(static_cast<std::size_t>(options.shots));
  for (int t = 0; t < trajectories; ++t) {
    const int count = base + (t < remainder ? 1 : 0);
    if (count == 0) continue;
    const sim::StateVector sv = gate_noise ? run_trajectory(qc, noise, rng)
                                           : run(qc);
    auto batch = sim::sample_counts(sv, count, rng);
    shots.insert(shots.end(), batch.begin(), batch.end());
  }
  if (noise.readout_flip > 0.0) {
    const int n = qc.num_qubits();
    for (sim::BasisState& s : shots) {
      for (int q = 0; q < n; ++q) {
        if (util::bernoulli(rng, noise.readout_flip)) {
          s ^= (sim::BasisState{1} << q);
        }
      }
    }
  }
  return shots;
}

double noisy_expectation_diagonal(const Circuit& qc, const NoiseModel& noise,
                                  const std::vector<double>& values,
                                  int trajectories, util::Rng& rng) {
  noise.validate();
  if (trajectories < 1) {
    throw std::invalid_argument(
        "noisy_expectation_diagonal: trajectories must be >= 1");
  }
  if (!noise.gate_noise()) {
    return sim::expectation_diagonal(run(qc), values);
  }
  double sum = 0.0;
  for (int t = 0; t < trajectories; ++t) {
    const sim::StateVector sv = run_trajectory(qc, noise, rng);
    sum += sim::expectation_diagonal(sv, values);
  }
  return sum / trajectories;
}

}  // namespace qq::circuit
