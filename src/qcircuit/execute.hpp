#pragma once
// Circuit execution on the state-vector simulator.

#include "qcircuit/circuit.hpp"
#include "qsim/statevector.hpp"

namespace qq::circuit {

/// Apply every gate of `qc` to `sv` in order (barriers are no-ops at
/// simulation time).
void apply(const Circuit& qc, sim::StateVector& sv);

/// Run `qc` from |0...0> and return the final state.
sim::StateVector run(const Circuit& qc);

}  // namespace qq::circuit
