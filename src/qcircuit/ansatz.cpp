#include "qcircuit/ansatz.hpp"

#include <stdexcept>

namespace qq::circuit {

Circuit qaoa_ansatz(const graph::Graph& g, const QaoaAngles& angles) {
  if (angles.gammas.size() != angles.betas.size()) {
    throw std::invalid_argument("qaoa_ansatz: gamma/beta layer mismatch");
  }
  Circuit qc(g.num_nodes());
  for (int q = 0; q < g.num_nodes(); ++q) qc.h(q);
  for (std::size_t layer = 0; layer < angles.layers(); ++layer) {
    const double gamma = angles.gammas[layer];
    const double beta = angles.betas[layer];
    // e^{-i gamma H_C} = Prod_edges e^{+i gamma w_ij Z_i Z_j / 2} up to a
    // global phase; RZZ(theta) = e^{-i theta Z Z / 2}, so theta = -gamma w.
    for (const graph::Edge& e : g.edges()) {
      qc.rzz(e.u, e.v, -gamma * e.w);
    }
    for (int q = 0; q < g.num_nodes(); ++q) qc.rx(q, 2.0 * beta);
  }
  return qc;
}

QaoaAngles unpack_angles(const std::vector<double>& params) {
  if (params.size() % 2 != 0) {
    throw std::invalid_argument("unpack_angles: parameter count must be even");
  }
  const std::size_t p = params.size() / 2;
  QaoaAngles angles;
  angles.gammas.assign(params.begin(),
                       params.begin() + static_cast<std::ptrdiff_t>(p));
  angles.betas.assign(params.begin() + static_cast<std::ptrdiff_t>(p),
                      params.end());
  return angles;
}

std::vector<double> pack_angles(const QaoaAngles& angles) {
  if (angles.gammas.size() != angles.betas.size()) {
    throw std::invalid_argument("pack_angles: gamma/beta layer mismatch");
  }
  std::vector<double> out;
  out.reserve(angles.gammas.size() * 2);
  out.insert(out.end(), angles.gammas.begin(), angles.gammas.end());
  out.insert(out.end(), angles.betas.begin(), angles.betas.end());
  return out;
}

}  // namespace qq::circuit
