#pragma once
// Stochastic NISQ noise model via quantum trajectories.
//
// The paper targets NISQ devices ("current NISQ devices feature a modest
// number of qubits and useful compute time is limited due to decoherence",
// §1) but evaluates noiselessly on Aer. This module closes that gap for
// the library: depolarizing errors are injected as randomly sampled Pauli
// operators after each gate, and readout errors as independent bit flips
// on the sampled strings. Averaging over trajectories converges to the
// corresponding Pauli channel without ever materializing a density matrix
// (memory stays at one state vector).

#include <cstdint>
#include <vector>

#include "qcircuit/circuit.hpp"
#include "qsim/measure.hpp"
#include "qsim/statevector.hpp"
#include "util/rng.hpp"

namespace qq::circuit {

struct NoiseModel {
  /// Probability of a uniformly random Pauli (X, Y or Z) on the target
  /// after each single-qubit gate.
  double depolarizing_1q = 0.0;
  /// Probability, per qubit, of a random Pauli after each two-qubit gate.
  double depolarizing_2q = 0.0;
  /// Amplitude-damping rate per qubit per gate (T1-style decay toward
  /// |0>), realized as proper non-unitary Kraus trajectories: the jump
  /// branch is taken with its Born probability and the state renormalized.
  double amplitude_damping = 0.0;
  /// Independent classical bit-flip probability per measured qubit.
  double readout_flip = 0.0;

  bool enabled() const noexcept {
    return depolarizing_1q > 0.0 || depolarizing_2q > 0.0 ||
           amplitude_damping > 0.0 || readout_flip > 0.0;
  }
  bool gate_noise() const noexcept {
    return depolarizing_1q > 0.0 || depolarizing_2q > 0.0 ||
           amplitude_damping > 0.0;
  }
  void validate() const;
};

/// One noisy trajectory: run `qc` from |0..0> with Pauli errors sampled
/// after every gate.
sim::StateVector run_trajectory(const Circuit& qc, const NoiseModel& noise,
                                util::Rng& rng);

struct NoisySamplingOptions {
  int shots = 4096;       ///< total measured bit strings (paper's count)
  int trajectories = 16;  ///< independent noisy circuit executions
};

/// Sample `shots` bit strings spread across `trajectories` noisy runs,
/// with readout flips applied. Noise-free models take a single-trajectory
/// fast path.
std::vector<sim::BasisState> sample_noisy(const Circuit& qc,
                                          const NoiseModel& noise,
                                          const NoisySamplingOptions& options,
                                          util::Rng& rng);

/// Trajectory-averaged expectation of a diagonal observable (e.g. the cut
/// table): mean over trajectories of <psi_t|diag|psi_t>.
double noisy_expectation_diagonal(const Circuit& qc, const NoiseModel& noise,
                                  const std::vector<double>& values,
                                  int trajectories, util::Rng& rng);

}  // namespace qq::circuit
