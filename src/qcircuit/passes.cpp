#include "qcircuit/passes.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <vector>

namespace qq::circuit {

namespace {

constexpr int kBlocked = -2;  // barrier sentinel for last-op tracking

bool same_pair_unordered(const Gate& a, const Gate& b) {
  return (a.q0 == b.q0 && a.q1 == b.q1) || (a.q0 == b.q1 && a.q1 == b.q0);
}

bool self_inverse(GateKind kind) {
  switch (kind) {
    case GateKind::kH:
    case GateKind::kX:
    case GateKind::kY:
    case GateKind::kZ:
    case GateKind::kCx:
    case GateKind::kCz:
    case GateKind::kSwap:
      return true;
    default:
      return false;
  }
}

/// For CX the (control, target) order is semantic; for CZ/SWAP/RZZ the pair
/// is symmetric.
bool cancels_with(const Gate& a, const Gate& b) {
  if (a.kind != b.kind || !self_inverse(a.kind)) return false;
  if (a.kind == GateKind::kCx) return a.q0 == b.q0 && a.q1 == b.q1;
  if (is_two_qubit(a.kind)) return same_pair_unordered(a, b);
  return a.q0 == b.q0;
}

}  // namespace

Circuit merge_rotations(const Circuit& qc) {
  Circuit out(qc.num_qubits());
  std::vector<Gate> gates;  // staged output
  std::vector<int> last(static_cast<std::size_t>(qc.num_qubits()), -1);

  for (const Gate& g : qc.gates()) {
    if (g.kind == GateKind::kBarrier) {
      gates.push_back(g);
      std::fill(last.begin(), last.end(), kBlocked);
      continue;
    }
    const auto q0 = static_cast<std::size_t>(g.q0);
    if (is_rotation(g.kind)) {
      const bool two = is_two_qubit(g.kind);
      const int prev0 = last[q0];
      const int prev1 = two ? last[static_cast<std::size_t>(g.q1)] : prev0;
      if (prev0 >= 0 && prev0 == prev1) {
        Gate& candidate = gates[static_cast<std::size_t>(prev0)];
        const bool fuses =
            candidate.kind == g.kind &&
            (two ? same_pair_unordered(candidate, g) : candidate.q0 == g.q0);
        if (fuses) {
          candidate.param += g.param;
          continue;
        }
      }
    }
    const int idx = static_cast<int>(gates.size());
    gates.push_back(g);
    last[q0] = idx;
    if (is_two_qubit(g.kind)) last[static_cast<std::size_t>(g.q1)] = idx;
  }
  for (const Gate& g : gates) out.append(g);
  return out;
}

Circuit drop_identities(const Circuit& qc, double tol) {
  Circuit out(qc.num_qubits());
  constexpr double two_pi = 2.0 * std::numbers::pi;
  for (const Gate& g : qc.gates()) {
    if (is_rotation(g.kind)) {
      const double wrapped = std::remainder(g.param, two_pi);
      // Angles that are exact multiples of 2*pi act as +/- identity (global
      // phase only), which pass contracts allow dropping.
      if (std::abs(wrapped) <= tol) continue;
    }
    out.append(g);
  }
  return out;
}

Circuit cancel_pairs(const Circuit& qc) {
  std::vector<Gate> gates(qc.gates().begin(), qc.gates().end());
  bool changed = true;
  while (changed) {
    changed = false;
    std::vector<char> dead(gates.size(), 0);
    std::vector<int> last(static_cast<std::size_t>(qc.num_qubits()), -1);
    for (std::size_t i = 0; i < gates.size(); ++i) {
      const Gate& g = gates[i];
      if (g.kind == GateKind::kBarrier) {
        std::fill(last.begin(), last.end(), kBlocked);
        continue;
      }
      const auto q0 = static_cast<std::size_t>(g.q0);
      const bool two = is_two_qubit(g.kind);
      const int prev0 = last[q0];
      const int prev1 = two ? last[static_cast<std::size_t>(g.q1)] : prev0;
      if (prev0 >= 0 && prev0 == prev1 &&
          cancels_with(gates[static_cast<std::size_t>(prev0)], g)) {
        dead[static_cast<std::size_t>(prev0)] = 1;
        dead[i] = 1;
        changed = true;
        // Invalidate tracking for the touched qubits; a conservative reset
        // (next pass re-resolves chains such as H H H H).
        last[q0] = -1;
        if (two) last[static_cast<std::size_t>(g.q1)] = -1;
        continue;
      }
      last[q0] = static_cast<int>(i);
      if (two) last[static_cast<std::size_t>(g.q1)] = static_cast<int>(i);
    }
    if (changed) {
      std::vector<Gate> kept;
      kept.reserve(gates.size());
      for (std::size_t i = 0; i < gates.size(); ++i) {
        if (!dead[i]) kept.push_back(gates[i]);
      }
      gates.swap(kept);
    }
  }
  Circuit out(qc.num_qubits());
  for (const Gate& g : gates) out.append(g);
  return out;
}

Circuit schedule_commuting_rzz(const Circuit& qc) {
  Circuit out(qc.num_qubits());
  const auto& gates = qc.gates();
  std::size_t i = 0;
  while (i < gates.size()) {
    if (gates[i].kind != GateKind::kRzz) {
      out.append(gates[i]);
      ++i;
      continue;
    }
    // Maximal run of consecutive RZZ gates: mutually commuting (all
    // diagonal in Z), so any ordering is equivalent. Greedy edge colouring
    // packs disjoint pairs into common layers.
    std::size_t j = i;
    while (j < gates.size() && gates[j].kind == GateKind::kRzz) ++j;
    std::vector<int> color(j - i, -1);
    std::vector<std::vector<char>> used;  // per colour: qubit occupancy
    int max_color = -1;
    for (std::size_t k = i; k < j; ++k) {
      const auto a = static_cast<std::size_t>(gates[k].q0);
      const auto b = static_cast<std::size_t>(gates[k].q1);
      int c = 0;
      for (;; ++c) {
        if (c > max_color) {
          used.emplace_back(static_cast<std::size_t>(qc.num_qubits()), 0);
          max_color = c;
        }
        if (!used[static_cast<std::size_t>(c)][a] &&
            !used[static_cast<std::size_t>(c)][b]) {
          break;
        }
      }
      used[static_cast<std::size_t>(c)][a] = 1;
      used[static_cast<std::size_t>(c)][b] = 1;
      color[k - i] = c;
    }
    for (int c = 0; c <= max_color; ++c) {
      for (std::size_t k = i; k < j; ++k) {
        if (color[k - i] == c) out.append(gates[k]);
      }
    }
    i = j;
  }
  return out;
}

Circuit transpile_to_cx_basis(const Circuit& qc) {
  Circuit out(qc.num_qubits());
  for (const Gate& g : qc.gates()) {
    switch (g.kind) {
      case GateKind::kRzz:
        out.cx(g.q0, g.q1);
        out.rz(g.q1, g.param);
        out.cx(g.q0, g.q1);
        break;
      case GateKind::kCz:
        out.h(g.q1);
        out.cx(g.q0, g.q1);
        out.h(g.q1);
        break;
      case GateKind::kSwap:
        out.cx(g.q0, g.q1);
        out.cx(g.q1, g.q0);
        out.cx(g.q0, g.q1);
        break;
      default:
        out.append(g);
        break;
    }
  }
  return out;
}

Circuit synthesize(const Circuit& qc) {
  return schedule_commuting_rzz(cancel_pairs(drop_identities(merge_rotations(qc))));
}

}  // namespace qq::circuit
