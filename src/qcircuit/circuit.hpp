#pragma once
// Gate-level circuit intermediate representation.
//
// This IR plus the pass pipeline in passes.hpp stands in for the Classiq
// synthesis engine the paper uses (§3.5): a high-level combinatorial model
// (the QAOA ansatz over a graph) is lowered to gates and then optimized for
// depth and two-qubit-gate count.

#include <cstdint>
#include <string>
#include <vector>

namespace qq::circuit {

enum class GateKind : std::uint8_t {
  kH,
  kX,
  kY,
  kZ,
  kRx,
  kRy,
  kRz,
  kPhase,
  kCx,
  kCz,
  kSwap,
  kRzz,
  kBarrier,  ///< scheduling fence across all qubits
};

bool is_two_qubit(GateKind kind) noexcept;
bool is_rotation(GateKind kind) noexcept;
const char* gate_name(GateKind kind) noexcept;

struct Gate {
  GateKind kind;
  int q0 = -1;
  int q1 = -1;       ///< -1 for single-qubit gates
  double param = 0;  ///< rotation angle where applicable

  bool operator==(const Gate& other) const noexcept;
};

struct CircuitStats {
  std::size_t total_gates = 0;
  std::size_t two_qubit_gates = 0;
  std::size_t rotations = 0;
  int depth = 0;      ///< greedy ASAP layering, barriers respected
  int depth_2q = 0;   ///< depth counting only two-qubit layers
};

class Circuit {
 public:
  explicit Circuit(int num_qubits);

  int num_qubits() const noexcept { return num_qubits_; }
  const std::vector<Gate>& gates() const noexcept { return gates_; }
  std::size_t size() const noexcept { return gates_.size(); }

  // Fluent emitters; all validate qubit indices.
  Circuit& h(int q);
  Circuit& x(int q);
  Circuit& y(int q);
  Circuit& z(int q);
  Circuit& rx(int q, double theta);
  Circuit& ry(int q, double theta);
  Circuit& rz(int q, double theta);
  Circuit& phase(int q, double phi);
  Circuit& cx(int control, int target);
  Circuit& cz(int a, int b);
  Circuit& swap(int a, int b);
  Circuit& rzz(int a, int b, double theta);
  Circuit& barrier();

  void append(const Gate& gate);
  void append(const Circuit& other);

  CircuitStats stats() const;
  /// Human-readable one-gate-per-line dump (tests, debugging).
  std::string str() const;

 private:
  void check_qubit(int q) const;
  int num_qubits_;
  std::vector<Gate> gates_;
};

}  // namespace qq::circuit
