#include "qcircuit/circuit.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace qq::circuit {

bool is_two_qubit(GateKind kind) noexcept {
  switch (kind) {
    case GateKind::kCx:
    case GateKind::kCz:
    case GateKind::kSwap:
    case GateKind::kRzz:
      return true;
    default:
      return false;
  }
}

bool is_rotation(GateKind kind) noexcept {
  switch (kind) {
    case GateKind::kRx:
    case GateKind::kRy:
    case GateKind::kRz:
    case GateKind::kPhase:
    case GateKind::kRzz:
      return true;
    default:
      return false;
  }
}

const char* gate_name(GateKind kind) noexcept {
  switch (kind) {
    case GateKind::kH: return "h";
    case GateKind::kX: return "x";
    case GateKind::kY: return "y";
    case GateKind::kZ: return "z";
    case GateKind::kRx: return "rx";
    case GateKind::kRy: return "ry";
    case GateKind::kRz: return "rz";
    case GateKind::kPhase: return "p";
    case GateKind::kCx: return "cx";
    case GateKind::kCz: return "cz";
    case GateKind::kSwap: return "swap";
    case GateKind::kRzz: return "rzz";
    case GateKind::kBarrier: return "barrier";
  }
  return "?";
}

bool Gate::operator==(const Gate& other) const noexcept {
  return kind == other.kind && q0 == other.q0 && q1 == other.q1 &&
         param == other.param;
}

Circuit::Circuit(int num_qubits) : num_qubits_(num_qubits) {
  if (num_qubits < 0) {
    throw std::invalid_argument("Circuit: negative qubit count");
  }
}

void Circuit::check_qubit(int q) const {
  if (q < 0 || q >= num_qubits_) {
    throw std::out_of_range("Circuit: qubit index out of range");
  }
}

Circuit& Circuit::h(int q) { append({GateKind::kH, q}); return *this; }
Circuit& Circuit::x(int q) { append({GateKind::kX, q}); return *this; }
Circuit& Circuit::y(int q) { append({GateKind::kY, q}); return *this; }
Circuit& Circuit::z(int q) { append({GateKind::kZ, q}); return *this; }
Circuit& Circuit::rx(int q, double theta) {
  append({GateKind::kRx, q, -1, theta});
  return *this;
}
Circuit& Circuit::ry(int q, double theta) {
  append({GateKind::kRy, q, -1, theta});
  return *this;
}
Circuit& Circuit::rz(int q, double theta) {
  append({GateKind::kRz, q, -1, theta});
  return *this;
}
Circuit& Circuit::phase(int q, double phi) {
  append({GateKind::kPhase, q, -1, phi});
  return *this;
}
Circuit& Circuit::cx(int control, int target) {
  append({GateKind::kCx, control, target});
  return *this;
}
Circuit& Circuit::cz(int a, int b) {
  append({GateKind::kCz, a, b});
  return *this;
}
Circuit& Circuit::swap(int a, int b) {
  append({GateKind::kSwap, a, b});
  return *this;
}
Circuit& Circuit::rzz(int a, int b, double theta) {
  append({GateKind::kRzz, a, b, theta});
  return *this;
}
Circuit& Circuit::barrier() {
  gates_.push_back({GateKind::kBarrier, -1, -1, 0.0});
  return *this;
}

void Circuit::append(const Gate& gate) {
  if (gate.kind == GateKind::kBarrier) {
    gates_.push_back(gate);
    return;
  }
  check_qubit(gate.q0);
  if (is_two_qubit(gate.kind)) {
    check_qubit(gate.q1);
    if (gate.q0 == gate.q1) {
      throw std::invalid_argument("Circuit: two-qubit gate on one qubit");
    }
  }
  gates_.push_back(gate);
}

void Circuit::append(const Circuit& other) {
  if (other.num_qubits_ > num_qubits_) {
    throw std::invalid_argument("Circuit::append: qubit count mismatch");
  }
  for (const Gate& g : other.gates_) append(g);
}

CircuitStats Circuit::stats() const {
  CircuitStats s;
  std::vector<int> busy(static_cast<std::size_t>(num_qubits_), 0);
  std::vector<int> busy_2q(static_cast<std::size_t>(num_qubits_), 0);
  int barrier_floor = 0;
  int barrier_floor_2q = 0;
  for (const Gate& g : gates_) {
    if (g.kind == GateKind::kBarrier) {
      for (int level : busy) barrier_floor = std::max(barrier_floor, level);
      for (int level : busy_2q) {
        barrier_floor_2q = std::max(barrier_floor_2q, level);
      }
      for (auto& level : busy) level = barrier_floor;
      for (auto& level : busy_2q) level = barrier_floor_2q;
      continue;
    }
    ++s.total_gates;
    if (is_rotation(g.kind)) ++s.rotations;
    const auto q0 = static_cast<std::size_t>(g.q0);
    if (is_two_qubit(g.kind)) {
      ++s.two_qubit_gates;
      const auto q1 = static_cast<std::size_t>(g.q1);
      const int layer = std::max(busy[q0], busy[q1]) + 1;
      busy[q0] = busy[q1] = layer;
      const int layer2 = std::max(busy_2q[q0], busy_2q[q1]) + 1;
      busy_2q[q0] = busy_2q[q1] = layer2;
    } else {
      busy[q0] += 1;
    }
  }
  for (int level : busy) s.depth = std::max(s.depth, level);
  for (int level : busy_2q) s.depth_2q = std::max(s.depth_2q, level);
  return s;
}

std::string Circuit::str() const {
  std::ostringstream os;
  for (const Gate& g : gates_) {
    os << gate_name(g.kind);
    if (g.kind != GateKind::kBarrier) {
      os << " q" << g.q0;
      if (g.q1 >= 0) os << ", q" << g.q1;
      if (is_rotation(g.kind)) os << " (" << g.param << ')';
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace qq::circuit
