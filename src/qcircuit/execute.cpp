#include "qcircuit/execute.hpp"

#include <stdexcept>

namespace qq::circuit {

void apply(const Circuit& qc, sim::StateVector& sv) {
  if (qc.num_qubits() != sv.num_qubits()) {
    throw std::invalid_argument("circuit::apply: qubit count mismatch");
  }
  for (const Gate& g : qc.gates()) {
    switch (g.kind) {
      case GateKind::kH: sv.apply_h(g.q0); break;
      case GateKind::kX: sv.apply_x(g.q0); break;
      case GateKind::kY: sv.apply_y(g.q0); break;
      case GateKind::kZ: sv.apply_z(g.q0); break;
      case GateKind::kRx: sv.apply_rx(g.q0, g.param); break;
      case GateKind::kRy: sv.apply_ry(g.q0, g.param); break;
      case GateKind::kRz: sv.apply_rz(g.q0, g.param); break;
      case GateKind::kPhase: sv.apply_phase(g.q0, g.param); break;
      case GateKind::kCx: sv.apply_cx(g.q0, g.q1); break;
      case GateKind::kCz: sv.apply_cz(g.q0, g.q1); break;
      case GateKind::kSwap: sv.apply_swap(g.q0, g.q1); break;
      case GateKind::kRzz: sv.apply_rzz(g.q0, g.q1, g.param); break;
      case GateKind::kBarrier: break;
    }
  }
}

sim::StateVector run(const Circuit& qc) {
  sim::StateVector sv(qc.num_qubits());
  apply(qc, sv);
  return sv;
}

}  // namespace qq::circuit
