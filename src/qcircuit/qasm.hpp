#pragma once
// OpenQASM 2.0 interchange — the bridge from the simulated workflow to real
// quantum devices (the paper's abstract highlights "the adequacy of the
// workflow in the preparation of real quantum devices": a QAOA^2 sub-graph
// circuit exported here can be submitted to any QASM-speaking backend).
//
// Export targets the qelib1 gate set; RZZ is lowered to CX·RZ·CX. The
// importer understands exactly the dialect the exporter writes (plus
// whitespace/comment freedom) — enough for round-trip tests and for
// reading back externally edited circuits.

#include <iosfwd>
#include <string>

#include "qcircuit/circuit.hpp"

namespace qq::circuit {

struct QasmOptions {
  /// Append `measure q -> c;` for all qubits.
  bool include_measurement = true;
};

std::string to_qasm(const Circuit& qc, const QasmOptions& options = {});
void write_qasm(const Circuit& qc, std::ostream& os,
                const QasmOptions& options = {});

/// Parse the dialect produced by to_qasm (h/x/y/z/rx/ry/rz/p/cx/cz/swap,
/// barrier, measure ignored). Throws std::runtime_error on anything else.
Circuit from_qasm(const std::string& text);

}  // namespace qq::circuit
