#pragma once
// High-level model -> circuit lowering for the QAOA MaxCut ansatz (Eq. 2):
//
//   |psi_p(beta, gamma)> = Prod_{l=1..p} e^{-i beta_l H_M} e^{-i gamma_l H_C} |+>^n
//
// with H_C = 1/2 Σ w_ij (1 - Z_i Z_j) and H_M = Σ_i X_i. The cost layer is
// emitted as one RZZ per edge (e^{+i gamma w Z_i Z_j / 2} up to global
// phase), the mixer as RX(2 beta) per qubit.

#include <vector>

#include "qcircuit/circuit.hpp"
#include "qgraph/graph.hpp"

namespace qq::circuit {

struct QaoaAngles {
  std::vector<double> gammas;  ///< cost-layer angles, one per layer
  std::vector<double> betas;   ///< mixer-layer angles, one per layer

  std::size_t layers() const { return gammas.size(); }
};

/// Naive lowering: Hadamard wall, then per layer the edges in graph order
/// followed by the mixer. This is the "manual construction" the paper says
/// Classiq improves upon; feed it to `synthesize` (passes.hpp) for the
/// optimized version.
Circuit qaoa_ansatz(const graph::Graph& g, const QaoaAngles& angles);

/// Pack/unpack between the optimizer's flat parameter vector
/// [gamma_1..gamma_p, beta_1..beta_p] and QaoaAngles.
QaoaAngles unpack_angles(const std::vector<double>& params);
std::vector<double> pack_angles(const QaoaAngles& angles);

}  // namespace qq::circuit
