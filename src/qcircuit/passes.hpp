#pragma once
// Circuit optimization passes — the synthesis-engine substitute (paper
// §3.5: "the synthesis engine can optimize over circuit depth, number of
// qubits, two-qubit gates ...").
//
// Pipeline contract: every pass preserves the unitary up to global phase;
// the executor tests assert distribution-level equivalence on random
// circuits.

#include "qcircuit/circuit.hpp"

namespace qq::circuit {

/// Fuse runs of equal-kind rotations acting on the same qubit (pair) with
/// no interposed gate on those qubits: RZ(a) RZ(b) -> RZ(a+b), likewise RX,
/// RY, Phase and RZZ on the identical unordered pair.
Circuit merge_rotations(const Circuit& qc);

/// Drop rotations whose angle is a multiple of 2*pi (within tol) and other
/// exact identities produced by merging.
Circuit drop_identities(const Circuit& qc, double tol = 1e-12);

/// Cancel adjacent self-inverse pairs on the same qubits with nothing in
/// between: H H, X X, Y Y, Z Z, CX CX, CZ CZ, SWAP SWAP.
Circuit cancel_pairs(const Circuit& qc);

/// Reorder each run of mutually commuting RZZ gates (a QAOA cost layer) by
/// greedy edge colouring so gates on disjoint qubit pairs land in the same
/// layer; reduces depth without changing the unitary (diagonal gates
/// commute).
Circuit schedule_commuting_rzz(const Circuit& qc);

/// Lower to a {CX, 1q} hardware basis: RZZ(t) -> CX RZ(t) CX,
/// CZ -> H CX H, SWAP -> 3 CX.
Circuit transpile_to_cx_basis(const Circuit& qc);

/// The full "synthesis engine": merge -> drop -> cancel -> schedule.
Circuit synthesize(const Circuit& qc);

}  // namespace qq::circuit
