#include "qcircuit/qasm.hpp"

#include <cctype>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace qq::circuit {

void write_qasm(const Circuit& qc, std::ostream& os,
                const QasmOptions& options) {
  os << "OPENQASM 2.0;\n";
  os << "include \"qelib1.inc\";\n";
  os << "qreg q[" << qc.num_qubits() << "];\n";
  if (options.include_measurement) {
    os << "creg c[" << qc.num_qubits() << "];\n";
  }
  os << std::setprecision(17);
  for (const Gate& g : qc.gates()) {
    switch (g.kind) {
      case GateKind::kH: os << "h q[" << g.q0 << "];\n"; break;
      case GateKind::kX: os << "x q[" << g.q0 << "];\n"; break;
      case GateKind::kY: os << "y q[" << g.q0 << "];\n"; break;
      case GateKind::kZ: os << "z q[" << g.q0 << "];\n"; break;
      case GateKind::kRx:
        os << "rx(" << g.param << ") q[" << g.q0 << "];\n";
        break;
      case GateKind::kRy:
        os << "ry(" << g.param << ") q[" << g.q0 << "];\n";
        break;
      case GateKind::kRz:
        os << "rz(" << g.param << ") q[" << g.q0 << "];\n";
        break;
      case GateKind::kPhase:
        os << "p(" << g.param << ") q[" << g.q0 << "];\n";
        break;
      case GateKind::kCx:
        os << "cx q[" << g.q0 << "],q[" << g.q1 << "];\n";
        break;
      case GateKind::kCz:
        os << "cz q[" << g.q0 << "],q[" << g.q1 << "];\n";
        break;
      case GateKind::kSwap:
        os << "swap q[" << g.q0 << "],q[" << g.q1 << "];\n";
        break;
      case GateKind::kRzz:
        // qelib1 has no rzz: canonical CX-conjugated RZ decomposition.
        os << "cx q[" << g.q0 << "],q[" << g.q1 << "];\n";
        os << "rz(" << g.param << ") q[" << g.q1 << "];\n";
        os << "cx q[" << g.q0 << "],q[" << g.q1 << "];\n";
        break;
      case GateKind::kBarrier:
        os << "barrier q;\n";
        break;
    }
  }
  if (options.include_measurement) {
    os << "measure q -> c;\n";
  }
}

std::string to_qasm(const Circuit& qc, const QasmOptions& options) {
  std::ostringstream os;
  write_qasm(qc, os, options);
  return os.str();
}

namespace {

struct Parser {
  std::string text;
  std::size_t pos = 0;

  void skip_space_and_comments() {
    while (pos < text.size()) {
      if (std::isspace(static_cast<unsigned char>(text[pos]))) {
        ++pos;
      } else if (text.compare(pos, 2, "//") == 0) {
        while (pos < text.size() && text[pos] != '\n') ++pos;
      } else {
        break;
      }
    }
  }

  bool done() {
    skip_space_and_comments();
    return pos >= text.size();
  }

  /// Read up to the next ';' as one statement (QASM statements are
  /// semicolon-terminated).
  std::string next_statement() {
    skip_space_and_comments();
    const std::size_t start = pos;
    while (pos < text.size() && text[pos] != ';') ++pos;
    if (pos >= text.size()) {
      throw std::runtime_error("from_qasm: unterminated statement");
    }
    std::string stmt = text.substr(start, pos - start);
    ++pos;  // consume ';'
    return stmt;
  }
};

std::string trimmed(const std::string& s) {
  std::size_t a = 0, b = s.size();
  while (a < b && std::isspace(static_cast<unsigned char>(s[a]))) ++a;
  while (b > a && std::isspace(static_cast<unsigned char>(s[b - 1]))) --b;
  return s.substr(a, b - a);
}

/// Parse "q[3]" -> 3.
int parse_qubit_ref(const std::string& token) {
  const auto open = token.find('[');
  const auto close = token.find(']');
  if (open == std::string::npos || close == std::string::npos ||
      close < open) {
    throw std::runtime_error("from_qasm: bad qubit reference '" + token + "'");
  }
  return std::stoi(token.substr(open + 1, close - open - 1));
}

}  // namespace

Circuit from_qasm(const std::string& text) {
  Parser parser{text};
  int num_qubits = -1;
  std::vector<std::string> statements;
  while (!parser.done()) statements.push_back(parser.next_statement());

  // First pass: find the qreg declaration.
  for (const auto& raw : statements) {
    const std::string stmt = trimmed(raw);
    if (stmt.rfind("qreg", 0) == 0) {
      num_qubits = parse_qubit_ref(stmt);
      break;
    }
  }
  if (num_qubits < 0) {
    throw std::runtime_error("from_qasm: missing qreg declaration");
  }
  Circuit qc(num_qubits);

  for (const auto& raw : statements) {
    const std::string stmt = trimmed(raw);
    if (stmt.empty() || stmt.rfind("OPENQASM", 0) == 0 ||
        stmt.rfind("include", 0) == 0 || stmt.rfind("qreg", 0) == 0 ||
        stmt.rfind("creg", 0) == 0 || stmt.rfind("measure", 0) == 0) {
      continue;
    }
    if (stmt.rfind("barrier", 0) == 0) {
      qc.barrier();
      continue;
    }
    // Gate name, optional "(param)", operand list.
    std::size_t i = 0;
    while (i < stmt.size() &&
           (std::isalnum(static_cast<unsigned char>(stmt[i])) ||
            stmt[i] == '_')) {
      ++i;
    }
    const std::string name = stmt.substr(0, i);
    double param = 0.0;
    if (i < stmt.size() && stmt[i] == '(') {
      const auto close = stmt.find(')', i);
      if (close == std::string::npos) {
        throw std::runtime_error("from_qasm: unclosed parameter in '" + stmt +
                                 "'");
      }
      param = std::stod(stmt.substr(i + 1, close - i - 1));
      i = close + 1;
    }
    // Operands: comma-separated qubit refs.
    std::vector<int> qubits;
    std::string rest = stmt.substr(i);
    std::stringstream ss(rest);
    std::string token;
    while (std::getline(ss, token, ',')) {
      token = trimmed(token);
      if (!token.empty()) qubits.push_back(parse_qubit_ref(token));
    }
    auto need = [&](std::size_t count) {
      if (qubits.size() != count) {
        throw std::runtime_error("from_qasm: wrong operand count in '" + stmt +
                                 "'");
      }
    };
    if (name == "h") { need(1); qc.h(qubits[0]); }
    else if (name == "x") { need(1); qc.x(qubits[0]); }
    else if (name == "y") { need(1); qc.y(qubits[0]); }
    else if (name == "z") { need(1); qc.z(qubits[0]); }
    else if (name == "rx") { need(1); qc.rx(qubits[0], param); }
    else if (name == "ry") { need(1); qc.ry(qubits[0], param); }
    else if (name == "rz") { need(1); qc.rz(qubits[0], param); }
    else if (name == "p" || name == "u1") { need(1); qc.phase(qubits[0], param); }
    else if (name == "cx") { need(2); qc.cx(qubits[0], qubits[1]); }
    else if (name == "cz") { need(2); qc.cz(qubits[0], qubits[1]); }
    else if (name == "swap") { need(2); qc.swap(qubits[0], qubits[1]); }
    else {
      throw std::runtime_error("from_qasm: unsupported gate '" + name + "'");
    }
  }
  return qc;
}

}  // namespace qq::circuit
