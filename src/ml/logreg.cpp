#include "ml/logreg.hpp"

#include <cmath>
#include <numeric>
#include <stdexcept>

#include "util/rng.hpp"
#include "util/stats.hpp"

namespace qq::ml {

namespace {
double sigmoid(double z) { return 1.0 / (1.0 + std::exp(-z)); }
}  // namespace

void LogisticRegression::fit(const std::vector<std::vector<double>>& X,
                             const std::vector<int>& y,
                             const LogRegOptions& options) {
  if (X.empty() || X.size() != y.size()) {
    throw std::invalid_argument("LogisticRegression::fit: bad dataset");
  }
  const std::size_t n = X.size();
  const std::size_t d = X[0].size();
  for (const auto& row : X) {
    if (row.size() != d) {
      throw std::invalid_argument("LogisticRegression::fit: ragged rows");
    }
  }

  // Per-feature standardization (stored for inference).
  mean_.assign(d, 0.0);
  scale_.assign(d, 1.0);
  for (std::size_t j = 0; j < d; ++j) {
    util::RunningStats s;
    for (const auto& row : X) s.add(row[j]);
    mean_[j] = s.mean();
    scale_[j] = s.stddev() > 1e-12 ? s.stddev() : 1.0;
  }
  std::vector<std::vector<double>> Z(n, std::vector<double>(d));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < d; ++j) {
      Z[i][j] = (X[i][j] - mean_[j]) / scale_[j];
    }
  }

  weights_.assign(d, 0.0);
  bias_ = 0.0;
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  util::Rng rng(options.seed ^ 0x109e9ULL);

  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    // Fisher-Yates shuffle for SGD epoch order.
    for (std::size_t i = n; i > 1; --i) {
      std::swap(order[i - 1], order[util::uniform_u64(rng, i)]);
    }
    const double lr =
        options.learning_rate / (1.0 + 0.01 * static_cast<double>(epoch));
    for (const std::size_t i : order) {
      double z = bias_;
      for (std::size_t j = 0; j < d; ++j) z += weights_[j] * Z[i][j];
      const double err = sigmoid(z) - static_cast<double>(y[i]);
      for (std::size_t j = 0; j < d; ++j) {
        weights_[j] -= lr * (err * Z[i][j] + options.l2 * weights_[j]);
      }
      bias_ -= lr * err;
    }
  }
}

std::vector<double> LogisticRegression::standardize(
    const std::vector<double>& x) const {
  if (x.size() != mean_.size()) {
    throw std::invalid_argument("LogisticRegression: feature size mismatch");
  }
  std::vector<double> z(x.size());
  for (std::size_t j = 0; j < x.size(); ++j) {
    z[j] = (x[j] - mean_[j]) / scale_[j];
  }
  return z;
}

double LogisticRegression::predict_proba(const std::vector<double>& x) const {
  if (!trained()) {
    throw std::logic_error("LogisticRegression: predict before fit");
  }
  const auto z = standardize(x);
  double s = bias_;
  for (std::size_t j = 0; j < z.size(); ++j) s += weights_[j] * z[j];
  return sigmoid(s);
}

double LogisticRegression::accuracy(const std::vector<std::vector<double>>& X,
                                    const std::vector<int>& y) const {
  if (X.size() != y.size() || X.empty()) {
    throw std::invalid_argument("LogisticRegression::accuracy: bad dataset");
  }
  std::size_t correct = 0;
  for (std::size_t i = 0; i < X.size(); ++i) {
    if (predict(X[i]) == y[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(X.size());
}

}  // namespace qq::ml
