#pragma once
// k-nearest-neighbour warm start for QAOA angles (paper §2: "with a large
// dataset of QAOA results, a neural network can be trained to predict
// initial parameters for subsequent QAOA simulations" — this is the
// lightweight instance-based variant; it feeds QaoaOptions via the caller).

#include <vector>

namespace qq::ml {

class ParameterKnn {
 public:
  /// Record a solved instance: feature vector and its optimized parameter
  /// vector. All parameter vectors in one store must share a dimension.
  void add(std::vector<double> features, std::vector<double> parameters);

  std::size_t size() const noexcept { return rows_.size(); }

  /// Inverse-distance-weighted average of the parameters of the k nearest
  /// stored instances (features standardized by the store's ranges).
  /// Throws when the store is empty.
  std::vector<double> predict(const std::vector<double>& features,
                              int k = 3) const;

 private:
  struct Row {
    std::vector<double> features;
    std::vector<double> parameters;
  };
  std::vector<Row> rows_;
};

}  // namespace qq::ml
