#include "ml/features.hpp"

#include <algorithm>
#include <cmath>

#include "util/stats.hpp"

namespace qq::ml {

namespace {

/// Global clustering coefficient: 3 * triangles / open-and-closed triads.
double clustering_coefficient(const graph::Graph& g) {
  const graph::NodeId n = g.num_nodes();
  // Count closed triangles via sorted adjacency intersection (u < v < w).
  std::vector<std::vector<graph::NodeId>> adj(static_cast<std::size_t>(n));
  for (graph::NodeId u = 0; u < n; ++u) {
    for (const auto& [v, w] : g.neighbors(u)) {
      (void)w;
      if (v > u) adj[static_cast<std::size_t>(u)].push_back(v);
    }
    std::sort(adj[static_cast<std::size_t>(u)].begin(),
              adj[static_cast<std::size_t>(u)].end());
  }
  std::size_t triangles = 0;
  for (graph::NodeId u = 0; u < n; ++u) {
    const auto& up = adj[static_cast<std::size_t>(u)];
    for (const graph::NodeId v : up) {
      const auto& vp = adj[static_cast<std::size_t>(v)];
      // |up ∩ vp| counts w > v > u closing a triangle.
      std::size_t i = 0, j = 0;
      while (i < up.size() && j < vp.size()) {
        if (up[i] == vp[j]) {
          ++triangles;
          ++i;
          ++j;
        } else if (up[i] < vp[j]) {
          ++i;
        } else {
          ++j;
        }
      }
    }
  }
  std::size_t triads = 0;  // paths of length 2 (ordered centre)
  for (graph::NodeId u = 0; u < n; ++u) {
    const std::size_t d = static_cast<std::size_t>(g.degree(u));
    triads += d * (d - 1) / 2;
  }
  return triads > 0
             ? 3.0 * static_cast<double>(triangles) / static_cast<double>(triads)
             : 0.0;
}

}  // namespace

std::array<double, kNumFeatures> graph_features(const graph::Graph& g) {
  const graph::NodeId n = g.num_nodes();
  const auto m = static_cast<double>(g.num_edges());

  util::RunningStats degree_stats;
  for (graph::NodeId u = 0; u < n; ++u) {
    degree_stats.add(static_cast<double>(g.degree(u)));
  }
  util::RunningStats weight_stats;
  for (const graph::Edge& e : g.edges()) weight_stats.add(e.w);

  std::array<double, kNumFeatures> f{};
  f[0] = static_cast<double>(n);
  f[1] = m;
  f[2] = n > 1 ? 2.0 * m / (static_cast<double>(n) * (n - 1)) : 0.0;
  f[3] = degree_stats.mean();
  f[4] = degree_stats.stddev();
  f[5] = degree_stats.count() ? degree_stats.max() : 0.0;
  f[6] = weight_stats.mean();
  f[7] = weight_stats.stddev();
  f[8] = clustering_coefficient(g);
  f[9] = g.is_weighted() ? 1.0 : 0.0;
  return f;
}

const char* feature_name(std::size_t index) noexcept {
  switch (index) {
    case 0: return "nodes";
    case 1: return "edges";
    case 2: return "density";
    case 3: return "mean_degree";
    case 4: return "degree_std";
    case 5: return "max_degree";
    case 6: return "mean_weight";
    case 7: return "weight_std";
    case 8: return "clustering";
    case 9: return "weighted";
  }
  return "?";
}

}  // namespace qq::ml
