#pragma once
// Persistent knowledge base of QAOA-vs-GW race outcomes.
//
// The paper builds its Fig. 3 "knowledge base about which type of
// parameterization of QAOA is more suitable for a type of graph" in-memory
// per run; §5 envisions "a large dataset of QAOA results" feeding method
// selection and parameter prediction. This module persists that dataset as
// a plain CSV so sweeps accumulate across sessions, and adapts it to the
// logistic selector and the kNN warm start.

#include <iosfwd>
#include <string>
#include <vector>

#include "ml/features.hpp"
#include "ml/knn.hpp"

namespace qq::ml {

struct KbRecord {
  std::array<double, kNumFeatures> features{};
  int layers = 0;          ///< p used by the winning QAOA run
  double rhobeg = 0.0;     ///< COBYLA rhobeg of that run
  double qaoa_value = 0.0; ///< best QAOA cut on the instance
  double gw_value = 0.0;   ///< GW average-of-slicings on the instance
  /// Optimized [gamma..., beta...] of the best QAOA run (2 * layers).
  std::vector<double> parameters;

  bool qaoa_won() const noexcept { return qaoa_value > gw_value; }
};

class KnowledgeBase {
 public:
  void add(KbRecord record);
  std::size_t size() const noexcept { return records_.size(); }
  bool empty() const noexcept { return records_.empty(); }
  const std::vector<KbRecord>& records() const noexcept { return records_; }

  /// Solver-registry spec strings of the two contenders whose races
  /// produced the records (see solver/registry.hpp for the grammar). The
  /// defaults preserve the historical meaning of qaoa_value/gw_value;
  /// builders racing other pairings record theirs here so a persisted
  /// dataset stays self-describing.
  const std::string& quantum_spec() const noexcept { return quantum_spec_; }
  const std::string& classical_spec() const noexcept {
    return classical_spec_;
  }
  void set_solver_specs(std::string quantum_spec, std::string classical_spec);

  /// Labelled dataset for the logistic QAOA-vs-GW selector.
  void to_dataset(std::vector<std::vector<double>>& X,
                  std::vector<int>& y) const;

  /// kNN store over the records with exactly `layers` layers (parameter
  /// vectors must share a dimension).
  ParameterKnn to_parameter_knn(int layers) const;

  // CSV persistence. Format (one record per line):
  //   f0,...,f9,layers,rhobeg,qaoa_value,gw_value,param0,param1,...
  // The solver specs are persisted as a "# solvers: <q> vs <c>" header
  // comment; files without one load with the historical qaoa/gw defaults.
  void save(std::ostream& os) const;
  static KnowledgeBase load(std::istream& is);
  void save_file(const std::string& path) const;
  static KnowledgeBase load_file(const std::string& path);

 private:
  std::vector<KbRecord> records_;
  std::string quantum_spec_ = "qaoa";
  std::string classical_spec_ = "gw";
};

}  // namespace qq::ml
