#pragma once
// Graph feature extraction for the method-selection layer (paper §2 cites
// Moussa et al.'s "to quantum or not to quantum" classifier; §5 lists ML
// selection as the follow-up the presented infrastructure enables).

#include <array>
#include <vector>

#include "qgraph/graph.hpp"

namespace qq::ml {

inline constexpr std::size_t kNumFeatures = 10;

/// Fixed-order numeric feature vector:
///   0: node count
///   1: edge count
///   2: density 2m / (n(n-1))
///   3: mean degree
///   4: degree standard deviation
///   5: max degree
///   6: mean edge weight
///   7: edge-weight standard deviation
///   8: global clustering coefficient (triangle based)
///   9: 1 if weighted else 0
std::array<double, kNumFeatures> graph_features(const graph::Graph& g);

const char* feature_name(std::size_t index) noexcept;

}  // namespace qq::ml
