#pragma once
// From-scratch L2-regularized logistic regression — the "to quantum or not
// to quantum" selector: given graph features, predict whether QAOA will
// beat GW on that sub-graph. Features are standardized internally.

#include <cstdint>
#include <vector>

namespace qq::ml {

struct LogRegOptions {
  int epochs = 500;
  double learning_rate = 0.1;
  double l2 = 1e-3;
  std::uint64_t seed = 0;  ///< shuffling seed
};

class LogisticRegression {
 public:
  /// X: row-major feature rows; y: 0/1 labels.
  void fit(const std::vector<std::vector<double>>& X,
           const std::vector<int>& y, const LogRegOptions& options = {});

  double predict_proba(const std::vector<double>& x) const;
  int predict(const std::vector<double>& x) const {
    return predict_proba(x) >= 0.5 ? 1 : 0;
  }

  /// Fraction of correct predictions on a labelled set.
  double accuracy(const std::vector<std::vector<double>>& X,
                  const std::vector<int>& y) const;

  bool trained() const noexcept { return !weights_.empty(); }
  const std::vector<double>& weights() const noexcept { return weights_; }

 private:
  std::vector<double> standardize(const std::vector<double>& x) const;

  std::vector<double> weights_;
  double bias_ = 0.0;
  std::vector<double> mean_;
  std::vector<double> scale_;
};

}  // namespace qq::ml
