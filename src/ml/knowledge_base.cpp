#include "ml/knowledge_base.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string_view>

namespace qq::ml {

void KnowledgeBase::set_solver_specs(std::string quantum_spec,
                                     std::string classical_spec) {
  // " vs " is the CSV header's delimiter between the two specs, so a spec
  // containing it would silently corrupt the save/load round trip.
  if (quantum_spec.empty() || classical_spec.empty() ||
      quantum_spec.find('\n') != std::string::npos ||
      classical_spec.find('\n') != std::string::npos ||
      quantum_spec.find(" vs ") != std::string::npos ||
      classical_spec.find(" vs ") != std::string::npos) {
    throw std::invalid_argument(
        "KnowledgeBase::set_solver_specs: specs must be non-empty, "
        "single-line strings without \" vs \"");
  }
  quantum_spec_ = std::move(quantum_spec);
  classical_spec_ = std::move(classical_spec);
}

void KnowledgeBase::add(KbRecord record) {
  if (record.parameters.size() !=
      static_cast<std::size_t>(2 * record.layers)) {
    throw std::invalid_argument(
        "KnowledgeBase::add: parameters must have size 2 * layers");
  }
  records_.push_back(std::move(record));
}

void KnowledgeBase::to_dataset(std::vector<std::vector<double>>& X,
                               std::vector<int>& y) const {
  X.clear();
  y.clear();
  X.reserve(records_.size());
  y.reserve(records_.size());
  for (const KbRecord& r : records_) {
    X.emplace_back(r.features.begin(), r.features.end());
    y.push_back(r.qaoa_won() ? 1 : 0);
  }
}

ParameterKnn KnowledgeBase::to_parameter_knn(int layers) const {
  ParameterKnn knn;
  for (const KbRecord& r : records_) {
    if (r.layers != layers) continue;
    knn.add({r.features.begin(), r.features.end()}, r.parameters);
  }
  return knn;
}

void KnowledgeBase::save(std::ostream& os) const {
  os << "# qq knowledge base v1: f0..f" << (kNumFeatures - 1)
     << ",layers,rhobeg,qaoa_value,gw_value,params...\n";
  os << "# solvers: " << quantum_spec_ << " vs " << classical_spec_ << '\n';
  os.precision(17);
  for (const KbRecord& r : records_) {
    for (const double f : r.features) os << f << ',';
    os << r.layers << ',' << r.rhobeg << ',' << r.qaoa_value << ','
       << r.gw_value;
    for (const double p : r.parameters) os << ',' << p;
    os << '\n';
  }
}

KnowledgeBase KnowledgeBase::load(std::istream& is) {
  KnowledgeBase kb;
  std::string line;
  while (std::getline(is, line)) {
    static constexpr std::string_view kSolversTag = "# solvers: ";
    static constexpr std::string_view kVs = " vs ";
    if (line.rfind(kSolversTag, 0) == 0) {
      const std::string body = line.substr(kSolversTag.size());
      const std::size_t vs = body.find(kVs);
      if (vs == std::string::npos || vs == 0 ||
          vs + kVs.size() >= body.size()) {
        throw std::runtime_error(
            "KnowledgeBase::load: malformed '# solvers:' header");
      }
      try {
        kb.set_solver_specs(body.substr(0, vs), body.substr(vs + kVs.size()));
      } catch (const std::invalid_argument& e) {
        // Every other load failure is a runtime_error; a header the setter
        // rejects (e.g. "a vs b vs c") is file corruption, not a usage bug.
        throw std::runtime_error(std::string("KnowledgeBase::load: ") +
                                 e.what());
      }
      continue;
    }
    if (line.empty() || line[0] == '#') continue;
    std::vector<double> cells;
    std::stringstream ss(line);
    std::string token;
    while (std::getline(ss, token, ',')) {
      cells.push_back(std::stod(token));
    }
    if (cells.size() < kNumFeatures + 4) {
      throw std::runtime_error("KnowledgeBase::load: short record");
    }
    KbRecord r;
    for (std::size_t i = 0; i < kNumFeatures; ++i) r.features[i] = cells[i];
    r.layers = static_cast<int>(cells[kNumFeatures]);
    r.rhobeg = cells[kNumFeatures + 1];
    r.qaoa_value = cells[kNumFeatures + 2];
    r.gw_value = cells[kNumFeatures + 3];
    r.parameters.assign(cells.begin() + kNumFeatures + 4, cells.end());
    if (r.parameters.size() != static_cast<std::size_t>(2 * r.layers)) {
      throw std::runtime_error(
          "KnowledgeBase::load: parameter count does not match layers");
    }
    kb.records_.push_back(std::move(r));
  }
  return kb;
}

void KnowledgeBase::save_file(const std::string& path) const {
  std::ofstream os(path);
  if (!os) {
    throw std::runtime_error("KnowledgeBase::save_file: cannot open " + path);
  }
  save(os);
}

KnowledgeBase KnowledgeBase::load_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) {
    throw std::runtime_error("KnowledgeBase::load_file: cannot open " + path);
  }
  return load(is);
}

}  // namespace qq::ml
