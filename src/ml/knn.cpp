#include "ml/knn.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace qq::ml {

void ParameterKnn::add(std::vector<double> features,
                       std::vector<double> parameters) {
  if (!rows_.empty()) {
    if (features.size() != rows_.front().features.size() ||
        parameters.size() != rows_.front().parameters.size()) {
      throw std::invalid_argument("ParameterKnn::add: dimension mismatch");
    }
  }
  rows_.push_back(Row{std::move(features), std::move(parameters)});
}

std::vector<double> ParameterKnn::predict(const std::vector<double>& features,
                                          int k) const {
  if (rows_.empty()) {
    throw std::logic_error("ParameterKnn::predict: empty store");
  }
  if (features.size() != rows_.front().features.size()) {
    throw std::invalid_argument("ParameterKnn::predict: feature mismatch");
  }
  if (k < 1) throw std::invalid_argument("ParameterKnn::predict: k < 1");
  const std::size_t d = features.size();

  // Per-feature range normalization over the store.
  std::vector<double> lo(d, 0.0), hi(d, 0.0);
  for (std::size_t j = 0; j < d; ++j) {
    lo[j] = hi[j] = rows_.front().features[j];
    for (const Row& r : rows_) {
      lo[j] = std::min(lo[j], r.features[j]);
      hi[j] = std::max(hi[j], r.features[j]);
    }
  }
  auto distance = [&](const std::vector<double>& a,
                      const std::vector<double>& b) {
    double sum = 0.0;
    for (std::size_t j = 0; j < d; ++j) {
      const double range = hi[j] - lo[j];
      const double diff = range > 1e-12 ? (a[j] - b[j]) / range : 0.0;
      sum += diff * diff;
    }
    return std::sqrt(sum);
  };

  std::vector<std::pair<double, std::size_t>> ranked;
  ranked.reserve(rows_.size());
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    ranked.emplace_back(distance(features, rows_[i].features), i);
  }
  const std::size_t kk =
      std::min<std::size_t>(static_cast<std::size_t>(k), ranked.size());
  std::partial_sort(ranked.begin(),
                    ranked.begin() + static_cast<std::ptrdiff_t>(kk),
                    ranked.end());

  const std::size_t pdim = rows_.front().parameters.size();
  std::vector<double> out(pdim, 0.0);
  double weight_sum = 0.0;
  for (std::size_t r = 0; r < kk; ++r) {
    const double w = 1.0 / (ranked[r].first + 1e-9);
    weight_sum += w;
    const auto& params = rows_[ranked[r].second].parameters;
    for (std::size_t j = 0; j < pdim; ++j) out[j] += w * params[j];
  }
  for (double& v : out) v /= weight_sum;
  return out;
}

}  // namespace qq::ml
