#include "qsim/measure.hpp"

#include <algorithm>
#include <map>
#include <mutex>
#include <numeric>
#include <stdexcept>

#include "util/thread_pool.hpp"

namespace qq::sim {

std::vector<double> probabilities(const StateVector& sv) {
  const auto& amps = sv.data();
  std::vector<double> probs(amps.size());
  util::parallel_for_chunks(
      0, amps.size(),
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) probs[i] = std::norm(amps[i]);
      },
      1 << 14);
  return probs;
}

BasisState argmax_probability(const StateVector& sv) {
  const auto& amps = sv.data();
  std::size_t best = 0;
  double best_p = std::norm(amps[0]);
  for (std::size_t i = 1; i < amps.size(); ++i) {
    const double p = std::norm(amps[i]);
    if (p > best_p) {
      best_p = p;
      best = i;
    }
  }
  return best;
}

std::vector<std::pair<BasisState, double>> top_k_states(const StateVector& sv,
                                                        int k) {
  if (k < 1) throw std::invalid_argument("top_k_states: k must be >= 1");
  const auto& amps = sv.data();
  const std::size_t kk = std::min<std::size_t>(static_cast<std::size_t>(k),
                                               amps.size());
  std::vector<BasisState> idx(amps.size());
  std::iota(idx.begin(), idx.end(), BasisState{0});
  std::partial_sort(idx.begin(), idx.begin() + static_cast<std::ptrdiff_t>(kk),
                    idx.end(), [&amps](BasisState a, BasisState b) {
                      const double pa = std::norm(amps[a]);
                      const double pb = std::norm(amps[b]);
                      if (pa != pb) return pa > pb;
                      return a < b;
                    });
  std::vector<std::pair<BasisState, double>> out;
  out.reserve(kk);
  for (std::size_t i = 0; i < kk; ++i) {
    out.emplace_back(idx[i], std::norm(amps[idx[i]]));
  }
  return out;
}

std::vector<BasisState> sample_counts(const StateVector& sv, int shots,
                                      util::Rng& rng) {
  if (shots < 0) throw std::invalid_argument("sample_counts: negative shots");
  std::vector<double> cdf = probabilities(sv);
  std::partial_sum(cdf.begin(), cdf.end(), cdf.begin());
  const double total = cdf.back();
  std::vector<BasisState> out;
  out.reserve(static_cast<std::size_t>(shots));
  for (int s = 0; s < shots; ++s) {
    const double r = util::uniform(rng) * total;
    const auto it = std::lower_bound(cdf.begin(), cdf.end(), r);
    out.push_back(static_cast<BasisState>(it - cdf.begin()));
  }
  return out;
}

std::vector<std::pair<BasisState, int>> histogram(
    const std::vector<BasisState>& shots) {
  std::map<BasisState, int> counts;
  for (const BasisState s : shots) ++counts[s];
  std::vector<std::pair<BasisState, int>> out(counts.begin(), counts.end());
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  return out;
}

double expectation_diagonal(const StateVector& sv,
                            const std::vector<double>& values) {
  const auto& amps = sv.data();
  if (values.size() != amps.size()) {
    throw std::invalid_argument("expectation_diagonal: table size mismatch");
  }
  // Chunked parallel reduction with per-chunk partials.
  std::mutex mutex;
  double total = 0.0;
  util::parallel_for_chunks(
      0, amps.size(),
      [&](std::size_t lo, std::size_t hi) {
        double partial = 0.0;
        for (std::size_t i = lo; i < hi; ++i) {
          partial += std::norm(amps[i]) * values[i];
        }
        std::lock_guard<std::mutex> lock(mutex);
        total += partial;
      },
      1 << 14);
  return total;
}

double expectation_z(const StateVector& sv, int q) {
  if (q < 0 || q >= sv.num_qubits()) {
    throw std::out_of_range("expectation_z: bad qubit");
  }
  const auto& amps = sv.data();
  const BasisState bit = BasisState{1} << q;
  double total = 0.0;
  for (std::size_t i = 0; i < amps.size(); ++i) {
    const double p = std::norm(amps[i]);
    total += (i & bit) ? -p : p;
  }
  return total;
}

double expectation_zz(const StateVector& sv, int a, int b) {
  if (a < 0 || a >= sv.num_qubits() || b < 0 || b >= sv.num_qubits()) {
    throw std::out_of_range("expectation_zz: bad qubit");
  }
  const auto& amps = sv.data();
  const BasisState abit = BasisState{1} << a;
  const BasisState bbit = BasisState{1} << b;
  double total = 0.0;
  for (std::size_t i = 0; i < amps.size(); ++i) {
    const double p = std::norm(amps[i]);
    const bool za = (i & abit) != 0;
    const bool zb = (i & bbit) != 0;
    total += (za == zb) ? p : -p;
  }
  return total;
}

}  // namespace qq::sim
