#include "qsim/measure.hpp"

#include <algorithm>
#include <map>
#include <numeric>
#include <stdexcept>

#include "qsim/kernel_detail.hpp"
#include "qsim/simd.hpp"
#include "util/thread_pool.hpp"

namespace qq::sim {

using detail::insert_zero_bit;
using detail::kParallelGrain;
using detail::walk_runs;

std::vector<double> probabilities(const StateVector& sv) {
  const auto& amps = sv.data();
  std::vector<double> probs(amps.size());
  util::parallel_for_chunks(
      0, amps.size(),
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) probs[i] = std::norm(amps[i]);
      },
      kParallelGrain);
  return probs;
}

BasisState argmax_probability(const StateVector& sv) {
  struct Best {
    double p;
    BasisState s;
  };
  const auto& amps = sv.data();
  const Best best = util::parallel_reduce(
      0, amps.size(), Best{-1.0, 0},
      [&amps](std::size_t lo, std::size_t hi) {
        Best local{std::norm(amps[lo]), lo};
        for (std::size_t i = lo + 1; i < hi; ++i) {
          const double p = std::norm(amps[i]);
          if (p > local.p) local = Best{p, i};
        }
        return local;
      },
      // Chunks are folded in ascending index order, so preferring the
      // accumulator on ties keeps the smallest index.
      [](Best acc, Best chunk) { return chunk.p > acc.p ? chunk : acc; },
      kParallelGrain);
  return best.s;
}

std::vector<std::pair<BasisState, double>> top_k_states(const StateVector& sv,
                                                        int k) {
  if (k < 1) throw std::invalid_argument("top_k_states: k must be >= 1");
  const auto& amps = sv.data();
  const std::size_t kk = std::min<std::size_t>(static_cast<std::size_t>(k),
                                               amps.size());
  std::vector<BasisState> idx(amps.size());
  std::iota(idx.begin(), idx.end(), BasisState{0});
  std::partial_sort(idx.begin(), idx.begin() + static_cast<std::ptrdiff_t>(kk),
                    idx.end(), [&amps](BasisState a, BasisState b) {
                      const double pa = std::norm(amps[a]);
                      const double pb = std::norm(amps[b]);
                      if (pa != pb) return pa > pb;
                      return a < b;
                    });
  std::vector<std::pair<BasisState, double>> out;
  out.reserve(kk);
  for (std::size_t i = 0; i < kk; ++i) {
    out.emplace_back(idx[i], std::norm(amps[idx[i]]));
  }
  return out;
}

std::vector<BasisState> sample_counts(const StateVector& sv, int shots,
                                      util::Rng& rng) {
  std::vector<double> cdf;
  std::vector<BasisState> out;
  sample_counts_into(sv, shots, rng, cdf, out);
  return out;
}

void sample_counts_into(const StateVector& sv, int shots, util::Rng& rng,
                        std::vector<double>& cdf,
                        std::vector<BasisState>& out) {
  if (shots < 0) throw std::invalid_argument("sample_counts: negative shots");
  out.clear();
  if (shots == 0) return;
  const auto& amps = sv.data();
  const std::size_t n = amps.size();

  // Inclusive-prefix CDF of |amp|^2, built in two parallel passes over fixed
  // chunk boundaries: per-chunk probabilities + sums, serial scan of the
  // chunk sums, then per-chunk prefix with the chunk's offset. The plan is
  // pool-independent, so the CDF (and thus the sample stream at a fixed
  // seed) is identical at any thread count.
  cdf.resize(n);
  const util::detail::ChunkPlan plan =
      util::detail::plan_chunks(n, kParallelGrain);
  const std::size_t nchunks = plan.count;
  const std::size_t len = plan.len;
  std::vector<double> sums(nchunks, 0.0);
  util::parallel_for(
      0, nchunks,
      [&](std::size_t c) {
        const std::size_t lo = c * len;
        const std::size_t hi = std::min(n, lo + len);
        double sum = 0.0;
        for (std::size_t i = lo; i < hi; ++i) {
          cdf[i] = std::norm(amps[i]);
          sum += cdf[i];
        }
        sums[c] = sum;
      },
      1);
  double running = 0.0;
  for (std::size_t c = 0; c < nchunks; ++c) {
    const double s = sums[c];
    sums[c] = running;  // exclusive offset for chunk c
    running += s;
  }
  util::parallel_for(
      0, nchunks,
      [&](std::size_t c) {
        const std::size_t lo = c * len;
        const std::size_t hi = std::min(n, lo + len);
        double acc = sums[c];
        for (std::size_t i = lo; i < hi; ++i) {
          acc += cdf[i];
          cdf[i] = acc;
        }
      },
      1);

  const double total = cdf.back();
  if (!(total > 0.0)) {
    throw std::runtime_error("sample_counts: state has zero norm");
  }
  // Last state that can legitimately be drawn: the largest index whose CDF
  // entry strictly exceeds its predecessor. Everything after it is a
  // zero-probability plateau that floating-point clamping must never hit.
  std::size_t last = n - 1;
  while (last > 0 && !(cdf[last] > cdf[last - 1])) --last;

  out.reserve(static_cast<std::size_t>(shots));
  const auto begin = cdf.begin();
  const auto end_it = cdf.begin() + static_cast<std::ptrdiff_t>(last) + 1;
  for (int s = 0; s < shots; ++s) {
    const double r = util::uniform(rng) * total;
    // upper_bound (first entry > r) skips zero-probability plateaus when r
    // lands exactly on a boundary; the clamp covers r accumulating past
    // cdf.back() under floating-point rounding.
    const auto it = std::upper_bound(begin, end_it, r);
    out.push_back(std::min<BasisState>(
        static_cast<BasisState>(it - begin), static_cast<BasisState>(last)));
  }
}

std::vector<std::pair<BasisState, int>> histogram(
    const std::vector<BasisState>& shots) {
  std::map<BasisState, int> counts;
  for (const BasisState s : shots) ++counts[s];
  std::vector<std::pair<BasisState, int>> out(counts.begin(), counts.end());
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  return out;
}

double expectation_diagonal(const StateVector& sv,
                            const std::vector<double>& values) {
  const auto& amps = sv.data();
  if (values.size() != amps.size()) {
    throw std::invalid_argument("expectation_diagonal: table size mismatch");
  }
  const double* d = reinterpret_cast<const double*>(amps.data());
  const double* v = values.data();
  return util::parallel_reduce(
      0, amps.size(), 0.0,
      [d, v](std::size_t lo, std::size_t hi) {
        return simd::sum_norms_weighted(0.0, d + 2 * lo, v + lo, hi - lo);
      },
      [](double a, double b) { return a + b; }, kParallelGrain);
}

double expectation_z(const StateVector& sv, int q) {
  if (q < 0 || q >= sv.num_qubits()) {
    throw std::out_of_range("expectation_z: bad qubit");
  }
  const auto& amps = sv.data();
  const BasisState bit = BasisState{1} << q;
  const double* d = reinterpret_cast<const double*>(amps.data());
  // Pair enumeration: each t visits the (bit=0, bit=1) pair; both streams
  // are contiguous over aligned runs of 2^q values of t, so the body walks
  // maximal runs and hands each to the ordered SIMD difference reduction
  // (per-element accumulation order is unchanged).
  return util::parallel_reduce(
      0, amps.size() >> 1, 0.0,
      [d, q, bit](std::size_t lo, std::size_t hi) {
        double partial = 0.0;
        walk_runs(
            lo, hi, bit,
            [q](std::size_t t) { return insert_zero_bit(t, q); },
            [d, bit, &partial](BasisState i0, std::size_t len) {
              partial = simd::sum_norm_diffs(partial, d + 2 * i0,
                                             d + 2 * (i0 | bit), len);
            });
        return partial;
      },
      [](double a, double b) { return a + b; }, kParallelGrain);
}

double expectation_zz(const StateVector& sv, int a, int b) {
  if (a < 0 || a >= sv.num_qubits() || b < 0 || b >= sv.num_qubits()) {
    throw std::out_of_range("expectation_zz: bad qubit");
  }
  if (a == b) {
    // <Z_q Z_q> = <I> — the squared norm.
    return sv.norm_squared();
  }
  const auto& amps = sv.data();
  const BasisState abit = BasisState{1} << a;
  const BasisState bbit = BasisState{1} << b;
  const int lo_q = std::min(a, b);
  const int hi_q = std::max(a, b);
  const std::size_t run = std::size_t{1} << lo_q;
  const double* d = reinterpret_cast<const double*>(amps.data());
  // Quarter enumeration: each t visits all four (bit_a, bit_b) combinations;
  // all four streams are contiguous over aligned runs of 2^min(a,b) values
  // of t, feeding the ordered four-way SIMD reduction.
  return util::parallel_reduce(
      0, amps.size() >> 2, 0.0,
      [d, lo_q, hi_q, abit, bbit, run](std::size_t lo, std::size_t hi) {
        double partial = 0.0;
        walk_runs(
            lo, hi, run,
            [lo_q, hi_q](std::size_t t) {
              return detail::insert_two_zero_bits(t, lo_q, hi_q);
            },
            [d, abit, bbit, &partial](BasisState i00, std::size_t len) {
              partial = simd::sum_norm_quads(
                  partial, d + 2 * i00, d + 2 * (i00 | abit),
                  d + 2 * (i00 | bbit), d + 2 * (i00 | abit | bbit), len);
            });
        return partial;
      },
      [](double a2, double b2) { return a2 + b2; }, kParallelGrain);
}

}  // namespace qq::sim
