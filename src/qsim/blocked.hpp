#pragma once
// Cache-blocked / distribution-emulating state vector.
//
// The paper's Aer backend runs MPI-distributed with the cache-blocking
// technique of Doi & Horii (QCE 2020, the paper's ref. [34]): amplitudes
// are split into 2^k blocks of 2^(n-k); gates on the low n-k "local"
// qubits act within blocks, while gates on the top k "global" qubits pair
// blocks and require data exchange (inter-rank communication on the real
// machine). This class reproduces that execution structure in one address
// space — block-local kernels, explicit pairwise block exchanges for
// global qubits — and *accounts* the communication volume, so the
// distribution cost of a circuit can be measured without MPI.
//
// Semantics are bit-identical to the flat StateVector (tests enforce it).

#include <complex>
#include <cstdint>
#include <vector>

#include "qsim/statevector.hpp"

namespace qq::sim {

struct BlockedStats {
  /// Amplitudes moved between blocks (each exchanged pair counts both
  /// halves) — the proxy for MPI traffic.
  std::uint64_t amps_exchanged = 0;
  /// Gates that needed an exchange (acted on a global qubit).
  std::uint64_t global_gates = 0;
  /// Gates served entirely block-locally.
  std::uint64_t local_gates = 0;
};

class BlockedStateVector {
 public:
  /// 2^block_bits blocks ("ranks"); block_bits must not exceed num_qubits.
  BlockedStateVector(int num_qubits, int block_bits);

  int num_qubits() const noexcept { return num_qubits_; }
  int block_bits() const noexcept { return block_bits_; }
  std::size_t num_blocks() const noexcept { return blocks_.size(); }
  const BlockedStats& stats() const noexcept { return stats_; }

  /// Initialize to |+>^n (the QAOA input state).
  void set_plus_state();

  void apply_h(int q);
  void apply_rx(int q, double theta);
  void apply_rz(int q, double theta);
  void apply_rzz(int a, int b, double theta);
  void apply_cx(int control, int target);

  /// Gather into a flat state vector (tests / final measurement).
  StateVector to_statevector() const;

 private:
  bool is_global(int q) const noexcept { return q >= local_bits_; }
  void apply_local_1q(int q, const std::array<Amplitude, 4>& m);
  /// Apply a 2x2 gate on a global qubit: pair blocks differing in the
  /// qubit's block-index bit, exchange-and-combine.
  void apply_global_1q(int q, const std::array<Amplitude, 4>& m);

  int num_qubits_;
  int block_bits_;
  int local_bits_;
  std::vector<std::vector<Amplitude>> blocks_;
  BlockedStats stats_;
};

}  // namespace qq::sim
