#pragma once
// Internal helpers shared by the qsim kernel translation units
// (statevector.cpp, measure.cpp). Not part of the public API.
//
// The insertion enumerators are the backbone of every pair/subset kernel:
// they spread a dense counter over the bit positions a gate does NOT act
// on, so the kernels iterate exactly the index subset they touch (see
// DESIGN.md "Kernel index enumeration").

#include <cstdint>

#include "qsim/statevector.hpp"

namespace qq::sim::detail {

/// Chunk grain for the parallel sweeps/reductions over amplitude arrays:
/// small enough to load-balance, large enough that per-chunk dispatch cost
/// vanishes against 2^14 complex updates.
inline constexpr std::size_t kParallelGrain = 1 << 14;

/// Spread index t over the bit positions excluding `q`: returns the basis
/// index with bit q forced to zero whose remaining bits enumerate t.
inline BasisState insert_zero_bit(std::uint64_t t, int q) noexcept {
  const BasisState mask = (BasisState{1} << q) - 1;
  return ((t & ~mask) << 1) | (t & mask);
}

/// Spread index t over the bit positions excluding `lo` and `hi` (lo < hi):
/// basis index with both bits forced to zero.
inline BasisState insert_two_zero_bits(std::uint64_t t, int lo,
                                       int hi) noexcept {
  return insert_zero_bit(insert_zero_bit(t, lo), hi);
}

}  // namespace qq::sim::detail
