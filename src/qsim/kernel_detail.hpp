#pragma once
// Internal helpers shared by the qsim kernel translation units
// (statevector.cpp, measure.cpp). Not part of the public API.
//
// The insertion enumerators are the backbone of every pair/subset kernel:
// they spread a dense counter over the bit positions a gate does NOT act
// on, so the kernels iterate exactly the index subset they touch (see
// DESIGN.md "Kernel index enumeration").

#include <algorithm>
#include <cstdint>

#include "qsim/statevector.hpp"

namespace qq::sim::detail {

/// Chunk grain for the parallel sweeps/reductions over amplitude arrays:
/// small enough to load-balance, large enough that per-chunk dispatch cost
/// vanishes against 2^14 complex updates.
inline constexpr std::size_t kParallelGrain = 1 << 14;

/// Spread index t over the bit positions excluding `q`: returns the basis
/// index with bit q forced to zero whose remaining bits enumerate t.
inline BasisState insert_zero_bit(std::uint64_t t, int q) noexcept {
  const BasisState mask = (BasisState{1} << q) - 1;
  return ((t & ~mask) << 1) | (t & mask);
}

/// Spread index t over the bit positions excluding `lo` and `hi` (lo < hi):
/// basis index with both bits forced to zero.
inline BasisState insert_two_zero_bits(std::uint64_t t, int lo,
                                       int hi) noexcept {
  return insert_zero_bit(insert_zero_bit(t, lo), hi);
}

/// Walk [t_lo, t_hi) of an insertion enumeration whose images are contiguous
/// in address space for every aligned group of `run` consecutive t values
/// (`run` a power of two). Calls fn(map(t), len) for each maximal run, where
/// map(t) is the amplitude index of t and [map(t), map(t)+len) is contiguous.
/// This is how the kernels turn subset enumeration into streaming runs that
/// feed the simd.hpp primitives instead of per-element branches.
template <typename Map, typename Fn>
inline void walk_runs(std::size_t t_lo, std::size_t t_hi, std::size_t run,
                      Map map, Fn fn) {
  std::size_t t = t_lo;
  while (t < t_hi) {
    const std::size_t in_run = t & (run - 1);
    const std::size_t len = std::min(run - in_run, t_hi - t);
    fn(map(t), len);
    t += len;
  }
}

}  // namespace qq::sim::detail
