#pragma once
// Measurement, sampling and expectation utilities over a StateVector.
//
// The paper simulates 4096 shots per circuit execution and, for solution
// extraction, "the bit string corresponding to the highest amplitude ... is
// chosen" (§3.2) — with the top-k variant flagged as the obvious
// improvement (§5). Both are provided.

#include <cstdint>
#include <utility>
#include <vector>

#include "qsim/statevector.hpp"
#include "util/rng.hpp"

namespace qq::sim {

/// |amp|^2 for every basis state (2^n doubles).
std::vector<double> probabilities(const StateVector& sv);

/// Basis state with the largest probability (ties -> smallest index).
BasisState argmax_probability(const StateVector& sv);

/// The k most probable basis states, sorted by descending probability.
std::vector<std::pair<BasisState, double>> top_k_states(const StateVector& sv,
                                                        int k);

/// Sample `shots` basis states from |psi|^2 via inverse-CDF binary search.
std::vector<BasisState> sample_counts(const StateVector& sv, int shots,
                                      util::Rng& rng);

/// Workspace variant of sample_counts: the CDF scratch and the output shot
/// buffer are caller-owned and reused, so repeated sampling (the QAOA
/// shot-based objective) is allocation-free in steady state. `out` is
/// cleared and refilled; `cdf` is resized to 2^n on first use.
void sample_counts_into(const StateVector& sv, int shots, util::Rng& rng,
                        std::vector<double>& cdf,
                        std::vector<BasisState>& out);

/// Aggregate shot counts into (state, count) pairs sorted by count desc.
std::vector<std::pair<BasisState, int>> histogram(
    const std::vector<BasisState>& shots);

/// Σ_s |amp_s|^2 * values[s] — expectation of any diagonal observable
/// (H_C evaluation uses the per-state cut table).
double expectation_diagonal(const StateVector& sv,
                            const std::vector<double>& values);

/// <Z_q> in the computational basis convention Z|0> = +|0>.
double expectation_z(const StateVector& sv, int q);

/// <Z_a Z_b>.
double expectation_zz(const StateVector& sv, int a, int b);

}  // namespace qq::sim
