#pragma once
// Batched small-state simulator: B independent n-qubit states evaluated in
// one cache-resident sweep. The QAOA^2 decomposition turns one big MaxCut
// into a storm of tiny (<= max_qubits) leaf simulations, and multi-restart /
// multi-candidate QAOA evaluation re-runs the SAME circuit shape with
// different angles — so the batch shares every index computation and every
// cut-table load across B parameter sets instead of sweeping the table B
// times.
//
// Layout: structure-of-arrays with amplitude-major lanes. Amplitude index i
// owns a contiguous row of B complex lanes ([re, im] interleaved per lane):
//
//   data[2*B*i + 2*b]     = Re(amp_i of state b)
//   data[2*B*i + 2*b + 1] = Im(amp_i of state b)
//
// A diagonal op loads values[i] once per row and applies it to all B lanes;
// the mixer butterfly pairs two rows and runs all B lane butterflies on
// cache-hot data. Per-lane arithmetic is exactly the flat StateVector's
// (same operation order, same parallel_reduce chunk plan), so every lane is
// bit-for-bit identical to an independent StateVector evaluation — the
// batched_test suite enforces it for B in {1, 3, 8}.

#include <complex>
#include <cstdint>
#include <vector>

#include "qsim/statevector.hpp"

namespace qq::sim {

class BatchedStateVector {
 public:
  /// B = batch lanes (>= 1). Initializes every lane to |0...0>.
  BatchedStateVector(int num_qubits, int batch);

  int num_qubits() const noexcept { return num_qubits_; }
  int batch() const noexcept { return batch_; }
  /// Amplitudes per lane (2^n).
  std::size_t size() const noexcept { return size_; }

  /// Every lane to |+>^n — the batched QAOA ansatz input.
  void reset_to_plus();

  /// Lane b: amp[s] *= exp(-i * scales[b] * values[s]). One row sweep
  /// applies a full QAOA cost layer to every lane; `values` (the shared cut
  /// table) is loaded once per amplitude for all B lanes. scales.size()
  /// must equal batch().
  void apply_diagonal_phase(const std::vector<double>& values,
                            const std::vector<double>& scales);

  /// Lane b: RX(thetas[b]) on every qubit (the fused mixer layer).
  /// thetas.size() must equal batch().
  void apply_rx_layer(const std::vector<double>& thetas);

  /// Per-lane <diag(values)>: result[b] is bit-for-bit the value
  /// sim::expectation_diagonal would return for lane b's state.
  std::vector<double> expectation_diagonal(
      const std::vector<double>& values) const;

  Amplitude amplitude(int lane, BasisState s) const;
  /// Extract one lane into a flat StateVector (tests, final measurement).
  StateVector lane_state(int lane) const;

 private:
  void check_lane(int lane) const;
  void check_scales(const std::vector<double>& scales) const;

  int num_qubits_;
  int batch_;
  std::size_t size_;
  /// 2 * batch_ * size_ doubles, amplitude-major (see header comment).
  std::vector<double> data_;
  /// Mixer scratch: per-lane cos/sin duplicated per double, the layout
  /// simd::rx_butterfly_lanes consumes. Sized 2 * batch_.
  std::vector<double> cdup_;
  std::vector<double> sdup_;
};

}  // namespace qq::sim
