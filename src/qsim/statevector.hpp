#pragma once
// Multi-threaded state-vector quantum simulator — the stand-in for the
// paper's MPI-distributed Aer backend. Exact complex-double amplitudes,
// gate kernels parallelized over the global thread pool, and a fast
// diagonal path that lets a whole QAOA cost layer exp(-i γ H_C) execute as
// one elementwise sweep.
//
// Qubit i corresponds to bit i of the basis-state index (little-endian,
// matching the MaxCut bit-string convention where bit i is node i's side).

#include <array>
#include <complex>
#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace qq::sim {

using Amplitude = std::complex<double>;
using BasisState = std::uint64_t;

/// Hard cap: 2^28 amplitudes = 4 GiB of complex<double>. The paper's 33
/// qubits needed 512 HPE-Cray EX nodes; see DESIGN.md on scaling.
inline constexpr int kMaxQubits = 28;

class StateVector {
 public:
  /// Initializes |0...0>.
  explicit StateVector(int num_qubits);

  /// |+>^n — the QAOA ansatz input state (Eq. 2).
  static StateVector plus_state(int num_qubits);

  /// In-place re-initialization to |+>^n without touching the allocation —
  /// the workspace-reuse primitive: a QAOA objective evaluation resets its
  /// persistent state vector instead of constructing a fresh 2^n x 16 B
  /// buffer per COBYLA iteration.
  void reset_to_plus();

  int num_qubits() const noexcept { return num_qubits_; }
  std::size_t size() const noexcept { return amps_.size(); }

  const std::vector<Amplitude>& data() const noexcept { return amps_; }
  Amplitude amplitude(BasisState s) const { return amps_.at(s); }
  void set_amplitude(BasisState s, Amplitude a) { amps_.at(s) = a; }

  double norm_squared() const;
  void normalize();

  // --- single-qubit gates -------------------------------------------------
  void apply_h(int q);
  void apply_x(int q);
  void apply_y(int q);
  void apply_z(int q);
  void apply_rx(int q, double theta);  ///< exp(-i θ X/2)
  /// Fused whole-layer mixer: RX(θ) on EVERY qubit in a few cache-blocked
  /// passes over the state instead of n separate full sweeps. Equivalent to
  /// `for (q = 0..n-1) apply_rx(q, θ)`; see DESIGN.md "Kernel index
  /// enumeration".
  void apply_rx_layer(double theta);
  void apply_ry(int q, double theta);  ///< exp(-i θ Y/2)
  void apply_rz(int q, double theta);  ///< exp(-i θ Z/2)
  void apply_phase(int q, double phi); ///< diag(1, e^{iφ})
  /// Arbitrary 2x2 unitary, row-major {m00, m01, m10, m11}.
  void apply_unitary1(int q, const std::array<Amplitude, 4>& m);

  // --- two-qubit gates ----------------------------------------------------
  void apply_cx(int control, int target);
  void apply_cz(int a, int b);
  void apply_swap(int a, int b);
  void apply_rzz(int a, int b, double theta);  ///< exp(-i θ Z_a Z_b / 2)

  // --- diagonal fast path ---------------------------------------------------
  /// amp[s] *= exp(-i * scale * values[s]) for every basis state s.
  /// `values` must have 2^n entries. One bandwidth-bound sweep implements a
  /// full QAOA cost layer when `values` is the per-state cut table.
  void apply_diagonal_phase(const std::vector<double>& values, double scale);

 private:
  void check_qubit(int q) const;

  int num_qubits_;
  std::vector<Amplitude> amps_;
};

}  // namespace qq::sim
