#include "qsim/blocked.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "qsim/simd.hpp"

namespace qq::sim {

// The diagonal kernels stream constant-phase runs through simd::scale_run —
// the same dispatched primitive the flat StateVector's rz/rzz/phase paths
// use — so a blocked state stays bit-for-bit identical to the flat one under
// every backend. The non-diagonal kernels keep the generic complex 2x2 form,
// which is the flat apply_unitary1's exact expression.
using simd::scale_run;

BlockedStateVector::BlockedStateVector(int num_qubits, int block_bits)
    : num_qubits_(num_qubits), block_bits_(block_bits) {
  if (num_qubits < 0 || num_qubits > kMaxQubits) {
    throw std::invalid_argument("BlockedStateVector: bad qubit count");
  }
  if (block_bits < 0 || block_bits > num_qubits) {
    throw std::invalid_argument(
        "BlockedStateVector: block_bits must lie in [0, num_qubits]");
  }
  local_bits_ = num_qubits - block_bits;
  const std::size_t block_size = std::size_t{1} << local_bits_;
  blocks_.assign(std::size_t{1} << block_bits_,
                 std::vector<Amplitude>(block_size, Amplitude{0, 0}));
  blocks_[0][0] = Amplitude{1, 0};
}

void BlockedStateVector::set_plus_state() {
  const double a =
      1.0 / std::sqrt(static_cast<double>(std::size_t{1} << num_qubits_));
  for (auto& block : blocks_) {
    for (auto& amp : block) amp = Amplitude{a, 0};
  }
}

void BlockedStateVector::apply_local_1q(int q,
                                        const std::array<Amplitude, 4>& m) {
  const std::size_t bit = std::size_t{1} << q;
  const std::size_t mask = bit - 1;
  const std::size_t pairs = blocks_[0].size() >> 1;
  for (auto& block : blocks_) {
    for (std::size_t t = 0; t < pairs; ++t) {
      const std::size_t i0 = ((t & ~mask) << 1) | (t & mask);
      const std::size_t i1 = i0 | bit;
      const Amplitude a0 = block[i0];
      const Amplitude a1 = block[i1];
      block[i0] = m[0] * a0 + m[1] * a1;
      block[i1] = m[2] * a0 + m[3] * a1;
    }
  }
  ++stats_.local_gates;
}

void BlockedStateVector::apply_global_1q(int q,
                                         const std::array<Amplitude, 4>& m) {
  // Pair blocks differing in this qubit's block-index bit: on the real
  // machine each pair is two MPI ranks exchanging their halves.
  const std::size_t gbit = std::size_t{1} << (q - local_bits_);
  for (std::size_t b = 0; b < blocks_.size(); ++b) {
    if (b & gbit) continue;
    auto& lo = blocks_[b];
    auto& hi = blocks_[b | gbit];
    for (std::size_t i = 0; i < lo.size(); ++i) {
      const Amplitude a0 = lo[i];
      const Amplitude a1 = hi[i];
      lo[i] = m[0] * a0 + m[1] * a1;
      hi[i] = m[2] * a0 + m[3] * a1;
    }
  }
  ++stats_.global_gates;
  stats_.amps_exchanged += std::uint64_t{1} << num_qubits_;
}

namespace {
std::array<Amplitude, 4> h_matrix() {
  const double s = 1.0 / std::sqrt(2.0);
  return {Amplitude{s, 0}, Amplitude{s, 0}, Amplitude{s, 0}, Amplitude{-s, 0}};
}
std::array<Amplitude, 4> rx_matrix(double theta) {
  const double c = std::cos(theta * 0.5);
  const double s = std::sin(theta * 0.5);
  return {Amplitude{c, 0}, Amplitude{0, -s}, Amplitude{0, -s}, Amplitude{c, 0}};
}
}  // namespace

void BlockedStateVector::apply_h(int q) {
  if (q < 0 || q >= num_qubits_) {
    throw std::out_of_range("BlockedStateVector::apply_h: bad qubit");
  }
  is_global(q) ? apply_global_1q(q, h_matrix()) : apply_local_1q(q, h_matrix());
}

void BlockedStateVector::apply_rx(int q, double theta) {
  if (q < 0 || q >= num_qubits_) {
    throw std::out_of_range("BlockedStateVector::apply_rx: bad qubit");
  }
  const auto m = rx_matrix(theta);
  is_global(q) ? apply_global_1q(q, m) : apply_local_1q(q, m);
}

void BlockedStateVector::apply_rz(int q, double theta) {
  if (q < 0 || q >= num_qubits_) {
    throw std::out_of_range("BlockedStateVector::apply_rz: bad qubit");
  }
  // Diagonal: never needs communication (Doi & Horii's key saving) — for a
  // global qubit the phase is constant per block.
  const Amplitude e0 = std::polar(1.0, -theta * 0.5);
  const Amplitude e1 = std::polar(1.0, theta * 0.5);
  if (is_global(q)) {
    // Global qubit: the phase is constant per block — one streaming run.
    const std::size_t gbit = std::size_t{1} << (q - local_bits_);
    for (std::size_t b = 0; b < blocks_.size(); ++b) {
      const Amplitude phase = (b & gbit) ? e1 : e0;
      scale_run(reinterpret_cast<double*>(blocks_[b].data()),
                blocks_[b].size(), phase.real(), phase.imag());
    }
  } else {
    // Local qubit: alternating e0/e1 runs of 2^q amplitudes inside each
    // block, exactly the flat kernel's run structure.
    const std::size_t bit = std::size_t{1} << q;
    for (auto& block : blocks_) {
      double* d = reinterpret_cast<double*>(block.data());
      for (std::size_t i = 0; i < block.size(); i += bit) {
        const Amplitude phase = (i & bit) ? e1 : e0;
        scale_run(d + 2 * i, bit, phase.real(), phase.imag());
      }
    }
  }
  ++stats_.local_gates;
}

void BlockedStateVector::apply_rzz(int a, int b, double theta) {
  if (a < 0 || a >= num_qubits_ || b < 0 || b >= num_qubits_ || a == b) {
    throw std::invalid_argument("BlockedStateVector::apply_rzz: bad qubits");
  }
  // Diagonal: communication-free regardless of locality. Bit values come
  // from the block index for global qubits and the offset for local ones.
  const Amplitude same = std::polar(1.0, -theta * 0.5);
  const Amplitude diff = std::polar(1.0, theta * 0.5);
  // The parity (bit_a == bit_b) is constant over aligned runs of
  // 2^min(local qubit) amplitudes — the whole block when both qubits are
  // global. Stream each run through one scale_run call.
  std::size_t run = blocks_[0].size();
  if (!is_global(a)) run = std::min(run, std::size_t{1} << a);
  if (!is_global(b)) run = std::min(run, std::size_t{1} << b);
  for (std::size_t blk = 0; blk < blocks_.size(); ++blk) {
    const std::size_t base = blk << local_bits_;
    auto& block = blocks_[blk];
    double* d = reinterpret_cast<double*>(block.data());
    for (std::size_t i = 0; i < block.size(); i += run) {
      const std::size_t g = base | i;
      const bool za = (g >> a) & 1;
      const bool zb = (g >> b) & 1;
      const Amplitude ph = (za == zb) ? same : diff;
      scale_run(d + 2 * i, run, ph.real(), ph.imag());
    }
  }
  ++stats_.local_gates;
}

void BlockedStateVector::apply_cx(int control, int target) {
  if (control < 0 || control >= num_qubits_ || target < 0 ||
      target >= num_qubits_ || control == target) {
    throw std::invalid_argument("BlockedStateVector::apply_cx: bad qubits");
  }
  if (!is_global(target)) {
    // Target-local: each block permutes internally; a global control just
    // selects which blocks act. No communication.
    const std::size_t tbit = std::size_t{1} << target;
    if (is_global(control)) {
      const std::size_t gbit = std::size_t{1} << (control - local_bits_);
      for (std::size_t blk = 0; blk < blocks_.size(); ++blk) {
        if (!(blk & gbit)) continue;
        auto& block = blocks_[blk];
        for (std::size_t i = 0; i < block.size(); ++i) {
          if (!(i & tbit)) std::swap(block[i], block[i | tbit]);
        }
      }
    } else {
      const std::size_t cbit = std::size_t{1} << control;
      for (auto& block : blocks_) {
        for (std::size_t i = 0; i < block.size(); ++i) {
          if ((i & cbit) && !(i & tbit)) std::swap(block[i], block[i | tbit]);
        }
      }
    }
    ++stats_.local_gates;
    return;
  }
  // Target-global: blocks pair across the target bit.
  const std::size_t tgbit = std::size_t{1} << (target - local_bits_);
  if (is_global(control)) {
    // Both global: participating block pairs swap wholesale.
    const std::size_t cgbit = std::size_t{1} << (control - local_bits_);
    for (std::size_t b = 0; b < blocks_.size(); ++b) {
      if ((b & cgbit) && !(b & tgbit)) {
        blocks_[b].swap(blocks_[b | tgbit]);
      }
    }
  } else {
    // Control local: each pair exchanges the control=1 half.
    const std::size_t cbit = std::size_t{1} << control;
    for (std::size_t b = 0; b < blocks_.size(); ++b) {
      if (b & tgbit) continue;
      auto& lo = blocks_[b];
      auto& hi = blocks_[b | tgbit];
      for (std::size_t i = 0; i < lo.size(); ++i) {
        if (i & cbit) std::swap(lo[i], hi[i]);
      }
    }
  }
  ++stats_.global_gates;
  stats_.amps_exchanged += std::uint64_t{1} << (num_qubits_ - 1);
}

StateVector BlockedStateVector::to_statevector() const {
  StateVector out(num_qubits_);
  for (std::size_t blk = 0; blk < blocks_.size(); ++blk) {
    const std::size_t base = blk << local_bits_;
    for (std::size_t i = 0; i < blocks_[blk].size(); ++i) {
      out.set_amplitude(base | i, blocks_[blk][i]);
    }
  }
  return out;
}

}  // namespace qq::sim
