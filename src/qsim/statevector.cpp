#include "qsim/statevector.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

#include "util/thread_pool.hpp"

namespace qq::sim {

namespace {
constexpr std::size_t kParallelGrain = 1 << 14;

/// Spread index t over the bit positions excluding `q`: returns the basis
/// index with bit q forced to zero whose remaining bits enumerate t.
inline BasisState insert_zero_bit(std::uint64_t t, int q) noexcept {
  const BasisState mask = (BasisState{1} << q) - 1;
  return ((t & ~mask) << 1) | (t & mask);
}
}  // namespace

StateVector::StateVector(int num_qubits) : num_qubits_(num_qubits) {
  if (num_qubits < 0 || num_qubits > kMaxQubits) {
    throw std::invalid_argument("StateVector: qubit count must be in [0, " +
                                std::to_string(kMaxQubits) + "], got " +
                                std::to_string(num_qubits));
  }
  amps_.assign(std::size_t{1} << num_qubits, Amplitude{0.0, 0.0});
  amps_[0] = Amplitude{1.0, 0.0};
}

StateVector StateVector::plus_state(int num_qubits) {
  StateVector sv(num_qubits);
  const double a = 1.0 / std::sqrt(static_cast<double>(sv.size()));
  util::parallel_for_chunks(
      0, sv.size(),
      [&sv, a](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) sv.amps_[i] = Amplitude{a, 0.0};
      },
      kParallelGrain);
  return sv;
}

void StateVector::check_qubit(int q) const {
  if (q < 0 || q >= num_qubits_) {
    throw std::out_of_range("StateVector: qubit index " + std::to_string(q) +
                            " out of range for " + std::to_string(num_qubits_) +
                            " qubits");
  }
}

double StateVector::norm_squared() const {
  // Serial reduction is fine: measurement helpers handle the hot paths.
  double sum = 0.0;
  for (const Amplitude& a : amps_) sum += std::norm(a);
  return sum;
}

void StateVector::normalize() {
  const double n2 = norm_squared();
  if (n2 <= 0.0) {
    throw std::runtime_error("StateVector::normalize: zero state");
  }
  const double inv = 1.0 / std::sqrt(n2);
  util::parallel_for_chunks(
      0, amps_.size(),
      [this, inv](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) amps_[i] *= inv;
      },
      kParallelGrain);
}

void StateVector::apply_unitary1(int q, const std::array<Amplitude, 4>& m) {
  check_qubit(q);
  const BasisState bit = BasisState{1} << q;
  const std::size_t pairs = amps_.size() >> 1;
  util::parallel_for_chunks(
      0, pairs,
      [this, q, bit, &m](std::size_t lo, std::size_t hi) {
        for (std::size_t t = lo; t < hi; ++t) {
          const BasisState i0 = insert_zero_bit(t, q);
          const BasisState i1 = i0 | bit;
          const Amplitude a0 = amps_[i0];
          const Amplitude a1 = amps_[i1];
          amps_[i0] = m[0] * a0 + m[1] * a1;
          amps_[i1] = m[2] * a0 + m[3] * a1;
        }
      },
      kParallelGrain);
}

void StateVector::apply_h(int q) {
  const double s = 1.0 / std::sqrt(2.0);
  apply_unitary1(q, {Amplitude{s, 0}, Amplitude{s, 0}, Amplitude{s, 0},
                     Amplitude{-s, 0}});
}

void StateVector::apply_x(int q) {
  check_qubit(q);
  const BasisState bit = BasisState{1} << q;
  const std::size_t pairs = amps_.size() >> 1;
  util::parallel_for_chunks(
      0, pairs,
      [this, q, bit](std::size_t lo, std::size_t hi) {
        for (std::size_t t = lo; t < hi; ++t) {
          const BasisState i0 = insert_zero_bit(t, q);
          std::swap(amps_[i0], amps_[i0 | bit]);
        }
      },
      kParallelGrain);
}

void StateVector::apply_y(int q) {
  apply_unitary1(q, {Amplitude{0, 0}, Amplitude{0, -1}, Amplitude{0, 1},
                     Amplitude{0, 0}});
}

void StateVector::apply_z(int q) {
  check_qubit(q);
  const BasisState bit = BasisState{1} << q;
  util::parallel_for_chunks(
      0, amps_.size(),
      [this, bit](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
          if (i & bit) amps_[i] = -amps_[i];
        }
      },
      kParallelGrain);
}

void StateVector::apply_rx(int q, double theta) {
  const double c = std::cos(theta * 0.5);
  const double s = std::sin(theta * 0.5);
  apply_unitary1(q, {Amplitude{c, 0}, Amplitude{0, -s}, Amplitude{0, -s},
                     Amplitude{c, 0}});
}

void StateVector::apply_ry(int q, double theta) {
  const double c = std::cos(theta * 0.5);
  const double s = std::sin(theta * 0.5);
  apply_unitary1(q, {Amplitude{c, 0}, Amplitude{-s, 0}, Amplitude{s, 0},
                     Amplitude{c, 0}});
}

void StateVector::apply_rz(int q, double theta) {
  check_qubit(q);
  const Amplitude e0 = std::polar(1.0, -theta * 0.5);
  const Amplitude e1 = std::polar(1.0, theta * 0.5);
  const BasisState bit = BasisState{1} << q;
  util::parallel_for_chunks(
      0, amps_.size(),
      [this, bit, e0, e1](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
          amps_[i] *= (i & bit) ? e1 : e0;
        }
      },
      kParallelGrain);
}

void StateVector::apply_phase(int q, double phi) {
  check_qubit(q);
  const Amplitude e = std::polar(1.0, phi);
  const BasisState bit = BasisState{1} << q;
  util::parallel_for_chunks(
      0, amps_.size(),
      [this, bit, e](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
          if (i & bit) amps_[i] *= e;
        }
      },
      kParallelGrain);
}

void StateVector::apply_cx(int control, int target) {
  check_qubit(control);
  check_qubit(target);
  if (control == target) {
    throw std::invalid_argument("apply_cx: control == target");
  }
  const BasisState cbit = BasisState{1} << control;
  const BasisState tbit = BasisState{1} << target;
  util::parallel_for_chunks(
      0, amps_.size(),
      [this, cbit, tbit](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
          // Swap each pair exactly once: act on the (control=1, target=0)
          // representative.
          if ((i & cbit) && !(i & tbit)) {
            std::swap(amps_[i], amps_[i | tbit]);
          }
        }
      },
      kParallelGrain);
}

void StateVector::apply_cz(int a, int b) {
  check_qubit(a);
  check_qubit(b);
  if (a == b) throw std::invalid_argument("apply_cz: identical qubits");
  const BasisState mask = (BasisState{1} << a) | (BasisState{1} << b);
  util::parallel_for_chunks(
      0, amps_.size(),
      [this, mask](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
          if ((i & mask) == mask) amps_[i] = -amps_[i];
        }
      },
      kParallelGrain);
}

void StateVector::apply_swap(int a, int b) {
  check_qubit(a);
  check_qubit(b);
  if (a == b) return;
  const BasisState abit = BasisState{1} << a;
  const BasisState bbit = BasisState{1} << b;
  util::parallel_for_chunks(
      0, amps_.size(),
      [this, abit, bbit](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
          if ((i & abit) && !(i & bbit)) {
            std::swap(amps_[i], amps_[(i & ~abit) | bbit]);
          }
        }
      },
      kParallelGrain);
}

void StateVector::apply_rzz(int a, int b, double theta) {
  check_qubit(a);
  check_qubit(b);
  if (a == b) throw std::invalid_argument("apply_rzz: identical qubits");
  // exp(-i θ/2 Z_a Z_b): phase e^{-iθ/2} when bits agree, e^{+iθ/2} when
  // they differ.
  const Amplitude same = std::polar(1.0, -theta * 0.5);
  const Amplitude diff = std::polar(1.0, theta * 0.5);
  const BasisState abit = BasisState{1} << a;
  const BasisState bbit = BasisState{1} << b;
  util::parallel_for_chunks(
      0, amps_.size(),
      [this, abit, bbit, same, diff](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
          const bool za = (i & abit) != 0;
          const bool zb = (i & bbit) != 0;
          amps_[i] *= (za == zb) ? same : diff;
        }
      },
      kParallelGrain);
}

void StateVector::apply_diagonal_phase(const std::vector<double>& values,
                                       double scale) {
  if (values.size() != amps_.size()) {
    throw std::invalid_argument(
        "apply_diagonal_phase: table size must equal 2^n");
  }
  util::parallel_for_chunks(
      0, amps_.size(),
      [this, &values, scale](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
          amps_[i] *= std::polar(1.0, -scale * values[i]);
        }
      },
      kParallelGrain);
}

}  // namespace qq::sim
