#include "qsim/statevector.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "qsim/kernel_detail.hpp"
#include "qsim/simd.hpp"
#include "util/thread_pool.hpp"

namespace qq::sim {

using detail::insert_two_zero_bits;
using detail::insert_zero_bit;
using detail::kParallelGrain;
using detail::walk_runs;

// The run primitives (complex scaling, negation, RX butterflies, the
// low-qubit 16-double table sweep) live in qsim/simd.hpp and dispatch to
// the widest available backend; the index enumeration here stays unchanged,
// so every kernel feeds the same contiguous runs to whichever backend runs.
using simd::mul_table16_blocks;
using simd::negate_run;
using simd::rx_block_levels;
using simd::rx_butterfly2_runs;
using simd::rx_butterfly_runs;
using simd::rx_interleaved_pairs;
using simd::scale_run;
using simd::scale_runs_pattern;

namespace {

/// Fused-mixer cache geometry: pass 1 applies the lowest kFusedBlockQubits
/// qubits inside contiguous 2^12-amplitude (64 KiB) blocks; pass 2 applies
/// the remaining qubits in groups of kFusedGroupQubits over column tiles of
/// kFusedColumnTile amplitudes, so each tile (2^8 rows x 256 amps = 1 MiB
/// worst case) stays cache-resident across the whole group.
constexpr int kFusedBlockQubits = 12;
constexpr int kFusedGroupQubits = 8;
constexpr std::size_t kFusedColumnTile = 256;
}  // namespace

StateVector::StateVector(int num_qubits) : num_qubits_(num_qubits) {
  if (num_qubits < 0 || num_qubits > kMaxQubits) {
    throw std::invalid_argument("StateVector: qubit count must be in [0, " +
                                std::to_string(kMaxQubits) + "], got " +
                                std::to_string(num_qubits));
  }
  amps_.assign(std::size_t{1} << num_qubits, Amplitude{0.0, 0.0});
  amps_[0] = Amplitude{1.0, 0.0};
}

StateVector StateVector::plus_state(int num_qubits) {
  StateVector sv(num_qubits);
  sv.reset_to_plus();
  return sv;
}

void StateVector::reset_to_plus() {
  const double a = 1.0 / std::sqrt(static_cast<double>(amps_.size()));
  util::parallel_for_chunks(
      0, amps_.size(),
      [this, a](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) amps_[i] = Amplitude{a, 0.0};
      },
      kParallelGrain);
}

void StateVector::check_qubit(int q) const {
  if (q < 0 || q >= num_qubits_) {
    throw std::out_of_range("StateVector: qubit index " + std::to_string(q) +
                            " out of range for " + std::to_string(num_qubits_) +
                            " qubits");
  }
}

double StateVector::norm_squared() const {
  const double* d = reinterpret_cast<const double*>(amps_.data());
  return util::parallel_reduce(
      0, amps_.size(), 0.0,
      [d](std::size_t lo, std::size_t hi) {
        return simd::sum_norms(0.0, d + 2 * lo, hi - lo);
      },
      [](double a, double b) { return a + b; }, kParallelGrain);
}

void StateVector::normalize() {
  const double n2 = norm_squared();
  if (n2 <= 0.0) {
    throw std::runtime_error("StateVector::normalize: zero state");
  }
  const double inv = 1.0 / std::sqrt(n2);
  util::parallel_for_chunks(
      0, amps_.size(),
      [this, inv](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) amps_[i] *= inv;
      },
      kParallelGrain);
}

void StateVector::apply_unitary1(int q, const std::array<Amplitude, 4>& m) {
  check_qubit(q);
  const BasisState bit = BasisState{1} << q;
  const std::size_t pairs = amps_.size() >> 1;
  util::parallel_for_chunks(
      0, pairs,
      [this, q, bit, &m](std::size_t lo, std::size_t hi) {
        for (std::size_t t = lo; t < hi; ++t) {
          const BasisState i0 = insert_zero_bit(t, q);
          const BasisState i1 = i0 | bit;
          const Amplitude a0 = amps_[i0];
          const Amplitude a1 = amps_[i1];
          amps_[i0] = m[0] * a0 + m[1] * a1;
          amps_[i1] = m[2] * a0 + m[3] * a1;
        }
      },
      kParallelGrain);
}

void StateVector::apply_h(int q) {
  const double s = 1.0 / std::sqrt(2.0);
  apply_unitary1(q, {Amplitude{s, 0}, Amplitude{s, 0}, Amplitude{s, 0},
                     Amplitude{-s, 0}});
}

void StateVector::apply_x(int q) {
  check_qubit(q);
  const BasisState bit = BasisState{1} << q;
  const std::size_t pairs = amps_.size() >> 1;
  util::parallel_for_chunks(
      0, pairs,
      [this, q, bit](std::size_t lo, std::size_t hi) {
        for (std::size_t t = lo; t < hi; ++t) {
          const BasisState i0 = insert_zero_bit(t, q);
          std::swap(amps_[i0], amps_[i0 | bit]);
        }
      },
      kParallelGrain);
}

void StateVector::apply_y(int q) {
  apply_unitary1(q, {Amplitude{0, 0}, Amplitude{0, -1}, Amplitude{0, 1},
                     Amplitude{0, 0}});
}

void StateVector::apply_z(int q) {
  check_qubit(q);
  // Half enumeration: only the amplitudes with bit q set are touched, as
  // contiguous runs of 2^q — no branch, half the old sweep.
  const BasisState bit = BasisState{1} << q;
  const std::size_t run = bit;
  const std::size_t half = amps_.size() >> 1;
  double* d = reinterpret_cast<double*>(amps_.data());
  util::parallel_for_chunks(
      0, half,
      [d, q, bit, run](std::size_t lo, std::size_t hi) {
        walk_runs(
            lo, hi, run,
            [q, bit](std::size_t t) { return insert_zero_bit(t, q) | bit; },
            [d](BasisState i0, std::size_t len) {
              negate_run(d + 2 * i0, len);
            });
      },
      kParallelGrain);
}

void StateVector::apply_rx(int q, double theta) {
  const double c = std::cos(theta * 0.5);
  const double s = std::sin(theta * 0.5);
  apply_unitary1(q, {Amplitude{c, 0}, Amplitude{0, -s}, Amplitude{0, -s},
                     Amplitude{c, 0}});
}

void StateVector::apply_ry(int q, double theta) {
  const double c = std::cos(theta * 0.5);
  const double s = std::sin(theta * 0.5);
  apply_unitary1(q, {Amplitude{c, 0}, Amplitude{-s, 0}, Amplitude{s, 0},
                     Amplitude{c, 0}});
}

void StateVector::apply_rz(int q, double theta) {
  check_qubit(q);
  const Amplitude e0 = std::polar(1.0, -theta * 0.5);
  const Amplitude e1 = std::polar(1.0, theta * 0.5);
  const BasisState bit = BasisState{1} << q;
  double* d = reinterpret_cast<double*>(amps_.data());
  if (bit >= 8 || amps_.size() < 8) {
    // Stride structure: period 2^(q+1) = a contiguous e0 run then an e1 run,
    // each 2^q long. One streaming sweep; the per-run e0/e1 choice is the
    // parity of the run index (selmask = 1), resolved inside the primitive
    // so both phase broadcasts stay live across the whole chunk.
    const std::size_t nruns = amps_.size() >> q;
    util::parallel_for_chunks(
        0, nruns,
        [d, q, bit, e0, e1](std::size_t lo, std::size_t hi) {
          scale_runs_pattern(d + 2 * (lo << q), lo, hi - lo, bit, 1,
                             e0.real(), e0.imag(), e1.real(), e1.imag());
        },
        std::max<std::size_t>(1, kParallelGrain >> q));
    return;
  }
  // Low qubit (runs shorter than a cache line): one sweep with a periodic
  // 8-amplitude phase pattern instead of two passes over every line.
  double tbl[16];
  for (std::size_t j = 0; j < 8; ++j) {
    const Amplitude e = (j & bit) ? e1 : e0;
    tbl[2 * j] = e.real();
    tbl[2 * j + 1] = e.imag();
  }
  util::parallel_for_chunks(
      0, amps_.size() >> 3,
      [d, &tbl](std::size_t lo, std::size_t hi) {
        mul_table16_blocks(d + 16 * lo, hi - lo, tbl);
      },
      kParallelGrain / 8);
}

void StateVector::apply_phase(int q, double phi) {
  check_qubit(q);
  const Amplitude e = std::polar(1.0, phi);
  const BasisState bit = BasisState{1} << q;
  const std::size_t half = amps_.size() >> 1;
  double* d = reinterpret_cast<double*>(amps_.data());
  util::parallel_for_chunks(
      0, half,
      [d, q, bit, e](std::size_t lo, std::size_t hi) {
        walk_runs(
            lo, hi, bit,
            [q, bit](std::size_t t) { return insert_zero_bit(t, q) | bit; },
            [d, e](BasisState i0, std::size_t len) {
              scale_run(d + 2 * i0, len, e.real(), e.imag());
            });
      },
      kParallelGrain);
}

void StateVector::apply_cx(int control, int target) {
  check_qubit(control);
  check_qubit(target);
  if (control == target) {
    throw std::invalid_argument("apply_cx: control == target");
  }
  // Quarter enumeration over the (control=1, target=0) representatives; each
  // run swaps two contiguous blocks.
  const BasisState cbit = BasisState{1} << control;
  const BasisState tbit = BasisState{1} << target;
  const int lo_q = std::min(control, target);
  const int hi_q = std::max(control, target);
  const std::size_t run = BasisState{1} << lo_q;
  const std::size_t quarter = amps_.size() >> 2;
  util::parallel_for_chunks(
      0, quarter,
      [this, lo_q, hi_q, cbit, tbit, run](std::size_t lo, std::size_t hi) {
        walk_runs(
            lo, hi, run,
            [lo_q, hi_q, cbit](std::size_t t) {
              return insert_two_zero_bits(t, lo_q, hi_q) | cbit;
            },
            [this, tbit](BasisState i0, std::size_t len) {
              std::swap_ranges(amps_.begin() + static_cast<std::ptrdiff_t>(i0),
                               amps_.begin() +
                                   static_cast<std::ptrdiff_t>(i0 + len),
                               amps_.begin() +
                                   static_cast<std::ptrdiff_t>(i0 | tbit));
            });
      },
      kParallelGrain);
}

void StateVector::apply_cz(int a, int b) {
  check_qubit(a);
  check_qubit(b);
  if (a == b) throw std::invalid_argument("apply_cz: identical qubits");
  // Only the (1, 1) quarter is touched, as contiguous runs.
  const int lo_q = std::min(a, b);
  const int hi_q = std::max(a, b);
  const BasisState mask = (BasisState{1} << a) | (BasisState{1} << b);
  const std::size_t run = BasisState{1} << lo_q;
  const std::size_t quarter = amps_.size() >> 2;
  double* d = reinterpret_cast<double*>(amps_.data());
  util::parallel_for_chunks(
      0, quarter,
      [d, lo_q, hi_q, mask, run](std::size_t lo, std::size_t hi) {
        walk_runs(
            lo, hi, run,
            [lo_q, hi_q, mask](std::size_t t) {
              return insert_two_zero_bits(t, lo_q, hi_q) | mask;
            },
            [d](BasisState i0, std::size_t len) {
              negate_run(d + 2 * i0, len);
            });
      },
      kParallelGrain);
}

void StateVector::apply_swap(int a, int b) {
  check_qubit(a);
  check_qubit(b);
  if (a == b) return;
  // Quarter enumeration over the (a=1, b=0) representatives; each run swaps
  // with the mirrored (a=0, b=1) block.
  const BasisState abit = BasisState{1} << a;
  const BasisState bbit = BasisState{1} << b;
  const int lo_q = std::min(a, b);
  const int hi_q = std::max(a, b);
  const std::size_t run = BasisState{1} << lo_q;
  const std::size_t quarter = amps_.size() >> 2;
  util::parallel_for_chunks(
      0, quarter,
      [this, lo_q, hi_q, abit, bbit, run](std::size_t lo, std::size_t hi) {
        walk_runs(
            lo, hi, run,
            [lo_q, hi_q, abit](std::size_t t) {
              return insert_two_zero_bits(t, lo_q, hi_q) | abit;
            },
            [this, abit, bbit](BasisState i0, std::size_t len) {
              const BasisState j0 = (i0 & ~abit) | bbit;
              std::swap_ranges(amps_.begin() + static_cast<std::ptrdiff_t>(i0),
                               amps_.begin() +
                                   static_cast<std::ptrdiff_t>(i0 + len),
                               amps_.begin() +
                                   static_cast<std::ptrdiff_t>(j0));
            });
      },
      kParallelGrain);
}

void StateVector::apply_rzz(int a, int b, double theta) {
  check_qubit(a);
  check_qubit(b);
  if (a == b) throw std::invalid_argument("apply_rzz: identical qubits");
  // exp(-i θ/2 Z_a Z_b): phase e^{-iθ/2} when bits agree, e^{+iθ/2} when
  // they differ. Every amplitude is touched, so the win is turning the old
  // per-element branch into constant-phase streaming runs.
  const Amplitude same = std::polar(1.0, -theta * 0.5);
  const Amplitude diff = std::polar(1.0, theta * 0.5);
  const BasisState abit = BasisState{1} << a;
  const BasisState bbit = BasisState{1} << b;
  const int lo_q = std::min(a, b);
  const std::size_t run = BasisState{1} << lo_q;
  double* d = reinterpret_cast<double*>(amps_.data());
  if (run >= 8 || amps_.size() < 8) {
    // The phase is constant over aligned runs of 2^min(a,b) amplitudes;
    // same/diff tracks the parity of the two qubit bits of the run index.
    const std::size_t nruns = amps_.size() >> lo_q;
    const std::size_t selmask = static_cast<std::size_t>((abit | bbit) >> lo_q);
    util::parallel_for_chunks(
        0, nruns,
        [d, lo_q, run, selmask, same, diff](std::size_t lo, std::size_t hi) {
          scale_runs_pattern(d + 2 * (lo << lo_q), lo, hi - lo, run, selmask,
                             same.real(), same.imag(), diff.real(),
                             diff.imag());
        },
        std::max<std::size_t>(1, kParallelGrain >> lo_q));
    return;
  }
  // min(a, b) < 3: the run structure is finer than a cache line. Bake the
  // phase pattern of 8 consecutive amplitudes into tables (one per value of
  // the high bit when it lies above the pattern, else a single periodic
  // table) and stream branch-free.
  const BasisState hibit = BasisState{1} << std::max(a, b);
  double tbl[2][16];
  for (int h = 0; h < 2; ++h) {
    for (std::size_t j = 0; j < 8; ++j) {
      BasisState idx = j;
      if (hibit >= 8 && h) idx |= hibit;  // high bit constant over the run
      const bool eq = ((idx & abit) != 0) == ((idx & bbit) != 0);
      const Amplitude ph = eq ? same : diff;
      tbl[h][2 * j] = ph.real();
      tbl[h][2 * j + 1] = ph.imag();
    }
  }
  // In 8-amplitude blocks, the table index flips with period hibit/8 blocks
  // (never, when the high bit sits inside the pattern), so the sweep walks
  // maximal equal-table runs and streams each through one primitive call.
  const std::size_t hb =
      hibit >= 8 ? static_cast<std::size_t>(hibit >> 3) : 0;
  util::parallel_for_chunks(
      0, amps_.size() >> 3,
      [d, &tbl, hb](std::size_t lo, std::size_t hi) {
        if (hb == 0) {
          mul_table16_blocks(d + 16 * lo, hi - lo, tbl[0]);
          return;
        }
        std::size_t blk = lo;
        while (blk < hi) {
          const std::size_t in_run = blk & (hb - 1);
          const std::size_t len = std::min(hb - in_run, hi - blk);
          mul_table16_blocks(d + 16 * blk, len, tbl[(blk & hb) ? 1 : 0]);
          blk += len;
        }
      },
      kParallelGrain / 8);
}

void StateVector::apply_rx_layer(double theta) {
  if (num_qubits_ == 0) return;
  const double c = std::cos(theta * 0.5);
  const double s = std::sin(theta * 0.5);
  double* d = reinterpret_cast<double*>(amps_.data());

  // Pass 1: the lowest B qubits, one cache-resident block at a time. Each
  // block of 2^B contiguous amplitudes runs all B butterfly levels before
  // the next block is loaded — one memory sweep applies B gates.
  const int B = std::min(num_qubits_, kFusedBlockQubits);
  const std::size_t blk = std::size_t{1} << B;
  const std::size_t nblocks = amps_.size() >> B;
  util::parallel_for_chunks(
      0, nblocks,
      [d, B, blk, c, s](std::size_t lo, std::size_t hi) {
        for (std::size_t blki = lo; blki < hi; ++blki) {
          // All B levels in radix-4 sweeps, backend resolved once per block.
          rx_block_levels(d + 2 * blk * blki, B, c, s);
        }
      },
      std::max<std::size_t>(1, kParallelGrain >> B));

  // Pass 2: the remaining high qubits, in groups of at most G. Viewing the
  // vector as [2^(n-B) rows x 2^B cols], a group's butterflies act across
  // rows; column tiles of W amplitudes keep the 2^g x W working set
  // cache-resident for the whole group, so one sweep applies g gates.
  const int high = num_qubits_ - B;
  for (int j0 = 0; j0 < high; j0 += kFusedGroupQubits) {
    const int g = std::min(kFusedGroupQubits, high - j0);
    const std::size_t rows = std::size_t{1} << g;
    const std::size_t others = (std::size_t{1} << high) >> g;
    const std::size_t W = std::min(blk, kFusedColumnTile);
    const std::size_t ntiles = blk / W;
    util::parallel_for_chunks(
        0, others * ntiles,
        [d, blk, j0, g, rows, ntiles, W, c, s](std::size_t lo,
                                               std::size_t hi) {
          for (std::size_t u = lo; u < hi; ++u) {
            const std::size_t o = u / ntiles;
            const std::size_t col = (u % ntiles) * W;
            // Row index with zeros spread in at the group's bit positions.
            const std::size_t base_h =
                ((o >> j0) << (j0 + g)) |
                (o & ((std::size_t{1} << j0) - 1));
            // Radix-4 over the group: two levels per tile sweep. The row
            // quartet (r, r+s, r+2s, r+3s) covers exactly the level-k pairs
            // (r, r+s), (r+2s, r+3s) and the level-(k+1) pairs of their
            // results — same per-element order as two separate level loops.
            int k = 0;
            for (; k + 1 < g; k += 2) {
              const std::size_t stride = std::size_t{1} << k;
              for (std::size_t r0 = 0; r0 < rows; r0 += 4 * stride) {
                for (std::size_t r = r0; r < r0 + stride; ++r) {
                  const std::size_t h0 = base_h | (r << j0);
                  const std::size_t h1 = base_h | ((r + stride) << j0);
                  const std::size_t h2 = base_h | ((r + 2 * stride) << j0);
                  const std::size_t h3 = base_h | ((r + 3 * stride) << j0);
                  rx_butterfly2_runs(d + 2 * (h0 * blk + col),
                                     d + 2 * (h1 * blk + col),
                                     d + 2 * (h2 * blk + col),
                                     d + 2 * (h3 * blk + col), W, c, s);
                }
              }
            }
            if (k < g) {
              const std::size_t stride = std::size_t{1} << k;
              for (std::size_t r0 = 0; r0 < rows; r0 += 2 * stride) {
                for (std::size_t r = r0; r < r0 + stride; ++r) {
                  const std::size_t h0 = base_h | (r << j0);
                  const std::size_t h1 = base_h | ((r + stride) << j0);
                  rx_butterfly_runs(d + 2 * (h0 * blk + col),
                                    d + 2 * (h1 * blk + col), W, c, s);
                }
              }
            }
          }
        },
        1);
  }
}

void StateVector::apply_diagonal_phase(const std::vector<double>& values,
                                       double scale) {
  if (values.size() != amps_.size()) {
    throw std::invalid_argument(
        "apply_diagonal_phase: table size must equal 2^n");
  }
  util::parallel_for_chunks(
      0, amps_.size(),
      [this, &values, scale](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
          amps_[i] *= std::polar(1.0, -scale * values[i]);
        }
      },
      kParallelGrain);
}

}  // namespace qq::sim
