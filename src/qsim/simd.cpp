#include "qsim/simd.hpp"

#include <cstdlib>
#include <cstring>

namespace qq::sim::simd {

Isa max_supported_isa() noexcept {
#if QQ_SIMD_X86
  // One-shot CPUID probe; GCC/Clang's builtin resolver caches the cpuid
  // results process-wide, and the static makes our classification one-shot
  // too.
  static const Isa cached = [] {
    if (__builtin_cpu_supports("avx512f") &&
        __builtin_cpu_supports("avx512dq") &&
        __builtin_cpu_supports("avx2")) {
      return Isa::kAvx512;
    }
    if (__builtin_cpu_supports("avx2")) return Isa::kAvx2;
    return Isa::kScalar;
  }();
  return cached;
#else
  return Isa::kScalar;
#endif
}

Isa initial_isa() noexcept {
  Isa isa = max_supported_isa();
  // Ops/bench override: QQ_SIMD_ISA=scalar|avx2|avx512 caps (never raises)
  // the startup selection, so before/after comparisons need no rebuild.
  if (const char* env = std::getenv("QQ_SIMD_ISA")) {
    Isa wanted = isa;
    if (std::strcmp(env, "scalar") == 0) {
      wanted = Isa::kScalar;
    } else if (std::strcmp(env, "avx2") == 0) {
      wanted = Isa::kAvx2;
    } else if (std::strcmp(env, "avx512") == 0) {
      wanted = Isa::kAvx512;
    }
    if (static_cast<int>(wanted) < static_cast<int>(isa)) isa = wanted;
  }
  return isa;
}

const char* isa_name(Isa isa) noexcept {
  switch (isa) {
    case Isa::kAvx512:
      return "avx512";
    case Isa::kAvx2:
      return "avx2";
    case Isa::kScalar:
      break;
  }
  return "scalar";
}

}  // namespace qq::sim::simd
