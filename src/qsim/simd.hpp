#pragma once
// Explicit SIMD backends for the state-vector kernels — the ONLY file in the
// repo allowed to spell x86 intrinsics (tools/qq_lint.cpp enforces it with
// the raw-intrinsics rule). Everything else calls the dispatched primitives
// below, which select among three implementations:
//
//   scalar  — portable reference loops, byte-for-byte the arithmetic the
//             pre-SIMD kernels performed. Always compiled; the only backend
//             when QQ_SIMD is OFF or the target is not x86-64.
//   avx2    — 256-bit lanes (4 doubles = 2 complex amplitudes per vector).
//   avx512  — 512-bit lanes for the elementwise primitives; the ordered
//             reductions deliberately reuse the AVX2 bodies (the horizontal
//             step dominates and 512-bit widening buys nothing there).
//
// Dispatch policy: compile-time, the QQ_SIMD CMake option gates whether the
// vector backends exist at all (they are built with per-function target
// attributes, so the surrounding TU needs no -mavx flags and the binary
// stays runnable on any x86-64). Run-time, a one-shot CPUID probe
// (max_supported_isa) picks the widest supported backend the first time any
// kernel runs; the QQ_SIMD_ISA environment variable ("scalar", "avx2",
// "avx512") and the set_isa() test hook can force a narrower one. Tests use
// set_isa() to prove every backend produces bit-for-bit identical states.
//
// Bit-for-bit contract: every primitive performs, per element, exactly the
// operation sequence of its scalar body — same multiplies, same add/sub
// order, no FMA contraction. The header pins -ffp-contract=off for its own
// definitions (see the pragma below): GCC defaults to -ffp-contract=fast,
// which would fuse the mul/add pairs into FMAs wherever the target allows
// it — notably the avx512 bodies, since AVX-512F implies 512-bit FMA — in
// any including TU that lacks the flag, and COMDAT folding of inline
// functions would then leak that TU's fused copy into the whole binary.
// Sign flips ride on exact IEEE identities:
// x + (-y) == x - y and (-s)*y == -(s*y) for all finite inputs. The ordered
// reductions keep the horizontal accumulation sequential in element order
// (lanes are folded back one at a time), so chunk partials match the scalar
// fold exactly — vectorization only covers the per-element products.
//
// Layout conventions: `p` points at interleaved [re, im] doubles; `len`
// counts complex amplitudes unless a name says otherwise. The *_lanes
// primitives serve BatchedStateVector's amplitude-major layout (B complex
// lanes per amplitude row).

#include <atomic>
#include <bit>
#include <cstddef>

#if defined(QQ_SIMD_ENABLED) && (defined(__x86_64__) || defined(__amd64__)) && \
    (defined(__GNUC__) || defined(__clang__))
#define QQ_SIMD_X86 1
#include <immintrin.h>
#else
#define QQ_SIMD_X86 0
#endif

// Contraction must be off for every definition in this header regardless of
// the including TU's flags (see the bit-for-bit contract above). Clang needs
// no pragma: its default (-ffp-contract=on) never fuses across the separate
// mul/add statements the bodies use.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC push_options
#pragma GCC optimize("fp-contract=off")
// GCC 12's _mm512_* intrinsics pass _mm512_undefined_pd() as the masked
// builtins' pass-through operand; combined with the optimize pragma above
// the uninitialized-use analysis flags that deliberate garbage (PR105593).
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wuninitialized"
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

namespace qq::sim::simd {

enum class Isa : int { kScalar = 0, kAvx2 = 1, kAvx512 = 2 };

/// Widest backend this CPU (and this build) can execute. One-shot CPUID
/// probe; compile-time capped at kScalar when QQ_SIMD is OFF.
Isa max_supported_isa() noexcept;

/// Backend selected at process start: min(max_supported_isa(), QQ_SIMD_ISA
/// environment override). Defined in simd.cpp.
Isa initial_isa() noexcept;

const char* isa_name(Isa isa) noexcept;

namespace detail {
inline std::atomic<int>& isa_slot() noexcept {
  static std::atomic<int> slot{static_cast<int>(initial_isa())};
  return slot;
}
}  // namespace detail

/// The backend every dispatched primitive currently routes to.
inline Isa active_isa() noexcept {
  return static_cast<Isa>(detail::isa_slot().load(std::memory_order_relaxed));
}

/// Force a backend (clamped to max_supported_isa()); returns what was
/// actually installed. Test/bench hook — the parity suites flip this to
/// compare backends inside one process. Not intended for concurrent use
/// with running kernels.
inline Isa set_isa(Isa isa) noexcept {
  if (static_cast<int>(isa) > static_cast<int>(max_supported_isa())) {
    isa = max_supported_isa();
  }
  detail::isa_slot().store(static_cast<int>(isa), std::memory_order_relaxed);
  return isa;
}

// ---- scalar reference bodies ---------------------------------------------
// These are the exact loops the pre-SIMD kernels ran; the vector backends
// replicate their per-element arithmetic lane by lane.

namespace scalar {

/// amps[i] *= (pr + i*pi) for `len` contiguous amplitudes.
inline void scale_run(double* p, std::size_t len, double pr,
                      double pi) noexcept {
  for (std::size_t j = 0; j < 2 * len; j += 2) {
    const double re = p[j];
    const double im = p[j + 1];
    p[j] = pr * re - pi * im;
    p[j + 1] = pr * im + pi * re;
  }
}

inline void negate_run(double* p, std::size_t len) noexcept {
  for (std::size_t j = 0; j < 2 * len; ++j) p[j] = -p[j];
}

/// Scale `nruns` adjacent aligned runs of `run_amps` amplitudes, where run
/// k (global run index r0+k) takes phase (pr0,pi0) when
/// popcount((r0+k) & selmask) is even and (pr1,pi1) when odd — the
/// aligned-run phase structure of a full rz sweep (selmask = 1) or rzz
/// sweep (selmask = (abit|bbit) >> min(a,b)). One streaming pass with the
/// phase choice resolved per run keeps both broadcast constants live across
/// the whole chunk instead of paying a dispatch + broadcast per run.
inline void scale_runs_pattern(double* p, std::size_t r0, std::size_t nruns,
                               std::size_t run_amps, std::size_t selmask,
                               double pr0, double pi0, double pr1,
                               double pi1) noexcept {
  for (std::size_t k = 0; k < nruns; ++k) {
    const bool odd = (std::popcount((r0 + k) & selmask) & 1) != 0;
    scale_run(p + 2 * run_amps * k, run_amps, odd ? pr1 : pr0,
              odd ? pi1 : pi0);
  }
}

/// RX butterfly between two contiguous runs of `len` amplitudes:
///   a0' = c*a0 - i s*a1,  a1' = -i s*a0 + c*a1.
inline void rx_butterfly_runs(double* p0, double* p1, std::size_t len,
                              double c, double s) noexcept {
  for (std::size_t j = 0; j < 2 * len; j += 2) {
    const double a0r = p0[j];
    const double a0i = p0[j + 1];
    const double a1r = p1[j];
    const double a1i = p1[j + 1];
    p0[j] = c * a0r + s * a1i;
    p0[j + 1] = c * a0i - s * a1r;
    p1[j] = c * a1r + s * a0i;
    p1[j + 1] = c * a1i - s * a0r;
  }
}

/// Qubit-0 butterfly over interleaved (even, odd) amplitude pairs:
/// `n_amps` (even) amplitudes = n_amps/2 adjacent pairs.
inline void rx_interleaved_pairs(double* p, std::size_t n_amps, double c,
                                 double s) noexcept {
  for (std::size_t j = 0; j < 2 * n_amps; j += 4) {
    const double a0r = p[j];
    const double a0i = p[j + 1];
    const double a1r = p[j + 2];
    const double a1i = p[j + 3];
    p[j] = c * a0r + s * a1i;
    p[j + 1] = c * a0i - s * a1r;
    p[j + 2] = c * a1r + s * a0i;
    p[j + 3] = c * a1i - s * a0r;
  }
}

/// Fused butterfly levels 0 and 1 over `n_amps` (a multiple of 4)
/// contiguous amplitudes. Each quartet (a0..a3) gets the qubit-0 pairs
/// (a0,a1),(a2,a3) and then the qubit-1 pairs (b0,b2),(b1,b3) while it is
/// register-resident — one memory sweep instead of two. The per-amplitude
/// arithmetic is exactly the two-pass sequence (level 0 fully applied, then
/// level 1 on its results, identical operands), so the output is
/// bit-identical to rx_interleaved_pairs followed by the stride-2
/// rx_butterfly_runs sweep.
inline void rx_quad01(double* p, std::size_t n_amps, double c,
                      double s) noexcept {
  for (std::size_t j = 0; j < 2 * n_amps; j += 8) {
    const double a0r = p[j];
    const double a0i = p[j + 1];
    const double a1r = p[j + 2];
    const double a1i = p[j + 3];
    const double a2r = p[j + 4];
    const double a2i = p[j + 5];
    const double a3r = p[j + 6];
    const double a3i = p[j + 7];
    const double b0r = c * a0r + s * a1i;
    const double b0i = c * a0i - s * a1r;
    const double b1r = c * a1r + s * a0i;
    const double b1i = c * a1i - s * a0r;
    const double b2r = c * a2r + s * a3i;
    const double b2i = c * a2i - s * a3r;
    const double b3r = c * a3r + s * a2i;
    const double b3i = c * a3i - s * a2r;
    p[j] = c * b0r + s * b2i;
    p[j + 1] = c * b0i - s * b2r;
    p[j + 2] = c * b1r + s * b3i;
    p[j + 3] = c * b1i - s * b3r;
    p[j + 4] = c * b2r + s * b0i;
    p[j + 5] = c * b2i - s * b0r;
    p[j + 6] = c * b3r + s * b1i;
    p[j + 7] = c * b3i - s * b1r;
  }
}

/// Two fused butterfly levels across four runs of `len` amplitudes: level q
/// on (p0,p1) and (p2,p3), then level q+1 on the results (b0,b2) and
/// (b1,b3). Same bit-identity argument as rx_quad01: identical per-element
/// operations in the same per-element order as the two separate sweeps.
inline void rx_butterfly2_runs(double* p0, double* p1, double* p2, double* p3,
                               std::size_t len, double c, double s) noexcept {
  for (std::size_t j = 0; j < 2 * len; j += 2) {
    const double a0r = p0[j];
    const double a0i = p0[j + 1];
    const double a1r = p1[j];
    const double a1i = p1[j + 1];
    const double a2r = p2[j];
    const double a2i = p2[j + 1];
    const double a3r = p3[j];
    const double a3i = p3[j + 1];
    const double b0r = c * a0r + s * a1i;
    const double b0i = c * a0i - s * a1r;
    const double b1r = c * a1r + s * a0i;
    const double b1i = c * a1i - s * a0r;
    const double b2r = c * a2r + s * a3i;
    const double b2i = c * a2i - s * a3r;
    const double b3r = c * a3r + s * a2i;
    const double b3i = c * a3i - s * a2r;
    p0[j] = c * b0r + s * b2i;
    p0[j + 1] = c * b0i - s * b2r;
    p1[j] = c * b1r + s * b3i;
    p1[j + 1] = c * b1i - s * b3r;
    p2[j] = c * b2r + s * b0i;
    p2[j + 1] = c * b2i - s * b0r;
    p3[j] = c * b3r + s * b1i;
    p3[j + 1] = c * b3i - s * b1r;
  }
}

/// All `levels` butterfly levels over one contiguous block of 2^levels
/// amplitudes, radix-4: levels are consumed in pairs (0,1), (2,3), ... so a
/// 12-level block takes 6 memory sweeps instead of 12; an odd final level
/// falls back to the single-level sweep. Level order and per-element
/// arithmetic match the one-level-at-a-time loop exactly, so the block is
/// bit-identical to B successive single-level passes.
inline void rx_block_levels(double* p, int levels, double c,
                            double s) noexcept {
  if (levels <= 0) return;
  const std::size_t blk = std::size_t{1} << levels;
  if (levels == 1) {
    rx_interleaved_pairs(p, blk, c, s);
    return;
  }
  rx_quad01(p, blk, c, s);
  int q = 2;
  for (; q + 1 < levels; q += 2) {
    const std::size_t stride = std::size_t{1} << q;
    for (std::size_t base = 0; base < blk; base += 4 * stride) {
      rx_butterfly2_runs(p + 2 * base, p + 2 * (base + stride),
                         p + 2 * (base + 2 * stride),
                         p + 2 * (base + 3 * stride), stride, c, s);
    }
  }
  if (q < levels) {
    const std::size_t stride = std::size_t{1} << q;
    for (std::size_t base = 0; base < blk; base += 2 * stride) {
      rx_butterfly_runs(p + 2 * base, p + 2 * (base + stride), stride, c, s);
    }
  }
}

/// Multiply `nblocks` blocks of 8 amplitudes by the periodic 16-double
/// phase table [e0r e0i e1r e1i ...] (the low-qubit rz/rzz pattern).
inline void mul_table16_blocks(double* p, std::size_t nblocks,
                               const double* tbl) noexcept {
  for (std::size_t blk = 0; blk < nblocks; ++blk) {
    double* q = p + 16 * blk;
    for (std::size_t j = 0; j < 16; j += 2) {
      const double re = q[j];
      const double im = q[j + 1];
      q[j] = tbl[j] * re - tbl[j + 1] * im;
      q[j + 1] = tbl[j] * im + tbl[j + 1] * re;
    }
  }
}

/// acc += |p[i]|^2, element order preserved.
inline double sum_norms(double acc, const double* p,
                        std::size_t n_amps) noexcept {
  for (std::size_t i = 0; i < n_amps; ++i) {
    acc += p[2 * i] * p[2 * i] + p[2 * i + 1] * p[2 * i + 1];
  }
  return acc;
}

/// acc += |p[i]|^2 * w[i], element order preserved.
inline double sum_norms_weighted(double acc, const double* p, const double* w,
                                 std::size_t n_amps) noexcept {
  for (std::size_t i = 0; i < n_amps; ++i) {
    acc += (p[2 * i] * p[2 * i] + p[2 * i + 1] * p[2 * i + 1]) * w[i];
  }
  return acc;
}

/// acc += |p0[i]|^2 - |p1[i]|^2 (the <Z> pair body), order preserved.
inline double sum_norm_diffs(double acc, const double* p0, const double* p1,
                             std::size_t n_amps) noexcept {
  for (std::size_t i = 0; i < n_amps; ++i) {
    acc += (p0[2 * i] * p0[2 * i] + p0[2 * i + 1] * p0[2 * i + 1]) -
           (p1[2 * i] * p1[2 * i] + p1[2 * i + 1] * p1[2 * i + 1]);
  }
  return acc;
}

/// acc += |p00|^2 - |p01|^2 - |p10|^2 + |p11|^2 (the <ZZ> quarter body).
inline double sum_norm_quads(double acc, const double* p00, const double* p01,
                             const double* p10, const double* p11,
                             std::size_t n_amps) noexcept {
  for (std::size_t i = 0; i < n_amps; ++i) {
    const double n00 = p00[2 * i] * p00[2 * i] + p00[2 * i + 1] * p00[2 * i + 1];
    const double n01 = p01[2 * i] * p01[2 * i] + p01[2 * i + 1] * p01[2 * i + 1];
    const double n10 = p10[2 * i] * p10[2 * i] + p10[2 * i + 1] * p10[2 * i + 1];
    const double n11 = p11[2 * i] * p11[2 * i] + p11[2 * i + 1] * p11[2 * i + 1];
    acc += ((n00 - n01) - n10) + n11;
  }
  return acc;
}

/// Per-lane RX butterfly between two amplitude rows of `lanes` complex
/// lanes. cdup/sdup hold each lane's cos/sin duplicated per double:
/// cdup[2b] == cdup[2b+1] == cos for lane b (the layout the vector
/// backends consume directly).
inline void rx_butterfly_lanes(double* p0, double* p1, const double* cdup,
                               const double* sdup,
                               std::size_t lanes) noexcept {
  for (std::size_t b = 0; b < lanes; ++b) {
    const double c = cdup[2 * b];
    const double s = sdup[2 * b];
    const double a0r = p0[2 * b];
    const double a0i = p0[2 * b + 1];
    const double a1r = p1[2 * b];
    const double a1i = p1[2 * b + 1];
    p0[2 * b] = c * a0r + s * a1i;
    p0[2 * b + 1] = c * a0i - s * a1r;
    p1[2 * b] = c * a1r + s * a0i;
    p1[2 * b + 1] = c * a1i - s * a0r;
  }
}

/// Two fused butterfly levels across four amplitude rows of `lanes` complex
/// lanes each (the batched twin of rx_butterfly2_runs): level q on (p0,p1)
/// and (p2,p3), then level q+1 on the results (b0,b2) and (b1,b3), with
/// each lane's own c/s from the duplicated cdup/sdup layout. Per-lane
/// arithmetic and order are exactly two rx_butterfly_lanes passes.
inline void rx_butterfly2_lanes(double* p0, double* p1, double* p2,
                                double* p3, const double* cdup,
                                const double* sdup,
                                std::size_t lanes) noexcept {
  for (std::size_t b = 0; b < lanes; ++b) {
    const double c = cdup[2 * b];
    const double s = sdup[2 * b];
    const double a0r = p0[2 * b];
    const double a0i = p0[2 * b + 1];
    const double a1r = p1[2 * b];
    const double a1i = p1[2 * b + 1];
    const double a2r = p2[2 * b];
    const double a2i = p2[2 * b + 1];
    const double a3r = p3[2 * b];
    const double a3i = p3[2 * b + 1];
    const double b0r = c * a0r + s * a1i;
    const double b0i = c * a0i - s * a1r;
    const double b1r = c * a1r + s * a0i;
    const double b1i = c * a1i - s * a0r;
    const double b2r = c * a2r + s * a3i;
    const double b2i = c * a2i - s * a3r;
    const double b3r = c * a3r + s * a2i;
    const double b3i = c * a3i - s * a2r;
    p0[2 * b] = c * b0r + s * b2i;
    p0[2 * b + 1] = c * b0i - s * b2r;
    p1[2 * b] = c * b1r + s * b3i;
    p1[2 * b + 1] = c * b1i - s * b3r;
    p2[2 * b] = c * b2r + s * b0i;
    p2[2 * b + 1] = c * b2i - s * b0r;
    p3[2 * b] = c * b3r + s * b1i;
    p3[2 * b + 1] = c * b3i - s * b1r;
  }
}

/// acc[b] += |row_i lane b|^2 * values[i] for i in [lo, hi), where row i of
/// `data` starts at data + 2*lanes*i. Per-lane accumulation is sequential
/// in i — each lane's result is bit-identical to an unbatched sweep.
inline void sum_norms_weighted_lanes(double* acc, const double* data,
                                     std::size_t lanes, const double* values,
                                     std::size_t lo, std::size_t hi) noexcept {
  for (std::size_t b = 0; b < lanes; ++b) {
    double a = acc[b];
    for (std::size_t i = lo; i < hi; ++i) {
      const double* q = data + 2 * lanes * i + 2 * b;
      a += (q[0] * q[0] + q[1] * q[1]) * values[i];
    }
    acc[b] = a;
  }
}

}  // namespace scalar

#if QQ_SIMD_X86

#define QQ_SIMD_TARGET_AVX2 __attribute__((target("avx2")))
#define QQ_SIMD_TARGET_AVX512 __attribute__((target("avx512f,avx512dq")))

// ---- AVX2 backend --------------------------------------------------------
// 4 doubles (2 complex amplitudes) per __m256d. Sign-flip masks implement
// the scalar +/- patterns exactly: xor with -0.0 negates, and
// x + (-y) == x - y bitwise for every finite IEEE double.

namespace avx2 {

QQ_SIMD_TARGET_AVX2 inline __m256d swap_pairs(__m256d v) noexcept {
  return _mm256_permute_pd(v, 0b0101);  // [im0 re0 im1 re1]
}

QQ_SIMD_TARGET_AVX2 inline __m256d flip_even(void) noexcept {
  return _mm256_set_pd(0.0, -0.0, 0.0, -0.0);  // negate re lanes
}

QQ_SIMD_TARGET_AVX2 inline __m256d flip_odd(void) noexcept {
  return _mm256_set_pd(-0.0, 0.0, -0.0, 0.0);  // negate im lanes
}

QQ_SIMD_TARGET_AVX2 inline void scale_run(double* p, std::size_t len,
                                          double pr, double pi) noexcept {
  const __m256d prv = _mm256_set1_pd(pr);
  const __m256d piv = _mm256_set1_pd(pi);
  const __m256d meven = flip_even();
  std::size_t j = 0;
  const std::size_t nd = 2 * len;
  for (; j + 4 <= nd; j += 4) {
    const __m256d v = _mm256_loadu_pd(p + j);
    const __m256d a = _mm256_mul_pd(v, prv);
    const __m256d b = _mm256_mul_pd(swap_pairs(v), piv);
    // re: pr*re + (-(pi*im)) == pr*re - pi*im ; im: pr*im + pi*re.
    _mm256_storeu_pd(p + j, _mm256_add_pd(a, _mm256_xor_pd(b, meven)));
  }
  if (j < nd) scalar::scale_run(p + j, (nd - j) / 2, pr, pi);
}

QQ_SIMD_TARGET_AVX2 inline void negate_run(double* p,
                                           std::size_t len) noexcept {
  const __m256d sign = _mm256_set1_pd(-0.0);
  std::size_t j = 0;
  const std::size_t nd = 2 * len;
  for (; j + 4 <= nd; j += 4) {
    _mm256_storeu_pd(p + j, _mm256_xor_pd(_mm256_loadu_pd(p + j), sign));
  }
  for (; j < nd; ++j) p[j] = -p[j];
}

QQ_SIMD_TARGET_AVX2 inline void scale_runs_pattern(
    double* p, std::size_t r0, std::size_t nruns, std::size_t run_amps,
    std::size_t selmask, double pr0, double pi0, double pr1,
    double pi1) noexcept {
  const __m256d pr0v = _mm256_set1_pd(pr0);
  const __m256d pi0v = _mm256_set1_pd(pi0);
  const __m256d pr1v = _mm256_set1_pd(pr1);
  const __m256d pi1v = _mm256_set1_pd(pi1);
  const __m256d meven = flip_even();
  const std::size_t nd = 2 * run_amps;
  for (std::size_t k = 0; k < nruns; ++k) {
    const bool odd = (std::popcount((r0 + k) & selmask) & 1) != 0;
    const __m256d prv = odd ? pr1v : pr0v;
    const __m256d piv = odd ? pi1v : pi0v;
    double* q = p + nd * k;
    std::size_t j = 0;
    for (; j + 4 <= nd; j += 4) {
      const __m256d v = _mm256_loadu_pd(q + j);
      const __m256d a = _mm256_mul_pd(v, prv);
      const __m256d b = _mm256_mul_pd(swap_pairs(v), piv);
      _mm256_storeu_pd(q + j, _mm256_add_pd(a, _mm256_xor_pd(b, meven)));
    }
    if (j < nd) {
      scalar::scale_run(q + j, (nd - j) / 2, odd ? pr1 : pr0,
                        odd ? pi1 : pi0);
    }
  }
}

QQ_SIMD_TARGET_AVX2 inline void rx_butterfly_runs(double* p0, double* p1,
                                                  std::size_t len, double c,
                                                  double s) noexcept {
  const __m256d cv = _mm256_set1_pd(c);
  const __m256d sv = _mm256_set1_pd(s);
  const __m256d modd = flip_odd();
  std::size_t j = 0;
  const std::size_t nd = 2 * len;
  for (; j + 4 <= nd; j += 4) {
    const __m256d v0 = _mm256_loadu_pd(p0 + j);
    const __m256d v1 = _mm256_loadu_pd(p1 + j);
    const __m256d t0 = _mm256_xor_pd(_mm256_mul_pd(swap_pairs(v1), sv), modd);
    const __m256d t1 = _mm256_xor_pd(_mm256_mul_pd(swap_pairs(v0), sv), modd);
    _mm256_storeu_pd(p0 + j, _mm256_add_pd(_mm256_mul_pd(v0, cv), t0));
    _mm256_storeu_pd(p1 + j, _mm256_add_pd(_mm256_mul_pd(v1, cv), t1));
  }
  if (j < nd) {
    scalar::rx_butterfly_runs(p0 + j, p1 + j, (nd - j) / 2, c, s);
  }
}

QQ_SIMD_TARGET_AVX2 inline void rx_interleaved_pairs(double* p,
                                                     std::size_t n_amps,
                                                     double c,
                                                     double s) noexcept {
  const __m256d cv = _mm256_set1_pd(c);
  const __m256d sv = _mm256_set1_pd(s);
  const __m256d modd = flip_odd();
  std::size_t j = 0;
  const std::size_t nd = 2 * n_amps;
  for (; j + 4 <= nd; j += 4) {
    const __m256d v = _mm256_loadu_pd(p + j);
    // [a0r a0i a1r a1i] reversed -> [a1i a1r a0i a0r]: each output double
    // pairs with the partner amplitude's swapped component.
    const __m256d rev = _mm256_permute4x64_pd(v, 0b00011011);
    const __m256d t = _mm256_xor_pd(_mm256_mul_pd(rev, sv), modd);
    _mm256_storeu_pd(p + j, _mm256_add_pd(_mm256_mul_pd(v, cv), t));
  }
  if (j < nd) scalar::rx_interleaved_pairs(p + j, (nd - j) / 2, c, s);
}

QQ_SIMD_TARGET_AVX2 inline void rx_quad01(double* p, std::size_t n_amps,
                                          double c, double s) noexcept {
  const __m256d cv = _mm256_set1_pd(c);
  const __m256d sv = _mm256_set1_pd(s);
  const __m256d modd = flip_odd();
  std::size_t j = 0;
  const std::size_t nd = 2 * n_amps;
  for (; j + 8 <= nd; j += 8) {
    const __m256d v0 = _mm256_loadu_pd(p + j);      // [a0 a1]
    const __m256d v1 = _mm256_loadu_pd(p + j + 4);  // [a2 a3]
    // Level 0: interleaved partner within each register (the
    // rx_interleaved_pairs body).
    const __m256d r0 = _mm256_permute4x64_pd(v0, 0b00011011);
    const __m256d r1 = _mm256_permute4x64_pd(v1, 0b00011011);
    const __m256d b0 = _mm256_add_pd(
        _mm256_mul_pd(v0, cv),
        _mm256_xor_pd(_mm256_mul_pd(r0, sv), modd));
    const __m256d b1 = _mm256_add_pd(
        _mm256_mul_pd(v1, cv),
        _mm256_xor_pd(_mm256_mul_pd(r1, sv), modd));
    // Level 1: elementwise across the two registers (the
    // rx_butterfly_runs body with run length 2).
    const __m256d t0 = _mm256_xor_pd(_mm256_mul_pd(swap_pairs(b1), sv), modd);
    const __m256d t1 = _mm256_xor_pd(_mm256_mul_pd(swap_pairs(b0), sv), modd);
    _mm256_storeu_pd(p + j, _mm256_add_pd(_mm256_mul_pd(b0, cv), t0));
    _mm256_storeu_pd(p + j + 4, _mm256_add_pd(_mm256_mul_pd(b1, cv), t1));
  }
  if (j < nd) scalar::rx_quad01(p + j, (nd - j) / 2, c, s);
}

QQ_SIMD_TARGET_AVX2 inline void rx_butterfly2_runs(double* p0, double* p1,
                                                   double* p2, double* p3,
                                                   std::size_t len, double c,
                                                   double s) noexcept {
  const __m256d cv = _mm256_set1_pd(c);
  const __m256d sv = _mm256_set1_pd(s);
  const __m256d modd = flip_odd();
  std::size_t j = 0;
  const std::size_t nd = 2 * len;
  for (; j + 4 <= nd; j += 4) {
    const __m256d v0 = _mm256_loadu_pd(p0 + j);
    const __m256d v1 = _mm256_loadu_pd(p1 + j);
    const __m256d v2 = _mm256_loadu_pd(p2 + j);
    const __m256d v3 = _mm256_loadu_pd(p3 + j);
    const __m256d b0 = _mm256_add_pd(
        _mm256_mul_pd(v0, cv),
        _mm256_xor_pd(_mm256_mul_pd(swap_pairs(v1), sv), modd));
    const __m256d b1 = _mm256_add_pd(
        _mm256_mul_pd(v1, cv),
        _mm256_xor_pd(_mm256_mul_pd(swap_pairs(v0), sv), modd));
    const __m256d b2 = _mm256_add_pd(
        _mm256_mul_pd(v2, cv),
        _mm256_xor_pd(_mm256_mul_pd(swap_pairs(v3), sv), modd));
    const __m256d b3 = _mm256_add_pd(
        _mm256_mul_pd(v3, cv),
        _mm256_xor_pd(_mm256_mul_pd(swap_pairs(v2), sv), modd));
    const __m256d t0 = _mm256_xor_pd(_mm256_mul_pd(swap_pairs(b2), sv), modd);
    const __m256d t1 = _mm256_xor_pd(_mm256_mul_pd(swap_pairs(b3), sv), modd);
    const __m256d t2 = _mm256_xor_pd(_mm256_mul_pd(swap_pairs(b0), sv), modd);
    const __m256d t3 = _mm256_xor_pd(_mm256_mul_pd(swap_pairs(b1), sv), modd);
    _mm256_storeu_pd(p0 + j, _mm256_add_pd(_mm256_mul_pd(b0, cv), t0));
    _mm256_storeu_pd(p1 + j, _mm256_add_pd(_mm256_mul_pd(b1, cv), t1));
    _mm256_storeu_pd(p2 + j, _mm256_add_pd(_mm256_mul_pd(b2, cv), t2));
    _mm256_storeu_pd(p3 + j, _mm256_add_pd(_mm256_mul_pd(b3, cv), t3));
  }
  if (j < nd) {
    scalar::rx_butterfly2_runs(p0 + j, p1 + j, p2 + j, p3 + j, (nd - j) / 2,
                               c, s);
  }
}

QQ_SIMD_TARGET_AVX2 inline void rx_block_levels(double* p, int levels,
                                                double c, double s) noexcept {
  if (levels <= 0) return;
  const std::size_t blk = std::size_t{1} << levels;
  if (levels == 1) {
    rx_interleaved_pairs(p, blk, c, s);
    return;
  }
  rx_quad01(p, blk, c, s);
  int q = 2;
  for (; q + 1 < levels; q += 2) {
    const std::size_t stride = std::size_t{1} << q;
    for (std::size_t base = 0; base < blk; base += 4 * stride) {
      rx_butterfly2_runs(p + 2 * base, p + 2 * (base + stride),
                         p + 2 * (base + 2 * stride),
                         p + 2 * (base + 3 * stride), stride, c, s);
    }
  }
  if (q < levels) {
    const std::size_t stride = std::size_t{1} << q;
    for (std::size_t base = 0; base < blk; base += 2 * stride) {
      rx_butterfly_runs(p + 2 * base, p + 2 * (base + stride), stride, c, s);
    }
  }
}

QQ_SIMD_TARGET_AVX2 inline void mul_table16_blocks(double* p,
                                                   std::size_t nblocks,
                                                   const double* tbl) noexcept {
  const __m256d meven = flip_even();
  __m256d tr[4];
  __m256d ti[4];
  for (int k = 0; k < 4; ++k) {
    const __m256d t = _mm256_loadu_pd(tbl + 4 * k);
    tr[k] = _mm256_permute_pd(t, 0b0000);              // [t0r t0r t1r t1r]
    ti[k] = _mm256_xor_pd(_mm256_permute_pd(t, 0b1111), meven);  // pre-negated re lane
  }
  for (std::size_t blk = 0; blk < nblocks; ++blk) {
    double* q = p + 16 * blk;
    for (int k = 0; k < 4; ++k) {
      const __m256d v = _mm256_loadu_pd(q + 4 * k);
      const __m256d res = _mm256_add_pd(_mm256_mul_pd(v, tr[k]),
                                        _mm256_mul_pd(swap_pairs(v), ti[k]));
      _mm256_storeu_pd(q + 4 * k, res);
    }
  }
}

/// Squared norms of amplitudes [i, i+4) in element order:
/// hadd(v0*v0, v1*v1) yields [n0 n2 n1 n3]; each n is re*re + im*im, the
/// scalar std::norm operation order.
QQ_SIMD_TARGET_AVX2 inline __m256d norms4_shuffled(const double* p) noexcept {
  const __m256d v0 = _mm256_loadu_pd(p);
  const __m256d v1 = _mm256_loadu_pd(p + 4);
  return _mm256_hadd_pd(_mm256_mul_pd(v0, v0), _mm256_mul_pd(v1, v1));
}

QQ_SIMD_TARGET_AVX2 inline __m256d norms4_ordered(const double* p) noexcept {
  return _mm256_permute4x64_pd(norms4_shuffled(p), 0b11011000);  // [n0 n1 n2 n3]
}

QQ_SIMD_TARGET_AVX2 inline double sum_norms(double acc, const double* p,
                                            std::size_t n_amps) noexcept {
  std::size_t i = 0;
  alignas(32) double lane[4];
  for (; i + 4 <= n_amps; i += 4) {
    // Shuffled lane order [n0 n2 n1 n3]; fold back in element order.
    _mm256_store_pd(lane, norms4_shuffled(p + 2 * i));
    acc += lane[0];
    acc += lane[2];
    acc += lane[1];
    acc += lane[3];
  }
  return scalar::sum_norms(acc, p + 2 * i, n_amps - i);
}

QQ_SIMD_TARGET_AVX2 inline double sum_norms_weighted(
    double acc, const double* p, const double* w,
    std::size_t n_amps) noexcept {
  std::size_t i = 0;
  alignas(32) double lane[4];
  for (; i + 4 <= n_amps; i += 4) {
    const __m256d prod = _mm256_mul_pd(norms4_ordered(p + 2 * i),
                                       _mm256_loadu_pd(w + i));
    _mm256_store_pd(lane, prod);
    acc += lane[0];
    acc += lane[1];
    acc += lane[2];
    acc += lane[3];
  }
  return scalar::sum_norms_weighted(acc, p + 2 * i, w + i, n_amps - i);
}

QQ_SIMD_TARGET_AVX2 inline double sum_norm_diffs(double acc, const double* p0,
                                                 const double* p1,
                                                 std::size_t n_amps) noexcept {
  std::size_t i = 0;
  alignas(32) double lane[4];
  for (; i + 4 <= n_amps; i += 4) {
    const __m256d d = _mm256_sub_pd(norms4_shuffled(p0 + 2 * i),
                                    norms4_shuffled(p1 + 2 * i));
    _mm256_store_pd(lane, d);
    acc += lane[0];
    acc += lane[2];
    acc += lane[1];
    acc += lane[3];
  }
  return scalar::sum_norm_diffs(acc, p0 + 2 * i, p1 + 2 * i, n_amps - i);
}

QQ_SIMD_TARGET_AVX2 inline double sum_norm_quads(
    double acc, const double* p00, const double* p01, const double* p10,
    const double* p11, std::size_t n_amps) noexcept {
  std::size_t i = 0;
  alignas(32) double lane[4];
  for (; i + 4 <= n_amps; i += 4) {
    const __m256d d = _mm256_add_pd(
        _mm256_sub_pd(_mm256_sub_pd(norms4_shuffled(p00 + 2 * i),
                                    norms4_shuffled(p01 + 2 * i)),
                      norms4_shuffled(p10 + 2 * i)),
        norms4_shuffled(p11 + 2 * i));
    _mm256_store_pd(lane, d);
    acc += lane[0];
    acc += lane[2];
    acc += lane[1];
    acc += lane[3];
  }
  return scalar::sum_norm_quads(acc, p00 + 2 * i, p01 + 2 * i, p10 + 2 * i,
                                p11 + 2 * i, n_amps - i);
}

QQ_SIMD_TARGET_AVX2 inline void rx_butterfly_lanes(
    double* p0, double* p1, const double* cdup, const double* sdup,
    std::size_t lanes) noexcept {
  const __m256d modd = flip_odd();
  std::size_t j = 0;
  const std::size_t nd = 2 * lanes;
  for (; j + 4 <= nd; j += 4) {
    const __m256d cv = _mm256_loadu_pd(cdup + j);
    const __m256d sv = _mm256_loadu_pd(sdup + j);
    const __m256d v0 = _mm256_loadu_pd(p0 + j);
    const __m256d v1 = _mm256_loadu_pd(p1 + j);
    const __m256d t0 = _mm256_xor_pd(_mm256_mul_pd(swap_pairs(v1), sv), modd);
    const __m256d t1 = _mm256_xor_pd(_mm256_mul_pd(swap_pairs(v0), sv), modd);
    _mm256_storeu_pd(p0 + j, _mm256_add_pd(_mm256_mul_pd(v0, cv), t0));
    _mm256_storeu_pd(p1 + j, _mm256_add_pd(_mm256_mul_pd(v1, cv), t1));
  }
  if (j < nd) {
    scalar::rx_butterfly_lanes(p0 + j, p1 + j, cdup + j, sdup + j,
                               (nd - j) / 2);
  }
}

QQ_SIMD_TARGET_AVX2 inline void rx_butterfly2_lanes(
    double* p0, double* p1, double* p2, double* p3, const double* cdup,
    const double* sdup, std::size_t lanes) noexcept {
  const __m256d modd = flip_odd();
  std::size_t j = 0;
  const std::size_t nd = 2 * lanes;
  for (; j + 4 <= nd; j += 4) {
    const __m256d cv = _mm256_loadu_pd(cdup + j);
    const __m256d sv = _mm256_loadu_pd(sdup + j);
    const __m256d v0 = _mm256_loadu_pd(p0 + j);
    const __m256d v1 = _mm256_loadu_pd(p1 + j);
    const __m256d v2 = _mm256_loadu_pd(p2 + j);
    const __m256d v3 = _mm256_loadu_pd(p3 + j);
    const __m256d b0 = _mm256_add_pd(
        _mm256_mul_pd(v0, cv),
        _mm256_xor_pd(_mm256_mul_pd(swap_pairs(v1), sv), modd));
    const __m256d b1 = _mm256_add_pd(
        _mm256_mul_pd(v1, cv),
        _mm256_xor_pd(_mm256_mul_pd(swap_pairs(v0), sv), modd));
    const __m256d b2 = _mm256_add_pd(
        _mm256_mul_pd(v2, cv),
        _mm256_xor_pd(_mm256_mul_pd(swap_pairs(v3), sv), modd));
    const __m256d b3 = _mm256_add_pd(
        _mm256_mul_pd(v3, cv),
        _mm256_xor_pd(_mm256_mul_pd(swap_pairs(v2), sv), modd));
    const __m256d t0 = _mm256_xor_pd(_mm256_mul_pd(swap_pairs(b2), sv), modd);
    const __m256d t1 = _mm256_xor_pd(_mm256_mul_pd(swap_pairs(b3), sv), modd);
    const __m256d t2 = _mm256_xor_pd(_mm256_mul_pd(swap_pairs(b0), sv), modd);
    const __m256d t3 = _mm256_xor_pd(_mm256_mul_pd(swap_pairs(b1), sv), modd);
    _mm256_storeu_pd(p0 + j, _mm256_add_pd(_mm256_mul_pd(b0, cv), t0));
    _mm256_storeu_pd(p1 + j, _mm256_add_pd(_mm256_mul_pd(b1, cv), t1));
    _mm256_storeu_pd(p2 + j, _mm256_add_pd(_mm256_mul_pd(b2, cv), t2));
    _mm256_storeu_pd(p3 + j, _mm256_add_pd(_mm256_mul_pd(b3, cv), t3));
  }
  if (j < nd) {
    scalar::rx_butterfly2_lanes(p0 + j, p1 + j, p2 + j, p3 + j, cdup + j,
                                sdup + j, (nd - j) / 2);
  }
}

QQ_SIMD_TARGET_AVX2 inline void sum_norms_weighted_lanes(
    double* acc, const double* data, std::size_t lanes, const double* values,
    std::size_t lo, std::size_t hi) noexcept {
  const std::size_t stride = 2 * lanes;
  std::size_t b = 0;
  for (; b + 4 <= lanes; b += 4) {
    // Four lanes' accumulators ride in one register across the whole i
    // sweep; each lane's adds stay sequential in i.
    __m256d accv = _mm256_loadu_pd(acc + b);
    const double* row = data + 2 * b;
    for (std::size_t i = lo; i < hi; ++i) {
      const __m256d n4 = norms4_ordered(row + stride * i);
      accv = _mm256_add_pd(accv,
                           _mm256_mul_pd(n4, _mm256_set1_pd(values[i])));
    }
    _mm256_storeu_pd(acc + b, accv);
  }
  if (b < lanes) {
    // Remaining lanes share the row pointers; delegate per-lane scalar.
    for (; b < lanes; ++b) {
      double a = acc[b];
      for (std::size_t i = lo; i < hi; ++i) {
        const double* q = data + stride * i + 2 * b;
        a += (q[0] * q[0] + q[1] * q[1]) * values[i];
      }
      acc[b] = a;
    }
  }
}

}  // namespace avx2

// ---- AVX-512 backend -----------------------------------------------------
// 8 doubles (4 complex amplitudes) per __m512d, elementwise primitives
// only: the ordered reductions dispatch to the AVX2 bodies (their cost is
// the sequential horizontal fold, which wider vectors cannot help).

namespace avx512 {

QQ_SIMD_TARGET_AVX512 inline __m512d swap_pairs(__m512d v) noexcept {
  return _mm512_permute_pd(v, 0b01010101);
}

QQ_SIMD_TARGET_AVX512 inline __m512d flip_even(void) noexcept {
  return _mm512_set_pd(0.0, -0.0, 0.0, -0.0, 0.0, -0.0, 0.0, -0.0);
}

QQ_SIMD_TARGET_AVX512 inline __m512d flip_odd(void) noexcept {
  return _mm512_set_pd(-0.0, 0.0, -0.0, 0.0, -0.0, 0.0, -0.0, 0.0);
}

QQ_SIMD_TARGET_AVX512 inline void scale_run(double* p, std::size_t len,
                                            double pr, double pi) noexcept {
  const __m512d prv = _mm512_set1_pd(pr);
  const __m512d piv = _mm512_set1_pd(pi);
  const __m512d meven = flip_even();
  std::size_t j = 0;
  const std::size_t nd = 2 * len;
  for (; j + 8 <= nd; j += 8) {
    const __m512d v = _mm512_loadu_pd(p + j);
    const __m512d a = _mm512_mul_pd(v, prv);
    const __m512d b = _mm512_mul_pd(swap_pairs(v), piv);
    _mm512_storeu_pd(p + j, _mm512_add_pd(a, _mm512_xor_pd(b, meven)));
  }
  if (j < nd) scalar::scale_run(p + j, (nd - j) / 2, pr, pi);
}

QQ_SIMD_TARGET_AVX512 inline void negate_run(double* p,
                                             std::size_t len) noexcept {
  const __m512d sign = _mm512_set1_pd(-0.0);
  std::size_t j = 0;
  const std::size_t nd = 2 * len;
  for (; j + 8 <= nd; j += 8) {
    _mm512_storeu_pd(p + j, _mm512_xor_pd(_mm512_loadu_pd(p + j), sign));
  }
  for (; j < nd; ++j) p[j] = -p[j];
}

QQ_SIMD_TARGET_AVX512 inline void scale_runs_pattern(
    double* p, std::size_t r0, std::size_t nruns, std::size_t run_amps,
    std::size_t selmask, double pr0, double pi0, double pr1,
    double pi1) noexcept {
  const __m512d pr0v = _mm512_set1_pd(pr0);
  const __m512d pi0v = _mm512_set1_pd(pi0);
  const __m512d pr1v = _mm512_set1_pd(pr1);
  const __m512d pi1v = _mm512_set1_pd(pi1);
  const __m512d meven = flip_even();
  const std::size_t nd = 2 * run_amps;
  for (std::size_t k = 0; k < nruns; ++k) {
    const bool odd = (std::popcount((r0 + k) & selmask) & 1) != 0;
    const __m512d prv = odd ? pr1v : pr0v;
    const __m512d piv = odd ? pi1v : pi0v;
    double* q = p + nd * k;
    std::size_t j = 0;
    for (; j + 8 <= nd; j += 8) {
      const __m512d v = _mm512_loadu_pd(q + j);
      const __m512d a = _mm512_mul_pd(v, prv);
      const __m512d b = _mm512_mul_pd(swap_pairs(v), piv);
      _mm512_storeu_pd(q + j, _mm512_add_pd(a, _mm512_xor_pd(b, meven)));
    }
    if (j < nd) {
      scalar::scale_run(q + j, (nd - j) / 2, odd ? pr1 : pr0,
                        odd ? pi1 : pi0);
    }
  }
}

QQ_SIMD_TARGET_AVX512 inline void rx_butterfly_runs(double* p0, double* p1,
                                                    std::size_t len, double c,
                                                    double s) noexcept {
  const __m512d cv = _mm512_set1_pd(c);
  const __m512d sv = _mm512_set1_pd(s);
  const __m512d modd = flip_odd();
  std::size_t j = 0;
  const std::size_t nd = 2 * len;
  for (; j + 8 <= nd; j += 8) {
    const __m512d v0 = _mm512_loadu_pd(p0 + j);
    const __m512d v1 = _mm512_loadu_pd(p1 + j);
    const __m512d t0 = _mm512_xor_pd(_mm512_mul_pd(swap_pairs(v1), sv), modd);
    const __m512d t1 = _mm512_xor_pd(_mm512_mul_pd(swap_pairs(v0), sv), modd);
    _mm512_storeu_pd(p0 + j, _mm512_add_pd(_mm512_mul_pd(v0, cv), t0));
    _mm512_storeu_pd(p1 + j, _mm512_add_pd(_mm512_mul_pd(v1, cv), t1));
  }
  if (j < nd) {
    scalar::rx_butterfly_runs(p0 + j, p1 + j, (nd - j) / 2, c, s);
  }
}

QQ_SIMD_TARGET_AVX512 inline void rx_interleaved_pairs(double* p,
                                                       std::size_t n_amps,
                                                       double c,
                                                       double s) noexcept {
  const __m512d cv = _mm512_set1_pd(c);
  const __m512d sv = _mm512_set1_pd(s);
  const __m512d modd = flip_odd();
  std::size_t j = 0;
  const std::size_t nd = 2 * n_amps;
  for (; j + 8 <= nd; j += 8) {
    const __m512d v = _mm512_loadu_pd(p + j);
    // Reverse within each 256-bit half: two interleaved butterfly pairs.
    const __m512d rev = _mm512_permutex_pd(v, 0b00011011);
    const __m512d t = _mm512_xor_pd(_mm512_mul_pd(rev, sv), modd);
    _mm512_storeu_pd(p + j, _mm512_add_pd(_mm512_mul_pd(v, cv), t));
  }
  if (j < nd) scalar::rx_interleaved_pairs(p + j, (nd - j) / 2, c, s);
}

QQ_SIMD_TARGET_AVX512 inline void rx_quad01(double* p, std::size_t n_amps,
                                            double c, double s) noexcept {
  const __m512d cv = _mm512_set1_pd(c);
  const __m512d sv = _mm512_set1_pd(s);
  const __m512d modd = flip_odd();
  std::size_t j = 0;
  const std::size_t nd = 2 * n_amps;
  for (; j + 8 <= nd; j += 8) {
    const __m512d v = _mm512_loadu_pd(p + j);  // one quartet [a0 a1 a2 a3]
    // Level 0: interleaved partner within each 256-bit half.
    const __m512d rev = _mm512_permutex_pd(v, 0b00011011);
    const __m512d b = _mm512_add_pd(
        _mm512_mul_pd(v, cv),
        _mm512_xor_pd(_mm512_mul_pd(rev, sv), modd));
    // Level 1: partner lives in the other 256-bit half; 0x4E swaps the
    // 128-bit chunks [c0 c1 c2 c3] -> [c2 c3 c0 c1]. Both halves use the
    // same +/- pattern (o0 = c*b0 + s*swap(b2) with modd, o2 symmetric),
    // so one register expression covers the whole quartet.
    const __m512d w = _mm512_shuffle_f64x2(b, b, 0x4E);
    const __m512d t = _mm512_xor_pd(_mm512_mul_pd(swap_pairs(w), sv), modd);
    _mm512_storeu_pd(p + j, _mm512_add_pd(_mm512_mul_pd(b, cv), t));
  }
  if (j < nd) scalar::rx_quad01(p + j, (nd - j) / 2, c, s);
}

QQ_SIMD_TARGET_AVX512 inline void rx_butterfly2_runs(double* p0, double* p1,
                                                     double* p2, double* p3,
                                                     std::size_t len, double c,
                                                     double s) noexcept {
  const __m512d cv = _mm512_set1_pd(c);
  const __m512d sv = _mm512_set1_pd(s);
  const __m512d modd = flip_odd();
  std::size_t j = 0;
  const std::size_t nd = 2 * len;
  for (; j + 8 <= nd; j += 8) {
    const __m512d v0 = _mm512_loadu_pd(p0 + j);
    const __m512d v1 = _mm512_loadu_pd(p1 + j);
    const __m512d v2 = _mm512_loadu_pd(p2 + j);
    const __m512d v3 = _mm512_loadu_pd(p3 + j);
    const __m512d b0 = _mm512_add_pd(
        _mm512_mul_pd(v0, cv),
        _mm512_xor_pd(_mm512_mul_pd(swap_pairs(v1), sv), modd));
    const __m512d b1 = _mm512_add_pd(
        _mm512_mul_pd(v1, cv),
        _mm512_xor_pd(_mm512_mul_pd(swap_pairs(v0), sv), modd));
    const __m512d b2 = _mm512_add_pd(
        _mm512_mul_pd(v2, cv),
        _mm512_xor_pd(_mm512_mul_pd(swap_pairs(v3), sv), modd));
    const __m512d b3 = _mm512_add_pd(
        _mm512_mul_pd(v3, cv),
        _mm512_xor_pd(_mm512_mul_pd(swap_pairs(v2), sv), modd));
    const __m512d t0 = _mm512_xor_pd(_mm512_mul_pd(swap_pairs(b2), sv), modd);
    const __m512d t1 = _mm512_xor_pd(_mm512_mul_pd(swap_pairs(b3), sv), modd);
    const __m512d t2 = _mm512_xor_pd(_mm512_mul_pd(swap_pairs(b0), sv), modd);
    const __m512d t3 = _mm512_xor_pd(_mm512_mul_pd(swap_pairs(b1), sv), modd);
    _mm512_storeu_pd(p0 + j, _mm512_add_pd(_mm512_mul_pd(b0, cv), t0));
    _mm512_storeu_pd(p1 + j, _mm512_add_pd(_mm512_mul_pd(b1, cv), t1));
    _mm512_storeu_pd(p2 + j, _mm512_add_pd(_mm512_mul_pd(b2, cv), t2));
    _mm512_storeu_pd(p3 + j, _mm512_add_pd(_mm512_mul_pd(b3, cv), t3));
  }
  if (j < nd) {
    scalar::rx_butterfly2_runs(p0 + j, p1 + j, p2 + j, p3 + j, (nd - j) / 2,
                               c, s);
  }
}

QQ_SIMD_TARGET_AVX512 inline void rx_block_levels(double* p, int levels,
                                                  double c,
                                                  double s) noexcept {
  if (levels <= 0) return;
  const std::size_t blk = std::size_t{1} << levels;
  if (levels == 1) {
    rx_interleaved_pairs(p, blk, c, s);
    return;
  }
  rx_quad01(p, blk, c, s);
  int q = 2;
  for (; q + 1 < levels; q += 2) {
    const std::size_t stride = std::size_t{1} << q;  // >= 4 amps: zmm-exact
    for (std::size_t base = 0; base < blk; base += 4 * stride) {
      rx_butterfly2_runs(p + 2 * base, p + 2 * (base + stride),
                         p + 2 * (base + 2 * stride),
                         p + 2 * (base + 3 * stride), stride, c, s);
    }
  }
  if (q < levels) {
    const std::size_t stride = std::size_t{1} << q;
    for (std::size_t base = 0; base < blk; base += 2 * stride) {
      rx_butterfly_runs(p + 2 * base, p + 2 * (base + stride), stride, c, s);
    }
  }
}

QQ_SIMD_TARGET_AVX512 inline void mul_table16_blocks(
    double* p, std::size_t nblocks, const double* tbl) noexcept {
  const __m512d meven = flip_even();
  __m512d tr[2];
  __m512d ti[2];
  for (int k = 0; k < 2; ++k) {
    const __m512d t = _mm512_loadu_pd(tbl + 8 * k);
    tr[k] = _mm512_permute_pd(t, 0b00000000);
    ti[k] = _mm512_xor_pd(_mm512_permute_pd(t, 0b11111111), meven);
  }
  for (std::size_t blk = 0; blk < nblocks; ++blk) {
    double* q = p + 16 * blk;
    for (int k = 0; k < 2; ++k) {
      const __m512d v = _mm512_loadu_pd(q + 8 * k);
      const __m512d res = _mm512_add_pd(_mm512_mul_pd(v, tr[k]),
                                        _mm512_mul_pd(swap_pairs(v), ti[k]));
      _mm512_storeu_pd(q + 8 * k, res);
    }
  }
}

QQ_SIMD_TARGET_AVX512 inline void rx_butterfly_lanes(
    double* p0, double* p1, const double* cdup, const double* sdup,
    std::size_t lanes) noexcept {
  const __m512d modd = flip_odd();
  std::size_t j = 0;
  const std::size_t nd = 2 * lanes;
  for (; j + 8 <= nd; j += 8) {
    const __m512d cv = _mm512_loadu_pd(cdup + j);
    const __m512d sv = _mm512_loadu_pd(sdup + j);
    const __m512d v0 = _mm512_loadu_pd(p0 + j);
    const __m512d v1 = _mm512_loadu_pd(p1 + j);
    const __m512d t0 = _mm512_xor_pd(_mm512_mul_pd(swap_pairs(v1), sv), modd);
    const __m512d t1 = _mm512_xor_pd(_mm512_mul_pd(swap_pairs(v0), sv), modd);
    _mm512_storeu_pd(p0 + j, _mm512_add_pd(_mm512_mul_pd(v0, cv), t0));
    _mm512_storeu_pd(p1 + j, _mm512_add_pd(_mm512_mul_pd(v1, cv), t1));
  }
  if (j < nd) {
    scalar::rx_butterfly_lanes(p0 + j, p1 + j, cdup + j, sdup + j,
                               (nd - j) / 2);
  }
}

QQ_SIMD_TARGET_AVX512 inline void rx_butterfly2_lanes(
    double* p0, double* p1, double* p2, double* p3, const double* cdup,
    const double* sdup, std::size_t lanes) noexcept {
  const __m512d modd = flip_odd();
  std::size_t j = 0;
  const std::size_t nd = 2 * lanes;
  for (; j + 8 <= nd; j += 8) {
    const __m512d cv = _mm512_loadu_pd(cdup + j);
    const __m512d sv = _mm512_loadu_pd(sdup + j);
    const __m512d v0 = _mm512_loadu_pd(p0 + j);
    const __m512d v1 = _mm512_loadu_pd(p1 + j);
    const __m512d v2 = _mm512_loadu_pd(p2 + j);
    const __m512d v3 = _mm512_loadu_pd(p3 + j);
    const __m512d b0 = _mm512_add_pd(
        _mm512_mul_pd(v0, cv),
        _mm512_xor_pd(_mm512_mul_pd(swap_pairs(v1), sv), modd));
    const __m512d b1 = _mm512_add_pd(
        _mm512_mul_pd(v1, cv),
        _mm512_xor_pd(_mm512_mul_pd(swap_pairs(v0), sv), modd));
    const __m512d b2 = _mm512_add_pd(
        _mm512_mul_pd(v2, cv),
        _mm512_xor_pd(_mm512_mul_pd(swap_pairs(v3), sv), modd));
    const __m512d b3 = _mm512_add_pd(
        _mm512_mul_pd(v3, cv),
        _mm512_xor_pd(_mm512_mul_pd(swap_pairs(v2), sv), modd));
    const __m512d t0 = _mm512_xor_pd(_mm512_mul_pd(swap_pairs(b2), sv), modd);
    const __m512d t1 = _mm512_xor_pd(_mm512_mul_pd(swap_pairs(b3), sv), modd);
    const __m512d t2 = _mm512_xor_pd(_mm512_mul_pd(swap_pairs(b0), sv), modd);
    const __m512d t3 = _mm512_xor_pd(_mm512_mul_pd(swap_pairs(b1), sv), modd);
    _mm512_storeu_pd(p0 + j, _mm512_add_pd(_mm512_mul_pd(b0, cv), t0));
    _mm512_storeu_pd(p1 + j, _mm512_add_pd(_mm512_mul_pd(b1, cv), t1));
    _mm512_storeu_pd(p2 + j, _mm512_add_pd(_mm512_mul_pd(b2, cv), t2));
    _mm512_storeu_pd(p3 + j, _mm512_add_pd(_mm512_mul_pd(b3, cv), t3));
  }
  if (j < nd) {
    scalar::rx_butterfly2_lanes(p0 + j, p1 + j, p2 + j, p3 + j, cdup + j,
                                sdup + j, (nd - j) / 2);
  }
}

}  // namespace avx512

#endif  // QQ_SIMD_X86

// ---- dispatched entry points ---------------------------------------------
// One relaxed atomic load + a predicted switch per call; the kernels call
// these once per contiguous run (thousands of elements), so dispatch cost
// is noise.

// Short runs (cz/z/phase at low qubits) skip dispatch entirely: the scalar
// body inlines into the caller and beats a call into a target-attributed
// function it cannot inline. Safe for the bit-for-bit contract — every
// backend computes identical bits, so mixing per run length changes
// nothing observable.
inline constexpr std::size_t kShortRunAmps = 8;

inline void scale_run(double* p, std::size_t len, double pr,
                      double pi) noexcept {
#if QQ_SIMD_X86
  if (len >= kShortRunAmps) {
    switch (active_isa()) {
      case Isa::kAvx512:
        avx512::scale_run(p, len, pr, pi);
        return;
      case Isa::kAvx2:
        avx2::scale_run(p, len, pr, pi);
        return;
      case Isa::kScalar:
        break;
    }
  }
#endif
  scalar::scale_run(p, len, pr, pi);
}

inline void negate_run(double* p, std::size_t len) noexcept {
#if QQ_SIMD_X86
  if (len >= kShortRunAmps) {
    switch (active_isa()) {
      case Isa::kAvx512:
        avx512::negate_run(p, len);
        return;
      case Isa::kAvx2:
        avx2::negate_run(p, len);
        return;
      case Isa::kScalar:
        break;
    }
  }
#endif
  scalar::negate_run(p, len);
}

inline void scale_runs_pattern(double* p, std::size_t r0, std::size_t nruns,
                               std::size_t run_amps, std::size_t selmask,
                               double pr0, double pi0, double pr1,
                               double pi1) noexcept {
#if QQ_SIMD_X86
  switch (active_isa()) {
    case Isa::kAvx512:
      avx512::scale_runs_pattern(p, r0, nruns, run_amps, selmask, pr0, pi0,
                                 pr1, pi1);
      return;
    case Isa::kAvx2:
      avx2::scale_runs_pattern(p, r0, nruns, run_amps, selmask, pr0, pi0,
                               pr1, pi1);
      return;
    case Isa::kScalar:
      break;
  }
#endif
  scalar::scale_runs_pattern(p, r0, nruns, run_amps, selmask, pr0, pi0, pr1,
                             pi1);
}

inline void rx_butterfly_runs(double* p0, double* p1, std::size_t len,
                              double c, double s) noexcept {
#if QQ_SIMD_X86
  switch (active_isa()) {
    case Isa::kAvx512:
      avx512::rx_butterfly_runs(p0, p1, len, c, s);
      return;
    case Isa::kAvx2:
      avx2::rx_butterfly_runs(p0, p1, len, c, s);
      return;
    case Isa::kScalar:
      break;
  }
#endif
  scalar::rx_butterfly_runs(p0, p1, len, c, s);
}

inline void rx_interleaved_pairs(double* p, std::size_t n_amps, double c,
                                 double s) noexcept {
#if QQ_SIMD_X86
  switch (active_isa()) {
    case Isa::kAvx512:
      avx512::rx_interleaved_pairs(p, n_amps, c, s);
      return;
    case Isa::kAvx2:
      avx2::rx_interleaved_pairs(p, n_amps, c, s);
      return;
    case Isa::kScalar:
      break;
  }
#endif
  scalar::rx_interleaved_pairs(p, n_amps, c, s);
}

inline void rx_quad01(double* p, std::size_t n_amps, double c,
                      double s) noexcept {
#if QQ_SIMD_X86
  switch (active_isa()) {
    case Isa::kAvx512:
      avx512::rx_quad01(p, n_amps, c, s);
      return;
    case Isa::kAvx2:
      avx2::rx_quad01(p, n_amps, c, s);
      return;
    case Isa::kScalar:
      break;
  }
#endif
  scalar::rx_quad01(p, n_amps, c, s);
}

inline void rx_butterfly2_runs(double* p0, double* p1, double* p2, double* p3,
                               std::size_t len, double c, double s) noexcept {
#if QQ_SIMD_X86
  switch (active_isa()) {
    case Isa::kAvx512:
      avx512::rx_butterfly2_runs(p0, p1, p2, p3, len, c, s);
      return;
    case Isa::kAvx2:
      avx2::rx_butterfly2_runs(p0, p1, p2, p3, len, c, s);
      return;
    case Isa::kScalar:
      break;
  }
#endif
  scalar::rx_butterfly2_runs(p0, p1, p2, p3, len, c, s);
}

/// One dispatch covers all 2^levels amplitudes of a block — the pass-1
/// mixer hot path resolves the backend once per block, not once per
/// butterfly run.
inline void rx_block_levels(double* p, int levels, double c,
                            double s) noexcept {
#if QQ_SIMD_X86
  switch (active_isa()) {
    case Isa::kAvx512:
      avx512::rx_block_levels(p, levels, c, s);
      return;
    case Isa::kAvx2:
      avx2::rx_block_levels(p, levels, c, s);
      return;
    case Isa::kScalar:
      break;
  }
#endif
  scalar::rx_block_levels(p, levels, c, s);
}

inline void mul_table16_blocks(double* p, std::size_t nblocks,
                               const double* tbl) noexcept {
#if QQ_SIMD_X86
  switch (active_isa()) {
    case Isa::kAvx512:
      avx512::mul_table16_blocks(p, nblocks, tbl);
      return;
    case Isa::kAvx2:
      avx2::mul_table16_blocks(p, nblocks, tbl);
      return;
    case Isa::kScalar:
      break;
  }
#endif
  scalar::mul_table16_blocks(p, nblocks, tbl);
}

inline double sum_norms(double acc, const double* p,
                        std::size_t n_amps) noexcept {
#if QQ_SIMD_X86
  if (active_isa() != Isa::kScalar) {
    return avx2::sum_norms(acc, p, n_amps);
  }
#endif
  return scalar::sum_norms(acc, p, n_amps);
}

inline double sum_norms_weighted(double acc, const double* p, const double* w,
                                 std::size_t n_amps) noexcept {
#if QQ_SIMD_X86
  if (active_isa() != Isa::kScalar) {
    return avx2::sum_norms_weighted(acc, p, w, n_amps);
  }
#endif
  return scalar::sum_norms_weighted(acc, p, w, n_amps);
}

inline double sum_norm_diffs(double acc, const double* p0, const double* p1,
                             std::size_t n_amps) noexcept {
#if QQ_SIMD_X86
  if (active_isa() != Isa::kScalar) {
    return avx2::sum_norm_diffs(acc, p0, p1, n_amps);
  }
#endif
  return scalar::sum_norm_diffs(acc, p0, p1, n_amps);
}

inline double sum_norm_quads(double acc, const double* p00, const double* p01,
                             const double* p10, const double* p11,
                             std::size_t n_amps) noexcept {
#if QQ_SIMD_X86
  if (active_isa() != Isa::kScalar) {
    return avx2::sum_norm_quads(acc, p00, p01, p10, p11, n_amps);
  }
#endif
  return scalar::sum_norm_quads(acc, p00, p01, p10, p11, n_amps);
}

inline void rx_butterfly_lanes(double* p0, double* p1, const double* cdup,
                               const double* sdup,
                               std::size_t lanes) noexcept {
#if QQ_SIMD_X86
  switch (active_isa()) {
    case Isa::kAvx512:
      avx512::rx_butterfly_lanes(p0, p1, cdup, sdup, lanes);
      return;
    case Isa::kAvx2:
      avx2::rx_butterfly_lanes(p0, p1, cdup, sdup, lanes);
      return;
    case Isa::kScalar:
      break;
  }
#endif
  scalar::rx_butterfly_lanes(p0, p1, cdup, sdup, lanes);
}

inline void rx_butterfly2_lanes(double* p0, double* p1, double* p2,
                                double* p3, const double* cdup,
                                const double* sdup,
                                std::size_t lanes) noexcept {
#if QQ_SIMD_X86
  switch (active_isa()) {
    case Isa::kAvx512:
      avx512::rx_butterfly2_lanes(p0, p1, p2, p3, cdup, sdup, lanes);
      return;
    case Isa::kAvx2:
      avx2::rx_butterfly2_lanes(p0, p1, p2, p3, cdup, sdup, lanes);
      return;
    case Isa::kScalar:
      break;
  }
#endif
  scalar::rx_butterfly2_lanes(p0, p1, p2, p3, cdup, sdup, lanes);
}

inline void sum_norms_weighted_lanes(double* acc, const double* data,
                                     std::size_t lanes, const double* values,
                                     std::size_t lo, std::size_t hi) noexcept {
#if QQ_SIMD_X86
  if (active_isa() != Isa::kScalar) {
    avx2::sum_norms_weighted_lanes(acc, data, lanes, values, lo, hi);
    return;
  }
#endif
  scalar::sum_norms_weighted_lanes(acc, data, lanes, values, lo, hi);
}

}  // namespace qq::sim::simd

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#pragma GCC pop_options
#endif
