#include "qsim/batched.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

#include "qsim/kernel_detail.hpp"
#include "qsim/simd.hpp"
#include "util/thread_pool.hpp"

namespace qq::sim {

using detail::insert_zero_bit;
using detail::kParallelGrain;

BatchedStateVector::BatchedStateVector(int num_qubits, int batch)
    : num_qubits_(num_qubits), batch_(batch) {
  if (num_qubits < 0 || num_qubits > kMaxQubits) {
    throw std::invalid_argument(
        "BatchedStateVector: qubit count must be in [0, " +
        std::to_string(kMaxQubits) + "], got " + std::to_string(num_qubits));
  }
  if (batch < 1) {
    throw std::invalid_argument("BatchedStateVector: batch must be >= 1");
  }
  size_ = std::size_t{1} << num_qubits;
  data_.assign(2 * static_cast<std::size_t>(batch_) * size_, 0.0);
  for (int b = 0; b < batch_; ++b) data_[2 * b] = 1.0;
  cdup_.assign(2 * static_cast<std::size_t>(batch_), 0.0);
  sdup_.assign(2 * static_cast<std::size_t>(batch_), 0.0);
}

void BatchedStateVector::check_lane(int lane) const {
  if (lane < 0 || lane >= batch_) {
    throw std::out_of_range("BatchedStateVector: lane " +
                            std::to_string(lane) + " out of range for batch " +
                            std::to_string(batch_));
  }
}

void BatchedStateVector::check_scales(
    const std::vector<double>& scales) const {
  if (scales.size() != static_cast<std::size_t>(batch_)) {
    throw std::invalid_argument(
        "BatchedStateVector: per-lane parameter count must equal batch");
  }
}

void BatchedStateVector::reset_to_plus() {
  // Same amplitude expression as StateVector::reset_to_plus, so every lane
  // starts bit-identical to the flat |+>^n.
  const double a = 1.0 / std::sqrt(static_cast<double>(size_));
  const std::size_t lanes = static_cast<std::size_t>(batch_);
  util::parallel_for_chunks(
      0, size_,
      [this, a, lanes](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
          double* row = data_.data() + 2 * lanes * i;
          for (std::size_t b = 0; b < lanes; ++b) {
            row[2 * b] = a;
            row[2 * b + 1] = 0.0;
          }
        }
      },
      std::max<std::size_t>(1, kParallelGrain / lanes));
}

void BatchedStateVector::apply_diagonal_phase(
    const std::vector<double>& values, const std::vector<double>& scales) {
  if (values.size() != size_) {
    throw std::invalid_argument(
        "BatchedStateVector::apply_diagonal_phase: table size must equal "
        "2^n");
  }
  check_scales(scales);
  const std::size_t lanes = static_cast<std::size_t>(batch_);
  // Per lane this is exactly StateVector::apply_diagonal_phase's
  // `amp *= std::polar(1.0, -scale * values[i])` — same complex multiply,
  // same operand order — with values[i] fetched once per row for all lanes.
  util::parallel_for_chunks(
      0, size_,
      [this, &values, &scales, lanes](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
          const double v = values[i];
          double* row = data_.data() + 2 * lanes * i;
          for (std::size_t b = 0; b < lanes; ++b) {
            const std::complex<double> ph = std::polar(1.0, -scales[b] * v);
            std::complex<double> z(row[2 * b], row[2 * b + 1]);
            z *= ph;
            row[2 * b] = z.real();
            row[2 * b + 1] = z.imag();
          }
        }
      },
      std::max<std::size_t>(1, kParallelGrain / lanes));
}

void BatchedStateVector::apply_rx_layer(const std::vector<double>& thetas) {
  check_scales(thetas);
  if (num_qubits_ == 0) return;
  const std::size_t lanes = static_cast<std::size_t>(batch_);
  for (std::size_t b = 0; b < lanes; ++b) {
    // Same per-lane c/s expressions as StateVector::apply_rx_layer.
    const double c = std::cos(thetas[b] * 0.5);
    const double s = std::sin(thetas[b] * 0.5);
    cdup_[2 * b] = c;
    cdup_[2 * b + 1] = c;
    sdup_[2 * b] = s;
    sdup_[2 * b + 1] = s;
  }
  // Same blocking/fusion story as the flat kernel: both passes reorder work
  // only ACROSS amplitudes, never the per-amplitude qubit order, so each
  // lane's dataflow — and therefore its bits — match an unbatched solve.
  double* d = data_.data();
  const double* cd = cdup_.data();
  const double* sd = sdup_.data();

  // Pass 1: the lowest B qubits on row blocks that fit the flat kernel's
  // 64 KiB cache budget (a row is one amplitude's 2*lanes doubles), two
  // levels fused per sweep.
  int B = 1;
  while (B < num_qubits_ &&
         (16 * lanes << (B + 1)) <= (std::size_t{1} << 16)) {
    ++B;
  }
  const std::size_t blk = std::size_t{1} << B;
  const std::size_t nblocks = size_ >> B;
  util::parallel_for_chunks(
      0, nblocks,
      [d, cd, sd, lanes, B, blk](std::size_t lo, std::size_t hi) {
        for (std::size_t blki = lo; blki < hi; ++blki) {
          double* p = d + 2 * lanes * blk * blki;
          int q = 0;
          for (; q + 1 < B; q += 2) {
            const std::size_t stride = std::size_t{1} << q;
            for (std::size_t base = 0; base < blk; base += 4 * stride) {
              for (std::size_t r = base; r < base + stride; ++r) {
                simd::rx_butterfly2_lanes(
                    p + 2 * lanes * r, p + 2 * lanes * (r + stride),
                    p + 2 * lanes * (r + 2 * stride),
                    p + 2 * lanes * (r + 3 * stride), cd, sd, lanes);
              }
            }
          }
          if (q < B) {
            const std::size_t stride = std::size_t{1} << q;
            for (std::size_t base = 0; base < blk; base += 2 * stride) {
              for (std::size_t r = base; r < base + stride; ++r) {
                simd::rx_butterfly_lanes(p + 2 * lanes * r,
                                         p + 2 * lanes * (r + stride), cd, sd,
                                         lanes);
              }
            }
          }
        }
      },
      std::max<std::size_t>(1, (kParallelGrain / lanes) >> B));

  // Pass 2: remaining high qubits, two levels fused per full-array sweep
  // (quartets i0, i0|bit_q, i0|bit_{q+1}, i0|both), odd leftover as a plain
  // pair sweep.
  int q = B;
  for (; q + 1 < num_qubits_; q += 2) {
    const BasisState bit0 = BasisState{1} << q;
    const BasisState bit1 = BasisState{1} << (q + 1);
    const std::size_t quarter = size_ >> 2;
    util::parallel_for_chunks(
        0, quarter,
        [d, cd, sd, lanes, q, bit0, bit1](std::size_t lo, std::size_t hi) {
          for (std::size_t t = lo; t < hi; ++t) {
            const BasisState i0 = detail::insert_two_zero_bits(t, q, q + 1);
            simd::rx_butterfly2_lanes(
                d + 2 * lanes * i0, d + 2 * lanes * (i0 | bit0),
                d + 2 * lanes * (i0 | bit1),
                d + 2 * lanes * (i0 | bit0 | bit1), cd, sd, lanes);
          }
        },
        std::max<std::size_t>(1, kParallelGrain / (4 * lanes)));
  }
  if (q < num_qubits_) {
    const BasisState bit = BasisState{1} << q;
    const std::size_t pairs = size_ >> 1;
    util::parallel_for_chunks(
        0, pairs,
        [d, cd, sd, lanes, q, bit](std::size_t lo, std::size_t hi) {
          for (std::size_t t = lo; t < hi; ++t) {
            const BasisState i0 = insert_zero_bit(t, q);
            simd::rx_butterfly_lanes(d + 2 * lanes * i0,
                                     d + 2 * lanes * (i0 | bit), cd, sd,
                                     lanes);
          }
        },
        std::max<std::size_t>(1, kParallelGrain / lanes));
  }
}

std::vector<double> BatchedStateVector::expectation_diagonal(
    const std::vector<double>& values) const {
  if (values.size() != size_) {
    throw std::invalid_argument(
        "BatchedStateVector::expectation_diagonal: table size mismatch");
  }
  const std::size_t lanes = static_cast<std::size_t>(batch_);
  // Chunked over AMPLITUDE indices with the flat kernel's grain, so the
  // chunk plan — and therefore each lane's partial-sum fold — matches
  // sim::expectation_diagonal(lane_state(b), values) exactly.
  return util::parallel_reduce(
      0, size_, std::vector<double>(lanes, 0.0),
      [this, &values, lanes](std::size_t lo, std::size_t hi) {
        std::vector<double> partial(lanes, 0.0);
        simd::sum_norms_weighted_lanes(partial.data(), data_.data(), lanes,
                                       values.data(), lo, hi);
        return partial;
      },
      [lanes](std::vector<double> acc, std::vector<double> partial) {
        for (std::size_t b = 0; b < lanes; ++b) acc[b] += partial[b];
        return acc;
      },
      kParallelGrain);
}

Amplitude BatchedStateVector::amplitude(int lane, BasisState s) const {
  check_lane(lane);
  if (s >= size_) {
    throw std::out_of_range("BatchedStateVector::amplitude: bad basis state");
  }
  const double* row = data_.data() + 2 * static_cast<std::size_t>(batch_) * s;
  return Amplitude{row[2 * lane], row[2 * lane + 1]};
}

StateVector BatchedStateVector::lane_state(int lane) const {
  check_lane(lane);
  StateVector out(num_qubits_);
  const std::size_t lanes = static_cast<std::size_t>(batch_);
  for (std::size_t i = 0; i < size_; ++i) {
    const double* row = data_.data() + 2 * lanes * i;
    out.set_amplitude(i, Amplitude{row[2 * lane], row[2 * lane + 1]});
  }
  return out;
}

}  // namespace qq::sim
