#include "sdp/gw.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/rng.hpp"

namespace qq::sdp {

GwResult goemans_williamson(const graph::Graph& g, const GwOptions& options) {
  if (options.slicings < 1) {
    throw std::invalid_argument("goemans_williamson: slicings must be >= 1");
  }
  GwResult result;
  const MixingResult sdp = solve_maxcut_sdp(g, options.sdp);
  result.sdp_bound = sdp.objective;
  result.sdp_sweeps = sdp.sweeps;
  result.sdp_converged = sdp.converged;

  const graph::NodeId n = g.num_nodes();
  const auto k = static_cast<std::size_t>(sdp.rank);
  util::Rng rng(options.seed ^ 0x6077a11e5ULL);

  double sum = 0.0;
  int slicings_done = 0;
  std::vector<double> hyperplane(k);
  maxcut::Assignment assignment(static_cast<std::size_t>(n));
  for (int s = 0; s < options.slicings; ++s) {
    // The first slicing always runs so a stopped request still gets a
    // well-formed (if poor) assignment back from the in-flight solve.
    if (s > 0 && options.context != nullptr && options.context->stopped()) {
      break;
    }
    for (double& c : hyperplane) c = util::normal(rng);
    for (graph::NodeId u = 0; u < n; ++u) {
      const double* vu = &sdp.vectors[static_cast<std::size_t>(u) * k];
      double dot = 0.0;
      for (std::size_t c = 0; c < k; ++c) dot += vu[c] * hyperplane[c];
      assignment[static_cast<std::size_t>(u)] = dot >= 0.0 ? 1 : 0;
    }
    const double value = maxcut::cut_value(g, assignment);
    sum += value;
    ++slicings_done;
    // First slicing is adopted unconditionally: a fixed sentinel would
    // return an empty assignment when every rounding lands below it
    // (possible on all-negative graphs — same bug class as the
    // one_exchange_restarts sentinel the fuzzer caught).
    if (s == 0 || value > result.best.value) {
      result.best.value = value;
      result.best.assignment = assignment;
    }
  }
  result.average_value = sum / std::max(slicings_done, 1);
  if (n == 0) {
    result.best.value = 0.0;
    result.average_value = 0.0;
  }
  return result;
}

}  // namespace qq::sdp
