#pragma once
// Goemans–Williamson approximate MaxCut (paper §3.4): solve the SDP
// relaxation, then round with random hyperplanes. "Once the SDP is solved,
// a slicing to determine the node values is applied 30 times, and the
// average value of the cut is taken" — both the average (the paper's
// QAOA-comparable statistic) and the best slicing are reported.

#include "maxcut/cut.hpp"
#include "sdp/mixing_method.hpp"
#include "util/cancellation.hpp"

namespace qq::sdp {

struct GwOptions {
  MixingOptions sdp;
  int slicings = 30;
  std::uint64_t seed = 7;
  /// Cooperative stop state, polled between hyperplane slicings (the SDP
  /// solve itself runs to completion — it converges in bounded sweeps).
  /// Viewed, not owned; may be null.
  const util::RequestContext* context = nullptr;
};

struct GwResult {
  /// Best cut among the slicings.
  maxcut::CutResult best;
  /// Mean cut value over the slicings (paper's reported statistic).
  double average_value = 0.0;
  /// SDP objective: an upper bound on the optimal cut at convergence.
  double sdp_bound = 0.0;
  int sdp_sweeps = 0;
  bool sdp_converged = false;
};

GwResult goemans_williamson(const graph::Graph& g, const GwOptions& options = {});

}  // namespace qq::sdp
