#pragma once
// Low-rank solver for the MaxCut semidefinite program
//
//   max  Σ_{(i,j) in E} w_ij (1 − v_i·v_j) / 2   s.t.  ‖v_i‖ = 1,
//
// via the mixing method (Wang & Kolter, 2017): block-coordinate ascent that
// repeatedly sets v_i to the unit vector opposing its weighted neighbour
// sum. For rank k > sqrt(2n) every local optimum is the global SDP optimum,
// so this replaces the paper's cvxpy/SCS interior-point stack (see
// DESIGN.md) while remaining stable far beyond the 2000-node failure point
// the paper reports for the Eigen-backed solver.

#include <cstdint>
#include <vector>

#include "qgraph/graph.hpp"

namespace qq::sdp {

struct MixingOptions {
  /// Embedding dimension k; 0 selects ceil(sqrt(2n)) + 1 automatically.
  int rank = 0;
  int max_sweeps = 600;
  /// Stop when the per-sweep objective improvement drops below
  /// tol * max(1, |objective|).
  double tol = 1e-7;
  std::uint64_t seed = 1;
};

struct MixingResult {
  /// Row-major n x rank matrix of unit vectors.
  std::vector<double> vectors;
  int rank = 0;
  /// SDP objective Σ w_ij (1 - v_i.v_j)/2 — an upper bound on the true
  /// MaxCut value at convergence.
  double objective = 0.0;
  int sweeps = 0;
  bool converged = false;
};

MixingResult solve_maxcut_sdp(const graph::Graph& g,
                              const MixingOptions& options = {});

/// Objective of an arbitrary unit-vector embedding (used by tests).
double sdp_objective(const graph::Graph& g, const std::vector<double>& vectors,
                     int rank);

}  // namespace qq::sdp
