#include "sdp/mixing_method.hpp"

#include <cmath>
#include <stdexcept>

#include "util/rng.hpp"

namespace qq::sdp {

double sdp_objective(const graph::Graph& g, const std::vector<double>& vectors,
                     int rank) {
  if (rank <= 0 ||
      vectors.size() != static_cast<std::size_t>(g.num_nodes()) *
                            static_cast<std::size_t>(rank)) {
    throw std::invalid_argument("sdp_objective: embedding size mismatch");
  }
  const auto k = static_cast<std::size_t>(rank);
  double obj = 0.0;
  for (const graph::Edge& e : g.edges()) {
    const double* vu = &vectors[static_cast<std::size_t>(e.u) * k];
    const double* vv = &vectors[static_cast<std::size_t>(e.v) * k];
    double dot = 0.0;
    for (std::size_t c = 0; c < k; ++c) dot += vu[c] * vv[c];
    obj += e.w * (1.0 - dot) * 0.5;
  }
  return obj;
}

MixingResult solve_maxcut_sdp(const graph::Graph& g,
                              const MixingOptions& options) {
  const graph::NodeId n = g.num_nodes();
  MixingResult result;
  const int rank =
      options.rank > 0
          ? options.rank
          : static_cast<int>(
                std::ceil(std::sqrt(2.0 * std::max<graph::NodeId>(n, 1)))) +
                1;
  result.rank = rank;
  const auto k = static_cast<std::size_t>(rank);
  result.vectors.resize(static_cast<std::size_t>(n) * k);
  if (n == 0) {
    result.converged = true;
    return result;
  }

  // Random unit-vector initialization.
  util::Rng rng(options.seed ^ 0x5d97a7f2ULL);
  for (graph::NodeId u = 0; u < n; ++u) {
    double* v = &result.vectors[static_cast<std::size_t>(u) * k];
    double norm2 = 0.0;
    for (std::size_t c = 0; c < k; ++c) {
      v[c] = util::normal(rng);
      norm2 += v[c] * v[c];
    }
    const double inv = 1.0 / std::sqrt(std::max(norm2, 1e-300));
    for (std::size_t c = 0; c < k; ++c) v[c] *= inv;
  }

  std::vector<double> gsum(k);
  double prev_obj = sdp_objective(g, result.vectors, rank);
  for (int sweep = 1; sweep <= options.max_sweeps; ++sweep) {
    for (graph::NodeId u = 0; u < n; ++u) {
      // g_u = Σ_j w_uj v_j ; the objective term in v_u is −(1/2) v_u·g_u,
      // maximized at v_u = −g_u / ‖g_u‖.
      std::fill(gsum.begin(), gsum.end(), 0.0);
      bool any = false;
      for (const auto& [nbr, w] : g.neighbors(u)) {
        const double* vn = &result.vectors[static_cast<std::size_t>(nbr) * k];
        for (std::size_t c = 0; c < k; ++c) gsum[c] += w * vn[c];
        any = true;
      }
      if (!any) continue;  // isolated node: any unit vector is optimal
      double norm2 = 0.0;
      for (std::size_t c = 0; c < k; ++c) norm2 += gsum[c] * gsum[c];
      if (norm2 < 1e-300) continue;  // perfectly balanced neighbourhood
      const double inv = -1.0 / std::sqrt(norm2);
      double* vu = &result.vectors[static_cast<std::size_t>(u) * k];
      for (std::size_t c = 0; c < k; ++c) vu[c] = inv * gsum[c];
    }
    const double obj = sdp_objective(g, result.vectors, rank);
    result.sweeps = sweep;
    if (obj - prev_obj < options.tol * std::max(1.0, std::abs(obj))) {
      prev_obj = obj;
      result.converged = true;
      break;
    }
    prev_obj = obj;
  }
  result.objective = prev_obj;
  return result;
}

}  // namespace qq::sdp
