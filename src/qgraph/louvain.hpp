#pragma once
// Louvain community detection — the alternative partitioner for the
// QAOA^2 divide step (paper §5 motivates "the investigation of other graph
// types and partitions"). Classic two-phase scheme: greedy local moving of
// nodes between communities until modularity stalls, then aggregation of
// communities into super-nodes, repeated until no move helps.

#include <cstdint>
#include <vector>

#include "qgraph/graph.hpp"

namespace qq::graph {

struct LouvainOptions {
  /// Node-visit order is shuffled per pass with this seed (Louvain's
  /// result is order-dependent; seeding keeps it reproducible).
  std::uint64_t seed = 0;
  /// Minimum modularity gain to accept a local move.
  double min_gain = 1e-9;
  /// Safety cap on local-moving passes per level.
  int max_passes = 64;
};

/// Communities sorted like greedy_modularity_communities: by size
/// descending, ties by smallest node; members ascending.
std::vector<std::vector<NodeId>> louvain_communities(
    const Graph& g, const LouvainOptions& options = {});

}  // namespace qq::graph
