#include "qgraph/graph.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "util/thread_pool.hpp"

namespace qq::graph {

Graph::Graph(NodeId num_nodes) {
  if (num_nodes < 0) {
    throw std::invalid_argument("Graph: negative node count");
  }
  num_nodes_ = num_nodes;
  adj_.resize(static_cast<std::size_t>(num_nodes));
}

std::uint64_t Graph::edge_key(NodeId u, NodeId v) const noexcept {
  const auto a = static_cast<std::uint64_t>(std::min(u, v));
  const auto b = static_cast<std::uint64_t>(std::max(u, v));
  return a * static_cast<std::uint64_t>(num_nodes_) + b;
}

void Graph::add_edge(NodeId u, NodeId v, double w) {
  if (u < 0 || v < 0 || u >= num_nodes_ || v >= num_nodes_) {
    throw std::out_of_range("Graph::add_edge: node id out of range");
  }
  if (u == v) {
    throw std::invalid_argument("Graph::add_edge: self-loops are not allowed");
  }
  if (!std::isfinite(w)) {
    throw std::invalid_argument("Graph::add_edge: weight must be finite");
  }
  const auto key = edge_key(u, v);
  const auto it = edge_index_.find(key);
  if (it != edge_index_.end()) {
    Edge& e = edges_[it->second];
    e.w += w;
    for (auto& [nbr, weight] : adj_[static_cast<std::size_t>(u)]) {
      if (nbr == v) weight = e.w;
    }
    for (auto& [nbr, weight] : adj_[static_cast<std::size_t>(v)]) {
      if (nbr == u) weight = e.w;
    }
    total_weight_ += w;
    return;
  }
  edge_index_.emplace(key, edges_.size());
  edges_.push_back(Edge{std::min(u, v), std::max(u, v), w});
  adj_[static_cast<std::size_t>(u)].emplace_back(v, w);
  adj_[static_cast<std::size_t>(v)].emplace_back(u, w);
  total_weight_ += w;
}

bool Graph::has_edge(NodeId u, NodeId v) const {
  if (u < 0 || v < 0 || u >= num_nodes_ || v >= num_nodes_ || u == v) {
    return false;
  }
  return edge_index_.count(edge_key(u, v)) > 0;
}

double Graph::edge_weight(NodeId u, NodeId v) const {
  if (u < 0 || v < 0 || u >= num_nodes_ || v >= num_nodes_ || u == v) {
    return 0.0;
  }
  const auto it = edge_index_.find(edge_key(u, v));
  return it == edge_index_.end() ? 0.0 : edges_[it->second].w;
}

const std::vector<std::pair<NodeId, double>>& Graph::neighbors(
    NodeId u) const {
  if (u < 0 || u >= num_nodes_) {
    throw std::out_of_range("Graph::neighbors: node id out of range");
  }
  return adj_[static_cast<std::size_t>(u)];
}

NodeId Graph::degree(NodeId u) const {
  return static_cast<NodeId>(neighbors(u).size());
}

double Graph::weighted_degree(NodeId u) const {
  double sum = 0.0;
  for (const auto& [nbr, w] : neighbors(u)) {
    (void)nbr;
    sum += w;
  }
  return sum;
}

bool Graph::is_weighted() const {
  return std::any_of(edges_.begin(), edges_.end(),
                     [](const Edge& e) { return e.w != 1.0; });
}

Subgraph Graph::induced(const std::vector<NodeId>& nodes) const {
  std::unordered_map<NodeId, NodeId> to_local;
  to_local.reserve(nodes.size());
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const NodeId g = nodes[i];
    if (g < 0 || g >= num_nodes_) {
      throw std::out_of_range("Graph::induced: node id out of range");
    }
    if (!to_local.emplace(g, static_cast<NodeId>(i)).second) {
      throw std::invalid_argument("Graph::induced: duplicate node id " +
                                  std::to_string(g));
    }
  }
  Subgraph out{Graph(static_cast<NodeId>(nodes.size())), nodes};
  for (const Edge& e : edges_) {
    const auto iu = to_local.find(e.u);
    if (iu == to_local.end()) continue;
    const auto iv = to_local.find(e.v);
    if (iv == to_local.end()) continue;
    out.graph.add_edge(iu->second, iv->second, e.w);
  }
  return out;
}

std::vector<std::vector<NodeId>> connected_components(const Graph& g) {
  const NodeId n = g.num_nodes();
  std::vector<char> seen(static_cast<std::size_t>(n), 0);
  std::vector<std::vector<NodeId>> comps;
  std::vector<NodeId> stack;
  for (NodeId s = 0; s < n; ++s) {
    if (seen[static_cast<std::size_t>(s)]) continue;
    std::vector<NodeId> comp;
    stack.push_back(s);
    seen[static_cast<std::size_t>(s)] = 1;
    while (!stack.empty()) {
      const NodeId u = stack.back();
      stack.pop_back();
      comp.push_back(u);
      for (const auto& [v, w] : g.neighbors(u)) {
        (void)w;
        if (!seen[static_cast<std::size_t>(v)]) {
          seen[static_cast<std::size_t>(v)] = 1;
          stack.push_back(v);
        }
      }
    }
    std::sort(comp.begin(), comp.end());
    comps.push_back(std::move(comp));
  }
  return comps;
}

bool is_connected(const Graph& g) {
  if (g.num_nodes() <= 1) return true;
  return connected_components(g).size() == 1;
}

std::vector<Subgraph> component_subgraphs(const Graph& g) {
  const auto comps = connected_components(g);
  std::vector<Subgraph> out;
  out.reserve(comps.size());
  for (const auto& comp : comps) out.push_back(g.induced(comp));
  return out;
}

std::vector<Subgraph> induced_batch(
    const Graph& g, const std::vector<std::vector<NodeId>>& parts,
    util::ThreadPool* pool) {
  std::vector<Subgraph> out(parts.size());
  util::ThreadPool& p = pool != nullptr ? *pool : util::ThreadPool::global();
  // One part per chunk: extraction cost is dominated by the edge scan, and
  // parts are few (the QAOA^2 fan-out is bounded by nodes / max_qubits).
  util::parallel_for(
      p, 0, parts.size(),
      [&](std::size_t i) { out[i] = g.induced(parts[i]); });
  return out;
}

}  // namespace qq::graph
