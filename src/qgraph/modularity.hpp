#pragma once
// Greedy modularity community detection (Clauset–Newman–Moore), the
// partitioner QAOA^2 step 2 prescribes ("the greedy modularity method from
// the NetworkX library is used, which maximizes the modularity").

#include <vector>

#include "qgraph/graph.hpp"

namespace qq::graph {

/// Newman weighted modularity Q of a node->community assignment:
///   Q = Σ_c [ Σ_in(c)/(2m) − (Σ_tot(c)/(2m))² ]
/// where m is the total edge weight. Returns 0 for edgeless graphs.
double modularity(const Graph& g, const std::vector<int>& community_of);

/// CNM greedy agglomeration: start from singletons, repeatedly merge the
/// connected community pair with the largest ΔQ, and return the partition
/// with the highest Q seen along the merge sequence (NetworkX semantics).
/// Communities are sorted by size descending, ties by smallest node id;
/// node lists are sorted ascending.
std::vector<std::vector<NodeId>> greedy_modularity_communities(const Graph& g);

}  // namespace qq::graph
