#pragma once
// Plain-text edge-list persistence:
//   line 1: "<num_nodes> <num_edges>"
//   then one "<u> <v> <w>" per edge.
// Lines starting with '#' are comments.

#include <iosfwd>
#include <string>

#include "qgraph/graph.hpp"

namespace qq::graph {

void write_edge_list(const Graph& g, std::ostream& os);
Graph read_edge_list(std::istream& is);

void save_edge_list(const Graph& g, const std::string& path);
Graph load_edge_list(const std::string& path);

}  // namespace qq::graph
