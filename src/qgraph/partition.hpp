#pragma once
// QAOA^2 dividing procedure (paper §3.3 step 2): partition the graph into
// sub-graphs whose node counts do not exceed the qubit budget, using greedy
// modularity and recursing on any community that is still too large.

#include <cstdint>
#include <vector>

#include "qgraph/graph.hpp"

namespace qq::graph {

enum class PartitionMethod {
  kGreedyModularity,  ///< CNM, the paper's choice (NetworkX greedy_modularity)
  kLouvain,           ///< alternative community detection (§5 outlook)
  kSpectral,          ///< recursive Fiedler-vector bisection
  kBalancedBfs,       ///< structure-light baseline: BFS-ordered equal chunks
  kRandomChunks,      ///< structure-free baseline: shuffled equal chunks
};

const char* partition_method_name(PartitionMethod method) noexcept;

struct PartitionOptions {
  /// Qubit budget n: no part may have more nodes than this.
  NodeId max_nodes = 16;
  /// Seed for the balanced fallback split used when modularity cannot
  /// decompose a community (e.g. cliques).
  std::uint64_t seed = 0;
  PartitionMethod method = PartitionMethod::kGreedyModularity;
};

/// Returns disjoint node sets covering every node, each of size
/// <= options.max_nodes. Parts are ordered by smallest contained node.
std::vector<std::vector<NodeId>> partition_max_size(
    const Graph& g, const PartitionOptions& options);

}  // namespace qq::graph
