#pragma once
// Undirected weighted graph — the classical substrate of the whole library.
//
// Replaces the paper's use of NetworkX. Nodes are dense integer ids
// 0..n-1; parallel edges are merged by summing weights (the behaviour the
// QAOA^2 merge step relies on); self-loops are rejected because they can
// never contribute to a cut.

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace qq::util {
class ThreadPool;
}  // namespace qq::util

namespace qq::graph {

using NodeId = std::int32_t;

struct Edge {
  NodeId u;
  NodeId v;
  double w;
};

struct Subgraph;  // defined after Graph (holds a Graph by value)

class Graph {
 public:
  explicit Graph(NodeId num_nodes = 0);

  NodeId num_nodes() const noexcept { return num_nodes_; }
  std::size_t num_edges() const noexcept { return edges_.size(); }

  /// Accumulates weight if the edge already exists. Throws on self-loops or
  /// out-of-range endpoints.
  void add_edge(NodeId u, NodeId v, double w = 1.0);

  bool has_edge(NodeId u, NodeId v) const;
  /// 0.0 when the edge is absent.
  double edge_weight(NodeId u, NodeId v) const;

  const std::vector<Edge>& edges() const noexcept { return edges_; }
  const std::vector<std::pair<NodeId, double>>& neighbors(NodeId u) const;

  NodeId degree(NodeId u) const;
  double weighted_degree(NodeId u) const;
  /// Sum of all edge weights.
  double total_weight() const noexcept { return total_weight_; }
  /// True if any edge weight differs from 1 (paper distinguishes weighted
  /// vs unweighted instances).
  bool is_weighted() const;

  /// Induced subgraph over `nodes` (local ids follow the order given).
  Subgraph induced(const std::vector<NodeId>& nodes) const;

 private:
  std::uint64_t edge_key(NodeId u, NodeId v) const noexcept;

  NodeId num_nodes_ = 0;
  std::vector<Edge> edges_;
  std::vector<std::vector<std::pair<NodeId, double>>> adj_;
  std::unordered_map<std::uint64_t, std::size_t> edge_index_;
  double total_weight_ = 0.0;
};

/// Result of Graph::induced.
struct Subgraph {
  Graph graph;
  std::vector<NodeId> to_global;  ///< local id -> original node id
};

/// Connected components as node-id lists, each sorted ascending; components
/// ordered by smallest contained node.
std::vector<std::vector<NodeId>> connected_components(const Graph& g);

bool is_connected(const Graph& g);

/// Shard `g` by connected component: one induced Subgraph per component, in
/// connected_components order. A connected graph yields a single shard that
/// is structurally identical to `g` (same node order, same edge insertion
/// order), so sharding is a no-op for it.
std::vector<Subgraph> component_subgraphs(const Graph& g);

/// Extract the induced subgraph of every node set in `parts`, fanning the
/// extractions out across `pool` (nullptr selects the global pool). Output
/// order matches `parts`; each extraction is identical to
/// g.induced(parts[i]), so results are independent of the pool width.
std::vector<Subgraph> induced_batch(const Graph& g,
                                    const std::vector<std::vector<NodeId>>& parts,
                                    util::ThreadPool* pool = nullptr);

}  // namespace qq::graph
