#pragma once
// Random and structured graph generators.
//
// `erdos_renyi` with unit or U[0,1] weights is the paper's workload
// (§4: node counts 15–33 and 500–2500, edge probabilities 0.1–0.5, "a graph
// instance with uniform edges and one with edge weights randomly chosen in
// [0,1]"). The structured families are used by tests and the partitioning
// property suites.

#include "qgraph/graph.hpp"
#include "util/rng.hpp"

namespace qq::graph {

enum class WeightMode {
  kUnit,       ///< every edge weight 1 ("unweighted")
  kUniform01,  ///< weights drawn uniformly from [0, 1) ("weighted")
};

/// G(n, p): each of the n(n-1)/2 edges present independently with
/// probability p. Uses geometric skipping so sparse graphs cost O(n + m).
Graph erdos_renyi(NodeId n, double p, util::Rng& rng,
                  WeightMode mode = WeightMode::kUnit);

Graph complete_graph(NodeId n, double w = 1.0);
Graph cycle_graph(NodeId n, double w = 1.0);
Graph path_graph(NodeId n, double w = 1.0);
/// Star: node 0 is the hub.
Graph star_graph(NodeId n, double w = 1.0);
/// d-regular random graph via the pairing model (retries until simple).
Graph random_regular(NodeId n, NodeId d, util::Rng& rng);
/// `blocks` communities of `block_size` nodes; intra-block edge probability
/// p_in, inter-block p_out. The canonical test bed for modularity
/// partitioning.
Graph planted_partition(NodeId blocks, NodeId block_size, double p_in,
                        double p_out, util::Rng& rng);
/// Two k-cliques joined by a path of `path_len` extra nodes.
Graph barbell_graph(NodeId k, NodeId path_len);
Graph grid_2d(NodeId rows, NodeId cols, double w = 1.0);
/// Watts–Strogatz small world: ring lattice with k nearest neighbours per
/// node (k even), each edge rewired with probability beta (avoiding
/// duplicates and self-loops).
Graph watts_strogatz(NodeId n, NodeId k, double beta, util::Rng& rng);
/// Barabási–Albert preferential attachment: each new node attaches to m
/// existing nodes with probability proportional to degree.
Graph barabasi_albert(NodeId n, NodeId m, util::Rng& rng);

}  // namespace qq::graph
