#include "qgraph/generators.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace qq::graph {

namespace {
double draw_weight(WeightMode mode, util::Rng& rng) {
  switch (mode) {
    case WeightMode::kUnit: return 1.0;
    case WeightMode::kUniform01: return util::uniform(rng);
  }
  return 1.0;
}
}  // namespace

Graph erdos_renyi(NodeId n, double p, util::Rng& rng, WeightMode mode) {
  if (p < 0.0 || p > 1.0) {
    throw std::invalid_argument("erdos_renyi: p must lie in [0, 1]");
  }
  Graph g(n);
  if (n < 2 || p == 0.0) return g;
  if (p == 1.0) {
    for (NodeId u = 0; u < n; ++u) {
      for (NodeId v = u + 1; v < n; ++v) g.add_edge(u, v, draw_weight(mode, rng));
    }
    return g;
  }
  // Geometric skipping (Batagelj & Brandes): walk the strictly-upper
  // triangle with gaps ~ Geom(p) so the cost is proportional to the number
  // of edges produced.
  const double logq = std::log1p(-p);
  std::int64_t v = 1;
  std::int64_t w = -1;
  while (v < n) {
    const double r = 1.0 - util::uniform(rng);  // (0, 1]
    w += 1 + static_cast<std::int64_t>(std::floor(std::log(r) / logq));
    while (w >= v && v < n) {
      w -= v;
      ++v;
    }
    if (v < n) {
      g.add_edge(static_cast<NodeId>(v), static_cast<NodeId>(w),
                 draw_weight(mode, rng));
    }
  }
  return g;
}

Graph complete_graph(NodeId n, double w) {
  Graph g(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) g.add_edge(u, v, w);
  }
  return g;
}

Graph cycle_graph(NodeId n, double w) {
  Graph g(n);
  if (n < 3) {
    if (n == 2) g.add_edge(0, 1, w);
    return g;
  }
  for (NodeId u = 0; u < n; ++u) g.add_edge(u, (u + 1) % n, w);
  return g;
}

Graph path_graph(NodeId n, double w) {
  Graph g(n);
  for (NodeId u = 0; u + 1 < n; ++u) g.add_edge(u, u + 1, w);
  return g;
}

Graph star_graph(NodeId n, double w) {
  Graph g(n);
  for (NodeId u = 1; u < n; ++u) g.add_edge(0, u, w);
  return g;
}

Graph random_regular(NodeId n, NodeId d, util::Rng& rng) {
  if (d < 0 || d >= n || (static_cast<std::int64_t>(n) * d) % 2 != 0) {
    throw std::invalid_argument(
        "random_regular: need 0 <= d < n and n*d even");
  }
  // Pairing (configuration) model: shuffle n*d stubs, pair consecutively,
  // retry on self-loops or parallel edges. Expected O(1) retries for the
  // sparse degrees used in tests.
  const std::size_t stubs = static_cast<std::size_t>(n) * static_cast<std::size_t>(d);
  std::vector<NodeId> stub(stubs);
  for (int attempt = 0; attempt < 1000; ++attempt) {
    for (std::size_t i = 0; i < stubs; ++i) {
      stub[i] = static_cast<NodeId>(i / static_cast<std::size_t>(d));
    }
    for (std::size_t i = stubs; i > 1; --i) {
      const std::size_t j = util::uniform_u64(rng, i);
      std::swap(stub[i - 1], stub[j]);
    }
    Graph g(n);
    bool ok = true;
    for (std::size_t i = 0; i + 1 < stubs && ok; i += 2) {
      const NodeId u = stub[i];
      const NodeId v = stub[i + 1];
      if (u == v || g.has_edge(u, v)) {
        ok = false;
      } else {
        g.add_edge(u, v, 1.0);
      }
    }
    if (ok) return g;
  }
  throw std::runtime_error("random_regular: pairing model failed to converge");
}

Graph planted_partition(NodeId blocks, NodeId block_size, double p_in,
                        double p_out, util::Rng& rng) {
  const NodeId n = blocks * block_size;
  Graph g(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      const bool same = (u / block_size) == (v / block_size);
      if (util::bernoulli(rng, same ? p_in : p_out)) g.add_edge(u, v, 1.0);
    }
  }
  return g;
}

Graph barbell_graph(NodeId k, NodeId path_len) {
  if (k < 3) throw std::invalid_argument("barbell_graph: k must be >= 3");
  const NodeId n = 2 * k + path_len;
  Graph g(n);
  for (NodeId u = 0; u < k; ++u) {
    for (NodeId v = u + 1; v < k; ++v) g.add_edge(u, v, 1.0);
  }
  for (NodeId u = k + path_len; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) g.add_edge(u, v, 1.0);
  }
  NodeId prev = k - 1;  // bridge through the path nodes
  for (NodeId i = 0; i < path_len; ++i) {
    g.add_edge(prev, k + i, 1.0);
    prev = k + i;
  }
  g.add_edge(prev, k + path_len, 1.0);
  return g;
}

Graph watts_strogatz(NodeId n, NodeId k, double beta, util::Rng& rng) {
  if (k < 2 || k % 2 != 0 || k >= n) {
    throw std::invalid_argument("watts_strogatz: need even k with 2 <= k < n");
  }
  if (beta < 0.0 || beta > 1.0) {
    throw std::invalid_argument("watts_strogatz: beta must lie in [0, 1]");
  }
  Graph g(n);
  // Ring lattice: node u connects to its k/2 clockwise neighbours.
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId j = 1; j <= k / 2; ++j) {
      g.add_edge(u, (u + j) % n, 1.0);
    }
  }
  // Rewire each lattice edge (u, u+j) with probability beta to (u, w).
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId j = 1; j <= k / 2; ++j) {
      if (!util::bernoulli(rng, beta)) continue;
      const NodeId old_v = (u + j) % n;
      // Draw a fresh endpoint; skip if saturated (dense small n).
      NodeId w = u;
      bool found = false;
      for (int attempt = 0; attempt < 64; ++attempt) {
        w = static_cast<NodeId>(util::uniform_u64(
            rng, static_cast<std::uint64_t>(n)));
        if (w != u && !g.has_edge(u, w)) {
          found = true;
          break;
        }
      }
      if (!found || !g.has_edge(u, old_v)) continue;
      // Rebuild without the old edge (Graph has no removal; rewiring is
      // rare enough that a copy-filter stays cheap for generator use).
      Graph next(n);
      for (const Edge& e : g.edges()) {
        if ((e.u == std::min(u, old_v) && e.v == std::max(u, old_v))) continue;
        next.add_edge(e.u, e.v, e.w);
      }
      next.add_edge(u, w, 1.0);
      g = std::move(next);
    }
  }
  return g;
}

Graph barabasi_albert(NodeId n, NodeId m, util::Rng& rng) {
  if (m < 1 || m >= n) {
    throw std::invalid_argument("barabasi_albert: need 1 <= m < n");
  }
  Graph g(n);
  // Seed: star over the first m+1 nodes (every node has degree >= 1).
  for (NodeId u = 1; u <= m; ++u) g.add_edge(0, u, 1.0);
  // Degree-proportional sampling via the repeated-endpoints trick.
  std::vector<NodeId> endpoints;
  for (const Edge& e : g.edges()) {
    endpoints.push_back(e.u);
    endpoints.push_back(e.v);
  }
  for (NodeId u = m + 1; u < n; ++u) {
    std::vector<NodeId> targets;
    int guard = 0;
    while (static_cast<NodeId>(targets.size()) < m && ++guard < 10000) {
      const NodeId candidate = endpoints[util::uniform_u64(
          rng, static_cast<std::uint64_t>(endpoints.size()))];
      if (candidate == u) continue;
      if (std::find(targets.begin(), targets.end(), candidate) !=
          targets.end()) {
        continue;
      }
      targets.push_back(candidate);
    }
    for (const NodeId t : targets) {
      g.add_edge(u, t, 1.0);
      endpoints.push_back(u);
      endpoints.push_back(t);
    }
  }
  return g;
}

Graph grid_2d(NodeId rows, NodeId cols, double w) {
  Graph g(rows * cols);
  auto id = [cols](NodeId r, NodeId c) { return r * cols + c; };
  for (NodeId r = 0; r < rows; ++r) {
    for (NodeId c = 0; c < cols; ++c) {
      if (c + 1 < cols) g.add_edge(id(r, c), id(r, c + 1), w);
      if (r + 1 < rows) g.add_edge(id(r, c), id(r + 1, c), w);
    }
  }
  return g;
}

}  // namespace qq::graph
