#include "qgraph/modularity.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <unordered_map>

namespace qq::graph {

double modularity(const Graph& g, const std::vector<int>& community_of) {
  if (community_of.size() != static_cast<std::size_t>(g.num_nodes())) {
    throw std::invalid_argument("modularity: assignment size mismatch");
  }
  const double m = g.total_weight();
  if (m <= 0.0) return 0.0;
  // Σ_in per community (edge weight fully inside) and Σ_tot (sum of
  // weighted degrees of its members).
  std::unordered_map<int, double> sum_in;
  std::unordered_map<int, double> sum_tot;
  for (const Edge& e : g.edges()) {
    const int cu = community_of[static_cast<std::size_t>(e.u)];
    const int cv = community_of[static_cast<std::size_t>(e.v)];
    if (cu == cv) sum_in[cu] += e.w;
    sum_tot[cu] += e.w;
    sum_tot[cv] += e.w;
  }
  double q = 0.0;
  for (const auto& [c, tot] : sum_tot) {
    const double in = sum_in.count(c) ? sum_in.at(c) : 0.0;
    const double frac_tot = tot / (2.0 * m);
    q += in / m - frac_tot * frac_tot;
  }
  return q;
}

namespace {

/// Community-merge bookkeeping for CNM. Communities are identified by a
/// representative index; `e_[a][b]` is the fraction of edge weight between
/// live communities a and b (2·e for internal), `a_[c]` the fraction of
/// edge endpoints in c.
struct CnmState {
  std::vector<std::unordered_map<int, double>> e;  // inter-community weight / 2m
  std::vector<double> a;                           // degree fraction
  std::vector<char> alive;
  std::vector<int> parent;  // community id -> representative (union by merge)

  int find(int x) const {
    while (parent[static_cast<std::size_t>(x)] != x) {
      x = parent[static_cast<std::size_t>(x)];
    }
    return x;
  }
};

}  // namespace

std::vector<std::vector<NodeId>> greedy_modularity_communities(
    const Graph& g) {
  const NodeId n = g.num_nodes();
  std::vector<std::vector<NodeId>> singletons;
  singletons.reserve(static_cast<std::size_t>(n));
  for (NodeId u = 0; u < n; ++u) singletons.push_back({u});
  const double m = g.total_weight();
  if (m <= 0.0 || n <= 1) return singletons;

  CnmState st;
  st.e.resize(static_cast<std::size_t>(n));
  st.a.assign(static_cast<std::size_t>(n), 0.0);
  st.alive.assign(static_cast<std::size_t>(n), 1);
  st.parent.resize(static_cast<std::size_t>(n));
  for (NodeId u = 0; u < n; ++u) st.parent[static_cast<std::size_t>(u)] = u;

  for (const Edge& edge : g.edges()) {
    const double frac = edge.w / (2.0 * m);
    st.e[static_cast<std::size_t>(edge.u)][edge.v] += frac;
    st.e[static_cast<std::size_t>(edge.v)][edge.u] += frac;
    st.a[static_cast<std::size_t>(edge.u)] += frac;
    st.a[static_cast<std::size_t>(edge.v)] += frac;
  }

  // Current membership and running Q.
  std::vector<int> community_of(static_cast<std::size_t>(n));
  for (NodeId u = 0; u < n; ++u) community_of[static_cast<std::size_t>(u)] = u;
  double q = modularity(g, community_of);
  double best_q = q;
  std::vector<int> best_assignment = community_of;

  // Merge until one community per connected component remains, keeping the
  // best partition seen. Linear scan for the max ΔQ pair: O(V·E) overall,
  // ample for the node counts in the paper (≤ 2500).
  for (;;) {
    double best_dq = -std::numeric_limits<double>::infinity();
    int best_a = -1, best_b = -1;
    for (NodeId c = 0; c < n; ++c) {
      if (!st.alive[static_cast<std::size_t>(c)]) continue;
      for (const auto& [d, eij] : st.e[static_cast<std::size_t>(c)]) {
        if (d <= c || !st.alive[static_cast<std::size_t>(d)]) continue;
        const double dq = 2.0 * (eij - st.a[static_cast<std::size_t>(c)] *
                                           st.a[static_cast<std::size_t>(d)]);
        if (dq > best_dq) {
          best_dq = dq;
          best_a = c;
          best_b = static_cast<int>(d);
        }
      }
    }
    if (best_a < 0) break;  // no connected pair left

    // Merge best_b into best_a.
    auto& ea = st.e[static_cast<std::size_t>(best_a)];
    auto& eb = st.e[static_cast<std::size_t>(best_b)];
    for (const auto& [d, w] : eb) {
      if (d == best_a) continue;
      ea[d] += w;
      auto& ed = st.e[static_cast<std::size_t>(d)];
      ed.erase(best_b);
      ed[best_a] = ea[d];
    }
    ea.erase(best_b);
    eb.clear();
    st.a[static_cast<std::size_t>(best_a)] +=
        st.a[static_cast<std::size_t>(best_b)];
    st.alive[static_cast<std::size_t>(best_b)] = 0;
    st.parent[static_cast<std::size_t>(best_b)] = best_a;

    q += best_dq;
    if (q > best_q + 1e-12) {
      best_q = q;
      for (NodeId u = 0; u < n; ++u) {
        best_assignment[static_cast<std::size_t>(u)] =
            st.find(community_of[static_cast<std::size_t>(u)]);
      }
    }
  }

  // Materialize the best assignment into sorted community lists.
  std::unordered_map<int, std::vector<NodeId>> groups;
  for (NodeId u = 0; u < n; ++u) {
    // best_assignment captured representatives at snapshot time; compress
    // through the final parent chain for stability.
    groups[best_assignment[static_cast<std::size_t>(u)]].push_back(u);
  }
  std::vector<std::vector<NodeId>> out;
  out.reserve(groups.size());
  for (auto& [rep, members] : groups) {
    (void)rep;
    std::sort(members.begin(), members.end());
    out.push_back(std::move(members));
  }
  std::sort(out.begin(), out.end(), [](const auto& x, const auto& y) {
    if (x.size() != y.size()) return x.size() > y.size();
    return x.front() < y.front();
  });
  return out;
}

}  // namespace qq::graph
