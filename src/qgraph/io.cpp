#include "qgraph/io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace qq::graph {

void write_edge_list(const Graph& g, std::ostream& os) {
  os << g.num_nodes() << ' ' << g.num_edges() << '\n';
  os.precision(17);
  for (const Edge& e : g.edges()) {
    os << e.u << ' ' << e.v << ' ' << e.w << '\n';
  }
}

Graph read_edge_list(std::istream& is) {
  std::string line;
  auto next_data_line = [&]() -> bool {
    while (std::getline(is, line)) {
      if (!line.empty() && line[0] != '#') return true;
    }
    return false;
  };
  if (!next_data_line()) {
    throw std::runtime_error("read_edge_list: empty input");
  }
  std::istringstream header(line);
  NodeId n = 0;
  std::size_t m = 0;
  if (!(header >> n >> m)) {
    throw std::runtime_error("read_edge_list: malformed header");
  }
  Graph g(n);
  for (std::size_t i = 0; i < m; ++i) {
    if (!next_data_line()) {
      throw std::runtime_error("read_edge_list: truncated edge list");
    }
    std::istringstream row(line);
    NodeId u = 0, v = 0;
    double w = 1.0;
    if (!(row >> u >> v >> w)) {
      throw std::runtime_error("read_edge_list: malformed edge line");
    }
    g.add_edge(u, v, w);
  }
  return g;
}

void save_edge_list(const Graph& g, const std::string& path) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("save_edge_list: cannot open " + path);
  write_edge_list(g, os);
}

Graph load_edge_list(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("load_edge_list: cannot open " + path);
  return read_edge_list(is);
}

}  // namespace qq::graph
