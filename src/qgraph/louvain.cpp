#include "qgraph/louvain.hpp"

#include <algorithm>
#include <numeric>
#include <unordered_map>

#include "util/rng.hpp"

namespace qq::graph {

namespace {

// The aggregated graphs of Louvain carry self-loops (intra-community
// weight), which the Graph type does not represent; they are tracked in a
// side vector. A self-loop of weight w contributes 2w to its node's degree
// and w to the total weight m under the standard modularity convention.

/// One level of local moving; returns the community of each node, or an
/// empty vector when no node ever moved (fixed point).
std::vector<int> local_moving(const Graph& g,
                              const std::vector<double>& self_weight,
                              util::Rng& rng, double min_gain,
                              int max_passes) {
  const NodeId n = g.num_nodes();
  double total_weight = g.total_weight();
  for (const double w : self_weight) total_weight += w;
  const double m2 = 2.0 * total_weight;
  if (m2 <= 0.0) return {};

  std::vector<int> community(static_cast<std::size_t>(n));
  std::iota(community.begin(), community.end(), 0);
  std::vector<double> k(static_cast<std::size_t>(n));
  std::vector<double> sigma_tot(static_cast<std::size_t>(n));
  for (NodeId u = 0; u < n; ++u) {
    const auto su = static_cast<std::size_t>(u);
    k[su] = g.weighted_degree(u) + 2.0 * self_weight[su];
    sigma_tot[su] = k[su];
  }

  std::vector<NodeId> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);

  bool any_move_ever = false;
  for (int pass = 0; pass < max_passes; ++pass) {
    // Shuffle the visit order (seeded) to avoid pathological sweeps.
    for (std::size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1], order[util::uniform_u64(rng, i)]);
    }
    bool moved = false;
    std::unordered_map<int, double> links;  // community -> edge weight to u
    for (const NodeId u : order) {
      const auto su = static_cast<std::size_t>(u);
      const int old_comm = community[su];
      links.clear();
      for (const auto& [v, w] : g.neighbors(u)) {
        links[community[static_cast<std::size_t>(v)]] += w;
      }
      // Remove u from its community, then compare the modularity gain of
      // every candidate (scaled by m; constants independent of the target
      // community dropped): gain(c) = links(u,c) - k_u * sigma_tot(c) / 2m.
      sigma_tot[static_cast<std::size_t>(old_comm)] -= k[su];
      const double k_u = k[su];
      int best_comm = old_comm;
      double best_gain =
          (links.count(old_comm) ? links[old_comm] : 0.0) -
          k_u * sigma_tot[static_cast<std::size_t>(old_comm)] / m2;
      for (const auto& [c, w_uc] : links) {
        if (c == old_comm) continue;
        const double gain =
            w_uc - k_u * sigma_tot[static_cast<std::size_t>(c)] / m2;
        if (gain > best_gain + min_gain) {
          best_gain = gain;
          best_comm = c;
        }
      }
      sigma_tot[static_cast<std::size_t>(best_comm)] += k_u;
      if (best_comm != old_comm) {
        community[su] = best_comm;
        moved = true;
        any_move_ever = true;
      }
    }
    if (!moved) break;
  }
  if (!any_move_ever) return {};
  return community;
}

/// Aggregate communities into super-nodes; intra-community weight (plus
/// member self-loops) becomes the super-node's self-loop weight.
Graph aggregate(const Graph& g, const std::vector<double>& self_weight,
                const std::vector<int>& community,
                std::vector<int>& old_to_new,
                std::vector<double>& new_self_weight) {
  std::unordered_map<int, int> remap;
  int next = 0;
  old_to_new.assign(community.size(), 0);
  for (std::size_t u = 0; u < community.size(); ++u) {
    const auto it = remap.find(community[u]);
    if (it == remap.end()) {
      remap.emplace(community[u], next);
      old_to_new[u] = next;
      ++next;
    } else {
      old_to_new[u] = it->second;
    }
  }
  Graph coarse(next);
  new_self_weight.assign(static_cast<std::size_t>(next), 0.0);
  for (std::size_t u = 0; u < community.size(); ++u) {
    new_self_weight[static_cast<std::size_t>(old_to_new[u])] +=
        self_weight[u];
  }
  for (const Edge& e : g.edges()) {
    const int a = old_to_new[static_cast<std::size_t>(e.u)];
    const int b = old_to_new[static_cast<std::size_t>(e.v)];
    if (a == b) {
      new_self_weight[static_cast<std::size_t>(a)] += e.w;
    } else {
      coarse.add_edge(static_cast<NodeId>(a), static_cast<NodeId>(b), e.w);
    }
  }
  return coarse;
}

}  // namespace

std::vector<std::vector<NodeId>> louvain_communities(
    const Graph& g, const LouvainOptions& options) {
  const NodeId n = g.num_nodes();
  std::vector<std::vector<NodeId>> singletons;
  for (NodeId u = 0; u < n; ++u) singletons.push_back({u});
  if (n <= 1 || g.total_weight() <= 0.0) return singletons;

  util::Rng rng(options.seed ^ 0x10a1aULL);

  // membership[u] tracks the final community of original node u through
  // the aggregation levels.
  std::vector<int> membership(static_cast<std::size_t>(n));
  std::iota(membership.begin(), membership.end(), 0);

  Graph level_graph = g;
  std::vector<double> self_weight(static_cast<std::size_t>(n), 0.0);
  for (;;) {
    const std::vector<int> community = local_moving(
        level_graph, self_weight, rng, options.min_gain, options.max_passes);
    if (community.empty()) break;  // fixed point
    std::vector<int> old_to_new;
    std::vector<double> next_self_weight;
    Graph coarse = aggregate(level_graph, self_weight, community, old_to_new,
                             next_self_weight);
    if (coarse.num_nodes() == level_graph.num_nodes()) break;
    for (auto& m : membership) {
      m = old_to_new[static_cast<std::size_t>(
          community[static_cast<std::size_t>(m)])];
    }
    level_graph = std::move(coarse);
    self_weight = std::move(next_self_weight);
    if (level_graph.num_edges() == 0) break;
  }

  std::unordered_map<int, std::vector<NodeId>> groups;
  for (NodeId u = 0; u < n; ++u) {
    groups[membership[static_cast<std::size_t>(u)]].push_back(u);
  }
  std::vector<std::vector<NodeId>> out;
  out.reserve(groups.size());
  for (auto& [c, members] : groups) {
    (void)c;
    std::sort(members.begin(), members.end());
    out.push_back(std::move(members));
  }
  std::sort(out.begin(), out.end(), [](const auto& x, const auto& y) {
    if (x.size() != y.size()) return x.size() > y.size();
    return x.front() < y.front();
  });
  return out;
}

}  // namespace qq::graph
