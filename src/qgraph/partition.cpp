#include "qgraph/partition.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "qgraph/louvain.hpp"
#include "qgraph/modularity.hpp"
#include "util/rng.hpp"

namespace qq::graph {

const char* partition_method_name(PartitionMethod method) noexcept {
  switch (method) {
    case PartitionMethod::kGreedyModularity: return "greedy-modularity";
    case PartitionMethod::kLouvain: return "louvain";
    case PartitionMethod::kSpectral: return "spectral";
    case PartitionMethod::kBalancedBfs: return "balanced-bfs";
    case PartitionMethod::kRandomChunks: return "random-chunks";
  }
  return "?";
}

namespace {

/// BFS-ordered balanced split into ceil(size/max) chunks. Used directly as
/// a partition method and as the fallback when community detection returns
/// the community unchanged (cliques, very dense blobs) or all singletons
/// (negative-weight merge graphs), which would otherwise recurse forever.
/// BFS order keeps chunks locally connected where possible.
std::vector<std::vector<NodeId>> balanced_split(const Graph& g,
                                                NodeId max_nodes,
                                                util::Rng& rng) {
  const NodeId n = g.num_nodes();
  std::vector<NodeId> order;
  order.reserve(static_cast<std::size_t>(n));
  std::vector<char> seen(static_cast<std::size_t>(n), 0);
  // Random start node makes repeated fallback splits (different seeds)
  // explore different chunkings.
  const NodeId start = n > 0 ? static_cast<NodeId>(util::uniform_u64(
                                   rng, static_cast<std::uint64_t>(n)))
                             : 0;
  for (NodeId offset = 0; offset < n; ++offset) {
    const NodeId s = (start + offset) % n;
    if (seen[static_cast<std::size_t>(s)]) continue;
    seen[static_cast<std::size_t>(s)] = 1;
    std::size_t head = order.size();
    order.push_back(s);
    while (head < order.size()) {
      const NodeId u = order[head++];
      for (const auto& [v, w] : g.neighbors(u)) {
        (void)w;
        if (!seen[static_cast<std::size_t>(v)]) {
          seen[static_cast<std::size_t>(v)] = 1;
          order.push_back(v);
        }
      }
    }
  }
  const std::size_t parts =
      (static_cast<std::size_t>(n) + static_cast<std::size_t>(max_nodes) - 1) /
      static_cast<std::size_t>(max_nodes);
  const std::size_t chunk = (static_cast<std::size_t>(n) + parts - 1) / parts;
  std::vector<std::vector<NodeId>> out;
  for (std::size_t lo = 0; lo < order.size(); lo += chunk) {
    const std::size_t hi = std::min(order.size(), lo + chunk);
    out.emplace_back(order.begin() + static_cast<std::ptrdiff_t>(lo),
                     order.begin() + static_cast<std::ptrdiff_t>(hi));
  }
  return out;
}

/// Fiedler-vector bisection: split by the sign structure of the second
/// eigenvector of the graph Laplacian, approximated with deflated power
/// iteration on (c I - L). Balanced at the median so both halves shrink,
/// guaranteeing recursion progress; the recursive size capping is handled
/// by partition_recursive.
std::vector<std::vector<NodeId>> spectral_bisect(const Graph& g,
                                                 util::Rng& rng) {
  const NodeId n = g.num_nodes();
  if (n < 2) return {{}};
  const auto nn = static_cast<std::size_t>(n);

  // Shift: c >= max row sum of L makes (c I - L) PSD with the Fiedler
  // direction as its second-largest eigenvector.
  double max_row = 0.0;
  for (NodeId u = 0; u < n; ++u) {
    double row = 0.0;
    for (const auto& [v, w] : g.neighbors(u)) {
      (void)v;
      row += std::abs(w) * 2.0;
    }
    max_row = std::max(max_row, row);
  }
  const double shift = max_row + 1.0;

  std::vector<double> x(nn), next(nn);
  for (auto& v : x) v = util::uniform(rng, -1.0, 1.0);
  auto project_out_ones = [&](std::vector<double>& vec) {
    double mean = 0.0;
    for (const double v : vec) mean += v;
    mean /= static_cast<double>(nn);
    for (double& v : vec) v -= mean;
  };
  auto normalize_vec = [&](std::vector<double>& vec) {
    double norm2 = 0.0;
    for (const double v : vec) norm2 += v * v;
    const double inv = norm2 > 1e-300 ? 1.0 / std::sqrt(norm2) : 0.0;
    for (double& v : vec) v *= inv;
  };
  project_out_ones(x);
  normalize_vec(x);
  for (int iter = 0; iter < 200; ++iter) {
    // next = (shift I - L) x = shift x - D x + W x
    for (NodeId u = 0; u < n; ++u) {
      const auto su = static_cast<std::size_t>(u);
      double acc = shift * x[su];
      for (const auto& [v, w] : g.neighbors(u)) {
        acc += w * (x[static_cast<std::size_t>(v)] - x[su]);
      }
      next[su] = acc;
    }
    project_out_ones(next);
    normalize_vec(next);
    x.swap(next);
  }

  // Median split keeps the bisection balanced even when the sign split
  // would be lopsided (e.g. star graphs).
  std::vector<NodeId> order(nn);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&x](NodeId a, NodeId b) {
    return x[static_cast<std::size_t>(a)] < x[static_cast<std::size_t>(b)];
  });
  const std::size_t half = nn / 2;
  std::vector<std::vector<NodeId>> out(2);
  out[0].assign(order.begin(), order.begin() + static_cast<std::ptrdiff_t>(half));
  out[1].assign(order.begin() + static_cast<std::ptrdiff_t>(half), order.end());
  return out;
}

/// Structure-free baseline: shuffle the nodes, cut into equal chunks.
std::vector<std::vector<NodeId>> random_chunks(const Graph& g,
                                               NodeId max_nodes,
                                               util::Rng& rng) {
  const NodeId n = g.num_nodes();
  std::vector<NodeId> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  for (std::size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[util::uniform_u64(rng, i)]);
  }
  const std::size_t parts =
      (static_cast<std::size_t>(n) + static_cast<std::size_t>(max_nodes) - 1) /
      static_cast<std::size_t>(max_nodes);
  const std::size_t chunk = (static_cast<std::size_t>(n) + parts - 1) / parts;
  std::vector<std::vector<NodeId>> out;
  for (std::size_t lo = 0; lo < order.size(); lo += chunk) {
    const std::size_t hi = std::min(order.size(), lo + chunk);
    out.emplace_back(order.begin() + static_cast<std::ptrdiff_t>(lo),
                     order.begin() + static_cast<std::ptrdiff_t>(hi));
  }
  return out;
}

std::vector<std::vector<NodeId>> detect_communities(const Graph& g,
                                                    PartitionMethod method,
                                                    NodeId max_nodes,
                                                    util::Rng& rng) {
  switch (method) {
    case PartitionMethod::kGreedyModularity:
      return greedy_modularity_communities(g);
    case PartitionMethod::kLouvain: {
      LouvainOptions lopts;
      lopts.seed = rng();
      return louvain_communities(g, lopts);
    }
    case PartitionMethod::kSpectral:
      return spectral_bisect(g, rng);
    case PartitionMethod::kBalancedBfs:
      return balanced_split(g, max_nodes, rng);
    case PartitionMethod::kRandomChunks:
      return random_chunks(g, max_nodes, rng);
  }
  return greedy_modularity_communities(g);
}

void partition_recursive(const Graph& g, const std::vector<NodeId>& to_global,
                         const PartitionOptions& options, util::Rng& rng,
                         std::vector<std::vector<NodeId>>& out) {
  const NodeId max_nodes = options.max_nodes;
  if (g.num_nodes() <= max_nodes) {
    out.push_back(to_global);
    return;
  }
  auto communities = detect_communities(g, options.method, max_nodes, rng);
  // Community detection can refuse to group anything: a single community
  // spanning the graph (cliques), or all singletons (negative-weight merge
  // graphs, where Q is maximized by the trivial partition). Either way the
  // divide step would make no progress, so fall back to a balanced BFS
  // split.
  if (communities.size() <= 1 ||
      communities.size() == static_cast<std::size_t>(g.num_nodes())) {
    communities = balanced_split(g, max_nodes, rng);
  }
  for (const auto& local_nodes : communities) {
    std::vector<NodeId> global_nodes;
    global_nodes.reserve(local_nodes.size());
    for (const NodeId local : local_nodes) {
      global_nodes.push_back(to_global[static_cast<std::size_t>(local)]);
    }
    if (static_cast<NodeId>(local_nodes.size()) <= max_nodes) {
      out.push_back(std::move(global_nodes));
    } else {
      const auto sub = g.induced(local_nodes);
      std::vector<NodeId> sub_to_global;
      sub_to_global.reserve(sub.to_global.size());
      for (const NodeId local : sub.to_global) {
        sub_to_global.push_back(to_global[static_cast<std::size_t>(local)]);
      }
      partition_recursive(sub.graph, sub_to_global, options, rng, out);
    }
  }
}

}  // namespace

std::vector<std::vector<NodeId>> partition_max_size(
    const Graph& g, const PartitionOptions& options) {
  if (options.max_nodes < 1) {
    throw std::invalid_argument("partition_max_size: max_nodes must be >= 1");
  }
  util::Rng rng(options.seed ^ 0x51ce5e11aa0ffULL);
  std::vector<NodeId> identity(static_cast<std::size_t>(g.num_nodes()));
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    identity[static_cast<std::size_t>(u)] = u;
  }
  std::vector<std::vector<NodeId>> out;
  partition_recursive(g, identity, options, rng, out);
  for (auto& part : out) std::sort(part.begin(), part.end());
  std::sort(out.begin(), out.end(),
            [](const auto& x, const auto& y) { return x.front() < y.front(); });
  return out;
}

}  // namespace qq::graph
