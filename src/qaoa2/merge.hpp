#pragma once
// QAOA^2 merge step (paper §3.3 step 4): given sub-graph solutions, build
// the coarse graph whose MaxCut decides which sub-graphs to flip.
//
// For every edge (u, v) of the original graph crossing from part a to part
// b, its weight enters the coarse edge (a, b) with sign:
//   * negative if the local solutions currently cut (u, v)   [w -> -w]
//   * positive otherwise                                     [w -> +w]
// so that cutting (a, b) in the coarse graph (i.e. flipping exactly one of
// the two parts) gains exactly the uncut-minus-cut crossing weight.

#include <vector>

#include "maxcut/cut.hpp"
#include "qgraph/graph.hpp"

namespace qq::qaoa2 {

/// parts[a] lists the original node ids of part a; local_solutions[a] is an
/// assignment over parts[a] (indexed by position, i.e. local ids).
graph::Graph build_merge_graph(
    const graph::Graph& g, const std::vector<std::vector<graph::NodeId>>& parts,
    const std::vector<maxcut::Assignment>& local_solutions);

/// Lift the local solutions to a global assignment, flipping every part
/// whose coarse node ended on side 1.
maxcut::Assignment apply_flips(
    graph::NodeId num_nodes,
    const std::vector<std::vector<graph::NodeId>>& parts,
    const std::vector<maxcut::Assignment>& local_solutions,
    const maxcut::Assignment& coarse_assignment);

/// part_of[u] = index of the part containing original node u.
std::vector<int> part_index(graph::NodeId num_nodes,
                            const std::vector<std::vector<graph::NodeId>>& parts);

}  // namespace qq::qaoa2
