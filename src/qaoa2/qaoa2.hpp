#pragma once
// QAOA-in-QAOA (QAOA^2) driver — the paper's primary contribution (§3.3):
// divide the graph into qubit-sized sub-graphs (greedy modularity), solve
// the sub-graphs in parallel on (simulated) quantum devices and/or
// classical solvers, merge via the signed coarse graph, and recurse until
// the coarse problem fits on one device.
//
// The hybrid selection the paper studies (§3.6/Fig. 4) is the SubSolver
// knob: all-QAOA ("QAOA"), all-GW ("Classic"), or per-sub-graph best of
// both ("Best").

#include <cstdint>
#include <vector>

#include "maxcut/cut.hpp"
#include "qaoa/qaoa.hpp"
#include "qgraph/graph.hpp"
#include "qgraph/partition.hpp"
#include "sched/engine.hpp"
#include "sdp/gw.hpp"

namespace qq::qaoa2 {

enum class SubSolver {
  kQaoa,         ///< quantum (simulated) — Fig. 4 "QAOA"
  kGw,           ///< classical Goemans-Williamson — Fig. 4 "Classic"
  kBest,         ///< run both, keep the better cut — Fig. 4 "Best"
  kExact,        ///< brute force (tests / small parts)
  kAnneal,       ///< simulated annealing
  kLocalSearch,  ///< one-exchange with restarts
  kRqaoa,        ///< recursive QAOA (extension)
};

struct Qaoa2Options {
  /// Qubit budget n of the (simulated) devices; also the partition cap.
  int max_qubits = 12;
  /// Divide-step community detector (paper uses greedy modularity; the §5
  /// outlook motivates trying others — see bench_ablation_partition).
  graph::PartitionMethod partition_method =
      graph::PartitionMethod::kGreedyModularity;
  /// Solver for the first-level sub-graphs.
  SubSolver sub_solver = SubSolver::kQaoa;
  /// Solver for deeper recursion levels. The paper: "In case of further
  /// iterations in the QAOA^2 method, the classical solution is chosen."
  SubSolver deeper_solver = SubSolver::kGw;
  /// Solver for the coarse merge graphs (paper step 5 uses QAOA).
  SubSolver merge_solver = SubSolver::kQaoa;
  qaoa::QaoaOptions qaoa;  ///< configuration of every QAOA sub-solve
  sdp::GwOptions gw;       ///< configuration of every GW sub-solve
  /// Simulated device count / classical worker slots for the parallel
  /// sub-graph fan-out (Fig. 2).
  sched::EngineOptions engine;
  std::uint64_t seed = 0;
};

struct LevelStats {
  int level = 0;
  int num_parts = 0;
  int largest_part = 0;
  int smallest_part = 0;
  double level_cut = 0.0;  ///< global cut value after this level's merge
};

struct Qaoa2Result {
  maxcut::CutResult cut;
  int levels = 0;
  int subgraphs_total = 0;
  int quantum_solves = 0;
  int classical_solves = 0;
  double solve_seconds = 0.0;         ///< wall time in sub-graph solvers
  double coordination_seconds = 0.0;  ///< engine overhead (Fig. 2 claim)
  /// Σ per-task queue wait (slot wait + pool queueing) across every engine
  /// batch — the time sub-solves spent ready-but-not-running.
  double queue_wait_seconds = 0.0;
  std::vector<LevelStats> level_stats;
};

class Qaoa2Driver {
 public:
  explicit Qaoa2Driver(const Qaoa2Options& options);

  Qaoa2Result solve(const graph::Graph& g) const;

  /// Solve one sub-graph with a specific solver (exposed for the knowledge
  /// base / selection benchmarks).
  maxcut::CutResult solve_subgraph(const graph::Graph& g, SubSolver solver,
                                   std::uint64_t seed) const;

 private:
  void solve_level(const graph::Graph& g, int level, Qaoa2Result& result,
                   maxcut::Assignment& out_assignment) const;

  Qaoa2Options options_;
};

/// Convenience wrapper.
Qaoa2Result solve_qaoa2(const graph::Graph& g, const Qaoa2Options& options = {});

const char* sub_solver_name(SubSolver solver) noexcept;

}  // namespace qq::qaoa2
